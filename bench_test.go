// Benchmarks regenerating every evaluation artifact (DESIGN.md §3,
// EXPERIMENTS.md). One benchmark per experiment: the measured value is
// the wall time of a full experiment run; key result numbers are
// attached as custom metrics so `go test -bench` output doubles as a
// compact results table.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE1RegretSqrtT
package repchain_test

import (
	"encoding/json"
	"fmt"
	"strconv"
	"testing"

	"repchain"
	"repchain/internal/crypto"
	"repchain/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration and
// reports a named cell from the final row as a custom metric.
func runExperiment(b *testing.B, id string, metricCol, metricName string) {
	b.Helper()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, 42, 1)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		last = t
	}
	if metricCol == "" || len(last.Rows) == 0 {
		return
	}
	for c, h := range last.Header {
		if h != metricCol {
			continue
		}
		v, err := strconv.ParseFloat(last.Rows[len(last.Rows)-1][c], 64)
		if err == nil {
			b.ReportMetric(v, metricName)
		}
		return
	}
}

// BenchmarkE1RegretSqrtT regenerates the Theorem 1 regret table
// (regret vs T with the O(√T) bound).
func BenchmarkE1RegretSqrtT(b *testing.B) {
	runExperiment(b, "E1", "regret/√T", "regret_per_sqrtT")
}

// BenchmarkE2UncheckedVsF regenerates the Lemma 2 table (unchecked
// fraction vs f).
func BenchmarkE2UncheckedVsF(b *testing.B) {
	runExperiment(b, "E2", "unchecked frac", "unchecked_frac_at_f0.9")
}

// BenchmarkE3HoeffdingTail regenerates the Theorem 3 tail table.
func BenchmarkE3HoeffdingTail(b *testing.B) {
	runExperiment(b, "E3", "empirical tail", "tail_at_last_row")
}

// BenchmarkE4ThroughputVsF regenerates the efficiency table
// (verification cost and throughput vs f) on the full protocol stack.
func BenchmarkE4ThroughputVsF(b *testing.B) {
	runExperiment(b, "E4", "checked/tx", "checked_per_tx_at_f0.9")
}

// BenchmarkE5PolicyComparison regenerates the screening-policy
// comparison table (reputation vs baselines).
func BenchmarkE5PolicyComparison(b *testing.B) {
	runExperiment(b, "E5", "mistakes", "mistakes_last_row")
}

// BenchmarkE6IncentiveCurve regenerates the incentive table (revenue
// share vs misbehaviour).
func BenchmarkE6IncentiveCurve(b *testing.B) {
	runExperiment(b, "E6", "share(collector 0)", "share_at_p0.5")
}

// BenchmarkE7MessageComplexity regenerates the communication-
// complexity table (O(b_limit·m) and O(m²)).
func BenchmarkE7MessageComplexity(b *testing.B) {
	runExperiment(b, "E7", "stake msgs/m²", "stake_msgs_per_m2")
}

// BenchmarkE8AdversaryFraction regenerates the robustness table (loss
// vs number of malicious collectors).
func BenchmarkE8AdversaryFraction(b *testing.B) {
	runExperiment(b, "E8", "regret", "regret_at_7_liars")
}

// BenchmarkE9ArgueLatency regenerates the argue-latency table (regret
// vs reveal delay U).
func BenchmarkE9ArgueLatency(b *testing.B) {
	runExperiment(b, "E9", "regret", "regret_at_U256")
}

// BenchmarkE10BetaAblation regenerates the β-ablation table.
func BenchmarkE10BetaAblation(b *testing.B) {
	runExperiment(b, "E10", "regret/bound", "regret_over_bound_last")
}

// BenchmarkE11TurncoatAttack regenerates the whitewashing-attack
// table (extension experiment: damage window vs banked reputation).
func BenchmarkE11TurncoatAttack(b *testing.B) {
	runExperiment(b, "E11", "mistakes after turn", "post_turn_mistakes")
}

// BenchmarkE12TheoremFour regenerates the combined Theorem 4 table.
func BenchmarkE12TheoremFour(b *testing.B) {
	runExperiment(b, "E12", "(L−S)/√((f+δ)N)", "normalized_excess_last")
}

// BenchmarkFullProtocolRound measures end-to-end round latency of the
// complete stack — signatures, bus, screening, election, block
// replication — at a fixed workload (not tied to a paper table; a
// practical systems number). Sub-benchmarks vary the engine's worker
// pool: workers=1 is the fully sequential pipeline, larger counts fan
// per-node round work across goroutines without changing any output
// byte. Each run also reports the shared signature-verification
// cache's hit rate over the measured interval — with m=3 governors
// re-verifying identical signatures the steady state sits near
// (m−1)/m ≈ 0.67.
func BenchmarkFullProtocolRound(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			validator := repchain.ValidatorFunc(func(t repchain.Transaction) bool {
				return len(t.Payload) > 0 && t.Payload[0] == 1
			})
			chain, err := repchain.New(
				repchain.WithTopology(8, 4, 2),
				repchain.WithGovernors(3),
				repchain.WithValidator(validator),
				repchain.WithSeed(1),
				repchain.WithWorkers(workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			const txPerRound = 32
			crypto.DefaultVerifyCache.Purge()
			hits0, misses0 := crypto.DefaultVerifyCache.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < txPerRound; j++ {
					valid := j%4 != 3
					payload := []byte{0, byte(j), byte(i), byte(i >> 8)}
					if valid {
						payload[0] = 1
					}
					if _, err := chain.Submit(j%8, "bench", payload, valid); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := chain.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hits1, misses1 := crypto.DefaultVerifyCache.Stats()
			dh, dm := float64(hits1-hits0), float64(misses1-misses0)
			if dh+dm > 0 {
				b.ReportMetric(dh/(dh+dm), "cache-hit-rate")
			}
			b.ReportMetric(txPerRound, "tx/round")
			txs := float64(b.N * txPerRound)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(txs/secs, "tx/s")
			}
			// Ed25519 verifications actually performed per committed
			// transaction: cache misses are the only real curve
			// operations; batch classification turns everything else
			// into hits or in-batch coalescing.
			b.ReportMetric(dm/txs, "sig-checks/tx")

			// Embed the engine's final metrics snapshot so the
			// `make bench-round` JSON artifact carries the sigcache
			// hit rate, check fraction, and per-stage latency
			// quantiles alongside the timing numbers.
			snap := chain.MetricsSnapshot()
			if cf, ok := snap.Gauges["screen.check_fraction"]; ok {
				b.ReportMetric(cf, "check-fraction")
			}
			for _, stage := range []string{"upload", "screen", "elect", "pack", "commit"} {
				key := `round.stage_seconds{stage="` + stage + `"}`
				if h, ok := snap.Histograms[key]; ok && h.Count > 0 {
					b.ReportMetric(h.Quantile(0.5)*1e9, stage+"-p50-ns")
					b.ReportMetric(h.Quantile(0.95)*1e9, stage+"-p95-ns")
				}
			}
			if data, err := json.Marshal(snap); err == nil {
				b.Logf("metrics-snapshot workers=%d %s", workers, data)
			}
		})
	}

	// The workers=1 workload with the full observability pipeline on —
	// span recorder and structured event log — sized so neither ring
	// wraps during a 1s run. The benchcheck ratio gate pins this
	// variant's ns/op to ≤1.05× the tracing-off workers=1 run: the
	// telemetry rings must stay passive (DESIGN.md §4h).
	b.Run("tracing=on", func(b *testing.B) {
		validator := repchain.ValidatorFunc(func(t repchain.Transaction) bool {
			return len(t.Payload) > 0 && t.Payload[0] == 1
		})
		chain, err := repchain.New(
			repchain.WithTopology(8, 4, 2),
			repchain.WithGovernors(3),
			repchain.WithValidator(validator),
			repchain.WithSeed(1),
			repchain.WithWorkers(1),
			repchain.WithTracing(1<<16),
			repchain.WithEventLog(1<<16),
		)
		if err != nil {
			b.Fatal(err)
		}
		const txPerRound = 32
		crypto.DefaultVerifyCache.Purge()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < txPerRound; j++ {
				valid := j%4 != 3
				payload := []byte{0, byte(j), byte(i), byte(i >> 8)}
				if valid {
					payload[0] = 1
				}
				if _, err := chain.Submit(j%8, "bench", payload, valid); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := chain.RunRound(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(txPerRound, "tx/round")
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N*txPerRound)/secs, "tx/s")
		}
		// Per-round emission rates, not ring lengths: the rings cap out
		// at their capacity once b.N is large, which would make raw
		// counts benchtime-dependent noise in the baseline.
		evlog := chain.EventLog()
		b.ReportMetric(float64(evlog.Len()+int(evlog.Dropped()))/float64(b.N), "events/round")
		rec := chain.Engine().Tracer()
		b.ReportMetric(float64(rec.Len()+int(rec.Dropped()))/float64(b.N), "spans/round")
	})

	// The same workload through the sharded mempool (DESIGN.md §4d):
	// submissions stage into 4 bounded shards and each round drains at
	// most one BlockLimit-sized batch, so BENCH_round.json also records
	// the ingestion tier's drain-batch p95 and shed rate.
	b.Run("mempool=4x256", func(b *testing.B) {
		validator := repchain.ValidatorFunc(func(t repchain.Transaction) bool {
			return len(t.Payload) > 0 && t.Payload[0] == 1
		})
		chain, err := repchain.New(
			repchain.WithTopology(8, 4, 2),
			repchain.WithGovernors(3),
			repchain.WithValidator(validator),
			repchain.WithSeed(1),
			repchain.WithMempool(4, 256),
			repchain.WithBlockLimit(64),
		)
		if err != nil {
			b.Fatal(err)
		}
		const txPerRound = 32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < txPerRound; j++ {
				valid := j%4 != 3
				payload := []byte{0, byte(j), byte(i), byte(i >> 8)}
				if valid {
					payload[0] = 1
				}
				if _, err := chain.Submit(j%8, "bench", payload, valid); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := chain.RunRound(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		snap := chain.MetricsSnapshot()
		admitted := float64(snap.Counters["mempool.admitted_total"])
		shed := float64(snap.Counters["mempool.shed_total"])
		if admitted+shed > 0 {
			b.ReportMetric(shed/(admitted+shed), "mempool-shed-rate")
		}
		if h, ok := snap.Histograms["mempool.drain_batch"]; ok && h.Count > 0 {
			b.ReportMetric(h.Quantile(0.95), "drain-batch-p95")
		}
		b.ReportMetric(txPerRound, "tx/round")
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N*txPerRound)/secs, "tx/s")
		}
		if data, err := json.Marshal(snap); err == nil {
			b.Logf("metrics-snapshot mempool=4x256 %s", data)
		}
	})

	// The same per-round workload sharded across K committees
	// (DESIGN.md §4i): 8 providers with exclusive collectors split into
	// K parallel protocol instances, each round carrying one cross-shard
	// transfer through the two-phase receipt relay. Engines run with
	// workers=1 so committee-level concurrency is the only parallelism —
	// the committees=4 / committees=1 benchcheck ratio gate records the
	// scaling trajectory and enforces ≥2x where the runner has the cores
	// to show it (informational on single-core runners).
	for _, committees := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("committees=%d", committees), func(b *testing.B) {
			validator := repchain.ValidatorFunc(func(t repchain.Transaction) bool {
				return len(t.Payload) > 0 && t.Payload[0] == 1
			})
			cluster, err := repchain.NewCluster(
				repchain.WithTopology(8, 16, 2), // collector degree 1: divisible at K=1,2,4
				repchain.WithGovernors(3),
				repchain.WithCommittees(committees),
				repchain.WithValidator(validator),
				repchain.WithSeed(1),
				repchain.WithWorkers(1),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			const txPerRound = 32
			crypto.DefaultVerifyCache.Purge()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < txPerRound; j++ {
					valid := j%4 != 3
					payload := []byte{0, byte(j), byte(i), byte(i >> 8)}
					if valid {
						payload[0] = 1
					}
					if _, err := cluster.Submit(j%8, "bench", payload, valid); err != nil {
						b.Fatal(err)
					}
				}
				if committees > 1 {
					// One cross-shard transfer per round keeps the
					// two-phase relay on the measured path.
					if _, err := cluster.SubmitCross(0, 1, "bench/x", []byte{1, byte(i)}, true); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := cluster.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(txPerRound, "tx/round")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*txPerRound)/secs, "tx/s")
			}
			snap := cluster.MetricsSnapshot()
			b.ReportMetric(float64(snap.Counters["shard.cross_tx_total"]), "cross-tx")
			if data, err := json.Marshal(snap); err == nil {
				b.Logf("metrics-snapshot committees=%d %s", committees, data)
			}
		})
	}
}
