package repchain

import (
	"context"
	"errors"
	"fmt"

	"repchain/internal/core"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/metrics"
	"repchain/internal/node"
	"repchain/internal/reputation"
	"repchain/internal/shard"
	"repchain/internal/tx"
)

// Sentinel errors of the cluster API, matched with errors.Is.
var (
	// ErrUnknownCommittee reports a committee index outside [0, K).
	ErrUnknownCommittee = errors.New("repchain: unknown committee")
	// ErrRehome reports an unsupported provider re-home (shared
	// collectors, emptied source committee, single-committee cluster).
	ErrRehome = errors.New("repchain: cannot re-home provider")
)

// PartitionFunc assigns global provider indices to committees; it must
// be a pure function of its arguments. See identity.ModuloPartition for
// the default.
type PartitionFunc = identity.PartitionFunc

// WithCommittees sets K, the number of sharded committees a cluster
// runs (NewCluster only; New rejects it). Each committee runs the full
// protocol — its own collectors, governors, VRF leader election, and
// chain — over its slice of the provider set. K = 1 is byte-identical
// to an unsharded Chain with the same options.
func WithCommittees(k int) Option {
	return func(o *options) error {
		if k <= 0 {
			return fmt.Errorf("committees %d: %w", k, ErrBadOption)
		}
		o.committees = k
		return nil
	}
}

// WithPartition overrides how providers map onto committees
// (NewCluster only; default identity.ModuloPartition). The function
// must be deterministic: the mapping is part of the replicated state.
func WithPartition(fn PartitionFunc) Option {
	return func(o *options) error {
		if fn == nil {
			return fmt.Errorf("nil partition: %w", ErrBadOption)
		}
		o.partition = fn
		return nil
	}
}

// Cluster is a committee-sharded alliance chain: K committees, each a
// complete protocol instance over its slice of the provider set, plus
// the two-phase cross-shard receipt relay between them. Committee 0 of
// a K=1 cluster is byte-identical to a Chain built from the same
// options — Chain remains the supported single-committee facade, and
// Cluster is its multi-committee superset.
type Cluster struct {
	cl         *shard.Cluster
	committees []Committee
}

// NewCluster assembles a sharded cluster from the same options as New
// plus WithCommittees and WithPartition. WithTopology describes the
// GLOBAL provider/collector population; per-committee topologies are
// carved from it along the partition. WithLinks and explicit
// per-collector behaviours are incompatible with K > 1.
func NewCluster(opts ...Option) (*Cluster, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	k := o.committees
	if k == 0 {
		k = 1
	}
	cl, err := shard.New(shard.Config{
		Base:       o.cfg,
		Committees: k,
		Partition:  o.partition,
	})
	if err != nil {
		return nil, translateShardErr(err)
	}
	c := &Cluster{cl: cl}
	c.committees = make([]Committee, k)
	for i := range c.committees {
		c.committees[i] = Committee{cl: cl, index: i}
	}
	return c, nil
}

// translateShardErr maps shard sentinels onto the facade's.
func translateShardErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, shard.ErrConfig):
		return fmt.Errorf("%w: %v", ErrBadOption, err)
	case errors.Is(err, shard.ErrClosed):
		return fmt.Errorf("%w: %v", ErrClosed, err)
	case errors.Is(err, shard.ErrUnknownProvider):
		return fmt.Errorf("%w: %v", ErrUnknownProvider, err)
	case errors.Is(err, shard.ErrUnknownCommittee):
		return fmt.Errorf("%w: %v", ErrUnknownCommittee, err)
	case errors.Is(err, shard.ErrRehome):
		return fmt.Errorf("%w: %v", ErrRehome, err)
	default:
		return translateErr(err)
	}
}

// Committees returns K.
func (c *Cluster) Committees() int { return len(c.committees) }

// Committee returns the view onto committee i.
func (c *Cluster) Committee(i int) (*Committee, error) {
	if i < 0 || i >= len(c.committees) {
		return nil, fmt.Errorf("committee %d of %d: %w", i, len(c.committees), ErrUnknownCommittee)
	}
	return &c.committees[i], nil
}

// Home returns the committee global provider k currently lives on.
func (c *Cluster) Home(provider int) (int, error) {
	slot, err := c.cl.Home(provider)
	if err != nil {
		return 0, translateShardErr(err)
	}
	return slot.Committee, nil
}

// Submit stages one transaction from global provider k, routed to its
// home committee by the partition.
func (c *Cluster) Submit(provider int, kind string, payload []byte, isValid bool) (TxID, error) {
	_, signed, err := c.cl.SubmitTx(provider, kind, payload, isValid)
	if err != nil {
		return TxID{}, translateShardErr(err)
	}
	return signed.ID(), nil
}

// SubmitBatch stages a batch from one global provider, routed to its
// home committee. Semantics match Chain.SubmitBatch: the admitted
// prefix's IDs are always returned, with ErrBacklog (resume from
// txs[len(ids)] after a round) or the context's error alongside when
// admission stopped early.
func (c *Cluster) SubmitBatch(ctx context.Context, provider int, txs []Tx) ([]TxID, error) {
	ids := make([]TxID, 0, len(txs))
	for _, t := range txs {
		if err := ctx.Err(); err != nil {
			return ids, err
		}
		_, signed, err := c.cl.SubmitTx(provider, t.Kind, t.Payload, t.Valid)
		if err != nil {
			return ids, translateShardErr(err)
		}
		ids = append(ids, signed.ID())
	}
	return ids, nil
}

// SubmitCross stages a cross-shard transaction from provider `from` to
// provider `to`'s committee via the two-phase receipt protocol: a lock
// commits on the source committee, then the cluster relays an
// idempotent receipt carrying the inner transaction onto the
// destination, retrying until it commits. Same-committee pairs degrade
// to a plain submission. The returned ID is the lock's (or the direct
// transaction's); receipts reference it.
func (c *Cluster) SubmitCross(from, to int, kind string, payload []byte, isValid bool) (TxID, error) {
	signed, err := c.cl.SubmitCross(from, to, kind, payload, isValid)
	if err != nil {
		return TxID{}, translateShardErr(err)
	}
	return signed.ID(), nil
}

// Rehome moves global provider k — with its linked collectors and
// their learned reputation state — onto committee dst. The carried RWM
// weight columns and misreport/forge scores are re-applied bitwise, so
// destination governors screen the mover exactly as the source
// governors would have. Requires the global topology to give each
// provider exclusive collectors (collector degree 1). Re-home at a
// round boundary; staged submissions on the two affected committees
// are dropped as by a crash.
func (c *Cluster) Rehome(provider, dst int) error {
	return translateShardErr(c.cl.Rehome(provider, dst))
}

// RunRound executes one protocol round on every committee concurrently
// and relays cross-shard receipts, returning per-committee summaries in
// committee order. A committee's failure leaves its summary zero and
// joins the error without stopping the others.
func (c *Cluster) RunRound() ([]RoundSummary, error) {
	return c.RunRoundCtx(context.Background())
}

// RunRoundCtx is RunRound with cancellation, honored at the same
// replica-consistent stage boundaries as Chain.RunRoundCtx.
func (c *Cluster) RunRoundCtx(ctx context.Context) ([]RoundSummary, error) {
	results, err := c.cl.RunRoundCtx(ctx)
	summaries := make([]RoundSummary, len(results))
	for i, res := range results {
		if res.Block.Serial == 0 && res.Serial == 0 {
			continue
		}
		summaries[i] = RoundSummary{
			Serial:         res.Serial,
			Leader:         res.Leader,
			Records:        len(res.Block.Records),
			Uploads:        res.Uploads,
			Argues:         res.Argues,
			StakeCommitted: res.StakeBlock != nil,
		}
	}
	return summaries, translateShardErr(err)
}

// PendingReceipts reports how many cross-shard receipts await
// commitment on their destination committees.
func (c *Cluster) PendingReceipts() int { return c.cl.PendingReceipts() }

// VerifyChain audits every committee's replicated chain.
func (c *Cluster) VerifyChain() error {
	for i := range c.committees {
		if err := c.committees[i].VerifyChain(); err != nil {
			return fmt.Errorf("committee %d: %w", i, err)
		}
	}
	return nil
}

// Metrics renders the cluster-level metrics — per-committee chain
// heads (chain.height{committee="i"}) and the cross-shard relay
// counters — one per line, sorted by name. Per-committee protocol
// metrics live on each Committee's MetricsSnapshot.
func (c *Cluster) Metrics() string { return c.cl.Metrics().Dump() }

// MetricsSnapshot returns the cluster-level metrics as a structured
// snapshot.
func (c *Cluster) MetricsSnapshot() metrics.Snapshot { return c.cl.Metrics().Snapshot() }

// Close shuts every committee down, releasing any file-backed stores.
func (c *Cluster) Close() error { return translateShardErr(c.cl.Close()) }

// Committee is a read view onto one committee of a Cluster: its chain,
// its traces, and its protocol metrics. Submissions go through the
// Cluster, which owns the routing.
type Committee struct {
	cl    *shard.Cluster
	index int
}

// Index returns the committee's index within the cluster.
func (cm *Committee) Index() int { return cm.index }

// Providers returns the global provider indices homed on this
// committee, in local order.
func (cm *Committee) Providers() []int { return cm.cl.Members(cm.index) }

// Height returns the committee's chain height.
func (cm *Committee) Height() uint64 {
	return cm.engine().Governor(0).Store().Height()
}

// Block retrieves the records of the committee's block s.
func (cm *Committee) Block(s uint64) ([]RecordStatus, error) {
	b, err := cm.engine().Governor(0).Store().Get(s)
	if err != nil {
		return nil, err
	}
	out := make([]RecordStatus, 0, len(b.Records))
	for _, r := range b.Records {
		out = append(out, RecordStatus{
			ID:        r.Signed.ID(),
			Provider:  string(r.Signed.Tx.Provider),
			Kind:      r.Signed.Tx.Kind,
			Payload:   append([]byte(nil), r.Signed.Tx.Payload...),
			Valid:     r.Status == tx.StatusValid,
			Unchecked: r.Unchecked,
		})
	}
	return out, nil
}

// VerifyChain audits the committee's replicated chain across all its
// governors.
func (cm *Committee) VerifyChain() error {
	eng := cm.engine()
	for j := 0; j < eng.Governors(); j++ {
		if err := ledger.VerifyChain(eng.Governor(j).Store()); err != nil {
			return fmt.Errorf("governor %d: %w", j, err)
		}
	}
	return nil
}

// Trace returns the committee-local lifecycle spans of one transaction
// (WithTracing), oldest first.
func (cm *Committee) Trace(id TxID) []Span {
	return cm.engine().Tracer().ByTrace(id.String())
}

// Events returns the committee's consensus events (WithEventLog),
// oldest first.
func (cm *Committee) Events() []Event {
	return cm.engine().Events().Events()
}

// Stats returns governor j's screening counters on this committee.
func (cm *Committee) Stats(governor int) GovernorStats {
	return cm.engine().Governor(governor).Stats()
}

// MetricsSnapshot returns the committee engine's protocol metrics.
func (cm *Committee) MetricsSnapshot() metrics.Snapshot {
	return cm.engine().Metrics().Snapshot()
}

// RevenueShares returns the committee's current revenue split across
// its local collectors (governor 0's view), the incentive signal of
// §3.4.3.
func (cm *Committee) RevenueShares() ([]float64, error) {
	return cm.engine().Governor(0).Table().RevenueShares()
}

// CollectorReputation returns committee-local collector c's reputation
// vector from governor 0's view.
func (cm *Committee) CollectorReputation(collector int) ([]float64, error) {
	return cm.engine().Governor(0).Table().Vector(collector)
}

func (cm *Committee) engine() *core.Engine { return cm.cl.Engine(cm.index) }

// buildOptions folds the option list over the shared defaults; New and
// NewCluster assemble configurations identically so a K=1 cluster and a
// Chain built from the same options run the same engine byte for byte.
func buildOptions(opts []Option) (options, error) {
	o := options{
		cfg: core.Config{
			Params:      reputation.DefaultParams(),
			ArgueWindow: 64,
			MaxDelay:    1,
		},
	}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return options{}, err
		}
	}
	if o.behaviors != nil {
		o.cfg.Behaviors = make([]node.Behavior, len(o.behaviors))
		for i, b := range o.behaviors {
			if b == (CollectorBehavior{}) {
				o.cfg.Behaviors[i] = node.HonestBehavior{}
				continue
			}
			o.cfg.Behaviors[i] = node.ProbBehavior{
				Misreport: b.Misreport,
				Conceal:   b.Conceal,
				Forge:     b.Forge,
			}
		}
	}
	return o, nil
}
