// Package repchain is the public API of the RepChain library: a
// permissioned blockchain for horizontal strategic alliances with a
// provable reputation mechanism, reproducing Chen et al., "An
// Efficient Permissioned Blockchain with Provable Reputation
// Mechanism" (ICDCS 2021; arXiv:2002.06852).
//
// A chain has three tiers. Providers sign transactions and broadcast
// them to r linked collectors; collectors label each transaction ±1
// and upload it to every governor; governors screen a tunable fraction
// of uploads guided by per-collector reputation vectors, elect a
// round leader through per-stake-unit VRFs, and replicate the block
// chain. Providers that find a valid transaction recorded invalid
// argue, and the transaction enters a later block.
//
// Quick start:
//
//	chain, err := repchain.New(
//		repchain.WithTopology(8, 4, 2), // 8 providers, 4 collectors, 2 collectors/provider
//		repchain.WithGovernors(3),
//		repchain.WithValidator(myValidator),
//		repchain.WithMempool(4, 256), // sharded ingestion with backpressure
//	)
//	...
//	ids, err := chain.SubmitBatch(ctx, 0, txs)
//	if errors.Is(err, repchain.ErrBacklog) {
//		// ids holds the admitted prefix; run a round and resubmit the rest.
//	}
//	summary, err := chain.RunRoundCtx(ctx)
//
// Submit and RunRound remain as single-transaction, context-free
// wrappers.
//
// The reputation mechanism guarantees (paper, Theorem 1) that a
// governor's accumulated expected loss on unchecked transactions
// exceeds the best collector's loss by only O(√T), while checking as
// little as a (1−f) fraction of -1-labeled transactions.
package repchain

import (
	"context"
	"errors"
	"fmt"

	"repchain/internal/core"
	"repchain/internal/crypto"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/metrics"
	"repchain/internal/node"
	"repchain/internal/reputation"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// ErrBadOption reports an invalid configuration option.
var ErrBadOption = errors.New("repchain: invalid option")

// Sentinel errors for the submission and round APIs. Match them with
// errors.Is; the wrapped message carries the specifics.
var (
	// ErrBacklog reports that a provider's mempool shard is full (see
	// WithMempool). Backpressure, not loss: nothing was signed or
	// queued, so run a round to drain the backlog and resubmit.
	ErrBacklog = errors.New("repchain: mempool backlog")
	// ErrClosed reports an operation on a closed chain.
	ErrClosed = errors.New("repchain: chain closed")
	// ErrUnknownProvider reports a provider index outside the topology.
	ErrUnknownProvider = errors.New("repchain: unknown provider")
)

// translateErr maps engine sentinels onto the facade's, so callers
// match repchain.Err* without importing internal packages.
func translateErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrBacklog):
		return fmt.Errorf("%w: %v", ErrBacklog, err)
	case errors.Is(err, core.ErrClosed):
		return fmt.Errorf("%w: %v", ErrClosed, err)
	case errors.Is(err, core.ErrUnknownProvider):
		return fmt.Errorf("%w: %v", ErrUnknownProvider, err)
	default:
		return err
	}
}

// Validator re-exports the validate(tx) contract: applications decide
// what a valid transaction is.
type Validator = tx.Validator

// ValidatorFunc adapts a function to Validator.
type ValidatorFunc = tx.ValidatorFunc

// Transaction re-exports the transaction shape validators see.
type Transaction = tx.Transaction

// CollectorBehavior configures a collector's conduct — honest by
// default; adversarial settings exist for experiments and testing.
type CollectorBehavior struct {
	// Misreport is the probability of flipping the honest label.
	Misreport float64
	// Conceal is the probability of not uploading a transaction.
	Conceal float64
	// Forge is the probability of injecting a forged transaction per
	// round.
	Forge float64
}

// Option configures a chain.
type Option func(*options) error

type options struct {
	cfg       core.Config
	behaviors []CollectorBehavior

	// Cluster-only options (see cluster.go); New rejects them.
	committees int
	partition  identity.PartitionFunc
}

// WithTopology sets l providers, n collectors, and r collectors per
// provider (r·l must be divisible by n).
func WithTopology(providers, collectors, degree int) Option {
	return func(o *options) error {
		o.cfg.Spec = identity.TopologySpec{
			Providers:  providers,
			Collectors: collectors,
			Degree:     degree,
		}
		return nil
	}
}

// WithLinks overrides the regular topology with explicit adjacency
// lists (provider index → collector indices), for irregular networks.
// Combine with WithTopology(providers, collectors, 0) — the degree is
// ignored.
func WithLinks(links [][]int) Option {
	return func(o *options) error {
		o.cfg.Links = make([][]int, len(links))
		for i, l := range links {
			o.cfg.Links[i] = append([]int(nil), l...)
		}
		return nil
	}
}

// WithChainDir backs every governor's ledger replica with append-only
// files in dir, surviving restarts. Call Chain.Close when done.
func WithChainDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("empty chain dir: %w", ErrBadOption)
		}
		o.cfg.ChainDir = dir
		return nil
	}
}

// WithSnapshotEvery writes an atomic recovery snapshot (round counter,
// reputation tables, stake vector) into every governor's chain
// directory each n committed rounds and prunes chain segments fully
// behind the snapshot, so restart cost scales with n instead of chain
// height and disk stays bounded. Requires WithChainDir to have any
// effect.
func WithSnapshotEvery(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("snapshot cadence %d: %w", n, ErrBadOption)
		}
		o.cfg.SnapshotEvery = n
		return nil
	}
}

// WithSegmentBytes overrides the chain segment roll threshold for
// file-backed governor stores (default 4 MiB). Smaller segments prune
// at a finer grain; larger ones mean fewer files.
func WithSegmentBytes(n int64) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("segment bytes %d: %w", n, ErrBadOption)
		}
		o.cfg.SegmentBytes = n
		return nil
	}
}

// WithGovernors sets m, the number of governors.
func WithGovernors(m int) Option {
	return func(o *options) error {
		if m <= 0 {
			return fmt.Errorf("governors %d: %w", m, ErrBadOption)
		}
		o.cfg.Governors = m
		return nil
	}
}

// WithStakes sets each governor's initial stake units (defaults to one
// unit each).
func WithStakes(stakes ...uint64) Option {
	return func(o *options) error {
		o.cfg.Stakes = append([]uint64(nil), stakes...)
		return nil
	}
}

// WithReputationParams tunes the mechanism: β ∈ (0,1) weight decay,
// f ∈ (0,1) efficiency, µ,ν > 1 revenue bases.
func WithReputationParams(beta, f, mu, nu float64) Option {
	return func(o *options) error {
		o.cfg.Params = reputation.Params{Beta: beta, F: f, Mu: mu, Nu: nu}
		return nil
	}
}

// WithBlockLimit sets b_limit, the per-block transaction cap (0 =
// unlimited; overflow carries to the next block).
func WithBlockLimit(limit int) Option {
	return func(o *options) error {
		if limit < 0 {
			return fmt.Errorf("block limit %d: %w", limit, ErrBadOption)
		}
		o.cfg.BlockLimit = limit
		return nil
	}
}

// WithMempool shards the ingestion mempool by provider index into
// shardCount bounded queues of shardCap entries each (shardCap 0 =
// unbounded). A full shard rejects Submit with ErrBacklog before
// anything is signed — backpressure, never silent loss — and each
// round broadcasts at most one WithBlockLimit-sized batch, drained in
// deterministic (shard, submission) order, carrying the backlog over.
// Without this option the chain keeps the legacy single unbounded
// queue that drains fully every round.
func WithMempool(shardCount, shardCap int) Option {
	return func(o *options) error {
		if shardCount <= 0 {
			return fmt.Errorf("mempool shard count %d must be positive: %w", shardCount, ErrBadOption)
		}
		if shardCap < 0 {
			return fmt.Errorf("mempool shard cap %d must be non-negative: %w", shardCap, ErrBadOption)
		}
		o.cfg.MempoolShards = shardCount
		o.cfg.MempoolShardCap = shardCap
		return nil
	}
}

// WithAdmissionFloor makes governors shed verified uploads from
// collectors whose reputation weight for the submitting provider has
// decayed below w ∈ [0, 1] — the same draw-time signal screening uses.
// Weights start at 1 and only decay, so a fresh chain sheds nothing;
// the floor bites only after the mechanism learns to distrust a
// collector. Shed uploads are counted in mempool.shed_total and the
// governor's ShedReports stat. Zero (the default) admits everything.
func WithAdmissionFloor(w float64) Option {
	return func(o *options) error {
		if w < 0 || w > 1 {
			return fmt.Errorf("admission floor %v outside [0, 1]: %w", w, ErrBadOption)
		}
		o.cfg.AdmissionFloor = w
		return nil
	}
}

// WithArgueWindow sets U: an unchecked transaction may be argued until
// U newer unchecked transactions from the same provider exist.
func WithArgueWindow(u int) Option {
	return func(o *options) error {
		if u <= 0 {
			return fmt.Errorf("argue window %d: %w", u, ErrBadOption)
		}
		o.cfg.ArgueWindow = u
		return nil
	}
}

// WithSeed fixes all randomness for reproducible runs.
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.cfg.Seed = seed
		return nil
	}
}

// WithWorkers bounds the goroutines used to fan out per-collector and
// per-governor round work. Zero means one worker per logical CPU (the
// default); 1 forces the fully sequential pipeline. Every setting
// produces byte-identical rounds — parallelism trades only wall time.
// With workers != 1 the Validator must be safe for concurrent use
// (pure functions are).
func WithWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("workers %d: %w", n, ErrBadOption)
		}
		o.cfg.Workers = n
		return nil
	}
}

// WithSilenceDecay makes governors β-decay linked collectors that
// stayed silent on a checked transaction, so withholding a report
// costs reputation on both disclosure paths (checked and unchecked)
// instead of only at unchecked reveals. Silence never moves the
// misreport score — only an actively wrong label does.
func WithSilenceDecay() Option {
	return func(o *options) error {
		o.cfg.SilenceDecay = true
		return nil
	}
}

// WithTracing records every transaction's lifecycle — sign, label,
// upload, screen, elect, pack, commit, argue, reputation update — into
// an in-memory ring buffer of the given span capacity. Tracing is
// purely observational: it consumes no protocol randomness and rounds
// stay byte-identical with it on or off. Zero capacity disables it.
func WithTracing(capacity int) Option {
	return func(o *options) error {
		if capacity < 0 {
			return fmt.Errorf("trace capacity %d: %w", capacity, ErrBadOption)
		}
		o.cfg.TraceCapacity = capacity
		return nil
	}
}

// WithEventLog records consensus-significant events — uploads
// screened, leaders elected, blocks packed and committed, reputation
// deltas with the arguments needed to re-apply them offline, quorum
// changes — into an in-memory ring of the given capacity. Like
// tracing, the log is purely observational: rounds stay byte-identical
// with it on or off. Zero capacity disables it.
func WithEventLog(capacity int) Option {
	return func(o *options) error {
		if capacity < 0 {
			return fmt.Errorf("event capacity %d: %w", capacity, ErrBadOption)
		}
		o.cfg.EventCapacity = capacity
		return nil
	}
}

// WithValidator installs the application's validate(tx).
func WithValidator(v Validator) Option {
	return func(o *options) error {
		if v == nil {
			return fmt.Errorf("nil validator: %w", ErrBadOption)
		}
		o.cfg.Validator = v
		return nil
	}
}

// WithNetworkDelay sets the synchronous bound Δ in logical ticks.
func WithNetworkDelay(maxDelay int) Option {
	return func(o *options) error {
		if maxDelay < 0 {
			return fmt.Errorf("delay %d: %w", maxDelay, ErrBadOption)
		}
		o.cfg.MaxDelay = maxDelay
		return nil
	}
}

// WithCollectorBehaviors assigns per-collector conduct, index-aligned
// with the topology's collectors.
func WithCollectorBehaviors(behaviors ...CollectorBehavior) Option {
	return func(o *options) error {
		o.behaviors = append([]CollectorBehavior(nil), behaviors...)
		return nil
	}
}

// Chain is a running alliance chain: the single-committee facade.
//
// Chain remains fully supported and is exactly a one-committee Cluster:
// NewCluster with the same options (and WithCommittees(1) or no
// committee option at all) produces a byte-identical chain, reachable
// through Cluster.Committee(0). New applications that may ever need
// more than one committee should start from NewCluster; existing Chain
// code keeps working unchanged and can migrate mechanically (see the
// README's migration notes).
type Chain struct {
	engine *core.Engine
}

// New assembles a chain. Required options: WithTopology,
// WithGovernors, WithValidator. The cluster-only options
// WithCommittees and WithPartition are rejected here — use NewCluster.
func New(opts ...Option) (*Chain, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.committees != 0 || o.partition != nil {
		return nil, fmt.Errorf("WithCommittees/WithPartition require NewCluster: %w", ErrBadOption)
	}
	engine, err := core.New(o.cfg)
	if err != nil {
		return nil, err
	}
	return &Chain{engine: engine}, nil
}

// TxID identifies a submitted transaction.
type TxID = crypto.Hash

// Tx is one transaction to submit: the application kind and payload,
// plus the provider's own ground truth about validity (used later to
// decide whether to argue a mislabeled transaction).
type Tx struct {
	Kind    string
	Payload []byte
	Valid   bool
}

// Submit stages one transaction from provider k for the next round's
// collecting phase. isValid is the provider's own ground truth.
// Fails with ErrBacklog when the provider's mempool shard is full
// (WithMempool), ErrUnknownProvider for an out-of-range index, or
// ErrClosed after Close. Submit is SubmitBatch for a single
// transaction without a context.
func (c *Chain) Submit(provider int, kind string, payload []byte, isValid bool) (TxID, error) {
	signed, err := c.engine.SubmitTx(provider, kind, payload, isValid)
	if err != nil {
		return TxID{}, translateErr(err)
	}
	return signed.ID(), nil
}

// SubmitBatch stages a batch of transactions from one provider,
// returning the IDs of the admitted prefix. On backpressure it admits
// as many leading transactions as the provider's shard holds, then
// returns the admitted IDs together with an ErrBacklog-wrapping error;
// callers resume from txs[len(ids)] after running a round. The context
// is checked between transactions, so a cancelled batch also returns
// the admitted prefix with the context's error. Admission is
// all-or-nothing per transaction, never partial within one.
func (c *Chain) SubmitBatch(ctx context.Context, provider int, txs []Tx) ([]TxID, error) {
	ids := make([]TxID, 0, len(txs))
	for _, t := range txs {
		if err := ctx.Err(); err != nil {
			return ids, err
		}
		signed, err := c.engine.SubmitTx(provider, t.Kind, t.Payload, t.Valid)
		if err != nil {
			return ids, translateErr(err)
		}
		ids = append(ids, signed.ID())
	}
	return ids, nil
}

// TransferStake queues a stake transfer between governors for the next
// round's stake-transform block.
func (c *Chain) TransferStake(from, to int, amount uint64) error {
	return c.engine.SubmitStakeTransfer(from, to, amount)
}

// RoundSummary reports one committed round.
type RoundSummary struct {
	// Serial is the committed block's number.
	Serial uint64
	// Leader is the elected governor's index.
	Leader int
	// Records is the number of transactions in the block.
	Records int
	// Uploads counts collector uploads this round.
	Uploads int
	// Argues counts provider disputes raised by this block.
	Argues int
	// StakeCommitted reports whether a stake-transform block also
	// committed.
	StakeCommitted bool
}

// RunRound executes one full protocol round (uploading + processing
// phases) over everything submitted since the previous round. It is
// RunRoundCtx without cancellation.
func (c *Chain) RunRound() (RoundSummary, error) {
	return c.RunRoundCtx(context.Background())
}

// RunRoundCtx is RunRound with cancellation. The context is honored
// only at stage boundaries where abandoning the round leaves every
// replica consistent; once screening begins the round runs to
// completion. A cancelled round returns the context's error, commits
// nothing, and leaves staged traffic intact for the next round.
func (c *Chain) RunRoundCtx(ctx context.Context) (RoundSummary, error) {
	res, err := c.engine.RunRoundCtx(ctx)
	if err != nil {
		return RoundSummary{}, translateErr(err)
	}
	return RoundSummary{
		Serial:         res.Serial,
		Leader:         res.Leader,
		Records:        len(res.Block.Records),
		Uploads:        res.Uploads,
		Argues:         res.Argues,
		StakeCommitted: res.StakeBlock != nil,
	}, nil
}

// Height returns the chain height.
func (c *Chain) Height() uint64 {
	return c.engine.Governor(0).Store().Height()
}

// RecordStatus is one committed transaction's judgment.
type RecordStatus struct {
	// ID is the transaction identifier.
	ID TxID
	// Provider is the authoring provider's node ID.
	Provider string
	// Kind is the application payload type.
	Kind string
	// Payload is the application data.
	Payload []byte
	// Valid reports the recorded status.
	Valid bool
	// Unchecked reports that the governor skipped verification.
	Unchecked bool
}

// Block retrieves the records of block s (the paper's retrieve(s)).
func (c *Chain) Block(s uint64) ([]RecordStatus, error) {
	b, err := c.engine.Governor(0).Store().Get(s)
	if err != nil {
		return nil, err
	}
	out := make([]RecordStatus, 0, len(b.Records))
	for _, r := range b.Records {
		out = append(out, RecordStatus{
			ID:        r.Signed.ID(),
			Provider:  string(r.Signed.Tx.Provider),
			Kind:      r.Signed.Tx.Kind,
			Payload:   append([]byte(nil), r.Signed.Tx.Payload...),
			Valid:     r.Status == tx.StatusValid,
			Unchecked: r.Unchecked,
		})
	}
	return out, nil
}

// VerifyChain audits the full replicated chain: serial ordering, hash
// links, and transaction-root commitments.
func (c *Chain) VerifyChain() error {
	for j := 0; j < c.engine.Governors(); j++ {
		if err := ledger.VerifyChain(c.engine.Governor(j).Store()); err != nil {
			return fmt.Errorf("governor %d: %w", j, err)
		}
	}
	return nil
}

// RevenueShares returns the current revenue split across collectors
// (governor 0's view), the incentive signal of §3.4.3.
func (c *Chain) RevenueShares() ([]float64, error) {
	return c.engine.Governor(0).Table().RevenueShares()
}

// CollectorReputation returns collector c's full reputation vector in
// the paper's layout — s per-provider weights, then w_misreport and
// w_forge — from governor 0's view.
func (c *Chain) CollectorReputation(collector int) ([]float64, error) {
	return c.engine.Governor(0).Table().Vector(collector)
}

// Stakes returns the governors' current stake vector.
func (c *Chain) Stakes() []uint64 {
	return c.engine.StakeLedger().Snapshot()
}

// PendingValid returns how many of provider k's valid transactions
// have not yet been recorded valid — zero once the Validity property
// has caught up.
func (c *Chain) PendingValid(provider int) int {
	return c.engine.Provider(provider).PendingValid()
}

// GovernorStats reports a governor's screening counters.
type GovernorStats = node.GovernorStats

// Stats returns governor j's screening counters.
func (c *Chain) Stats(governor int) GovernorStats {
	return c.engine.Governor(governor).Stats()
}

// Close releases any file-backed governor stores (WithChainDir).
// Chains with in-memory replicas need no Close.
func (c *Chain) Close() error { return c.engine.Close() }

// Metrics renders the chain's operational metrics — protocol anomaly
// counters and signature-cache statistics — one per line, sorted by
// name.
func (c *Chain) Metrics() string { return c.engine.Metrics().Dump() }

// MetricsSnapshot returns the chain's metrics as a structured,
// JSON-serialisable snapshot (counters, gauges, histograms, series).
func (c *Chain) MetricsSnapshot() metrics.Snapshot { return c.engine.Metrics().Snapshot() }

// Span re-exports one recorded lifecycle event (see WithTracing).
type Span = trace.Span

// Trace returns the recorded lifecycle spans of one transaction,
// oldest first. Empty without WithTracing, or if the spans have been
// evicted from the ring buffer.
func (c *Chain) Trace(id TxID) []Span {
	return c.engine.Tracer().ByTrace(id.String())
}

// Spans returns every span currently in the trace ring buffer, oldest
// first. Empty without WithTracing.
func (c *Chain) Spans() []Span { return c.engine.Tracer().Spans() }

// Event re-exports one recorded consensus event (see WithEventLog).
type Event = events.Event

// Events returns every event currently in the consensus event ring,
// oldest first. Empty without WithEventLog.
func (c *Chain) Events() []Event { return c.engine.Events().Events() }

// EventLog exposes the chain's structured event log for replay and
// filtered export (see the events package). Nil without WithEventLog.
func (c *Chain) EventLog() *events.Log { return c.engine.Events() }

// MempoolDepth reports how many staged submissions await the next
// round's drain (always zero right after a round without backpressure).
func (c *Chain) MempoolDepth() int { return c.engine.MempoolDepth() }

// Engine exposes the underlying engine for advanced use (experiments,
// fault injection).
//
// Deprecated: the facade now covers batching (SubmitBatch),
// cancellation (RunRoundCtx), backpressure (WithMempool, ErrBacklog),
// and observability (Metrics, Trace) directly; internal/core's API has
// no compatibility promise. Reach for Engine only in experiments that
// inject faults, and expect it to change underneath you.
func (c *Chain) Engine() *core.Engine { return c.engine }
