package repchain

import (
	"context"
	"errors"
	"testing"
)

func goldenOptions() []Option {
	return []Option{
		WithTopology(8, 4, 2),
		WithGovernors(3),
		WithBlockLimit(16),
		WithSeed(42),
		WithValidator(ValidatorFunc(func(t Transaction) bool {
			return len(t.Payload) > 0 && t.Payload[0] == 1
		})),
	}
}

func goldenPayload(valid bool, a, b byte) []byte {
	p := []byte{0, a, b}
	if valid {
		p[0] = 1
	}
	return p
}

// goldenHashes are the block hashes of the reference K=1 run, captured
// on the pre-cluster engine. They pin the byte-identity guarantee: a
// one-committee cluster must still produce this exact chain.
var goldenHashes = []string{
	"00f2202a4d16f68122926edd6dcfa9237c71ed3cb91e748347d54d5f1f011cb1",
	"83fba54558ce3800ff441bd066927e28cad7b57f9cb471b6a671d1d025bfa288",
	"d6578f2d01d52c055521bc4d47d0daff1a9a47d1cb853e61a4f39550677fd808",
	"a990a0c9954123163899badc34b496e4e1ca1f4c2c48cacac62b664a0cab1bc6",
	"34483077efda13de224bc1f5de37295efe027d19381f3fb20c22301b1d65c271",
}

func runGolden(t *testing.T, submit func(k int, payload []byte, valid bool) error, round func() error) {
	t.Helper()
	for r := 0; r < len(goldenHashes); r++ {
		for j := 0; j < 12; j++ {
			valid := j%3 != 2
			if err := submit(j%8, goldenPayload(valid, byte(j), byte(r)), valid); err != nil {
				t.Fatal(err)
			}
		}
		if err := round(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChainMatchesGoldenHashes(t *testing.T) {
	chain, err := New(goldenOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()
	runGolden(t,
		func(k int, p []byte, valid bool) error { _, err := chain.Submit(k, "golden", p, valid); return err },
		func() error { _, err := chain.RunRound(); return err },
	)
	st := chain.engine.Governor(0).Store()
	for s, want := range goldenHashes {
		b, err := st.Get(uint64(s + 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Hash().String(); got != want {
			t.Fatalf("block %d hash %s, want golden %s", s+1, got, want)
		}
	}
}

func TestClusterK1MatchesGoldenHashes(t *testing.T) {
	cluster, err := NewCluster(append(goldenOptions(), WithCommittees(1))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	runGolden(t,
		func(k int, p []byte, valid bool) error { _, err := cluster.Submit(k, "golden", p, valid); return err },
		func() error { _, err := cluster.RunRound(); return err },
	)
	st := cluster.cl.Engine(0).Governor(0).Store()
	for s, want := range goldenHashes {
		b, err := st.Get(uint64(s + 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Hash().String(); got != want {
			t.Fatalf("K=1 cluster block %d hash %s, want golden %s", s+1, got, want)
		}
	}
}

func TestClusterFacade(t *testing.T) {
	cluster, err := NewCluster(
		WithTopology(8, 16, 2), // collector degree 1: every committee split is legal
		WithGovernors(3),
		WithCommittees(2),
		WithSeed(7),
		WithBlockLimit(32),
		WithTracing(1024),
		WithValidator(ValidatorFunc(func(t Transaction) bool {
			return len(t.Payload) > 0 && t.Payload[0] == 1
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if got := cluster.Committees(); got != 2 {
		t.Fatalf("Committees() = %d, want 2", got)
	}
	if home, err := cluster.Home(3); err != nil || home != 1 {
		t.Fatalf("Home(3) = %d, %v, want committee 1", home, err)
	}
	if _, err := cluster.Committee(2); !errors.Is(err, ErrUnknownCommittee) {
		t.Fatalf("Committee(2) err = %v, want ErrUnknownCommittee", err)
	}

	// Batch submission routes by the partition; cross-shard submission
	// locks on the source committee.
	ids, err := cluster.SubmitBatch(context.Background(), 0, []Tx{
		{Kind: "batch", Payload: goldenPayload(true, 1, 0), Valid: true},
		{Kind: "batch", Payload: goldenPayload(true, 2, 0), Valid: true},
	})
	if err != nil || len(ids) != 2 {
		t.Fatalf("SubmitBatch: ids=%d err=%v", len(ids), err)
	}
	crossID, err := cluster.SubmitCross(0, 1, "wire", goldenPayload(true, 3, 0), true)
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < 6 && (r == 0 || cluster.PendingReceipts() > 0); r++ {
		summaries, err := cluster.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if len(summaries) != 2 {
			t.Fatalf("%d round summaries, want 2", len(summaries))
		}
	}
	if got := cluster.PendingReceipts(); got != 0 {
		t.Fatalf("%d receipts still pending", got)
	}
	if err := cluster.VerifyChain(); err != nil {
		t.Fatal(err)
	}

	cm0, err := cluster.Committee(0)
	if err != nil {
		t.Fatal(err)
	}
	if cm0.Height() == 0 {
		t.Fatal("committee 0 committed nothing")
	}
	if got := cm0.Providers(); len(got) != 4 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("committee 0 providers = %v, want the evens", got)
	}
	if spans := cm0.Trace(crossID); len(spans) == 0 {
		t.Fatal("no trace spans for the cross-shard lock on its source committee")
	}
	snap := cluster.MetricsSnapshot()
	if snap.Gauges[`chain.height{committee="0"}`] == 0 {
		t.Fatalf("cluster snapshot lacks per-committee heights: %v", snap.Gauges)
	}
	if snap.Counters["shard.cross_tx_total"] != 1 {
		t.Fatalf("shard.cross_tx_total = %v, want 1", snap.Counters["shard.cross_tx_total"])
	}
	if cm0.MetricsSnapshot().Counters["engine.rounds_total"] == 0 {
		t.Fatal("committee snapshot lacks engine metrics")
	}
}

func TestNewRejectsClusterOptions(t *testing.T) {
	if _, err := New(append(goldenOptions(), WithCommittees(2))...); !errors.Is(err, ErrBadOption) {
		t.Fatalf("New with WithCommittees: err = %v, want ErrBadOption", err)
	}
	if _, err := New(append(goldenOptions(), WithPartition(func(p, k int) int { return 0 }))...); !errors.Is(err, ErrBadOption) {
		t.Fatalf("New with WithPartition: err = %v, want ErrBadOption", err)
	}
	if _, err := NewCluster(append(goldenOptions(), WithCommittees(0))...); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithCommittees(0): err = %v, want ErrBadOption", err)
	}
}
