package repchain

import (
	"errors"
	"fmt"
	"testing"
)

var testValidator = ValidatorFunc(func(t Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func newTestChain(t *testing.T, extra ...Option) *Chain {
	t.Helper()
	opts := append([]Option{
		WithTopology(4, 4, 2),
		WithGovernors(3),
		WithValidator(testValidator),
		WithSeed(99),
	}, extra...)
	c, err := New(opts...)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	return c
}

func TestNewRequiresValidOptions(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"no validator", []Option{WithTopology(2, 2, 1), WithGovernors(2)}},
		{"no governors", []Option{WithTopology(2, 2, 1), WithValidator(testValidator)}},
		{"bad topology", []Option{WithTopology(3, 2, 1), WithGovernors(2), WithValidator(testValidator)}},
		{"nil validator option", []Option{WithValidator(nil)}},
		{"bad governors", []Option{WithGovernors(-1)}},
		{"bad limit", []Option{WithBlockLimit(-1)}},
		{"bad window", []Option{WithArgueWindow(0)}},
		{"bad delay", []Option{WithNetworkDelay(-1)}},
		{"bad params", []Option{WithTopology(2, 2, 1), WithGovernors(2), WithValidator(testValidator), WithReputationParams(2, 0.5, 1.1, 2)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opts...); err == nil {
				t.Fatal("New() accepted invalid options")
			}
		})
	}
}

func TestChainLifecycle(t *testing.T) {
	c := newTestChain(t)
	ids := make([]TxID, 0, 8)
	for i := 0; i < 8; i++ {
		valid := i%3 != 2
		payload := []byte{0, byte(i)}
		if valid {
			payload[0] = 1
		}
		id, err := c.Submit(i%4, "test/tx", payload, valid)
		if err != nil {
			t.Fatalf("Submit() error = %v", err)
		}
		ids = append(ids, id)
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatalf("RunRound() error = %v", err)
	}
	if sum.Serial != 1 {
		t.Fatalf("Serial = %d", sum.Serial)
	}
	if c.Height() != 1 {
		t.Fatalf("Height() = %d", c.Height())
	}
	records, err := c.Block(1)
	if err != nil {
		t.Fatalf("Block(1) error = %v", err)
	}
	if len(records) == 0 {
		t.Fatal("block empty")
	}
	// Every record corresponds to a submitted transaction.
	known := make(map[TxID]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for _, r := range records {
		if !known[r.ID] {
			t.Fatalf("unknown transaction %v in block", r.ID)
		}
	}
	if err := c.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain() error = %v", err)
	}
}

func TestChainRevenueAndReputationAccessors(t *testing.T) {
	c := newTestChain(t)
	for r := 0; r < 3; r++ {
		for i := 0; i < 6; i++ {
			if _, err := c.Submit(i%4, "t", []byte{1, byte(i)}, true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	shares, err := c.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("shares = %v", shares)
	}
	vec, err := c.CollectorReputation(0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 providers × degree 2 over 4 collectors ⇒ s = 2; vector s+2.
	if len(vec) != 4 {
		t.Fatalf("reputation vector length = %d, want 4", len(vec))
	}
	st := c.Stats(0)
	if st.ReportsReceived == 0 {
		t.Fatal("no reports recorded")
	}
}

func TestChainStakeTransfer(t *testing.T) {
	c := newTestChain(t, WithStakes(4, 3, 3))
	if err := c.TransferStake(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.StakeCommitted {
		t.Fatal("stake block not committed")
	}
	stakes := c.Stakes()
	if stakes[0] != 2 || stakes[1] != 5 {
		t.Fatalf("stakes = %v", stakes)
	}
}

func TestChainAdversarialBehaviors(t *testing.T) {
	c := newTestChain(t,
		WithReputationParams(0.9, 0.8, 1.1, 2),
		WithCollectorBehaviors(
			CollectorBehavior{},
			CollectorBehavior{Misreport: 1},
			CollectorBehavior{Misreport: 1},
			CollectorBehavior{Misreport: 1},
		),
	)
	for r := 0; r < 6; r++ {
		for i := 0; i < 8; i++ {
			if _, err := c.Submit(i%4, "t", []byte{1, byte(i), byte(r)}, true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Drain rounds so argues settle.
	for r := 0; r < 6; r++ {
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		if pending := c.PendingValid(k); pending != 0 {
			t.Fatalf("provider %d has %d unsettled valid txs", k, pending)
		}
	}
	shares, err := c.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if shares[i] >= shares[0] {
			t.Fatalf("liar %d share %.4f ≥ honest %.4f", i, shares[i], shares[0])
		}
	}
}

func TestBlockNotFound(t *testing.T) {
	c := newTestChain(t)
	if _, err := c.Block(1); err == nil {
		t.Fatal("Block(1) on empty chain succeeded")
	}
}

func TestSubmitBadProvider(t *testing.T) {
	c := newTestChain(t)
	if _, err := c.Submit(99, "t", []byte{1}, true); err == nil {
		t.Fatal("Submit(99) succeeded")
	}
	var sentinel error = ErrBadOption
	_ = sentinel
	if !errors.Is(ErrBadOption, ErrBadOption) {
		t.Fatal("sentinel identity broken")
	}
}

func TestChainIrregularLinks(t *testing.T) {
	c, err := New(
		WithTopology(3, 2, 0),
		WithLinks([][]int{{0, 1}, {0}, {1}}),
		WithGovernors(2),
		WithValidator(testValidator),
		WithSeed(3),
	)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(i%3, "t", []byte{1, byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records == 0 {
		t.Fatal("irregular topology committed nothing")
	}
	if err := c.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestChainPersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() *Chain {
		c, err := New(
			WithTopology(2, 2, 1),
			WithGovernors(2),
			WithValidator(testValidator),
			WithSeed(4),
			WithChainDir(dir),
		)
		if err != nil {
			t.Fatalf("New() error = %v", err)
		}
		return c
	}
	c1 := open()
	if _, err := c1.Submit(0, "t", []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.RunRound(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close() error = %v", err)
	}

	c2 := open()
	defer func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	if c2.Height() != 1 {
		t.Fatalf("reloaded height = %d, want 1", c2.Height())
	}
	if _, err := c2.RunRound(); err != nil {
		t.Fatal(err)
	}
	if c2.Height() != 2 {
		t.Fatalf("post-restart height = %d, want 2", c2.Height())
	}
}

func Example() {
	chain, err := New(
		WithTopology(2, 2, 1),
		WithGovernors(2),
		WithValidator(ValidatorFunc(func(t Transaction) bool { return len(t.Payload) > 0 && t.Payload[0] == 1 })),
		WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := chain.Submit(0, "demo", []byte{1}, true); err != nil {
		fmt.Println("error:", err)
		return
	}
	sum, err := chain.RunRound()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("block %d with %d record(s)\n", sum.Serial, sum.Records)
	// Output: block 1 with 1 record(s)
}
