package repchain

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

var testValidator = ValidatorFunc(func(t Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func newTestChain(t *testing.T, extra ...Option) *Chain {
	t.Helper()
	opts := append([]Option{
		WithTopology(4, 4, 2),
		WithGovernors(3),
		WithValidator(testValidator),
		WithSeed(99),
	}, extra...)
	c, err := New(opts...)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	return c
}

func TestNewRequiresValidOptions(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"no validator", []Option{WithTopology(2, 2, 1), WithGovernors(2)}},
		{"no governors", []Option{WithTopology(2, 2, 1), WithValidator(testValidator)}},
		{"bad topology", []Option{WithTopology(3, 2, 1), WithGovernors(2), WithValidator(testValidator)}},
		{"nil validator option", []Option{WithValidator(nil)}},
		{"bad governors", []Option{WithGovernors(-1)}},
		{"bad limit", []Option{WithBlockLimit(-1)}},
		{"bad window", []Option{WithArgueWindow(0)}},
		{"bad delay", []Option{WithNetworkDelay(-1)}},
		{"bad params", []Option{WithTopology(2, 2, 1), WithGovernors(2), WithValidator(testValidator), WithReputationParams(2, 0.5, 1.1, 2)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opts...); err == nil {
				t.Fatal("New() accepted invalid options")
			}
		})
	}
}

func TestChainLifecycle(t *testing.T) {
	c := newTestChain(t)
	ids := make([]TxID, 0, 8)
	for i := 0; i < 8; i++ {
		valid := i%3 != 2
		payload := []byte{0, byte(i)}
		if valid {
			payload[0] = 1
		}
		id, err := c.Submit(i%4, "test/tx", payload, valid)
		if err != nil {
			t.Fatalf("Submit() error = %v", err)
		}
		ids = append(ids, id)
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatalf("RunRound() error = %v", err)
	}
	if sum.Serial != 1 {
		t.Fatalf("Serial = %d", sum.Serial)
	}
	if c.Height() != 1 {
		t.Fatalf("Height() = %d", c.Height())
	}
	records, err := c.Block(1)
	if err != nil {
		t.Fatalf("Block(1) error = %v", err)
	}
	if len(records) == 0 {
		t.Fatal("block empty")
	}
	// Every record corresponds to a submitted transaction.
	known := make(map[TxID]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for _, r := range records {
		if !known[r.ID] {
			t.Fatalf("unknown transaction %v in block", r.ID)
		}
	}
	if err := c.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain() error = %v", err)
	}
}

func TestChainRevenueAndReputationAccessors(t *testing.T) {
	c := newTestChain(t)
	for r := 0; r < 3; r++ {
		for i := 0; i < 6; i++ {
			if _, err := c.Submit(i%4, "t", []byte{1, byte(i)}, true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	shares, err := c.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 4 {
		t.Fatalf("shares = %v", shares)
	}
	vec, err := c.CollectorReputation(0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 providers × degree 2 over 4 collectors ⇒ s = 2; vector s+2.
	if len(vec) != 4 {
		t.Fatalf("reputation vector length = %d, want 4", len(vec))
	}
	st := c.Stats(0)
	if st.ReportsReceived == 0 {
		t.Fatal("no reports recorded")
	}
}

func TestChainStakeTransfer(t *testing.T) {
	c := newTestChain(t, WithStakes(4, 3, 3))
	if err := c.TransferStake(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.StakeCommitted {
		t.Fatal("stake block not committed")
	}
	stakes := c.Stakes()
	if stakes[0] != 2 || stakes[1] != 5 {
		t.Fatalf("stakes = %v", stakes)
	}
}

func TestChainAdversarialBehaviors(t *testing.T) {
	c := newTestChain(t,
		WithReputationParams(0.9, 0.8, 1.1, 2),
		WithCollectorBehaviors(
			CollectorBehavior{},
			CollectorBehavior{Misreport: 1},
			CollectorBehavior{Misreport: 1},
			CollectorBehavior{Misreport: 1},
		),
	)
	for r := 0; r < 6; r++ {
		for i := 0; i < 8; i++ {
			if _, err := c.Submit(i%4, "t", []byte{1, byte(i), byte(r)}, true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Drain rounds so argues settle.
	for r := 0; r < 6; r++ {
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		if pending := c.PendingValid(k); pending != 0 {
			t.Fatalf("provider %d has %d unsettled valid txs", k, pending)
		}
	}
	shares, err := c.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if shares[i] >= shares[0] {
			t.Fatalf("liar %d share %.4f ≥ honest %.4f", i, shares[i], shares[0])
		}
	}
}

func TestBlockNotFound(t *testing.T) {
	c := newTestChain(t)
	if _, err := c.Block(1); err == nil {
		t.Fatal("Block(1) on empty chain succeeded")
	}
}

func TestSubmitBadProvider(t *testing.T) {
	c := newTestChain(t)
	if _, err := c.Submit(99, "t", []byte{1}, true); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("Submit(99) error = %v, want ErrUnknownProvider", err)
	}
	if _, err := c.SubmitBatch(context.Background(), -1, []Tx{{Kind: "t", Payload: []byte{1}, Valid: true}}); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("SubmitBatch(-1) error = %v, want ErrUnknownProvider", err)
	}
}

func TestWithMempoolValidation(t *testing.T) {
	tests := []struct {
		name string
		opt  Option
		want string
	}{
		{"zero shards", WithMempool(0, 16), "shard count"},
		{"negative shards", WithMempool(-2, 16), "shard count"},
		{"negative cap", WithMempool(4, -1), "shard cap"},
		{"floor below zero", WithAdmissionFloor(-0.2), "admission floor"},
		{"floor above one", WithAdmissionFloor(1.2), "admission floor"},
		{"zero snapshot cadence", WithSnapshotEvery(0), "snapshot cadence"},
		{"negative snapshot cadence", WithSnapshotEvery(-3), "snapshot cadence"},
		{"zero segment bytes", WithSegmentBytes(0), "segment bytes"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(WithTopology(2, 2, 1), WithGovernors(2), WithValidator(testValidator), tt.opt)
			if !errors.Is(err, ErrBadOption) {
				t.Fatalf("New() error = %v, want ErrBadOption", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not name the bad field %q", err, tt.want)
			}
		})
	}
}

func TestSubmitBatchAndBacklog(t *testing.T) {
	c := newTestChain(t, WithMempool(4, 2), WithBlockLimit(0))
	// Provider 0's shard holds 2: a batch of 4 admits a 2-tx prefix and
	// reports backpressure.
	txs := make([]Tx, 4)
	for i := range txs {
		txs[i] = Tx{Kind: "t", Payload: []byte{1, byte(i)}, Valid: true}
	}
	ids, err := c.SubmitBatch(context.Background(), 0, txs)
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("SubmitBatch error = %v, want ErrBacklog", err)
	}
	if len(ids) != 2 {
		t.Fatalf("admitted prefix = %d txs, want 2", len(ids))
	}
	if c.MempoolDepth() != 2 {
		t.Fatalf("MempoolDepth() = %d, want 2", c.MempoolDepth())
	}
	// A round drains the shard; the rest of the batch then fits.
	if _, err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	rest, err := c.SubmitBatch(context.Background(), 0, txs[len(ids):])
	if err != nil {
		t.Fatalf("resumed batch error = %v", err)
	}
	if len(rest) != 2 {
		t.Fatalf("resumed batch admitted %d, want 2", len(rest))
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 2 {
		t.Fatalf("second round committed %d records, want 2", sum.Records)
	}
}

func TestSubmitBatchCancelled(t *testing.T) {
	c := newTestChain(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ids, err := c.SubmitBatch(ctx, 0, []Tx{{Kind: "t", Payload: []byte{1}, Valid: true}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SubmitBatch error = %v, want context.Canceled", err)
	}
	if len(ids) != 0 {
		t.Fatalf("cancelled batch admitted %d txs", len(ids))
	}
}

func TestRunRoundCtxCancelled(t *testing.T) {
	c := newTestChain(t)
	if _, err := c.Submit(0, "t", []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunRoundCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunRoundCtx error = %v, want context.Canceled", err)
	}
	// Staged traffic survives cancellation and commits next round.
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 1 {
		t.Fatalf("post-cancel round committed %d records, want 1", sum.Records)
	}
}

func TestChainClosed(t *testing.T) {
	c := newTestChain(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(0, "t", []byte{1}, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close error = %v, want ErrClosed", err)
	}
	if _, err := c.RunRound(); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunRound after Close error = %v, want ErrClosed", err)
	}
}

// TestMempoolBurstCommitsFully is the acceptance gate for the sharded
// mempool: a 10k-transaction burst from 8 providers through a 4-shard,
// 256-cap mempool commits completely under backpressure, and without an
// admission floor nothing is shed.
func TestMempoolBurstCommitsFully(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-tx burst skipped in -short mode")
	}
	const burst = 10_000
	c, err := New(
		WithTopology(8, 4, 2),
		WithGovernors(3),
		WithValidator(testValidator),
		WithSeed(7),
		WithMempool(4, 256),
		WithBlockLimit(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	submitted, committed, rounds := 0, 0, 0
	for submitted < burst || c.MempoolDepth() > 0 {
		for submitted < burst {
			_, err := c.Submit(submitted%8, "burst", []byte{1, byte(submitted), byte(submitted >> 8)}, true)
			if errors.Is(err, ErrBacklog) {
				break // shard full: run a round, then resume
			}
			if err != nil {
				t.Fatalf("submit %d: %v", submitted, err)
			}
			submitted++
		}
		sum, err := c.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		committed += sum.Records
		rounds++
		if rounds > burst/64 {
			t.Fatalf("burst failed to drain: %d/%d committed after %d rounds", committed, burst, rounds)
		}
	}
	if committed != burst {
		t.Fatalf("committed %d of %d burst transactions", committed, burst)
	}
	snap := c.MetricsSnapshot()
	if shed := snap.Counters["mempool.shed_total"]; shed != 0 {
		t.Fatalf("mempool.shed_total = %v without an admission floor, want 0", shed)
	}
	if admitted := snap.Counters["mempool.admitted_total"]; admitted != burst {
		t.Fatalf("mempool.admitted_total = %v, want %d", admitted, burst)
	}
	if err := c.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestChainIrregularLinks(t *testing.T) {
	c, err := New(
		WithTopology(3, 2, 0),
		WithLinks([][]int{{0, 1}, {0}, {1}}),
		WithGovernors(2),
		WithValidator(testValidator),
		WithSeed(3),
	)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(i%3, "t", []byte{1, byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records == 0 {
		t.Fatal("irregular topology committed nothing")
	}
	if err := c.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestChainPersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() *Chain {
		c, err := New(
			WithTopology(2, 2, 1),
			WithGovernors(2),
			WithValidator(testValidator),
			WithSeed(4),
			WithChainDir(dir),
		)
		if err != nil {
			t.Fatalf("New() error = %v", err)
		}
		return c
	}
	c1 := open()
	if _, err := c1.Submit(0, "t", []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.RunRound(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close() error = %v", err)
	}

	c2 := open()
	defer func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	if c2.Height() != 1 {
		t.Fatalf("reloaded height = %d, want 1", c2.Height())
	}
	if _, err := c2.RunRound(); err != nil {
		t.Fatal(err)
	}
	if c2.Height() != 2 {
		t.Fatalf("post-restart height = %d, want 2", c2.Height())
	}
}

func TestChainSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() *Chain {
		c, err := New(
			WithTopology(2, 2, 1),
			WithGovernors(2),
			WithValidator(testValidator),
			WithSeed(4),
			WithChainDir(dir),
			WithSnapshotEvery(2),
			WithSegmentBytes(1024),
		)
		if err != nil {
			t.Fatalf("New() error = %v", err)
		}
		return c
	}
	c1 := open()
	for i := 0; i < 6; i++ {
		if _, err := c1.Submit(0, "t", []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close() error = %v", err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "governor-0.chain", "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots on disk after 6 rounds at cadence 2 (err=%v)", err)
	}

	c2 := open()
	defer func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	if c2.Height() != 6 {
		t.Fatalf("reloaded height = %d, want 6", c2.Height())
	}
	if err := c2.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain() over snapshotted chain: %v", err)
	}
	if _, err := c2.RunRound(); err != nil {
		t.Fatal(err)
	}
	if c2.Height() != 7 {
		t.Fatalf("post-restart height = %d, want 7", c2.Height())
	}
}

func Example() {
	chain, err := New(
		WithTopology(2, 2, 1),
		WithGovernors(2),
		WithValidator(ValidatorFunc(func(t Transaction) bool { return len(t.Payload) > 0 && t.Payload[0] == 1 })),
		WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := chain.Submit(0, "demo", []byte{1}, true); err != nil {
		fmt.Println("error:", err)
		return
	}
	sum, err := chain.RunRound()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("block %d with %d record(s)\n", sum.Serial, sum.Records)
	// Output: block 1 with 1 record(s)
}
