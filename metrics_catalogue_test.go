// Drift test for the observability docs: every metric name registered
// anywhere in the codebase must be listed in DESIGN.md §4c's metric
// catalogue, so the docs cannot silently fall behind the code.
package repchain_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var metricCallRe = regexp.MustCompile(`\.(Counter|Gauge|Series|CounterVec|Histogram|HistogramVec)\(\s*"([a-z0-9_.]+)"`)

func TestMetricNamesDocumented(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	catalogue := string(design)

	names := map[string][]string{} // metric name → files registering it
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// The metrics package itself and testdata register no
			// product metrics; .git is noise.
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "internal/metrics" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricCallRe.FindAllStringSubmatch(string(src), -1) {
			names[m[2]] = append(names[m[2]], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no metric registrations found — scanner regex broken?")
	}

	var missing []string
	for name := range names {
		if !strings.Contains(catalogue, "`"+name+"`") && !strings.Contains(catalogue, name) {
			missing = append(missing, name+" (registered in "+strings.Join(names[name], ", ")+")")
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("metric names missing from the DESIGN.md §4c catalogue:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
