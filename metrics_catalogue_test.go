// Drift test for the observability docs: every metric name registered
// anywhere in the codebase must be listed in DESIGN.md §4c's metric
// catalogue, so the docs cannot silently fall behind the code. The
// catalogue is parsed by repchain/internal/designdoc — the same
// package the compile-time metricname analyzer (tools/lint/metricname)
// uses — so this runtime gate and the lint gate cannot drift from each
// other either.
package repchain_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repchain/internal/designdoc"
)

var metricCallRe = regexp.MustCompile(`\.(Counter|Gauge|Series|CounterVec|Histogram|HistogramVec)\(\s*"([a-z0-9_.]+)"`)

func TestMetricNamesDocumented(t *testing.T) {
	catalogue, err := designdoc.LoadMetricCatalogue("DESIGN.md")
	if err != nil {
		t.Fatalf("parse DESIGN.md catalogue: %v", err)
	}

	names := map[string][]string{} // metric name → files registering it
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// The metrics package itself and testdata register no
			// product metrics; .git is noise.
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "internal/metrics" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricCallRe.FindAllStringSubmatch(string(src), -1) {
			names[m[2]] = append(names[m[2]], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no metric registrations found — scanner regex broken?")
	}

	var missing []string
	for name := range names {
		if !catalogue[name] {
			missing = append(missing, name+" (registered in "+strings.Join(names[name], ", ")+")")
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("metric names missing from the DESIGN.md §4c catalogue:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
