# RepChain build and verification targets. Pure Go, stdlib only.

GO ?= go

.PHONY: all build test test-short vet bench experiments examples demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per EXPERIMENTS.md table, plus micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation table (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/repchain-bench -seed 42

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/carsharing
	$(GO) run ./examples/insurance
	$(GO) run ./examples/adversary

# Full alliance over loopback TCP.
demo:
	$(GO) run ./cmd/repchain-node -demo -rounds 6

clean:
	$(GO) clean ./...
