# RepChain build and verification targets. Pure Go, stdlib only.

GO ?= go
BENCHTIME ?= 1s

.PHONY: all ci build test test-short race vet fmt-check lint tools-test vuln bench bench-round bench-check bench-baseline crash-consistency fuzz-smoke soak experiments examples demo apidiff clean

all: build vet test race lint

# Mirrors .github/workflows/ci.yml so contributors can reproduce a CI
# failure locally before pushing.
ci: build vet fmt-check test race lint tools-test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Determinism-and-concurrency lint gate (DESIGN.md §4e, §4j): the
# custom go/analysis-style passes in tools/ — detrange, wallclock,
# lockguard, metricname, errwrapcheck, plus the interprocedural
# dettaint, goroleak, and atomicmix — must report zero unsuppressed
# findings. -timing prints per-analyzer wall time and -deadline fails
# the run if the suite exceeds the budget, keeping the gate honest
# about its own cost. The linter lives in its own module
# (tools/go.mod), hence the cd.
lint:
	cd tools && $(GO) run ./cmd/repchain-lint -C .. -timing -deadline 120s ./...

# Machine-readable lint report (suppressed findings included) for CI
# artifact upload and offline triage.
lint-json:
	cd tools && $(GO) run ./cmd/repchain-lint -C .. -json ./... > ../lint-report.json || true
	@echo "wrote lint-report.json"

# The analyzers' own analysistest suites (failing + suppressed fixture
# per rule).
tools-test:
	cd tools && $(GO) test ./...

# Known-vulnerability scan over the main module. Installed on demand
# and skipped with a notice when absent, mirroring the CI govulncheck
# job, so offline checkouts stay green.
vuln:
	@if ! command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	else \
		govulncheck ./...; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the full tree — the parallel round pipeline
# and the shared verification cache must stay clean under -race.
race:
	$(GO) test -race ./...

# One testing.B benchmark per EXPERIMENTS.md table, plus micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end round latency across worker counts plus the hot-path
# micro-benches behind it (batch signature verification, incremental
# Merkle, pooled per-tx encoding) and the store-reopen latency matrix
# (replay vs snapshot recovery); raw `go test -json` output lands in
# BENCH_round.json for the bench-check gate and dashboards. The second
# invocation re-samples the tracing-overhead pair back-to-back twice
# more: benchcheck averages repeated result lines, and the ≤1.05x
# tracing-on/tracing-off ratio gate (DESIGN.md §4h) needs temporally
# adjacent samples so machine drift cancels out of the ratio.
bench-round:
	$(GO) test -json -run '^$$' \
		-bench 'BenchmarkFullProtocolRound|BenchmarkVerifyBatch|BenchmarkVerifySequential|BenchmarkMerkleIncremental|BenchmarkTxEncodeSigning|BenchmarkStoreReopen' \
		-benchtime $(BENCHTIME) -benchmem . ./internal/crypto ./internal/tx ./internal/ledger > BENCH_round.json
	$(GO) test -json -run '^$$' \
		-bench 'BenchmarkFullProtocolRound/(workers=1$$|tracing=on)' \
		-benchtime $(BENCHTIME) -count 2 -benchmem . >> BENCH_round.json

# Bench-regression gate (DESIGN.md §4f): compare the fresh
# BENCH_round.json against the checked-in BENCH_baseline.json.
# allocs/op growth is a hard failure; tx/s regression beyond 10% fails
# too (override with BENCHCHECK_FLAGS='-txs-tol 0.5' on hardware that
# differs from the baseline machine).
BENCHCHECK_FLAGS ?=
bench-check: bench-round
	$(GO) run ./cmd/repchain-benchcheck -baseline BENCH_baseline.json \
		-current BENCH_round.json -benchtime $(BENCHTIME) $(BENCHCHECK_FLAGS)

# Refresh the baseline from a fresh run on this machine; commit the
# rewritten BENCH_baseline.json when a PR intentionally shifts
# performance.
bench-baseline: bench-round
	$(GO) run ./cmd/repchain-benchcheck -baseline BENCH_baseline.json \
		-current BENCH_round.json -benchtime $(BENCHTIME) -update \
		-machine "$$(uname -sm), $$(nproc 2>/dev/null || echo '?') cores"

# Crash-consistency matrix (DESIGN.md §4g): torn-tail truncation,
# mid-segment corruption, damaged indexes, kill-during-snapshot,
# forged snapshots, and legacy-file migration, plus the engine-level
# restart-from-snapshot paths. Mirrors the CI crash-consistency job.
crash-consistency:
	$(GO) test -count=1 ./internal/ledger \
		-run 'Torn|Truncated|Corrupt|KillDuring|Snapshot|Migration|Prune'
	$(GO) test -count=1 ./internal/core -run 'Snapshot|Restart|Persist'
	$(GO) test -count=1 ./internal/transport -run 'Persistence'

# Short coverage-guided fuzz pass over the segment and snapshot
# decoders. `go test -fuzz` accepts one target per invocation, hence
# the loop. FUZZTIME=30s in CI; keep it short locally.
FUZZTIME ?= 10s
fuzz-smoke:
	@for target in FuzzSegmentOpen FuzzSnapshotLoad; do \
		$(GO) test ./internal/ledger -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Long-running segmented-store soak (nightly CI): many rounds against
# a small segment size with pruning on, asserting bounded heap growth
# and a bounded live segment count. SOAK_ROUNDS=100000 in the nightly
# workflow; the default keeps local runs quick.
# SOAK_OUT is resolved to an absolute path because the test runs with
# the package directory as its working directory.
SOAK_ROUNDS ?= 2000
SOAK_OUT ?= $(CURDIR)/SOAK_metrics.json
soak:
	REPCHAIN_SOAK_ROUNDS=$(SOAK_ROUNDS) REPCHAIN_SOAK_OUT=$(SOAK_OUT) \
		$(GO) test -count=1 -v ./internal/ledger -run TestSoakSegmentedStore

# Regenerate every evaluation table (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/repchain-bench -seed 42

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/carsharing
	$(GO) run ./examples/insurance
	$(GO) run ./examples/adversary

# Diff package repchain's exported API against a baseline commit
# (default: previous commit) and report incompatible changes, mirroring
# the CI apidiff job. Requires golang.org/x/exp/cmd/apidiff on PATH;
# skips with a notice when absent so offline checkouts stay green.
APIDIFF_BASE ?= HEAD^
apidiff:
	@if ! command -v apidiff >/dev/null 2>&1; then \
		echo "apidiff not installed; skipping (go install golang.org/x/exp/cmd/apidiff@latest)"; \
	else \
		tmp="$$(mktemp -d)"; \
		git worktree add --quiet "$$tmp/base" $(APIDIFF_BASE); \
		(cd "$$tmp/base" && apidiff -w "$$tmp/repchain.base" repchain); \
		apidiff -incompatible "$$tmp/repchain.base" repchain | tee "$$tmp/report.txt"; \
		status=0; [ -s "$$tmp/report.txt" ] && status=1; \
		git worktree remove --force "$$tmp/base"; \
		rm -rf "$$tmp"; \
		exit $$status; \
	fi

# Full alliance over loopback TCP.
demo:
	$(GO) run ./cmd/repchain-node -demo -rounds 6

clean:
	$(GO) clean ./...
