# RepChain build and verification targets. Pure Go, stdlib only.

GO ?= go

.PHONY: all build test test-short race vet bench bench-round experiments examples demo clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the full tree — the parallel round pipeline
# and the shared verification cache must stay clean under -race.
race:
	$(GO) test -race ./...

# One testing.B benchmark per EXPERIMENTS.md table, plus micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end round latency across worker counts, with the
# signature-cache hit rate attached; raw tool output lands in
# BENCH_round.json for dashboards and regression diffing.
bench-round:
	$(GO) test -json -run '^$$' -bench BenchmarkFullProtocolRound -benchmem . > BENCH_round.json

# Regenerate every evaluation table (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/repchain-bench -seed 42

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/carsharing
	$(GO) run ./examples/insurance
	$(GO) run ./examples/adversary

# Full alliance over loopback TCP.
demo:
	$(GO) run ./cmd/repchain-node -demo -rounds 6

clean:
	$(GO) clean ./...
