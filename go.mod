module repchain

go 1.22
