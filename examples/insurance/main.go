// Command insurance reproduces the paper's §5.2 use case:
// critical-illness insurance sold through independent agents.
// Potential policyholders (providers) sign application materials;
// independent agents (collectors) verify and label them; insurance
// companies (governors) screen a fraction guided by agent reputation
// and price premiums for the eligible applications.
//
// One agent colludes with applicants — labeling ineligible
// applications +1 to earn commissions — and the run shows the
// reputation mechanism both catching the bad labels and cutting the
// agent's revenue share.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repchain"
	"repchain/internal/apps/insurance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "insurance:", err)
		os.Exit(1)
	}
}

func run() error {
	policy := insurance.DefaultPolicy()
	// 8 applicants, 4 agents (agent 0 colludes: flips 70% of labels),
	// 3 insurance companies.
	chain, err := repchain.New(
		repchain.WithTopology(8, 4, 2),
		repchain.WithGovernors(3),
		repchain.WithValidator(policy.Validator()),
		repchain.WithReputationParams(0.9, 0.7, 1.1, 2.0),
		repchain.WithCollectorBehaviors(
			repchain.CollectorBehavior{Misreport: 0.7},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
		),
		repchain.WithSeed(11),
	)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(11))
	names := []string{"ana", "bo", "cam", "dee", "eli", "fay", "gus", "hal"}
	conditionPool := []string{"mild-asthma", "hypertension", "diabetes", "terminal-illness"}

	fmt.Println("== insurance alliance on RepChain ==")
	totalEligible, totalPremium := 0, int64(0)
	for round := 1; round <= 6; round++ {
		for i, name := range names {
			app := insurance.Application{
				Applicant:         fmt.Sprintf("%s-%d", name, round),
				Age:               18 + rng.Intn(65),
				Smoker:            rng.Float64() < 0.3,
				AnnualIncomeCents: int64(2_000_000 + rng.Intn(10_000_000)),
			}
			app.CoverageCents = app.AnnualIncomeCents * int64(5+rng.Intn(25))
			if rng.Float64() < 0.25 {
				app.Conditions = append(app.Conditions, conditionPool[rng.Intn(len(conditionPool))])
			}
			eligible := policy.Eligible(app)
			if _, err := chain.Submit(i, insurance.Kind, app.Encode(), eligible); err != nil {
				return err
			}
		}
		sum, err := chain.RunRound()
		if err != nil {
			return err
		}
		records, err := chain.Block(sum.Serial)
		if err != nil {
			return err
		}
		issued := 0
		for _, r := range records {
			if !r.Valid {
				continue
			}
			app, err := insurance.Decode(r.Payload)
			if err != nil {
				continue
			}
			issued++
			totalEligible++
			totalPremium += policy.PremiumCents(app)
		}
		fmt.Printf("round %d: block #%d by insurer %d — %d applications recorded, %d policies issued, %d argued\n",
			round, sum.Serial, sum.Leader, len(records), issued, sum.Argues)
	}

	// Settle outstanding argues.
	for i := 0; i < 4; i++ {
		if _, err := chain.RunRound(); err != nil {
			return err
		}
	}

	fmt.Printf("\nissued %d policies, total annual premium %d¢\n", totalEligible, totalPremium)
	shares, err := chain.RevenueShares()
	if err != nil {
		return err
	}
	fmt.Println("agent commission shares (agent-0 colludes with applicants):")
	for a, s := range shares {
		fmt.Printf("  agent-%d: %.3f\n", a, s)
	}
	vec, err := chain.CollectorReputation(0)
	if err != nil {
		return err
	}
	fmt.Printf("agent-0 reputation vector (per-policyholder weights, misreport, forge): %.3f\n", vec)
	st := chain.Stats(0)
	fmt.Printf("insurer 0 screened %d applications, skipped %d (reputation-guided), caught %d mislabels via argue\n",
		st.Checked, st.Unchecked, st.ArguesAccepted)
	return chain.VerifyChain()
}
