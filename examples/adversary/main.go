// Command adversary stress-tests the reputation mechanism against all
// three misbehaviour classes of the paper's §4.2 at once: a
// misreporter, a concealer, and a forger operate alongside one honest
// collector, and the run prints how their reputation components and
// revenue shares evolve round by round.
package main

import (
	"fmt"
	"os"

	"repchain"
)

var validator = repchain.ValidatorFunc(func(t repchain.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	chain, err := repchain.New(
		repchain.WithTopology(4, 4, 4), // every collector oversees every provider
		repchain.WithGovernors(3),
		repchain.WithValidator(validator),
		repchain.WithReputationParams(0.9, 0.8, 1.1, 2.0),
		repchain.WithCollectorBehaviors(
			repchain.CollectorBehavior{},               // 0: honest
			repchain.CollectorBehavior{Misreport: 0.8}, // 1: misreporter (class 1)
			repchain.CollectorBehavior{Conceal: 0.8},   // 2: concealer (class 2)
			repchain.CollectorBehavior{Forge: 0.9},     // 3: forger (class 3)
		),
		repchain.WithSeed(5),
	)
	if err != nil {
		return err
	}

	fmt.Println("== adversary gauntlet: honest vs misreporter vs concealer vs forger ==")
	fmt.Println("round | share(honest) share(misrep) share(conceal) share(forger) | argues")
	for round := 1; round <= 12; round++ {
		for i := 0; i < 12; i++ {
			valid := i%4 != 3
			payload := []byte{0, byte(i), byte(round)}
			if valid {
				payload[0] = 1
			}
			if _, err := chain.Submit(i%4, "gauntlet", payload, valid); err != nil {
				return err
			}
		}
		sum, err := chain.RunRound()
		if err != nil {
			return err
		}
		shares, err := chain.RevenueShares()
		if err != nil {
			return err
		}
		fmt.Printf("%5d | %13.3f %13.3f %14.3f %13.3f | %d\n",
			round, shares[0], shares[1], shares[2], shares[3], sum.Argues)
	}

	fmt.Println("\nfinal reputation vectors (per-provider weights..., misreport, forge):")
	labels := []string{"honest    ", "misreporter", "concealer ", "forger    "}
	for c := 0; c < 4; c++ {
		vec, err := chain.CollectorReputation(c)
		if err != nil {
			return err
		}
		fmt.Printf("  %s %7.4f\n", labels[c], vec)
	}
	st := chain.Stats(0)
	fmt.Printf("\ngovernor 0: %d forgeries detected, %d transactions checked, %d left unchecked, %d recovered by argue\n",
		st.ForgeriesDetected, st.Checked, st.Unchecked, st.ArguesAccepted)
	return chain.VerifyChain()
}
