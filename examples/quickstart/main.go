// Command quickstart is the smallest end-to-end RepChain program: a
// 4-provider / 4-collector / 3-governor alliance that batch-submits
// transactions through the sharded mempool, runs protocol rounds, and
// prints what each block recorded.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repchain"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// validator: a transaction is valid when its first payload byte is 1.
// Real applications replace this with domain rules (see the carsharing
// and insurance examples).
var validator = repchain.ValidatorFunc(func(t repchain.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func run(ctx context.Context) error {
	chain, err := repchain.New(
		repchain.WithTopology(4, 4, 2), // 4 providers, 4 collectors, 2 collectors per provider
		repchain.WithGovernors(3),
		repchain.WithValidator(validator),
		repchain.WithReputationParams(0.9, 0.5, 1.1, 2.0), // β, f, µ, ν — the paper's defaults
		repchain.WithMempool(4, 64),                       // bounded per-provider shards; full = ErrBacklog
		repchain.WithSeed(2024),
	)
	if err != nil {
		return err
	}

	fmt.Println("submitting 12 transactions (every third one invalid)...")
	batches := make(map[int][]repchain.Tx, 4)
	for i := 0; i < 12; i++ {
		valid := i%3 != 2
		payload := []byte{0, byte(i)}
		if valid {
			payload[0] = 1
		}
		batches[i%4] = append(batches[i%4], repchain.Tx{
			Kind:    "quickstart/demo",
			Payload: payload,
			Valid:   valid,
		})
	}
	for provider := 0; provider < 4; provider++ {
		ids, err := chain.SubmitBatch(ctx, provider, batches[provider])
		if errors.Is(err, repchain.ErrBacklog) {
			// The shard is full: ids holds the admitted prefix. A real
			// ingester would run a round and resume from txs[len(ids)];
			// here 3 tx per provider never fill a 64-slot shard.
			return fmt.Errorf("unexpected backpressure after %d txs: %w", len(ids), err)
		}
		if err != nil {
			return err
		}
		for j, id := range ids {
			fmt.Printf("  provider %d -> tx %s (valid=%v)\n", provider, id.Short(), batches[provider][j].Valid)
		}
	}

	for round := 0; round < 3; round++ {
		sum, err := chain.RunRoundCtx(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("\nround %d: block #%d by governor %d — %d records, %d uploads, %d argues\n",
			round+1, sum.Serial, sum.Leader, sum.Records, sum.Uploads, sum.Argues)
		records, err := chain.Block(sum.Serial)
		if err != nil {
			return err
		}
		for _, r := range records {
			state := "valid"
			if !r.Valid {
				state = "invalid"
			}
			if r.Unchecked {
				state += " (unchecked)"
			}
			fmt.Printf("  tx %s from %s: %s\n", r.ID.Short(), r.Provider, state)
		}
	}

	if err := chain.VerifyChain(); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fmt.Println("\nchain verified: serials, hash links, and tx roots all consistent")

	shares, err := chain.RevenueShares()
	if err != nil {
		return err
	}
	fmt.Println("collector revenue shares (all honest, so roughly equal):")
	for c, s := range shares {
		fmt.Printf("  collector %d: %.3f\n", c, s)
	}
	return nil
}
