// Command quickstart is the smallest end-to-end RepChain program: a
// 4-provider / 4-collector / 3-governor alliance sharded across two
// committees. It batch-submits transactions through the cluster's
// partition routing, sends one cross-shard transfer through the
// two-phase receipt protocol, runs protocol rounds, and prints what
// each committee's blocks recorded.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repchain"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// validator: a transaction is valid when its first payload byte is 1.
// Real applications replace this with domain rules (see the carsharing
// and insurance examples).
var validator = repchain.ValidatorFunc(func(t repchain.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func run(ctx context.Context) error {
	// WithTopology describes the whole alliance; WithCommittees(2)
	// splits it into two committees along the default modulo partition
	// (even providers on committee 0, odd on committee 1), each with
	// its own collectors, governors, and chain. Drop WithCommittees —
	// or use repchain.New with the same options — and the single
	// resulting chain is byte-identical.
	cluster, err := repchain.NewCluster(
		repchain.WithTopology(4, 4, 2), // 4 providers, 4 collectors, 2 collectors per provider
		repchain.WithGovernors(3),
		repchain.WithCommittees(2),
		repchain.WithValidator(validator),
		repchain.WithReputationParams(0.9, 0.5, 1.1, 2.0), // β, f, µ, ν — the paper's defaults
		repchain.WithMempool(4, 64),                       // bounded per-provider shards; full = ErrBacklog
		repchain.WithSeed(2024),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	fmt.Println("submitting 12 transactions (every third one invalid)...")
	batches := make(map[int][]repchain.Tx, 4)
	for i := 0; i < 12; i++ {
		valid := i%3 != 2
		payload := []byte{0, byte(i)}
		if valid {
			payload[0] = 1
		}
		batches[i%4] = append(batches[i%4], repchain.Tx{
			Kind:    "quickstart/demo",
			Payload: payload,
			Valid:   valid,
		})
	}
	for provider := 0; provider < 4; provider++ {
		// SubmitBatch routes each provider's batch to its home
		// committee; callers never name committees directly.
		ids, err := cluster.SubmitBatch(ctx, provider, batches[provider])
		if errors.Is(err, repchain.ErrBacklog) {
			// The shard is full: ids holds the admitted prefix. A real
			// ingester would run a round and resume from txs[len(ids)];
			// here 3 tx per provider never fill a 64-slot shard.
			return fmt.Errorf("unexpected backpressure after %d txs: %w", len(ids), err)
		}
		if err != nil {
			return err
		}
		home, err := cluster.Home(provider)
		if err != nil {
			return err
		}
		for j, id := range ids {
			fmt.Printf("  provider %d (committee %d) -> tx %s (valid=%v)\n",
				provider, home, id.Short(), batches[provider][j].Valid)
		}
	}

	// Provider 0 (committee 0) pays provider 1 (committee 1): the lock
	// commits on committee 0's chain, then the cluster relays a receipt
	// onto committee 1's chain.
	crossID, err := cluster.SubmitCross(0, 1, "quickstart/transfer", []byte{1, 99}, true)
	if err != nil {
		return err
	}
	fmt.Printf("  cross-shard transfer 0 -> 1: lock %s\n", crossID.Short())

	for round := 0; round < 3; round++ {
		sums, err := cluster.RunRoundCtx(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("\nround %d:\n", round+1)
		for i, sum := range sums {
			fmt.Printf("  committee %d: block #%d by governor %d — %d records, %d uploads, %d argues\n",
				i, sum.Serial, sum.Leader, sum.Records, sum.Uploads, sum.Argues)
			cm, err := cluster.Committee(i)
			if err != nil {
				return err
			}
			records, err := cm.Block(sum.Serial)
			if err != nil {
				return err
			}
			for _, r := range records {
				state := "valid"
				if !r.Valid {
					state = "invalid"
				}
				if r.Unchecked {
					state += " (unchecked)"
				}
				fmt.Printf("    tx %s from %s: %s\n", r.ID.Short(), r.Provider, state)
			}
		}
	}
	if pending := cluster.PendingReceipts(); pending != 0 {
		return fmt.Errorf("%d cross-shard receipts still pending", pending)
	}
	fmt.Println("\ncross-shard transfer delivered: lock on committee 0, receipt on committee 1")

	if err := cluster.VerifyChain(); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fmt.Println("both chains verified: serials, hash links, and tx roots all consistent")

	for i := 0; i < cluster.Committees(); i++ {
		cm, err := cluster.Committee(i)
		if err != nil {
			return err
		}
		shares, err := cm.RevenueShares()
		if err != nil {
			return err
		}
		fmt.Printf("committee %d collector revenue shares (all honest, so roughly equal):\n", i)
		for c, s := range shares {
			fmt.Printf("  collector %d: %.3f\n", c, s)
		}
	}
	return nil
}
