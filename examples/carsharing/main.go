// Command carsharing reproduces the paper's §5.1 use case: a merged
// car-sharing alliance. Users (providers) broadcast ride requests to
// drivers (collectors); drivers label requests by serviceability;
// schedulers (governors) screen with the reputation mechanism, commit
// blocks, and assign drivers to the valid requests using driver
// reputation. The alliance runs as a two-committee cluster — each
// founding company keeps its own committee, chain, and drivers, while
// the scheduler pools both committees' valid requests every round.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"repchain"
	"repchain/internal/apps/carshare"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "carsharing:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	rules := carshare.DefaultRules()
	// 6 users, 4 drivers (driver 3 misreports half the time — a
	// dishonest driver the reputation system should expose), 2
	// scheduler companies per committee. The modulo partition homes
	// users 0,2,4 on committee 0 and 1,3,5 on committee 1; drivers
	// follow their users, so drivers 0-1 serve committee 0 and drivers
	// 2-3 (including the dishonest one) serve committee 1.
	cluster, err := repchain.NewCluster(
		repchain.WithTopology(6, 4, 2),
		repchain.WithGovernors(2),
		repchain.WithCommittees(2),
		repchain.WithValidator(rules.Validator()),
		repchain.WithCollectorBehaviors(
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{Misreport: 0.5},
		),
		repchain.WithMempool(6, 32), // one bounded shard per user
		repchain.WithSeed(7),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	rng := rand.New(rand.NewSource(7))
	riders := []string{"ana", "bo", "cam", "dee", "eli", "fay"}
	zones := rules.Zones

	// driverShares concatenates the per-committee revenue splits back
	// into the global driver order (drivers 0-1 on committee 0, 2-3 on
	// committee 1).
	driverShares := func() ([]float64, error) {
		var shares []float64
		for i := 0; i < cluster.Committees(); i++ {
			cm, err := cluster.Committee(i)
			if err != nil {
				return nil, err
			}
			s, err := cm.RevenueShares()
			if err != nil {
				return nil, err
			}
			shares = append(shares, s...)
		}
		return shares, nil
	}

	fmt.Println("== car-sharing alliance on RepChain (2 committees) ==")
	for round := 1; round <= 5; round++ {
		// Users submit ride requests; some are bogus (same zone,
		// absurd fare) and should be filtered by the chain. Each user
		// stages their round's requests as one batch, routed to their
		// company's committee by the partition.
		for i, rider := range riders {
			req := carshare.RideRequest{
				Rider:       rider,
				Origin:      zones[rng.Intn(len(zones))],
				Destination: zones[rng.Intn(len(zones))],
				PickupAt:    int64(round*100 + i),
				FareCents:   int64(500 + rng.Intn(4000)),
			}
			if rng.Float64() < 0.2 { // a bogus request
				req.Destination = req.Origin
			}
			batch := []repchain.Tx{{Kind: carshare.Kind, Payload: req.Encode(), Valid: rules.Valid(req)}}
			if _, err := cluster.SubmitBatch(ctx, i, batch); err != nil {
				return err
			}
		}
		sums, err := cluster.RunRoundCtx(ctx)
		if err != nil {
			return err
		}

		// The scheduler reads both committees' committed blocks and
		// assigns drivers to the pooled valid requests, weighting by
		// on-chain reputation.
		var requests []carshare.RideRequest
		for i, sum := range sums {
			cm, err := cluster.Committee(i)
			if err != nil {
				return err
			}
			records, err := cm.Block(sum.Serial)
			if err != nil {
				return err
			}
			for _, r := range records {
				if !r.Valid {
					continue
				}
				req, err := carshare.Decode(r.Payload)
				if err != nil {
					continue
				}
				requests = append(requests, req)
			}
		}
		shares, err := driverShares()
		if err != nil {
			return err
		}
		drivers := make([]carshare.Driver, 0, 4)
		for d := 0; d < 4; d++ {
			drivers = append(drivers, carshare.Driver{
				Name:       fmt.Sprintf("driver-%d", d),
				Zone:       zones[(round+d)%len(zones)],
				Reputation: shares[d],
			})
		}
		assigned, unassigned, err := carshare.Assign(requests, drivers)
		if err != nil {
			return err
		}
		fmt.Printf("\nround %d (blocks #%d/#%d, schedulers %d/%d): %d requests valid on-chain\n",
			round, sums[0].Serial, sums[1].Serial, sums[0].Leader, sums[1].Leader, len(requests))
		for _, a := range assigned {
			fmt.Printf("  %s: %s -> %s for %d¢  served by %s\n",
				a.Request.Rider, a.Request.Origin, a.Request.Destination, a.Request.FareCents, a.Driver)
		}
		if len(unassigned) > 0 {
			fmt.Printf("  %d request(s) wait for the next round\n", len(unassigned))
		}
	}

	// The dishonest driver's revenue share should now trail its honest
	// committee-mate's.
	shares, err := driverShares()
	if err != nil {
		return err
	}
	fmt.Println("\nfinal driver revenue shares (driver-3 misreports 50% of labels):")
	for d, s := range shares {
		fmt.Printf("  driver-%d: %.3f\n", d, s)
	}
	if err := cluster.VerifyChain(); err != nil {
		return err
	}
	fmt.Println("both ledgers verified — every assignment is traceable to a signed, committed request")
	return nil
}
