// Command carsharing reproduces the paper's §5.1 use case: a merged
// car-sharing alliance. Users (providers) broadcast ride requests to
// drivers (collectors); drivers label requests by serviceability;
// schedulers (governors) screen with the reputation mechanism, commit
// blocks, and assign drivers to the valid requests using driver
// reputation.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"repchain"
	"repchain/internal/apps/carshare"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "carsharing:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	rules := carshare.DefaultRules()
	// 6 users, 4 drivers (driver 3 misreports half the time — a
	// dishonest driver the reputation system should expose), 2
	// scheduler companies.
	chain, err := repchain.New(
		repchain.WithTopology(6, 4, 2),
		repchain.WithGovernors(2),
		repchain.WithValidator(rules.Validator()),
		repchain.WithCollectorBehaviors(
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{Misreport: 0.5},
		),
		repchain.WithMempool(6, 32), // one bounded shard per user
		repchain.WithSeed(7),
	)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	riders := []string{"ana", "bo", "cam", "dee", "eli", "fay"}
	zones := rules.Zones

	fmt.Println("== car-sharing alliance on RepChain ==")
	for round := 1; round <= 5; round++ {
		// Users submit ride requests; some are bogus (same zone,
		// absurd fare) and should be filtered by the chain. Each user
		// stages their round's requests as one batch.
		for i, rider := range riders {
			req := carshare.RideRequest{
				Rider:       rider,
				Origin:      zones[rng.Intn(len(zones))],
				Destination: zones[rng.Intn(len(zones))],
				PickupAt:    int64(round*100 + i),
				FareCents:   int64(500 + rng.Intn(4000)),
			}
			if rng.Float64() < 0.2 { // a bogus request
				req.Destination = req.Origin
			}
			batch := []repchain.Tx{{Kind: carshare.Kind, Payload: req.Encode(), Valid: rules.Valid(req)}}
			if _, err := chain.SubmitBatch(ctx, i, batch); err != nil {
				return err
			}
		}
		sum, err := chain.RunRoundCtx(ctx)
		if err != nil {
			return err
		}

		// The scheduler reads the committed block and assigns drivers
		// to the valid requests, weighting by on-chain reputation.
		records, err := chain.Block(sum.Serial)
		if err != nil {
			return err
		}
		var requests []carshare.RideRequest
		for _, r := range records {
			if !r.Valid {
				continue
			}
			req, err := carshare.Decode(r.Payload)
			if err != nil {
				continue
			}
			requests = append(requests, req)
		}
		shares, err := chain.RevenueShares()
		if err != nil {
			return err
		}
		drivers := make([]carshare.Driver, 0, 4)
		for d := 0; d < 4; d++ {
			drivers = append(drivers, carshare.Driver{
				Name:       fmt.Sprintf("driver-%d", d),
				Zone:       zones[(round+d)%len(zones)],
				Reputation: shares[d],
			})
		}
		assigned, unassigned, err := carshare.Assign(requests, drivers)
		if err != nil {
			return err
		}
		fmt.Printf("\nround %d (block #%d, scheduler %d): %d requests valid on-chain\n",
			round, sum.Serial, sum.Leader, len(requests))
		for _, a := range assigned {
			fmt.Printf("  %s: %s -> %s for %d¢  served by %s\n",
				a.Request.Rider, a.Request.Origin, a.Request.Destination, a.Request.FareCents, a.Driver)
		}
		if len(unassigned) > 0 {
			fmt.Printf("  %d request(s) wait for the next round\n", len(unassigned))
		}
	}

	// The dishonest driver's revenue share should now trail the honest
	// drivers'.
	shares, err := chain.RevenueShares()
	if err != nil {
		return err
	}
	fmt.Println("\nfinal driver revenue shares (driver-3 misreports 50% of labels):")
	for d, s := range shares {
		fmt.Printf("  driver-%d: %.3f\n", d, s)
	}
	if err := chain.VerifyChain(); err != nil {
		return err
	}
	fmt.Println("ledger verified — every assignment is traceable to a signed, committed request")
	return nil
}
