package experiments

import (
	"fmt"
	"time"

	"repchain/internal/core"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/network"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// engineValidator is the shared ground-truth oracle for full-protocol
// experiments: first payload byte 1 = valid.
var engineValidator = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

// costlyValidator wraps the oracle with a realistic validation cost:
// the paper's premise is that validate(tx) is the expensive operation
// governors want to skip (signature checks, state lookups, external
// audits). The synthetic cost is a chain of hash evaluations, roughly
// the price of re-verifying a transaction's provenance.
func costlyValidator(hashes int) tx.Validator {
	return tx.ValidatorFunc(func(t tx.Transaction) bool {
		h := crypto.Sum(t.Payload)
		for i := 0; i < hashes; i++ {
			h = crypto.Sum(h[:])
		}
		_ = h
		return len(t.Payload) > 0 && t.Payload[0] == 1
	})
}

func enginePayload(valid bool, n int) []byte {
	b := byte(0)
	if valid {
		b = 1
	}
	return []byte{b, byte(n), byte(n >> 8), byte(n >> 16)}
}

// runEngineRounds drives a full engine for the given rounds and
// transactions per round (one transaction in validOneIn is valid),
// returning the engine and elapsed wall time.
func runEngineRounds(cfg core.Config, rounds, txPerRound, validOneIn int) (*core.Engine, time.Duration, error) {
	e, err := core.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	providers := cfg.Spec.Providers
	start := time.Now()
	n := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < txPerRound; i++ {
			valid := i%validOneIn == 0
			if _, err := e.SubmitTx(n%providers, "bench", enginePayload(valid, n), valid); err != nil {
				return nil, 0, err
			}
			n++
		}
		if _, err := e.RunRound(); err != nil {
			return nil, 0, err
		}
	}
	return e, time.Since(start), nil
}

// E4ThroughputVsF measures the efficiency claim of §3.4: "The larger f
// is, the faster the protocol executes" — verification work per
// transaction falls with f, and end-to-end throughput rises.
func E4ThroughputVsF(seed int64, scale int) (Table, error) {
	rounds := 10 * scale
	const txPerRound = 60
	t := Table{
		ID:     "E4",
		Title:  "Efficiency — verification cost and throughput vs f",
		Header: []string{"f", "checked/tx", "unchecked/tx", "tx/s (full protocol)", "blocks"},
		Notes: []string{
			fmt.Sprintf("full protocol (signatures + bus + consensus): %d rounds × %d tx, 8 providers / 4 collectors / 3 governors", rounds, txPerRound),
			"workload is 75% invalid so -1 labels dominate and the f-coin has leverage; validate(tx) costs ~5k hash evaluations, modelling the expensive verification the paper's governors skip",
			"expected shape: checked/tx decreases in f; tx/s increases in f (absolute numbers are host-dependent)",
		},
	}
	validator := costlyValidator(5_000)
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		params := reputation.DefaultParams()
		params.F = f
		cfg := core.Config{
			Spec:        identity.TopologySpec{Providers: 8, Collectors: 4, Degree: 2},
			Governors:   3,
			Params:      params,
			ArgueWindow: 64,
			Seed:        seed,
			Validator:   validator,
		}
		e, elapsed, err := runEngineRounds(cfg, rounds, txPerRound, 4) // 25% valid
		if err != nil {
			return Table{}, err
		}
		st := e.Governor(0).Stats()
		total := float64(st.Checked + st.Unchecked)
		if total == 0 {
			total = 1
		}
		txTotal := float64(rounds * txPerRound)
		t.Rows = append(t.Rows, []string{
			f3(f),
			f3(float64(st.Checked) / total),
			f3(float64(st.Unchecked) / total),
			f1(txTotal / elapsed.Seconds()),
			d64(int64(e.Governor(0).Store().Height())),
		})
	}
	return t, nil
}

// E7MessageComplexity measures §4.1: ordinary-block consensus costs
// O(b_limit·m) messages and a stake-transform block costs O(m²).
func E7MessageComplexity(seed int64, scale int) (Table, error) {
	const txPerRound = 24
	rounds := 2 * scale
	t := Table{
		ID:     "E7",
		Title:  "Communication complexity — O(b_limit·m) ordinary, O(m²) stake blocks",
		Header: []string{"m", "block msgs/round", "block bytes/round", "bytes/(b_limit·m)", "stake msgs/round", "stake msgs/m²"},
		Notes: []string{
			fmt.Sprintf("%d rounds × %d tx, one stake transfer per round; block messages = block dissemination to governors+providers; stake messages = VRF+NEW_STATE+signature+stake-block traffic among governors", rounds, txPerRound),
			"expected shape: bytes/(b_limit·m) roughly constant in m (linear scaling); stake msgs/m² roughly constant (quadratic scaling)",
		},
	}
	for _, m := range []int{4, 8, 16, 32} {
		params := reputation.DefaultParams()
		cfg := core.Config{
			Spec:        identity.TopologySpec{Providers: 8, Collectors: 4, Degree: 2},
			Governors:   m,
			Params:      params,
			ArgueWindow: 64,
			Seed:        seed,
			Validator:   engineValidator,
		}
		e, err := core.New(cfg)
		if err != nil {
			return Table{}, err
		}
		e.Bus().ResetStats()
		n := 0
		for r := 0; r < rounds; r++ {
			for i := 0; i < txPerRound; i++ {
				if _, err := e.SubmitTx(n%8, "bench", enginePayload(true, n), true); err != nil {
					return Table{}, err
				}
				n++
			}
			if err := e.SubmitStakeTransfer(r%m, (r+1)%m, 1); err != nil {
				return Table{}, err
			}
			if _, err := e.RunRound(); err != nil {
				return Table{}, err
			}
		}
		st := e.Bus().Stats()
		blockMsgs := st.SentByKind[network.KindBlock]
		blockBytes := st.BytesByKind[network.KindBlock]
		stakeMsgs := st.SentByKind[network.KindVRF] +
			st.SentByKind[network.KindStakeTx] +
			st.SentByKind[network.KindStakeState] +
			st.SentByKind[network.KindStakeSig] +
			st.SentByKind[network.KindStakeBlock]
		perRoundBlockMsgs := float64(blockMsgs) / float64(rounds)
		perRoundBlockBytes := float64(blockBytes) / float64(rounds)
		perRoundStake := float64(stakeMsgs) / float64(rounds)
		t.Rows = append(t.Rows, []string{
			d(m),
			f1(perRoundBlockMsgs),
			f1(perRoundBlockBytes),
			f3(perRoundBlockBytes / float64(txPerRound*m)),
			f1(perRoundStake),
			f3(perRoundStake / float64(m*m)),
		})
	}
	return t, nil
}
