package experiments

import (
	"fmt"
	"math"

	"repchain/internal/reputation"
	"repchain/internal/sim"
)

// E12TheoremFour checks the paper's core combined theorem directly:
// with N transactions entering the network, the governor's accumulated
// expected loss on one provider's unchecked transactions satisfies
// L ≤ S + O(√((f+δ)N)) with probability ≥ 1 − e^{−2δ²N}, where S is
// the best collector's loss on those transactions. The experiment
// sweeps N and reports L, S, and the normalized excess
// (L−S)/√((f+δ)N), which must stay bounded.
func E12TheoremFour(seed int64, scale int) (Table, error) {
	const (
		r     = 8
		delta = 0.05
	)
	t := Table{
		ID:     "E12",
		Title:  "Theorem 4 — L ≤ S + O(√((f+δ)N)) on unchecked transactions",
		Header: []string{"N", "unchecked", "L (governor)", "S (best collector)", "(L−S)/√((f+δ)N)", "failure prob bound"},
		Notes: []string{
			"1 provider, r=8 (collector 0 errs 5%, peers misreport 40%), f=0.8, δ=0.05; L = Σ L_t over reveals, S = best collector's accumulated loss",
			"expected shape: normalized excess roughly flat (the √ scaling) and small; the Hoeffding failure probability e^(−2δ²N) vanishes with N",
		},
	}
	for _, n := range []int{2000, 8000, 32000} {
		N := n * scale
		params := reputation.DefaultParams()
		params.F = 0.8
		models := noisyPeers(r, 0.4, 0)
		models[0].Misreport = 0.05
		cfg := sim.Config{
			Spec:      theorem1Spec(),
			Params:    params,
			ValidFrac: 0.6,
			ArgueProb: 1,
			Models:    models,
			Seed:      seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := s.Run(N)
		if err != nil {
			return Table{}, err
		}
		l := res.ExpectedLoss
		best := res.BestLoss[0]
		norm := (l - best) / math.Sqrt((params.F+delta)*float64(N))
		t.Rows = append(t.Rows, []string{
			d(N), d(res.Unchecked), f1(l), f1(best), f3(norm),
			g4(math.Exp(-2 * delta * delta * float64(N))),
		})
	}
	return t, nil
}

// E11TurncoatAttack probes a behaviour the poster does not analyze but
// any deployment faces: the whitewashing attack. The adversary's
// collectors behave perfectly until they dominate the screening draw,
// then flip to constant misreporting. The experiment measures the
// damage window — how many mistakes the governor makes between the
// turn and the mechanism's recovery — as the honest phase lengthens.
//
// This is an extension experiment (DESIGN.md §5): it stresses the
// mechanism's adaptivity, the property the multiplicative γ_tx decay
// provides and an additive scheme would lack.
func E11TurncoatAttack(seed int64, scale int) (Table, error) {
	const r = 8
	T := 12000 * scale
	t := Table{
		ID:     "E11",
		Title:  "Turncoat (whitewashing) attack — damage bounded despite banked reputation",
		Header: []string{"honest phase W", "mistakes", "mistakes after turn", "regret", "final turncoat weight", "final honest weight"},
		Notes: []string{
			fmt.Sprintf("T=%d, r=8: 7 collectors act honest for W transactions then always lie; collector 0 stays honest; f=0.8", T),
			"expected shape: post-turn mistakes stay bounded and roughly constant in W — banked multiplicative reputation buys the adversary only a logarithmic damage window, because each wrong label multiplies its weight by γ_tx regardless of history",
		},
	}
	for _, w := range []int{0, 500, 2000, 8000} {
		models := make([]sim.CollectorModel, r)
		for c := 1; c < r; c++ {
			if w == 0 {
				models[c].Misreport = 1 // degenerate case: lie from the start
			} else {
				models[c].TurncoatAfter = w
			}
		}
		params := reputation.DefaultParams()
		params.F = 0.8
		cfg := sim.Config{
			Spec:      theorem1Spec(),
			Params:    params,
			ValidFrac: 0.6,
			ArgueProb: 1,
			Models:    models,
			Seed:      seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		// Run to the turn, snapshot, then run the attack phase.
		preTurn := w
		if preTurn > T {
			preTurn = T
		}
		for i := 0; i < preTurn; i++ {
			if err := s.Step(); err != nil {
				return Table{}, err
			}
		}
		snap, err := s.Snapshot()
		if err != nil {
			return Table{}, err
		}
		mistakesAtTurn := snap.Mistakes
		for i := preTurn; i < T; i++ {
			if err := s.Step(); err != nil {
				return Table{}, err
			}
		}
		if err := s.FlushReveals(); err != nil {
			return Table{}, err
		}
		res, err := s.Snapshot()
		if err != nil {
			return Table{}, err
		}
		turncoatW, err := s.Table().Weight(0, 1)
		if err != nil {
			return Table{}, err
		}
		honestW, err := s.Table().Weight(0, 0)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			d(w), d(res.Mistakes), d(res.Mistakes - mistakesAtTurn),
			f1(res.Regret[0]), g4(turncoatW), g4(honestW),
		})
	}
	return t, nil
}
