// Package experiments regenerates every evaluation artifact recorded
// in EXPERIMENTS.md. The poster has no measured tables — its
// evaluation is Figure 1 (architecture) plus four analytical results —
// so each analytical claim becomes one empirical experiment (DESIGN.md
// §3). Each runner returns a Table whose rows are what
// cmd/repchain-bench prints and what EXPERIMENTS.md records.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknown reports a request for an experiment ID that does not
// exist.
var ErrUnknown = errors.New("experiments: unknown experiment")

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title states the claim under test.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the measured series.
	Rows [][]string
	// Notes record the workload and the expected shape.
	Notes []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment's table. seed makes runs
// reproducible; scale (≥ 1) multiplies workload sizes so quick test
// runs and full benchmark runs share code.
type Runner func(seed int64, scale int) (Table, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"E1":  E1RegretSqrtT,
	"E2":  E2UncheckedVsF,
	"E3":  E3HoeffdingTail,
	"E4":  E4ThroughputVsF,
	"E5":  E5PolicyComparison,
	"E6":  E6IncentiveCurve,
	"E7":  E7MessageComplexity,
	"E8":  E8AdversaryFraction,
	"E9":  E9ArgueLatency,
	"E10": E10BetaAblation,
	"E11": E11TurncoatAttack,
	"E12": E12TheoremFour,
	"E13": E13MempoolBackpressure,
}

// IDs returns all experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, seed int64, scale int) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("%q: %w", id, ErrUnknown)
	}
	if scale < 1 {
		scale = 1
	}
	return r(seed, scale)
}

// RunAll executes every experiment in ID order.
func RunAll(seed int64, scale int) ([]Table, error) {
	var out []Table
	for _, id := range IDs() {
		t, err := Run(id, seed, scale)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
func g4(v float64) string { return fmt.Sprintf("%.4g", v) }
