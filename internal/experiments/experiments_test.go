package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tbl Table, row int, col string) string {
	t.Helper()
	for i, h := range tbl.Header {
		if h == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q", tbl.ID, col)
	return ""
}

func cellF(t *testing.T, tbl Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tbl, row, col), 64)
	if err != nil {
		t.Fatalf("table %s row %d col %s: %v", tbl.ID, row, col, err)
	}
	return v
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

// TestE11WhitewashingResistance asserts the key turncoat property:
// post-turn damage does not grow with the banked honest phase.
func TestE11WhitewashingResistance(t *testing.T) {
	tbl, err := E11TurncoatAttack(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := cellF(t, tbl, 0, "mistakes after turn") // W = 0
	for i := 1; i < len(tbl.Rows); i++ {
		post := cellF(t, tbl, i, "mistakes after turn")
		if post > 4*base+20 {
			t.Fatalf("W=%s banked reputation amplified damage: %v post-turn mistakes vs %v at W=0",
				cell(t, tbl, i, "honest phase W"), post, base)
		}
	}
	// The turncoats' weights must have collapsed far below the honest
	// collector's.
	lastRow := len(tbl.Rows) - 1
	if cellF(t, tbl, lastRow, "final turncoat weight") >= cellF(t, tbl, lastRow, "final honest weight") {
		t.Fatal("turncoat weight did not collapse")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", 1, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("error = %v, want ErrUnknown", err)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID: "EX", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := tbl.Render()
	for _, want := range []string{"EX", "demo", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestE1ShapeHolds asserts the Theorem 1 shape: regret under the bound
// on every horizon and regret/√T not exploding.
func TestE1ShapeHolds(t *testing.T) {
	tbl, err := E1RegretSqrtT(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		regret := cellF(t, tbl, i, "regret")
		bound := cellF(t, tbl, i, "bound 16√(log2(r)·T)")
		if regret > bound {
			t.Fatalf("row %d: regret %v over bound %v", i, regret, bound)
		}
	}
	// Sub-linear growth: ratio at the largest T no more than 3× the
	// smallest ratio (it should be roughly flat).
	first := cellF(t, tbl, 0, "regret/√T")
	last := cellF(t, tbl, len(tbl.Rows)-1, "regret/√T")
	if first > 0 && last/first > 3 {
		t.Fatalf("regret/√T grew %vx: not O(√T) shaped", last/first)
	}
}

// TestE2LemmaHolds asserts Pr[unchecked] ≤ f on every row.
func TestE2LemmaHolds(t *testing.T) {
	tbl, err := E2UncheckedVsF(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "holds") != "yes" {
			t.Fatalf("row %d violates Lemma 2: %v", i, tbl.Rows[i])
		}
	}
}

// TestE3BoundHolds asserts the Hoeffding bound dominates the empirical
// tail.
func TestE3BoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("many trials")
	}
	tbl, err := E3HoeffdingTail(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "holds") != "yes" {
			t.Fatalf("row %d violates Theorem 3: %v", i, tbl.Rows[i])
		}
	}
}

// TestE4EfficiencyShape asserts checked/tx decreases with f.
func TestE4EfficiencyShape(t *testing.T) {
	tbl, err := E4ThroughputVsF(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tbl, 0, "checked/tx")
	last := cellF(t, tbl, len(tbl.Rows)-1, "checked/tx")
	if last >= first {
		t.Fatalf("checked/tx did not fall with f: %v → %v", first, last)
	}
}

// TestE5ReputationBeatsUniform asserts the headline comparison.
func TestE5ReputationBeatsUniform(t *testing.T) {
	tbl, err := E5PolicyComparison(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	mistakes := make(map[string]float64)
	for i := range tbl.Rows {
		key := cell(t, tbl, i, "policy") + "/" + cell(t, tbl, i, "adversary")
		mistakes[key] = cellF(t, tbl, i, "mistakes")
	}
	for _, adv := range []string{"3of8 lie 80%", "7of8 lie 80%"} {
		rep := mistakes["reputation-rwm/"+adv]
		uni := mistakes["uniform-random/"+adv]
		if rep >= uni {
			t.Fatalf("adversary %q: reputation %v ≥ uniform %v mistakes", adv, rep, uni)
		}
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "policy") == "check-all" && cellF(t, tbl, i, "mistakes") != 0 {
			t.Fatal("check-all made unchecked mistakes")
		}
	}
}

// TestE6MonotoneIncentive asserts revenue share decreases in
// misbehaviour.
func TestE6MonotoneIncentive(t *testing.T) {
	tbl, err := E6IncentiveCurve(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	var lastMis, lastCon float64 = 2, 2
	for i := range tbl.Rows {
		share := cellF(t, tbl, i, "share(collector 0)")
		if cell(t, tbl, i, "conceal p") == "0.000" {
			if share > lastMis+1e-9 {
				t.Fatalf("misreport row %d share rose: %v", i, tbl.Rows[i])
			}
			lastMis = share
		} else {
			if share > lastCon+1e-9 {
				t.Fatalf("conceal row %d share rose: %v", i, tbl.Rows[i])
			}
			lastCon = share
		}
	}
}

// TestE7ComplexityShape asserts linear block scaling and quadratic
// stake scaling: the normalized columns stay within a small factor
// across m.
func TestE7ComplexityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up engines with up to 32 governors")
	}
	tbl, err := E7MessageComplexity(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkFlat := func(col string, tolerance float64) {
		lo, hi := 1e18, 0.0
		for i := range tbl.Rows {
			v := cellF(t, tbl, i, col)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo <= 0 || hi/lo > tolerance {
			t.Fatalf("column %q not flat: min %v max %v", col, lo, hi)
		}
	}
	checkFlat("bytes/(b_limit·m)", 4)
	checkFlat("stake msgs/m²", 6)
}

// TestE8RobustToMinorityOfOne asserts the guarantee holds with a
// single honest collector.
func TestE8RobustToMinorityOfOne(t *testing.T) {
	tbl, err := E8AdversaryFraction(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		regret := cellF(t, tbl, i, "regret")
		bound := cellF(t, tbl, i, "bound")
		if regret > bound {
			t.Fatalf("row %d (%s liars): regret %v over bound %v",
				i, cell(t, tbl, i, "liars"), regret, bound)
		}
	}
}

// TestE9GracefulDegradation asserts reveal latency degrades metrics
// smoothly, not catastrophically.
func TestE9GracefulDegradation(t *testing.T) {
	tbl, err := E9ArgueLatency(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tbl, 0, "mistakes")
	last := cellF(t, tbl, len(tbl.Rows)-1, "mistakes")
	if first > 0 && last > 20*first {
		t.Fatalf("mistakes exploded with latency: %v → %v", first, last)
	}
}

// TestE10BoundHolsAcrossBeta asserts every swept β keeps the realized
// regret far under the Theorem 1 bound, with the paper's β present in
// the sweep.
func TestE10BoundHoldsAcrossBeta(t *testing.T) {
	tbl, err := E10BetaAblation(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	paperSeen := false
	for i := range tbl.Rows {
		ratio := cellF(t, tbl, i, "regret/bound")
		if ratio > 1 {
			t.Fatalf("β=%s: regret exceeds the Theorem 1 bound (ratio %v)", cell(t, tbl, i, "beta"), ratio)
		}
		if strings.Contains(cell(t, tbl, i, "is paper's choice"), "paper") {
			paperSeen = true
			if ratio > 0.25 {
				t.Fatalf("paper's β uses %.0f%% of the bound; expected comfortable slack", ratio*100)
			}
		}
	}
	if !paperSeen {
		t.Fatal("paper's β missing from the sweep")
	}
}

// TestE12NormalizedExcessBounded asserts the Theorem 4 shape: the
// excess (L−S)/√((f+δ)N) stays bounded (and does not grow) as N
// increases.
func TestE12NormalizedExcessBounded(t *testing.T) {
	tbl, err := E12TheoremFour(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tbl, 0, "(L−S)/√((f+δ)N)")
	for i := range tbl.Rows {
		v := cellF(t, tbl, i, "(L−S)/√((f+δ)N)")
		if v > 2*first+1 {
			t.Fatalf("row %d: normalized excess %v grew beyond the √ scaling", i, v)
		}
		if v < -1 {
			t.Fatalf("row %d: excess %v absurdly negative; accounting broken", i, v)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := RunAll(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("RunAll returned %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("experiment %s produced no rows", tbl.ID)
		}
		if out := tbl.Render(); !strings.Contains(out, tbl.ID) {
			t.Fatalf("experiment %s renders badly", tbl.ID)
		}
	}
}
