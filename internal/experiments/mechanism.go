package experiments

import (
	"fmt"
	"math"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/rwm"
	"repchain/internal/sim"
)

// theorem1Spec is the Theorem 1 setting: one provider overseen by
// r = 8 collectors, one of which is well-behaved.
func theorem1Spec() identity.TopologySpec {
	return identity.TopologySpec{Providers: 1, Collectors: 8, Degree: 8}
}

// noisyPeers builds r collector models: index 0 honest, the rest
// misbehaving at the given rates.
func noisyPeers(r int, misreport, conceal float64) []sim.CollectorModel {
	models := make([]sim.CollectorModel, r)
	for i := 1; i < r; i++ {
		models[i] = sim.CollectorModel{Misreport: misreport, Conceal: conceal}
	}
	return models
}

// E1RegretSqrtT measures Theorem 1: the governor's regret
// L_T − S^min_T grows as O(√T). The ratio regret/√T must stay roughly
// flat while regret/T shrinks, and regret must stay below the explicit
// bound 16·√(log₂(r)·T).
func E1RegretSqrtT(seed int64, scale int) (Table, error) {
	const r = 8
	horizons := []int{300, 600, 1200, 2400, 4800}
	if scale > 1 {
		for i := range horizons {
			horizons[i] *= scale
		}
	}
	t := Table{
		ID:     "E1",
		Title:  "Theorem 1 — regret L_T − S^min_T = O(√T)",
		Header: []string{"T", "beta", "L_T", "S_min", "regret", "bound 16√(log2(r)·T)", "regret/√T"},
		Notes: []string{
			"workload: 1 provider, r=8 collectors (collector 0 honest, peers misreport 40% / conceal 20%), all reveals immediate",
			"expected shape: regret ≤ bound for every T; regret/√T roughly flat (sub-linear growth)",
		},
	}
	for _, T := range horizons {
		params := reputation.DefaultParams()
		params.Beta = rwm.RecommendedBeta(r, T)
		cfg := sim.Config{
			Spec:      theorem1Spec(),
			Params:    params,
			ValidFrac: 0.5,
			ArgueProb: 1,
			Models:    noisyPeers(r, 0.4, 0.2),
			Seed:      seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := s.Run(T)
		if err != nil {
			return Table{}, err
		}
		regret := res.Regret[0]
		bound := rwm.TheoremOneBound(r, T)
		t.Rows = append(t.Rows, []string{
			d(T), f3(params.Beta), f1(res.ExpectedLoss), f1(res.BestLoss[0]),
			f1(regret), f1(bound), f3(regret / math.Sqrt(float64(T))),
		})
	}
	return t, nil
}

// E2UncheckedVsF measures Lemma 2: Pr[tx unchecked] ≤ f, even under
// fully adversarial labeling.
func E2UncheckedVsF(seed int64, scale int) (Table, error) {
	T := 20000 * scale
	t := Table{
		ID:     "E2",
		Title:  "Lemma 2 — unchecked fraction ≤ f",
		Header: []string{"f", "workload", "unchecked frac", "bound f", "holds"},
		Notes: []string{
			"workloads: 'adversarial' = all transactions invalid (maximal -1 labels); 'mixed' = 50% valid with 30% misreporting peers",
			"expected shape: measured fraction below f everywhere; adversarial workload approaches f/r ≤ f",
		},
	}
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, workload := range []string{"adversarial", "mixed"} {
			params := reputation.DefaultParams()
			params.F = f
			cfg := sim.Config{
				Spec:      theorem1Spec(),
				Params:    params,
				ArgueProb: 1,
				Seed:      seed,
			}
			if workload == "adversarial" {
				cfg.ValidFrac = 0
			} else {
				cfg.ValidFrac = 0.5
				cfg.Models = noisyPeers(8, 0.3, 0)
			}
			s, err := sim.New(cfg)
			if err != nil {
				return Table{}, err
			}
			res, err := s.Run(T)
			if err != nil {
				return Table{}, err
			}
			holds := "yes"
			if res.UncheckedFrac > f {
				holds = "NO"
			}
			t.Rows = append(t.Rows, []string{f3(f), workload, f3(res.UncheckedFrac), f3(f), holds})
		}
	}
	return t, nil
}

// E3HoeffdingTail measures Theorem 3: across independent trials, the
// fraction with more than (f+δ)N unchecked transactions stays below
// e^{−2δ²N}.
func E3HoeffdingTail(seed int64, scale int) (Table, error) {
	trials := 200 * scale
	t := Table{
		ID:     "E3",
		Title:  "Theorem 3 — Hoeffding tail on the unchecked count",
		Header: []string{"N", "delta", "bound e^(-2δ²N)", "empirical tail", "holds"},
		Notes: []string{
			fmt.Sprintf("%d independent trials per row, all-invalid workload at f=0.5 (the worst case for skipping)", trials),
			"expected shape: empirical tail ≤ bound on every row; for large δ·√N both approach 0",
		},
	}
	params := reputation.DefaultParams()
	params.F = 0.5
	for _, N := range []int{500, 2000} {
		for _, delta := range []float64{0.02, 0.05, 0.1} {
			exceed := 0
			for trial := 0; trial < trials; trial++ {
				cfg := sim.Config{
					Spec:      theorem1Spec(),
					Params:    params,
					ValidFrac: 0,
					ArgueProb: 1,
					Seed:      seed + int64(trial)*7919,
				}
				s, err := sim.New(cfg)
				if err != nil {
					return Table{}, err
				}
				res, err := s.Run(N)
				if err != nil {
					return Table{}, err
				}
				if float64(res.Unchecked) > (params.F+delta)*float64(N) {
					exceed++
				}
			}
			bound := math.Exp(-2 * delta * delta * float64(N))
			emp := float64(exceed) / float64(trials)
			holds := "yes"
			if emp > bound {
				holds = "NO"
			}
			t.Rows = append(t.Rows, []string{d(N), f3(delta), g4(bound), g4(emp), holds})
		}
	}
	return t, nil
}

// E5PolicyComparison compares the paper's mechanism against the
// baselines on identical adversarial workloads: governor mistakes and
// verification cost.
func E5PolicyComparison(seed int64, scale int) (Table, error) {
	T := 20000 * scale
	t := Table{
		ID:     "E5",
		Title:  "Reputation screening vs baselines — mistakes and verification cost",
		Header: []string{"policy", "adversary", "mistakes", "checked frac", "unchecked frac"},
		Notes: []string{
			fmt.Sprintf("T=%d transactions, 1 provider, r=8 (collector 0 honest), f=0.8, 60%% valid workload", T),
			"expected shape: reputation-rwm ≪ uniform-random mistakes at comparable check rates; check-all has 0 mistakes at 100% checks; majority-vote collapses once liars outnumber honest reporters",
		},
	}
	adversaries := []struct {
		name   string
		models []sim.CollectorModel
	}{
		{"3of8 lie 80%", append(noisyPeers(4, 0.8, 0), make([]sim.CollectorModel, 4)...)},
		{"7of8 lie 80%", noisyPeers(8, 0.8, 0)},
		{"7of8 conceal 50%", noisyPeers(8, 0, 0.5)},
	}
	for _, policy := range []string{"reputation-rwm", "check-all", "uniform-random", "majority-vote"} {
		for _, adv := range adversaries {
			params := reputation.DefaultParams()
			params.F = 0.8
			cfg := sim.Config{
				Spec:      theorem1Spec(),
				Params:    params,
				Policy:    policy,
				ValidFrac: 0.6,
				ArgueProb: 1,
				Models:    adv.models,
				Seed:      seed,
			}
			s, err := sim.New(cfg)
			if err != nil {
				return Table{}, err
			}
			res, err := s.Run(T)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				policy, adv.name, d(res.Mistakes), f3(res.CheckFrac), f3(res.UncheckedFrac),
			})
		}
	}
	return t, nil
}

// E6IncentiveCurve measures the incentive claim of §4.2: a collector's
// revenue share strictly decreases in its misbehaviour rate.
func E6IncentiveCurve(seed int64, scale int) (Table, error) {
	T := 10000 * scale
	t := Table{
		ID:     "E6",
		Title:  "Incentives — revenue share vs misbehaviour rate",
		Header: []string{"misreport p", "conceal p", "share(collector 0)", "share(honest peer)", "log-revenue gap/1k tx"},
		Notes: []string{
			fmt.Sprintf("T=%d, 2 providers, 4 collectors all linked; collector 0 sweeps its misbehaviour, peers stay honest; µ=1.1, ν=2", T),
			"expected shape: collector 0's share strictly decreasing in p (the exponential revenue rule of §3.4.3 is effectively winner-take-all over long horizons), and the per-1000-transaction log-revenue gap to an honest peer grows smoothly with p",
		},
	}
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		for _, mode := range []string{"misreport", "conceal"} {
			models := make([]sim.CollectorModel, 4)
			if mode == "misreport" {
				models[0].Misreport = p
			} else {
				models[0].Conceal = p
			}
			cfg := sim.Config{
				Spec:      identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 4},
				Params:    reputation.DefaultParams(),
				ValidFrac: 0.5,
				ArgueProb: 1,
				Models:    models,
				Seed:      seed,
			}
			s, err := sim.New(cfg)
			if err != nil {
				return Table{}, err
			}
			res, err := s.Run(T)
			if err != nil {
				return Table{}, err
			}
			mis, con := "0.000", "0.000"
			if mode == "misreport" {
				mis = f3(p)
			} else {
				con = f3(p)
			}
			lr0, err := s.Table().LogRevenue(0)
			if err != nil {
				return Table{}, err
			}
			lr1, err := s.Table().LogRevenue(1)
			if err != nil {
				return Table{}, err
			}
			gap := (lr1 - lr0) / float64(T) * 1000
			t.Rows = append(t.Rows, []string{
				mis, con, f3(res.RevenueShares[0]), f3(res.RevenueShares[1]), f3(gap),
			})
		}
	}
	return t, nil
}

// E8AdversaryFraction measures the robustness claim: the guarantee
// holds "as long as there exists a collector who behaves well". Sweep
// the number of always-lying collectors from 0 to r−1.
func E8AdversaryFraction(seed int64, scale int) (Table, error) {
	const r = 8
	T := 8000 * scale
	t := Table{
		ID:     "E8",
		Title:  "Robustness — governor loss vs number of malicious collectors",
		Header: []string{"liars", "honest", "mistakes", "regret", "bound", "unchecked frac"},
		Notes: []string{
			fmt.Sprintf("T=%d, r=8, liars always misreport; f=0.8", T),
			"expected shape: regret stays under the bound while ≥1 honest collector remains; mistakes grow with the liar count but stay sublinear in T",
		},
	}
	for liars := 0; liars < r; liars++ {
		models := make([]sim.CollectorModel, r)
		for i := 0; i < liars; i++ {
			models[r-1-i].Misreport = 1
		}
		params := reputation.DefaultParams()
		params.F = 0.8
		params.Beta = rwm.RecommendedBeta(r, T)
		cfg := sim.Config{
			Spec:      theorem1Spec(),
			Params:    params,
			ValidFrac: 0.6,
			ArgueProb: 1,
			Models:    models,
			Seed:      seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := s.Run(T)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			d(liars), d(r - liars), d(res.Mistakes), f1(res.Regret[0]),
			f1(rwm.TheoremOneBound(r, T)), f3(res.UncheckedFrac),
		})
	}
	return t, nil
}

// E9ArgueLatency measures the discussion in §4.2: the latency bound U
// "only induces a latency on the updating of reputation" — regret
// degrades gracefully, not catastrophically, as reveals lag.
func E9ArgueLatency(seed int64, scale int) (Table, error) {
	const r = 8
	T := 6000 * scale
	t := Table{
		ID:     "E9",
		Title:  "Argue latency U — reveal delay only defers reputation updates",
		Header: []string{"U (reveal delay)", "mistakes", "regret", "expected loss L_T"},
		Notes: []string{
			fmt.Sprintf("T=%d, r=8, peers misreport 50%%; reveals for a provider lag U unchecked transactions", T),
			"expected shape: metrics grow modestly and smoothly in U (latency, not failure)",
		},
	}
	for _, u := range []int{0, 4, 16, 64, 256} {
		params := reputation.DefaultParams()
		params.F = 0.8
		cfg := sim.Config{
			Spec:        theorem1Spec(),
			Params:      params,
			ValidFrac:   0.6,
			ArgueProb:   1,
			RevealDelay: u,
			Models:      noisyPeers(r, 0.5, 0),
			Seed:        seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := s.Run(T)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{d(u), d(res.Mistakes), f1(res.Regret[0]), f1(res.ExpectedLoss)})
	}
	return t, nil
}

// E10BetaAblation sweeps β at a fixed horizon and marks the paper's
// recommended tuning, plus an ablation dropping the γ_tx floor to β
// (a plain RWM update).
func E10BetaAblation(seed int64, scale int) (Table, error) {
	const r = 8
	T := 4800 * scale
	rec := rwm.RecommendedBeta(r, T)
	bound := rwm.TheoremOneBound(r, T)
	t := Table{
		ID:     "E10",
		Title:  "β ablation — every β honours the Theorem 1 bound; the paper's tuning targets the adversarial worst case",
		Header: []string{"beta", "regret", "regret/bound", "mistakes", "is paper's choice"},
		Notes: []string{
			fmt.Sprintf("T=%d, r=8; the best collector errs 10%%, peers misreport 40%% / conceal 20%%; bound = 16·√(log₂(r)·T) = %.0f", T, bound),
			"expected shape: regret ≪ bound everywhere, comfortably so at the paper's β",
			"finding: under *stationary* adversaries smaller β separates experts faster and wins empirically; the paper's β = 1−4√(log₂ r/T) is the worst-case (adversarial-sequence) tuning from the RWM analysis, not the empirical optimum here — recorded as a caveat in EXPERIMENTS.md",
		},
	}
	betas := []float64{0.1, 0.3, 0.5, 0.7, rec, 0.95, 0.99}
	for _, beta := range betas {
		params := reputation.DefaultParams()
		params.Beta = beta
		models := noisyPeers(r, 0.4, 0.2)
		models[0].Misreport = 0.1 // the best expert is good, not perfect
		cfg := sim.Config{
			Spec:      theorem1Spec(),
			Params:    params,
			ValidFrac: 0.5,
			ArgueProb: 1,
			Models:    models,
			Seed:      seed,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := s.Run(T)
		if err != nil {
			return Table{}, err
		}
		mark := ""
		if beta == rec {
			mark = "<-- paper"
		}
		t.Rows = append(t.Rows, []string{
			f3(beta), f1(res.Regret[0]), f3(res.Regret[0] / bound), d(res.Mistakes), mark,
		})
	}
	return t, nil
}
