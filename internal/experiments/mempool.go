package experiments

import (
	"errors"
	"fmt"

	"repchain/internal/core"
	"repchain/internal/identity"
	"repchain/internal/reputation"
)

// E13MempoolBackpressure measures the sharded-mempool ingestion tier
// (DESIGN.md §4d): a burst far larger than one block is submitted
// up front with a retry-on-backlog loop, and the table reports how the
// backlog drains round by round — staged depth, drained batch size,
// committed records — until the burst fully commits. The claim under
// test: bounded shards + BlockLimit-capped drains give backpressure
// without loss (every burst transaction eventually commits) at a
// steady one-block-per-round pace.
func E13MempoolBackpressure(seed int64, scale int) (Table, error) {
	const (
		providers  = 8
		shards     = 4
		shardCap   = 64
		blockLimit = 64
	)
	burst := 512 * scale
	t := Table{
		ID:     "E13",
		Title:  "Mempool backpressure — burst drains at b_limit per round, no loss",
		Header: []string{"round", "staged", "drained", "committed", "backlogged submits"},
		Notes: []string{
			fmt.Sprintf("burst of %d tx from %d providers into a %d-shard mempool (cap %d/shard, b_limit %d)", burst, providers, shards, shardCap, blockLimit),
			"backlogged submits = ErrBacklog rejections retried after the next round; expected shape: staged ≤ shards·cap, drained = b_limit until the tail, total committed = burst",
		},
	}
	cfg := core.Config{
		Spec:            identity.TopologySpec{Providers: providers, Collectors: 4, Degree: 2},
		Governors:       3,
		Params:          reputation.DefaultParams(),
		BlockLimit:      blockLimit,
		MempoolShards:   shards,
		MempoolShardCap: shardCap,
		ArgueWindow:     64,
		Seed:            seed,
		Validator:       engineValidator,
	}
	e, err := core.New(cfg)
	if err != nil {
		return Table{}, err
	}
	pending := make([]int, 0, burst)
	for i := 0; i < burst; i++ {
		pending = append(pending, i)
	}
	committed := 0
	round := 0
	for len(pending) > 0 || e.MempoolDepth() > 0 {
		// Submit as much of the remaining burst as the shards accept.
		backlogged := 0
		rest := pending[:0]
		for _, i := range pending {
			_, err := e.SubmitTx(i%providers, "burst", enginePayload(true, i), true)
			if errors.Is(err, core.ErrBacklog) {
				backlogged++
				rest = append(rest, i)
				continue
			}
			if err != nil {
				return Table{}, err
			}
		}
		pending = rest
		staged := e.MempoolDepth()
		res, err := e.RunRound()
		if err != nil {
			return Table{}, err
		}
		drained := staged - e.MempoolDepth()
		committed += len(res.Block.Records)
		round++
		t.Rows = append(t.Rows, []string{
			d(round), d(staged), d(drained), d(len(res.Block.Records)), d(backlogged),
		})
		if round > 4*burst/blockLimit+8 {
			return Table{}, fmt.Errorf("burst failed to drain after %d rounds", round)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total committed: %d of %d burst transactions in %d rounds", committed, burst, round))
	if committed < burst {
		return Table{}, fmt.Errorf("lost transactions: committed %d of %d", committed, burst)
	}
	return t, nil
}
