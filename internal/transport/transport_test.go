package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/network"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

var testOracle = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

// freePorts reserves n distinct loopback ports by listening and
// closing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	listeners := make([]net.Listener, 0, n)
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addr, ok := ln.Addr().(*net.TCPAddr)
		if !ok {
			t.Fatal("not a TCP address")
		}
		ports = append(ports, addr.Port)
	}
	for _, ln := range listeners {
		if err := ln.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return ports
}

// testDeployment builds a loopback deployment with fresh ports.
func testDeployment(t *testing.T, providers, collectors, degree, governors int) *Deployment {
	t.Helper()
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: providers, Collectors: collectors, Degree: degree,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, crypto.SeedSize)
	seed[0] = 0x42
	im, err := identity.NewManagerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	roster, err := identity.RegisterAll(im, topo, governors, seed)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(im, roster, "127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ports := freePorts(t, len(d.Nodes))
	for i := range d.Nodes {
		d.Nodes[i].Addr = fmt.Sprintf("127.0.0.1:%d", ports[i])
	}
	return d
}

func TestDeploymentJSONRoundTrip(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Deployment
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate() error = %v", err)
	}
	l, n, m := got.Counts()
	if l != 2 || n != 2 || m != 2 {
		t.Fatalf("Counts() = %d, %d, %d", l, n, m)
	}
}

func TestDeploymentValidateRejects(t *testing.T) {
	base := testDeployment(t, 2, 2, 1, 2)
	tests := []struct {
		name   string
		mutate func(*Deployment)
	}{
		{"no nodes", func(d *Deployment) { d.Nodes = nil }},
		{"duplicate id", func(d *Deployment) { d.Nodes[1].ID = d.Nodes[0].ID }},
		{"missing addr", func(d *Deployment) { d.Nodes[0].Addr = "" }},
		{"bad key hex", func(d *Deployment) { d.Nodes[0].PublicKey = "zz" }},
		{"no governors", func(d *Deployment) {
			var keep []NodeSpec
			for _, n := range d.Nodes {
				if n.Role != "governor" {
					keep = append(keep, n)
				}
			}
			d.Nodes = keep
		}},
		{"bad link", func(d *Deployment) { d.Links[0] = []int{99} }},
		{"link count", func(d *Deployment) { d.Links = d.Links[:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data, err := json.Marshal(base)
			if err != nil {
				t.Fatal(err)
			}
			var d Deployment
			if err := json.Unmarshal(data, &d); err != nil {
				t.Fatal(err)
			}
			tt.mutate(&d)
			if err := d.Validate(); !errors.Is(err, ErrBadDeployment) {
				t.Fatalf("Validate() error = %v, want ErrBadDeployment", err)
			}
		})
	}
}

func TestDeploymentAccessors(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	spec, err := d.Node("governor/1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Role != "governor" || spec.Index != 1 {
		t.Fatalf("Node() = %+v", spec)
	}
	if _, err := d.Node("ghost"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Node(ghost) error = %v", err)
	}
	govs := d.NodesByRole("governor")
	if len(govs) != 2 || govs[0].Index != 0 || govs[1].Index != 1 {
		t.Fatalf("NodesByRole() = %+v", govs)
	}
	topo, err := d.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Providers() != 2 || topo.Collectors() != 2 {
		t.Fatal("Topology() dimensions wrong")
	}
	im, err := d.BuildIdentityManager()
	if err != nil {
		t.Fatal(err)
	}
	if im.Count(identity.RoleProvider) != 2 {
		t.Fatal("IM reconstruction wrong")
	}
}

func TestFrameRoundTripAndAuth(t *testing.T) {
	seed := make([]byte, crypto.SeedSize)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{From: "governor/0", Kind: "k", Payload: []byte("data"), Counter: 7}
	f.Sig = priv.Sign(frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, nil))
	got, err := decodeFrame(encodeFrame(f))
	if err != nil {
		t.Fatalf("decodeFrame() error = %v", err)
	}
	msg := frameSigningBytes(got.From, got.Kind, got.Payload, got.Counter, nil)
	if err := pub.Verify(msg, got.Sig); err != nil {
		t.Fatalf("signature broken by round trip: %v", err)
	}
	// Tampered payload fails verification.
	got.Payload[0] ^= 0xff
	msg = frameSigningBytes(got.From, got.Kind, got.Payload, got.Counter, nil)
	if err := pub.Verify(msg, got.Sig); err == nil {
		t.Fatal("tampered frame verified")
	}
	if _, err := decodeFrame([]byte("junk")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage error = %v", err)
	}
}

func TestEndpointSendReceive(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	if err := a.Send("governor/1", "test", []byte("ping")); err != nil {
		t.Fatalf("Send() error = %v", err)
	}
	frames := waitFrames(t, b, 1)
	if frames[0].From != "governor/0" || string(frames[0].Payload) != "ping" {
		t.Fatalf("frame = %+v", frames[0])
	}
}

func waitFrames(t *testing.T, ep *Endpoint, n int) []Frame {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var out []Frame
	for time.Now().Before(deadline) {
		out = append(out, ep.Receive()...)
		if len(out) >= n {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d frames, have %d", n, len(out))
	return nil
}

func TestEndpointRejectsForgedSender(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	// Hand-craft a frame claiming to be from governor/1 but signed
	// with governor/0's key, and push it raw over a socket.
	spec, err := d.Node("governor/1")
	if err != nil {
		t.Fatal(err)
	}
	specA, err := d.Node("governor/0")
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := specA.PrivateKeyOf()
	if err != nil {
		t.Fatal(err)
	}
	forged := Frame{From: "governor/1", Kind: "evil", Payload: []byte("x"), Counter: 99}
	forged.Sig = keyA.Sign(frameSigningBytes(forged.From, forged.Kind, forged.Payload, forged.Counter, nil))
	enc := encodeFrame(forged)
	conn, err := net.Dial("tcp", spec.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	hdr := []byte{0, 0, 0, byte(len(enc))}
	if _, err := conn.Write(append(hdr, enc...)); err != nil {
		t.Fatal(err)
	}
	// Also send a legitimate frame so we can bound the wait.
	if err := a.Send("governor/1", "ok", nil); err != nil {
		t.Fatal(err)
	}
	frames := waitFrames(t, b, 1)
	for _, f := range frames {
		if f.Kind == "evil" {
			t.Fatal("forged frame accepted")
		}
	}
}

func TestEndpointRejectsReplay(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	if err := a.Send("governor/1", "one", []byte("1")); err != nil {
		t.Fatal(err)
	}
	_ = waitFrames(t, b, 1)

	// Replay frame counter 1 from a raw socket.
	specA, err := d.Node("governor/0")
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := specA.PrivateKeyOf()
	if err != nil {
		t.Fatal(err)
	}
	replay := Frame{From: "governor/0", Kind: "one", Payload: []byte("1"), Counter: 1}
	replay.Sig = keyA.Sign(frameSigningBytes(replay.From, replay.Kind, replay.Payload, replay.Counter, nil))
	enc := encodeFrame(replay)
	spec, err := d.Node("governor/1")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", spec.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	hdr := []byte{0, 0, 0, byte(len(enc))}
	if _, err := conn.Write(append(hdr, enc...)); err != nil {
		t.Fatal(err)
	}
	// Send a fresh frame to bound the wait; only it should arrive.
	if err := a.Send("governor/1", "two", []byte("2")); err != nil {
		t.Fatal(err)
	}
	frames := waitFrames(t, b, 1)
	for _, f := range frames {
		if f.Kind == "one" {
			t.Fatal("replayed frame accepted")
		}
	}
}

func TestEndpointUnknownPeer(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Send("ghost", "k", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Send(ghost) error = %v", err)
	}
}

func TestEndpointClosedSend(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("governor/1", "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send() after Close error = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double Close() error = %v", err)
	}
}

// TestRuntimeFullAlliance runs a whole alliance over loopback TCP and
// checks every governor reaches the same height with the providers'
// valid transactions settled.
func TestRuntimeFullAlliance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	d := testDeployment(t, 2, 2, 2, 2)
	// Generous round duration: the test must tolerate -race overhead
	// and parallel package execution without violating the synchrony
	// assumption the runtime is built on.
	clock := Clock{Epoch: time.Now().Add(500 * time.Millisecond), Round: 800 * time.Millisecond}
	const rounds = 4
	base := RuntimeConfig{
		Deployment: d,
		Clock:      clock,
		Rounds:     rounds,
		Params:     reputation.DefaultParams(),
		Validator:  testOracle,
		TxPerRound: 3,
		ValidFrac:  0.8,
		Seed:       5,
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports = make(map[string]Report)
		failed  error
	)
	for _, spec := range d.Nodes {
		cfg := base
		cfg.ID = identity.NodeID(spec.ID)
		wg.Add(1)
		go func(id string, cfg RuntimeConfig) {
			defer wg.Done()
			r, err := RunNode(cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && failed == nil {
				failed = fmt.Errorf("node %s: %w", id, err)
				return
			}
			reports[id] = r
		}(spec.ID, cfg)
	}
	wg.Wait()
	if failed != nil {
		t.Fatal(failed)
	}
	for id, r := range reports {
		if r.Rounds != rounds {
			t.Fatalf("%s completed %d rounds, want %d", id, r.Rounds, rounds)
		}
	}
	h0 := reports["governor/0"].Height
	h1 := reports["governor/1"].Height
	if h0 != uint64(rounds) || h1 != uint64(rounds) {
		t.Fatalf("governor heights %d/%d, want %d", h0, h1, rounds)
	}
	submitted := reports["provider/0"].Submitted + reports["provider/1"].Submitted
	if submitted != 2*rounds*base.TxPerRound {
		t.Fatalf("submitted = %d", submitted)
	}
	uploads := reports["collector/0"].Uploads + reports["collector/1"].Uploads
	if uploads == 0 {
		t.Fatal("no uploads over TCP")
	}
	_ = network.KindBlock // keep import for documentation symmetry
}

// TestRuntimeGovernorPersistence restarts a whole TCP alliance with
// StateDir set: governors must reload their chains and keep extending
// them.
func TestRuntimeGovernorPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	stateDir := t.TempDir()
	runAlliance := func(d *Deployment, rounds int) map[string]Report {
		t.Helper()
		clock := Clock{Epoch: time.Now().Add(500 * time.Millisecond), Round: 800 * time.Millisecond}
		base := RuntimeConfig{
			Deployment: d,
			Clock:      clock,
			Rounds:     rounds,
			Params:     reputation.DefaultParams(),
			Validator:  testOracle,
			TxPerRound: 2,
			ValidFrac:  0.8,
			Seed:       6,
			StateDir:   stateDir,
			// Snapshot every round with tiny segments so the restart
			// also exercises snapshot recovery and pruning.
			SnapshotEvery: 1,
			SegmentBytes:  512,
		}
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			reports = make(map[string]Report)
			failed  error
		)
		for _, spec := range d.Nodes {
			cfg := base
			cfg.ID = identity.NodeID(spec.ID)
			wg.Add(1)
			go func(id string, cfg RuntimeConfig) {
				defer wg.Done()
				r, err := RunNode(cfg)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && failed == nil {
					failed = fmt.Errorf("node %s: %w", id, err)
					return
				}
				reports[id] = r
			}(spec.ID, cfg)
		}
		wg.Wait()
		if failed != nil {
			t.Fatal(failed)
		}
		return reports
	}

	d := testDeployment(t, 2, 2, 2, 2)
	first := runAlliance(d, 2)
	if first["governor/0"].Height != 2 {
		t.Fatalf("first run height = %d", first["governor/0"].Height)
	}
	// The cadence must have produced on-disk snapshots for every
	// governor.
	for _, gid := range []string{"governor-0", "governor-1"} {
		snaps, err := filepath.Glob(filepath.Join(stateDir, gid+".chain", "snapshot-*.snap"))
		if err != nil || len(snaps) == 0 {
			t.Fatalf("%s: no ledger snapshots after run 1 (err=%v)", gid, err)
		}
	}
	// Delete the .rep sidecars: the restart below must recover
	// reputation from the ledger snapshots alone.
	reps, err := filepath.Glob(filepath.Join(stateDir, "governor-*.rep"))
	if err != nil || len(reps) == 0 {
		t.Fatalf("no .rep files after run 1 (err=%v)", err)
	}
	for _, p := range reps {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh ports for the restart (listeners from run 1 are closed,
	// but avoid TIME_WAIT flakes).
	ports := freePorts(t, len(d.Nodes))
	for i := range d.Nodes {
		d.Nodes[i].Addr = fmt.Sprintf("127.0.0.1:%d", ports[i])
	}
	second := runAlliance(d, 2)
	if got := second["governor/0"].Height; got != 4 {
		t.Fatalf("restarted alliance height = %d, want 4 (2 persisted + 2 new)", got)
	}
	if got := second["governor/1"].Height; got != 4 {
		t.Fatalf("governor/1 height = %d, want 4", got)
	}
}

func TestRuntimeUnknownNode(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	_, err := RunNode(RuntimeConfig{Deployment: d, ID: "ghost"})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("error = %v, want ErrUnknownPeer", err)
	}
}

func TestEndpointInflightLimit(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetInflightLimit(2)

	for i := 0; i < 5; i++ {
		if err := a.Send("governor/1", "test", []byte{byte(i)}); err != nil {
			t.Fatalf("Send(%d) error = %v", i, err)
		}
	}
	// All five frames arrive on the wire; only the first two survive the
	// inflight cap.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := b.Metrics().Snapshot().Counters["transport.frames_received"]; ok && v >= 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	frames := b.Receive()
	if len(frames) != 2 {
		t.Fatalf("kept %d frames, want 2", len(frames))
	}
	if frames[0].Payload[0] != 0 || frames[1].Payload[0] != 1 {
		t.Fatalf("kept payloads %d, %d, want the oldest 0, 1", frames[0].Payload[0], frames[1].Payload[0])
	}
	if v := b.Metrics().Snapshot().Counters["transport.inflight_dropped"]; v != 3 {
		t.Fatalf("transport.inflight_dropped = %v, want 3", v)
	}
	// Draining resets the per-peer count: new frames flow again.
	if err := a.Send("governor/1", "test", []byte{9}); err != nil {
		t.Fatal(err)
	}
	frames = waitFrames(t, b, 1)
	if frames[0].Payload[0] != 9 {
		t.Fatalf("post-drain frame payload = %d, want 9", frames[0].Payload[0])
	}
}
