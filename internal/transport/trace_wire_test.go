package transport

import (
	"bytes"
	"testing"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/trace"
)

// TestFrameV1BytesUnchanged pins the wire-compat promise: a frame
// without a trace context encodes to exactly the pre-v2 byte layout,
// so a deployment with propagation off is indistinguishable from a
// legacy one.
func TestFrameV1BytesUnchanged(t *testing.T) {
	f := Frame{From: "governor/0", Kind: "k", Payload: []byte("data"), Counter: 7, Sig: []byte("sig")}
	e := codec.NewEncoder(64)
	e.PutString(string(f.From))
	e.PutString(f.Kind)
	e.PutBytes(f.Payload)
	e.PutUint64(f.Counter)
	e.PutBytes(f.Sig)
	if !bytes.Equal(encodeFrame(f), e.Bytes()) {
		t.Fatal("nil-trace frame encoding diverged from the v1 layout")
	}
	got, err := decodeFrame(encodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil {
		t.Fatal("v1 frame decoded with a trace context")
	}
}

func TestFrameV2RoundTrip(t *testing.T) {
	seed := make([]byte, crypto.SeedSize)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	tc := &TraceCtx{Trace: "deadbeefdeadbeef", Parent: 42, SentNS: 123456789}
	f := Frame{From: "governor/0", Kind: "k", Payload: []byte("data"), Counter: 7, Trace: tc}
	f.Sig = priv.Sign(frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, f.Trace))
	got, err := decodeFrame(encodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || *got.Trace != *tc {
		t.Fatalf("trace context = %+v, want %+v", got.Trace, tc)
	}
	msg := frameSigningBytes(got.From, got.Kind, got.Payload, got.Counter, got.Trace)
	if err := pub.Verify(msg, got.Sig); err != nil {
		t.Fatalf("v2 signature broken by round trip: %v", err)
	}
}

// TestSigningDomainSeparation checks the anti-stripping argument: a
// middlebox that removes (or injects) a trace context cannot keep the
// signature valid, because the domain string is chosen by presence.
func TestSigningDomainSeparation(t *testing.T) {
	seed := make([]byte, crypto.SeedSize)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	tc := &TraceCtx{Trace: "deadbeefdeadbeef", Parent: 1, SentNS: 99}
	f := Frame{From: "governor/0", Kind: "k", Payload: []byte("data"), Counter: 7, Trace: tc}
	f.Sig = priv.Sign(frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, f.Trace))

	// Stripping the context invalidates the v2 signature.
	stripped := frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, nil)
	if err := pub.Verify(stripped, f.Sig); err == nil {
		t.Fatal("signature survived trace-context stripping")
	}

	// A v1 signature cannot be upgraded to v2 with attacker-chosen context.
	v1sig := priv.Sign(frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, nil))
	v2msg := frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, tc)
	if err := pub.Verify(v2msg, v1sig); err == nil {
		t.Fatal("v1 signature verified under the v2 domain")
	}
}

// TestEndpointTracePropagation sends a traced frame across a real TCP
// hop and checks both halves: the sender's v2 context arrives intact,
// the receiver records a recv span carrying the sender's parent seq
// and a measured hop latency, and a payload with no trace ID stays on
// the v1 wire format.
func TestEndpointTracePropagation(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	const traceID = "deadbeefdeadbeef"
	idOf := func(kind string, payload []byte) string {
		if kind == "traced" {
			return traceID
		}
		return ""
	}
	recA := trace.NewRecorder(16)
	recB := trace.NewRecorder(16)
	a.EnableTracePropagation(recA, idOf)
	b.EnableTracePropagation(recB, idOf)

	if err := a.Send("governor/1", "traced", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("governor/1", "plain", []byte("y")); err != nil {
		t.Fatal(err)
	}
	frames := waitFrames(t, b, 2)
	byKind := map[string]Frame{}
	for _, f := range frames {
		byKind[f.Kind] = f
	}
	traced, ok := byKind["traced"]
	if !ok || traced.Trace == nil {
		t.Fatalf("traced frame missing its context: %+v", traced)
	}
	if traced.Trace.Trace != traceID || traced.Trace.SentNS == 0 {
		t.Fatalf("trace context = %+v", traced.Trace)
	}
	if plain, ok := byKind["plain"]; !ok || plain.Trace != nil {
		t.Fatalf("untraced frame carried a context: %+v", plain.Trace)
	}

	sends := recA.ByTrace(traceID)
	if len(sends) != 1 || sends[0].Stage != trace.StageSend {
		t.Fatalf("sender spans = %+v", sends)
	}
	if traced.Trace.Parent != sends[0].Seq {
		t.Fatalf("wire parent %d != send span seq %d", traced.Trace.Parent, sends[0].Seq)
	}
	recvs := recB.ByTrace(traceID)
	if len(recvs) != 1 || recvs[0].Stage != trace.StageRecv {
		t.Fatalf("receiver spans = %+v", recvs)
	}
	attrs := map[string]string{}
	for _, at := range recvs[0].Attrs {
		attrs[at.Key] = at.Value
	}
	if attrs["from"] != "governor/0" || attrs["kind"] != "traced" {
		t.Fatalf("recv span attrs = %v", attrs)
	}
	for _, k := range []string{"parent", "sent_ns", "latency_ns"} {
		if attrs[k] == "" {
			t.Fatalf("recv span missing %q attr: %v", k, attrs)
		}
	}
}

// TestEndpointPropagationOffStaysV1 sends with propagation disabled on
// both sides: frames arrive without a context and no spans are
// recorded, matching a legacy deployment exactly.
func TestEndpointPropagationOffStaysV1(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	a, err := NewEndpoint(d, "governor/0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewEndpoint(d, "governor/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	recB := trace.NewRecorder(16)
	b.EnableTracePropagation(recB, func(string, []byte) string { return "" })

	if err := a.Send("governor/1", "traced", []byte("x")); err != nil {
		t.Fatal(err)
	}
	frames := waitFrames(t, b, 1)
	if frames[0].Trace != nil {
		t.Fatal("propagation-off sender produced a v2 frame")
	}
	if got := recB.Len(); got != 0 {
		t.Fatalf("receiver recorded %d spans for a v1 frame", got)
	}
}
