package transport

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repchain/internal/codec"
	"repchain/internal/consensus"
	"repchain/internal/crypto"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/metrics"
	"repchain/internal/network"
	"repchain/internal/node"
	"repchain/internal/reputation"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// The wall-clock round runtime. Under the paper's synchrony assumption
// every node owns a loosely synchronized clock, so the three phases of
// a round run at fixed offsets within a shared round duration:
//
//	t0 + 0.00·R   providers broadcast the round's transactions
//	t0 + 0.30·R   collectors label and upload what arrived
//	t0 + 0.55·R   governors screen, then broadcast VRF tickets
//	t0 + 0.75·R   governors elect; the leader broadcasts the block
//	t0 + 0.92·R   everyone adopts the block; providers argue
//	t0 + 1.00·R   next round
//
// Each phase gap exceeds the network's delivery bound Δ provided the
// round duration is chosen accordingly.

// Clock fixes the shared round schedule.
type Clock struct {
	// Epoch is round 1's start time.
	Epoch time.Time
	// Round is the round duration R.
	Round time.Duration
}

// phase offsets as fractions of the round duration.
const (
	phaseUpload = 0.30
	phaseScreen = 0.55
	phaseElect  = 0.75
	phaseAdopt  = 0.92
)

func (c Clock) at(round uint64, frac float64) time.Time {
	start := c.Epoch.Add(time.Duration(round-1) * c.Round)
	return start.Add(time.Duration(frac * float64(c.Round)))
}

func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// frameSender adapts an Endpoint to the node.Sender interface. With a
// failure counter attached it is tolerant: delivery errors are counted
// and swallowed instead of aborting the node's round loop, so an
// unreachable peer degrades throughput rather than wedging the
// alliance (the endpoint has already retried per its RetryPolicy, and
// Multicast is best-effort across recipients).
type frameSender struct {
	ep       *Endpoint
	failures *int
}

var _ node.Sender = frameSender{}

// Multicast implements node.Sender; the from argument is implied by
// the endpoint's identity (frames are signed with its key).
func (s frameSender) Multicast(_ identity.NodeID, to []identity.NodeID, kind string, payload []byte) error {
	err := s.ep.Multicast(to, kind, payload)
	if err == nil {
		return nil
	}
	if s.failures != nil {
		*s.failures++
		return nil
	}
	return err
}

// instrumentEndpoint applies the runtime's observability configuration
// to a freshly dialed endpoint: metrics, retries, inflight bounds,
// structured warnings, and — when PropagateTrace is set — per-frame
// trace-context stamping with node.TraceIDOf as the local trace-ID
// derivation.
func instrumentEndpoint(ep *Endpoint, cfg RuntimeConfig) {
	ep.UseMetrics(cfg.Metrics)
	ep.SetRetryPolicy(cfg.Retry)
	ep.SetInflightLimit(cfg.InflightLimit)
	ep.SetLogger(cfg.Logger)
	if cfg.PropagateTrace {
		ep.EnableTracePropagation(cfg.Tracer, node.TraceIDOf)
	}
}

func toNetworkMessages(frames []Frame) []network.Message {
	out := make([]network.Message, len(frames))
	for i, f := range frames {
		out[i] = network.Message{From: f.From, Kind: f.Kind, Payload: f.Payload}
	}
	return out
}

// RuntimeConfig assembles one node's TCP runtime.
type RuntimeConfig struct {
	// Deployment describes the whole alliance.
	Deployment *Deployment
	// ID selects which node this process runs.
	ID identity.NodeID
	// Clock is the shared round schedule.
	Clock Clock
	// Rounds is how many rounds to run before stopping.
	Rounds int
	// Params tunes the reputation mechanism (governors).
	Params reputation.Params
	// Validator is validate(tx), shared by collectors and governors.
	Validator tx.Validator
	// TxPerRound is how many transactions a provider submits per
	// round.
	TxPerRound int
	// ValidFrac is the provider workload's valid fraction.
	ValidFrac float64
	// Seed drives local randomness.
	Seed int64
	// StateDir, when non-empty, persists a governor's chain replica
	// (<id>.chain) and reputation state (<id>.rep) under this
	// directory across restarts.
	StateDir string
	// Retry tunes frame delivery; zero fields fall back to
	// DefaultRetryPolicy.
	Retry RetryPolicy
	// Metrics, when non-nil, replaces the endpoint's private registry
	// and receives node-level metrics, so one admin endpoint can expose
	// every node a process hosts.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives lifecycle spans from this node.
	Tracer *trace.Recorder
	// PropagateTrace stamps per-transaction trace context (trace ID,
	// parent span, send timestamp) onto outgoing frames and emits
	// send/recv spans, so traces stitch across processes. Off keeps the
	// v1 wire format byte-identical.
	PropagateTrace bool
	// Events, when non-nil, receives the structured consensus event
	// stream from this node (governors emit screening, block, and
	// reputation events; the runtime adds leader elections).
	Events *events.Log
	// Logger, when non-nil, receives structured warnings from the
	// endpoint (decode/auth failures, exhausted deliveries) instead of
	// silence.
	Logger *slog.Logger
	// Health, when non-nil, receives governor chain heights after each
	// round for the /readyz probe.
	Health *Health
	// MempoolShards shards each governor's upload mempool by provider
	// index; zero keeps the legacy single unbounded queue.
	MempoolShards int
	// MempoolShardCap bounds each governor mempool shard (0 =
	// unbounded; full shards evict their oldest pending transaction).
	MempoolShardCap int
	// AdmissionFloor sheds verified uploads whose collector reputation
	// weight has decayed below the floor (0 admits everything).
	AdmissionFloor float64
	// BlockLimit caps transactions per block for governors (0 =
	// unlimited; with MempoolShards set, it also caps each round's
	// mempool drain).
	BlockLimit int
	// InflightLimit caps received-but-undrained frames held per peer on
	// every node's endpoint (0 = unbounded). Overflow frames are
	// dropped and counted in transport.inflight_dropped.
	InflightLimit int
	// SnapshotEvery, with StateDir set, writes an atomic recovery
	// snapshot (round counter, reputation table, stake vector) into a
	// governor's chain directory every N rounds and prunes segments
	// behind it, bounding both restart replay and disk usage. Zero
	// disables snapshots.
	SnapshotEvery int
	// SegmentBytes overrides the chain segment roll threshold in
	// bytes; zero keeps the ledger default (4 MiB).
	SegmentBytes int64
}

// Report summarizes a node's run.
type Report struct {
	// Role is the node's role name.
	Role string
	// Rounds is how many rounds completed.
	Rounds int
	// Height is the final chain height (governors).
	Height uint64
	// Stats holds governor screening counters (governors).
	Stats node.GovernorStats
	// Uploads counts collector uploads (collectors).
	Uploads int
	// Submitted and SettledValid count provider activity (providers).
	Submitted    int
	SettledValid int
	PendingValid int
	// SendFailures counts multicasts that exhausted their delivery
	// attempts to at least one recipient (all roles).
	SendFailures int
}

// RunNode runs one node to completion of cfg.Rounds rounds.
func RunNode(cfg RuntimeConfig) (Report, error) {
	spec, err := cfg.Deployment.Node(string(cfg.ID))
	if err != nil {
		return Report{}, err
	}
	switch spec.Role {
	case "provider":
		return runProvider(cfg, spec)
	case "collector":
		return runCollector(cfg, spec)
	case "governor":
		return runGovernor(cfg, spec)
	default:
		return Report{}, fmt.Errorf("node %q role %q: %w", cfg.ID, spec.Role, ErrBadDeployment)
	}
}

func memberOf(spec NodeSpec) (identity.Member, error) {
	key, err := spec.PrivateKeyOf()
	if err != nil {
		return identity.Member{}, err
	}
	pub, err := spec.PublicKeyOf()
	if err != nil {
		return identity.Member{}, err
	}
	return identity.Member{
		ID:    identity.NodeID(spec.ID),
		Index: spec.Index,
		Cert: identity.Certificate{
			ID:        identity.NodeID(spec.ID),
			Role:      roleFromString(spec.Role),
			PublicKey: pub,
		},
		PrivateKey: key,
	}, nil
}

func roleFromString(s string) identity.Role {
	switch s {
	case "provider":
		return identity.RoleProvider
	case "collector":
		return identity.RoleCollector
	case "governor":
		return identity.RoleGovernor
	default:
		return 0
	}
}

func idsOf(specs []NodeSpec) []identity.NodeID {
	out := make([]identity.NodeID, len(specs))
	for i, s := range specs {
		out[i] = identity.NodeID(s.ID)
	}
	return out
}

func runProvider(cfg RuntimeConfig, spec NodeSpec) (Report, error) {
	ep, err := NewEndpoint(cfg.Deployment, cfg.ID)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = ep.Close() }()

	mem, err := memberOf(spec)
	if err != nil {
		return Report{}, err
	}
	topo, err := cfg.Deployment.Topology()
	if err != nil {
		return Report{}, err
	}
	collectors := cfg.Deployment.NodesByRole("collector")
	var linked []identity.NodeID
	for _, c := range topo.CollectorsOf(spec.Index) {
		linked = append(linked, identity.NodeID(collectors[c].ID))
	}
	governorIDs := idsOf(cfg.Deployment.NodesByRole("governor"))
	prov := node.NewProvider(mem, nil, linked, governorIDs)
	prov.SetTracer(cfg.Tracer)
	instrumentEndpoint(ep, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(spec.Index)))

	report := Report{Role: "provider"}
	sender := frameSender{ep: ep, failures: &report.SendFailures}
	for round := uint64(1); round <= uint64(cfg.Rounds); round++ {
		prov.SetRound(round)
		sleepUntil(cfg.Clock.at(round, 0))
		for i := 0; i < cfg.TxPerRound; i++ {
			valid := rng.Float64() < cfg.ValidFrac
			payload := []byte{0, byte(i), byte(round)}
			if valid {
				payload[0] = 1
			}
			//repchain:dettaint-ok the submission timestamp is client input the provider signs into its own transaction; replicas treat it as opaque payload, not replica-derived state
			if _, err := prov.Submit("tcp/demo", payload, valid, time.Now().UnixNano(), sender); err != nil {
				return report, err
			}
			report.Submitted++
		}
		// Adopt the round's block and argue. Poll until a block shows up
		// or the round ends; a single drain misses blocks that arrive a
		// few milliseconds after the phase boundary and silently skews
		// the settled/pending accounting.
		sleepUntil(cfg.Clock.at(round, phaseAdopt))
		adoptDeadline := cfg.Clock.at(round+1, 0)
		for observed := false; ; {
			for _, f := range ep.Receive() {
				if f.Kind != network.KindBlock {
					continue
				}
				b, err := ledger.DecodeBlockBytes(f.Payload)
				if err != nil {
					continue
				}
				if _, err := prov.ObserveBlock(b, sender); err != nil {
					return report, err
				}
				observed = true
			}
			if observed || !time.Now().Before(adoptDeadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		report.Rounds++
	}
	report.SettledValid = prov.SettledValid()
	report.PendingValid = prov.PendingValid()
	return report, nil
}

func runCollector(cfg RuntimeConfig, spec NodeSpec) (Report, error) {
	ep, err := NewEndpoint(cfg.Deployment, cfg.ID)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = ep.Close() }()

	mem, err := memberOf(spec)
	if err != nil {
		return Report{}, err
	}
	im, err := cfg.Deployment.BuildIdentityManager()
	if err != nil {
		return Report{}, err
	}
	governorIDs := idsOf(cfg.Deployment.NodesByRole("governor"))
	coll := node.NewCollector(mem, nil, im, cfg.Validator, node.HonestBehavior{}, governorIDs, cfg.Seed+int64(100+spec.Index))
	coll.SetTracer(cfg.Tracer)
	instrumentEndpoint(ep, cfg)

	report := Report{Role: "collector"}
	sender := frameSender{ep: ep, failures: &report.SendFailures}
	for round := uint64(1); round <= uint64(cfg.Rounds); round++ {
		coll.SetRound(round)
		sleepUntil(cfg.Clock.at(round, phaseUpload))
		for _, m := range toNetworkMessages(ep.Receive()) {
			sent, err := coll.HandleProviderTx(m, sender)
			if err != nil {
				return report, err
			}
			if sent {
				report.Uploads++
			}
		}
		report.Rounds++
	}
	return report, nil
}

func runGovernor(cfg RuntimeConfig, spec NodeSpec) (Report, error) {
	ep, err := NewEndpoint(cfg.Deployment, cfg.ID)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = ep.Close() }()

	mem, err := memberOf(spec)
	if err != nil {
		return Report{}, err
	}
	im, err := cfg.Deployment.BuildIdentityManager()
	if err != nil {
		return Report{}, err
	}
	topo, err := cfg.Deployment.Topology()
	if err != nil {
		return Report{}, err
	}
	var store ledger.Store
	var chainFS *ledger.FileStore
	if cfg.StateDir != "" {
		fs, err := ledger.OpenFileStoreOptions(
			filepath.Join(cfg.StateDir, fmt.Sprintf("governor-%d.chain", spec.Index)),
			ledger.StoreOptions{SegmentBytes: cfg.SegmentBytes},
		)
		if err != nil {
			return Report{}, fmt.Errorf("governor chain file: %w", err)
		}
		store, chainFS = fs, fs
		defer func() { _ = fs.Close() }()
	}
	gov, err := node.NewGovernor(node.GovernorConfig{
		Member:          mem,
		IM:              im,
		Topology:        topo,
		Params:          cfg.Params,
		Validator:       cfg.Validator,
		BlockLimit:      cfg.BlockLimit,
		ArgueWindow:     64,
		Seed:            cfg.Seed + int64(200+spec.Index),
		Store:           store,
		MempoolShards:   cfg.MempoolShards,
		MempoolShardCap: cfg.MempoolShardCap,
		AdmissionFloor:  cfg.AdmissionFloor,
		Metrics:         cfg.Metrics,
		Tracer:          cfg.Tracer,
		Events:          cfg.Events,
	})
	if err != nil {
		return Report{}, err
	}
	repPath := ""
	if cfg.StateDir != "" {
		repPath = filepath.Join(cfg.StateDir, fmt.Sprintf("governor-%d.rep", spec.Index))
		if data, err := os.ReadFile(repPath); err == nil {
			if err := gov.Table().RestoreSnapshot(data); err != nil {
				return Report{}, fmt.Errorf("governor reputation state: %w", err)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return Report{}, fmt.Errorf("governor reputation state: %w", err)
		} else if chainFS != nil {
			// No .rep sidecar: fall back to the GovernorState inside
			// the chain's latest ledger snapshot (§4g). Stake state in
			// this runtime comes from the deployment spec, so only the
			// reputation table is applied.
			if snap, found := chainFS.LatestSnapshot(); found && len(snap.App) > 0 {
				st, err := node.DecodeGovernorState(snap.App)
				if err != nil {
					return Report{}, fmt.Errorf("governor ledger snapshot state: %w", err)
				}
				if err := gov.Table().RestoreSnapshot(st.Reputation); err != nil {
					return Report{}, fmt.Errorf("governor ledger snapshot state: %w", err)
				}
			}
		}
	}
	defer func() {
		if repPath != "" {
			_ = os.WriteFile(repPath, gov.Table().Snapshot(), 0o644)
		}
	}()

	governorSpecs := cfg.Deployment.NodesByRole("governor")
	governorIDs := idsOf(governorSpecs)
	providerIDs := idsOf(cfg.Deployment.NodesByRole("provider"))
	govPubs := make([]crypto.PublicKey, len(governorSpecs))
	stakes := make([]uint64, len(governorSpecs))
	for i, gs := range governorSpecs {
		pub, err := gs.PublicKeyOf()
		if err != nil {
			return Report{}, err
		}
		govPubs[i] = pub
		stakes[i] = gs.Stake
		if stakes[i] == 0 {
			stakes[i] = 1
		}
	}
	instrumentEndpoint(ep, cfg)

	// Resume round numbering from a persisted chain (all governors in
	// a deployment must restart together so their heights agree).
	baseRound := gov.Store().Height()
	cfg.Health.SetHeight(string(cfg.ID), baseRound)
	report := Report{Role: "governor"}
	sender := frameSender{ep: ep, failures: &report.SendFailures}

	// Stage latency histograms measure the active work between the
	// schedule's sleeps, not the sleeps themselves. In demo mode the
	// registry is shared, so samples from every governor merge.
	var screenH, electH, packH, commitH *metrics.Histogram
	var heightG *metrics.Gauge
	if cfg.Metrics != nil {
		stages := cfg.Metrics.HistogramVec("round.stage_seconds", metrics.DefBuckets, "stage")
		screenH = stages.With("screen")
		electH = stages.With("elect")
		packH = stages.With("pack")
		commitH = stages.With("commit")
		heightG = cfg.Metrics.Gauge("chain.height")
	}
	observe := func(h *metrics.Histogram, start time.Time) time.Time {
		now := time.Now()
		if h != nil {
			h.Observe(now.Sub(start).Seconds())
		}
		return now
	}
	// Block frames can land in any drain: a fast leader multicasts its
	// block while slower governors are still in their elect drain, and
	// a slow network delivers it after the adopt drain already ran.
	// Discarding those frames forks the governor off the alliance for
	// good, so every drain stashes them here and adoptPending commits
	// the ones signed by the round's (or, at the top of a round, the
	// previous round's) leader.
	var pendingBlocks [][]byte
	prevLeader := -1
	for r := uint64(1); r <= uint64(cfg.Rounds); r++ {
		round := baseRound + r
		gov.SetRound(round)
		// Screen the round's uploads and argues.
		sleepUntil(cfg.Clock.at(r, phaseScreen))
		ticketsFrom := make(map[int][]consensus.Ticket)
		drain := func() error {
			// One HandleBatch call verifies every upload and argue
			// signature of the drained inbox in a single batch pass.
			rest, err := gov.HandleBatch(toNetworkMessages(ep.Receive()))
			if err != nil {
				return err
			}
			for _, m := range rest {
				switch m.Kind {
				case network.KindVRF:
					senderIdx, err := governorIndexOf(m.From)
					if err != nil {
						continue
					}
					ticketRound, ts, err := decodeRoundTickets(m.Payload)
					if err != nil || ticketRound != round {
						continue // stale or malformed ticket batch
					}
					ticketsFrom[senderIdx] = ts
				case network.KindBlock:
					pendingBlocks = append(pendingBlocks, m.Payload)
				}
			}
			return nil
		}
		adoptPending := func(leaderIdx int) error {
			for _, p := range pendingBlocks {
				b, err := ledger.DecodeBlockBytes(p)
				if err != nil || leaderIdx < 0 || b.Proposer != governorIDs[leaderIdx] {
					continue // malformed, or a stale duplicate from an older round
				}
				if err := gov.AcceptBlock(b, governorIDs[leaderIdx], govPubs[leaderIdx]); err != nil {
					return err
				}
			}
			pendingBlocks = pendingBlocks[:0]
			return nil
		}
		stageStart := time.Now()
		if err := drain(); err != nil {
			return report, err
		}
		// Commit a previous-round block that arrived after its adopt
		// window closed, before this round's tickets are made over the
		// chain head.
		if err := adoptPending(prevLeader); err != nil {
			return report, err
		}
		if err := gov.ProcessArgues(); err != nil {
			return report, err
		}
		records, err := gov.ScreenRound()
		if err != nil {
			return report, err
		}
		stageStart = observe(screenH, stageStart)

		// Broadcast leader-election tickets over the previous block.
		prevHash := crypto.ZeroHash
		if head, err := gov.Store().Head(); err == nil {
			prevHash = head.Hash()
		}
		myTickets := consensus.MakeTickets(mem.PrivateKey, prevHash, round, spec.Index, stakes[spec.Index])
		if err := sender.Multicast(mem.ID, governorIDs, network.KindVRF, encodeRoundTickets(round, myTickets)); err != nil {
			return report, err
		}

		// Collect tickets and elect. A single drain at the phase
		// boundary loses the round whenever a peer's ticket frame lands
		// a few milliseconds late (separate processes on a loaded
		// machine), so poll until every governor's batch is in or the
		// collection window closes — the leader still needs the rest of
		// the window to pack and multicast before the adopt phase.
		sleepUntil(cfg.Clock.at(r, phaseElect))
		stageStart = time.Now()
		ticketDeadline := cfg.Clock.at(r, (phaseElect+phaseAdopt)/2)
		for {
			if err := drain(); err != nil {
				return report, err
			}
			if len(ticketsFrom) >= len(governorSpecs) || !time.Now().Before(ticketDeadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		el, err := consensus.NewElection(round, prevHash, govPubs, stakes)
		if err != nil {
			return report, err
		}
		for j := range governorSpecs {
			ts := ticketsFrom[j]
			if err := el.Submit(j, ts); err != nil {
				return report, fmt.Errorf("round %d tickets from governor %d: %w", round, j, err)
			}
		}
		leader, _, err := el.Leader()
		if err != nil {
			return report, err
		}
		stageStart = observe(electH, stageStart)
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(trace.Span{
				Stage: trace.StageElect,
				Node:  string(mem.ID),
				Round: round,
				Attrs: []trace.Attr{{Key: "leader", Value: string(governorIDs[leader])}},
			})
		}
		cfg.Events.Emit(events.TypeLeaderElected, round, string(mem.ID),
			slog.String("leader", string(governorIDs[leader])))

		// The leader proposes; everyone adopts.
		if leader == spec.Index {
			block, err := gov.BuildBlock(records)
			if err != nil {
				return report, err
			}
			targets := append(append([]identity.NodeID(nil), governorIDs...), providerIDs...)
			if err := sender.Multicast(mem.ID, targets, network.KindBlock, block.EncodeBytes()); err != nil {
				return report, err
			}
			observe(packH, stageStart)
		}
		// Adopt. Poll until this round's block is committed or the round
		// ends: losing the leader's block frame to a late arrival would
		// fork this governor off the alliance for good (every later
		// ticket and block verifies against the wrong head).
		sleepUntil(cfg.Clock.at(r, phaseAdopt))
		stageStart = time.Now()
		adoptDeadline := cfg.Clock.at(r+1, 0)
		for {
			if err := drain(); err != nil {
				return report, err
			}
			if err := adoptPending(leader); err != nil {
				return report, err
			}
			if gov.Store().Height() >= round || !time.Now().Before(adoptDeadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		observe(commitH, stageStart)
		prevLeader = leader
		height := gov.Store().Height()
		cfg.Health.SetHeight(string(cfg.ID), height)
		if heightG != nil {
			heightG.Set(float64(height))
		}
		if chainFS != nil && cfg.SnapshotEvery > 0 && height > 0 && height%uint64(cfg.SnapshotEvery) == 0 {
			app := node.GovernorState{
				Round:      height,
				Reputation: gov.Table().Snapshot(),
				Stakes:     stakes,
			}.Encode()
			if _, err := chainFS.WriteSnapshot(app); err != nil {
				return report, fmt.Errorf("governor snapshot: %w", err)
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("ledger.snapshots_total").Inc()
			}
			if repPath != "" {
				if err := os.WriteFile(repPath, gov.Table().Snapshot(), 0o644); err != nil {
					return report, fmt.Errorf("governor reputation state: %w", err)
				}
			}
			pruned, err := chainFS.Prune()
			if err != nil {
				return report, fmt.Errorf("governor prune: %w", err)
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Counter("ledger.segments_pruned_total").Add(int64(pruned))
			}
		}
		report.Rounds++
	}
	report.Height = gov.Store().Height()
	report.Stats = gov.Stats()
	return report, nil
}

// encodeRoundTickets tags a ticket batch with its round so receivers
// can discard stale batches that straggle into the next round.
func encodeRoundTickets(round uint64, ts []consensus.Ticket) []byte {
	inner := consensus.EncodeTickets(ts)
	e := codec.NewEncoder(16 + len(inner))
	e.PutUint64(round)
	e.PutBytes(inner)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeRoundTickets(b []byte) (uint64, []consensus.Ticket, error) {
	d := codec.NewDecoder(b)
	round, err := d.Uint64()
	if err != nil {
		return 0, nil, fmt.Errorf("ticket round: %w", ErrBadFrame)
	}
	inner, err := d.Bytes()
	if err != nil {
		return 0, nil, fmt.Errorf("ticket batch: %w", ErrBadFrame)
	}
	ts, err := consensus.DecodeTickets(inner)
	if err != nil {
		return 0, nil, err
	}
	return round, ts, nil
}

func governorIndexOf(id identity.NodeID) (int, error) {
	const prefix = "governor/"
	s := string(id)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return 0, fmt.Errorf("%q: %w", id, ErrUnknownPeer)
	}
	idx := 0
	for _, ch := range s[len(prefix):] {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("%q: %w", id, ErrUnknownPeer)
		}
		idx = idx*10 + int(ch-'0')
	}
	return idx, nil
}
