package transport

import (
	"fmt"
	"sync"
)

// Health aggregates governor chain heights for readiness probes. In
// the TCP runtime there is no engine-side failure detector, so
// readiness is defined from what the probes can actually see: a
// majority quorum of governors reporting a committed height of at
// least one block.
type Health struct {
	mu        sync.Mutex
	governors int
	heights   map[string]uint64
}

// NewHealth tracks an alliance with the given governor count.
func NewHealth(governors int) *Health {
	return &Health{governors: governors, heights: make(map[string]uint64)}
}

// SetHeight records governor id's current chain height. Nil-safe so
// runtime loops can report unconditionally.
func (h *Health) SetHeight(id string, height uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.heights[id] = height
	h.mu.Unlock()
}

// Ready reports whether a majority of governors have committed at
// least one block, with a human-readable detail line — the shape the
// admin /readyz endpoint wants.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return true, "ok"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	committed := 0
	minH, maxH := uint64(0), uint64(0)
	first := true
	for _, height := range h.heights {
		if height >= 1 {
			committed++
		}
		if first || height < minH {
			minH = height
		}
		if height > maxH {
			maxH = height
		}
		first = false
	}
	quorum := h.governors/2 + 1
	ok := committed >= quorum
	detail := fmt.Sprintf("governors=%d reporting=%d committed=%d quorum=%d height_min=%d height_max=%d",
		h.governors, len(h.heights), committed, quorum, minH, maxH)
	if ok {
		return true, "ok " + detail
	}
	return false, "not ready " + detail
}
