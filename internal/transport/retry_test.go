package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repchain/internal/identity"
)

func TestBackoffCapsExponentialGrowth(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 45 * time.Millisecond}
	wants := []time.Duration{
		0,                     // retry 0: no pause
		10 * time.Millisecond, // 10ms
		20 * time.Millisecond, // 20ms
		40 * time.Millisecond, // 40ms
		45 * time.Millisecond, // capped
		45 * time.Millisecond, // stays capped (no overflow)
	}
	for retry, want := range wants {
		if got := p.Backoff(retry); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	// A pathological retry count must not overflow past the cap.
	if got := p.Backoff(200); got != 45*time.Millisecond {
		t.Fatalf("Backoff(200) = %v, want cap", got)
	}
}

func TestNormalizedFillsZeroFields(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 7}.normalized()
	d := DefaultRetryPolicy()
	if p.MaxAttempts != 7 {
		t.Fatalf("MaxAttempts = %d, want 7 preserved", p.MaxAttempts)
	}
	if p.BaseBackoff != d.BaseBackoff || p.MaxBackoff != d.MaxBackoff ||
		p.DialTimeout != d.DialTimeout || p.WriteTimeout != d.WriteTimeout {
		t.Fatalf("zero fields not defaulted: %+v", p)
	}
}

// TestSendRetriesDeadPeer: a peer that never listens costs exactly
// MaxAttempts dials and one send failure, and the call returns instead
// of wedging.
func TestSendRetriesDeadPeer(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	ep, err := NewEndpoint(d, identity.NodeID("provider/0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ep.Close() }()
	ep.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})

	// collector/0 exists in the deployment but never started.
	err = ep.Send(identity.NodeID("collector/0"), "test/kind", []byte("x"))
	if err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not name the attempt budget", err)
	}
	m := ep.Metrics()
	if got := m.Counter("transport.dials").Value(); got != 3 {
		t.Fatalf("transport.dials = %d, want 3", got)
	}
	if got := m.Counter("transport.retries").Value(); got != 2 {
		t.Fatalf("transport.retries = %d, want 2", got)
	}
	if got := m.Counter("transport.send_failures").Value(); got != 1 {
		t.Fatalf("transport.send_failures = %d, want 1", got)
	}
	if got := m.Counter("transport.frames_sent").Value(); got != 0 {
		t.Fatalf("transport.frames_sent = %d, want 0", got)
	}
}

// TestSendRecoversFlappingPeer: the peer is down for the first attempt
// and comes up before the retries are exhausted; the frame arrives and
// the retry is visible in the metrics.
func TestSendRecoversFlappingPeer(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	sender, err := NewEndpoint(d, identity.NodeID("provider/0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sender.Close() }()
	sender.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})

	// Bring the receiver up only after the sender has begun retrying.
	up := make(chan *Endpoint, 1)
	go func() {
		time.Sleep(15 * time.Millisecond)
		rcv, err := NewEndpoint(d, identity.NodeID("collector/0"))
		if err != nil {
			up <- nil
			return
		}
		up <- rcv
	}()
	err = sender.Send(identity.NodeID("collector/0"), "test/kind", []byte("hello"))
	rcv := <-up
	if rcv == nil {
		t.Fatal("receiver endpoint failed to start")
	}
	defer func() { _ = rcv.Close() }()
	if err != nil {
		t.Fatalf("send to flapping peer: %v", err)
	}
	if got := sender.Metrics().Counter("transport.retries").Value(); got == 0 {
		t.Fatal("flapping peer cost no retries")
	}
	if got := sender.Metrics().Counter("transport.frames_sent").Value(); got != 1 {
		t.Fatalf("transport.frames_sent = %d, want 1", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fs := rcv.Receive(); len(fs) > 0 {
			if string(fs[0].Payload) != "hello" {
				t.Fatalf("payload %q", fs[0].Payload)
			}
			if got := rcv.Metrics().Counter("transport.frames_received").Value(); got != 1 {
				t.Fatalf("transport.frames_received = %d, want 1", got)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("frame never arrived")
}

// TestMulticastBestEffort: a dead recipient in the middle of the list
// must not block delivery to the recipients after it.
func TestMulticastBestEffort(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	sender, err := NewEndpoint(d, identity.NodeID("provider/0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sender.Close() }()
	sender.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  time.Millisecond,
	})
	alive, err := NewEndpoint(d, identity.NodeID("governor/1"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = alive.Close() }()

	targets := []identity.NodeID{"governor/0", "governor/1"} // governor/0 is dead
	err = sender.Multicast(targets, "test/kind", []byte("fanout"))
	if err == nil {
		t.Fatal("multicast with a dead recipient reported success")
	}
	if !strings.Contains(err.Error(), "governor/0") {
		t.Fatalf("joined error %q does not name the dead peer", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fs := alive.Receive(); len(fs) > 0 {
			if string(fs[0].Payload) != "fanout" {
				t.Fatalf("payload %q", fs[0].Payload)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live recipient never got the frame despite best-effort multicast")
}

// TestSendClosedEndpointNoRetry: ErrClosed is terminal, not retried.
func TestSendClosedEndpointNoRetry(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	ep, err := NewEndpoint(d, identity.NodeID("provider/0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(identity.NodeID("collector/0"), "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed endpoint = %v, want ErrClosed", err)
	}
	if got := ep.Metrics().Counter("transport.retries").Value(); got != 0 {
		t.Fatalf("closed endpoint retried %d times", got)
	}
}

// TestStaleConnectionRedialedWithinAttempt: a cached connection whose
// peer restarted is replaced by a fresh dial without consuming a
// retry.
func TestStaleConnectionRedialedWithinAttempt(t *testing.T) {
	d := testDeployment(t, 2, 2, 1, 2)
	sender, err := NewEndpoint(d, identity.NodeID("provider/0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sender.Close() }()
	rcv, err := NewEndpoint(d, identity.NodeID("collector/0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(rcv.ID(), "k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Restart the receiver on the same address: the sender's cached
	// connection is now dead.
	addr := rcv.Addr()
	if err := rcv.Close(); err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ln == nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c // sink: accept and hold
		}
	}()
	// Writes into a freshly closed TCP connection may succeed locally
	// (buffered) before the RST arrives; send until the failure is
	// observed or the frame legitimately goes through on a new dial.
	for i := 0; i < 20; i++ {
		if err := sender.Send(identity.NodeID("collector/0"), "k", []byte("two")); err != nil {
			t.Fatalf("send after peer restart: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := sender.Metrics().Counter("transport.send_failures").Value(); got != 0 {
		t.Fatalf("send_failures = %d after stale-connection recovery", got)
	}
}
