package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"time"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/metrics"
	"repchain/internal/trace"
)

// Frame is one signed application message on the wire.
type Frame struct {
	// From is the sender's node ID.
	From identity.NodeID
	// Kind classifies the payload (network.Kind* constants).
	Kind string
	// Payload is the encoded protocol message.
	Payload []byte
	// Counter is the sender's monotone frame counter, preventing
	// replay within and across connections.
	Counter uint64
	// Sig is the sender's Ed25519 signature over the frame.
	Sig []byte
	// Trace is the optional v2 trace-propagation context. Nil frames
	// encode and sign exactly as the v1 wire format did, so a
	// deployment with tracing disabled is byte-identical to a legacy
	// one (DESIGN.md §4h).
	Trace *TraceCtx
}

// TraceCtx is the trace context a v2 frame carries across a transport
// hop: the transaction's trace ID, the sender's parent span sequence
// number, and the sender's wall clock at send time (per-hop latency =
// receiver wall − SentNS, under the deployment's loose clock-sync
// assumption; see DESIGN.md §4h for the clock model). The context is
// covered by the frame signature — a middlebox cannot strip or forge
// it without invalidating the frame.
type TraceCtx struct {
	// Trace is the hex transaction hash (the trace ID).
	Trace string
	// Parent is the sender's span sequence number for this hop's send
	// span, scoped to the sender's recorder.
	Parent uint64
	// SentNS is the sender's wall clock at send, unix nanoseconds.
	SentNS int64
}

// Frame signing domains: v1 covers (from, kind, payload, counter); v2
// additionally covers the trace context. The domain string is chosen
// by presence, so a v1-signed frame can never be replayed as a v2
// frame with attacker-chosen context or vice versa.
const (
	frameDomainV1 = "repchain/frame/v1"
	frameDomainV2 = "repchain/frame/v2"
)

func frameSigningBytes(from identity.NodeID, kind string, payload []byte, counter uint64, tc *TraceCtx) []byte {
	e := codec.NewEncoder(64 + len(payload))
	if tc == nil {
		e.PutString(frameDomainV1)
	} else {
		e.PutString(frameDomainV2)
	}
	e.PutString(string(from))
	e.PutString(kind)
	e.PutBytes(payload)
	e.PutUint64(counter)
	if tc != nil {
		e.PutString(tc.Trace)
		e.PutUint64(tc.Parent)
		e.PutVarint(tc.SentNS)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func encodeFrame(f Frame) []byte {
	e := codec.NewEncoder(128 + len(f.Payload))
	e.PutString(string(f.From))
	e.PutString(f.Kind)
	e.PutBytes(f.Payload)
	e.PutUint64(f.Counter)
	e.PutBytes(f.Sig)
	// The trace context is a trailing optional section: absent, the
	// encoding is byte-identical to the v1 format; present, a legacy
	// decoder's full-consumption check rejects the frame rather than
	// silently misreading it.
	if f.Trace != nil {
		e.PutString(f.Trace.Trace)
		e.PutUint64(f.Trace.Parent)
		e.PutVarint(f.Trace.SentNS)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeFrame(b []byte) (Frame, error) {
	d := codec.NewDecoder(b)
	var f Frame
	from, err := d.String()
	if err != nil {
		return f, fmt.Errorf("frame from: %w", ErrBadFrame)
	}
	f.From = identity.NodeID(from)
	if f.Kind, err = d.String(); err != nil {
		return f, fmt.Errorf("frame kind: %w", ErrBadFrame)
	}
	if f.Payload, err = d.Bytes(); err != nil {
		return f, fmt.Errorf("frame payload: %w", ErrBadFrame)
	}
	if f.Counter, err = d.Uint64(); err != nil {
		return f, fmt.Errorf("frame counter: %w", ErrBadFrame)
	}
	if f.Sig, err = d.Bytes(); err != nil {
		return f, fmt.Errorf("frame sig: %w", ErrBadFrame)
	}
	if d.Remaining() > 0 {
		var tc TraceCtx
		if tc.Trace, err = d.String(); err != nil {
			return f, fmt.Errorf("frame trace id: %w", ErrBadFrame)
		}
		if tc.Parent, err = d.Uint64(); err != nil {
			return f, fmt.Errorf("frame trace parent: %w", ErrBadFrame)
		}
		if tc.SentNS, err = d.Varint(); err != nil {
			return f, fmt.Errorf("frame trace sent: %w", ErrBadFrame)
		}
		f.Trace = &tc
	}
	if err := d.Expect(); err != nil {
		return f, fmt.Errorf("frame: %w", ErrBadFrame)
	}
	return f, nil
}

// maxFrameSize bounds a single frame, protecting receivers from
// hostile length prefixes.
const maxFrameSize = 8 << 20 // 8 MiB

// Endpoint is one node's TCP attachment: it listens on the node's
// address, dials peers lazily, signs outgoing frames, and verifies
// incoming frames against the deployment's keys.
type Endpoint struct {
	self identity.NodeID
	key  crypto.PrivateKey
	reg  *metrics.Registry

	// Trace propagation (set once before traffic via
	// EnableTracePropagation): tracer receives send/recv hop spans and
	// traceID derives the trace ID from (kind, payload). Both nil by
	// default — the wire format then stays v1 byte-identical.
	tracer  *trace.Recorder
	traceID func(kind string, payload []byte) string

	// logger, when non-nil, receives structured diagnostics (auth
	// failures, exhausted deliveries). Never wired into protocol
	// decisions.
	logger *slog.Logger

	mu       sync.Mutex
	peers    map[identity.NodeID]NodeSpec
	pubs     map[identity.NodeID]crypto.PublicKey
	conns    map[identity.NodeID]net.Conn
	inbound  []net.Conn
	lastCtr  map[identity.NodeID]uint64
	counter  uint64
	policy   RetryPolicy
	closed   bool
	listener net.Listener

	inboxMu     sync.Mutex
	inbox       []Frame
	inboxByPeer map[identity.NodeID]int
	inflight    int

	wg sync.WaitGroup
}

// NewEndpoint creates and starts an endpoint for node id, listening on
// the node's deployment address.
func NewEndpoint(d *Deployment, id identity.NodeID) (*Endpoint, error) {
	spec, err := d.Node(string(id))
	if err != nil {
		return nil, err
	}
	key, err := spec.PrivateKeyOf()
	if err != nil {
		return nil, err
	}
	ep := &Endpoint{
		self:    id,
		key:     key,
		reg:     metrics.NewRegistry(),
		peers:   make(map[identity.NodeID]NodeSpec, len(d.Nodes)),
		pubs:    make(map[identity.NodeID]crypto.PublicKey, len(d.Nodes)),
		conns:   make(map[identity.NodeID]net.Conn),
		lastCtr: make(map[identity.NodeID]uint64),
		policy:  DefaultRetryPolicy(),
	}
	for _, n := range d.Nodes {
		pub, err := n.PublicKeyOf()
		if err != nil {
			return nil, err
		}
		ep.peers[identity.NodeID(n.ID)] = n
		ep.pubs[identity.NodeID(n.ID)] = pub
	}
	ln, err := net.Listen("tcp", spec.Addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", spec.Addr, err)
	}
	ep.listener = ln
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID returns the endpoint's node ID.
func (ep *Endpoint) ID() identity.NodeID { return ep.self }

// Metrics exposes the endpoint's transport.* counters: frames_sent,
// frames_received, dials, retries, send_failures, auth_failures.
func (ep *Endpoint) Metrics() *metrics.Registry { return ep.reg }

// UseMetrics replaces the endpoint's registry with a shared one, so
// several endpoints in one process (the -demo alliance) aggregate into
// a single exposition. Call before any traffic flows; counters are
// resolved by name on use, so earlier counts simply stay in the old
// registry.
func (ep *Endpoint) UseMetrics(reg *metrics.Registry) {
	if reg != nil {
		ep.reg = reg
	}
}

// SetInflightLimit caps the number of received-but-undrained frames
// held per peer; a frame arriving while its sender already has n
// frames queued is dropped and counted in transport.inflight_dropped.
// This bounds a slow consumer's memory against a fast or hostile peer.
// Zero (the default) keeps the inbox unbounded.
func (ep *Endpoint) SetInflightLimit(n int) {
	ep.inboxMu.Lock()
	if n < 0 {
		n = 0
	}
	ep.inflight = n
	ep.inboxMu.Unlock()
}

// deliver appends a frame to the inbox unless the sender is at the
// inflight limit; it reports whether the frame was kept.
func (ep *Endpoint) deliver(f Frame) bool {
	ep.inboxMu.Lock()
	defer ep.inboxMu.Unlock()
	if ep.inflight > 0 && ep.inboxByPeer[f.From] >= ep.inflight {
		return false
	}
	if ep.inboxByPeer == nil {
		ep.inboxByPeer = make(map[identity.NodeID]int)
	}
	ep.inboxByPeer[f.From]++
	ep.inbox = append(ep.inbox, f)
	return true
}

// EnableTracePropagation turns on cross-process trace stitching: every
// outgoing frame whose payload maps to a trace ID (per idOf) carries a
// signed v2 trace context, and both sides of the hop emit send/recv
// spans into rec with the per-hop wire latency. Call before any
// traffic flows. With propagation off (the default) the wire format is
// byte-identical to v1, so legacy peers interoperate unchanged.
func (ep *Endpoint) EnableTracePropagation(rec *trace.Recorder, idOf func(kind string, payload []byte) string) {
	ep.mu.Lock()
	ep.tracer = rec
	ep.traceID = idOf
	ep.mu.Unlock()
}

// SetLogger attaches a structured logger for transport diagnostics
// (auth failures, exhausted deliveries). Nil (the default) keeps the
// endpoint silent.
func (ep *Endpoint) SetLogger(l *slog.Logger) {
	ep.mu.Lock()
	ep.logger = l
	ep.mu.Unlock()
}

// SetRetryPolicy replaces the delivery policy (zero fields fall back
// to the default). Call before the first Send.
func (ep *Endpoint) SetRetryPolicy(p RetryPolicy) {
	ep.mu.Lock()
	ep.policy = p.normalized()
	ep.mu.Unlock()
}

// Addr returns the bound listen address (useful with port 0).
func (ep *Endpoint) Addr() string { return ep.listener.Addr().String() }

func (ep *Endpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.inbound = append(ep.inbound, conn)
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

func (ep *Endpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer func() { _ = conn.Close() }()
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrameSize {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		frame, err := decodeFrame(buf)
		if err != nil {
			ep.reg.Counter("transport.auth_failures").Inc()
			ep.logWarn("frame rejected", slog.String("error", err.Error()))
			continue
		}
		if err := ep.authenticate(frame); err != nil {
			ep.reg.Counter("transport.auth_failures").Inc()
			ep.logWarn("frame rejected",
				slog.String("from", string(frame.From)),
				slog.String("kind", frame.Kind),
				slog.String("error", err.Error()))
			continue
		}
		ep.reg.Counter("transport.frames_received").Inc()
		ep.emitRecvSpan(frame)
		if !ep.deliver(frame) {
			ep.reg.Counter("transport.inflight_dropped").Inc()
		}
	}
}

// logWarn emits a structured warning when a logger is attached.
func (ep *Endpoint) logWarn(msg string, attrs ...slog.Attr) {
	ep.mu.Lock()
	l := ep.logger
	ep.mu.Unlock()
	if l != nil {
		l.LogAttrs(context.Background(), slog.LevelWarn, msg, append([]slog.Attr{slog.String("node", string(ep.self))}, attrs...)...)
	}
}

// emitRecvSpan records the receive half of a traced transport hop:
// the span carries the remote parent seq and the measured hop latency
// (receiver wall − sender SentNS; meaningful to the deployment's
// clock-sync bound, negative values are reported as-is so skew is
// visible rather than hidden).
func (ep *Endpoint) emitRecvSpan(f Frame) {
	if f.Trace == nil {
		return
	}
	ep.mu.Lock()
	rec := ep.tracer
	ep.mu.Unlock()
	if rec == nil {
		return
	}
	latency := time.Now().UnixNano() - f.Trace.SentNS
	rec.Emit(trace.Span{
		Trace: f.Trace.Trace,
		Stage: trace.StageRecv,
		Node:  string(ep.self),
		Attrs: []trace.Attr{
			{Key: "from", Value: string(f.From)},
			{Key: "kind", Value: f.Kind},
			{Key: "parent", Value: strconv.FormatUint(f.Trace.Parent, 10)},
			{Key: "sent_ns", Value: strconv.FormatInt(f.Trace.SentNS, 10)},
			{Key: "latency_ns", Value: strconv.FormatInt(latency, 10)},
		},
	})
}

// authenticate verifies the frame signature and replay counter.
func (ep *Endpoint) authenticate(f Frame) error {
	pub, ok := ep.pubs[f.From]
	if !ok {
		return fmt.Errorf("frame from %q: %w", f.From, ErrUnknownPeer)
	}
	msg := frameSigningBytes(f.From, f.Kind, f.Payload, f.Counter, f.Trace)
	if err := pub.Verify(msg, f.Sig); err != nil {
		return fmt.Errorf("frame from %q: %w", f.From, ErrBadFrame)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if f.Counter <= ep.lastCtr[f.From] {
		return fmt.Errorf("replayed frame %d from %q: %w", f.Counter, f.From, ErrBadFrame)
	}
	ep.lastCtr[f.From] = f.Counter
	return nil
}

// Send delivers one signed frame to a peer, dialing lazily with a
// bounded timeout, writing under a deadline, and retrying with capped
// exponential backoff per the endpoint's RetryPolicy. A flapping peer
// costs the sender bounded time per frame; a dead one fails the frame
// after MaxAttempts without wedging the caller.
//
// Concurrency: the endpoint's bookkeeping is mutex-guarded, but
// concurrent Sends to the *same* peer may interleave partial TCP
// writes. The node runtimes are single-threaded per node (one
// goroutine owns each endpoint), which is the supported usage.
func (ep *Endpoint) Send(to identity.NodeID, kind string, payload []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	spec, ok := ep.peers[to]
	if !ok {
		ep.mu.Unlock()
		return fmt.Errorf("send to %q: %w", to, ErrUnknownPeer)
	}
	ep.counter++
	frame := Frame{From: ep.self, Kind: kind, Payload: payload, Counter: ep.counter}
	rec, idOf := ep.tracer, ep.traceID
	pol := ep.policy
	ep.mu.Unlock()

	// With propagation enabled and a per-transaction payload, stamp the
	// signed v2 trace context and record the send half of the hop.
	if rec != nil && idOf != nil {
		if id := idOf(kind, payload); id != "" {
			parent := rec.Emit(trace.Span{
				Trace: id,
				Stage: trace.StageSend,
				Node:  string(ep.self),
				Attrs: []trace.Attr{
					{Key: "to", Value: string(to)},
					{Key: "kind", Value: kind},
				},
			})
			//repchain:dettaint-ok SentNS is the signed v2 trace context (DESIGN §4h): hop-local send metadata the sender alone signs; the verifier checks the received bytes, so replicas never need to agree on the value
			frame.Trace = &TraceCtx{Trace: id, Parent: parent, SentNS: time.Now().UnixNano()}
		}
	}
	frame.Sig = ep.key.Sign(frameSigningBytes(frame.From, frame.Kind, frame.Payload, frame.Counter, frame.Trace))

	enc := encodeFrame(frame)
	msg := make([]byte, 4+len(enc))
	binary.BigEndian.PutUint32(msg, uint32(len(enc)))
	copy(msg[4:], enc)

	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			ep.reg.Counter("transport.retries").Inc()
			time.Sleep(pol.Backoff(attempt - 1))
		}
		if err := ep.sendOnce(to, spec, msg, pol); err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			lastErr = err
			continue
		}
		ep.reg.Counter("transport.frames_sent").Inc()
		return nil
	}
	ep.reg.Counter("transport.send_failures").Inc()
	ep.logWarn("delivery exhausted",
		slog.String("to", string(to)),
		slog.String("kind", kind),
		slog.Int("attempts", pol.MaxAttempts),
		slog.String("error", fmt.Sprint(lastErr)))
	return fmt.Errorf("send to %q after %d attempts: %w", to, pol.MaxAttempts, lastErr)
}

// sendOnce makes a single delivery attempt: reuse the cached
// connection if any, else dial fresh. Either path writes under
// WriteTimeout; a failed cached connection is discarded so the next
// attempt redials.
func (ep *Endpoint) sendOnce(to identity.NodeID, spec NodeSpec, msg []byte, pol RetryPolicy) error {
	write := func(c net.Conn) error {
		if err := c.SetWriteDeadline(time.Now().Add(pol.WriteTimeout)); err != nil {
			return err
		}
		_, err := c.Write(msg)
		return err
	}
	ep.mu.Lock()
	conn := ep.conns[to]
	ep.mu.Unlock()
	if conn != nil {
		if err := write(conn); err == nil {
			return nil
		}
		// Stale connection: drop it and dial fresh within the same
		// attempt — a half-dead cached socket should not consume a
		// whole retry.
		ep.mu.Lock()
		if ep.conns[to] == conn {
			delete(ep.conns, to)
		}
		ep.mu.Unlock()
		_ = conn.Close()
	}
	ep.reg.Counter("transport.dials").Inc()
	fresh, err := net.DialTimeout("tcp", spec.Addr, pol.DialTimeout)
	if err != nil {
		return fmt.Errorf("dial %q: %w", to, err)
	}
	if err := write(fresh); err != nil {
		_ = fresh.Close()
		return fmt.Errorf("write to %q: %w", to, err)
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		_ = fresh.Close()
		return ErrClosed
	}
	if old, ok := ep.conns[to]; ok && old != fresh {
		_ = old.Close()
	}
	ep.conns[to] = fresh
	ep.mu.Unlock()
	return nil
}

// Multicast sends one frame to each recipient, best-effort: every
// recipient gets its attempts even when an earlier one fails, and the
// per-recipient errors come back joined. One dead peer therefore
// never blocks delivery to the rest of the alliance.
func (ep *Endpoint) Multicast(to []identity.NodeID, kind string, payload []byte) error {
	var errs []error
	for _, dst := range to {
		if dst == ep.self {
			// Local delivery without the network.
			ep.mu.Lock()
			ep.counter++
			frame := Frame{From: ep.self, Kind: kind, Payload: payload, Counter: ep.counter}
			ep.mu.Unlock()
			if !ep.deliver(frame) {
				ep.reg.Counter("transport.inflight_dropped").Inc()
			}
			continue
		}
		if err := ep.Send(dst, kind, payload); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Receive drains the inbox.
func (ep *Endpoint) Receive() []Frame {
	ep.inboxMu.Lock()
	defer ep.inboxMu.Unlock()
	out := ep.inbox
	ep.inbox = nil
	ep.inboxByPeer = nil
	return out
}

// Close shuts the listener and all connections and joins the reader
// goroutines.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	err := ep.listener.Close()
	for _, c := range ep.conns {
		_ = c.Close()
	}
	for _, c := range ep.inbound {
		_ = c.Close()
	}
	ep.conns = make(map[identity.NodeID]net.Conn)
	ep.inbound = nil
	ep.mu.Unlock()
	ep.wg.Wait()
	if err != nil {
		return fmt.Errorf("close listener: %w", err)
	}
	return nil
}
