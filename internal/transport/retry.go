package transport

import "time"

// RetryPolicy bounds how hard an endpoint works to deliver one frame:
// per-hop dial and write timeouts so a black-holed peer cannot stall
// the sender indefinitely, and capped exponential backoff between
// attempts so a flapping peer is retried without being hammered. The
// zero value of any field falls back to the default.
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts per frame
	// (first try included).
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// DialTimeout bounds each TCP dial.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write.
	WriteTimeout time.Duration
}

// DefaultRetryPolicy matches the wall-clock runtime's phase gaps: three
// attempts spanning well under the slack between two phases of a
// 400 ms round.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:  3,
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   160 * time.Millisecond,
		DialTimeout:  time.Second,
		WriteTimeout: time.Second,
	}
}

// normalized fills zero fields from the default so callers can set
// only what they care about.
func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	if p.WriteTimeout <= 0 {
		p.WriteTimeout = d.WriteTimeout
	}
	return p
}

// Backoff returns the pause before retry number retry (1-based):
// BaseBackoff·2^(retry-1), capped at MaxBackoff.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	if retry < 1 {
		return 0
	}
	b := p.BaseBackoff
	for i := 1; i < retry; i++ {
		b *= 2
		if b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if b > p.MaxBackoff {
		return p.MaxBackoff
	}
	return b
}
