// Package transport runs the protocol over real TCP sockets: a framed,
// signed peer-to-peer message layer plus a wall-clock round runtime,
// so an alliance can be deployed as one process per node. The
// simulation bus (package network) and this package carry the same
// protocol messages; the reputation, consensus, and ledger code is
// shared unchanged.
package transport

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"

	"encoding/json"

	"repchain/internal/crypto"
	"repchain/internal/identity"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadDeployment reports an inconsistent deployment file.
	ErrBadDeployment = errors.New("transport: invalid deployment")
	// ErrUnknownPeer reports a message for or from an unknown node.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrBadFrame reports an undecodable or unauthenticated frame.
	ErrBadFrame = errors.New("transport: bad frame")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
)

// NodeSpec is one node's entry in a deployment file.
type NodeSpec struct {
	// ID is the canonical node identifier, e.g. "governor/0".
	ID string `json:"id"`
	// Role is "provider", "collector", or "governor".
	Role string `json:"role"`
	// Index is the node's position within its role.
	Index int `json:"index"`
	// Addr is the node's TCP listen address.
	Addr string `json:"addr"`
	// PublicKey is the node's Ed25519 public key, hex.
	PublicKey string `json:"public_key"`
	// PrivateKey is the node's Ed25519 private key, hex. A production
	// deployment would distribute per-node files; the demo keeps the
	// roster in one file.
	PrivateKey string `json:"private_key"`
	// CertSignature is the IM's signature over (ID, Role, PublicKey),
	// hex.
	CertSignature string `json:"cert_signature"`
	// Stake is the governor's initial stake units (governors only).
	Stake uint64 `json:"stake,omitempty"`
}

// Deployment is the JSON model written by repchain-keygen.
type Deployment struct {
	// RootPublicKey is the IM root verifying key, hex.
	RootPublicKey string `json:"root_public_key"`
	// Nodes lists every member.
	Nodes []NodeSpec `json:"nodes"`
	// Links maps provider index to linked collector indices.
	Links [][]int `json:"links"`
}

// NewDeployment renders a registered roster into the JSON model,
// assigning consecutive TCP ports starting at basePort in the order
// providers, collectors, governors.
func NewDeployment(im *identity.Manager, roster *identity.Roster, host string, basePort int) (*Deployment, error) {
	d := &Deployment{
		RootPublicKey: hex.EncodeToString(im.RootPublicKey().Bytes()),
	}
	port := basePort
	addNode := func(mem identity.Member, role identity.Role, stake uint64) {
		d.Nodes = append(d.Nodes, NodeSpec{
			ID:            string(mem.ID),
			Role:          role.String(),
			Index:         mem.Index,
			Addr:          fmt.Sprintf("%s:%d", host, port),
			PublicKey:     hex.EncodeToString(mem.Cert.PublicKey.Bytes()),
			PrivateKey:    hex.EncodeToString(mem.PrivateKey.Bytes()),
			CertSignature: hex.EncodeToString(mem.Cert.Signature),
			Stake:         stake,
		})
		port++
	}
	for _, mem := range roster.Providers {
		addNode(mem, identity.RoleProvider, 0)
	}
	for _, mem := range roster.Collectors {
		addNode(mem, identity.RoleCollector, 0)
	}
	for _, mem := range roster.Governors {
		addNode(mem, identity.RoleGovernor, 1)
	}
	topo := roster.Topology
	d.Links = make([][]int, topo.Providers())
	for k := 0; k < topo.Providers(); k++ {
		d.Links[k] = append([]int(nil), topo.CollectorsOf(k)...)
	}
	return d, nil
}

// LoadDeployment reads and validates a deployment file.
func LoadDeployment(path string) (*Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read deployment: %w", err)
	}
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("parse deployment: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks structural consistency.
func (d *Deployment) Validate() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("no nodes: %w", ErrBadDeployment)
	}
	seen := make(map[string]bool, len(d.Nodes))
	counts := map[string]int{}
	for i, n := range d.Nodes {
		if n.ID == "" || n.Addr == "" {
			return fmt.Errorf("node %d incomplete: %w", i, ErrBadDeployment)
		}
		if seen[n.ID] {
			return fmt.Errorf("duplicate node %q: %w", n.ID, ErrBadDeployment)
		}
		seen[n.ID] = true
		if _, err := hex.DecodeString(n.PublicKey); err != nil {
			return fmt.Errorf("node %q public key: %w", n.ID, ErrBadDeployment)
		}
		counts[n.Role]++
	}
	if counts["governor"] == 0 {
		return fmt.Errorf("no governors: %w", ErrBadDeployment)
	}
	if len(d.Links) != counts["provider"] {
		return fmt.Errorf("links for %d providers, have %d: %w", len(d.Links), counts["provider"], ErrBadDeployment)
	}
	for k, cs := range d.Links {
		for _, c := range cs {
			if c < 0 || c >= counts["collector"] {
				return fmt.Errorf("provider %d links to collector %d of %d: %w", k, c, counts["collector"], ErrBadDeployment)
			}
		}
	}
	return nil
}

// Counts returns (providers, collectors, governors).
func (d *Deployment) Counts() (int, int, int) {
	var l, n, m int
	for _, node := range d.Nodes {
		switch node.Role {
		case "provider":
			l++
		case "collector":
			n++
		case "governor":
			m++
		}
	}
	return l, n, m
}

// Node returns the spec for id.
func (d *Deployment) Node(id string) (NodeSpec, error) {
	for _, n := range d.Nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return NodeSpec{}, fmt.Errorf("node %q: %w", id, ErrUnknownPeer)
}

// NodesByRole returns the specs of one role, ordered by index.
func (d *Deployment) NodesByRole(role string) []NodeSpec {
	var out []NodeSpec
	for _, n := range d.Nodes {
		if n.Role == role {
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PublicKeyOf parses a node's public key.
func (n NodeSpec) PublicKeyOf() (crypto.PublicKey, error) {
	raw, err := hex.DecodeString(n.PublicKey)
	if err != nil {
		return crypto.PublicKey{}, fmt.Errorf("node %q public key: %w", n.ID, ErrBadDeployment)
	}
	return crypto.PublicKeyFromBytes(raw)
}

// PrivateKeyOf parses a node's private key.
func (n NodeSpec) PrivateKeyOf() (crypto.PrivateKey, error) {
	raw, err := hex.DecodeString(n.PrivateKey)
	if err != nil {
		return crypto.PrivateKey{}, fmt.Errorf("node %q private key: %w", n.ID, ErrBadDeployment)
	}
	return crypto.PrivateKeyFromBytes(raw)
}

// Topology reconstructs the provider–collector graph.
func (d *Deployment) Topology() (*identity.Topology, error) {
	l, n, _ := d.Counts()
	return identity.NewTopologyFromLinks(l, n, d.Links)
}

// BuildIdentityManager reconstructs an identity.Manager view of the
// deployment for verify() calls: a fresh IM re-registers every node
// and link. Certificates are re-issued locally (the original root
// signatures remain in the specs for offline verification against
// RootPublicKey).
func (d *Deployment) BuildIdentityManager() (*identity.Manager, error) {
	im, err := identity.NewManager()
	if err != nil {
		return nil, err
	}
	roleOf := map[string]identity.Role{
		"provider":  identity.RoleProvider,
		"collector": identity.RoleCollector,
		"governor":  identity.RoleGovernor,
	}
	for _, n := range d.Nodes {
		role, ok := roleOf[n.Role]
		if !ok {
			return nil, fmt.Errorf("node %q role %q: %w", n.ID, n.Role, ErrBadDeployment)
		}
		pub, err := n.PublicKeyOf()
		if err != nil {
			return nil, err
		}
		if _, err := im.Register(identity.NodeID(n.ID), role, pub); err != nil {
			return nil, err
		}
	}
	providers := d.NodesByRole("provider")
	collectors := d.NodesByRole("collector")
	for k, cs := range d.Links {
		for _, c := range cs {
			if err := im.Link(identity.NodeID(providers[k].ID), identity.NodeID(collectors[c].ID)); err != nil {
				return nil, err
			}
		}
	}
	return im, nil
}
