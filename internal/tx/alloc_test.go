package tx

import (
	"testing"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// TestEncodeSigningNoAllocsSteadyState pins the zero-allocation
// contract of the per-transaction encode hot path into a reused
// encoder (explicitly reused, never sync.Pool — GC may empty pools
// mid-test and break the count).
func TestEncodeSigningNoAllocsSteadyState(t *testing.T) {
	_, priv := testKey(t, 9)
	signed := Sign(sampleTx(7), priv)
	labeled, err := SignLabel(signed, LabelValid, "collector/0", priv)
	if err != nil {
		t.Fatal(err)
	}
	e := codec.NewEncoder(512)
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		signed.Tx.EncodeSigning(e)
		signed.Encode(e)
		labeled.EncodeSigning(e)
	})
	if allocs != 0 {
		t.Fatalf("per-tx encode path allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkTxEncodeSigning measures the pooled per-transaction encode
// path feeding BENCH_round.json.
func BenchmarkTxEncodeSigning(b *testing.B) {
	seed := make([]byte, crypto.SeedSize)
	seed[0] = 9
	_, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		b.Fatal(err)
	}
	signed := Sign(sampleTx(7), priv)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := codec.GetEncoder(256)
		signed.Tx.EncodeSigning(e)
		e.Release()
	}
}
