package tx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
)

func testKey(t *testing.T, b byte) (crypto.PublicKey, crypto.PrivateKey) {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = b
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func sampleTx(seq uint64) Transaction {
	return Transaction{
		Provider:  identity.MakeNodeID(identity.RoleProvider, 0),
		Seq:       seq,
		Timestamp: 1234567890,
		Kind:      "test/sample",
		Payload:   []byte("payload bytes"),
	}
}

func TestLabelValid(t *testing.T) {
	tests := []struct {
		label Label
		want  bool
	}{
		{LabelValid, true},
		{LabelInvalid, true},
		{Label(0), false},
		{Label(2), false},
		{Label(-2), false},
	}
	for _, tt := range tests {
		if got := tt.label.Valid(); got != tt.want {
			t.Errorf("Label(%d).Valid() = %v, want %v", tt.label, got, tt.want)
		}
	}
}

func TestLabelStrings(t *testing.T) {
	if LabelValid.String() != "+1" || LabelInvalid.String() != "-1" {
		t.Fatal("label strings do not match the paper's notation")
	}
	if Label(5).String() != "label(5)" {
		t.Fatalf("unexpected: %s", Label(5))
	}
}

func TestLabelOppositeAndMatches(t *testing.T) {
	if LabelValid.Opposite() != LabelInvalid || LabelInvalid.Opposite() != LabelValid {
		t.Fatal("Opposite() wrong")
	}
	if !LabelValid.Matches(StatusValid) || LabelValid.Matches(StatusInvalid) {
		t.Fatal("Matches() wrong for +1")
	}
	if !LabelInvalid.Matches(StatusInvalid) || LabelInvalid.Matches(StatusValid) {
		t.Fatal("Matches() wrong for -1")
	}
}

func TestStatusString(t *testing.T) {
	if StatusValid.String() != "valid" || StatusInvalid.String() != "invalid" {
		t.Fatal("status strings wrong")
	}
	if StatusFor(true) != StatusValid || StatusFor(false) != StatusInvalid {
		t.Fatal("StatusFor wrong")
	}
}

func TestTransactionIDStable(t *testing.T) {
	a, b := sampleTx(1), sampleTx(1)
	if a.ID() != b.ID() {
		t.Fatal("equal transactions have different IDs")
	}
	c := sampleTx(2)
	if a.ID() == c.ID() {
		t.Fatal("different transactions share an ID")
	}
}

func TestTransactionIDBindsAllFields(t *testing.T) {
	base := sampleTx(1)
	mutants := []Transaction{
		{Provider: "provider/9", Seq: base.Seq, Timestamp: base.Timestamp, Kind: base.Kind, Payload: base.Payload},
		{Provider: base.Provider, Seq: 9, Timestamp: base.Timestamp, Kind: base.Kind, Payload: base.Payload},
		{Provider: base.Provider, Seq: base.Seq, Timestamp: 9, Kind: base.Kind, Payload: base.Payload},
		{Provider: base.Provider, Seq: base.Seq, Timestamp: base.Timestamp, Kind: "other", Payload: base.Payload},
		{Provider: base.Provider, Seq: base.Seq, Timestamp: base.Timestamp, Kind: base.Kind, Payload: []byte("x")},
	}
	for i, m := range mutants {
		if m.ID() == base.ID() {
			t.Fatalf("mutant %d did not change the transaction ID", i)
		}
	}
}

func TestSignVerifyProvider(t *testing.T) {
	pub, priv := testKey(t, 1)
	s := Sign(sampleTx(1), priv)
	if err := s.VerifyProvider(pub); err != nil {
		t.Fatalf("VerifyProvider() error = %v", err)
	}
}

func TestVerifyProviderRejectsForgery(t *testing.T) {
	pub, priv := testKey(t, 1)
	s := Sign(sampleTx(1), priv)

	// A collector tampering with the payload (the forgery scenario of
	// §4.2) must be detected.
	s.Tx.Payload = []byte("forged")
	if err := s.VerifyProvider(pub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("VerifyProvider(tampered) error = %v, want ErrBadSignature", err)
	}
}

func TestVerifyProviderRejectsReplayUnderOtherIdentity(t *testing.T) {
	pub, priv := testKey(t, 1)
	s := Sign(sampleTx(1), priv)
	s.Tx.Provider = "provider/42" // replay under a different provider
	if err := s.VerifyProvider(pub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("VerifyProvider(replayed) error = %v, want ErrBadSignature", err)
	}
}

func TestSignedTxRoundTrip(t *testing.T) {
	_, priv := testKey(t, 1)
	s := Sign(sampleTx(7), priv)
	got, err := DecodeSignedTxBytes(s.EncodeBytes())
	if err != nil {
		t.Fatalf("DecodeSignedTxBytes() error = %v", err)
	}
	if got.Tx.Provider != s.Tx.Provider || got.Tx.Seq != s.Tx.Seq ||
		got.Tx.Timestamp != s.Tx.Timestamp || got.Tx.Kind != s.Tx.Kind ||
		!bytes.Equal(got.Tx.Payload, s.Tx.Payload) || !bytes.Equal(got.Sig, s.Sig) {
		t.Fatal("round trip mismatch")
	}
	if got.ID() != s.ID() {
		t.Fatal("round trip changed the ID")
	}
}

func TestDecodeSignedTxRejectsBadTag(t *testing.T) {
	e := codec.NewEncoder(0)
	e.PutString("wrong/tag")
	_, err := DecodeSignedTxBytes(e.Bytes())
	if !errors.Is(err, ErrDecode) {
		t.Fatalf("error = %v, want ErrDecode", err)
	}
}

func TestDecodeSignedTxRejectsTrailing(t *testing.T) {
	_, priv := testKey(t, 1)
	s := Sign(sampleTx(1), priv)
	b := append(s.EncodeBytes(), 0xAA)
	if _, err := DecodeSignedTxBytes(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSignLabelVerifyCollector(t *testing.T) {
	_, providerKey := testKey(t, 1)
	collPub, collKey := testKey(t, 2)
	collID := identity.MakeNodeID(identity.RoleCollector, 0)

	s := Sign(sampleTx(1), providerKey)
	lt, err := SignLabel(s, LabelValid, collID, collKey)
	if err != nil {
		t.Fatalf("SignLabel() error = %v", err)
	}
	if err := lt.VerifyCollector(collPub); err != nil {
		t.Fatalf("VerifyCollector() error = %v", err)
	}
}

func TestSignLabelRejectsBadLabel(t *testing.T) {
	_, providerKey := testKey(t, 1)
	_, collKey := testKey(t, 2)
	s := Sign(sampleTx(1), providerKey)
	if _, err := SignLabel(s, Label(0), "collector/0", collKey); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("SignLabel() error = %v, want ErrBadLabel", err)
	}
}

func TestVerifyCollectorRejectsLabelFlip(t *testing.T) {
	_, providerKey := testKey(t, 1)
	collPub, collKey := testKey(t, 2)
	s := Sign(sampleTx(1), providerKey)
	lt, err := SignLabel(s, LabelValid, "collector/0", collKey)
	if err != nil {
		t.Fatal(err)
	}
	// An equivocating relay flips the label after signing: reject.
	lt.Label = LabelInvalid
	if err := lt.VerifyCollector(collPub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("VerifyCollector(flipped) error = %v, want ErrBadSignature", err)
	}
}

func TestVerifyCollectorRejectsCollectorSwap(t *testing.T) {
	_, providerKey := testKey(t, 1)
	collPub, collKey := testKey(t, 2)
	s := Sign(sampleTx(1), providerKey)
	lt, err := SignLabel(s, LabelValid, "collector/0", collKey)
	if err != nil {
		t.Fatal(err)
	}
	lt.Collector = "collector/9" // claim someone else uploaded it
	if err := lt.VerifyCollector(collPub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("VerifyCollector(swapped) error = %v, want ErrBadSignature", err)
	}
}

func TestLabeledTxRoundTrip(t *testing.T) {
	_, providerKey := testKey(t, 1)
	collPub, collKey := testKey(t, 2)
	s := Sign(sampleTx(3), providerKey)
	lt, err := SignLabel(s, LabelInvalid, "collector/1", collKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLabeledTxBytes(lt.EncodeBytes())
	if err != nil {
		t.Fatalf("DecodeLabeledTxBytes() error = %v", err)
	}
	if got.Label != lt.Label || got.Collector != lt.Collector || got.ID() != lt.ID() {
		t.Fatal("round trip mismatch")
	}
	// The decoded envelope must still verify.
	if err := got.VerifyCollector(collPub); err != nil {
		t.Fatalf("decoded envelope VerifyCollector() error = %v", err)
	}
}

func TestDecodeLabeledTxRejectsBadLabel(t *testing.T) {
	_, providerKey := testKey(t, 1)
	s := Sign(sampleTx(1), providerKey)
	e := codec.NewEncoder(0)
	s.Encode(e)
	e.PutVarint(3) // illegal label
	e.PutString("collector/0")
	e.PutBytes([]byte("sig"))
	if _, err := DecodeLabeledTxBytes(e.Bytes()); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("error = %v, want ErrBadLabel", err)
	}
}

func TestValidatorFunc(t *testing.T) {
	v := ValidatorFunc(func(t Transaction) bool { return t.Seq%2 == 0 })
	if LabelFor(v, sampleTx(2)) != LabelValid {
		t.Fatal("even seq should label +1")
	}
	if LabelFor(v, sampleTx(3)) != LabelInvalid {
		t.Fatal("odd seq should label -1")
	}
}

func TestQuickSignedRoundTrip(t *testing.T) {
	_, priv := testKey(t, 5)
	f := func(seq uint64, ts int64, kind string, payload []byte) bool {
		s := Sign(Transaction{
			Provider:  "provider/0",
			Seq:       seq,
			Timestamp: ts,
			Kind:      kind,
			Payload:   payload,
		}, priv)
		got, err := DecodeSignedTxBytes(s.EncodeBytes())
		return err == nil && got.ID() == s.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTruncatedLabeledTxNeverPanics(t *testing.T) {
	_, providerKey := testKey(t, 1)
	_, collKey := testKey(t, 2)
	s := Sign(sampleTx(1), providerKey)
	lt, err := SignLabel(s, LabelValid, "collector/0", collKey)
	if err != nil {
		t.Fatal(err)
	}
	full := lt.EncodeBytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeLabeledTxBytes(full[:cut]); err == nil {
			t.Fatalf("truncated input of %d bytes decoded", cut)
		}
	}
}

func BenchmarkSignTx(b *testing.B) {
	seed := make([]byte, crypto.SeedSize)
	_, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		b.Fatal(err)
	}
	t := sampleTx(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sign(t, priv)
	}
}

func BenchmarkLabeledTxRoundTrip(b *testing.B) {
	seed := make([]byte, crypto.SeedSize)
	_, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		b.Fatal(err)
	}
	s := Sign(sampleTx(1), priv)
	lt, err := SignLabel(s, LabelValid, "collector/0", priv)
	if err != nil {
		b.Fatal(err)
	}
	enc := lt.EncodeBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLabeledTxBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}
