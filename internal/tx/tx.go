// Package tx defines the protocol's transaction forms and the two
// signed wire envelopes of the paper's §3.1:
//
//   - broadcast_provider carries a Transaction "contain[ing] a
//     transaction payload, the current timestamp, as well as the
//     provider's signature on them, to prevent a collector from
//     fabricating one" — the SignedTx type;
//   - broadcast_collector carries "a transaction payload, a timestamp,
//     a recorded provider's signature, a label (e.g. valid or invalid),
//     and the collector's signature on all of them" — the LabeledTx
//     type.
//
// Transactions are identified by the hash of their canonical encoding.
// Because the provider signs the timestamp along with the payload, a
// malicious collector can neither forge a new transaction nor replay an
// old one under a fresh identity (paper §4.2: "A malicious collector
// cannot simply replicate a transaction as well since the transaction
// is signed together with the timestamp").
package tx

import (
	"errors"
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadSignature reports an envelope whose signature fails.
	ErrBadSignature = errors.New("tx: bad signature")
	// ErrBadLabel reports a label outside {+1, -1}.
	ErrBadLabel = errors.New("tx: invalid label")
	// ErrDecode reports a malformed wire encoding.
	ErrDecode = errors.New("tx: decode failed")
)

// Label is a collector's judgment on a transaction: +1 valid, -1
// invalid (paper §3.1).
type Label int8

// The two legal labels.
const (
	// LabelValid marks a transaction the collector believes valid.
	LabelValid Label = 1
	// LabelInvalid marks a transaction the collector believes invalid.
	LabelInvalid Label = -1
)

// Valid reports whether l is one of the two legal labels.
func (l Label) Valid() bool { return l == LabelValid || l == LabelInvalid }

// String renders the label as the paper writes it.
func (l Label) String() string {
	switch l {
	case LabelValid:
		return "+1"
	case LabelInvalid:
		return "-1"
	default:
		return fmt.Sprintf("label(%d)", int8(l))
	}
}

// Status is the governor's recorded judgment in a block.
type Status int

// Statuses a transaction can carry in the ledger.
const (
	// StatusValid records a transaction validated (or successfully
	// argued) as valid.
	StatusValid Status = iota + 1
	// StatusInvalid records a transaction verified invalid, or an
	// unchecked transaction conservatively marked invalid
	// (Algorithm 2 line 32).
	StatusInvalid
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case StatusValid:
		return "valid"
	case StatusInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Transaction is the provider-authored payload before signing.
type Transaction struct {
	// Provider is the authoring provider's node ID.
	Provider identity.NodeID
	// Seq is the provider-local sequence number; together with the
	// timestamp it makes every transaction unique.
	Seq uint64
	// Timestamp is the provider's clock reading (Unix nanoseconds in
	// the TCP runtime, a logical tick in simulation).
	Timestamp int64
	// Kind names the application payload type, e.g.
	// "carshare/ride-request".
	Kind string
	// Payload is the opaque application data.
	Payload []byte
}

// encode appends the canonical encoding of t (the bytes the provider
// signs) to e.
func (t Transaction) encode(e *codec.Encoder) {
	e.PutString("repchain/tx/v1")
	e.PutString(string(t.Provider))
	e.PutUint64(t.Seq)
	e.PutVarint(t.Timestamp)
	e.PutString(t.Kind)
	e.PutBytes(t.Payload)
}

// EncodeSigning appends the canonical signing encoding of t to e — the
// same bytes SigningBytes returns. Batch verifiers use it to build many
// signing messages in one shared buffer.
func (t Transaction) EncodeSigning(e *codec.Encoder) { t.encode(e) }

// AppendSigningBytes appends the canonical signing bytes of t to dst
// and returns the extended slice, allocating only if dst lacks
// capacity.
func (t Transaction) AppendSigningBytes(dst []byte) []byte {
	e := codec.Wrap(dst)
	t.encode(&e)
	return e.Bytes()
}

// SigningBytes returns the canonical byte string the provider signs.
func (t Transaction) SigningBytes() []byte {
	return t.AppendSigningBytes(make([]byte, 0, 64+len(t.Payload)))
}

// ID returns the transaction identifier: the hash of the canonical
// encoding. Two transactions with equal contents share an ID.
func (t Transaction) ID() crypto.Hash {
	e := codec.GetEncoder(64 + len(t.Payload))
	t.encode(e)
	h := crypto.Sum(e.Bytes())
	e.Release()
	return h
}

func decodeTransaction(d *codec.Decoder) (Transaction, error) {
	var t Transaction
	tag, err := d.String()
	if err != nil {
		return t, err
	}
	if tag != "repchain/tx/v1" {
		return t, fmt.Errorf("transaction tag %q: %w", tag, ErrDecode)
	}
	prov, err := d.String()
	if err != nil {
		return t, err
	}
	t.Provider = identity.NodeID(prov)
	if t.Seq, err = d.Uint64(); err != nil {
		return t, err
	}
	if t.Timestamp, err = d.Varint(); err != nil {
		return t, err
	}
	if t.Kind, err = d.String(); err != nil {
		return t, err
	}
	if t.Payload, err = d.Bytes(); err != nil {
		return t, err
	}
	return t, nil
}

// SignedTx is the broadcast_provider envelope: a transaction plus the
// provider's signature over its canonical encoding.
type SignedTx struct {
	// Tx is the signed transaction.
	Tx Transaction
	// Sig is the provider's Ed25519 signature over Tx.SigningBytes().
	Sig []byte
}

// Sign produces the provider envelope for t.
func Sign(t Transaction, key crypto.PrivateKey) SignedTx {
	return SignedTx{Tx: t, Sig: key.Sign(t.SigningBytes())}
}

// VerifyProvider checks the provider signature against pub. This is
// the provider half of the paper's verify(d, m). It runs through the
// shared verification cache: every governor re-verifies the same inner
// provider signature on every upload, and the first check pays for
// all m.
func (s SignedTx) VerifyProvider(pub crypto.PublicKey) error {
	e := codec.GetEncoder(64 + len(s.Tx.Payload))
	s.Tx.encode(e)
	err := crypto.CachedVerify(pub, e.Bytes(), s.Sig)
	e.Release()
	if err != nil {
		return fmt.Errorf("provider signature on %s: %w", s.Tx.ID().Short(), ErrBadSignature)
	}
	return nil
}

// ID returns the inner transaction's identifier.
func (s SignedTx) ID() crypto.Hash { return s.Tx.ID() }

// Encode appends the wire encoding of s to e.
func (s SignedTx) Encode(e *codec.Encoder) {
	s.Tx.encode(e)
	e.PutBytes(s.Sig)
}

// EncodeBytes returns the standalone wire encoding of s.
func (s SignedTx) EncodeBytes() []byte {
	e := codec.GetEncoder(128 + len(s.Tx.Payload))
	s.Encode(e)
	out := e.AppendTo(nil)
	e.Release()
	return out
}

// DecodeSignedTx reads one SignedTx from d.
func DecodeSignedTx(d *codec.Decoder) (SignedTx, error) {
	t, err := decodeTransaction(d)
	if err != nil {
		return SignedTx{}, fmt.Errorf("signed tx: %w", err)
	}
	sig, err := d.Bytes()
	if err != nil {
		return SignedTx{}, fmt.Errorf("signed tx signature: %w", err)
	}
	return SignedTx{Tx: t, Sig: sig}, nil
}

// DecodeSignedTxBytes decodes a standalone SignedTx encoding,
// requiring full consumption of b.
func DecodeSignedTxBytes(b []byte) (SignedTx, error) {
	d := codec.NewDecoder(b)
	s, err := DecodeSignedTx(d)
	if err != nil {
		return SignedTx{}, err
	}
	if err := d.Expect(); err != nil {
		return SignedTx{}, fmt.Errorf("signed tx: %w", err)
	}
	return s, nil
}

// LabeledTx is the broadcast_collector envelope Tx of Algorithm 1:
// Tx ← (tx, l, sig_ci(tx, l)).
type LabeledTx struct {
	// Signed is the provider envelope being forwarded.
	Signed SignedTx
	// Label is the collector's judgment.
	Label Label
	// Collector identifies the uploading collector.
	Collector identity.NodeID
	// Sig is the collector's signature over (Signed, Label, Collector).
	Sig []byte
}

// EncodeLabelSigning appends the canonical byte string the collector
// signs — the provider envelope, the label, and the collector identity
// — to e. Batch verifiers use it to build many signing messages in one
// shared buffer.
func EncodeLabelSigning(e *codec.Encoder, s SignedTx, l Label, collector identity.NodeID) {
	e.PutString("repchain/labeled/v1")
	s.Encode(e)
	e.PutVarint(int64(l))
	e.PutString(string(collector))
}

// EncodeSigning appends the collector-signed byte string of lt to e.
func (lt LabeledTx) EncodeSigning(e *codec.Encoder) {
	EncodeLabelSigning(e, lt.Signed, lt.Label, lt.Collector)
}

// labelSigningBytes returns the canonical byte string the collector
// signs: the provider envelope, the label, and the collector identity.
func labelSigningBytes(s SignedTx, l Label, collector identity.NodeID) []byte {
	e := codec.Wrap(make([]byte, 0, 160+len(s.Tx.Payload)))
	EncodeLabelSigning(&e, s, l, collector)
	return e.Bytes()
}

// SignLabel produces the collector envelope for s with label l.
func SignLabel(s SignedTx, l Label, collector identity.NodeID, key crypto.PrivateKey) (LabeledTx, error) {
	if !l.Valid() {
		return LabeledTx{}, fmt.Errorf("label %d: %w", l, ErrBadLabel)
	}
	return LabeledTx{
		Signed:    s,
		Label:     l,
		Collector: collector,
		Sig:       key.Sign(labelSigningBytes(s, l, collector)),
	}, nil
}

// VerifyCollector checks the collector signature against pub. This is
// the collector half of the paper's verify(d, m); link membership is
// checked separately against the identity manager.
func (lt LabeledTx) VerifyCollector(pub crypto.PublicKey) error {
	if !lt.Label.Valid() {
		return fmt.Errorf("label %d on %s: %w", lt.Label, lt.ID().Short(), ErrBadLabel)
	}
	e := codec.GetEncoder(160 + len(lt.Signed.Tx.Payload))
	lt.EncodeSigning(e)
	err := crypto.CachedVerify(pub, e.Bytes(), lt.Sig)
	e.Release()
	if err != nil {
		return fmt.Errorf("collector signature on %s: %w", lt.ID().Short(), ErrBadSignature)
	}
	return nil
}

// ID returns the inner transaction's identifier.
func (lt LabeledTx) ID() crypto.Hash { return lt.Signed.ID() }

// Encode appends the wire encoding of lt to e.
func (lt LabeledTx) Encode(e *codec.Encoder) {
	lt.Signed.Encode(e)
	e.PutVarint(int64(lt.Label))
	e.PutString(string(lt.Collector))
	e.PutBytes(lt.Sig)
}

// EncodeBytes returns the standalone wire encoding of lt.
func (lt LabeledTx) EncodeBytes() []byte {
	e := codec.GetEncoder(192 + len(lt.Signed.Tx.Payload))
	lt.Encode(e)
	out := e.AppendTo(nil)
	e.Release()
	return out
}

// DecodeLabeledTx reads one LabeledTx from d.
func DecodeLabeledTx(d *codec.Decoder) (LabeledTx, error) {
	s, err := DecodeSignedTx(d)
	if err != nil {
		return LabeledTx{}, fmt.Errorf("labeled tx: %w", err)
	}
	lv, err := d.Varint()
	if err != nil {
		return LabeledTx{}, fmt.Errorf("labeled tx label: %w", err)
	}
	l := Label(lv)
	if !l.Valid() {
		return LabeledTx{}, fmt.Errorf("labeled tx label %d: %w", lv, ErrBadLabel)
	}
	coll, err := d.String()
	if err != nil {
		return LabeledTx{}, fmt.Errorf("labeled tx collector: %w", err)
	}
	sig, err := d.Bytes()
	if err != nil {
		return LabeledTx{}, fmt.Errorf("labeled tx signature: %w", err)
	}
	return LabeledTx{Signed: s, Label: l, Collector: identity.NodeID(coll), Sig: sig}, nil
}

// DecodeLabeledTxBytes decodes a standalone LabeledTx encoding,
// requiring full consumption of b.
func DecodeLabeledTxBytes(b []byte) (LabeledTx, error) {
	d := codec.NewDecoder(b)
	lt, err := DecodeLabeledTx(d)
	if err != nil {
		return LabeledTx{}, err
	}
	if err := d.Expect(); err != nil {
		return LabeledTx{}, fmt.Errorf("labeled tx: %w", err)
	}
	return lt, nil
}

// Validator is the paper's validate(tx) primitive: the
// application-level rule deciding whether a transaction is valid.
// Collectors call it when labeling; governors call it when screening.
type Validator interface {
	// Validate reports whether t is a valid transaction.
	Validate(t Transaction) bool
}

// ValidatorFunc adapts a function to the Validator interface.
type ValidatorFunc func(Transaction) bool

// Validate implements Validator.
func (f ValidatorFunc) Validate(t Transaction) bool { return f(t) }

var _ Validator = ValidatorFunc(nil)

// LabelFor returns the label an honest collector assigns under v.
func LabelFor(v Validator, t Transaction) Label {
	if v.Validate(t) {
		return LabelValid
	}
	return LabelInvalid
}

// StatusFor converts a validity bool into a Status.
func StatusFor(valid bool) Status {
	if valid {
		return StatusValid
	}
	return StatusInvalid
}

// Opposite returns the flipped label, used by misreporting adversary
// models.
func (l Label) Opposite() Label {
	if l == LabelValid {
		return LabelInvalid
	}
	return LabelValid
}

// Matches reports whether the label agrees with a status: +1 with
// valid, -1 with invalid.
func (l Label) Matches(s Status) bool {
	return (l == LabelValid) == (s == StatusValid)
}
