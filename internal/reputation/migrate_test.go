package reputation

import (
	"errors"
	"math/rand"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/tx"
)

// trainTable runs a deterministic mix of Algorithm 3 updates so the
// table's weights and scores leave their initial values.
func trainTable(t *testing.T, tbl *Table, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 40; round++ {
		for k := 0; k < tbl.Providers(); k++ {
			linked := tbl.topo.CollectorsOf(k)
			reports := make([]Report, 0, len(linked))
			for _, c := range linked {
				label := tx.LabelValid
				if rng.Intn(3) == 0 {
					label = tx.LabelInvalid
				}
				reports = append(reports, Report{Collector: c, Label: label})
			}
			status := tx.StatusValid
			if rng.Intn(4) == 0 {
				status = tx.StatusInvalid
			}
			switch rng.Intn(3) {
			case 0:
				if err := tbl.RecordChecked(k, reports, status); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := tbl.RecordRevealed(k, reports, status); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := tbl.RecordForgery(reports[0].Collector); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestMigrateIntoCarriesFullColumns(t *testing.T) {
	// Source committee: 2 providers × 4 collectors, degree 2 (s=1).
	srcTopo, err := identity.NewRegularTopology(identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewTable(srcTopo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	trainTable(t, src, 7)

	// Destination committee: 3 providers × 6 collectors; source
	// provider 1 (collectors 2, 3) becomes destination provider 2
	// (collectors 4, 5).
	dstTopo, err := identity.NewRegularTopology(identity.TopologySpec{Providers: 3, Collectors: 6, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewTable(dstTopo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	providerMap := map[int]int{1: 2}
	collectorMap := map[int]int{2: 4, 3: 5}
	if err := MigrateInto(dst, src, providerMap, collectorMap); err != nil {
		t.Fatal(err)
	}

	srcIn, _ := src.Instance(1)
	dstIn, _ := dst.Instance(2)
	for pos := 0; pos < srcIn.Experts(); pos++ {
		if srcIn.Weight(pos) != dstIn.Weight(pos) {
			t.Fatalf("weight[%d]: src %v, dst %v", pos, srcIn.Weight(pos), dstIn.Weight(pos))
		}
		if srcIn.ExpertLoss(pos) != dstIn.ExpertLoss(pos) {
			t.Fatalf("loss[%d]: src %v, dst %v", pos, srcIn.ExpertLoss(pos), dstIn.ExpertLoss(pos))
		}
	}
	if srcIn.GovernorLoss() != dstIn.GovernorLoss() {
		t.Fatalf("governor loss: src %v, dst %v", srcIn.GovernorLoss(), dstIn.GovernorLoss())
	}
	if srcIn.Rounds() != dstIn.Rounds() {
		t.Fatalf("rounds: src %d, dst %d", srcIn.Rounds(), dstIn.Rounds())
	}
	for c, dc := range collectorMap {
		if src.Misreport(c) != dst.Misreport(dc) {
			t.Fatalf("misreport %d→%d: src %v, dst %v", c, dc, src.Misreport(c), dst.Misreport(dc))
		}
		if src.Forge(c) != dst.Forge(dc) {
			t.Fatalf("forge %d→%d: src %v, dst %v", c, dc, src.Forge(c), dst.Forge(dc))
		}
	}

	// The screening draw over the migrated provider must be bitwise
	// identical: same weights, same RNG stream, same decision.
	reports := []Report{
		{Collector: 2, Label: tx.LabelInvalid},
		{Collector: 3, Label: tx.LabelValid},
	}
	mapped := []Report{
		{Collector: 4, Label: tx.LabelInvalid},
		{Collector: 5, Label: tx.LabelValid},
	}
	for trial := int64(0); trial < 20; trial++ {
		srcDec, err := src.Screen(rand.New(rand.NewSource(trial)), 1, reports)
		if err != nil {
			t.Fatal(err)
		}
		dstDec, err := dst.Screen(rand.New(rand.NewSource(trial)), 2, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if srcDec.Prob != dstDec.Prob || srcDec.Check != dstDec.Check || srcDec.Label != dstDec.Label {
			t.Fatalf("trial %d: src decision %+v, dst decision %+v", trial, srcDec, dstDec)
		}
	}

	// Untouched destination providers keep their fresh-table weights.
	freshIn, _ := dst.Instance(0)
	for pos := 0; pos < freshIn.Experts(); pos++ {
		if freshIn.Weight(pos) != 1 {
			t.Fatalf("unmapped provider 0 weight[%d] = %v, want 1", pos, freshIn.Weight(pos))
		}
	}
}

func TestMigrateIntoRejectsBadMappings(t *testing.T) {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(params Params) *Table {
		tbl, err := NewTable(topo, params)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	src := mk(DefaultParams())

	t.Run("param mismatch", func(t *testing.T) {
		p := DefaultParams()
		p.Beta = 0.8
		dst := mk(p)
		if err := MigrateInto(dst, src, nil, nil); !errors.Is(err, ErrBadParams) {
			t.Fatalf("err = %v, want ErrBadParams", err)
		}
	})
	t.Run("unmapped linked collector", func(t *testing.T) {
		dst := mk(DefaultParams())
		err := MigrateInto(dst, src, map[int]int{0: 0}, map[int]int{0: 0})
		if !errors.Is(err, ErrNotLinked) {
			t.Fatalf("err = %v, want ErrNotLinked", err)
		}
	})
	t.Run("unknown provider", func(t *testing.T) {
		dst := mk(DefaultParams())
		err := MigrateInto(dst, src, map[int]int{9: 0}, nil)
		if !errors.Is(err, ErrUnknownProvider) {
			t.Fatalf("err = %v, want ErrUnknownProvider", err)
		}
	})
	t.Run("unknown collector", func(t *testing.T) {
		dst := mk(DefaultParams())
		err := MigrateInto(dst, src, nil, map[int]int{0: 99})
		if !errors.Is(err, ErrUnknownCollector) {
			t.Fatalf("err = %v, want ErrUnknownCollector", err)
		}
	})
}
