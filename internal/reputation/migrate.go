package reputation

import (
	"fmt"
	"sort"
)

// MigrateInto moves reputation state between committee topologies: for
// every relocated provider it carries the full per-provider RWM column
// (weights, per-expert losses, governor loss, round count) from src
// into dst, and for every relocated collector it carries the additive
// misreport/forge scores. This is the "portable reputation" primitive:
// when a provider is re-homed onto another committee together with its
// linked collectors, the destination governor resumes screening with
// exactly the weights the source governors had learned, rather than
// re-trusting every collector equally.
//
// providerMap maps src provider indices to dst provider indices;
// collectorMap maps src collector indices to dst collector indices.
// Only mapped members are touched — dst state for unmapped members is
// left as constructed. Every collector linked to a mapped provider in
// src must itself be mapped, and its image must be linked to the
// provider's image in dst with the same degree, so the whole column
// transfers; partial columns are rejected because a half-moved weight
// vector has no well-defined screening distribution.
//
// Both tables must share parameters: the weights are only comparable
// under the same β decay and the additive scores only price revenue
// identically under the same µ/ν.
func MigrateInto(dst, src *Table, providerMap, collectorMap map[int]int) error {
	if dst.params != src.params {
		return fmt.Errorf("dst params %+v, src params %+v: %w", dst.params, src.params, ErrBadParams)
	}
	for _, srcK := range sortedIntKeys(providerMap) {
		dstK := providerMap[srcK]
		srcIn, err := src.Instance(srcK)
		if err != nil {
			return fmt.Errorf("migrate src provider %d: %w", srcK, err)
		}
		dstIn, err := dst.Instance(dstK)
		if err != nil {
			return fmt.Errorf("migrate dst provider %d: %w", dstK, err)
		}
		if srcIn.Experts() != dstIn.Experts() {
			return fmt.Errorf("provider %d→%d: %d experts into %d: %w",
				srcK, dstK, srcIn.Experts(), dstIn.Experts(), ErrBadParams)
		}
		n := srcIn.Experts()
		weights := make([]float64, n)
		losses := make([]float64, n)
		filled := make([]bool, n)
		for pos, c := range src.topo.CollectorsOf(srcK) {
			dc, ok := collectorMap[c]
			if !ok {
				return fmt.Errorf("provider %d→%d: linked collector %d unmapped: %w",
					srcK, dstK, c, ErrNotLinked)
			}
			dpos, err := dst.expertPos(dstK, dc)
			if err != nil {
				return fmt.Errorf("provider %d→%d: collector %d→%d: %w", srcK, dstK, c, dc, err)
			}
			if filled[dpos] {
				return fmt.Errorf("provider %d→%d: collector slot %d filled twice: %w",
					srcK, dstK, dpos, ErrBadParams)
			}
			filled[dpos] = true
			weights[dpos] = srcIn.Weight(pos)
			losses[dpos] = srcIn.ExpertLoss(pos)
		}
		for dpos, ok := range filled {
			if !ok {
				return fmt.Errorf("provider %d→%d: dst collector slot %d unfilled: %w",
					srcK, dstK, dpos, ErrBadParams)
			}
		}
		if err := dstIn.Restore(weights, losses, srcIn.GovernorLoss(), srcIn.Rounds()); err != nil {
			return fmt.Errorf("provider %d→%d restore: %w", srcK, dstK, err)
		}
	}
	for _, c := range sortedIntKeys(collectorMap) {
		dc := collectorMap[c]
		if c < 0 || c >= len(src.misreport) {
			return fmt.Errorf("migrate src collector %d: %w", c, ErrUnknownCollector)
		}
		if dc < 0 || dc >= len(dst.misreport) {
			return fmt.Errorf("migrate dst collector %d: %w", dc, ErrUnknownCollector)
		}
		dst.misreport[dc] = src.misreport[c]
		dst.forge[dc] = src.forge[c]
	}
	return nil
}

// sortedIntKeys returns the map's keys in ascending order so migration
// applies in a deterministic sequence regardless of map layout.
func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //repchain:ordered-irrelevant keys are sorted before use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
