package reputation

import (
	"errors"
	"math"
	"testing"

	"repchain/internal/tx"
)

// TestRecordSilenceDecaysAbsentOnly pins the silence rule: on a
// checked transaction, a linked collector that uploaded nothing loses
// a factor β of its weight for that provider, reporters keep theirs,
// and — unlike a case-3 reveal — no loss is accrued and no RWM round
// is counted.
func TestRecordSilenceDecaysAbsentOnly(t *testing.T) {
	params := DefaultParams()
	tab := fullTable(t, 4, params)
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 2, Label: tx.LabelInvalid},
	}
	if err := tab.RecordSilence(0, reports); err != nil {
		t.Fatalf("RecordSilence() error = %v", err)
	}
	for c := 0; c < 4; c++ {
		w, err := tab.Weight(0, c)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0
		if c == 1 || c == 3 {
			want = params.Beta
		}
		if math.Abs(w-want) > 1e-12 {
			t.Fatalf("collector %d weight = %v, want %v", c, w, want)
		}
		if tab.Misreport(c) != 0 || tab.Forge(c) != 0 {
			t.Fatalf("collector %d scores moved on silence", c)
		}
	}
	loss, err := tab.GovernorLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Fatalf("GovernorLoss = %v, want 0: silence must not accrue loss", loss)
	}
	in, err := tab.Instance(0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rounds() != 0 {
		t.Fatalf("Rounds = %d, want 0: silence is not a reveal", in.Rounds())
	}
}

func TestRecordSilenceRepeatedCompounds(t *testing.T) {
	params := DefaultParams()
	tab := fullTable(t, 3, params)
	reports := []Report{{Collector: 0, Label: tx.LabelValid}}
	for i := 0; i < 3; i++ {
		if err := tab.RecordSilence(0, reports); err != nil {
			t.Fatal(err)
		}
	}
	w, err := tab.Weight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(params.Beta, 3); math.Abs(w-want) > 1e-12 {
		t.Fatalf("weight after 3 silences = %v, want β³ = %v", w, want)
	}
}

func TestRecordSilenceValidatesReports(t *testing.T) {
	tab := fullTable(t, 3, DefaultParams())
	if err := tab.RecordSilence(0, nil); !errors.Is(err, ErrNoReports) {
		t.Fatalf("empty reports error = %v, want ErrNoReports", err)
	}
	if err := tab.RecordSilence(9, []Report{{Collector: 0, Label: tx.LabelValid}}); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("bad provider error = %v, want ErrUnknownProvider", err)
	}
}

// TestSilenceMatchesRevealAbsentDecay checks the symmetry claim: the
// per-transaction weight cost of silence equals the absent-collector
// decay of a case-3 reveal.
func TestSilenceMatchesRevealAbsentDecay(t *testing.T) {
	params := DefaultParams()
	silent := fullTable(t, 3, params)
	revealed := fullTable(t, 3, params)
	reports := []Report{{Collector: 0, Label: tx.LabelValid}}
	if err := silent.RecordSilence(0, reports); err != nil {
		t.Fatal(err)
	}
	if _, err := revealed.RecordRevealed(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{1, 2} {
		ws, err := silent.Weight(0, c)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := revealed.Weight(0, c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ws-wr) > 1e-12 {
			t.Fatalf("collector %d: silence decay %v != reveal absent decay %v", c, ws, wr)
		}
	}
}
