package reputation_test

import (
	"fmt"
	"math/rand"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// Example walks one governor through the paper's mechanism by hand:
// screen a transaction, verify it, update reputations, and read the
// revenue split.
func Example() {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: 3, Degree: 3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	table, err := reputation.NewTable(topo, reputation.DefaultParams())
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// Three collectors report a transaction from provider 0; collector
	// 2 lies.
	reports := []reputation.Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelValid},
		{Collector: 2, Label: tx.LabelInvalid},
	}
	rng := rand.New(rand.NewSource(1))
	decision, err := table.Screen(rng, 0, reports)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("check:", decision.Check)

	// The governor verified it valid: case-2 update (+1 right, -1
	// wrong).
	if err := table.RecordChecked(0, reports, tx.StatusValid); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("liar misreport score:", table.Misreport(2))

	// Later, an unchecked transaction's truth is revealed: case-3
	// multiplicative update.
	if _, err := table.RecordRevealed(0, reports, tx.StatusValid); err != nil {
		fmt.Println("error:", err)
		return
	}
	w, err := table.Weight(0, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("liar weight: %.3f\n", w)

	shares, err := table.RevenueShares()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("liar revenue share: %.3f\n", shares[2])
	// Output:
	// check: true
	// liar misreport score: -1
	// liar weight: 0.855
	// liar revenue share: 0.261
}
