package reputation

import (
	"fmt"

	"repchain/internal/codec"
)

// Snapshot and Restore serialize a governor's full reputation state so
// a restarted governor resumes with its learned weights instead of
// re-trusting every collector equally. The encoding is deterministic
// (package codec) and versioned.

const snapshotTag = "repchain/reptable/v1"

// Snapshot returns the deterministic binary encoding of the table's
// mutable state: every per-provider weight vector with its loss
// accounting, and the misreport/forge scores.
func (t *Table) Snapshot() []byte {
	e := codec.NewEncoder(1024)
	e.PutString(snapshotTag)
	e.PutFloat64(t.params.Beta)
	e.PutFloat64(t.params.F)
	e.PutFloat64(t.params.Mu)
	e.PutFloat64(t.params.Nu)
	e.PutInt(len(t.perProvider))
	for k, in := range t.perProvider {
		e.PutInt(in.Experts())
		for pos := 0; pos < in.Experts(); pos++ {
			e.PutFloat64(in.Weight(pos))
			e.PutFloat64(in.ExpertLoss(pos))
		}
		e.PutFloat64(in.GovernorLoss())
		e.PutInt(in.Rounds())
		_ = k
	}
	e.PutInt(len(t.misreport))
	for c := range t.misreport {
		e.PutFloat64(t.misreport[c])
		e.PutFloat64(t.forge[c])
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// RestoreSnapshot loads a Snapshot into a freshly built table. The
// table's topology and parameters must match the snapshot's origin;
// mismatches are rejected.
func (t *Table) RestoreSnapshot(b []byte) error {
	d := codec.NewDecoder(b)
	tag, err := d.String()
	if err != nil || tag != snapshotTag {
		return fmt.Errorf("snapshot tag %q: %w", tag, ErrBadParams)
	}
	for _, want := range []float64{t.params.Beta, t.params.F, t.params.Mu, t.params.Nu} {
		got, err := d.Float64()
		if err != nil {
			return fmt.Errorf("snapshot params: %w", err)
		}
		if got != want {
			return fmt.Errorf("snapshot parameter %v, table has %v: %w", got, want, ErrBadParams)
		}
	}
	np, err := d.Int()
	if err != nil {
		return fmt.Errorf("snapshot provider count: %w", err)
	}
	if np != len(t.perProvider) {
		return fmt.Errorf("snapshot has %d providers, table has %d: %w", np, len(t.perProvider), ErrBadParams)
	}
	for k := 0; k < np; k++ {
		ne, err := d.Int()
		if err != nil {
			return fmt.Errorf("snapshot provider %d expert count: %w", k, err)
		}
		in := t.perProvider[k]
		if ne != in.Experts() {
			return fmt.Errorf("snapshot provider %d has %d experts, table has %d: %w",
				k, ne, in.Experts(), ErrBadParams)
		}
		weights := make([]float64, ne)
		losses := make([]float64, ne)
		for pos := 0; pos < ne; pos++ {
			if weights[pos], err = d.Float64(); err != nil {
				return fmt.Errorf("snapshot weight: %w", err)
			}
			if losses[pos], err = d.Float64(); err != nil {
				return fmt.Errorf("snapshot expert loss: %w", err)
			}
		}
		govLoss, err := d.Float64()
		if err != nil {
			return fmt.Errorf("snapshot governor loss: %w", err)
		}
		rounds, err := d.Int()
		if err != nil {
			return fmt.Errorf("snapshot rounds: %w", err)
		}
		if err := in.Restore(weights, losses, govLoss, rounds); err != nil {
			return fmt.Errorf("snapshot provider %d: %w", k, err)
		}
	}
	nc, err := d.Int()
	if err != nil {
		return fmt.Errorf("snapshot collector count: %w", err)
	}
	if nc != len(t.misreport) {
		return fmt.Errorf("snapshot has %d collectors, table has %d: %w", nc, len(t.misreport), ErrBadParams)
	}
	for c := 0; c < nc; c++ {
		if t.misreport[c], err = d.Float64(); err != nil {
			return fmt.Errorf("snapshot misreport: %w", err)
		}
		if t.forge[c], err = d.Float64(); err != nil {
			return fmt.Errorf("snapshot forge: %w", err)
		}
	}
	if err := d.Expect(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}
