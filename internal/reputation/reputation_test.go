package reputation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repchain/internal/identity"
	"repchain/internal/rwm"
	"repchain/internal/tx"
)

// newTestTable builds a table over the smallest interesting topology:
// 4 providers, 4 collectors, each provider linked with 2 collectors.
func newTestTable(t *testing.T, params Params) *Table {
	t.Helper()
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 4, Collectors: 4, Degree: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(topo, params)
	if err != nil {
		t.Fatalf("NewTable() error = %v", err)
	}
	return tab
}

// fullTable builds a single-provider table with r collectors, the
// Theorem 1 setting.
func fullTable(t *testing.T, r int, params Params) *Table {
	t.Helper()
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: r, Degree: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(topo, params)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"defaults", DefaultParams(), false},
		{"beta zero", Params{Beta: 0, F: 0.5, Mu: 1.1, Nu: 2}, true},
		{"beta one", Params{Beta: 1, F: 0.5, Mu: 1.1, Nu: 2}, true},
		{"f zero", Params{Beta: 0.9, F: 0, Mu: 1.1, Nu: 2}, true},
		{"f one", Params{Beta: 0.9, F: 1, Mu: 1.1, Nu: 2}, true},
		{"mu one", Params{Beta: 0.9, F: 0.5, Mu: 1, Nu: 2}, true},
		{"nu below one", Params{Beta: 0.9, F: 0.5, Mu: 1.1, Nu: 0.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParams) {
				t.Fatalf("Validate() error = %v, want ErrBadParams", err)
			}
		})
	}
}

func TestNewTableInitialState(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	if tab.Providers() != 4 || tab.Collectors() != 4 {
		t.Fatal("table dimensions wrong")
	}
	// All per-provider weights start at 1, scores at 0.
	for k := 0; k < 4; k++ {
		for _, c := range []int{0, 1, 2, 3} {
			w, err := tab.Weight(k, c)
			if errors.Is(err, ErrNotLinked) {
				continue
			}
			if err != nil {
				t.Fatalf("Weight(%d,%d) error = %v", k, c, err)
			}
			if w != 1 {
				t.Fatalf("Weight(%d,%d) = %v, want 1", k, c, w)
			}
		}
	}
	for c := 0; c < 4; c++ {
		if tab.Misreport(c) != 0 || tab.Forge(c) != 0 {
			t.Fatal("scores should start at zero")
		}
	}
}

func TestWeightErrors(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	if _, err := tab.Weight(99, 0); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("error = %v, want ErrUnknownProvider", err)
	}
	if _, err := tab.Weight(0, 99); !errors.Is(err, ErrUnknownCollector) {
		t.Fatalf("error = %v, want ErrUnknownCollector", err)
	}
}

func TestVectorLayout(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	// Collector 0 oversees s = 2 providers; the vector is
	// (w_1, w_2, misreport, forge) of length s+2 = 4.
	vec, err := tab.Vector(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 {
		t.Fatalf("Vector length = %d, want 4 (s+2)", len(vec))
	}
	if vec[0] != 1 || vec[1] != 1 || vec[2] != 0 || vec[3] != 0 {
		t.Fatalf("initial vector = %v", vec)
	}
	if _, err := tab.Vector(-1); !errors.Is(err, ErrUnknownCollector) {
		t.Fatalf("Vector(-1) error = %v", err)
	}
}

func TestScreenDrawsAReporter(t *testing.T) {
	tab := fullTable(t, 4, DefaultParams())
	rng := rand.New(rand.NewSource(1))
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 2, Label: tx.LabelInvalid},
	}
	for i := 0; i < 200; i++ {
		d, err := tab.Screen(rng, 0, reports)
		if err != nil {
			t.Fatalf("Screen() error = %v", err)
		}
		if d.Collector != 0 && d.Collector != 2 {
			t.Fatalf("Screen() drew non-reporter %d", d.Collector)
		}
		if d.Collector == 0 && d.Label != tx.LabelValid {
			t.Fatal("drawn label does not match reporter")
		}
		if d.Prob <= 0 || d.Prob > 1 {
			t.Fatalf("Prob = %v out of range", d.Prob)
		}
		// Algorithm 2: a +1 draw is always checked.
		if d.Label == tx.LabelValid && !d.Check {
			t.Fatal("+1 draw must always be checked")
		}
	}
}

func TestScreenUncheckedRate(t *testing.T) {
	// With every reporter labeling -1 and uniform weights, the
	// unchecked probability is f·Pr = f/r per the coin in Algorithm 2
	// — aggregate unchecked fraction is f·Σp² = f/r for uniform
	// weights. Verify the empirical rate.
	const r = 4
	params := DefaultParams()
	params.F = 0.8
	tab := fullTable(t, r, params)
	rng := rand.New(rand.NewSource(2))
	reports := make([]Report, r)
	for i := range reports {
		reports[i] = Report{Collector: i, Label: tx.LabelInvalid}
	}
	const trials = 40000
	unchecked := 0
	for i := 0; i < trials; i++ {
		d, err := tab.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Check {
			unchecked++
		}
	}
	want := params.F / r // 0.2
	got := float64(unchecked) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("unchecked fraction = %.4f, want ≈ %.4f", got, want)
	}
}

func TestScreenErrors(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	rng := rand.New(rand.NewSource(1))
	if _, err := tab.Screen(rng, 0, nil); !errors.Is(err, ErrNoReports) {
		t.Fatalf("empty reports error = %v, want ErrNoReports", err)
	}
	if _, err := tab.Screen(rng, 99, []Report{{Collector: 0, Label: tx.LabelValid}}); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("bad provider error = %v, want ErrUnknownProvider", err)
	}
	if _, err := tab.Screen(rng, 0, []Report{{Collector: 0, Label: tx.Label(0)}}); !errors.Is(err, tx.ErrBadLabel) {
		t.Fatalf("bad label error = %v, want ErrBadLabel", err)
	}
	dup := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 0, Label: tx.LabelInvalid},
	}
	if _, err := tab.Screen(rng, 0, dup); err == nil {
		t.Fatal("duplicate reports accepted")
	}
	// A collector not linked to the provider must be rejected — the
	// topology check the paper's verify() performs.
	topoTab := newTestTable(t, DefaultParams())
	unlinked := -1
	for c := 0; c < 4; c++ {
		if _, err := topoTab.Weight(0, c); errors.Is(err, ErrNotLinked) {
			unlinked = c
			break
		}
	}
	if unlinked >= 0 {
		if _, err := topoTab.Screen(rng, 0, []Report{{Collector: unlinked, Label: tx.LabelValid}}); !errors.Is(err, ErrNotLinked) {
			t.Fatalf("unlinked reporter error = %v, want ErrNotLinked", err)
		}
	}
}

func TestCheckProbabilityFormula(t *testing.T) {
	const r = 4
	params := DefaultParams()
	params.F = 0.6
	tab := fullTable(t, r, params)
	// Uniform weights, 2 of 4 label -1:
	// P = 1 − f·(2·(1/4)²)·... wait: Σ_{-1} w²/W² with W = 4, w = 1
	// each → 1 − 0.6·2/16 = 1 − 0.075 = 0.925.
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelValid},
		{Collector: 2, Label: tx.LabelInvalid},
		{Collector: 3, Label: tx.LabelInvalid},
	}
	p, err := tab.CheckProbability(0, reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.925) > 1e-12 {
		t.Fatalf("CheckProbability = %v, want 0.925", p)
	}
	// Lemma 2: always ≥ 1 − f.
	if p < 1-params.F {
		t.Fatal("CheckProbability below Lemma 2 floor")
	}
}

func TestCheckProbabilityMatchesEmpirical(t *testing.T) {
	const r = 4
	params := DefaultParams()
	params.F = 0.9
	tab := fullTable(t, r, params)
	reports := []Report{
		{Collector: 0, Label: tx.LabelInvalid},
		{Collector: 1, Label: tx.LabelInvalid},
		{Collector: 2, Label: tx.LabelValid},
	}
	want, err := tab.CheckProbability(0, reports)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 60000
	checked := 0
	for i := 0; i < trials; i++ {
		d, err := tab.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if d.Check {
			checked++
		}
	}
	got := float64(checked) / trials
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical check rate %.4f, formula %.4f", got, want)
	}
}

func TestRecordForgery(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	if err := tab.RecordForgery(1); err != nil {
		t.Fatal(err)
	}
	if err := tab.RecordForgery(1); err != nil {
		t.Fatal(err)
	}
	if tab.Forge(1) != -2 {
		t.Fatalf("Forge(1) = %v, want -2", tab.Forge(1))
	}
	if tab.Forge(0) != 0 {
		t.Fatal("forgery leaked to another collector")
	}
	if err := tab.RecordForgery(99); !errors.Is(err, ErrUnknownCollector) {
		t.Fatalf("error = %v, want ErrUnknownCollector", err)
	}
}

func TestRecordChecked(t *testing.T) {
	tab := fullTable(t, 3, DefaultParams())
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
		{Collector: 2, Label: tx.LabelValid},
	}
	if err := tab.RecordChecked(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	if tab.Misreport(0) != 1 || tab.Misreport(2) != 1 {
		t.Fatal("correct labelers should gain +1")
	}
	if tab.Misreport(1) != -1 {
		t.Fatal("wrong labeler should lose 1")
	}
	// Checked transactions must not touch the per-provider weights.
	for c := 0; c < 3; c++ {
		w, err := tab.Weight(0, c)
		if err != nil {
			t.Fatal(err)
		}
		if w != 1 {
			t.Fatalf("Weight(0,%d) = %v after RecordChecked, want 1", c, w)
		}
	}
}

func TestRecordRevealed(t *testing.T) {
	params := DefaultParams()
	tab := fullTable(t, 3, params)
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
		// collector 2 discarded the transaction
	}
	res, err := tab.RecordRevealed(0, reports, tx.StatusValid)
	if err != nil {
		t.Fatal(err)
	}
	// W_right = 1 (collector 0), W_wrong = 1 (collector 1) → L = 1.
	if math.Abs(res.Loss-1) > 1e-12 {
		t.Fatalf("Loss = %v, want 1", res.Loss)
	}
	wantGamma := rwm.Gamma(params.Beta, 1)
	if math.Abs(res.Gamma-wantGamma) > 1e-12 {
		t.Fatalf("Gamma = %v, want %v", res.Gamma, wantGamma)
	}
	w0, _ := tab.Weight(0, 0)
	w1, _ := tab.Weight(0, 1)
	w2, _ := tab.Weight(0, 2)
	if w0 != 1 {
		t.Fatalf("right collector weight = %v, want 1", w0)
	}
	if math.Abs(w1-wantGamma) > 1e-12 {
		t.Fatalf("wrong collector weight = %v, want γ", w1)
	}
	if math.Abs(w2-params.Beta) > 1e-12 {
		t.Fatalf("absent collector weight = %v, want β", w2)
	}
}

func TestRecordRevealedInvalidStatus(t *testing.T) {
	// Symmetric case: the transaction proves invalid, so -1 labelers
	// are right.
	params := DefaultParams()
	tab := fullTable(t, 2, params)
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
	}
	if _, err := tab.RecordRevealed(0, reports, tx.StatusInvalid); err != nil {
		t.Fatal(err)
	}
	w0, _ := tab.Weight(0, 0)
	w1, _ := tab.Weight(0, 1)
	if w1 != 1 {
		t.Fatalf("correct -1 labeler weight = %v, want 1", w1)
	}
	if w0 >= 1 {
		t.Fatalf("wrong +1 labeler weight = %v, want < 1", w0)
	}
}

func TestRevenueMonotoneInBehaviour(t *testing.T) {
	params := DefaultParams()
	tab := fullTable(t, 3, params)
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
		{Collector: 2, Label: tx.LabelValid},
	}
	// One reveal where collector 1 was wrong; one checked tx where it
	// misreported; one forgery by collector 1.
	if _, err := tab.RecordRevealed(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	if err := tab.RecordChecked(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	if err := tab.RecordForgery(1); err != nil {
		t.Fatal(err)
	}
	good, err := tab.Revenue(0)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := tab.Revenue(1)
	if err != nil {
		t.Fatal(err)
	}
	if bad >= good {
		t.Fatalf("misbehaving collector revenue %v ≥ honest revenue %v", bad, good)
	}
	if _, err := tab.Revenue(99); !errors.Is(err, ErrUnknownCollector) {
		t.Fatalf("Revenue(99) error = %v", err)
	}
}

func TestRevenueSharesSumToOne(t *testing.T) {
	tab := newTestTable(t, DefaultParams())
	shares, err := tab.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestGovernorLossAndRegretAccessors(t *testing.T) {
	tab := fullTable(t, 2, DefaultParams())
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
	}
	if _, err := tab.RecordRevealed(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	loss, err := tab.GovernorLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatal("loss should be positive after a wrong reporter")
	}
	regret, err := tab.Regret(0)
	if err != nil {
		t.Fatal(err)
	}
	if regret != loss {
		t.Fatal("with a perfect best expert, regret should equal loss")
	}
	if _, err := tab.GovernorLoss(9); !errors.Is(err, ErrUnknownProvider) {
		t.Fatal("bad provider accepted")
	}
}

// TestScreeningConvergesToHonest is the mechanism's core behavioural
// property: after enough reveals, the honest collector dominates the
// draw distribution.
func TestScreeningConvergesToHonest(t *testing.T) {
	const r = 4
	params := DefaultParams()
	tab := fullTable(t, r, params)
	rng := rand.New(rand.NewSource(11))

	// 200 revealed transactions; collector 0 always right, the rest
	// always wrong.
	reports := make([]Report, r)
	for i := 0; i < 200; i++ {
		for c := 0; c < r; c++ {
			label := tx.LabelInvalid // wrong: the txs are valid
			if c == 0 {
				label = tx.LabelValid
			}
			reports[c] = Report{Collector: c, Label: label}
		}
		if _, err := tab.RecordRevealed(0, reports, tx.StatusValid); err != nil {
			t.Fatal(err)
		}
	}
	// Now the draw should pick collector 0 almost always.
	picks := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		d, err := tab.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if d.Collector == 0 {
			picks++
		}
	}
	if frac := float64(picks) / trials; frac < 0.99 {
		t.Fatalf("honest collector drawn %.3f of the time, want > 0.99", frac)
	}
}

// TestQuickRevealKeepsWeightsSane: any report/status stream keeps
// weights positive, finite, and bounded by 1.
func TestQuickRevealKeepsWeightsSane(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		topo, err := identity.NewRegularTopology(identity.TopologySpec{
			Providers: 2, Collectors: 4, Degree: 4,
		})
		if err != nil {
			return false
		}
		tab, err := NewTable(topo, DefaultParams())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(rounds); i++ {
			k := rng.Intn(2)
			var reports []Report
			for c := 0; c < 4; c++ {
				if rng.Float64() < 0.3 {
					continue // discarded
				}
				label := tx.LabelValid
				if rng.Float64() < 0.5 {
					label = tx.LabelInvalid
				}
				reports = append(reports, Report{Collector: c, Label: label})
			}
			if len(reports) == 0 {
				continue
			}
			status := tx.StatusValid
			if rng.Float64() < 0.5 {
				status = tx.StatusInvalid
			}
			if _, err := tab.RecordRevealed(k, reports, status); err != nil {
				return false
			}
			for c := 0; c < 4; c++ {
				w, err := tab.Weight(k, c)
				if err != nil {
					return false
				}
				if w <= 0 || w > 1 || math.IsNaN(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScreen(b *testing.B) {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: 8, Degree: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := NewTable(topo, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	reports := make([]Report, 8)
	for i := range reports {
		label := tx.LabelValid
		if i%3 == 0 {
			label = tx.LabelInvalid
		}
		reports[i] = Report{Collector: i, Label: label}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Screen(rng, 0, reports); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordRevealed(b *testing.B) {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: 8, Degree: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := NewTable(topo, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	reports := make([]Report, 8)
	for i := range reports {
		label := tx.LabelValid
		if i%2 == 0 {
			label = tx.LabelInvalid
		}
		reports[i] = Report{Collector: i, Label: label}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.RecordRevealed(0, reports, tx.StatusValid); err != nil {
			b.Fatal(err)
		}
	}
}
