// Package reputation implements the paper's provable reputation
// mechanism — its primary contribution.
//
// Each governor g_j maintains, for every collector c_i, the
// (s+2)-length vector of §3.4:
//
//	r⃗_{j,i} = (w_{j,i,k_1}, …, w_{j,i,k_s}, w_misreport, w_forge)
//
// The first s entries — one per provider the collector oversees — are
// multiplicative weights driving the screening draw (a Randomized
// Weighted Majority instance per provider, package rwm). w_misreport
// is an additive score updated immediately when the governor checks a
// transaction; w_forge is an additive penalty for uploads with
// illegal signatures.
//
// Table implements:
//
//   - Algorithm 2 (transaction screening): Screen draws one reporting
//     collector with probability proportional to its per-provider
//     weight and decides whether the governor must validate;
//   - Algorithm 3 (reputation updating): RecordForgery (case 1),
//     RecordChecked (case 2), and RecordRevealed (case 3);
//   - the revenue rule of §3.4.3:
//     revenue_i ∝ ∏_u w_{j,i,k_u} · µ^{w_misreport} · ν^{w_forge}.
package reputation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repchain/internal/identity"
	"repchain/internal/metrics"
	"repchain/internal/rwm"
	"repchain/internal/tx"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadParams reports parameters outside their legal ranges.
	ErrBadParams = errors.New("reputation: invalid parameters")
	// ErrUnknownProvider reports an out-of-range provider index.
	ErrUnknownProvider = errors.New("reputation: unknown provider")
	// ErrUnknownCollector reports an out-of-range collector index.
	ErrUnknownCollector = errors.New("reputation: unknown collector")
	// ErrNotLinked reports a (provider, collector) pair without a
	// topology link.
	ErrNotLinked = errors.New("reputation: collector not linked to provider")
	// ErrNoReports reports a screening call with no reporting
	// collectors.
	ErrNoReports = errors.New("reputation: no reports for transaction")
)

// Params are the tunable constants of §3.4.
type Params struct {
	// Beta is β ∈ (0, 1), the multiplicative decay for missed
	// transactions; the paper suggests 0.9 in practice and
	// 1 − 4·√(log₂ r / T) when the horizon T is known.
	Beta float64
	// F is f ∈ (0, 1), the efficiency tuning parameter: the larger f,
	// the fewer -1-labeled transactions the governor verifies.
	F float64
	// Mu is µ > 1, the revenue base for the misreport score.
	Mu float64
	// Nu is ν > 1, the revenue base for the forgery score.
	Nu float64
}

// DefaultParams returns the paper's suggested practical values.
func DefaultParams() Params {
	return Params{Beta: 0.9, F: 0.5, Mu: 1.1, Nu: 2.0}
}

// Validate checks all parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.Beta <= 0 || p.Beta >= 1:
		return fmt.Errorf("beta %v not in (0,1): %w", p.Beta, ErrBadParams)
	case p.F <= 0 || p.F >= 1:
		return fmt.Errorf("f %v not in (0,1): %w", p.F, ErrBadParams)
	case p.Mu <= 1:
		return fmt.Errorf("mu %v must exceed 1: %w", p.Mu, ErrBadParams)
	case p.Nu <= 1:
		return fmt.Errorf("nu %v must exceed 1: %w", p.Nu, ErrBadParams)
	}
	return nil
}

// Report is one collector's upload for a transaction: the collector's
// global index and its label.
type Report struct {
	// Collector is the global collector index.
	Collector int
	// Label is the collector's judgment.
	Label tx.Label
}

// Decision is the outcome of Algorithm 2's screening draw for one
// transaction.
type Decision struct {
	// Collector is the drawn collector's global index.
	Collector int
	// Label is the drawn collector's label.
	Label tx.Label
	// Prob is Pr_{j,i_{k,u},k,tx}, the probability with which the
	// collector was drawn.
	Prob float64
	// Check reports whether the governor must validate the
	// transaction. When false the transaction is recorded
	// (tx, invalid, unchecked).
	Check bool
}

// Table is one governor's local reputation state over all collectors.
// It is not safe for concurrent use; the owning governor serializes
// access (each governor owns exactly one Table).
type Table struct {
	topo   *identity.Topology
	params Params

	// perProvider[k] is the RWM instance whose experts are the
	// collectors linked with provider k, ordered as
	// topo.CollectorsOf(k).
	perProvider []*rwm.Instance
	// expertOf[k] maps a global collector index to its expert
	// position within perProvider[k].
	expertOf []map[int]int

	misreport []float64
	forge     []float64

	m tableMetrics
}

// tableMetrics holds the optional pre-resolved delta counters a table
// reports through. All fields nil when no registry is attached; every
// update site guards with a single nil check, so the paper-exact
// update rules run identically with metrics on or off.
type tableMetrics struct {
	forgePenalties *metrics.Counter
	misreportUp    *metrics.Counter
	misreportDown  *metrics.Counter
	reveals        *metrics.Counter
	betaDecays     *metrics.Counter
	gammaDecays    *metrics.Counter
	revealLoss     *metrics.Series
	revealGamma    *metrics.Series
}

// SetMetrics attaches delta counters for every Algorithm 3 update to
// reg. Counters aggregate across all tables sharing the registry (one
// per governor), giving the alliance-wide reputation movement. Purely
// observational: no update rule changes.
func (t *Table) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		t.m = tableMetrics{}
		return
	}
	t.m = tableMetrics{
		forgePenalties: reg.Counter("reputation.forge_penalties_total"),
		misreportUp:    reg.Counter("reputation.misreport_up_total"),
		misreportDown:  reg.Counter("reputation.misreport_down_total"),
		reveals:        reg.Counter("reputation.reveals_total"),
		betaDecays:     reg.Counter("reputation.beta_decays_total"),
		gammaDecays:    reg.Counter("reputation.gamma_decays_total"),
		revealLoss:     reg.Series("reputation.reveal_loss"),
		revealGamma:    reg.Series("reputation.reveal_gamma"),
	}
}

// NewTable creates the reputation state for a governor observing the
// given topology.
func NewTable(topo *identity.Topology, params Params) (*Table, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		topo:        topo,
		params:      params,
		perProvider: make([]*rwm.Instance, topo.Providers()),
		expertOf:    make([]map[int]int, topo.Providers()),
		misreport:   make([]float64, topo.Collectors()),
		forge:       make([]float64, topo.Collectors()),
	}
	for k := 0; k < topo.Providers(); k++ {
		linked := topo.CollectorsOf(k)
		in, err := rwm.New(len(linked), params.Beta)
		if err != nil {
			return nil, fmt.Errorf("provider %d instance: %w", k, err)
		}
		t.perProvider[k] = in
		m := make(map[int]int, len(linked))
		for pos, c := range linked {
			m[c] = pos
		}
		t.expertOf[k] = m
	}
	return t, nil
}

// Params returns the table's parameters.
func (t *Table) Params() Params { return t.params }

// Providers returns l.
func (t *Table) Providers() int { return len(t.perProvider) }

// Collectors returns n.
func (t *Table) Collectors() int { return len(t.misreport) }

// Weight returns w_{j,i,k}: collector c's weight with respect to
// provider k.
func (t *Table) Weight(k, c int) (float64, error) {
	pos, err := t.expertPos(k, c)
	if err != nil {
		return 0, err
	}
	return t.perProvider[k].Weight(pos), nil
}

func (t *Table) expertPos(k, c int) (int, error) {
	if k < 0 || k >= len(t.perProvider) {
		return 0, fmt.Errorf("provider %d: %w", k, ErrUnknownProvider)
	}
	pos, ok := t.expertOf[k][c]
	if !ok {
		if c < 0 || c >= len(t.misreport) {
			return 0, fmt.Errorf("collector %d: %w", c, ErrUnknownCollector)
		}
		return 0, fmt.Errorf("collector %d, provider %d: %w", c, k, ErrNotLinked)
	}
	return pos, nil
}

// Misreport returns w_misreport for collector c.
func (t *Table) Misreport(c int) float64 { return t.misreport[c] }

// Forge returns w_forge for collector c.
func (t *Table) Forge(c int) float64 { return t.forge[c] }

// Instance exposes the per-provider RWM instance for analysis
// (benchmarks read regret series from it). The instance is shared —
// callers must not mutate it.
func (t *Table) Instance(k int) (*rwm.Instance, error) {
	if k < 0 || k >= len(t.perProvider) {
		return nil, fmt.Errorf("provider %d: %w", k, ErrUnknownProvider)
	}
	return t.perProvider[k], nil
}

// validateReports checks report sanity against the topology and
// returns the expert positions of the reporters in instance order.
func (t *Table) validateReports(k int, reports []Report) ([]int, error) {
	if k < 0 || k >= len(t.perProvider) {
		return nil, fmt.Errorf("provider %d: %w", k, ErrUnknownProvider)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("provider %d: %w", k, ErrNoReports)
	}
	positions := make([]int, len(reports))
	seen := make(map[int]bool, len(reports))
	for i, r := range reports {
		if !r.Label.Valid() {
			return nil, fmt.Errorf("report %d label %d: %w", i, r.Label, tx.ErrBadLabel)
		}
		if seen[r.Collector] {
			return nil, fmt.Errorf("duplicate report from collector %d: %w", r.Collector, ErrNoReports)
		}
		seen[r.Collector] = true
		pos, err := t.expertPos(k, r.Collector)
		if err != nil {
			return nil, err
		}
		positions[i] = pos
	}
	return positions, nil
}

// Screen runs Algorithm 2's draw for one transaction from provider k
// given the uploaded reports. It draws a reporter with probability
// proportional to w_{j,·,k}; a +1 draw is always checked, a -1 draw
// is checked with probability 1 − f·Pr.
func (t *Table) Screen(rng *rand.Rand, k int, reports []Report) (Decision, error) {
	positions, err := t.validateReports(k, reports)
	if err != nil {
		return Decision{}, err
	}
	in := t.perProvider[k]
	pos, prob, err := in.Pick(rng, positions)
	if err != nil {
		return Decision{}, fmt.Errorf("provider %d draw: %w", k, err)
	}
	var chosen Report
	for i, p := range positions {
		if p == pos {
			chosen = reports[i]
			break
		}
	}
	d := Decision{Collector: chosen.Collector, Label: chosen.Label, Prob: prob}
	if chosen.Label == tx.LabelValid {
		d.Check = true
		return d, nil
	}
	// -1 draw: toss a (1 − f·Pr) coin for checking.
	d.Check = rng.Float64() < 1-t.params.F*prob
	return d, nil
}

// CheckProbability returns the exact probability that a transaction
// from provider k with the given reports is verified:
//
//	P_checked = 1 − f · Σ_{-1 reporters} w² / W²
//
// (Lemma 2 shows P_checked ≥ 1 − f.) Benchmarks compare the empirical
// unchecked fraction against 1 minus this value.
func (t *Table) CheckProbability(k int, reports []Report) (float64, error) {
	positions, err := t.validateReports(k, reports)
	if err != nil {
		return 0, err
	}
	in := t.perProvider[k]
	var total, sumSqInvalid float64
	for i, pos := range positions {
		w := in.Weight(pos)
		total += w
		if reports[i].Label == tx.LabelInvalid {
			sumSqInvalid += w * w
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("provider %d zero reporting weight: %w", k, ErrNoReports)
	}
	return 1 - t.params.F*sumSqInvalid/(total*total), nil
}

// RecordForgery applies Algorithm 3 case 1: a transaction with an
// illegal signature was uploaded by collector c, so w_forge decreases
// by 1.
func (t *Table) RecordForgery(c int) error {
	if c < 0 || c >= len(t.forge) {
		return fmt.Errorf("collector %d: %w", c, ErrUnknownCollector)
	}
	t.forge[c]--
	if t.m.forgePenalties != nil {
		t.m.forgePenalties.Inc()
	}
	return nil
}

// RecordChecked applies Algorithm 3 case 2: the governor validated a
// transaction from provider k and learned its status. Every reporting
// collector whose label matches gains +1 misreport score; every
// opposite reporter loses 1.
func (t *Table) RecordChecked(k int, reports []Report, status tx.Status) error {
	if _, err := t.validateReports(k, reports); err != nil {
		return err
	}
	for _, r := range reports {
		if r.Label.Matches(status) {
			t.misreport[r.Collector]++
			if t.m.misreportUp != nil {
				t.m.misreportUp.Inc()
			}
		} else {
			t.misreport[r.Collector]--
			if t.m.misreportDown != nil {
				t.m.misreportDown.Inc()
			}
		}
	}
	return nil
}

// RecordSilence penalizes the linked collectors of provider k that
// stayed silent on a checked transaction: each absent collector's
// weight is multiplied by β, exactly the decay an absent collector
// receives when an unchecked transaction is revealed (case 3's
// OutcomeAbsent). Reporters are untouched — on a checked transaction
// their accuracy is already settled by RecordChecked — and no loss is
// accrued, because a silent collector expresses no label the governor
// could have been misled by. This keeps the two disclosure paths
// symmetric: silence costs β per transaction whether or not the
// governor checked it, while misreporting additionally moves
// w_misreport.
func (t *Table) RecordSilence(k int, reports []Report) error {
	positions, err := t.validateReports(k, reports)
	if err != nil {
		return err
	}
	in := t.perProvider[k]
	reported := make([]bool, in.Experts())
	for _, pos := range positions {
		reported[pos] = true
	}
	for pos := range reported {
		if !reported[pos] {
			in.SetWeight(pos, in.Weight(pos)*t.params.Beta)
			if t.m.betaDecays != nil {
				t.m.betaDecays.Inc()
			}
		}
	}
	return nil
}

// RevealResult reports the effect of RecordRevealed.
type RevealResult struct {
	// Loss is L_tx, the governor's expected loss on the transaction.
	Loss float64
	// Gamma is the γ_tx applied to wrong reporters.
	Gamma float64
}

// RecordRevealed applies Algorithm 3 case 3: the true status of an
// unchecked transaction from provider k has been revealed (for
// example through a provider's argue). Reporters with the correct
// label keep their weight; wrong reporters are multiplied by γ_tx;
// linked collectors that never reported are multiplied by β.
func (t *Table) RecordRevealed(k int, reports []Report, status tx.Status) (RevealResult, error) {
	positions, err := t.validateReports(k, reports)
	if err != nil {
		return RevealResult{}, err
	}
	in := t.perProvider[k]
	outcomes := make([]rwm.Outcome, in.Experts())
	for i := range outcomes {
		outcomes[i] = rwm.OutcomeAbsent
	}
	for i, pos := range positions {
		if reports[i].Label.Matches(status) {
			outcomes[pos] = rwm.OutcomeRight
		} else {
			outcomes[pos] = rwm.OutcomeWrong
		}
	}
	res, err := in.Reveal(outcomes)
	if err != nil {
		return RevealResult{}, fmt.Errorf("provider %d reveal: %w", k, err)
	}
	if t.m.reveals != nil {
		t.m.reveals.Inc()
		for _, o := range outcomes {
			switch o {
			case rwm.OutcomeWrong:
				t.m.gammaDecays.Inc()
			case rwm.OutcomeAbsent:
				t.m.betaDecays.Inc()
			}
		}
		t.m.revealLoss.Observe(res.Loss)
		t.m.revealGamma.Observe(res.Gamma)
	}
	return RevealResult{Loss: res.Loss, Gamma: res.Gamma}, nil
}

// LogRevenue returns the natural logarithm of collector c's revenue
// coefficient
//
//	∏_u w_{j,c,k_u} · µ^{w_misreport} · ν^{w_forge}
//
// of §3.4.3. The coefficient itself overflows float64 quickly — an
// honest collector's misreport score grows by one per checked
// transaction, so µ^score exceeds 1e308 within a few thousand
// transactions — hence all arithmetic stays in log space.
func (t *Table) LogRevenue(c int) (float64, error) {
	if c < 0 || c >= len(t.misreport) {
		return 0, fmt.Errorf("collector %d: %w", c, ErrUnknownCollector)
	}
	logSum := 0.0
	for _, k := range t.topo.ProvidersOf(c) {
		pos, err := t.expertPos(k, c)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(t.perProvider[k].Weight(pos))
	}
	logSum += t.misreport[c] * math.Log(t.params.Mu)
	logSum += t.forge[c] * math.Log(t.params.Nu)
	return logSum, nil
}

// Revenue returns collector c's revenue coefficient. It saturates to
// +Inf/0 for extreme scores; use LogRevenue or RevenueShares for
// numerically robust comparisons.
func (t *Table) Revenue(c int) (float64, error) {
	lr, err := t.LogRevenue(c)
	if err != nil {
		return 0, err
	}
	return math.Exp(lr), nil
}

// RevenueShares returns every collector's revenue coefficient
// normalized to sum to 1 — the proportional split of the constant
// profit share. Computed in log space (softmax) so arbitrarily large
// score differences stay finite.
func (t *Table) RevenueShares() ([]float64, error) {
	logs := make([]float64, t.Collectors())
	maxLog := math.Inf(-1)
	for c := range logs {
		v, err := t.LogRevenue(c)
		if err != nil {
			return nil, err
		}
		logs[c] = v
		if v > maxLog {
			maxLog = v
		}
	}
	shares := make([]float64, len(logs))
	var total float64
	for c, v := range logs {
		shares[c] = math.Exp(v - maxLog)
		total += shares[c]
	}
	if total > 0 {
		for c := range shares {
			shares[c] /= total
		}
	}
	return shares, nil
}

// Vector returns the full reputation vector for collector c in the
// paper's layout: the s per-provider weights (ordered by provider
// index) followed by w_misreport and w_forge.
func (t *Table) Vector(c int) ([]float64, error) {
	if c < 0 || c >= len(t.misreport) {
		return nil, fmt.Errorf("collector %d: %w", c, ErrUnknownCollector)
	}
	providers := t.topo.ProvidersOf(c)
	out := make([]float64, 0, len(providers)+2)
	for _, k := range providers {
		pos, err := t.expertPos(k, c)
		if err != nil {
			return nil, err
		}
		out = append(out, t.perProvider[k].Weight(pos))
	}
	out = append(out, t.misreport[c], t.forge[c])
	return out, nil
}

// GovernorLoss returns the accumulated expected loss L_T on provider
// k's revealed unchecked transactions.
func (t *Table) GovernorLoss(k int) (float64, error) {
	in, err := t.Instance(k)
	if err != nil {
		return 0, err
	}
	return in.GovernorLoss(), nil
}

// Regret returns L_T − S^min_T for provider k, the quantity Theorem 1
// bounds.
func (t *Table) Regret(k int) (float64, error) {
	in, err := t.Instance(k)
	if err != nil {
		return 0, err
	}
	return in.Regret(), nil
}
