package reputation

import (
	"errors"
	"math/rand"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/tx"
)

// buildDirtyTable creates a table and runs enough traffic that every
// state component is non-trivial.
func buildDirtyTable(t *testing.T) *Table {
	t.Helper()
	tab := fullTable(t, 4, DefaultParams())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		reports := []Report{
			{Collector: 0, Label: tx.LabelValid},
			{Collector: 1, Label: tx.LabelInvalid},
			{Collector: 2, Label: tx.LabelValid},
		}
		status := tx.StatusValid
		if i%3 == 0 {
			status = tx.StatusInvalid
		}
		if i%2 == 0 {
			if err := tab.RecordChecked(0, reports, status); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := tab.RecordRevealed(0, reports, status); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tab.RecordForgery(3); err != nil {
		t.Fatal(err)
	}
	_ = rng
	return tab
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := buildDirtyTable(t)
	snap := src.Snapshot()

	dst := fullTable(t, 4, DefaultParams())
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot() error = %v", err)
	}

	// All state must match exactly.
	for c := 0; c < 4; c++ {
		sv, err := src.Vector(c)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := dst.Vector(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sv {
			if sv[i] != dv[i] {
				t.Fatalf("collector %d vector[%d]: %v vs %v", c, i, sv[i], dv[i])
			}
		}
	}
	srcLoss, err := src.GovernorLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	dstLoss, err := dst.GovernorLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	if srcLoss != dstLoss {
		t.Fatalf("governor loss %v vs %v", srcLoss, dstLoss)
	}
	srcReg, err := src.Regret(0)
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := dst.Regret(0)
	if err != nil {
		t.Fatal(err)
	}
	if srcReg != dstReg {
		t.Fatalf("regret %v vs %v", srcReg, dstReg)
	}
}

func TestSnapshotRestoredTableKeepsWorking(t *testing.T) {
	src := buildDirtyTable(t)
	dst := fullTable(t, 4, DefaultParams())
	if err := dst.RestoreSnapshot(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Screening draws from both tables agree in distribution: same
	// seed, same reports, same decisions.
	reports := []Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 1, Label: tx.LabelInvalid},
	}
	rngA := rand.New(rand.NewSource(77))
	rngB := rand.New(rand.NewSource(77))
	for i := 0; i < 50; i++ {
		a, err := src.Screen(rngA, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Screen(rngB, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("draw %d diverged after restore: %+v vs %+v", i, a, b)
		}
	}
}

func TestRestoreSnapshotRejectsMismatches(t *testing.T) {
	src := buildDirtyTable(t)
	snap := src.Snapshot()

	// Wrong parameters.
	otherParams := DefaultParams()
	otherParams.F = 0.7
	wrongParams := fullTable(t, 4, otherParams)
	if err := wrongParams.RestoreSnapshot(snap); !errors.Is(err, ErrBadParams) {
		t.Fatalf("params mismatch error = %v, want ErrBadParams", err)
	}

	// Wrong topology (different collector count).
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: 5, Degree: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrongTopo, err := NewTable(topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongTopo.RestoreSnapshot(snap); !errors.Is(err, ErrBadParams) {
		t.Fatalf("topology mismatch error = %v, want ErrBadParams", err)
	}

	// Garbage and truncation.
	fresh := fullTable(t, 4, DefaultParams())
	if err := fresh.RestoreSnapshot([]byte("junk")); err == nil {
		t.Fatal("garbage restored")
	}
	if err := fresh.RestoreSnapshot(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	if err := fresh.RestoreSnapshot(append(snap, 0)); err == nil {
		t.Fatal("padded snapshot restored")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	src := buildDirtyTable(t)
	a, b := src.Snapshot(), src.Snapshot()
	if len(a) != len(b) {
		t.Fatal("snapshot lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("snapshots differ byte-for-byte")
		}
	}
}
