package identity

import (
	"repchain/internal/crypto"
)

// deriveSeed produces the counter-th child seed of a master seed by
// hashing; RegisterAll uses it so that a single seed reproduces every
// node identity in a deployment.
func deriveSeed(master []byte, counter int) []byte {
	var ctr [8]byte
	for i := 0; i < 8; i++ {
		ctr[i] = byte(counter >> (8 * i))
	}
	h := crypto.SumParts(master, ctr[:])
	return h[:]
}

func keyFromSeed(seed []byte) (crypto.PublicKey, crypto.PrivateKey, error) {
	return crypto.KeyFromSeed(seed)
}

func generateKey() (crypto.PublicKey, crypto.PrivateKey, error) {
	return crypto.GenerateKey(nil)
}
