package identity

import "fmt"

// PartitionFunc deterministically assigns a global provider index to a
// committee in [0, committees). The same (provider, committees) pair
// must always map to the same committee: the cluster round loop, the
// cross-shard router, and event replay all re-evaluate the function
// independently and rely on agreement.
type PartitionFunc func(provider, committees int) int

// ModuloPartition is the default provider partition: provider index
// modulo the committee count. It keeps committees balanced whenever the
// provider count is a multiple of the committee count, which is also
// the shape the regular circulant topology needs per committee.
func ModuloPartition(provider, committees int) int {
	if committees <= 0 {
		return 0
	}
	return provider % committees
}

// CommitteeSlot locates a global provider inside a partition: the
// committee it lives on and its local provider index there. Local
// indices are assigned by ascending global index, so the mapping is a
// pure function of the partition and needs no extra state to replay.
type CommitteeSlot struct {
	// Committee is the committee index in [0, K).
	Committee int
	// Local is the provider's index within that committee's topology.
	Local int
}

// Partition is the materialized assignment of a global provider set
// across K committees. It is immutable after construction.
type Partition struct {
	committees int
	members    [][]int         // committee -> ascending global provider indices
	home       []CommitteeSlot // global provider -> slot
}

// NewPartition evaluates fn over every global provider index and
// materializes the committee membership tables. fn nil means
// ModuloPartition. Every committee must end up non-empty: an empty
// committee has no providers to elect stake from and cannot run the
// protocol, so it is rejected here rather than failing later inside
// engine construction.
func NewPartition(providers, committees int, fn PartitionFunc) (*Partition, error) {
	if providers <= 0 {
		return nil, fmt.Errorf("partition over %d providers: %w", providers, ErrBadTopology)
	}
	if committees <= 0 {
		return nil, fmt.Errorf("partition into %d committees: %w", committees, ErrBadTopology)
	}
	if fn == nil {
		fn = ModuloPartition
	}
	p := &Partition{
		committees: committees,
		members:    make([][]int, committees),
		home:       make([]CommitteeSlot, providers),
	}
	for k := 0; k < providers; k++ {
		i := fn(k, committees)
		if i < 0 || i >= committees {
			return nil, fmt.Errorf("partition maps provider %d to committee %d of %d: %w",
				k, i, committees, ErrBadTopology)
		}
		p.home[k] = CommitteeSlot{Committee: i, Local: len(p.members[i])}
		p.members[i] = append(p.members[i], k)
	}
	for i, ms := range p.members {
		if len(ms) == 0 {
			return nil, fmt.Errorf("committee %d has no providers: %w", i, ErrBadTopology)
		}
	}
	return p, nil
}

// Committees returns K.
func (p *Partition) Committees() int { return p.committees }

// Members returns the ascending global provider indices assigned to
// committee i. The returned slice must not be modified.
func (p *Partition) Members(i int) []int {
	if i < 0 || i >= len(p.members) {
		return nil
	}
	return p.members[i]
}

// Home returns the committee slot of global provider k. The second
// result is false when k is out of range.
func (p *Partition) Home(k int) (CommitteeSlot, bool) {
	if k < 0 || k >= len(p.home) {
		return CommitteeSlot{}, false
	}
	return p.home[k], true
}

// Global maps a (committee, local) slot back to the global provider
// index. The second result is false when the slot does not exist.
func (p *Partition) Global(committee, local int) (int, bool) {
	if committee < 0 || committee >= len(p.members) {
		return 0, false
	}
	ms := p.members[committee]
	if local < 0 || local >= len(ms) {
		return 0, false
	}
	return ms[local], true
}
