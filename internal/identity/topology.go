package identity

import (
	"fmt"
	"sort"

	"repchain/internal/crypto"
)

// TopologySpec describes the regular bipartite provider–collector graph
// of the paper's model: l providers, n collectors, each provider linked
// with r collectors and each collector with s providers, satisfying
// r·l = s·n.
type TopologySpec struct {
	// Providers is l, the number of providers.
	Providers int
	// Collectors is n, the number of collectors.
	Collectors int
	// Degree is r, collectors per provider.
	Degree int
}

// Validate checks the spec is realizable as a regular bipartite graph.
func (t TopologySpec) Validate() error {
	switch {
	case t.Providers <= 0:
		return fmt.Errorf("providers %d: %w", t.Providers, ErrBadTopology)
	case t.Collectors <= 0:
		return fmt.Errorf("collectors %d: %w", t.Collectors, ErrBadTopology)
	case t.Degree <= 0 || t.Degree > t.Collectors:
		return fmt.Errorf("degree %d with %d collectors: %w", t.Degree, t.Collectors, ErrBadTopology)
	case (t.Providers*t.Degree)%t.Collectors != 0:
		return fmt.Errorf("r·l = %d not divisible by n = %d, collector degree s not integral: %w",
			t.Providers*t.Degree, t.Collectors, ErrBadTopology)
	}
	return nil
}

// CollectorDegree returns s = r·l / n.
func (t TopologySpec) CollectorDegree() int {
	return t.Providers * t.Degree / t.Collectors
}

// Topology is a concrete bipartite linking between provider and
// collector indices. It is immutable after construction.
type Topology struct {
	spec         TopologySpec
	byProvider   [][]int // provider index -> sorted collector indices
	byCollector  [][]int // collector index -> sorted provider indices
	providerRank []map[int]int
}

// NewRegularTopology builds the circulant regular topology: provider k
// links to collectors (k·r + t) mod n for t in [0, r). Every provider
// has degree exactly r and every collector degree exactly s = r·l/n.
func NewRegularTopology(spec TopologySpec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	topo := &Topology{
		spec:        spec,
		byProvider:  make([][]int, spec.Providers),
		byCollector: make([][]int, spec.Collectors),
	}
	for k := 0; k < spec.Providers; k++ {
		links := make([]int, 0, spec.Degree)
		for t := 0; t < spec.Degree; t++ {
			c := (k*spec.Degree + t) % spec.Collectors
			links = append(links, c)
			topo.byCollector[c] = append(topo.byCollector[c], k)
		}
		sort.Ints(links)
		topo.byProvider[k] = links
	}
	for c := range topo.byCollector {
		sort.Ints(topo.byCollector[c])
	}
	topo.buildRanks()
	return topo, nil
}

// NewTopologyFromLinks builds a topology from explicit adjacency
// lists (provider index -> collector indices), for irregular networks.
// spec.Degree is ignored except for bounds checking of indices.
func NewTopologyFromLinks(providers, collectors int, links [][]int) (*Topology, error) {
	if providers <= 0 || collectors <= 0 {
		return nil, fmt.Errorf("providers %d collectors %d: %w", providers, collectors, ErrBadTopology)
	}
	if len(links) != providers {
		return nil, fmt.Errorf("links for %d providers, want %d: %w", len(links), providers, ErrBadTopology)
	}
	topo := &Topology{
		spec:        TopologySpec{Providers: providers, Collectors: collectors},
		byProvider:  make([][]int, providers),
		byCollector: make([][]int, collectors),
	}
	for k, cs := range links {
		seen := make(map[int]bool, len(cs))
		sorted := make([]int, 0, len(cs))
		for _, c := range cs {
			if c < 0 || c >= collectors {
				return nil, fmt.Errorf("provider %d links to collector %d of %d: %w", k, c, collectors, ErrBadTopology)
			}
			if seen[c] {
				return nil, fmt.Errorf("provider %d links to collector %d twice: %w", k, c, ErrBadTopology)
			}
			seen[c] = true
			sorted = append(sorted, c)
			topo.byCollector[c] = append(topo.byCollector[c], k)
		}
		sort.Ints(sorted)
		topo.byProvider[k] = sorted
	}
	for c := range topo.byCollector {
		sort.Ints(topo.byCollector[c])
	}
	topo.buildRanks()
	return topo, nil
}

func (t *Topology) buildRanks() {
	t.providerRank = make([]map[int]int, len(t.byCollector))
	for c, ps := range t.byCollector {
		m := make(map[int]int, len(ps))
		for rank, p := range ps {
			m[p] = rank
		}
		t.providerRank[c] = m
	}
}

// Spec returns the originating specification.
func (t *Topology) Spec() TopologySpec { return t.spec }

// Providers returns l.
func (t *Topology) Providers() int { return len(t.byProvider) }

// Collectors returns n.
func (t *Topology) Collectors() int { return len(t.byCollector) }

// CollectorsOf returns the collector indices linked with provider k.
// The returned slice must not be modified.
func (t *Topology) CollectorsOf(k int) []int {
	if k < 0 || k >= len(t.byProvider) {
		return nil
	}
	return t.byProvider[k]
}

// ProvidersOf returns the provider indices linked with collector c.
// The returned slice must not be modified.
func (t *Topology) ProvidersOf(c int) []int {
	if c < 0 || c >= len(t.byCollector) {
		return nil
	}
	return t.byCollector[c]
}

// Linked reports whether provider k and collector c are connected.
func (t *Topology) Linked(k, c int) bool {
	if c < 0 || c >= len(t.providerRank) {
		return false
	}
	_, ok := t.providerRank[c][k]
	return ok
}

// ProviderRank returns the position of provider k within collector c's
// sorted provider list. The reputation vector's first s entries are
// indexed by this rank. The second result is false when the pair is
// not linked.
func (t *Topology) ProviderRank(c, k int) (int, bool) {
	if c < 0 || c >= len(t.providerRank) {
		return 0, false
	}
	rank, ok := t.providerRank[c][k]
	return rank, ok
}

// RegisterAll registers l providers, n collectors, and m governors with
// the IM under canonical IDs, records the topology links, and returns
// the issued certificates grouped by role. Key material is derived from
// the given seed for reproducibility; pass nil for random keys.
func RegisterAll(m *Manager, topo *Topology, governors int, seed []byte) (*Roster, error) {
	if governors <= 0 {
		return nil, fmt.Errorf("governors %d: %w", governors, ErrBadTopology)
	}
	roster := &Roster{
		Providers:  make([]Member, topo.Providers()),
		Collectors: make([]Member, topo.Collectors()),
		Governors:  make([]Member, governors),
		Topology:   topo,
	}
	counter := 0
	newMember := func(role Role, idx int) (Member, error) {
		id := MakeNodeID(role, idx)
		var (
			pub  crypto.PublicKey
			priv crypto.PrivateKey
			err  error
		)
		if seed != nil {
			derived := deriveSeed(seed, counter)
			pub, priv, err = keyFromSeed(derived)
		} else {
			pub, priv, err = generateKey()
		}
		counter++
		if err != nil {
			return Member{}, fmt.Errorf("key for %q: %w", id, err)
		}
		cert, err := m.Register(id, role, pub)
		if err != nil {
			return Member{}, err
		}
		return Member{ID: id, Index: idx, Cert: cert, PrivateKey: priv}, nil
	}

	for k := range roster.Providers {
		mem, err := newMember(RoleProvider, k)
		if err != nil {
			return nil, err
		}
		roster.Providers[k] = mem
	}
	for c := range roster.Collectors {
		mem, err := newMember(RoleCollector, c)
		if err != nil {
			return nil, err
		}
		roster.Collectors[c] = mem
	}
	for g := range roster.Governors {
		mem, err := newMember(RoleGovernor, g)
		if err != nil {
			return nil, err
		}
		roster.Governors[g] = mem
	}
	for k := 0; k < topo.Providers(); k++ {
		for _, c := range topo.CollectorsOf(k) {
			if err := m.Link(roster.Providers[k].ID, roster.Collectors[c].ID); err != nil {
				return nil, err
			}
		}
	}
	return roster, nil
}

// Member bundles a registered node's credential and signing key.
type Member struct {
	// ID is the canonical node identifier.
	ID NodeID
	// Index is the node's position within its role.
	Index int
	// Cert is the IM-issued certificate.
	Cert Certificate
	// PrivateKey signs on behalf of the member.
	PrivateKey crypto.PrivateKey
}

// Roster is the full membership of a deployment.
type Roster struct {
	Providers  []Member
	Collectors []Member
	Governors  []Member
	Topology   *Topology
}
