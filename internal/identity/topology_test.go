package identity

import (
	"errors"
	"testing"
	"testing/quick"

	"repchain/internal/crypto"
)

func TestTopologySpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    TopologySpec
		wantErr bool
	}{
		{"paper example r=8", TopologySpec{Providers: 16, Collectors: 8, Degree: 8}, false},
		{"square", TopologySpec{Providers: 4, Collectors: 4, Degree: 2}, false},
		{"degree one", TopologySpec{Providers: 6, Collectors: 3, Degree: 1}, false},
		{"zero providers", TopologySpec{Providers: 0, Collectors: 3, Degree: 1}, true},
		{"zero collectors", TopologySpec{Providers: 3, Collectors: 0, Degree: 1}, true},
		{"zero degree", TopologySpec{Providers: 3, Collectors: 3, Degree: 0}, true},
		{"degree exceeds collectors", TopologySpec{Providers: 3, Collectors: 3, Degree: 4}, true},
		{"non-integral collector degree", TopologySpec{Providers: 3, Collectors: 2, Degree: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadTopology) {
				t.Fatalf("Validate() error = %v, want ErrBadTopology", err)
			}
		})
	}
}

func TestRegularTopologyDegrees(t *testing.T) {
	specs := []TopologySpec{
		{Providers: 16, Collectors: 8, Degree: 8},
		{Providers: 10, Collectors: 5, Degree: 3},
		{Providers: 7, Collectors: 7, Degree: 7},
		{Providers: 12, Collectors: 4, Degree: 2},
	}
	for _, spec := range specs {
		topo, err := NewRegularTopology(spec)
		if err != nil {
			t.Fatalf("NewRegularTopology(%+v) error = %v", spec, err)
		}
		s := spec.CollectorDegree()
		for k := 0; k < spec.Providers; k++ {
			if got := len(topo.CollectorsOf(k)); got != spec.Degree {
				t.Fatalf("provider %d degree = %d, want %d", k, got, spec.Degree)
			}
		}
		for c := 0; c < spec.Collectors; c++ {
			if got := len(topo.ProvidersOf(c)); got != s {
				t.Fatalf("collector %d degree = %d, want %d", c, got, s)
			}
		}
	}
}

func TestTopologyLinkedConsistent(t *testing.T) {
	topo, err := NewRegularTopology(TopologySpec{Providers: 9, Collectors: 3, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < topo.Providers(); k++ {
		linked := make(map[int]bool)
		for _, c := range topo.CollectorsOf(k) {
			linked[c] = true
		}
		for c := 0; c < topo.Collectors(); c++ {
			if topo.Linked(k, c) != linked[c] {
				t.Fatalf("Linked(%d,%d) inconsistent with CollectorsOf", k, c)
			}
		}
	}
}

func TestProviderRank(t *testing.T) {
	topo, err := NewRegularTopology(TopologySpec{Providers: 8, Collectors: 4, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < topo.Collectors(); c++ {
		ps := topo.ProvidersOf(c)
		for want, p := range ps {
			rank, ok := topo.ProviderRank(c, p)
			if !ok || rank != want {
				t.Fatalf("ProviderRank(%d,%d) = %d,%v want %d,true", c, p, rank, ok, want)
			}
		}
	}
	if _, ok := topo.ProviderRank(0, 9999); ok {
		t.Fatal("ProviderRank accepted unlinked provider")
	}
	if _, ok := topo.ProviderRank(-1, 0); ok {
		t.Fatal("ProviderRank accepted negative collector")
	}
}

func TestTopologyFromLinks(t *testing.T) {
	topo, err := NewTopologyFromLinks(3, 2, [][]int{{0, 1}, {0}, {1}})
	if err != nil {
		t.Fatalf("NewTopologyFromLinks() error = %v", err)
	}
	if !topo.Linked(0, 0) || !topo.Linked(0, 1) || !topo.Linked(1, 0) || topo.Linked(1, 1) {
		t.Fatal("links not reproduced")
	}
}

func TestTopologyFromLinksErrors(t *testing.T) {
	tests := []struct {
		name       string
		providers  int
		collectors int
		links      [][]int
	}{
		{"wrong provider count", 2, 2, [][]int{{0}}},
		{"collector out of range", 1, 2, [][]int{{2}}},
		{"negative collector", 1, 2, [][]int{{-1}}},
		{"duplicate link", 1, 2, [][]int{{0, 0}}},
		{"zero sizes", 0, 2, [][]int{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTopologyFromLinks(tt.providers, tt.collectors, tt.links)
			if !errors.Is(err, ErrBadTopology) {
				t.Fatalf("error = %v, want ErrBadTopology", err)
			}
		})
	}
}

func TestQuickRegularTopologyHandshake(t *testing.T) {
	// Property: sum of provider degrees equals sum of collector degrees
	// (the handshake lemma, r·l = s·n) for any valid spec.
	f := func(l, n, r uint8) bool {
		spec := TopologySpec{
			Providers:  int(l%32) + 1,
			Collectors: int(n%16) + 1,
			Degree:     int(r%8) + 1,
		}
		if spec.Validate() != nil {
			return true // skip unrealizable specs
		}
		topo, err := NewRegularTopology(spec)
		if err != nil {
			return false
		}
		var left, right int
		for k := 0; k < topo.Providers(); k++ {
			left += len(topo.CollectorsOf(k))
		}
		for c := 0; c < topo.Collectors(); c++ {
			right += len(topo.ProvidersOf(c))
		}
		return left == right && left == spec.Providers*spec.Degree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAll(t *testing.T) {
	m := newTestManager(t)
	topo, err := NewRegularTopology(TopologySpec{Providers: 6, Collectors: 3, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, crypto.SeedSize)
	roster, err := RegisterAll(m, topo, 4, seed)
	if err != nil {
		t.Fatalf("RegisterAll() error = %v", err)
	}
	if len(roster.Providers) != 6 || len(roster.Collectors) != 3 || len(roster.Governors) != 4 {
		t.Fatalf("roster sizes wrong: %d/%d/%d", len(roster.Providers), len(roster.Collectors), len(roster.Governors))
	}
	// Every certificate verifies and every topological link is recorded
	// in the IM.
	for _, mem := range roster.Providers {
		if err := m.VerifyCertificate(mem.Cert); err != nil {
			t.Fatalf("provider cert: %v", err)
		}
	}
	for k := 0; k < topo.Providers(); k++ {
		for _, c := range topo.CollectorsOf(k) {
			if !m.Linked(roster.Providers[k].ID, roster.Collectors[c].ID) {
				t.Fatalf("link %d-%d missing in IM", k, c)
			}
		}
	}
	// Signing keys must work with the issued certificates.
	msg := []byte("probe")
	sig := roster.Governors[0].PrivateKey.Sign(msg)
	if err := roster.Governors[0].Cert.PublicKey.Verify(msg, sig); err != nil {
		t.Fatalf("roster key mismatch: %v", err)
	}
}

func TestRegisterAllDeterministic(t *testing.T) {
	topo, err := NewRegularTopology(TopologySpec{Providers: 2, Collectors: 2, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, crypto.SeedSize)
	seed[5] = 7

	m1 := newTestManager(t)
	r1, err := RegisterAll(m1, topo, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newTestManager(t)
	r2, err := RegisterAll(m2, topo, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Providers[0].Cert.PublicKey.Equal(r2.Providers[0].Cert.PublicKey) {
		t.Fatal("same seed produced different member keys")
	}
}

func TestRegisterAllRejectsNoGovernors(t *testing.T) {
	m := newTestManager(t)
	topo, err := NewRegularTopology(TopologySpec{Providers: 2, Collectors: 2, Degree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterAll(m, topo, 0, nil); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("RegisterAll() error = %v, want ErrBadTopology", err)
	}
}
