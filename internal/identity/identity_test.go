package identity

import (
	"errors"
	"testing"

	"repchain/internal/crypto"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = 0x1A
	m, err := NewManagerFromSeed(seed)
	if err != nil {
		t.Fatalf("NewManagerFromSeed() error = %v", err)
	}
	return m
}

func registerNode(t *testing.T, m *Manager, role Role, idx int) (Certificate, crypto.PrivateKey) {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = byte(role)
	seed[1] = byte(idx)
	seed[2] = byte(idx >> 8)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatalf("KeyFromSeed() error = %v", err)
	}
	cert, err := m.Register(MakeNodeID(role, idx), role, pub)
	if err != nil {
		t.Fatalf("Register() error = %v", err)
	}
	return cert, priv
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		role Role
		want string
	}{
		{RoleProvider, "provider"},
		{RoleCollector, "collector"},
		{RoleGovernor, "governor"},
		{Role(0), "role(0)"},
		{Role(9), "role(9)"},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.want {
			t.Errorf("Role(%d).String() = %q, want %q", tt.role, got, tt.want)
		}
	}
}

func TestRegisterAndLookup(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleProvider, 0)
	got, err := m.Lookup(cert.ID)
	if err != nil {
		t.Fatalf("Lookup() error = %v", err)
	}
	if got.ID != cert.ID || got.Role != RoleProvider || !got.PublicKey.Equal(cert.PublicKey) {
		t.Fatal("Lookup() returned a different certificate")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleProvider, 0)
	_, err := m.Register(cert.ID, RoleProvider, cert.PublicKey)
	if !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("Register() error = %v, want ErrDuplicateNode", err)
	}
}

func TestRegisterRejectsInvalidRole(t *testing.T) {
	m := newTestManager(t)
	pub, _, err := crypto.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register("x", Role(42), pub); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("Register() error = %v, want ErrRoleMismatch", err)
	}
}

func TestRegisterRejectsZeroKey(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Register("x", RoleProvider, crypto.PublicKey{}); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("Register() error = %v, want ErrBadCertificate", err)
	}
}

func TestVerifyCertificate(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleCollector, 1)
	if err := m.VerifyCertificate(cert); err != nil {
		t.Fatalf("VerifyCertificate() error = %v", err)
	}
}

func TestVerifyCertificateRejectsTampering(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleCollector, 1)

	tampered := cert
	tampered.Role = RoleGovernor // privilege escalation attempt
	if err := m.VerifyCertificate(tampered); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("VerifyCertificate(tampered role) error = %v, want ErrBadCertificate", err)
	}

	tampered = cert
	tampered.ID = "governor/0"
	if err := m.VerifyCertificate(tampered); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("VerifyCertificate(tampered id) error = %v, want ErrBadCertificate", err)
	}
}

func TestVerifyCertificateAgainstRoot(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleGovernor, 0)
	if err := VerifyCertificateAgainst(m.RootPublicKey(), cert); err != nil {
		t.Fatalf("VerifyCertificateAgainst() error = %v", err)
	}
	other := newTestManagerWithSeedByte(t, 99)
	if err := VerifyCertificateAgainst(other.RootPublicKey(), cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("foreign root accepted certificate: %v", err)
	}
}

func newTestManagerWithSeedByte(t *testing.T, b byte) *Manager {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = b
	m, err := NewManagerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRevoke(t *testing.T) {
	m := newTestManager(t)
	cert, _ := registerNode(t, m, RoleCollector, 2)
	if err := m.Revoke(cert.ID); err != nil {
		t.Fatalf("Revoke() error = %v", err)
	}
	if _, err := m.Lookup(cert.ID); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Lookup(revoked) error = %v, want ErrRevoked", err)
	}
	if err := m.VerifyCertificate(cert); !errors.Is(err, ErrRevoked) {
		t.Fatalf("VerifyCertificate(revoked) error = %v, want ErrRevoked", err)
	}
}

func TestRevokeUnknown(t *testing.T) {
	m := newTestManager(t)
	if err := m.Revoke("nobody"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Revoke() error = %v, want ErrUnknownNode", err)
	}
}

func TestMembersSorted(t *testing.T) {
	m := newTestManager(t)
	for i := 10; i >= 0; i-- {
		registerNode(t, m, RoleProvider, i)
	}
	got := m.Members(RoleProvider)
	if len(got) != 11 {
		t.Fatalf("Members() returned %d, want 11", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Members() not sorted: %v", got)
		}
	}
	if m.Count(RoleProvider) != 11 || m.Count(RoleGovernor) != 0 {
		t.Fatal("Count() wrong")
	}
}

func TestLinkAndLinked(t *testing.T) {
	m := newTestManager(t)
	p, _ := registerNode(t, m, RoleProvider, 0)
	c, _ := registerNode(t, m, RoleCollector, 0)
	if m.Linked(p.ID, c.ID) {
		t.Fatal("Linked() true before Link()")
	}
	if err := m.Link(p.ID, c.ID); err != nil {
		t.Fatalf("Link() error = %v", err)
	}
	if !m.Linked(p.ID, c.ID) {
		t.Fatal("Linked() false after Link()")
	}
	if got := m.CollectorsOf(p.ID); len(got) != 1 || got[0] != c.ID {
		t.Fatalf("CollectorsOf() = %v", got)
	}
	if got := m.ProvidersOf(c.ID); len(got) != 1 || got[0] != p.ID {
		t.Fatalf("ProvidersOf() = %v", got)
	}
}

func TestLinkRoleEnforcement(t *testing.T) {
	m := newTestManager(t)
	p, _ := registerNode(t, m, RoleProvider, 0)
	g, _ := registerNode(t, m, RoleGovernor, 0)
	if err := m.Link(p.ID, g.ID); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("Link(provider, governor) error = %v, want ErrRoleMismatch", err)
	}
	if err := m.Link(g.ID, p.ID); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("Link(governor, provider) error = %v, want ErrRoleMismatch", err)
	}
	if err := m.Link("ghost", p.ID); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Link(unknown, _) error = %v, want ErrUnknownNode", err)
	}
}
