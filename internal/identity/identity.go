// Package identity implements the Identity Manager (IM) of the paper's
// §3.1: the component "responsible for recording the members of the
// chain as well as their roles" and "in charge of providing nodes
// credentials that are used for authenticating and authorizing".
//
// The IM plays the Certificate Authority role of a standard PKI: it
// holds a root signing key and issues role certificates binding a node
// identifier to a public key and a role. Every protocol message is
// verified against a certificate chain ending at the IM root.
//
// The package also records the bipartite provider–collector topology
// (each provider is linked with r collectors, each collector with s
// providers, r·l = s·n), because the paper's verify() primitive rejects
// a collector upload whose inner provider signature comes from a
// provider the collector is not linked with.
package identity

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// Role classifies a node in the three-tier hierarchy.
type Role int

// Roles, one per tier of the paper's hierarchical model.
const (
	// RoleProvider offers signed transactions to collectors.
	RoleProvider Role = iota + 1
	// RoleCollector labels and uploads transactions to governors.
	RoleCollector
	// RoleGovernor screens transactions, maintains the ledger, and
	// participates in leader election.
	RoleGovernor
)

// String returns the lowercase role name.
func (r Role) String() string {
	switch r {
	case RoleProvider:
		return "provider"
	case RoleCollector:
		return "collector"
	case RoleGovernor:
		return "governor"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Valid reports whether r is a known role.
func (r Role) Valid() bool {
	return r == RoleProvider || r == RoleCollector || r == RoleGovernor
}

// NodeID names a registered node, e.g. "provider/3". IDs are assigned
// by the IM at registration and are unique chain-wide.
type NodeID string

// MakeNodeID builds the canonical identifier for the index-th node of a
// role.
func MakeNodeID(role Role, index int) NodeID {
	return NodeID(fmt.Sprintf("%s/%d", role, index))
}

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrUnknownNode reports a lookup for an unregistered node.
	ErrUnknownNode = errors.New("identity: unknown node")
	// ErrDuplicateNode reports a registration under an existing ID.
	ErrDuplicateNode = errors.New("identity: node already registered")
	// ErrRevoked reports use of a revoked credential.
	ErrRevoked = errors.New("identity: credential revoked")
	// ErrBadCertificate reports a certificate that fails verification.
	ErrBadCertificate = errors.New("identity: bad certificate")
	// ErrRoleMismatch reports a node acting outside its certified role.
	ErrRoleMismatch = errors.New("identity: role mismatch")
	// ErrNotLinked reports a provider–collector pair with no link in
	// the registered topology.
	ErrNotLinked = errors.New("identity: provider and collector not linked")
	// ErrBadTopology reports an inconsistent topology specification.
	ErrBadTopology = errors.New("identity: invalid topology")
)

// Certificate binds a node ID and role to a public key, signed by the
// IM root key. It is the credential of §3.1.
type Certificate struct {
	// ID is the subject node.
	ID NodeID
	// Role is the subject's tier.
	Role Role
	// PublicKey is the subject's Ed25519 verifying key.
	PublicKey crypto.PublicKey
	// Signature is the IM root signature over the canonical encoding
	// of (ID, Role, PublicKey).
	Signature []byte
}

// signingBytes returns the canonical byte string the IM signs.
func (c Certificate) signingBytes() []byte {
	e := codec.NewEncoder(64)
	e.PutString("repchain/cert/v1")
	e.PutString(string(c.ID))
	e.PutInt(int(c.Role))
	e.PutBytes(c.PublicKey.Bytes())
	return e.Bytes()
}

// Manager is the Identity Manager. It is safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	rootPub crypto.PublicKey
	rootKey crypto.PrivateKey

	nodes   map[NodeID]*record
	byRole  map[Role][]NodeID
	links   map[NodeID]map[NodeID]bool // provider -> set of collectors
	rlinks  map[NodeID]map[NodeID]bool // collector -> set of providers
	revoked map[NodeID]bool
}

type record struct {
	cert Certificate
}

// NewManager creates an IM with a fresh root key. A nil rng uses the
// cryptographic source.
func NewManager() (*Manager, error) {
	pub, priv, err := crypto.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("identity manager root key: %w", err)
	}
	return newManagerWithKey(pub, priv), nil
}

// NewManagerFromSeed creates an IM with a deterministic root key for
// reproducible simulations.
func NewManagerFromSeed(seed []byte) (*Manager, error) {
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		return nil, fmt.Errorf("identity manager root key: %w", err)
	}
	return newManagerWithKey(pub, priv), nil
}

func newManagerWithKey(pub crypto.PublicKey, priv crypto.PrivateKey) *Manager {
	return &Manager{
		rootPub: pub,
		rootKey: priv,
		nodes:   make(map[NodeID]*record),
		byRole:  make(map[Role][]NodeID),
		links:   make(map[NodeID]map[NodeID]bool),
		rlinks:  make(map[NodeID]map[NodeID]bool),
		revoked: make(map[NodeID]bool),
	}
}

// RootPublicKey returns the IM's root verifying key. Nodes embed it to
// verify certificates offline.
func (m *Manager) RootPublicKey() crypto.PublicKey {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rootPub
}

// Register issues a certificate binding id to pub under role. It
// returns ErrDuplicateNode if id is taken.
func (m *Manager) Register(id NodeID, role Role, pub crypto.PublicKey) (Certificate, error) {
	if !role.Valid() {
		return Certificate{}, fmt.Errorf("register %q: %w", id, ErrRoleMismatch)
	}
	if pub.IsZero() {
		return Certificate{}, fmt.Errorf("register %q: zero public key: %w", id, ErrBadCertificate)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; ok {
		return Certificate{}, fmt.Errorf("register %q: %w", id, ErrDuplicateNode)
	}
	cert := Certificate{ID: id, Role: role, PublicKey: pub}
	cert.Signature = m.rootKey.Sign(cert.signingBytes())
	m.nodes[id] = &record{cert: cert}
	m.byRole[role] = append(m.byRole[role], id)
	return cert, nil
}

// VerifyCertificate checks that cert was issued by this IM and is not
// revoked.
func (m *Manager) VerifyCertificate(cert Certificate) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.verifyCertLocked(cert)
}

func (m *Manager) verifyCertLocked(cert Certificate) error {
	if m.revoked[cert.ID] {
		return fmt.Errorf("certificate for %q: %w", cert.ID, ErrRevoked)
	}
	if err := m.rootPub.Verify(cert.signingBytes(), cert.Signature); err != nil {
		return fmt.Errorf("certificate for %q: %w", cert.ID, ErrBadCertificate)
	}
	return nil
}

// VerifyCertificateAgainst checks cert against an explicit root key.
// Nodes that hold only the root public key (not the Manager) use this.
func VerifyCertificateAgainst(root crypto.PublicKey, cert Certificate) error {
	if err := root.Verify(cert.signingBytes(), cert.Signature); err != nil {
		return fmt.Errorf("certificate for %q: %w", cert.ID, ErrBadCertificate)
	}
	return nil
}

// Lookup returns the certificate registered under id.
func (m *Manager) Lookup(id NodeID) (Certificate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.nodes[id]
	if !ok {
		return Certificate{}, fmt.Errorf("lookup %q: %w", id, ErrUnknownNode)
	}
	if m.revoked[id] {
		return Certificate{}, fmt.Errorf("lookup %q: %w", id, ErrRevoked)
	}
	return rec.cert, nil
}

// PublicKeyOf returns the verifying key of a registered node.
func (m *Manager) PublicKeyOf(id NodeID) (crypto.PublicKey, error) {
	cert, err := m.Lookup(id)
	if err != nil {
		return crypto.PublicKey{}, err
	}
	return cert.PublicKey, nil
}

// RoleOf returns the certified role of id.
func (m *Manager) RoleOf(id NodeID) (Role, error) {
	cert, err := m.Lookup(id)
	if err != nil {
		return 0, err
	}
	return cert.Role, nil
}

// Revoke withdraws a node's credential. Subsequent lookups and
// verifications fail with ErrRevoked.
func (m *Manager) Revoke(id NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; !ok {
		return fmt.Errorf("revoke %q: %w", id, ErrUnknownNode)
	}
	m.revoked[id] = true
	return nil
}

// Members returns the sorted IDs registered under role.
func (m *Manager) Members(role Role) []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]NodeID, len(m.byRole[role]))
	copy(out, m.byRole[role])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns how many nodes are registered under role.
func (m *Manager) Count(role Role) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byRole[role])
}

// Link records that provider p submits transactions to collector c.
// Both must be registered under the matching roles.
func (m *Manager) Link(p, c NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requireRoleLocked(p, RoleProvider); err != nil {
		return err
	}
	if err := m.requireRoleLocked(c, RoleCollector); err != nil {
		return err
	}
	if m.links[p] == nil {
		m.links[p] = make(map[NodeID]bool)
	}
	if m.rlinks[c] == nil {
		m.rlinks[c] = make(map[NodeID]bool)
	}
	m.links[p][c] = true
	m.rlinks[c][p] = true
	return nil
}

func (m *Manager) requireRoleLocked(id NodeID, want Role) error {
	rec, ok := m.nodes[id]
	if !ok {
		return fmt.Errorf("node %q: %w", id, ErrUnknownNode)
	}
	if rec.cert.Role != want {
		return fmt.Errorf("node %q has role %s, want %s: %w", id, rec.cert.Role, want, ErrRoleMismatch)
	}
	return nil
}

// Linked reports whether provider p is linked with collector c, the
// check the paper's verify() applies to collector uploads.
func (m *Manager) Linked(p, c NodeID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.links[p][c]
}

// CollectorsOf returns the sorted collectors linked with provider p.
func (m *Manager) CollectorsOf(p NodeID) []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return sortedKeys(m.links[p])
}

// ProvidersOf returns the sorted providers linked with collector c.
func (m *Manager) ProvidersOf(c NodeID) []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return sortedKeys(m.rlinks[c])
}

func sortedKeys(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
