package identity

import (
	"errors"
	"testing"
)

func TestModuloPartitionBalanced(t *testing.T) {
	p, err := NewPartition(8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Committees() != 4 {
		t.Fatalf("committees = %d, want 4", p.Committees())
	}
	for i := 0; i < 4; i++ {
		ms := p.Members(i)
		if len(ms) != 2 {
			t.Fatalf("committee %d has %d members, want 2", i, len(ms))
		}
		want := []int{i, i + 4}
		for j, k := range ms {
			if k != want[j] {
				t.Fatalf("committee %d members = %v, want %v", i, ms, want)
			}
		}
	}
}

func TestPartitionHomeGlobalRoundTrip(t *testing.T) {
	p, err := NewPartition(10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		slot, ok := p.Home(k)
		if !ok {
			t.Fatalf("Home(%d) not found", k)
		}
		if slot.Committee != k%3 {
			t.Fatalf("Home(%d).Committee = %d, want %d", k, slot.Committee, k%3)
		}
		back, ok := p.Global(slot.Committee, slot.Local)
		if !ok || back != k {
			t.Fatalf("Global(%d, %d) = %d, %v; want %d", slot.Committee, slot.Local, back, ok, k)
		}
	}
	if _, ok := p.Home(-1); ok {
		t.Fatal("Home(-1) should not resolve")
	}
	if _, ok := p.Home(10); ok {
		t.Fatal("Home(10) should not resolve")
	}
	if _, ok := p.Global(3, 0); ok {
		t.Fatal("Global(3, 0) should not resolve")
	}
	if _, ok := p.Global(0, 99); ok {
		t.Fatal("Global(0, 99) should not resolve")
	}
}

func TestPartitionLocalIndicesAscending(t *testing.T) {
	// A custom partition that reverses the modulo assignment still
	// assigns local indices by ascending global index.
	rev := func(k, committees int) int { return (committees - 1) - k%committees }
	p, err := NewPartition(6, 2, rev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ms := p.Members(i)
		for j := 1; j < len(ms); j++ {
			if ms[j] <= ms[j-1] {
				t.Fatalf("committee %d members not ascending: %v", i, ms)
			}
		}
		for local, k := range ms {
			slot, _ := p.Home(k)
			if slot.Local != local {
				t.Fatalf("provider %d local = %d, want %d", k, slot.Local, local)
			}
		}
	}
}

func TestPartitionRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name       string
		providers  int
		committees int
		fn         PartitionFunc
	}{
		{"no providers", 0, 1, nil},
		{"no committees", 4, 0, nil},
		{"out of range", 4, 2, func(k, committees int) int { return committees }},
		{"negative", 4, 2, func(k, committees int) int { return -1 }},
		{"empty committee", 4, 2, func(k, committees int) int { return 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPartition(tc.providers, tc.committees, tc.fn); !errors.Is(err, ErrBadTopology) {
				t.Fatalf("err = %v, want ErrBadTopology", err)
			}
		})
	}
}
