package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		v    uint64
	}{
		{"zero", 0},
		{"one", 1},
		{"seven bits", 127},
		{"eight bits", 128},
		{"large", 1<<40 + 12345},
		{"max", math.MaxUint64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(16)
			e.PutUvarint(tt.v)
			d := NewDecoder(e.Bytes())
			got, err := d.Uvarint()
			if err != nil {
				t.Fatalf("Uvarint() error = %v", err)
			}
			if got != tt.v {
				t.Fatalf("Uvarint() = %d, want %d", got, tt.v)
			}
			if err := d.Expect(); err != nil {
				t.Fatalf("Expect() error = %v", err)
			}
		})
	}
}

func TestVarintRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		v    int64
	}{
		{"zero", 0},
		{"positive", 42},
		{"negative", -42},
		{"min", math.MinInt64},
		{"max", math.MaxInt64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(16)
			e.PutVarint(tt.v)
			got, err := NewDecoder(e.Bytes()).Varint()
			if err != nil {
				t.Fatalf("Varint() error = %v", err)
			}
			if got != tt.v {
				t.Fatalf("Varint() = %d, want %d", got, tt.v)
			}
		})
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		e := NewEncoder(1)
		e.PutBool(v)
		got, err := NewDecoder(e.Bytes()).Bool()
		if err != nil {
			t.Fatalf("Bool() error = %v", err)
		}
		if got != v {
			t.Fatalf("Bool() = %v, want %v", got, v)
		}
	}
}

func TestBoolRejectsOtherBytes(t *testing.T) {
	_, err := NewDecoder([]byte{7}).Bool()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Bool() error = %v, want ErrCorrupt", err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	tests := []struct {
		name string
		v    float64
	}{
		{"zero", 0},
		{"negzero", math.Copysign(0, -1)},
		{"pi", math.Pi},
		{"inf", math.Inf(1)},
		{"neginf", math.Inf(-1)},
		{"tiny", math.SmallestNonzeroFloat64},
		{"huge", math.MaxFloat64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(8)
			e.PutFloat64(tt.v)
			got, err := NewDecoder(e.Bytes()).Float64()
			if err != nil {
				t.Fatalf("Float64() error = %v", err)
			}
			if math.Float64bits(got) != math.Float64bits(tt.v) {
				t.Fatalf("Float64() = %v, want %v", got, tt.v)
			}
		})
	}
}

func TestFloat64NaNCanonical(t *testing.T) {
	a, b := NewEncoder(8), NewEncoder(8)
	a.PutFloat64(math.NaN())
	b.PutFloat64(math.Float64frombits(0x7FF8000000000001)) // another NaN payload
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("NaN encodings differ; must be canonical")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		v    []byte
	}{
		{"empty", []byte{}},
		{"short", []byte("hello")},
		{"binary", []byte{0, 1, 2, 0xff, 0xfe}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(0)
			e.PutBytes(tt.v)
			got, err := NewDecoder(e.Bytes()).Bytes()
			if err != nil {
				t.Fatalf("Bytes() error = %v", err)
			}
			if !bytes.Equal(got, tt.v) {
				t.Fatalf("Bytes() = %x, want %x", got, tt.v)
			}
		})
	}
}

func TestBytesIsACopy(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte("abc"))
	buf := e.Bytes()
	got, err := NewDecoder(buf).Bytes()
	if err != nil {
		t.Fatalf("Bytes() error = %v", err)
	}
	buf[len(buf)-1] = 'z'
	if string(got) != "abc" {
		t.Fatalf("decoded slice aliases input: %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("héllo, 世界")
	got, err := NewDecoder(e.Bytes()).String()
	if err != nil {
		t.Fatalf("String() error = %v", err)
	}
	if got != "héllo, 世界" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTruncatedInputs(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("some payload")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.String(); err == nil {
			t.Fatalf("String() on %d-byte prefix succeeded, want error", cut)
		}
	}
}

func TestLengthLimit(t *testing.T) {
	e := NewEncoder(0)
	e.PutUvarint(MaxLen + 1)
	_, err := NewDecoder(e.Bytes()).Bytes()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Bytes() error = %v, want ErrTooLarge", err)
	}
}

func TestLengthPrefixBeyondInput(t *testing.T) {
	e := NewEncoder(0)
	e.PutUvarint(1000) // claims 1000 bytes follow; none do
	_, err := NewDecoder(e.Bytes()).Bytes()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Bytes() error = %v, want ErrTruncated", err)
	}
}

func TestRawRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutRaw([]byte{9, 8, 7})
	got, err := NewDecoder(e.Bytes()).Raw(3)
	if err != nil {
		t.Fatalf("Raw() error = %v", err)
	}
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Raw() = %v", got)
	}
}

func TestRawNegative(t *testing.T) {
	_, err := NewDecoder([]byte{1}).Raw(-1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Raw(-1) error = %v, want ErrCorrupt", err)
	}
}

func TestExpectTrailing(t *testing.T) {
	d := NewDecoder([]byte{0, 1, 2})
	if _, err := d.Bool(); err != nil {
		t.Fatalf("Bool() error = %v", err)
	}
	if err := d.Expect(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Expect() error = %v, want ErrCorrupt", err)
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("first")
	e.Reset()
	e.PutString("x")
	got, err := NewDecoder(e.Bytes()).String()
	if err != nil || got != "x" {
		t.Fatalf("after Reset: got %q, %v", got, err)
	}
}

// TestQuickMixedRoundTrip drives a property: any sequence of fields
// encodes and decodes to identical values.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, b bool, fl float64, bs []byte, s string) bool {
		e := NewEncoder(0)
		e.PutUvarint(u)
		e.PutVarint(i)
		e.PutBool(b)
		e.PutFloat64(fl)
		e.PutBytes(bs)
		e.PutString(s)

		d := NewDecoder(e.Bytes())
		gu, err := d.Uvarint()
		if err != nil || gu != u {
			return false
		}
		gi, err := d.Varint()
		if err != nil || gi != i {
			return false
		}
		gb, err := d.Bool()
		if err != nil || gb != b {
			return false
		}
		gf, err := d.Float64()
		if err != nil {
			return false
		}
		if fl == fl && math.Float64bits(gf) != math.Float64bits(fl) {
			return false
		}
		gbs, err := d.Bytes()
		if err != nil || !bytes.Equal(gbs, bs) {
			return false
		}
		gs, err := d.String()
		if err != nil || gs != s {
			return false
		}
		return d.Expect() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism drives the core property the package exists for:
// encoding the same values twice yields identical bytes.
func TestQuickDeterminism(t *testing.T) {
	f := func(u uint64, s string, bs []byte) bool {
		enc := func() []byte {
			e := NewEncoder(0)
			e.PutUvarint(u)
			e.PutString(s)
			e.PutBytes(bs)
			out := make([]byte, e.Len())
			copy(out, e.Bytes())
			return out
		}
		return bytes.Equal(enc(), enc())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
