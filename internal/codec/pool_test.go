package codec

import (
	"bytes"
	"math"
	"testing"
)

func TestNewEncoderNegativeSizeHint(t *testing.T) {
	e := NewEncoder(-64)
	e.PutUvarint(42)
	d := NewDecoder(e.Bytes())
	if v, err := d.Uvarint(); err != nil || v != 42 {
		t.Fatalf("got %d, %v", v, err)
	}
}

// TestVarintExtremes round-trips the signed boundary values through
// every path (heap encoder, Wrap, AppendTo).
func TestVarintExtremes(t *testing.T) {
	values := []int64{
		0, 1, -1, 63, 64, -64, -65,
		math.MaxInt32, math.MinInt32,
		math.MaxInt64, math.MaxInt64 - 1,
		math.MinInt64, math.MinInt64 + 1,
	}
	e := NewEncoder(0)
	for _, v := range values {
		e.PutVarint(v)
	}
	w := Wrap(nil)
	for _, v := range values {
		w.PutVarint(v)
	}
	if !bytes.Equal(e.Bytes(), w.Bytes()) {
		t.Fatal("Wrap encoding differs from NewEncoder encoding")
	}
	if out := e.AppendTo([]byte{0xFF}); !bytes.Equal(out[1:], e.Bytes()) || out[0] != 0xFF {
		t.Fatal("AppendTo did not append a faithful copy")
	}
	d := NewDecoder(e.Bytes())
	for i, v := range values {
		got, err := d.Varint()
		if err != nil {
			t.Fatalf("value %d (%d): %v", i, v, err)
		}
		if got != v {
			t.Fatalf("value %d: got %d, want %d", i, got, v)
		}
	}
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintExtremes(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64, math.MaxUint64 - 1}
	e := NewEncoder(0)
	for _, v := range values {
		e.PutUvarint(v)
	}
	d := NewDecoder(e.Bytes())
	for i, v := range values {
		got, err := d.Uvarint()
		if err != nil {
			t.Fatalf("value %d (%d): %v", i, v, err)
		}
		if got != v {
			t.Fatalf("value %d: got %d, want %d", i, got, v)
		}
	}
}

// TestStrictPrefixTruncation checks that every strict prefix of a
// mixed encoding fails cleanly — either an error on some read or a
// non-nil Expect — and never panics or over-reads.
func TestStrictPrefixTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.PutVarint(math.MinInt64)
	e.PutUvarint(math.MaxUint64)
	e.PutBytes([]byte("payload"))
	e.PutString("str")
	e.PutBool(true)
	e.PutFloat64(-math.MaxFloat64)
	e.PutRaw([]byte{1, 2, 3, 4})
	full := e.Bytes()

	decodeAll := func(d *Decoder) error {
		if _, err := d.Varint(); err != nil {
			return err
		}
		if _, err := d.Uvarint(); err != nil {
			return err
		}
		if _, err := d.Bytes(); err != nil {
			return err
		}
		if _, err := d.String(); err != nil {
			return err
		}
		if _, err := d.Bool(); err != nil {
			return err
		}
		if _, err := d.Float64(); err != nil {
			return err
		}
		if _, err := d.Raw(4); err != nil {
			return err
		}
		return d.Expect()
	}
	if err := decodeAll(NewDecoder(full)); err != nil {
		t.Fatalf("full decode: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		if err := decodeAll(NewDecoder(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestBytesLengthOffByOne checks the one-too-short and one-too-long
// length-prefix edges.
func TestBytesLengthOffByOne(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes(make([]byte, 16))
	buf := append([]byte(nil), e.Bytes()...)

	// One byte short of the declared length.
	if _, err := NewDecoder(buf[:len(buf)-1]).Bytes(); err == nil {
		t.Fatal("short payload decoded")
	}
	// Length prefix one larger than the payload carried.
	buf[0]++ // single-byte uvarint 16 -> 17
	if _, err := NewDecoder(buf).Bytes(); err == nil {
		t.Fatal("over-declared length decoded")
	}
}

func TestDecoderRemaining(t *testing.T) {
	e := NewEncoder(0)
	e.PutUvarint(1)
	e.PutRaw([]byte{9, 9, 9})
	d := NewDecoder(e.Bytes())
	if got := d.Remaining(); got != e.Len() {
		t.Fatalf("fresh Remaining %d, want %d", got, e.Len())
	}
	if _, err := d.Uvarint(); err != nil {
		t.Fatal(err)
	}
	if got := d.Remaining(); got != 3 {
		t.Fatalf("Remaining %d after uvarint, want 3", got)
	}
	if _, err := d.Raw(3); err != nil {
		t.Fatal(err)
	}
	if got := d.Remaining(); got != 0 {
		t.Fatalf("Remaining %d at end, want 0", got)
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder(64)
	e.PutString("first use")
	first := e.AppendTo(nil)
	e.Release()

	f := GetEncoder(64)
	if f.Len() != 0 {
		t.Fatalf("pooled encoder not truncated: len %d", f.Len())
	}
	f.PutString("first use")
	if !bytes.Equal(f.AppendTo(nil), first) {
		t.Fatal("pooled encoder produced different bytes")
	}
	f.Release()

	s := EncoderPoolStats()
	if s.Gets < 2 || s.Puts < 2 {
		t.Fatalf("pool stats %+v, want at least 2 gets and 2 puts", s)
	}
}

func TestReleaseNilIsSafe(t *testing.T) {
	var e *Encoder
	e.Release() // must not panic
}

func TestReleaseDropsOversizedBuffers(t *testing.T) {
	e := GetEncoder(0)
	e.PutRaw(make([]byte, 4<<20)) // beyond maxPooledEncoderCap
	e.Release()
	f := GetEncoder(0)
	defer f.Release()
	if cap(f.buf) > maxPooledEncoderCap {
		t.Fatalf("oversized buffer (cap %d) returned to pool", cap(f.buf))
	}
}

// TestWrapAppendsToDst checks Wrap's append-in-place contract.
func TestWrapAppendsToDst(t *testing.T) {
	dst := make([]byte, 0, 64)
	w := Wrap(dst)
	w.PutString("abc")
	out := w.Bytes()
	if len(out) == 0 || &out[0] != &dst[:1][0] {
		t.Fatal("Wrap did not append into the caller's buffer")
	}
}

// TestEncodeNoAllocsSteadyState pins the zero-allocation contract of
// the reused-encoder encode path. The buffer is an explicitly reused
// value (never sync.Pool — GC may empty pools mid-test).
func TestEncodeNoAllocsSteadyState(t *testing.T) {
	e := NewEncoder(512)
	payload := bytes.Repeat([]byte{7}, 64)
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		e.PutUvarint(math.MaxUint64)
		e.PutVarint(math.MinInt64)
		e.PutBytes(payload)
		e.PutString("steady-state")
		e.PutBool(true)
		e.PutFloat64(3.25)
	})
	if allocs != 0 {
		t.Fatalf("encode path allocated %v times per run, want 0", allocs)
	}
}
