// Package codec implements a deterministic binary encoding used for
// hashing and signing protocol messages.
//
// Determinism matters: two nodes must derive the identical byte string
// for the same logical value, or signatures and block hashes diverge.
// Go's encoding/json does not guarantee map ordering and encoding/gob
// embeds type metadata that can vary with registration order, so the
// protocol encodes every signed or hashed structure through this
// package instead.
//
// The format is a simple length-prefixed concatenation:
//
//   - unsigned integers: unsigned varint (base-128, little-endian groups)
//   - signed integers: zig-zag mapped, then varint
//   - byte slices and strings: varint length followed by raw bytes
//   - booleans: a single 0x00 or 0x01 byte
//   - float64: IEEE-754 bits as a fixed 8-byte big-endian word
//
// Encoders never fail; decoders validate lengths and report
// ErrCorrupt or ErrTruncated on malformed input.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Sentinel decoding errors. Callers match these with errors.Is.
var (
	// ErrTruncated reports that the buffer ended before the value did.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrCorrupt reports a structurally invalid encoding, for example a
	// varint longer than ten bytes or a length prefix exceeding the
	// remaining input.
	ErrCorrupt = errors.New("codec: corrupt input")
	// ErrTooLarge reports a length prefix above MaxLen.
	ErrTooLarge = errors.New("codec: length exceeds limit")
)

// MaxLen bounds any single length-prefixed field. It protects decoders
// from hostile length prefixes that would otherwise drive huge
// allocations.
const MaxLen = 1 << 26 // 64 MiB

// Encoder accumulates a deterministic byte encoding. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer. The returned slice aliases the
// encoder's internal storage; callers that keep it past the next Put
// call must copy it.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the accumulated encoding but keeps the allocation.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Wrap returns an encoder that appends to dst, reusing its backing
// array. Unlike GetEncoder it involves no pool and the returned value
// can live on the caller's stack, so hot paths that already own a
// scratch buffer encode with zero heap allocations:
//
//	e := codec.Wrap(buf[:0])
//	v.Encode(&e)
//	buf = e.Bytes()
//
// The encoder owns dst until Bytes is read back; dst must not be used
// while encoding is in progress.
func Wrap(dst []byte) Encoder { return Encoder{buf: dst} }

// AppendTo appends the encoded bytes accumulated so far to dst and
// returns the extended slice. It never aliases the encoder's internal
// storage, so the result stays valid after Release or further Puts.
func (e *Encoder) AppendTo(dst []byte) []byte {
	return append(dst, e.buf...)
}

// Pooled encoders. Marshal sites on the drain→screen→pack hot path run
// once per transaction per node; allocating a fresh buffer each time
// dominated the allocation profile (DESIGN.md §4f). GetEncoder/Release
// recycle buffers through a sync.Pool instead.
//
// Ownership rule: the caller owns the encoder from GetEncoder until
// Release and must not touch the encoder, or any slice obtained from
// Bytes, after Release. Data that outlives the encoder must be copied
// out first (AppendTo does this).

const (
	// pooledEncoderCap is the initial capacity of pool-fresh encoders,
	// sized for typical signed-transaction encodings.
	pooledEncoderCap = 512
	// maxPooledEncoderCap bounds the buffer capacity returned to the
	// pool so one huge message cannot pin a huge buffer forever.
	maxPooledEncoderCap = 1 << 20
)

var (
	poolGets   atomic.Int64
	poolPuts   atomic.Int64
	poolMisses atomic.Int64

	encoderPool = sync.Pool{New: func() any {
		poolMisses.Add(1)
		return &Encoder{buf: make([]byte, 0, pooledEncoderCap)}
	}}
)

// GetEncoder returns an empty pooled encoder with at least sizeHint
// bytes of capacity. Pass it back to Release when done.
func GetEncoder(sizeHint int) *Encoder {
	poolGets.Add(1)
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	if sizeHint > cap(e.buf) {
		e.buf = make([]byte, 0, sizeHint)
	}
	return e
}

// Release returns a pooled encoder for reuse. The encoder and any
// slice previously returned by Bytes must not be used afterwards.
// Oversized buffers are shrunk so the pool holds only hot-path-sized
// allocations.
func (e *Encoder) Release() {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledEncoderCap {
		e.buf = make([]byte, 0, pooledEncoderCap)
	}
	e.buf = e.buf[:0]
	poolPuts.Add(1)
	encoderPool.Put(e)
}

// PoolStats is a snapshot of the pooled-encoder counters, exported as
// the codec.pool_* gauges.
type PoolStats struct {
	// Gets counts GetEncoder calls.
	Gets int64
	// Puts counts Release calls.
	Puts int64
	// Misses counts pool misses that allocated a fresh encoder.
	Misses int64
}

// EncoderPoolStats returns the cumulative pooled-encoder counters.
func EncoderPoolStats() PoolStats {
	return PoolStats{
		Gets:   poolGets.Load(),
		Puts:   poolPuts.Load(),
		Misses: poolMisses.Load(),
	}
}

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutVarint appends a zig-zag signed varint.
func (e *Encoder) PutVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutUint64 appends v as an unsigned varint. Convenience alias used by
// message encoders for readability.
func (e *Encoder) PutUint64(v uint64) { e.PutUvarint(v) }

// PutInt appends v as a signed varint.
func (e *Encoder) PutInt(v int) { e.PutVarint(int64(v)) }

// PutBool appends a single boolean byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutFloat64 appends the IEEE-754 bit pattern of v as 8 big-endian
// bytes. NaNs are canonicalized so equal logical values encode equally.
func (e *Encoder) PutFloat64(v float64) {
	bits := math.Float64bits(v)
	if v != v { // canonical NaN
		bits = 0x7FF8000000000000
	}
	e.buf = binary.BigEndian.AppendUint64(e.buf, bits)
}

// PutBytes appends a varint length prefix followed by b.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a varint length prefix followed by the bytes of s.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutRaw appends b with no length prefix. Use only for fixed-width
// fields whose size both sides know statically.
func (e *Encoder) PutRaw(b []byte) {
	e.buf = append(e.buf, b...)
}

// Decoder consumes a deterministic byte encoding produced by Encoder.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done reports whether the input has been fully consumed.
func (d *Decoder) Done() bool { return d.off >= len(d.buf) }

// Uvarint decodes an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v, nil
	case n == 0:
		return 0, ErrTruncated
	default:
		return 0, fmt.Errorf("varint overflow at offset %d: %w", d.off, ErrCorrupt)
	}
}

// Varint decodes a zig-zag signed varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v, nil
	case n == 0:
		return 0, ErrTruncated
	default:
		return 0, fmt.Errorf("varint overflow at offset %d: %w", d.off, ErrCorrupt)
	}
}

// Uint64 decodes an unsigned varint. Convenience alias mirroring
// Encoder.PutUint64.
func (d *Decoder) Uint64() (uint64, error) { return d.Uvarint() }

// Int decodes a signed varint into an int.
func (d *Decoder) Int() (int, error) {
	v, err := d.Varint()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// Bool decodes a single boolean byte.
func (d *Decoder) Bool() (bool, error) {
	if d.Remaining() < 1 {
		return false, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("boolean byte %#x: %w", b, ErrCorrupt)
	}
}

// Float64 decodes a fixed 8-byte IEEE-754 value.
func (d *Decoder) Float64() (float64, error) {
	if d.Remaining() < 8 {
		return 0, ErrTruncated
	}
	bits := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

// Bytes decodes a length-prefixed byte slice. The result is a copy and
// safe to retain.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxLen {
		return nil, fmt.Errorf("length %d: %w", n, ErrTooLarge)
	}
	if uint64(d.Remaining()) < n {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out, nil
}

// String decodes a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Raw decodes n bytes with no length prefix. The result is a copy.
func (d *Decoder) Raw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative length %d: %w", n, ErrCorrupt)
	}
	if d.Remaining() < n {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out, nil
}

// Expect verifies that the input is fully consumed, returning ErrCorrupt
// with the number of trailing bytes otherwise. Message decoders call it
// last to reject padded or concatenated inputs.
func (d *Decoder) Expect() error {
	if rem := d.Remaining(); rem != 0 {
		return fmt.Errorf("%d trailing bytes: %w", rem, ErrCorrupt)
	}
	return nil
}
