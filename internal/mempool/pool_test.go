package mempool

import (
	"errors"
	"testing"
)

func TestDrainShardSeqOrder(t *testing.T) {
	p := New[int](4, 0)
	// Interleave keys so arrival order differs from (shard, seq) order.
	for i, key := range []int{3, 0, 1, 0, 2, 3, 1, 0} {
		if _, err := p.Add(key, i); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Drain(0)
	// shard 0 gets arrivals 1, 3, 7; shard 1 gets 2, 6; shard 2 gets 4;
	// shard 3 gets 0, 5.
	want := []int{1, 3, 7, 2, 6, 4, 0, 5}
	if len(got) != len(want) {
		t.Fatalf("Drain returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain order %v, want %v", got, want)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len() = %d after full drain", p.Len())
	}
}

func TestDrainCapLeavesTail(t *testing.T) {
	p := New[int](2, 0)
	for i := 0; i < 6; i++ {
		if _, err := p.Add(i%2, i); err != nil {
			t.Fatal(err)
		}
	}
	first := p.Drain(4)
	// (shard, seq): shard 0 holds 0,2,4; shard 1 holds 1,3,5.
	want := []int{0, 2, 4, 1}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("capped drain %v, want %v", first, want)
		}
	}
	if p.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", p.Len())
	}
	second := p.Drain(0)
	if second[0] != 3 || second[1] != 5 {
		t.Fatalf("second drain %v, want [3 5]", second)
	}
}

func TestBoundedShardRejects(t *testing.T) {
	p := New[string](2, 2)
	for i := 0; i < 2; i++ {
		if _, err := p.Add(0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if p.HasRoom(0) {
		t.Fatal("HasRoom on a full shard")
	}
	if _, err := p.Add(0, "overflow"); !errors.Is(err, ErrShardFull) {
		t.Fatalf("Add to full shard = %v, want ErrShardFull", err)
	}
	// The sibling shard is unaffected.
	if !p.HasRoom(1) {
		t.Fatal("sibling shard reported full")
	}
	if _, err := p.Add(1, "ok"); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", p.Len())
	}
}

func TestEvictOldest(t *testing.T) {
	p := New[int](2, 2)
	for _, v := range []int{10, 20} {
		if _, err := p.Add(0, v); err != nil {
			t.Fatal(err)
		}
	}
	old, ok := p.EvictOldest(0)
	if !ok || old != 10 {
		t.Fatalf("EvictOldest = (%d, %v), want (10, true)", old, ok)
	}
	if _, err := p.Add(0, 30); err != nil {
		t.Fatalf("Add after evict: %v", err)
	}
	got := p.Drain(0)
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("Drain = %v, want [20 30]", got)
	}
	if _, ok := p.EvictOldest(0); ok {
		t.Fatal("EvictOldest on empty shard reported true")
	}
}

func TestNegativeKeysAndDegenerateConfig(t *testing.T) {
	p := New[int](0, -1) // clamps to 1 unbounded shard
	if p.Shards() != 1 || p.Cap() != 0 {
		t.Fatalf("Shards() = %d, Cap() = %d, want 1, 0", p.Shards(), p.Cap())
	}
	for i, key := range []int{-3, 5, -1} {
		if _, err := p.Add(key, i); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Drain(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("single-shard drain %v, want FIFO", got)
		}
	}
}

func TestSeqMonotone(t *testing.T) {
	p := New[int](3, 0)
	var last uint64
	for i := 0; i < 9; i++ {
		seq, err := p.Add(i, i)
		if err != nil {
			t.Fatal(err)
		}
		if seq <= last {
			t.Fatalf("seq %d after %d: not monotone", seq, last)
		}
		last = seq
	}
	p.Drain(4)
	seq, err := p.Add(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if seq <= last {
		t.Fatal("seq restarted after drain")
	}
}
