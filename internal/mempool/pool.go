// Package mempool provides the sharded ingestion queue in front of the
// round pipeline. A Pool partitions entries by a caller-supplied key
// (provider index) into a fixed number of shards, each a bounded FIFO,
// and drains them in strict (shard, seq) order: shard 0's entries in
// arrival order, then shard 1's, and so on. Because the drain order is
// a pure function of the Add call sequence — never of goroutine
// schedule, map iteration, or time — a pool-fed pipeline stays
// byte-identical at any worker count.
//
// The pool is deliberately policy-free: it reports overflow via
// ErrShardFull and exposes EvictOldest, leaving shed/evict/backpressure
// decisions (and their metrics) to the caller. RepChain-sharding
// (arXiv:1901.05741) motivates the partitioning; admission policy on
// top of it lives in the governor (see node.GovernorConfig).
package mempool

import (
	"errors"
	"fmt"
)

// ErrShardFull reports an Add to a bounded shard at capacity. Callers
// decide the policy: reject (backpressure) or EvictOldest and retry.
var ErrShardFull = errors.New("mempool: shard full")

// item is one queued entry: the value plus its pool-wide arrival
// sequence number, which makes drain order auditable in tests.
type item[T any] struct {
	seq uint64
	val T
}

// Pool is a sharded FIFO. Not safe for concurrent use: the engine and
// governors drive their pools single-threaded, which is also what
// determinism requires.
type Pool[T any] struct {
	shards [][]item[T]
	cap    int // per-shard bound; 0 = unbounded
	seq    uint64
	length int
}

// New creates a pool with the given shard count and per-shard capacity
// (0 = unbounded). Shard counts below 1 are treated as 1, so the
// zero-configuration pool degenerates to a single unbounded FIFO —
// exactly the pre-mempool ingestion behavior.
func New[T any](shards, shardCap int) *Pool[T] {
	if shards < 1 {
		shards = 1
	}
	if shardCap < 0 {
		shardCap = 0
	}
	return &Pool[T]{shards: make([][]item[T], shards), cap: shardCap}
}

// Shards returns the shard count.
func (p *Pool[T]) Shards() int { return len(p.shards) }

// Cap returns the per-shard capacity (0 = unbounded).
func (p *Pool[T]) Cap() int { return p.cap }

// shardOf maps a key to its shard, tolerating negative keys.
func (p *Pool[T]) shardOf(key int) int {
	n := len(p.shards)
	return ((key % n) + n) % n
}

// HasRoom reports whether key's shard can take one more entry.
func (p *Pool[T]) HasRoom(key int) bool {
	return p.cap == 0 || len(p.shards[p.shardOf(key)]) < p.cap
}

// Add appends v to key's shard and returns its arrival sequence
// number. A bounded shard at capacity fails with ErrShardFull and
// leaves the pool unchanged.
func (p *Pool[T]) Add(key int, v T) (uint64, error) {
	s := p.shardOf(key)
	if p.cap != 0 && len(p.shards[s]) >= p.cap {
		return 0, fmt.Errorf("shard %d at %d: %w", s, p.cap, ErrShardFull)
	}
	p.seq++
	p.shards[s] = append(p.shards[s], item[T]{seq: p.seq, val: v})
	p.length++
	return p.seq, nil
}

// Len returns the total queued entries across all shards.
func (p *Pool[T]) Len() int { return p.length }

// ShardLen returns the queue depth of key's shard.
func (p *Pool[T]) ShardLen(key int) int { return len(p.shards[p.shardOf(key)]) }

// Drain removes and returns up to max entries in (shard, seq) order —
// all of shard 0's backlog (oldest first), then shard 1's, and so on.
// max <= 0 drains everything. The strict order favors determinism over
// cross-shard fairness; a capped drain leaves later shards queued for
// the next call, which rotates naturally as earlier shards empty.
func (p *Pool[T]) Drain(max int) []T {
	if max <= 0 || max > p.length {
		max = p.length
	}
	out := make([]T, 0, max)
	for s := range p.shards {
		if len(out) == max {
			break
		}
		take := max - len(out)
		if take > len(p.shards[s]) {
			take = len(p.shards[s])
		}
		for _, it := range p.shards[s][:take] {
			out = append(out, it.val)
		}
		rest := p.shards[s][take:]
		if len(rest) == 0 {
			p.shards[s] = nil
		} else {
			p.shards[s] = append([]item[T](nil), rest...)
		}
	}
	p.length -= len(out)
	return out
}

// EvictOldest removes and returns the oldest entry of key's shard,
// reporting false when the shard is empty. Callers use it to implement
// evict-oldest overflow policies on top of ErrShardFull.
func (p *Pool[T]) EvictOldest(key int) (T, bool) {
	s := p.shardOf(key)
	var zero T
	if len(p.shards[s]) == 0 {
		return zero, false
	}
	v := p.shards[s][0].val
	rest := p.shards[s][1:]
	if len(rest) == 0 {
		p.shards[s] = nil
	} else {
		p.shards[s] = append([]item[T](nil), rest...)
	}
	p.length--
	return v, true
}
