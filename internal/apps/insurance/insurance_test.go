package insurance

import (
	"errors"
	"testing"
	"testing/quick"

	"repchain/internal/tx"
)

func eligibleApp() Application {
	return Application{
		Applicant:         "bob",
		Age:               35,
		Smoker:            false,
		AnnualIncomeCents: 6_000_000,
		CoverageCents:     50_000_000,
		Conditions:        []string{"mild-asthma"},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := eligibleApp()
	got, err := Decode(a.Encode())
	if err != nil {
		t.Fatalf("Decode() error = %v", err)
	}
	if got.Applicant != a.Applicant || got.Age != a.Age || got.Smoker != a.Smoker ||
		got.AnnualIncomeCents != a.AnnualIncomeCents || got.CoverageCents != a.CoverageCents ||
		len(got.Conditions) != 1 || got.Conditions[0] != "mild-asthma" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("x")); !errors.Is(err, ErrDecode) {
		t.Fatalf("error = %v, want ErrDecode", err)
	}
	b := append(eligibleApp().Encode(), 9)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(name string, age uint8, smoker bool, income, coverage int64, conds []string) bool {
		if len(conds) > 64 {
			conds = conds[:64]
		}
		a := Application{
			Applicant:         name,
			Age:               int(age),
			Smoker:            smoker,
			AnnualIncomeCents: income,
			CoverageCents:     coverage,
			Conditions:        conds,
		}
		got, err := Decode(a.Encode())
		if err != nil {
			return false
		}
		if got.Applicant != a.Applicant || got.Age != a.Age || len(got.Conditions) != len(a.Conditions) {
			return false
		}
		for i := range conds {
			if got.Conditions[i] != conds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEligibility(t *testing.T) {
	p := DefaultPolicy()
	tests := []struct {
		name   string
		mutate func(*Application)
		want   bool
	}{
		{"eligible", func(*Application) {}, true},
		{"no name", func(a *Application) { a.Applicant = "" }, false},
		{"too young", func(a *Application) { a.Age = 17 }, false},
		{"too old", func(a *Application) { a.Age = 76 }, false},
		{"old smoker", func(a *Application) { a.Age = 70; a.Smoker = true }, false},
		{"young smoker ok", func(a *Application) { a.Smoker = true }, true},
		{"zero income", func(a *Application) { a.AnnualIncomeCents = 0 }, false},
		{"zero coverage", func(a *Application) { a.CoverageCents = 0 }, false},
		{"over-covered", func(a *Application) { a.CoverageCents = a.AnnualIncomeCents * 21 }, false},
		{"disqualifying condition", func(a *Application) {
			a.Conditions = append(a.Conditions, "terminal-illness")
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := eligibleApp()
			tt.mutate(&a)
			if got := p.Eligible(a); got != tt.want {
				t.Fatalf("Eligible(%+v) = %v, want %v", a, got, tt.want)
			}
		})
	}
}

func TestValidatorIntegratesWithTx(t *testing.T) {
	p := DefaultPolicy()
	v := p.Validator()
	if !v.Validate(tx.Transaction{Kind: Kind, Payload: eligibleApp().Encode()}) {
		t.Fatal("eligible application rejected")
	}
	if v.Validate(tx.Transaction{Kind: "other", Payload: eligibleApp().Encode()}) {
		t.Fatal("wrong kind accepted")
	}
	bad := eligibleApp()
	bad.Age = 5
	if v.Validate(tx.Transaction{Kind: Kind, Payload: bad.Encode()}) {
		t.Fatal("ineligible application accepted")
	}
}

func TestRiskScoreMonotonicity(t *testing.T) {
	p := DefaultPolicy()
	young := eligibleApp()
	old := eligibleApp()
	old.Age = 60
	if p.RiskScore(old) <= p.RiskScore(young) {
		t.Fatal("risk must increase with age")
	}
	smoker := eligibleApp()
	smoker.Smoker = true
	if p.RiskScore(smoker) <= p.RiskScore(eligibleApp()) {
		t.Fatal("risk must increase for smokers")
	}
	sick := eligibleApp()
	sick.Conditions = append(sick.Conditions, "diabetes")
	if p.RiskScore(sick) <= p.RiskScore(eligibleApp()) {
		t.Fatal("risk must increase with conditions")
	}
}

func TestPremiumScalesWithCoverage(t *testing.T) {
	p := DefaultPolicy()
	small := eligibleApp()
	big := eligibleApp()
	big.CoverageCents = small.CoverageCents * 2
	if p.PremiumCents(big) != 2*p.PremiumCents(small) {
		t.Fatalf("premium not linear in coverage: %d vs %d",
			p.PremiumCents(big), p.PremiumCents(small))
	}
}
