package insurance_test

import (
	"testing"

	"repchain"
	"repchain/internal/apps/insurance"
)

// TestInsuranceOnChain drives the §5.2 scenario through the full
// protocol with a colluding agent: eligible applications commit valid,
// ineligible ones don't, and the colluder's revenue share collapses.
func TestInsuranceOnChain(t *testing.T) {
	policy := insurance.DefaultPolicy()
	chain, err := repchain.New(
		repchain.WithTopology(4, 4, 4),
		repchain.WithGovernors(2),
		repchain.WithValidator(policy.Validator()),
		repchain.WithCollectorBehaviors(
			repchain.CollectorBehavior{Misreport: 1}, // colluding agent
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
			repchain.CollectorBehavior{},
		),
		repchain.WithSeed(22),
	)
	if err != nil {
		t.Fatal(err)
	}

	eligible := insurance.Application{
		Applicant: "ok", Age: 30, AnnualIncomeCents: 5_000_000, CoverageCents: 50_000_000,
	}
	tooOld := insurance.Application{
		Applicant: "old", Age: 90, AnnualIncomeCents: 5_000_000, CoverageCents: 50_000_000,
	}
	for round := 0; round < 5; round++ {
		if _, err := chain.Submit(0, insurance.Kind, eligible.Encode(), true); err != nil {
			t.Fatal(err)
		}
		if _, err := chain.Submit(1, insurance.Kind, tooOld.Encode(), false); err != nil {
			t.Fatal(err)
		}
		if _, err := chain.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Drain argues.
	for i := 0; i < 4; i++ {
		if _, err := chain.RunRound(); err != nil {
			t.Fatal(err)
		}
	}

	// Every committed valid record must actually be eligible — the
	// colluding agent's +1 labels on ineligible applications never
	// survive screening.
	for s := uint64(1); s <= chain.Height(); s++ {
		records, err := chain.Block(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range records {
			if !r.Valid {
				continue
			}
			app, err := insurance.Decode(r.Payload)
			if err != nil {
				t.Fatalf("block %d: undecodable committed application: %v", s, err)
			}
			if !policy.Eligible(app) {
				t.Fatalf("block %d: ineligible application %q committed valid", s, app.Applicant)
			}
		}
	}
	// The eligible applicant's transactions all settled.
	if pending := chain.PendingValid(0); pending != 0 {
		t.Fatalf("%d eligible applications unsettled", pending)
	}
	shares, err := chain.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a < 4; a++ {
		if shares[0] >= shares[a] {
			t.Fatalf("colluding agent share %.4f ≥ honest agent %d share %.4f", shares[0], a, shares[a])
		}
	}
}
