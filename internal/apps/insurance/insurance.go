// Package insurance models the paper's §5.2 use case: critical-illness
// insurance sold through independent agents.
//
// Potential policyholders are providers; their application materials
// are transactions signed with their keys. Independent agents are
// collectors who verify the materials and label them ±1. Insurance
// companies are governors who screen a fraction of the applications
// guided by each agent's reputation — an agent who "fills out
// inconsistent information in the survey... would also be found out".
package insurance

import (
	"errors"
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/tx"
)

// Kind is the transaction kind tag for applications.
const Kind = "insurance/application"

// ErrDecode reports a malformed application payload.
var ErrDecode = errors.New("insurance: decode failed")

// Application is a policyholder's submitted material — the transaction
// payload.
type Application struct {
	// Applicant names the potential policyholder.
	Applicant string
	// Age in years.
	Age int
	// Smoker reports tobacco use.
	Smoker bool
	// AnnualIncomeCents is the declared income.
	AnnualIncomeCents int64
	// CoverageCents is the requested coverage amount.
	CoverageCents int64
	// Conditions lists declared pre-existing conditions.
	Conditions []string
}

// Encode returns the canonical payload bytes.
func (a Application) Encode() []byte {
	e := codec.NewEncoder(96)
	e.PutString("insurance/v1")
	e.PutString(a.Applicant)
	e.PutInt(a.Age)
	e.PutBool(a.Smoker)
	e.PutVarint(a.AnnualIncomeCents)
	e.PutVarint(a.CoverageCents)
	e.PutInt(len(a.Conditions))
	for _, c := range a.Conditions {
		e.PutString(c)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Decode parses an application payload.
func Decode(b []byte) (Application, error) {
	d := codec.NewDecoder(b)
	tag, err := d.String()
	if err != nil || tag != "insurance/v1" {
		return Application{}, fmt.Errorf("payload tag: %w", ErrDecode)
	}
	var a Application
	if a.Applicant, err = d.String(); err != nil {
		return Application{}, fmt.Errorf("applicant: %w", err)
	}
	if a.Age, err = d.Int(); err != nil {
		return Application{}, fmt.Errorf("age: %w", err)
	}
	if a.Smoker, err = d.Bool(); err != nil {
		return Application{}, fmt.Errorf("smoker: %w", err)
	}
	if a.AnnualIncomeCents, err = d.Varint(); err != nil {
		return Application{}, fmt.Errorf("income: %w", err)
	}
	if a.CoverageCents, err = d.Varint(); err != nil {
		return Application{}, fmt.Errorf("coverage: %w", err)
	}
	n, err := d.Int()
	if err != nil {
		return Application{}, fmt.Errorf("condition count: %w", err)
	}
	if n < 0 || n > 64 {
		return Application{}, fmt.Errorf("condition count %d: %w", n, ErrDecode)
	}
	for i := 0; i < n; i++ {
		c, err := d.String()
		if err != nil {
			return Application{}, fmt.Errorf("condition %d: %w", i, err)
		}
		a.Conditions = append(a.Conditions, c)
	}
	if err := d.Expect(); err != nil {
		return Application{}, fmt.Errorf("application: %w", err)
	}
	return a, nil
}

// Policy is an insurer's underwriting rulebook.
type Policy struct {
	// MinAge and MaxAge bound insurable ages.
	MinAge, MaxAge int
	// MaxCoverageIncomeRatio caps coverage as a multiple of income.
	MaxCoverageIncomeRatio int64
	// Disqualifying lists conditions that reject an application
	// outright.
	Disqualifying []string
	// MaxSmokerAge: smokers above this age are declined.
	MaxSmokerAge int
}

// DefaultPolicy returns a representative critical-illness rulebook.
func DefaultPolicy() Policy {
	return Policy{
		MinAge:                 18,
		MaxAge:                 75,
		MaxCoverageIncomeRatio: 20,
		Disqualifying:          []string{"terminal-illness", "undisclosed-major-surgery"},
		MaxSmokerAge:           65,
	}
}

// Eligible reports whether an application satisfies the policy.
func (p Policy) Eligible(a Application) bool {
	switch {
	case a.Applicant == "":
		return false
	case a.Age < p.MinAge || a.Age > p.MaxAge:
		return false
	case a.Smoker && a.Age > p.MaxSmokerAge:
		return false
	case a.AnnualIncomeCents <= 0 || a.CoverageCents <= 0:
		return false
	case a.CoverageCents > a.AnnualIncomeCents*p.MaxCoverageIncomeRatio:
		return false
	}
	for _, c := range a.Conditions {
		for _, dq := range p.Disqualifying {
			if c == dq {
				return false
			}
		}
	}
	return true
}

// Validator adapts the policy to the chain's validate(tx) primitive:
// an honest agent labels +1 exactly when the application is eligible.
func (p Policy) Validator() tx.Validator {
	return tx.ValidatorFunc(func(t tx.Transaction) bool {
		if t.Kind != Kind {
			return false
		}
		a, err := Decode(t.Payload)
		if err != nil {
			return false
		}
		return p.Eligible(a)
	})
}

// RiskScore estimates an eligible applicant's annual risk in basis
// points, the quantity insurers price premiums from. It is a
// deliberately simple actuarial toy: age-linear base plus loadings.
func (p Policy) RiskScore(a Application) int {
	score := 20 + 4*a.Age
	if a.Smoker {
		score += score / 2
	}
	score += 150 * len(a.Conditions)
	return score
}

// PremiumCents prices annual premium from the risk score.
func (p Policy) PremiumCents(a Application) int64 {
	return a.CoverageCents * int64(p.RiskScore(a)) / 10_000
}
