// Package carshare models the paper's §5.1 use case: a merged
// car-sharing alliance running on the permissioned chain.
//
// Users are providers whose ride requests and payments are
// transactions; drivers are collectors who label a request +1 when
// they are willing and able to serve it (an unserviceable request —
// unknown zones, non-positive fare, impossible timing — is labeled
// -1); schedulers are governors who assign rides, pack blocks, and
// maintain the shared ledger across the merged platforms.
package carshare

import (
	"errors"
	"fmt"
	"sort"

	"repchain/internal/codec"
	"repchain/internal/tx"
)

// Kind is the transaction kind tag for ride requests.
const Kind = "carshare/ride-request"

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrDecode reports a malformed ride-request payload.
	ErrDecode = errors.New("carshare: decode failed")
	// ErrNoDrivers reports an assignment with no available drivers.
	ErrNoDrivers = errors.New("carshare: no drivers available")
)

// RideRequest is a user's trip order — the transaction payload.
type RideRequest struct {
	// Rider names the requesting user.
	Rider string
	// Origin and Destination are zone names in the alliance's map.
	Origin      string
	Destination string
	// PickupAt is the requested pickup time (Unix seconds or logical
	// ticks).
	PickupAt int64
	// FareCents is the offered fare.
	FareCents int64
}

// Encode returns the canonical payload bytes.
func (r RideRequest) Encode() []byte {
	e := codec.NewEncoder(64)
	e.PutString("carshare/v1")
	e.PutString(r.Rider)
	e.PutString(r.Origin)
	e.PutString(r.Destination)
	e.PutVarint(r.PickupAt)
	e.PutVarint(r.FareCents)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Decode parses a ride-request payload.
func Decode(b []byte) (RideRequest, error) {
	d := codec.NewDecoder(b)
	tag, err := d.String()
	if err != nil || tag != "carshare/v1" {
		return RideRequest{}, fmt.Errorf("payload tag: %w", ErrDecode)
	}
	var r RideRequest
	if r.Rider, err = d.String(); err != nil {
		return RideRequest{}, fmt.Errorf("rider: %w", err)
	}
	if r.Origin, err = d.String(); err != nil {
		return RideRequest{}, fmt.Errorf("origin: %w", err)
	}
	if r.Destination, err = d.String(); err != nil {
		return RideRequest{}, fmt.Errorf("destination: %w", err)
	}
	if r.PickupAt, err = d.Varint(); err != nil {
		return RideRequest{}, fmt.Errorf("pickup: %w", err)
	}
	if r.FareCents, err = d.Varint(); err != nil {
		return RideRequest{}, fmt.Errorf("fare: %w", err)
	}
	if err := d.Expect(); err != nil {
		return RideRequest{}, fmt.Errorf("ride request: %w", err)
	}
	return r, nil
}

// Rules are the alliance's service rules, shared by every driver and
// scheduler.
type Rules struct {
	// Zones are the serviced zone names.
	Zones []string
	// MinFareCents is the lowest acceptable fare.
	MinFareCents int64
	// MaxFareCents guards against fat-finger fares.
	MaxFareCents int64
}

// DefaultRules returns a small city map.
func DefaultRules() Rules {
	return Rules{
		Zones:        []string{"airport", "center", "harbor", "north", "south", "university"},
		MinFareCents: 300,
		MaxFareCents: 50_000,
	}
}

// zoneSet indexes the rules' zones.
func (r Rules) zoneSet() map[string]bool {
	set := make(map[string]bool, len(r.Zones))
	for _, z := range r.Zones {
		set[z] = true
	}
	return set
}

// Valid reports whether a request is serviceable under the rules.
func (r Rules) Valid(req RideRequest) bool {
	zones := r.zoneSet()
	switch {
	case req.Rider == "":
		return false
	case !zones[req.Origin] || !zones[req.Destination]:
		return false
	case req.Origin == req.Destination:
		return false
	case req.FareCents < r.MinFareCents || req.FareCents > r.MaxFareCents:
		return false
	case req.PickupAt < 0:
		return false
	}
	return true
}

// Validator adapts the rules to the chain's validate(tx) primitive: a
// driver (collector) labels +1 exactly when the request is
// serviceable.
func (r Rules) Validator() tx.Validator {
	return tx.ValidatorFunc(func(t tx.Transaction) bool {
		if t.Kind != Kind {
			return false
		}
		req, err := Decode(t.Payload)
		if err != nil {
			return false
		}
		return r.Valid(req)
	})
}

// Driver is a registered driver with a current zone, used by the
// scheduler.
type Driver struct {
	// Name identifies the driver (collector).
	Name string
	// Zone is the driver's current zone.
	Zone string
	// Reputation is the scheduler's revenue share for the driver,
	// taken from the chain's reputation mechanism.
	Reputation float64
}

// Assignment pairs a request with a driver.
type Assignment struct {
	Request RideRequest
	Driver  string
}

// Assign implements the scheduler's decision of §5.1: "decide
// immediately which driver should serve the user according to their
// states, locations, and reputations". Each request goes to the
// highest-reputation free driver, preferring drivers already in the
// pickup zone; unassigned requests are returned for re-dispatch in a
// later round.
func Assign(requests []RideRequest, drivers []Driver) (assigned []Assignment, unassigned []RideRequest, err error) {
	if len(drivers) == 0 {
		return nil, nil, ErrNoDrivers
	}
	free := make([]Driver, len(drivers))
	copy(free, drivers)
	// Deterministic service order: highest fare first (alliance
	// revenue), ties by rider name.
	reqs := make([]RideRequest, len(requests))
	copy(reqs, requests)
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].FareCents != reqs[j].FareCents {
			return reqs[i].FareCents > reqs[j].FareCents
		}
		return reqs[i].Rider < reqs[j].Rider
	})
	for _, req := range reqs {
		best := -1
		for i, drv := range free {
			if best == -1 {
				best = i
				continue
			}
			b := free[best]
			// Prefer same-zone drivers, then higher reputation, then
			// name for determinism.
			reqZone := func(d Driver) int {
				if d.Zone == req.Origin {
					return 1
				}
				return 0
			}
			switch {
			case reqZone(drv) != reqZone(b):
				if reqZone(drv) > reqZone(b) {
					best = i
				}
			case drv.Reputation != b.Reputation:
				if drv.Reputation > b.Reputation {
					best = i
				}
			case drv.Name < b.Name:
				best = i
			}
		}
		if best == -1 {
			unassigned = append(unassigned, req)
			continue
		}
		assigned = append(assigned, Assignment{Request: req, Driver: free[best].Name})
		free = append(free[:best], free[best+1:]...)
		if len(free) == 0 {
			// Remaining requests wait for the next round.
			idx := indexOf(reqs, req)
			unassigned = append(unassigned, reqs[idx+1:]...)
			break
		}
	}
	return assigned, unassigned, nil
}

func indexOf(reqs []RideRequest, target RideRequest) int {
	for i, r := range reqs {
		if r == target {
			return i
		}
	}
	return len(reqs) - 1
}
