package carshare_test

import (
	"testing"

	"repchain"
	"repchain/internal/apps/carshare"
)

// TestCarshareOnChain drives the §5.1 scenario through the full
// protocol: ride requests as transactions, driver labeling via the
// rules validator, scheduler assignment from committed blocks.
func TestCarshareOnChain(t *testing.T) {
	rules := carshare.DefaultRules()
	chain, err := repchain.New(
		repchain.WithTopology(4, 4, 2),
		repchain.WithGovernors(2),
		repchain.WithValidator(rules.Validator()),
		repchain.WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}

	good := carshare.RideRequest{
		Rider: "ana", Origin: "center", Destination: "airport",
		PickupAt: 100, FareCents: 2000,
	}
	bogus := carshare.RideRequest{
		Rider: "bo", Origin: "center", Destination: "center", // same zone
		PickupAt: 100, FareCents: 2000,
	}
	if _, err := chain.Submit(0, carshare.Kind, good.Encode(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Submit(1, carshare.Kind, bogus.Encode(), false); err != nil {
		t.Fatal(err)
	}
	sum, err := chain.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	records, err := chain.Block(sum.Serial)
	if err != nil {
		t.Fatal(err)
	}
	var validReqs []carshare.RideRequest
	for _, r := range records {
		if !r.Valid {
			continue
		}
		req, err := carshare.Decode(r.Payload)
		if err != nil {
			t.Fatalf("committed payload undecodable: %v", err)
		}
		validReqs = append(validReqs, req)
	}
	if len(validReqs) != 1 || validReqs[0].Rider != "ana" {
		t.Fatalf("valid requests = %+v, want only ana's", validReqs)
	}
	// Scheduler assignment from on-chain data.
	assigned, _, err := carshare.Assign(validReqs, []carshare.Driver{
		{Name: "d0", Zone: "center", Reputation: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 1 || assigned[0].Driver != "d0" {
		t.Fatalf("assignment = %+v", assigned)
	}
}
