package carshare

import (
	"errors"
	"testing"
	"testing/quick"

	"repchain/internal/tx"
)

func validRequest() RideRequest {
	return RideRequest{
		Rider:       "alice",
		Origin:      "center",
		Destination: "airport",
		PickupAt:    1000,
		FareCents:   2500,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	req := validRequest()
	got, err := Decode(req.Encode())
	if err != nil {
		t.Fatalf("Decode() error = %v", err)
	}
	if got != req {
		t.Fatalf("round trip = %+v, want %+v", got, req)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("nope")); !errors.Is(err, ErrDecode) {
		t.Fatalf("error = %v, want ErrDecode", err)
	}
	// Trailing bytes rejected.
	b := append(validRequest().Encode(), 0x1)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(rider, o, d string, at, fare int64) bool {
		req := RideRequest{Rider: rider, Origin: o, Destination: d, PickupAt: at, FareCents: fare}
		got, err := Decode(req.Encode())
		return err == nil && got == req
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRulesValid(t *testing.T) {
	rules := DefaultRules()
	tests := []struct {
		name   string
		mutate func(*RideRequest)
		want   bool
	}{
		{"valid", func(*RideRequest) {}, true},
		{"empty rider", func(r *RideRequest) { r.Rider = "" }, false},
		{"unknown origin", func(r *RideRequest) { r.Origin = "atlantis" }, false},
		{"unknown destination", func(r *RideRequest) { r.Destination = "atlantis" }, false},
		{"same zone", func(r *RideRequest) { r.Destination = r.Origin }, false},
		{"fare too low", func(r *RideRequest) { r.FareCents = 1 }, false},
		{"fare too high", func(r *RideRequest) { r.FareCents = 1_000_000 }, false},
		{"negative pickup", func(r *RideRequest) { r.PickupAt = -5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := validRequest()
			tt.mutate(&req)
			if got := rules.Valid(req); got != tt.want {
				t.Fatalf("Valid(%+v) = %v, want %v", req, got, tt.want)
			}
		})
	}
}

func TestValidatorIntegratesWithTx(t *testing.T) {
	rules := DefaultRules()
	v := rules.Validator()
	good := tx.Transaction{Kind: Kind, Payload: validRequest().Encode()}
	if !v.Validate(good) {
		t.Fatal("valid request rejected")
	}
	if v.Validate(tx.Transaction{Kind: "other", Payload: validRequest().Encode()}) {
		t.Fatal("wrong kind accepted")
	}
	if v.Validate(tx.Transaction{Kind: Kind, Payload: []byte("junk")}) {
		t.Fatal("junk payload accepted")
	}
	bad := validRequest()
	bad.FareCents = 0
	if v.Validate(tx.Transaction{Kind: Kind, Payload: bad.Encode()}) {
		t.Fatal("invalid request accepted")
	}
}

func TestAssignPrefersZoneThenReputation(t *testing.T) {
	reqs := []RideRequest{validRequest()} // origin center
	drivers := []Driver{
		{Name: "faraway-high-rep", Zone: "north", Reputation: 0.9},
		{Name: "local-low-rep", Zone: "center", Reputation: 0.1},
	}
	assigned, unassigned, err := Assign(reqs, drivers)
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 1 || len(unassigned) != 0 {
		t.Fatalf("assigned %d unassigned %d", len(assigned), len(unassigned))
	}
	if assigned[0].Driver != "local-low-rep" {
		t.Fatalf("assigned %s, want the in-zone driver", assigned[0].Driver)
	}

	// Same zone: reputation breaks the tie.
	drivers = []Driver{
		{Name: "a", Zone: "center", Reputation: 0.2},
		{Name: "b", Zone: "center", Reputation: 0.8},
	}
	assigned, _, err = Assign(reqs, drivers)
	if err != nil {
		t.Fatal(err)
	}
	if assigned[0].Driver != "b" {
		t.Fatalf("assigned %s, want the higher-reputation driver", assigned[0].Driver)
	}
}

func TestAssignHighFareFirstAndOverflow(t *testing.T) {
	cheap := validRequest()
	cheap.Rider = "cheap"
	cheap.FareCents = 400
	rich := validRequest()
	rich.Rider = "rich"
	rich.FareCents = 9000
	drivers := []Driver{{Name: "only", Zone: "center", Reputation: 0.5}}
	assigned, unassigned, err := Assign([]RideRequest{cheap, rich}, drivers)
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 1 || assigned[0].Request.Rider != "rich" {
		t.Fatalf("assigned = %+v, want the high-fare request", assigned)
	}
	if len(unassigned) != 1 || unassigned[0].Rider != "cheap" {
		t.Fatalf("unassigned = %+v", unassigned)
	}
}

func TestAssignNoDrivers(t *testing.T) {
	_, _, err := Assign([]RideRequest{validRequest()}, nil)
	if !errors.Is(err, ErrNoDrivers) {
		t.Fatalf("error = %v, want ErrNoDrivers", err)
	}
}

func TestAssignDeterministic(t *testing.T) {
	reqs := []RideRequest{validRequest()}
	drivers := []Driver{
		{Name: "x", Zone: "center", Reputation: 0.5},
		{Name: "y", Zone: "center", Reputation: 0.5},
	}
	a1, _, err := Assign(reqs, drivers)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Assign(reqs, drivers)
	if err != nil {
		t.Fatal(err)
	}
	if a1[0].Driver != a2[0].Driver {
		t.Fatal("assignment not deterministic")
	}
	if a1[0].Driver != "x" {
		t.Fatalf("tie should break by name: got %s", a1[0].Driver)
	}
}
