// Package metrics provides the lightweight counters and series the
// simulation harness and benchmark runners record. It is deliberately
// small: experiments need deterministic, dependency-free accounting,
// not a full telemetry stack.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use. Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time level that can move both ways — the shape
// for republished snapshots of external state (cache sizes, hit rates,
// queue depths). The zero value is ready to use. Safe for concurrent
// use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Series accumulates ordered float64 observations. The zero value is
// ready to use. Safe for concurrent use.
type Series struct {
	mu sync.Mutex
	v  []float64
}

// Observe appends one observation.
func (s *Series) Observe(v float64) {
	s.mu.Lock()
	s.v = append(s.v, v)
	s.mu.Unlock()
}

// Len returns the number of observations.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.v)
}

// Values returns a copy of the observations.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.v))
	copy(out, s.v)
	return out
}

// Summary reduces the series to descriptive statistics.
func (s *Series) Summary() Summary {
	return Summarize(s.Values())
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes descriptive statistics of vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)

	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Stddev: std,
		Min:    sorted[0],
		P50:    Quantile(sorted, 0.50),
		P95:    Quantile(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile of an ascending-sorted sample using
// linear interpolation. q is clamped to [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.Count, s.Mean, s.Stddev, s.Min, s.P50, s.P95, s.Max)
}

// Registry is a named collection of counters and series. The zero
// value is not usable; call NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Dump renders every metric in sorted name order, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.series))
	for n := range r.counters {
		names = append(names, "c:"+n)
	}
	for n := range r.gauges {
		names = append(names, "g:"+n)
	}
	for n := range r.series {
		names = append(names, "s:"+n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		kind, name := n[:1], n[2:]
		switch kind {
		case "c":
			fmt.Fprintf(&b, "%-40s %d\n", name, r.counters[name].Value())
		case "g":
			fmt.Fprintf(&b, "%-40s %g\n", name, r.gauges[name].Value())
		case "s":
			fmt.Fprintf(&b, "%-40s %s\n", name, r.series[name].Summary())
		}
	}
	return b.String()
}
