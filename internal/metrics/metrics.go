// Package metrics provides the lightweight counters, gauges, series,
// histograms, and labeled metric families the protocol engine,
// transport, and benchmark runners record. It is deliberately small
// and dependency-free: experiments need deterministic accounting, the
// live node needs a Prometheus text exposition and a JSON snapshot,
// and neither needs a full telemetry stack.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use. Safe for concurrent use; updates are a single atomic add, so
// counters can sit on hot paths (per-verification, per-frame).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level that can move both ways — the shape
// for republished snapshots of external state (cache sizes, hit rates,
// queue depths). The zero value is ready to use. Safe for concurrent
// use; the float64 value is stored as atomic bits, so Set and Value
// are lock-free and Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Series accumulates ordered float64 observations. The zero value is
// ready to use. Safe for concurrent use.
type Series struct {
	mu sync.Mutex
	v  []float64
}

// Observe appends one observation.
func (s *Series) Observe(v float64) {
	s.mu.Lock()
	s.v = append(s.v, v)
	s.mu.Unlock()
}

// Len returns the number of observations.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.v)
}

// Values returns a copy of the observations.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.v))
	copy(out, s.v)
	return out
}

// Summary reduces the series to descriptive statistics.
func (s *Series) Summary() Summary {
	return Summarize(s.Values())
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// Summarize computes descriptive statistics of vs. NaN observations
// are ignored — a single poisoned sample must not turn every moment
// into NaN.
func Summarize(vs []float64) Summary {
	sorted := make([]float64, 0, len(vs))
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		sorted = append(sorted, v)
	}
	if len(sorted) == 0 {
		return Summary{}
	}
	sort.Float64s(sorted)

	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Stddev: std,
		Min:    sorted[0],
		P50:    Quantile(sorted, 0.50),
		P95:    Quantile(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile of an ascending-sorted sample using
// linear interpolation. q is clamped to [0, 1]; a NaN q yields NaN
// rather than an arbitrary element.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.Count, s.Mean, s.Stddev, s.Min, s.P50, s.P95, s.Max)
}

// Registry is a named collection of counters, gauges, series,
// histograms, and labeled families. The zero value is not usable; call
// NewRegistry. Safe for concurrent use. The registry lock guards only
// the name → metric maps; each metric synchronizes its own updates, so
// hot-path Inc/Observe calls on an already-created metric never touch
// the registry lock.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	series        map[string]*Series
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		series:        make(map[string]*Series),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given ascending upper bounds on first use. Later calls return
// the existing histogram regardless of bounds — first registration
// wins, as bucket layouts cannot change mid-flight.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// CounterVec returns the named labeled counter family, creating it
// with the given label names on first use. Later calls return the
// existing family regardless of label names — first registration wins.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(name, labels)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named labeled gauge family, creating it with
// the given label names on first use. Later calls return the existing
// family regardless of label names — first registration wins.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = newGaugeVec(name, labels)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named labeled histogram family, creating it
// with the given bounds and label names on first use.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histogramVecs[name]
	if !ok {
		v = newHistogramVec(name, bounds, labels)
		r.histogramVecs[name] = v
	}
	return v
}

// Dump renders every metric in sorted name order, one per line. The
// registry lock is held only long enough to snapshot the metric maps —
// formatting (which walks every series) happens outside it, so a slow
// dump can never stall hot-path metric creation.
func (r *Registry) Dump() string {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	series := make(map[string]*Series, len(r.series))
	for n, s := range r.series {
		series[n] = s
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(series)+len(histograms)+len(counterVecs)+len(gaugeVecs))
	for n := range counters {
		names = append(names, "c:"+n)
	}
	for n := range gauges {
		names = append(names, "g:"+n)
	}
	for n := range series {
		names = append(names, "s:"+n)
	}
	for n := range histograms {
		names = append(names, "h:"+n)
	}
	for n := range counterVecs {
		names = append(names, "v:"+n)
	}
	for n := range gaugeVecs {
		names = append(names, "w:"+n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		kind, name := n[:1], n[2:]
		switch kind {
		case "c":
			fmt.Fprintf(&b, "%-40s %d\n", name, counters[name].Value())
		case "g":
			fmt.Fprintf(&b, "%-40s %g\n", name, gauges[name].Value())
		case "s":
			fmt.Fprintf(&b, "%-40s %s\n", name, series[name].Summary())
		case "h":
			snap := histograms[name].Snapshot()
			fmt.Fprintf(&b, "%-40s n=%d sum=%.4g p50=%.4g p95=%.4g\n",
				name, snap.Count, snap.Sum, snap.Quantile(0.50), snap.Quantile(0.95))
		case "v":
			for _, child := range counterVecs[name].children() {
				fmt.Fprintf(&b, "%-40s %d\n", name+"{"+child.labels+"}", child.counter.Value())
			}
		case "w":
			for _, child := range gaugeVecs[name].children() {
				fmt.Fprintf(&b, "%-40s %g\n", name+"{"+child.labels+"}", child.gauge.Value())
			}
		}
	}
	return b.String()
}
