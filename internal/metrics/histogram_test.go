package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestNewHistogramCleansBounds(t *testing.T) {
	h := NewHistogram([]float64{3, 1, math.NaN(), 2, 1, math.Inf(1)})
	want := []float64{1, 2, 3}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i, b := range want {
		if h.bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestNewHistogramDefaults(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {math.NaN(), math.Inf(-1)}} {
		h := NewHistogram(bounds)
		if len(h.bounds) != len(DefBuckets) {
			t.Fatalf("NewHistogram(%v) bounds = %v, want DefBuckets", bounds, h.bounds)
		}
	}
}

// TestHistogramBucketBoundary pins the cumulative-`le` convention: an
// observation equal to a bound lands in that bound's bucket, not the
// next one.
func TestHistogramBucketBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1)   // == bound 1 → bucket 0
	h.Observe(1.5) // bucket 1 (le 2)
	h.Observe(2)   // == bound 2 → bucket 1
	h.Observe(4)   // == bound 4 → bucket 2
	h.Observe(9)   // +Inf bucket
	h.Observe(-1)  // below the first bound → bucket 0
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-16.5) > 1e-12 {
		t.Fatalf("Sum = %v, want 16.5", s.Sum)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN observation recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}

	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(1.5) // all in (1, 2]
	}
	s := h.Snapshot()
	if q := s.Quantile(math.NaN()); q != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", q)
	}
	// Out-of-range q clamps; all mass is inside (1, 2].
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got < 1 || got > 2 {
			t.Fatalf("Quantile(%v) = %v, want within (1, 2]", q, got)
		}
	}
	// Median of a uniformly-attributed bucket interpolates to its middle.
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %v, want 1.5", got)
	}
}

func TestHistogramQuantileInfBucketClamps(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // +Inf bucket only
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("Quantile in +Inf bucket = %v, want clamp to 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Counts[0] != 8000 {
		t.Fatalf("Count = %d, Counts = %v, want 8000 all in bucket 0", s.Count, s.Counts)
	}
	if math.Abs(s.Sum-2000) > 1e-6 {
		t.Fatalf("Sum = %v, want 2000", s.Sum)
	}
}
