package metrics

import (
	"strings"
	"testing"
)

func TestSnapshotFlattens(t *testing.T) {
	r := NewRegistry()
	r.Counter("blocks").Add(2)
	r.Gauge("chain.height").Set(9)
	r.Series("loss").Observe(0.5)
	r.CounterVec("checked", "collector").With("1").Inc()
	snap := r.Snapshot()
	if snap.Counters["blocks"] != 2 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["chain.height"] != 9 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if snap.Series["loss"].Count != 1 {
		t.Fatalf("series = %+v", snap.Series)
	}
	if snap.Counters[`checked{collector="1"}`] != 1 {
		t.Fatalf("vec child not flattened: %+v", snap.Counters)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(1)
	a.Histogram("h", []float64{1, 2}).Observe(0.5)
	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Gauge("g").Set(7)
	b.Histogram("h", []float64{1, 2}).Observe(1.5)

	var m Snapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	if m.Counters["c"] != 5 {
		t.Fatalf("merged counter = %d, want 5", m.Counters["c"])
	}
	if m.Gauges["g"] != 7 {
		t.Fatalf("merged gauge = %v, want 7 (last write wins)", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.rounds_total").Add(4)
	r.Gauge("chain.height").Set(4)
	r.Histogram("lat", []float64{1, 2}).Observe(0.5)
	r.Histogram("lat", nil).Observe(1.5)
	r.CounterVec("screen.checked_total", "collector").With("0").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"engine_rounds_total 4",
		"chain_height 4",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`, // cumulative, not per-bucket
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 2",
		"lat_count 2",
		`screen_checked_total{collector="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	tests := map[string]string{
		"round.stage_seconds": "round_stage_seconds",
		"sig-cache:hits":      "sig_cache:hits",
		"9lives":              "_9lives",
	}
	for in, want := range tests {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWithLE(t *testing.T) {
	if got := withLE("", "1"); got != `{le="1"}` {
		t.Fatalf("withLE empty = %q", got)
	}
	if got := withLE(`{stage="pack"}`, "+Inf"); got != `{stage="pack",le="+Inf"}` {
		t.Fatalf("withLE labeled = %q", got)
	}
}
