package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatal("zero value should read 0")
	}
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("Value() = %v, want 4", g.Value())
	}
	g.Add(-5)
	if g.Value() != -1 {
		t.Fatalf("Value() = %v, want -1", g.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if math.Abs(g.Value()-4000) > 1e-6 {
		t.Fatalf("Value() = %v, want 4000", g.Value())
	}
}

func TestSummarizeIgnoresNaN(t *testing.T) {
	sum := Summarize([]float64{1, math.NaN(), 3})
	if sum.Count != 2 || sum.Mean != 2 || sum.Min != 1 || sum.Max != 3 {
		t.Fatalf("Summarize with NaN = %+v", sum)
	}
}

func TestQuantileNaN(t *testing.T) {
	if got := Quantile([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

func TestCounterVecWith(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("screen.checked_total", "collector")
	v.With("0").Add(3)
	v.With("0").Inc()
	v.With("1").Inc()
	if got := v.With("0").Value(); got != 4 {
		t.Fatalf("child 0 = %d, want 4 (child not cached?)", got)
	}
	if r.CounterVec("screen.checked_total", "collector") != v {
		t.Fatal("registry did not reuse vec")
	}
	kids := v.children()
	if len(kids) != 2 || kids[0].labels != `collector="0"` || kids[1].labels != `collector="1"` {
		t.Fatalf("children = %+v", kids)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	v := NewRegistry().CounterVec("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("round.stage_seconds", []float64{1, 2}, "stage")
	v.With("screen").Observe(0.5)
	v.With("pack").Observe(1.5)
	if v.With("screen").Count() != 1 {
		t.Fatal("child histogram not cached")
	}
	snap := r.Snapshot()
	h, ok := snap.Histograms[`round.stage_seconds{stage="screen"}`]
	if !ok || h.Count != 1 || len(h.Bounds) != 2 {
		t.Fatalf("flattened snapshot missing screen child: %+v", snap.Histograms)
	}
}

func TestRenderLabelsEscapes(t *testing.T) {
	got := renderLabels([]string{"a", "b"}, []string{`x"y`, "p\nq"})
	want := `a="x\"y",b="p\nq"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
}

func TestDumpIncludesVecChildren(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("checked", "collector").With("2").Inc()
	r.Histogram("lat", []float64{1}).Observe(0.5)
	r.Gauge("height").Set(7)
	dump := r.Dump()
	for _, want := range []string{`checked{collector="2"}`, "lat", "height"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("Dump() missing %q:\n%s", want, dump)
		}
	}
}

// TestRegistryConcurrentMixed drives every metric kind from multiple
// goroutines; run under -race this proves the whole registry is safe.
func TestRegistryConcurrentMixed(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(0.001)
				r.CounterVec("cv", "k").With("a").Inc()
				r.HistogramVec("hv", nil, "k").With("b").Observe(0.001)
				r.Series("s").Observe(1)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 2400 || snap.Counters[`cv{k="a"}`] != 2400 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Histograms["h"].Count != 2400 || snap.Histograms[`hv{k="b"}`].Count != 2400 {
		t.Fatalf("histograms lost observations")
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("chain.height", "committee")
	v.With("0").Set(7)
	v.With("1").Set(9)
	if got := v.With("0").Value(); got != 7 {
		t.Fatalf("committee 0 height = %g, want 7", got)
	}
	if same := r.GaugeVec("chain.height", "committee"); same != v {
		t.Fatal("second GaugeVec registration returned a different family")
	}
	snap := r.Snapshot()
	if got := snap.Gauges[`chain.height{committee="0"}`]; got != 7 {
		t.Fatalf("snapshot committee 0 = %g, want 7", got)
	}
	if got := snap.Gauges[`chain.height{committee="1"}`]; got != 9 {
		t.Fatalf("snapshot committee 1 = %g, want 9", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `chain_height{committee="0"} 7`) {
		t.Fatalf("prometheus exposition missing labeled gauge:\n%s", sb.String())
	}
	if !strings.Contains(r.Dump(), `chain.height{committee="1"}`) {
		t.Fatal("Dump missing labeled gauge child")
	}
}

func TestGaugeVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	NewRegistry().GaugeVec("g", "a", "b").With("only-one")
}
