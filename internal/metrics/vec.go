package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// labelSep joins label values into a map key. 0x1f (unit separator)
// cannot appear in sane label values, so the join is unambiguous.
const labelSep = "\x1f"

// CounterVec is a family of counters partitioned by an ordered set of
// label names — the `Registry.CounterVec`-style keyed metric the
// screening instrumentation uses for per-collector checked/unchecked
// counts. Children are created on first use and cached; callers on hot
// paths should resolve their child once (With) and hold the *Counter.
type CounterVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

func newCounterVec(name string, labels []string) *CounterVec {
	return &CounterVec{name: name, labels: labels, kids: make(map[string]*Counter)}
}

// Labels returns the family's ordered label names.
func (v *CounterVec) Labels() []string { return v.labels }

// With returns the child counter for the given label values (in label
// order), creating it on first use. The number of values must match
// the number of label names; a mismatch panics, as it is always a
// programming error at an instrumentation site.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{}
		v.kids[key] = c
	}
	return c
}

// vecChild pairs a rendered label string ("k=\"v\",...") with its
// counter, for exposition.
type vecChild struct {
	labels  string
	counter *Counter
}

// children returns the family's children sorted by label values.
func (v *CounterVec) children() []vecChild {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	kids := make(map[string]*Counter, len(v.kids))
	for k, c := range v.kids {
		kids[k] = c
	}
	v.mu.Unlock()
	sort.Strings(keys)
	out := make([]vecChild, 0, len(keys))
	for _, k := range keys {
		out = append(out, vecChild{labels: renderLabels(v.labels, strings.Split(k, labelSep)), counter: kids[k]})
	}
	return out
}

// GaugeVec is a family of gauges partitioned by an ordered set of
// label names — used for per-committee levels such as
// `chain.height{committee="i"}` where one process hosts several chain
// heads. Children are created on first use and cached; callers on hot
// paths should resolve their child once (With) and hold the *Gauge.
type GaugeVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*Gauge
}

func newGaugeVec(name string, labels []string) *GaugeVec {
	return &GaugeVec{name: name, labels: labels, kids: make(map[string]*Gauge)}
}

// Labels returns the family's ordered label names.
func (v *GaugeVec) Labels() []string { return v.labels }

// With returns the child gauge for the given label values (in label
// order), creating it on first use. Panics on arity mismatch.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[key]
	if !ok {
		g = &Gauge{}
		v.kids[key] = g
	}
	return g
}

type vecGaugeChild struct {
	labels string
	gauge  *Gauge
}

// children returns the family's children sorted by label values.
func (v *GaugeVec) children() []vecGaugeChild {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	kids := make(map[string]*Gauge, len(v.kids))
	for k, g := range v.kids {
		kids[k] = g
	}
	v.mu.Unlock()
	sort.Strings(keys)
	out := make([]vecGaugeChild, 0, len(keys))
	for _, k := range keys {
		out = append(out, vecGaugeChild{labels: renderLabels(v.labels, strings.Split(k, labelSep)), gauge: kids[k]})
	}
	return out
}

// HistogramVec is a family of histograms partitioned by label values,
// all sharing one bucket layout — used for per-stage round latency.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

func newHistogramVec(name string, bounds []float64, labels []string) *HistogramVec {
	return &HistogramVec{name: name, labels: labels, bounds: bounds, kids: make(map[string]*Histogram)}
}

// Labels returns the family's ordered label names.
func (v *HistogramVec) Labels() []string { return v.labels }

// With returns the child histogram for the given label values,
// creating it on first use. Panics on arity mismatch.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.kids[key] = h
	}
	return h
}

type vecHistChild struct {
	labels string
	hist   *Histogram
}

func (v *HistogramVec) children() []vecHistChild {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	kids := make(map[string]*Histogram, len(v.kids))
	for k, h := range v.kids {
		kids[k] = h
	}
	v.mu.Unlock()
	sort.Strings(keys)
	out := make([]vecHistChild, 0, len(keys))
	for _, k := range keys {
		out = append(out, vecHistChild{labels: renderLabels(v.labels, strings.Split(k, labelSep)), hist: kids[k]})
	}
	return out
}

// renderLabels renders `k1="v1",k2="v2"` in label order, escaping
// quotes and backslashes per the Prometheus text format.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
