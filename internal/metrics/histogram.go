package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets is the default latency bucket layout in seconds, tuned
// for protocol round stages that run from tens of microseconds (a
// screening draw) to whole seconds (a TCP round with retries).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram counts observations into fixed upper-bound buckets with
// Prometheus cumulative-`le` semantics: an observation v lands in the
// first bucket whose bound satisfies v <= bound, and the implicit
// +Inf bucket catches the rest. All updates are atomic, so Observe is
// safe on hot paths; Sum uses a CAS loop on float bits.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be finite; they are sorted and deduplicated. A nil or empty
// bounds slice falls back to DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		clean = append(clean, b)
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) == 0 {
		dedup = append(dedup, DefBuckets...)
	}
	return &Histogram{
		bounds: dedup,
		counts: make([]atomic.Int64, len(dedup)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns a consistent-enough copy for exposition. Buckets
// are read individually, so a snapshot taken mid-Observe may be off by
// the in-flight observation — acceptable for monitoring reads.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts is per-bucket (not cumulative) and one longer than Bounds;
// the final entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket containing the target rank. Values in the +Inf bucket clamp
// to the highest finite bound; an empty histogram yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[len(s.Bounds)-1]
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		next := cum + float64(c)
		if next >= rank && c > 0 {
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
