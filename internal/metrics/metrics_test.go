package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value should read 0")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value() = %d, want 5", c.Value())
	}
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("Value() after negative Add = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value() = %d, want 16000", c.Value())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 2} {
		s.Observe(v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
	vs := s.Values()
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Fatalf("Values() = %v, order not preserved", vs)
	}
	// Values must be a copy.
	vs[0] = 99
	if s.Values()[0] != 3 {
		t.Fatal("Values() aliases internal storage")
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{1, 2, 3, 4, 5})
	if sum.Count != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 || sum.P50 != 3 {
		t.Fatalf("Summarize() = %+v", sum)
	}
	if math.Abs(sum.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", sum.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	sum := Summarize([]float64{7})
	if sum.Count != 1 || sum.Mean != 7 || sum.Stddev != 0 || sum.P95 != 7 {
		t.Fatalf("Summarize([7]) = %+v", sum)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{-0.5, 10},
		{2, 40},
		{0.5, 25},
		{1.0 / 3, 20},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) should be 0")
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(vs []float64, qRaw uint8) bool {
		if len(vs) == 0 {
			return true
		}
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sum := Summarize(vs)
		return sum.Min <= sum.P50 && sum.P50 <= sum.P95 && sum.P95 <= sum.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("blocks").Add(3)
	r.Counter("blocks").Inc() // same counter on second call
	if r.Counter("blocks").Value() != 4 {
		t.Fatal("registry did not reuse counter")
	}
	r.Series("loss").Observe(1.5)
	if r.Series("loss").Len() != 1 {
		t.Fatal("registry did not reuse series")
	}
	dump := r.Dump()
	if !strings.Contains(dump, "blocks") || !strings.Contains(dump, "loss") {
		t.Fatalf("Dump() missing metrics:\n%s", dump)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Series("obs").Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 4000 {
		t.Fatalf("shared = %d", r.Counter("shared").Value())
	}
	if r.Series("obs").Len() != 4000 {
		t.Fatalf("obs len = %d", r.Series("obs").Len())
	}
}
