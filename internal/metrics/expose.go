package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time JSON-ready view of a registry. Labeled
// children are flattened into `name{k="v",...}` keys so the snapshot
// stays a flat map consumers can diff.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Series     map[string]Summary           `json:"series,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric in the registry. Like Dump, the
// registry lock is released before individual metrics are read.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	series := make(map[string]*Series, len(r.series))
	for n, s := range r.series {
		series[n] = s
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	histogramVecs := make(map[string]*HistogramVec, len(r.histogramVecs))
	for n, v := range r.histogramVecs {
		histogramVecs[n] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Series:     make(map[string]Summary, len(series)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, s := range series {
		snap.Series[n] = s.Summary()
	}
	for n, h := range histograms {
		snap.Histograms[n] = h.Snapshot()
	}
	for n, v := range counterVecs {
		for _, child := range v.children() {
			snap.Counters[n+"{"+child.labels+"}"] = child.counter.Value()
		}
	}
	for n, v := range gaugeVecs {
		for _, child := range v.children() {
			snap.Gauges[n+"{"+child.labels+"}"] = child.gauge.Value()
		}
	}
	for n, v := range histogramVecs {
		for _, child := range v.children() {
			snap.Histograms[n+"{"+child.labels+"}"] = child.hist.Snapshot()
		}
	}
	return snap
}

// Merge folds other into s: counters and histogram buckets with the
// same name are summed, gauges are overwritten, series summaries are
// kept from the first snapshot that defined them. Used by the admin
// endpoint when a process hosts several registries.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	if s.Series == nil {
		s.Series = make(map[string]Summary)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for n, v := range other.Counters {
		s.Counters[n] += v
	}
	for n, v := range other.Gauges {
		s.Gauges[n] = v
	}
	for n, v := range other.Series {
		if _, ok := s.Series[n]; !ok {
			s.Series[n] = v
		}
	}
	for n, v := range other.Histograms {
		cur, ok := s.Histograms[n]
		if !ok || len(cur.Bounds) != len(v.Bounds) {
			s.Histograms[n] = v
			continue
		}
		merged := HistogramSnapshot{
			Bounds: cur.Bounds,
			Counts: make([]int64, len(cur.Counts)),
			Count:  cur.Count + v.Count,
			Sum:    cur.Sum + v.Sum,
		}
		copy(merged.Counts, cur.Counts)
		for i := range v.Counts {
			if i < len(merged.Counts) {
				merged.Counts[i] += v.Counts[i]
			}
		}
		s.Histograms[n] = merged
	}
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Metric names are sanitized
// (`.` and `-` become `_`); histograms emit cumulative `_bucket{le=}`
// lines plus `_sum`/`_count`; series emit quantile lines in summary
// style.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheusSnapshot(w, r.Snapshot())
}

// WritePrometheusSnapshot renders an already-captured (possibly
// merged) snapshot in the Prometheus text format.
func WritePrometheusSnapshot(w io.Writer, s Snapshot) error {
	return writePrometheusSnapshot(w, s)
}

func writePrometheusSnapshot(w io.Writer, s Snapshot) error {
	var b strings.Builder

	counterNames := sortedKeys(s.Counters)
	for _, n := range counterNames {
		base, labels := splitLabels(n)
		fmt.Fprintf(&b, "%s%s %d\n", promName(base), labels, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		base, labels := splitLabels(n)
		fmt.Fprintf(&b, "%s%s %g\n", promName(base), labels, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Series) {
		sum := s.Series[n]
		name := promName(n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %g\n", name, sum.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %g\n", name, sum.P95)
		fmt.Fprintf(&b, "%s_sum %g\n", name, sum.Mean*float64(sum.Count))
		fmt.Fprintf(&b, "%s_count %d\n", name, sum.Count)
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		base, labels := splitLabels(n)
		name := promName(base)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, withLE(labels, fmt.Sprintf("%g", bound)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %g\n", name, labels, h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", name, labels, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitLabels separates a flattened `name{...}` key into the bare name
// and its `{...}` label block (empty when unlabeled).
func splitLabels(n string) (base, labels string) {
	if i := strings.IndexByte(n, '{'); i >= 0 {
		return n[:i], n[i:]
	}
	return n, ""
}

// withLE appends an `le` label to an existing (possibly empty) label
// block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// promName maps a registry metric name to a legal Prometheus name:
// letters, digits, underscores, and colons; everything else becomes an
// underscore, and a leading digit gains an underscore prefix.
func promName(n string) string {
	var b strings.Builder
	for i, r := range n {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
