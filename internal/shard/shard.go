// Package shard runs K independent governor committees over a
// partition of the provider set — the committee-sharding construction
// the sharded-RepChain line of work (arXiv:1901.05741) applies to the
// paper's single-committee protocol.
//
// Each committee is a complete, self-contained core.Engine: its own
// mempool shards, governor set, VRF leader election, ledger segment
// directory, and chain head. Providers are assigned to committees by a
// deterministic identity.PartitionFunc; collectors follow their
// providers so every committee is again a regular bipartite topology
// with the global collector degree s.
//
// Cross-shard transactions use a two-phase receipt: the source
// committee commits a lock block record (kind shard.KindLock) whose
// payload carries the destination and the inner transaction; once the
// lock commits with a valid status, the cluster enqueues a receipt
// (kind shard.KindReceipt) on the destination committee, keyed by the
// lock's transaction ID. Delivery is at-least-once with idempotent
// receipts: an unacknowledged receipt is resubmitted after
// ReceiptRetry rounds, and duplicate receipt records deduplicate by
// lock ID. Both phases are ordinary signed transactions flowing
// through the existing codec, screening, and CRC-framed ledger paths.
//
// Reputation is portable across committees: when a provider is
// re-homed (Cluster.Rehome) its collectors' full RWM weight columns
// and additive misreport/forge scores move with it via
// reputation.MigrateInto, so the destination governors resume
// screening with exactly the learned weights — verifiable bitwise
// against an events.ReplayReputation reconstruction of the source
// committee's event log.
//
// The single-committee case (Committees <= 1) passes the base
// configuration through untouched, so a K=1 cluster is byte-identical
// to a bare engine run.
package shard

import "errors"

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrConfig reports an unusable cluster configuration.
	ErrConfig = errors.New("shard: invalid cluster config")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("shard: cluster closed")
	// ErrUnknownProvider reports an out-of-range global provider
	// index.
	ErrUnknownProvider = errors.New("shard: unknown provider")
	// ErrUnknownCommittee reports an out-of-range committee index.
	ErrUnknownCommittee = errors.New("shard: unknown committee")
	// ErrRehome reports an unsupported re-home request.
	ErrRehome = errors.New("shard: cannot re-home provider")
)
