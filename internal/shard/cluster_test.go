package shard

import (
	"errors"
	"fmt"
	"testing"

	"repchain/internal/core"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// validator accepts transactions whose first payload byte is 1.
type validator struct{}

func (validator) Validate(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
}

// baseConfig is the shared 8-provider, s=1 global topology: every
// committee slice keeps collector degree 1 so re-homes are legal.
func baseConfig(seed int64, workers int) core.Config {
	return core.Config{
		Spec:          identity.TopologySpec{Providers: 8, Collectors: 16, Degree: 2},
		Governors:     3,
		Params:        reputation.DefaultParams(),
		BlockLimit:    32,
		ArgueWindow:   4,
		Seed:          seed,
		Workers:       workers,
		Validator:     validator{},
		EventCapacity: 1 << 16,
	}
}

func payload(valid bool, a, b byte) []byte {
	p := []byte{0, a, b}
	if valid {
		p[0] = 1
	}
	return p
}

// chainHashes returns every committed block hash of committee i as
// seen by governor 0, in serial order.
func chainHashes(t *testing.T, cl *Cluster, i int) []crypto.Hash {
	t.Helper()
	st := cl.Engine(i).Governor(0).Store()
	out := make([]crypto.Hash, 0, st.Height())
	for s := uint64(1); s <= st.Height(); s++ {
		b, err := st.Get(s)
		if err != nil {
			t.Fatalf("committee %d block %d: %v", i, s, err)
		}
		out = append(out, b.Hash())
	}
	return out
}

func TestClusterK1MatchesBareEngine(t *testing.T) {
	submit := func(sub func(k int, kind string, payload []byte, valid bool) error, round int) {
		for j := 0; j < 12; j++ {
			valid := j%3 != 2
			if err := sub(j%8, "k1", payload(valid, byte(j), byte(round)), valid); err != nil {
				t.Fatal(err)
			}
		}
	}

	eng, err := core.New(baseConfig(42, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var bare []crypto.Hash
	for r := 0; r < 5; r++ {
		submit(func(k int, kind string, p []byte, valid bool) error {
			_, err := eng.SubmitTx(k, kind, p, valid)
			return err
		}, r)
		res, err := eng.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		bare = append(bare, res.Block.Hash())
	}

	cl, err := New(Config{Base: baseConfig(42, 1), Committees: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for r := 0; r < 5; r++ {
		submit(func(k int, kind string, p []byte, valid bool) error {
			_, _, err := cl.SubmitTx(k, kind, p, valid)
			return err
		}, r)
		if _, err := cl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	sharded := chainHashes(t, cl, 0)
	if len(sharded) != len(bare) {
		t.Fatalf("cluster committed %d blocks, bare engine %d", len(sharded), len(bare))
	}
	for s := range bare {
		if bare[s] != sharded[s] {
			t.Fatalf("block %d: bare %x, K=1 cluster %x", s+1, bare[s], sharded[s])
		}
	}
}

// runCrossScenario drives a K=2 cluster through a deterministic mix of
// local and cross-shard submissions and returns the per-committee
// chain hashes plus the set of lock IDs issued.
func runCrossScenario(t *testing.T, seed int64, workers int) ([][]crypto.Hash, map[crypto.Hash]bool) {
	t.Helper()
	cl, err := New(Config{Base: baseConfig(seed, workers), Committees: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	locks := make(map[crypto.Hash]bool)
	for r := 0; r < 10; r++ {
		for j := 0; j < 8; j++ {
			valid := j%4 != 3
			if _, _, err := cl.SubmitTx(j, "local", payload(valid, byte(j), byte(r)), valid); err != nil {
				t.Fatal(err)
			}
		}
		if r < 6 {
			// Providers 0 and 1 live on different committees under the
			// modulo partition; 3 and 6 likewise.
			signed, err := cl.SubmitCross(0, 1, "wire", payload(true, byte(r), 1), true)
			if err != nil {
				t.Fatal(err)
			}
			locks[signed.Tx.ID()] = true
			signed, err = cl.SubmitCross(3, 6, "wire", payload(true, byte(r), 2), true)
			if err != nil {
				t.Fatal(err)
			}
			locks[signed.Tx.ID()] = true
		}
		if _, err := cl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.PendingReceipts(); got != 0 {
		t.Fatalf("%d receipts still pending after drain rounds", got)
	}
	if v := cl.Metrics().Snapshot().Counters["shard.cross_tx_total"]; v != 12 {
		t.Fatalf("shard.cross_tx_total = %d, want 12", v)
	}
	return [][]crypto.Hash{chainHashes(t, cl, 0), chainHashes(t, cl, 1)}, locks
}

func TestCrossShardReceiptDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, _ := runCrossScenario(t, seed, 1)
			other, _ := runCrossScenario(t, seed, 4)
			for i := range base {
				if len(base[i]) != len(other[i]) {
					t.Fatalf("committee %d: %d blocks at workers=1, %d at workers=4", i, len(base[i]), len(other[i]))
				}
				for s := range base[i] {
					if base[i][s] != other[i][s] {
						t.Fatalf("committee %d block %d differs between workers=1 and workers=4", i, s+1)
					}
				}
			}
		})
	}
}

// receiptLockIDs collects the lock IDs of every receipt record
// committed on committee i.
func receiptLockIDs(t *testing.T, cl *Cluster, i int) map[crypto.Hash]int {
	t.Helper()
	st := cl.Engine(i).Governor(0).Store()
	out := make(map[crypto.Hash]int)
	for s := uint64(1); s <= st.Height(); s++ {
		b, err := st.Get(s)
		if err != nil {
			t.Fatalf("committee %d block %d: %v", i, s, err)
		}
		for _, rec := range b.Records {
			if rec.Signed.Tx.Kind != KindReceipt {
				continue
			}
			env, err := decodeReceipt(rec.Signed.Tx.Payload)
			if err != nil {
				t.Fatalf("committed receipt failed to decode: %v", err)
			}
			out[env.LockID]++
		}
	}
	return out
}

func TestK4CrossShardCommitsWithoutForks(t *testing.T) {
	cl, err := New(Config{Base: baseConfig(42, 1), Committees: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	locks := make(map[crypto.Hash]int) // lock ID -> destination committee
	for r := 0; r < 12; r++ {
		for j := 0; j < 8; j++ {
			if _, _, err := cl.SubmitTx(j, "local", payload(true, byte(j), byte(r)), true); err != nil {
				t.Fatal(err)
			}
		}
		if r < 6 {
			// One cross-shard transfer out of every committee per
			// round: provider j -> provider (j+1)%8 hops committees
			// under the modulo partition.
			for j := 0; j < 4; j++ {
				signed, err := cl.SubmitCross(j, (j+1)%8, "wire", payload(true, byte(j), byte(r)), true)
				if err != nil {
					t.Fatal(err)
				}
				slot, err := cl.Home((j + 1) % 8)
				if err != nil {
					t.Fatal(err)
				}
				locks[signed.Tx.ID()] = slot.Committee
			}
		}
		if _, err := cl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.PendingReceipts(); got != 0 {
		t.Fatalf("%d receipts still pending", got)
	}

	for i := 0; i < 4; i++ {
		eng := cl.Engine(i)
		// Every replica verifiable, and no fork: all governors agree
		// on every serial.
		heights := make([]uint64, eng.Governors())
		for j := 0; j < eng.Governors(); j++ {
			if err := ledger.VerifyChain(eng.Governor(j).Store()); err != nil {
				t.Fatalf("committee %d governor %d: %v", i, j, err)
			}
			heights[j] = eng.Governor(j).Store().Height()
		}
		for j := 1; j < eng.Governors(); j++ {
			if heights[j] != heights[0] {
				t.Fatalf("committee %d: governor %d at height %d, governor 0 at %d", i, j, heights[j], heights[0])
			}
			for s := uint64(1); s <= heights[0]; s++ {
				b0, err := eng.Governor(0).Store().Get(s)
				if err != nil {
					t.Fatal(err)
				}
				bj, err := eng.Governor(j).Store().Get(s)
				if err != nil {
					t.Fatal(err)
				}
				if b0.Hash() != bj.Hash() {
					t.Fatalf("committee %d serial %d: governors 0 and %d diverge", i, s, j)
				}
			}
		}
	}

	// Every lock produced exactly one receipt on its destination.
	delivered := make(map[crypto.Hash]int)
	for i := 0; i < 4; i++ {
		for id, n := range receiptLockIDs(t, cl, i) {
			delivered[id] += n
		}
	}
	for id, dst := range locks {
		if delivered[id] != 1 {
			t.Fatalf("lock %x for committee %d delivered %d times, want 1", id, dst, delivered[id])
		}
	}
	if len(delivered) != len(locks) {
		t.Fatalf("%d receipts delivered for %d locks", len(delivered), len(locks))
	}
}

func TestClusterConfigValidation(t *testing.T) {
	t.Run("indivisible committee slice", func(t *testing.T) {
		cfg := baseConfig(1, 1)
		// 10 providers, degree 3 over 15 collectors: s=2; a 4/6 split
		// under modulo-2 gives 5 providers x 3 links = 15, not
		// divisible by s=2.
		cfg.Spec = identity.TopologySpec{Providers: 10, Collectors: 15, Degree: 3}
		if _, err := New(Config{Base: cfg, Committees: 2}); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v, want ErrConfig", err)
		}
	})
	t.Run("links unsupported", func(t *testing.T) {
		cfg := baseConfig(1, 1)
		cfg.Links = [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
		cfg.Spec.Degree = 1
		cfg.Spec.Collectors = 8
		if _, err := New(Config{Base: cfg, Committees: 2}); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v, want ErrConfig", err)
		}
	})
	t.Run("negative committees", func(t *testing.T) {
		if _, err := New(Config{Base: baseConfig(1, 1), Committees: -1}); !errors.Is(err, ErrConfig) {
			t.Fatalf("err = %v, want ErrConfig", err)
		}
	})
	t.Run("routing", func(t *testing.T) {
		cl, err := New(Config{Base: baseConfig(1, 1), Committees: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for j := 0; j < 8; j++ {
			slot, err := cl.Home(j)
			if err != nil {
				t.Fatal(err)
			}
			if slot.Committee != j%4 {
				t.Fatalf("provider %d on committee %d, want %d", j, slot.Committee, j%4)
			}
		}
		if _, err := cl.Home(8); !errors.Is(err, ErrUnknownProvider) {
			t.Fatalf("err = %v, want ErrUnknownProvider", err)
		}
	})
}
