package shard

import (
	"errors"
	"fmt"
	"testing"

	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/reputation"
)

// train drives the cluster through rounds of mixed-validity traffic so
// the governors' RWM columns drift away from their uniform start.
func train(t *testing.T, cl *Cluster, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for j := 0; j < 8; j++ {
			valid := (j+r)%3 != 2
			if _, _, err := cl.SubmitTx(j, "train", payload(valid, byte(j), byte(r)), valid); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
}

// column captures one provider's full learned state under one governor.
type column struct {
	weights   []float64
	losses    []float64
	govLoss   float64
	rounds    int
	misreport []float64 // indexed by link slot t
	forge     []float64
}

func readColumn(t *testing.T, table *reputation.Table, local, degree int) column {
	t.Helper()
	in, err := table.Instance(local)
	if err != nil {
		t.Fatal(err)
	}
	col := column{
		weights: in.Weights(),
		losses:  make([]float64, in.Experts()),
		govLoss: in.GovernorLoss(),
		rounds:  in.Rounds(),
	}
	for i := range col.losses {
		col.losses[i] = in.ExpertLoss(i)
	}
	for tt := 0; tt < degree; tt++ {
		col.misreport = append(col.misreport, table.Misreport(local*degree+tt))
		col.forge = append(col.forge, table.Forge(local*degree+tt))
	}
	return col
}

func requireColumnsEqual(t *testing.T, what string, a, b column) {
	t.Helper()
	if len(a.weights) != len(b.weights) || a.govLoss != b.govLoss || a.rounds != b.rounds {
		t.Fatalf("%s: column shape/loss mismatch: %+v vs %+v", what, a, b)
	}
	for i := range a.weights {
		if a.weights[i] != b.weights[i] || a.losses[i] != b.losses[i] {
			t.Fatalf("%s: expert %d differs: w %v vs %v, loss %v vs %v",
				what, i, a.weights[i], b.weights[i], a.losses[i], b.losses[i])
		}
	}
	for i := range a.misreport {
		if a.misreport[i] != b.misreport[i] || a.forge[i] != b.forge[i] {
			t.Fatalf("%s: collector slot %d scores differ", what, i)
		}
	}
}

// TestRehomeWeightPortabilityBitwise re-homes provider 2 from committee
// 0 to committee 1 and asserts the destination governors screen it with
// state bitwise-equal to (a) the source governors' live tables before
// the move and (b) an events.ReplayReputation reconstruction of the
// source committee's event log — the portability guarantee from
// DESIGN.md §4i.
func TestRehomeWeightPortabilityBitwise(t *testing.T) {
	for _, disk := range []bool{false, true} {
		t.Run(fmt.Sprintf("disk=%v", disk), func(t *testing.T) {
			cfg := baseConfig(42, 1)
			if disk {
				cfg.ChainDir = t.TempDir()
			}
			cl, err := New(Config{Base: cfg, Committees: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			train(t, cl, 8)

			const (
				mover    = 2 // committee 0 (evens), local index 1
				src      = 0
				dst      = 1
				srcLocal = 1
				newLocal = 4 // appended after committee 1's four odds
				degree   = 2
			)
			governors := cl.Engine(src).Governors()

			// Snapshot the live state and the event log before the move;
			// the re-home rebuilds both committees.
			srcEvents := cl.Engine(src).Events().Events()
			oldSrcCfg, err := cl.committeeConfig(src)
			if err != nil {
				t.Fatal(err)
			}
			lives := make([]column, governors)
			replays := make([]column, governors)
			for j := 0; j < governors; j++ {
				lives[j] = readColumn(t, cl.Engine(src).Governor(j).Table(), srcLocal, degree)
				topo, err := identity.NewRegularTopology(oldSrcCfg.Spec)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := reputation.NewTable(topo, oldSrcCfg.Params)
				if err != nil {
					t.Fatal(err)
				}
				gid := string(cl.Engine(src).Governor(j).ID())
				if err := events.ReplayReputation(srcEvents, gid, fresh); err != nil {
					t.Fatal(err)
				}
				replays[j] = readColumn(t, fresh, srcLocal, degree)
				requireColumnsEqual(t, fmt.Sprintf("governor %d live vs replay", j), lives[j], replays[j])
			}
			srcHeight := cl.Engine(src).Governor(0).Store().Height()
			dstHeight := cl.Engine(dst).Governor(0).Store().Height()

			if err := cl.Rehome(mover, dst); err != nil {
				t.Fatal(err)
			}

			slot, err := cl.Home(mover)
			if err != nil {
				t.Fatal(err)
			}
			if slot.Committee != dst || slot.Local != newLocal {
				t.Fatalf("provider %d re-homed to %+v, want committee %d local %d", mover, slot, dst, newLocal)
			}
			for j := 0; j < governors; j++ {
				got := readColumn(t, cl.Engine(dst).Governor(j).Table(), newLocal, degree)
				requireColumnsEqual(t, fmt.Sprintf("governor %d migrated vs replay", j), got, replays[j])
			}
			if disk {
				if h := cl.Engine(src).Governor(0).Store().Height(); h != srcHeight {
					t.Fatalf("source chain height %d after re-home, want %d", h, srcHeight)
				}
				if h := cl.Engine(dst).Governor(0).Store().Height(); h != dstHeight {
					t.Fatalf("destination chain height %d after re-home, want %d", h, dstHeight)
				}
			}
			if v := cl.Metrics().Snapshot().Counters["shard.rehomes_total"]; v != 1 {
				t.Fatalf("shard.rehomes_total = %d, want 1", v)
			}

			// The cluster keeps running: the moved provider submits on
			// its new committee and both chains stay verifiable.
			train(t, cl, 2)
			for i := 0; i < 2; i++ {
				eng := cl.Engine(i)
				for j := 0; j < eng.Governors(); j++ {
					if err := ledger.VerifyChain(eng.Governor(j).Store()); err != nil {
						t.Fatalf("committee %d governor %d after re-home: %v", i, j, err)
					}
				}
			}
		})
	}
}

func TestRehomeRejectsUnsupportedShapes(t *testing.T) {
	t.Run("single committee", func(t *testing.T) {
		cl, err := New(Config{Base: baseConfig(1, 1), Committees: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Rehome(0, 0); !errors.Is(err, ErrRehome) {
			t.Fatalf("err = %v, want ErrRehome", err)
		}
	})
	t.Run("bad indices and same committee", func(t *testing.T) {
		cl, err := New(Config{Base: baseConfig(1, 1), Committees: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Rehome(99, 1); !errors.Is(err, ErrUnknownProvider) {
			t.Fatalf("err = %v, want ErrUnknownProvider", err)
		}
		if err := cl.Rehome(0, 5); !errors.Is(err, ErrUnknownCommittee) {
			t.Fatalf("err = %v, want ErrUnknownCommittee", err)
		}
		if err := cl.Rehome(0, 0); !errors.Is(err, ErrRehome) {
			t.Fatalf("err = %v, want ErrRehome", err)
		}
	})
	t.Run("shared collectors", func(t *testing.T) {
		cfg := baseConfig(1, 1)
		cfg.Spec = identity.TopologySpec{Providers: 8, Collectors: 8, Degree: 2} // s = 2
		cl, err := New(Config{Base: cfg, Committees: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Rehome(0, 1); !errors.Is(err, ErrRehome) {
			t.Fatalf("err = %v, want ErrRehome", err)
		}
	})
	t.Run("would empty the source", func(t *testing.T) {
		cl, err := New(Config{
			Base:       baseConfig(1, 1),
			Committees: 2,
			Partition: func(p, k int) int {
				if p == 0 {
					return 0
				}
				return 1
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Rehome(0, 1); !errors.Is(err, ErrRehome) {
			t.Fatalf("err = %v, want ErrRehome", err)
		}
	})
}
