package shard

import (
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/ledger"
	"repchain/internal/tx"
)

// Transaction kinds of the two-phase cross-shard protocol. Both ride
// the ordinary submission path: providers sign them, collectors label
// them, governors screen and pack them, and the CRC-framed ledger
// stores them — no side channel carries cross-shard state.
const (
	// KindLock is phase one: committed on the SOURCE committee, its
	// payload names the destination and carries the inner transaction.
	KindLock = "xshard/lock"
	// KindReceipt is phase two: committed on the DESTINATION
	// committee, its payload references the lock by transaction ID and
	// re-carries the inner transaction.
	KindReceipt = "xshard/receipt"
)

const (
	lockTag    = "repchain/xshard/lock/v1"
	receiptTag = "repchain/xshard/receipt/v1"
)

// lockEnvelope is the payload of a KindLock transaction.
type lockEnvelope struct {
	// DstProvider is the destination's GLOBAL provider index — global
	// so the reference survives re-homes between lock and receipt.
	DstProvider int
	// Kind and Payload are the inner transaction.
	Kind    string
	Payload []byte
}

func encodeLock(env lockEnvelope) []byte {
	e := codec.NewEncoder(64 + len(env.Payload))
	e.PutString(lockTag)
	e.PutInt(env.DstProvider)
	e.PutString(env.Kind)
	e.PutBytes(env.Payload)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeLock(b []byte) (lockEnvelope, error) {
	d := codec.NewDecoder(b)
	var env lockEnvelope
	tag, err := d.String()
	if err != nil || tag != lockTag {
		return env, fmt.Errorf("lock tag %q: %w", tag, ErrConfig)
	}
	if env.DstProvider, err = d.Int(); err != nil {
		return env, fmt.Errorf("lock destination: %w", err)
	}
	if env.Kind, err = d.String(); err != nil {
		return env, fmt.Errorf("lock kind: %w", err)
	}
	if env.Payload, err = d.Bytes(); err != nil {
		return env, fmt.Errorf("lock payload: %w", err)
	}
	if err := d.Expect(); err != nil {
		return env, fmt.Errorf("lock envelope: %w", err)
	}
	return env, nil
}

// receiptEnvelope is the payload of a KindReceipt transaction.
type receiptEnvelope struct {
	// SrcCommittee and SrcSerial locate the lock block.
	SrcCommittee int
	SrcSerial    uint64
	// LockID is the lock transaction's ID — the idempotency key.
	LockID crypto.Hash
	// Kind and Payload are the inner transaction, re-carried so the
	// destination can validate and apply it without a cross-committee
	// read.
	Kind    string
	Payload []byte
}

func encodeReceipt(env receiptEnvelope) []byte {
	e := codec.NewEncoder(96 + len(env.Payload))
	e.PutString(receiptTag)
	e.PutInt(env.SrcCommittee)
	e.PutUint64(env.SrcSerial)
	e.PutBytes(env.LockID[:])
	e.PutString(env.Kind)
	e.PutBytes(env.Payload)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeReceipt(b []byte) (receiptEnvelope, error) {
	d := codec.NewDecoder(b)
	var env receiptEnvelope
	tag, err := d.String()
	if err != nil || tag != receiptTag {
		return env, fmt.Errorf("receipt tag %q: %w", tag, ErrConfig)
	}
	if env.SrcCommittee, err = d.Int(); err != nil {
		return env, fmt.Errorf("receipt source committee: %w", err)
	}
	if env.SrcSerial, err = d.Uint64(); err != nil {
		return env, fmt.Errorf("receipt source serial: %w", err)
	}
	id, err := d.Bytes()
	if err != nil {
		return env, fmt.Errorf("receipt lock id: %w", err)
	}
	if len(id) != len(env.LockID) {
		return env, fmt.Errorf("receipt lock id length %d: %w", len(id), ErrConfig)
	}
	copy(env.LockID[:], id)
	if env.Kind, err = d.String(); err != nil {
		return env, fmt.Errorf("receipt kind: %w", err)
	}
	if env.Payload, err = d.Bytes(); err != nil {
		return env, fmt.Errorf("receipt payload: %w", err)
	}
	if err := d.Expect(); err != nil {
		return env, fmt.Errorf("receipt envelope: %w", err)
	}
	return env, nil
}

// xshardValidator teaches an application validator about the
// cross-shard kinds: a lock or receipt is valid exactly when its inner
// transaction is, and a malformed envelope is always invalid. Other
// kinds pass through untouched, so wrapping is inert on chains that
// never see a cross-shard transaction — the K=1 byte-identity path.
type xshardValidator struct {
	inner tx.Validator
}

func wrapValidator(inner tx.Validator) tx.Validator {
	if inner == nil {
		return nil
	}
	return xshardValidator{inner: inner}
}

// Validate implements tx.Validator.
func (v xshardValidator) Validate(t tx.Transaction) bool {
	switch t.Kind {
	case KindLock:
		env, err := decodeLock(t.Payload)
		if err != nil {
			return false
		}
		innerTx := t
		innerTx.Kind, innerTx.Payload = env.Kind, env.Payload
		return v.inner.Validate(innerTx)
	case KindReceipt:
		env, err := decodeReceipt(t.Payload)
		if err != nil {
			return false
		}
		innerTx := t
		innerTx.Kind, innerTx.Payload = env.Kind, env.Payload
		return v.inner.Validate(innerTx)
	default:
		return v.inner.Validate(t)
	}
}

// pendingReceipt tracks one cross-shard transfer between the lock
// commit and the receipt commit.
type pendingReceipt struct {
	env receiptEnvelope
	// dstProvider is the destination's global provider index; the
	// (committee, local) slot is resolved at injection time so a
	// re-home between lock and receipt re-routes the receipt.
	dstProvider int
	// submitted reports whether a receipt transaction is currently
	// in flight; submittedAt is the destination engine's round counter
	// at submission, for retry pacing.
	submitted   bool
	submittedAt uint64
}

// SubmitCross submits a cross-shard transaction: global provider
// `from` locks it on its home committee for delivery to global
// provider `to`'s committee. When both live on the same committee the
// inner transaction is submitted directly — there is nothing to lock.
// It returns the signed phase-one (or direct) transaction.
func (cl *Cluster) SubmitCross(from, to int, kind string, payload []byte, valid bool) (tx.SignedTx, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return tx.SignedTx{}, ErrClosed
	}
	src, err := cl.homeLocked(from)
	if err != nil {
		return tx.SignedTx{}, err
	}
	dst, err := cl.homeLocked(to)
	if err != nil {
		return tx.SignedTx{}, err
	}
	if src.Committee == dst.Committee {
		return cl.engines[src.Committee].SubmitTx(src.Local, kind, payload, valid)
	}
	lock := encodeLock(lockEnvelope{DstProvider: to, Kind: kind, Payload: payload})
	return cl.engines[src.Committee].SubmitTx(src.Local, KindLock, lock, valid)
}

// injectReceipts submits every due pending receipt to its destination
// committee: fresh receipts immediately, unacknowledged ones again
// once the destination has advanced ReceiptRetry rounds past the last
// attempt. Submission failures (backlog, crashed ingress) leave the
// receipt pending for the next round — at-least-once delivery over
// the same lossy paths as any other transaction. Called with cl.mu
// held, before the round fan-out, in FIFO order, so the injection
// sequence is a pure function of the committed lock order.
func (cl *Cluster) injectReceipts() {
	for _, pr := range cl.pending {
		slot, err := cl.homeLocked(pr.dstProvider)
		if err != nil {
			continue
		}
		eng := cl.engines[slot.Committee]
		if pr.submitted && eng.Round() < pr.submittedAt+uint64(cl.retry) {
			continue
		}
		if _, err := eng.SubmitTx(slot.Local, KindReceipt, encodeReceipt(pr.env), true); err != nil {
			continue
		}
		pr.submitted = true
		pr.submittedAt = eng.Round()
	}
}

// scanCommitted advances the relay over every block committed since
// the last pass, walking committees in index order and serials in
// ascending order so the relay queue evolves deterministically. Blocks
// landed during rounds that errored are caught on the next pass.
// Called with cl.mu held.
func (cl *Cluster) scanCommitted() {
	for i, eng := range cl.engines {
		st := eng.Governor(0).Store()
		h := st.Height()
		s := cl.scanned[i] + 1
		for ; s <= h; s++ {
			b, err := st.Get(s)
			if err != nil {
				break
			}
			cl.scanBlock(i, b)
		}
		cl.scanned[i] = s - 1
	}
}

// scanBlock walks one committed block on committee i: valid lock
// records enqueue a receipt for their destination committee, and
// receipt records acknowledge (and drop) the matching pending entry.
// Called with cl.mu held.
func (cl *Cluster) scanBlock(i int, b ledger.Block) {
	for _, rec := range b.Records {
		switch rec.Signed.Tx.Kind {
		case KindLock:
			if rec.Status != tx.StatusValid {
				continue
			}
			env, err := decodeLock(rec.Signed.Tx.Payload)
			if err != nil {
				continue
			}
			lockID := rec.Signed.Tx.ID()
			if cl.seenLocks[lockID] {
				continue
			}
			cl.seenLocks[lockID] = true
			if _, err := cl.homeLocked(env.DstProvider); err != nil {
				continue
			}
			cl.pending = append(cl.pending, &pendingReceipt{
				env: receiptEnvelope{
					SrcCommittee: i,
					SrcSerial:    b.Serial,
					LockID:       lockID,
					Kind:         env.Kind,
					Payload:      env.Payload,
				},
				dstProvider: env.DstProvider,
			})
			cl.crossTx.Inc()
		case KindReceipt:
			env, err := decodeReceipt(rec.Signed.Tx.Payload)
			if err != nil {
				continue
			}
			for n, pr := range cl.pending {
				if pr.env.LockID == env.LockID {
					cl.pending = append(cl.pending[:n], cl.pending[n+1:]...)
					cl.receiptsCommitted.Inc()
					break
				}
			}
		}
	}
}
