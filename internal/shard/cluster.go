package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"

	"repchain/internal/core"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/metrics"
	"repchain/internal/tx"
)

// seedStride separates committee seed spaces. Engines derive per-node
// streams from small additive offsets of their seed (+1000+c, +2000+j),
// so committees a full 2³² apart can never collide for any realistic
// node count. Committee 0 keeps the base seed, which is one of the two
// halves of the K=1 byte-identity guarantee (the other is passing the
// base config through untouched).
const seedStride = int64(1) << 32

// defaultReceiptRetry is how many destination-committee rounds a
// submitted receipt may stay uncommitted before it is resubmitted.
const defaultReceiptRetry = 4

// Config describes a committee-sharded cluster.
type Config struct {
	// Base is the template configuration. Spec describes the GLOBAL
	// topology: all providers and collectors across every committee.
	// Governors, Params, BlockLimit, and the rest apply per committee.
	Base core.Config
	// Committees is K. Zero or one runs the base config unsharded.
	Committees int
	// Partition assigns global provider indices to committees; nil
	// means identity.ModuloPartition.
	Partition identity.PartitionFunc
	// ReceiptRetry overrides the resubmission patience for
	// cross-shard receipts, in destination rounds. Zero keeps the
	// default (4).
	ReceiptRetry int
}

// Cluster is K committees running the protocol in parallel over a
// provider partition, plus the cross-shard receipt relay between them.
// Methods are safe for concurrent use; rounds across committees run
// concurrently inside RunRoundCtx but the relay state is only touched
// between rounds.
type Cluster struct {
	mu      sync.Mutex
	cfg     Config
	engines []*core.Engine
	closed  bool

	// members[i] lists global provider indices on committee i, in
	// local-index order; home inverts it. Initialized from the
	// partition function and mutated only by Rehome.
	members [][]int
	home    []identity.CommitteeSlot

	// Cross-shard receipt relay state; see receipt.go. scanned[i] is
	// the highest committee-i serial the relay has walked, so blocks
	// committed during rounds that error (chaos aborts) are still
	// picked up on the next successful pass.
	pending   []*pendingReceipt
	seenLocks map[crypto.Hash]bool
	scanned   []uint64
	retry     int

	reg               *metrics.Registry
	heightVec         *metrics.GaugeVec
	crossTx           *metrics.Counter
	receiptsPending   *metrics.Gauge
	receiptsCommitted *metrics.Counter
	rehomes           *metrics.Counter
}

// New builds and starts a cluster. With Committees <= 1 the base
// configuration reaches core.New untouched except for the cross-shard
// validator wrapper (inert for ordinary transaction kinds), keeping
// the single-committee chain byte-identical to an unsharded engine.
func New(cfg Config) (*Cluster, error) {
	k := cfg.Committees
	if k < 0 {
		return nil, fmt.Errorf("%d committees: %w", k, ErrConfig)
	}
	if k == 0 {
		k = 1
	}
	if cfg.Base.Spec.Providers <= 0 {
		return nil, fmt.Errorf("global spec %+v: %w", cfg.Base.Spec, ErrConfig)
	}
	part, err := identity.NewPartition(cfg.Base.Spec.Providers, k, cfg.Partition)
	if err != nil {
		return nil, fmt.Errorf("shard: partition: %w", err)
	}
	retry := cfg.ReceiptRetry
	if retry <= 0 {
		retry = defaultReceiptRetry
	}
	cl := &Cluster{
		cfg:       cfg,
		members:   make([][]int, k),
		home:      make([]identity.CommitteeSlot, cfg.Base.Spec.Providers),
		seenLocks: make(map[crypto.Hash]bool),
		retry:     retry,
		reg:       metrics.NewRegistry(),
	}
	for i := 0; i < k; i++ {
		cl.members[i] = append([]int(nil), part.Members(i)...)
	}
	for p := range cl.home {
		slot, _ := part.Home(p)
		cl.home[p] = slot
	}
	cl.heightVec = cl.reg.GaugeVec("chain.height", "committee")
	cl.crossTx = cl.reg.Counter("shard.cross_tx_total")
	cl.receiptsPending = cl.reg.Gauge("shard.receipts_pending")
	cl.receiptsCommitted = cl.reg.Counter("shard.receipts_committed_total")
	cl.rehomes = cl.reg.Counter("shard.rehomes_total")

	cl.engines = make([]*core.Engine, k)
	for i := 0; i < k; i++ {
		ecfg, err := cl.committeeConfig(i)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("shard: committee %d: %w", i, err)
		}
		cl.engines[i] = eng
	}
	// Start the relay scan at the resumed chain heads: locks committed
	// before a restart re-enter via fresh submissions, not a re-walk of
	// history (which segment pruning may have dropped anyway).
	cl.scanned = make([]uint64, k)
	for i, eng := range cl.engines {
		cl.scanned[i] = eng.Governor(0).Store().Height()
	}
	cl.publishHeights()
	return cl, nil
}

// committeeConfig derives committee i's engine configuration from the
// base. K=1 returns the base untouched (modulo the validator wrapper);
// K>1 carves the committee's slice of the global topology.
func (cl *Cluster) committeeConfig(i int) (core.Config, error) {
	ecfg := cl.cfg.Base
	ecfg.Validator = wrapValidator(cl.cfg.Base.Validator)
	if len(cl.members) == 1 {
		return ecfg, nil
	}
	spec := cl.cfg.Base.Spec
	if ecfg.Links != nil {
		return core.Config{}, fmt.Errorf("explicit links are unsupported with multiple committees: %w", ErrConfig)
	}
	if err := spec.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("global spec: %w", err)
	}
	s := spec.CollectorDegree()
	li := len(cl.members[i])
	if (li*spec.Degree)%s != 0 {
		return core.Config{}, fmt.Errorf(
			"committee %d: %d providers × degree %d not divisible by collector degree %d: %w",
			i, li, spec.Degree, s, ErrConfig)
	}
	ecfg.Spec = identity.TopologySpec{
		Providers:  li,
		Collectors: li * spec.Degree / s,
		Degree:     spec.Degree,
	}
	ecfg.Seed = cl.cfg.Base.Seed + int64(i)*seedStride
	if cl.cfg.Base.ChainDir != "" {
		ecfg.ChainDir = filepath.Join(cl.cfg.Base.ChainDir, fmt.Sprintf("committee-%d", i))
	}
	if cl.cfg.Base.Behaviors != nil {
		if len(cl.cfg.Base.Behaviors) != spec.Collectors {
			return core.Config{}, fmt.Errorf("%d behaviours for %d global collectors: %w",
				len(cl.cfg.Base.Behaviors), spec.Collectors, ErrConfig)
		}
		off := 0
		for j := 0; j < i; j++ {
			off += len(cl.members[j]) * spec.Degree / s
		}
		ecfg.Behaviors = cl.cfg.Base.Behaviors[off : off+ecfg.Spec.Collectors]
	}
	return ecfg, nil
}

// Committees returns K.
func (cl *Cluster) Committees() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.engines)
}

// Engine returns committee i's engine, for inspection and chaos
// injection. Returns nil for an out-of-range index.
func (cl *Cluster) Engine(i int) *core.Engine {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.engines) {
		return nil
	}
	return cl.engines[i]
}

// Home returns the committee slot of global provider k.
func (cl *Cluster) Home(k int) (identity.CommitteeSlot, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.homeLocked(k)
}

func (cl *Cluster) homeLocked(k int) (identity.CommitteeSlot, error) {
	if k < 0 || k >= len(cl.home) {
		return identity.CommitteeSlot{}, fmt.Errorf("provider %d: %w", k, ErrUnknownProvider)
	}
	return cl.home[k], nil
}

// Members returns the global provider indices on committee i in local
// order. The returned slice is a copy.
func (cl *Cluster) Members(i int) []int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.members) {
		return nil
	}
	return append([]int(nil), cl.members[i]...)
}

// SubmitTx routes a same-shard submission from global provider k to
// its home committee, returning that committee's index and the signed
// transaction.
func (cl *Cluster) SubmitTx(k int, kind string, payload []byte, valid bool) (int, tx.SignedTx, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return 0, tx.SignedTx{}, ErrClosed
	}
	slot, err := cl.homeLocked(k)
	if err != nil {
		return 0, tx.SignedTx{}, err
	}
	signed, err := cl.engines[slot.Committee].SubmitTx(slot.Local, kind, payload, valid)
	if err != nil {
		return slot.Committee, tx.SignedTx{}, err
	}
	return slot.Committee, signed, nil
}

// RunRound runs one cluster round: due cross-shard receipts are
// injected, every committee runs its protocol round concurrently, and
// freshly committed blocks are scanned for lock and receipt records.
// The per-committee results are returned in committee order; a
// committee's failure leaves its slot zero and is joined into the
// returned error without stopping the other committees.
func (cl *Cluster) RunRound() ([]core.RoundResult, error) {
	return cl.RunRoundCtx(context.Background())
}

// RunRoundCtx is RunRound with a context bound; cancellation aborts
// in-flight committee rounds at their next phase boundary.
func (cl *Cluster) RunRoundCtx(ctx context.Context) ([]core.RoundResult, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, ErrClosed
	}
	cl.injectReceipts()

	k := len(cl.engines)
	results := make([]core.RoundResult, k)
	errs := make([]error, k)
	if k == 1 {
		results[0], errs[0] = cl.engines[0].RunRoundCtx(ctx)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = cl.engines[i].RunRoundCtx(ctx)
			}(i)
		}
		wg.Wait()
	}
	var roundErrs []error
	for i, err := range errs {
		if err != nil {
			roundErrs = append(roundErrs, fmt.Errorf("committee %d: %w", i, err))
		}
	}
	if k > 1 {
		cl.scanCommitted()
	}
	cl.publishHeights()
	cl.receiptsPending.Set(float64(len(cl.pending)))
	return results, errors.Join(roundErrs...)
}

// publishHeights refreshes the per-committee chain head gauges.
func (cl *Cluster) publishHeights() {
	for i, eng := range cl.engines {
		cl.heightVec.With(strconv.Itoa(i)).Set(float64(eng.Governor(0).Store().Height()))
	}
}

// PendingReceipts returns the number of cross-shard receipts awaiting
// commitment on their destination committee.
func (cl *Cluster) PendingReceipts() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.pending)
}

// Metrics returns the cluster-level registry: per-committee chain
// heads and the cross-shard relay counters. Per-committee engine
// metrics stay on each engine's own registry.
func (cl *Cluster) Metrics() *metrics.Registry { return cl.reg }

// Close shuts every committee down. The first call wins; later calls
// return ErrClosed.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return ErrClosed
	}
	cl.closed = true
	var errs []error
	for i, eng := range cl.engines {
		if err := eng.Close(); err != nil {
			errs = append(errs, fmt.Errorf("committee %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
