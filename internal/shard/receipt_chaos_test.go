package shard

import (
	"errors"
	"testing"

	"repchain/internal/chaos"
	"repchain/internal/core"
	"repchain/internal/crypto"
	"repchain/internal/tx"
)

// TestNoReceiptLossUnderChaos runs a K=2 cluster with an independent
// chaos injector on each committee and asserts the two-phase protocol's
// delivery guarantee: every lock that COMMITS on its source committee
// eventually yields at least one receipt on its destination, and the
// relay drains to zero pending once the faults heal.
func TestNoReceiptLossUnderChaos(t *testing.T) {
	plans := []chaos.Plan{chaos.Drop10(), chaos.PartitionThenHeal()}
	for _, plan := range plans {
		t.Run(plan.Name, func(t *testing.T) {
			cl, err := New(Config{Base: baseConfig(42, 1), Committees: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			injs := []*chaos.Injector{
				chaos.New(cl.Engine(0), plan, 42),
				chaos.New(cl.Engine(1), plan, 43),
			}
			round := func(r int, submit func()) {
				for _, inj := range injs {
					inj.BeginRound(uint64(r))
				}
				submit()
				if _, err := cl.RunRound(); err != nil && !errors.Is(err, core.ErrRoundAborted) {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			for r := 0; r < 10; r++ {
				round(r, func() {
					for j := 0; j < 8; j++ {
						if _, _, err := cl.SubmitTx(j, "local", payload(true, byte(j), byte(r)), true); err != nil {
							t.Fatal(err)
						}
					}
					if r < 6 {
						// 0 and 1 sit on different committees under
						// modulo-2; submission errors are acceptable
						// chaos fallout (crashed ingress) — the lock
						// simply never existed.
						_, _ = cl.SubmitCross(0, 1, "wire", payload(true, byte(r), 1), true)
						_, _ = cl.SubmitCross(6, 3, "wire", payload(true, byte(r), 2), true)
					}
				})
			}
			// Faults are healed (FaultUntil 5); drain the relay.
			r := 10
			for ; r < 40 && cl.PendingReceipts() > 0; r++ {
				round(r, func() {})
			}
			if got := cl.PendingReceipts(); got != 0 {
				t.Fatalf("%d receipts still pending after %d drain rounds", got, r-10)
			}

			// Every committed lock must be answered by a committed
			// receipt on the destination committee.
			committed := make(map[crypto.Hash]int) // lock ID -> dst committee
			for i := 0; i < 2; i++ {
				st := cl.Engine(i).Governor(0).Store()
				for s := uint64(1); s <= st.Height(); s++ {
					b, err := st.Get(s)
					if err != nil {
						t.Fatal(err)
					}
					for _, rec := range b.Records {
						if rec.Signed.Tx.Kind != KindLock || rec.Status != tx.StatusValid {
							continue
						}
						env, err := decodeLock(rec.Signed.Tx.Payload)
						if err != nil {
							t.Fatalf("committed lock failed to decode: %v", err)
						}
						slot, err := cl.Home(env.DstProvider)
						if err != nil {
							t.Fatal(err)
						}
						committed[rec.Signed.Tx.ID()] = slot.Committee
					}
				}
			}
			if len(committed) == 0 {
				t.Fatal("chaos run committed no locks; scenario proves nothing")
			}
			for id, dst := range committed {
				if got := receiptLockIDs(t, cl, dst)[id]; got < 1 {
					t.Fatalf("lock %x committed but no receipt reached committee %d", id, dst)
				}
			}
		})
	}
}
