package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repchain/internal/core"
	"repchain/internal/identity"
	"repchain/internal/reputation"
)

// Rehome moves global provider k — together with its linked collectors
// — from its current committee onto committee dst, carrying the full
// learned reputation state along: every governor's per-provider RWM
// weight column and the collectors' additive misreport/forge scores
// transfer via reputation.MigrateInto and are re-applied to the
// rebuilt committees deterministically, so the destination governors
// screen the moved provider with exactly the weights the source
// governors had learned (bitwise — see the portability tests, which
// check the migrated state against an events.ReplayReputation
// reconstruction of the source committee's event log).
//
// Constraints:
//
//   - the global topology must have collector degree s = 1, so the
//     provider's r collectors serve only it and the whole unit moves;
//   - the source committee must keep at least one provider;
//   - per-collector Behaviors are unsupported (their global slicing
//     no longer matches after a move).
//
// The two affected committees are rebuilt like a crash-restart: chain
// heads and reputation persist (on-disk committees keep their ledger
// files; in-memory committees keep reputation but restart their
// chains), while staged mempool submissions and open argue windows are
// dropped exactly as a crash would drop them. Re-home at a quiescent
// round boundary. Migration errors are detected before anything shuts
// down and leave the cluster untouched; an error while the committees
// are being brought back up (disk failure mid-rebuild) closes the
// cluster rather than leaving half of it live.
func (cl *Cluster) Rehome(k, dst int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return ErrClosed
	}
	if len(cl.engines) == 1 {
		return fmt.Errorf("single-committee cluster: %w", ErrRehome)
	}
	if dst < 0 || dst >= len(cl.engines) {
		return fmt.Errorf("committee %d: %w", dst, ErrUnknownCommittee)
	}
	slot, err := cl.homeLocked(k)
	if err != nil {
		return err
	}
	src := slot.Committee
	if src == dst {
		return fmt.Errorf("provider %d already on committee %d: %w", k, dst, ErrRehome)
	}
	if s := cl.cfg.Base.Spec.CollectorDegree(); s != 1 {
		return fmt.Errorf("collector degree %d (need 1 so collectors move with their provider): %w", s, ErrRehome)
	}
	if len(cl.members[src]) == 1 {
		return fmt.Errorf("committee %d would be left without providers: %w", src, ErrRehome)
	}
	if cl.cfg.Base.Behaviors != nil {
		return fmt.Errorf("per-collector behaviours pin the global collector layout: %w", ErrRehome)
	}

	r := cl.cfg.Base.Spec.Degree
	oldSrcEng, oldDstEng := cl.engines[src], cl.engines[dst]
	srcLocal := slot.Local
	oldDstProviders := len(cl.members[dst])

	// Index maps under the circulant s=1 layout (provider k owns
	// collectors [k·r, (k+1)·r)): source survivors above the moved
	// slot shift down one provider / r collectors; destination
	// incumbents keep their indices and the mover appends at the end.
	srcProviderMap := make(map[int]int, len(cl.members[src])-1)
	srcCollectorMap := make(map[int]int, (len(cl.members[src])-1)*r)
	for local := range cl.members[src] {
		if local == srcLocal {
			continue
		}
		to := local
		if local > srcLocal {
			to = local - 1
		}
		srcProviderMap[local] = to
		for t := 0; t < r; t++ {
			srcCollectorMap[local*r+t] = to*r + t
		}
	}
	dstProviderMap := make(map[int]int, oldDstProviders)
	dstCollectorMap := make(map[int]int, oldDstProviders*r)
	for local := range cl.members[dst] {
		dstProviderMap[local] = local
		for t := 0; t < r; t++ {
			dstCollectorMap[local*r+t] = local*r + t
		}
	}
	moverProviderMap := map[int]int{srcLocal: oldDstProviders}
	moverCollectorMap := make(map[int]int, r)
	for t := 0; t < r; t++ {
		moverCollectorMap[srcLocal*r+t] = oldDstProviders*r + t
	}

	// Route the membership tables first so the new topologies and
	// configs derive from the post-move shape.
	mover := cl.members[src][srcLocal]
	cl.members[src] = append(cl.members[src][:srcLocal:srcLocal], cl.members[src][srcLocal+1:]...)
	cl.members[dst] = append(cl.members[dst], mover)
	cl.rebuildHome()
	rollbackMembers := func() {
		cl.members[dst] = cl.members[dst][:len(cl.members[dst])-1]
		ms := append(cl.members[src], 0)
		copy(ms[srcLocal+1:], ms[srcLocal:])
		ms[srcLocal] = mover
		cl.members[src] = ms
		cl.rebuildHome()
	}

	// Build the migrated per-governor tables offline against the new
	// topologies before anything shuts down, so a migration error
	// leaves the running cluster untouched.
	migrate := func(committee int, governors int, apply func(table *reputation.Table, j int) error) ([][]byte, error) {
		ecfg, err := cl.committeeConfig(committee)
		if err != nil {
			return nil, err
		}
		topo, err := identity.NewRegularTopology(ecfg.Spec)
		if err != nil {
			return nil, err
		}
		snaps := make([][]byte, governors)
		for j := range snaps {
			table, err := reputation.NewTable(topo, ecfg.Params)
			if err != nil {
				return nil, err
			}
			if err := apply(table, j); err != nil {
				return nil, err
			}
			snaps[j] = table.Snapshot()
		}
		return snaps, nil
	}
	srcSnaps, err := migrate(src, oldSrcEng.Governors(), func(table *reputation.Table, j int) error {
		return reputation.MigrateInto(table, oldSrcEng.Governor(j).Table(), srcProviderMap, srcCollectorMap)
	})
	if err != nil {
		rollbackMembers()
		return fmt.Errorf("shard: re-home provider %d: %w", k, err)
	}
	dstSnaps, err := migrate(dst, oldDstEng.Governors(), func(table *reputation.Table, j int) error {
		if err := reputation.MigrateInto(table, oldDstEng.Governor(j).Table(), dstProviderMap, dstCollectorMap); err != nil {
			return err
		}
		return reputation.MigrateInto(table, oldSrcEng.Governor(j).Table(), moverProviderMap, moverCollectorMap)
	})
	if err != nil {
		rollbackMembers()
		return fmt.Errorf("shard: re-home provider %d: %w", k, err)
	}

	if err := cl.rebuildCommittees(map[int][][]byte{src: srcSnaps, dst: dstSnaps}); err != nil {
		// Committees are part-closed; a half-live cluster would fork
		// silently, so fail closed.
		cl.closed = true
		for _, eng := range cl.engines {
			_ = eng.Close()
		}
		return fmt.Errorf("shard: re-home provider %d: %w", k, err)
	}
	cl.rehomes.Inc()
	cl.publishHeights()
	return nil
}

// rebuildHome refreshes the provider → slot index from the membership
// tables.
func (cl *Cluster) rebuildHome() {
	for i, ms := range cl.members {
		for local, p := range ms {
			cl.home[p] = identity.CommitteeSlot{Committee: i, Local: local}
		}
	}
}

// rebuildCommittees closes the named committees and brings them back
// with their migrated reputation snapshots. On-disk committees get the
// snapshot written to the governor's .rep sidecar before construction
// (core.New restores it and resumes the persisted chain); in-memory
// committees restore the snapshot into the live tables after
// construction.
func (cl *Cluster) rebuildCommittees(snaps map[int][][]byte) error {
	committees := make([]int, 0, len(snaps))
	for i := range snaps { //repchain:ordered-irrelevant keys are sorted before use
		committees = append(committees, i)
	}
	sort.Ints(committees)
	for _, i := range committees {
		if err := cl.engines[i].Close(); err != nil {
			return fmt.Errorf("close committee %d: %w", i, err)
		}
	}
	for _, i := range committees {
		ecfg, err := cl.committeeConfig(i)
		if err != nil {
			return err
		}
		if ecfg.ChainDir != "" {
			for j, snap := range snaps[i] {
				path := filepath.Join(ecfg.ChainDir, fmt.Sprintf("governor-%d.rep", j))
				if err := os.WriteFile(path, snap, 0o644); err != nil {
					return fmt.Errorf("write migrated reputation for committee %d governor %d: %w", i, j, err)
				}
			}
		}
		eng, err := core.New(ecfg)
		if err != nil {
			return fmt.Errorf("rebuild committee %d: %w", i, err)
		}
		if ecfg.ChainDir == "" {
			for j, snap := range snaps[i] {
				if err := eng.Governor(j).Table().RestoreSnapshot(snap); err != nil {
					_ = eng.Close()
					return fmt.Errorf("restore migrated reputation for committee %d governor %d: %w", i, j, err)
				}
			}
		}
		cl.engines[i] = eng
		// On-disk committees resume their chain (height preserved, all
		// scanned); in-memory committees restart at zero, and any locks
		// their dropped history carried go with it, like a crash.
		cl.scanned[i] = eng.Governor(0).Store().Height()
	}
	return nil
}
