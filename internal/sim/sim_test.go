package sim

import (
	"errors"
	"math"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/rwm"
)

func baseConfig() Config {
	return Config{
		Spec:      identity.TopologySpec{Providers: 1, Collectors: 8, Degree: 8},
		Params:    reputation.DefaultParams(),
		ValidFrac: 0.7,
		ArgueProb: 1,
		Seed:      1,
	}
}

func mustSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad topology", func(c *Config) { c.Spec.Degree = 0 }},
		{"bad params", func(c *Config) { c.Params.Beta = 2 }},
		{"bad valid frac", func(c *Config) { c.ValidFrac = 1.5 }},
		{"bad argue prob", func(c *Config) { c.ArgueProb = -1 }},
		{"bad reveal delay", func(c *Config) { c.RevealDelay = -1 }},
		{"model count", func(c *Config) { c.Models = []CollectorModel{{}} }},
		{"unknown policy", func(c *Config) { c.Policy = "nope" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("New() accepted invalid config")
			}
		})
	}
}

func TestHonestRunHasNoMistakes(t *testing.T) {
	s := mustSim(t, baseConfig())
	res, err := s.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 5000 {
		t.Fatalf("Transactions = %d", res.Transactions)
	}
	// With honest collectors, every unchecked transaction carries a
	// correct -1 consensus, so no valid transaction is ever unchecked:
	// a +1 draw is always checked, and honest reporters all say +1 for
	// valid transactions.
	if res.Mistakes != 0 {
		t.Fatalf("Mistakes = %d with honest collectors", res.Mistakes)
	}
	// Invalid transactions should frequently skip verification.
	if res.Unchecked == 0 {
		t.Fatal("no unchecked transactions: f has no effect")
	}
	if res.CheckFrac+res.UncheckedFrac > 1.0001 {
		t.Fatal("fractions exceed 1")
	}
}

// TestLemma2UncheckedBound: Pr[unchecked] ≤ f, so the empirical
// unchecked fraction must stay below f (plus noise) even under fully
// adversarial labeling.
func TestLemma2UncheckedBound(t *testing.T) {
	for _, f := range []float64{0.2, 0.5, 0.8} {
		cfg := baseConfig()
		cfg.Params.F = f
		cfg.ValidFrac = 0 // all invalid: -1 labels dominate, max skipping
		s := mustSim(t, cfg)
		res, err := s.Run(20000)
		if err != nil {
			t.Fatal(err)
		}
		if res.UncheckedFrac > f+0.02 {
			t.Fatalf("f=%v: unchecked fraction %.4f violates Lemma 2", f, res.UncheckedFrac)
		}
	}
}

// TestTheorem1RegretUnderBound is the simulation-level E1 check: one
// honest collector among noisy peers, regret under 16·√(log₂(r)·T).
func TestTheorem1RegretUnderBound(t *testing.T) {
	const T = 4000
	cfg := baseConfig()
	cfg.Params.Beta = rwm.RecommendedBeta(8, T)
	cfg.ValidFrac = 0.5
	cfg.Models = []CollectorModel{
		{}, // honest
		{Misreport: 0.4}, {Misreport: 0.3, Conceal: 0.2}, {Misreport: 0.5},
		{Conceal: 0.5}, {Misreport: 0.2}, {Misreport: 0.6}, {Conceal: 0.3},
	}
	s := mustSim(t, cfg)
	res, err := s.Run(T)
	if err != nil {
		t.Fatal(err)
	}
	bound := rwm.TheoremOneBound(8, T)
	if res.Regret[0] > bound {
		t.Fatalf("regret %v exceeds Theorem 1 bound %v", res.Regret[0], bound)
	}
}

func TestMisbehaviourCausesMistakesButReputationLimitsThem(t *testing.T) {
	// All collectors lie half the time except one honest: mistakes
	// happen, but far fewer under reputation than under uniform
	// sampling.
	run := func(policy string) Result {
		cfg := baseConfig()
		cfg.Policy = policy
		cfg.Params.F = 0.8
		cfg.ValidFrac = 0.6
		cfg.Models = []CollectorModel{
			{}, {Misreport: 0.8}, {Misreport: 0.8}, {Misreport: 0.8},
			{Misreport: 0.8}, {Misreport: 0.8}, {Misreport: 0.8}, {Misreport: 0.8},
		}
		s := mustSim(t, cfg)
		res, err := s.Run(20000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rep := run("reputation-rwm")
	uni := run("uniform-random")
	if rep.Mistakes == 0 {
		t.Log("reputation made zero mistakes (fine, but surprising)")
	}
	if rep.Mistakes >= uni.Mistakes {
		t.Fatalf("reputation mistakes %d ≥ uniform mistakes %d", rep.Mistakes, uni.Mistakes)
	}
	// CheckAll makes zero unchecked mistakes by construction.
	ca := run("check-all")
	if ca.Mistakes != 0 || ca.Unchecked != 0 {
		t.Fatalf("check-all produced mistakes=%d unchecked=%d", ca.Mistakes, ca.Unchecked)
	}
}

func TestConcealedByAllIsUnreported(t *testing.T) {
	cfg := baseConfig()
	cfg.Spec = identity.TopologySpec{Providers: 1, Collectors: 2, Degree: 2}
	cfg.Models = []CollectorModel{{Conceal: 1}, {Conceal: 1}}
	s := mustSim(t, cfg)
	res, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unreported != 100 {
		t.Fatalf("Unreported = %d, want 100", res.Unreported)
	}
	if res.Checked != 0 || res.Unchecked != 0 {
		t.Fatal("unreported transactions were screened")
	}
}

func TestRevealDelayDefersButDoesNotLoseReveals(t *testing.T) {
	cfg := baseConfig()
	cfg.RevealDelay = 50
	cfg.ValidFrac = 0
	cfg.Models = []CollectorModel{
		{}, {Misreport: 0.5}, {}, {}, {}, {}, {}, {},
	}
	s := mustSim(t, cfg)
	for i := 0; i < 500; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Reveals lag by up to 50 per provider.
	pendingBefore := len(s.pending[0])
	if pendingBefore == 0 || pendingBefore > 50 {
		t.Fatalf("pending = %d, want in (0, 50]", pendingBefore)
	}
	if err := s.FlushReveals(); err != nil {
		t.Fatal(err)
	}
	if len(s.pending[0]) != 0 {
		t.Fatal("FlushReveals left pending entries")
	}
}

func TestRevenueSharesReflectBehaviour(t *testing.T) {
	cfg := baseConfig()
	cfg.Spec = identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 4}
	cfg.ValidFrac = 0.5
	cfg.Models = []CollectorModel{
		{},                // honest
		{Misreport: 0.6},  // liar
		{Conceal: 0.6},    // lazy
		{Misreport: 0.25}, // mildly dishonest
	}
	s := mustSim(t, cfg)
	res, err := s.Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	shares := res.RevenueShares
	if len(shares) != 4 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0] <= shares[1] || shares[0] <= shares[2] || shares[0] <= shares[3] {
		t.Fatalf("honest collector does not earn the most: %v", shares)
	}
	if shares[3] <= shares[1] {
		t.Fatalf("mild misreporter earns no more than heavy misreporter: %v", shares)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() Result {
		s := mustSim(t, baseConfig())
		res, err := s.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Checked != b.Checked || a.Unchecked != b.Unchecked || a.Mistakes != b.Mistakes {
		t.Fatal("same seed produced different results")
	}
	if math.Abs(a.ExpectedLoss-b.ExpectedLoss) > 1e-12 {
		t.Fatal("expected loss differs across identical runs")
	}
}

func TestSnapshotDoesNotAdvance(t *testing.T) {
	s := mustSim(t, baseConfig())
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	a, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a.Transactions != b.Transactions {
		t.Fatal("Snapshot advanced the simulation")
	}
}

func TestErrorsWrapSentinel(t *testing.T) {
	cfg := baseConfig()
	cfg.ValidFrac = 2
	_, err := New(cfg)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("error = %v, want ErrBadConfig", err)
	}
}

func BenchmarkSimStep(b *testing.B) {
	cfg := Config{
		Spec:      identity.TopologySpec{Providers: 8, Collectors: 8, Degree: 4},
		Params:    reputation.DefaultParams(),
		ValidFrac: 0.7,
		ArgueProb: 1,
		Seed:      1,
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
