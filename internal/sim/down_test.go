package sim

import (
	"testing"

	"repchain/internal/identity"
)

// TestDownWindowCountsSilence: a collector crashed for a fixed window
// contributes exactly DownFor silent non-reports and resumes reporting
// afterwards.
func TestDownWindowCountsSilence(t *testing.T) {
	cfg := baseConfig()
	cfg.Models = make([]CollectorModel, cfg.Spec.Collectors)
	cfg.Models[0] = CollectorModel{DownAfter: 10, DownFor: 25}
	s := mustSim(t, cfg)
	res, err := s.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent != 25 {
		t.Fatalf("Silent = %d, want 25", res.Silent)
	}
	// With 7 of 8 experts still honest, the run stays mistake-free.
	if res.Mistakes != 0 {
		t.Fatalf("Mistakes = %d under a single crashed collector", res.Mistakes)
	}
}

// TestDownWindowDecaysWithoutMisreportScore: crash silence costs RWM
// weight (β-decay at reveals) but never moves the misreport score —
// the mechanism's silence/misreport distinction at policy level.
func TestDownWindowDecaysWithoutMisreportScore(t *testing.T) {
	cfg := baseConfig()
	cfg.Spec = identity.TopologySpec{Providers: 1, Collectors: 4, Degree: 4}
	cfg.ValidFrac = 0 // all invalid: every tx can go unchecked and reveal
	cfg.Models = []CollectorModel{
		{DownAfter: 0, DownFor: 100000}, // permanently down
		{}, {}, {},
	}
	s := mustSim(t, cfg)
	if _, err := s.Run(3000); err != nil {
		t.Fatal(err)
	}
	table := s.Table()
	wDown, err := table.Weight(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wLive, err := table.Weight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wDown >= wLive {
		t.Fatalf("down collector weight %v not below live %v", wDown, wLive)
	}
	if got := table.Misreport(0); got != 0 {
		t.Fatalf("Misreport(0) = %v for a silent collector, want 0", got)
	}
}

// TestDownWindowValidation rejects negative windows.
func TestDownWindowValidation(t *testing.T) {
	for _, m := range []CollectorModel{{DownAfter: -1}, {DownFor: -2}} {
		cfg := baseConfig()
		cfg.Models = make([]CollectorModel, cfg.Spec.Collectors)
		cfg.Models[0] = m
		if _, err := New(cfg); err == nil {
			t.Fatalf("New() accepted model %+v", m)
		}
	}
}
