// Package sim is the deterministic policy-level simulation harness
// behind the experiment suite. It drives a screening policy (the
// paper's reputation mechanism or one of the baselines) over a
// synthetic transaction stream at a rate of millions of transactions
// per second — no crypto or networking — so statistical claims
// (Theorems 1, 3, 4; Lemma 2) can be measured at their natural scale.
//
// The full-protocol engine (package core) exercises the identical
// reputation code with real signatures and message passing; this
// harness isolates the mechanism.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repchain/internal/baseline"
	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadConfig reports an invalid simulation configuration.
	ErrBadConfig = errors.New("sim: invalid configuration")
)

// CollectorModel describes one collector's stochastic behaviour: the
// misbehaviour classes 1 and 2 of the paper's §4.2 as probabilities.
// (Class 3, forging, is exercised by the full engine; forged uploads
// never reach screening, so they do not belong in the policy-level
// harness.)
type CollectorModel struct {
	// Misreport is the probability of flipping the honest label.
	Misreport float64
	// Conceal is the probability of not reporting a transaction.
	Conceal float64
	// TurncoatAfter, when positive, makes the collector behave
	// honestly for its first TurncoatAfter observed transactions and
	// then always misreport — the classic whitewashing attack where an
	// adversary first builds reputation, then cashes it in.
	TurncoatAfter int
	// DownAfter and DownFor model a crash–restart window at the policy
	// level: when DownFor is positive the collector is silent on the
	// DownFor transactions after its first DownAfter observations, then
	// reports normally again. Silence is the fault the full engine
	// injects with CrashCollector; here it measures how the mechanism's
	// β-decay treats a node that says nothing, as opposed to one that
	// lies (Misreport).
	DownAfter int
	DownFor   int
}

// Honest is the all-zero model.
var Honest = CollectorModel{}

// Config assembles a simulation.
type Config struct {
	// Spec is the provider–collector topology.
	Spec identity.TopologySpec
	// Params tunes the reputation mechanism (β, f, µ, ν).
	Params reputation.Params
	// Policy names the screening policy (baseline.ForName names);
	// empty means "reputation-rwm".
	Policy string
	// Models assigns a behaviour per collector; nil means all honest.
	Models []CollectorModel
	// ValidFrac is the fraction of transactions that are genuinely
	// valid.
	ValidFrac float64
	// ArgueProb is the probability that the provider of an unchecked
	// valid transaction argues (1 = fully active providers).
	ArgueProb float64
	// RevealDelay is the argue-latency model: a pending unchecked
	// transaction's true status is revealed only after RevealDelay
	// newer unchecked transactions from the same provider arrive
	// (0 = immediate reveal). This is the paper's U-bounded latency,
	// experiment E9.
	RevealDelay int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.ValidFrac < 0 || c.ValidFrac > 1 {
		return fmt.Errorf("valid fraction %v: %w", c.ValidFrac, ErrBadConfig)
	}
	if c.ArgueProb < 0 || c.ArgueProb > 1 {
		return fmt.Errorf("argue probability %v: %w", c.ArgueProb, ErrBadConfig)
	}
	if c.RevealDelay < 0 {
		return fmt.Errorf("reveal delay %d: %w", c.RevealDelay, ErrBadConfig)
	}
	if c.Models != nil && len(c.Models) != c.Spec.Collectors {
		return fmt.Errorf("%d models for %d collectors: %w", len(c.Models), c.Spec.Collectors, ErrBadConfig)
	}
	for i, m := range c.Models {
		if m.DownAfter < 0 || m.DownFor < 0 {
			return fmt.Errorf("collector %d down window (%d, %d): %w", i, m.DownAfter, m.DownFor, ErrBadConfig)
		}
	}
	return nil
}

// Result aggregates a run's metrics.
type Result struct {
	// Transactions is the number of transactions screened.
	Transactions int
	// Checked counts governor validations.
	Checked int
	// Unchecked counts transactions recorded (invalid, unchecked).
	Unchecked int
	// Unreported counts transactions every collector concealed.
	Unreported int
	// Silent counts reports withheld because the collector was inside
	// its down window — crash silence, distinct from strategic
	// concealment.
	Silent int
	// Mistakes counts unchecked transactions that were actually valid
	// — the governor's realized mistakes, the quantity Theorem 4
	// bounds by S + O(√((f+δ)N)).
	Mistakes int
	// Loss is 2·Mistakes, in the paper's loss units.
	Loss float64
	// ExpectedLoss is Σ L_t over reveals — the L_T of Theorem 1
	// (only populated under the reputation policy).
	ExpectedLoss float64
	// Regret is L_T − S^min_T per provider (reputation policy only).
	Regret []float64
	// BestLoss is S^min_T per provider (reputation policy only).
	BestLoss []float64
	// UncheckedFrac is Unchecked / Transactions.
	UncheckedFrac float64
	// CheckFrac is Checked / Transactions.
	CheckFrac float64
	// RevenueShares is the final revenue split (reputation policy
	// only).
	RevenueShares []float64
}

// pendingReveal is one unchecked transaction awaiting its reveal.
type pendingReveal struct {
	provider int
	reports  []reputation.Report
	valid    bool
}

// Sim is a running simulation. It is not safe for concurrent use.
type Sim struct {
	cfg    Config
	topo   *identity.Topology
	table  *reputation.Table // nil unless the reputation policy runs
	policy baseline.Policy
	rng    *rand.Rand

	pending map[int][]pendingReveal

	// seen counts transactions observed per collector, driving the
	// turncoat switch.
	seen []int

	nextProvider int
	res          Result
}

// New builds a simulation.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo, err := identity.NewRegularTopology(cfg.Spec)
	if err != nil {
		return nil, err
	}
	name := cfg.Policy
	if name == "" {
		name = "reputation-rwm"
	}
	var table *reputation.Table
	if name == "reputation-rwm" {
		table, err = reputation.NewTable(topo, cfg.Params)
		if err != nil {
			return nil, err
		}
	}
	policy, err := baseline.ForName(name, table, cfg.Params.F)
	if err != nil {
		return nil, err
	}
	return &Sim{
		cfg:     cfg,
		topo:    topo,
		table:   table,
		policy:  policy,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[int][]pendingReveal),
		seen:    make([]int, topo.Collectors()),
	}, nil
}

// Table exposes the reputation table when the reputation policy runs,
// else nil.
func (s *Sim) Table() *reputation.Table { return s.table }

// Policy exposes the active policy.
func (s *Sim) Policy() baseline.Policy { return s.policy }

// Step screens one synthetic transaction end to end.
func (s *Sim) Step() error {
	k := s.nextProvider
	s.nextProvider = (s.nextProvider + 1) % s.topo.Providers()

	valid := s.rng.Float64() < s.cfg.ValidFrac
	honest := tx.LabelInvalid
	if valid {
		honest = tx.LabelValid
	}

	// Collectors react.
	var reports []reputation.Report
	for _, c := range s.topo.CollectorsOf(k) {
		model := Honest
		if s.cfg.Models != nil {
			model = s.cfg.Models[c]
		}
		s.seen[c]++
		if model.DownFor > 0 && s.seen[c] > model.DownAfter && s.seen[c] <= model.DownAfter+model.DownFor {
			s.res.Silent++
			continue
		}
		if model.TurncoatAfter > 0 && s.seen[c] > model.TurncoatAfter {
			// Whitewashing: reputation built, now always lie.
			reports = append(reports, reputation.Report{Collector: c, Label: honest.Opposite()})
			continue
		}
		if s.rng.Float64() < model.Conceal {
			continue
		}
		label := honest
		if s.rng.Float64() < model.Misreport {
			label = label.Opposite()
		}
		reports = append(reports, reputation.Report{Collector: c, Label: label})
	}
	s.res.Transactions++
	if len(reports) == 0 {
		s.res.Unreported++
		return nil
	}

	d, err := s.policy.Screen(s.rng, k, reports)
	if err != nil {
		return fmt.Errorf("step %d: %w", s.res.Transactions, err)
	}
	if d.Check {
		s.res.Checked++
		status := tx.StatusFor(valid)
		if err := s.policy.RecordChecked(k, reports, status); err != nil {
			return fmt.Errorf("step %d checked feedback: %w", s.res.Transactions, err)
		}
		return nil
	}

	// Recorded (invalid, unchecked): a valid transaction here is a
	// realized governor mistake.
	s.res.Unchecked++
	if valid {
		s.res.Mistakes++
		s.res.Loss += 2
	}
	s.pending[k] = append(s.pending[k], pendingReveal{provider: k, reports: reports, valid: valid})
	return s.drainReveals(k, s.cfg.RevealDelay)
}

// drainReveals applies reveals for provider k, keeping at most `keep`
// pending entries — the U-bounded argue-latency model.
func (s *Sim) drainReveals(k, keep int) error {
	q := s.pending[k]
	for len(q) > keep {
		p := q[0]
		q = q[1:]
		// A valid transaction is revealed valid only if the provider
		// argues; otherwise the expiry rule makes it permanently
		// invalid. An invalid transaction is confirmed invalid.
		status := tx.StatusInvalid
		if p.valid && s.rng.Float64() < s.cfg.ArgueProb {
			status = tx.StatusValid
		}
		before := 0.0
		if s.table != nil {
			if l, err := s.table.GovernorLoss(p.provider); err == nil {
				before = l
			}
		}
		if err := s.policy.RecordRevealed(p.provider, p.reports, status); err != nil {
			return fmt.Errorf("reveal feedback: %w", err)
		}
		if s.table != nil {
			if after, err := s.table.GovernorLoss(p.provider); err == nil {
				s.res.ExpectedLoss += after - before
			}
		}
	}
	s.pending[k] = q
	return nil
}

// FlushReveals forces every pending reveal, as at the end of a run.
func (s *Sim) FlushReveals() error {
	for k := range s.pending {
		if err := s.drainReveals(k, 0); err != nil {
			return err
		}
	}
	return nil
}

// Run executes n steps, flushes reveals, and returns the aggregated
// result.
func (s *Sim) Run(n int) (Result, error) {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
	}
	if err := s.FlushReveals(); err != nil {
		return Result{}, err
	}
	return s.Snapshot()
}

// Snapshot returns the current metrics without advancing the
// simulation.
func (s *Sim) Snapshot() (Result, error) {
	res := s.res
	if res.Transactions > 0 {
		res.UncheckedFrac = float64(res.Unchecked) / float64(res.Transactions)
		res.CheckFrac = float64(res.Checked) / float64(res.Transactions)
	}
	if s.table != nil {
		res.Regret = make([]float64, s.topo.Providers())
		res.BestLoss = make([]float64, s.topo.Providers())
		for k := 0; k < s.topo.Providers(); k++ {
			r, err := s.table.Regret(k)
			if err != nil {
				return Result{}, err
			}
			res.Regret[k] = r
			in, err := s.table.Instance(k)
			if err != nil {
				return Result{}, err
			}
			_, best := in.BestExpert()
			res.BestLoss[k] = best
		}
		shares, err := s.table.RevenueShares()
		if err != nil {
			return Result{}, err
		}
		res.RevenueShares = shares
	}
	return res, nil
}
