package node

import (
	"fmt"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/network"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// Sender abstracts the outbound half of a broadcast network. Both the
// simulation bus (*network.Bus) and the TCP transport satisfy it, so
// node logic is transport-agnostic.
type Sender interface {
	// Multicast delivers one message from `from` to every recipient.
	Multicast(from identity.NodeID, to []identity.NodeID, kind string, payload []byte) error
}

var _ Sender = (*network.Bus)(nil)

// Provider is a data provider p_k. It signs transactions together with
// a timestamp and broadcasts them to the r collectors it is linked
// with; as an *active* provider it retrieves every block and argues
// whenever one of its valid transactions is marked invalid (§3.1).
type Provider struct {
	member identity.Member
	ep     *network.Endpoint
	// collectorIDs are the linked collectors, in index order.
	collectorIDs []identity.NodeID
	governorIDs  []identity.NodeID

	seq uint64
	// truth records the provider's own knowledge of each transaction's
	// validity — used to decide whether to argue. The workload
	// generator supplies it at submission time.
	truth map[crypto.Hash]bool
	// pending tracks transactions not yet seen valid in a block.
	pending map[crypto.Hash]tx.SignedTx
	// argued prevents duplicate argues for one transaction.
	argued map[crypto.Hash]bool
	// settled counts transactions observed in blocks with their final
	// status (valid, or invalid-and-confirmed).
	settledValid   int
	settledInvalid int

	// tracer and round feed lifecycle spans (sign); both are optional.
	tracer *trace.Recorder
	round  uint64
}

// SetTracer attaches a span recorder; nil detaches.
func (p *Provider) SetTracer(r *trace.Recorder) { p.tracer = r }

// SetRound tells the provider which round its next submissions belong
// to, for span attribution only.
func (p *Provider) SetRound(r uint64) { p.round = r }

// NewProvider wires a provider node to the bus.
func NewProvider(member identity.Member, ep *network.Endpoint, collectors, governors []identity.NodeID) *Provider {
	return &Provider{
		member:       member,
		ep:           ep,
		collectorIDs: append([]identity.NodeID(nil), collectors...),
		governorIDs:  append([]identity.NodeID(nil), governors...),
		truth:        make(map[crypto.Hash]bool),
		pending:      make(map[crypto.Hash]tx.SignedTx),
		argued:       make(map[crypto.Hash]bool),
	}
}

// ID returns the provider's node ID.
func (p *Provider) ID() identity.NodeID { return p.member.ID }

// Index returns the provider's index k.
func (p *Provider) Index() int { return p.member.Index }

// Sign builds and signs a transaction, recording the provider's ground
// truth for later argue decisions, without broadcasting it. Callers
// that stage transactions in a mempool sign at admission time and call
// Broadcast at drain time, so the signature's timestamp reflects
// submission while the network only sees drained batches.
func (p *Provider) Sign(kind string, payload []byte, isValid bool, timestamp int64) tx.SignedTx {
	p.seq++
	t := tx.Transaction{
		Provider:  p.member.ID,
		Seq:       p.seq,
		Timestamp: timestamp,
		Kind:      kind,
		Payload:   payload,
	}
	signed := tx.Sign(t, p.member.PrivateKey)
	id := signed.ID()
	p.truth[id] = isValid
	p.pending[id] = signed
	if p.tracer != nil {
		p.tracer.Emit(trace.Span{
			Trace: id.String(),
			Stage: trace.StageSign,
			Node:  string(p.member.ID),
			Round: p.round,
			Attrs: []trace.Attr{{Key: "kind", Value: kind}},
		})
	}
	return signed
}

// Broadcast multicasts an already-signed transaction to the provider's
// linked collectors (broadcast_provider).
func (p *Provider) Broadcast(signed tx.SignedTx, sender Sender) error {
	if err := sender.Multicast(p.member.ID, p.collectorIDs, network.KindProviderTx, signed.EncodeBytes()); err != nil {
		return fmt.Errorf("provider %s broadcast: %w", p.member.ID, err)
	}
	return nil
}

// Submit signs and immediately broadcasts a transaction to the
// provider's linked collectors. isValid is the provider's own ground
// truth, used later to decide argues. timestamp is the logical or wall
// clock reading. Sign + Broadcast fused — the TCP runtime's path.
func (p *Provider) Submit(kind string, payload []byte, isValid bool, timestamp int64, sender Sender) (tx.SignedTx, error) {
	signed := p.Sign(kind, payload, isValid, timestamp)
	if err := p.Broadcast(signed, sender); err != nil {
		return tx.SignedTx{}, err
	}
	return signed, nil
}

// ObserveBlock scans a retrieved block for the provider's own
// transactions and sends argue messages for valid transactions marked
// invalid. It returns the number of argues issued.
func (p *Provider) ObserveBlock(b ledger.Block, sender Sender) (int, error) {
	argues := 0
	for _, rec := range b.Records {
		if rec.Signed.Tx.Provider != p.member.ID {
			continue
		}
		id := rec.Signed.ID()
		switch {
		case rec.Status == tx.StatusValid:
			if _, ok := p.pending[id]; ok {
				p.settledValid++
				delete(p.pending, id)
			}
		case rec.Status == tx.StatusInvalid && rec.Unchecked:
			// Marked invalid without verification. If the provider
			// knows it was valid, argue (the active-provider duty of
			// the Validity property).
			if p.truth[id] && !p.argued[id] {
				signed, ok := p.pending[id]
				if !ok {
					continue
				}
				msg := NewArgue(signed, b.Serial, p.member.PrivateKey)
				if err := sender.Multicast(p.member.ID, p.governorIDs, network.KindArgue, msg.EncodeBytes()); err != nil {
					return argues, fmt.Errorf("provider %s argue: %w", p.member.ID, err)
				}
				p.argued[id] = true
				argues++
			}
			if !p.truth[id] {
				// Invalid and recorded as such: settled.
				if _, ok := p.pending[id]; ok {
					p.settledInvalid++
					delete(p.pending, id)
				}
			}
		case rec.Status == tx.StatusInvalid:
			// Checked invalid: the governor verified it; settled.
			if _, ok := p.pending[id]; ok {
				p.settledInvalid++
				delete(p.pending, id)
			}
		}
	}
	return argues, nil
}

// PendingValid returns how many of the provider's valid transactions
// have not yet appeared valid in any block — the quantity the Validity
// property drives to zero.
func (p *Provider) PendingValid() int {
	n := 0
	for id := range p.pending {
		if p.truth[id] {
			n++
		}
	}
	return n
}

// SettledValid returns how many of the provider's transactions have
// appeared in a block with status valid.
func (p *Provider) SettledValid() int { return p.settledValid }

// Endpoint returns the provider's bus endpoint.
func (p *Provider) Endpoint() *network.Endpoint { return p.ep }
