package node

import (
	"errors"
	"testing"

	"repchain/internal/ledger"
	"repchain/internal/tx"
)

// silentFixture gives collector 1 a conceal-everything behavior, so
// every transaction reaches the governor with exactly one of its two
// linked collectors reporting.
func silentFixture(t *testing.T, silenceDecay bool) *fixture {
	t.Helper()
	behaviors := []Behavior{HonestBehavior{}, ProbBehavior{Conceal: 1}}
	return newFixtureOpts(t, behaviors, func(cfg *GovernorConfig) {
		cfg.SilenceDecay = silenceDecay
	})
}

func TestGovernorCountsSilentReports(t *testing.T) {
	fx := silentFixture(t, false)
	for i := 0; i < 3; i++ {
		fx.runUpload(t, 0, true)
	}
	if _, err := fx.governor.ScreenRound(); err != nil {
		t.Fatal(err)
	}
	st := fx.governor.Stats()
	if st.SilentReports != 3 {
		t.Fatalf("SilentReports = %d, want 3 (one silent collector × 3 txs)", st.SilentReports)
	}
	// Silence is not misreporting: the silent collector's misreport
	// score must be untouched.
	if got := fx.governor.Table().Misreport(1); got != 0 {
		t.Fatalf("silent collector misreport score = %v, want 0", got)
	}
}

func TestSilenceDecayOnCheckedTransaction(t *testing.T) {
	// A valid transaction reported +1 by the only reporter is always
	// checked, so the silent collector hits the RecordSilence path.
	fx := silentFixture(t, true)
	fx.runUpload(t, 0, true)
	if _, err := fx.governor.ScreenRound(); err != nil {
		t.Fatal(err)
	}
	if got := fx.governor.Stats().Checked; got != 1 {
		t.Fatalf("Checked = %d, want 1", got)
	}
	beta := fx.governor.Table().Params().Beta
	wSilent, err := fx.governor.Table().Weight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wSilent != beta {
		t.Fatalf("silent collector weight = %v, want β = %v", wSilent, beta)
	}
	wReporter, err := fx.governor.Table().Weight(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wReporter != 1 {
		t.Fatalf("reporting collector weight = %v, want 1", wReporter)
	}
}

func TestSilenceDecayOffByDefault(t *testing.T) {
	fx := silentFixture(t, false)
	fx.runUpload(t, 0, true)
	if _, err := fx.governor.ScreenRound(); err != nil {
		t.Fatal(err)
	}
	w, err := fx.governor.Table().Weight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("silent collector weight = %v, want 1 with decay disabled", w)
	}
}

func TestAcceptBlockIdempotentOnRedelivery(t *testing.T) {
	fx := newFixture(t, nil)
	gov := fx.governor
	govMem := fx.roster.Governors[0]
	blk, err := ledger.NewBlock(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk.SignAs(govMem.ID, govMem.PrivateKey)
	if err := gov.AcceptBlock(blk, govMem.ID, govMem.Cert.PublicKey); err != nil {
		t.Fatal(err)
	}
	// A duplicated delivery of the committed block is a no-op.
	if err := gov.AcceptBlock(blk, govMem.ID, govMem.Cert.PublicKey); err != nil {
		t.Fatalf("redelivered block error = %v, want idempotent accept", err)
	}
	if h := gov.Store().Height(); h != 1 {
		t.Fatalf("height = %d after redelivery, want 1", h)
	}
	// A different block at the committed serial is a fork.
	signed, err := fx.providers[0].Submit("test", []byte{1}, true, 0, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	rec := ledger.Record{Signed: signed, Label: tx.LabelValid, Status: tx.StatusValid}
	fork, err := ledger.NewBlock(nil, []ledger.Record{rec}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fork.SignAs(govMem.ID, govMem.PrivateKey)
	if err := gov.AcceptBlock(fork, govMem.ID, govMem.Cert.PublicKey); !errors.Is(err, ErrFork) {
		t.Fatalf("conflicting block error = %v, want ErrFork", err)
	}
}
