package node

import (
	"errors"
	"testing"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/network"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// fixture wires a 2-provider / 2-collector / 1-governor deployment on
// an in-memory bus.
type fixture struct {
	im     *identity.Manager
	topo   *identity.Topology
	roster *identity.Roster
	bus    *network.Bus

	providers  []*Provider
	collectors []*Collector
	governor   *Governor
}

var oracle = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func newFixture(t *testing.T, behaviors []Behavior) *fixture {
	t.Helper()
	return newFixtureOpts(t, behaviors, nil)
}

// newFixtureOpts is newFixture with a hook to adjust the governor's
// configuration before construction.
func newFixtureOpts(t *testing.T, behaviors []Behavior, mutate func(*GovernorConfig)) *fixture {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = 0x77
	im, err := identity.NewManagerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 2, Collectors: 2, Degree: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	roster, err := identity.RegisterAll(im, topo, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{im: im, topo: topo, roster: roster, bus: network.NewBus(0)}

	govIDs := []identity.NodeID{roster.Governors[0].ID}
	for k, mem := range roster.Providers {
		ep, err := fx.bus.Register(mem.ID)
		if err != nil {
			t.Fatal(err)
		}
		var collIDs []identity.NodeID
		for _, c := range topo.CollectorsOf(k) {
			collIDs = append(collIDs, roster.Collectors[c].ID)
		}
		fx.providers = append(fx.providers, NewProvider(mem, ep, collIDs, govIDs))
	}
	for c, mem := range roster.Collectors {
		ep, err := fx.bus.Register(mem.ID)
		if err != nil {
			t.Fatal(err)
		}
		var b Behavior
		if behaviors != nil {
			b = behaviors[c]
		}
		fx.collectors = append(fx.collectors, NewCollector(mem, ep, im, oracle, b, govIDs, int64(100+c)))
	}
	ep, err := fx.bus.Register(roster.Governors[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GovernorConfig{
		Member:      roster.Governors[0],
		Endpoint:    ep,
		IM:          im,
		Topology:    topo,
		Params:      reputation.DefaultParams(),
		Validator:   oracle,
		ArgueWindow: 4,
		Seed:        7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gov, err := NewGovernor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx.governor = gov
	return fx
}

// runUpload pushes one provider transaction through collection and
// upload into the governor's groups.
func (fx *fixture) runUpload(t *testing.T, k int, valid bool) tx.SignedTx {
	t.Helper()
	payload := []byte{0}
	if valid {
		payload[0] = 1
	}
	signed, err := fx.providers[k].Submit("test", payload, valid, 0, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fx.collectors {
		if _, err := c.ProcessRound(fx.bus); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.governor.DrainInbox(); err != nil {
		t.Fatal(err)
	}
	return signed
}

func TestRoleIndex(t *testing.T) {
	tests := []struct {
		id      identity.NodeID
		role    identity.Role
		want    int
		wantErr bool
	}{
		{"collector/3", identity.RoleCollector, 3, false},
		{"provider/0", identity.RoleProvider, 0, false},
		{"governor/12", identity.RoleGovernor, 12, false},
		{"collector/3", identity.RoleProvider, 0, true},
		{"collector/", identity.RoleCollector, 0, true},
		{"collector/x1", identity.RoleCollector, 0, true},
		{"bogus", identity.RoleCollector, 0, true},
	}
	for _, tt := range tests {
		got, err := roleIndex(tt.id, tt.role)
		if (err != nil) != tt.wantErr {
			t.Errorf("roleIndex(%q, %v) error = %v, wantErr %v", tt.id, tt.role, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("roleIndex(%q, %v) = %d, want %d", tt.id, tt.role, got, tt.want)
		}
	}
}

func TestArgueRoundTripAndVerify(t *testing.T) {
	seed := make([]byte, crypto.SeedSize)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	signed := tx.Sign(tx.Transaction{Provider: "provider/0", Seq: 1, Kind: "k", Payload: []byte{1}}, priv)
	a := NewArgue(signed, 7, priv)
	if err := a.Verify(pub); err != nil {
		t.Fatalf("Verify() error = %v", err)
	}
	got, err := DecodeArgueBytes(a.EncodeBytes())
	if err != nil {
		t.Fatalf("DecodeArgueBytes() error = %v", err)
	}
	if got.Serial != 7 || got.Signed.ID() != signed.ID() {
		t.Fatal("round trip mismatch")
	}
	// Serial tampering breaks the outer signature.
	got.Serial = 9
	if err := got.Verify(pub); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("tampered Verify() error = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeArgueBytes([]byte("junk")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestCollectorHonestUpload(t *testing.T) {
	fx := newFixture(t, nil)
	fx.runUpload(t, 0, true)
	st := fx.collectors[0].Stats()
	if st.Received != 1 || st.Uploaded != 1 || st.Concealed != 0 {
		t.Fatalf("collector stats = %+v", st)
	}
	// Both collectors reported; governor grouped one tx with two
	// reports.
	if fx.governor.Stats().ReportsReceived != 2 {
		t.Fatalf("governor got %d reports, want 2", fx.governor.Stats().ReportsReceived)
	}
}

func TestCollectorConcealment(t *testing.T) {
	fx := newFixture(t, []Behavior{ProbBehavior{Conceal: 1}, nil})
	fx.runUpload(t, 0, true)
	if fx.collectors[0].Stats().Concealed != 1 {
		t.Fatal("concealer did not conceal")
	}
	if fx.governor.Stats().ReportsReceived != 1 {
		t.Fatalf("governor got %d reports, want 1", fx.governor.Stats().ReportsReceived)
	}
}

func TestCollectorMisreport(t *testing.T) {
	fx := newFixture(t, []Behavior{ProbBehavior{Misreport: 1}, nil})
	fx.runUpload(t, 0, true)
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	// With one liar and one honest reporter, screening may or may not
	// check; but the governor must have two reports with opposite
	// labels — verify via reputation effect after a checked
	// transaction: run enough uploads that a check certainly happens
	// and the misreporter's score drops.
	for i := 0; i < 30; i++ {
		fx.runUpload(t, 0, true)
		if _, err := fx.governor.ScreenRound(); err != nil {
			t.Fatal(err)
		}
	}
	_ = recs
	if fx.governor.Table().Misreport(0) >= 0 {
		t.Fatalf("misreporter score = %v, want negative", fx.governor.Table().Misreport(0))
	}
	if fx.governor.Table().Misreport(1) <= 0 {
		t.Fatalf("honest score = %v, want positive", fx.governor.Table().Misreport(1))
	}
}

func TestCollectorDiscardsBadProviderSignature(t *testing.T) {
	fx := newFixture(t, nil)
	// Craft a transaction whose provider signature is wrong and send
	// it from the provider's endpoint.
	prov := fx.roster.Providers[0]
	forged := tx.Sign(tx.Transaction{
		Provider: prov.ID, Seq: 99, Kind: "x", Payload: []byte{1},
	}, fx.roster.Collectors[0].PrivateKey) // wrong key
	if err := fx.bus.Multicast(prov.ID, []identity.NodeID{fx.roster.Collectors[0].ID},
		network.KindProviderTx, forged.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.collectors[0].ProcessRound(fx.bus); err != nil {
		t.Fatal(err)
	}
	st := fx.collectors[0].Stats()
	if st.Discarded != 1 || st.Uploaded != 0 {
		t.Fatalf("stats = %+v, want 1 discard", st)
	}
}

func TestCollectorDiscardsSpoofedSender(t *testing.T) {
	fx := newFixture(t, nil)
	// provider/1 relays a transaction claiming to be from provider/0:
	// the From/Provider mismatch must be discarded.
	p0 := fx.roster.Providers[0]
	signed := tx.Sign(tx.Transaction{
		Provider: p0.ID, Seq: 5, Kind: "x", Payload: []byte{1},
	}, p0.PrivateKey)
	if err := fx.bus.Multicast(fx.roster.Providers[1].ID,
		[]identity.NodeID{fx.roster.Collectors[0].ID},
		network.KindProviderTx, signed.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.collectors[0].ProcessRound(fx.bus); err != nil {
		t.Fatal(err)
	}
	if fx.collectors[0].Stats().Discarded != 1 {
		t.Fatal("spoofed relay not discarded")
	}
}

func TestGovernorDetectsForgedUpload(t *testing.T) {
	fx := newFixture(t, []Behavior{ProbBehavior{Forge: 1}, ProbBehavior{}})
	fx.runUpload(t, 0, true)
	st := fx.governor.Stats()
	if st.ForgeriesDetected == 0 {
		t.Fatal("forged upload not detected")
	}
	if fx.governor.Table().Forge(0) >= 0 {
		t.Fatalf("forger's forge score = %v, want negative", fx.governor.Table().Forge(0))
	}
	// The forged transaction must not be grouped for screening.
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Signed.Tx.Kind == "forged" {
			t.Fatal("forged transaction reached screening output")
		}
	}
}

func TestGovernorDetectsEquivocation(t *testing.T) {
	fx := newFixture(t, nil)
	// Collector 0 signs two different labels for the same transaction.
	prov := fx.roster.Providers[0]
	coll := fx.roster.Collectors[0]
	signed := tx.Sign(tx.Transaction{Provider: prov.ID, Seq: 1, Kind: "x", Payload: []byte{1}}, prov.PrivateKey)
	govID := fx.roster.Governors[0].ID
	for _, label := range []tx.Label{tx.LabelValid, tx.LabelInvalid} {
		lt, err := tx.SignLabel(signed, label, coll.ID, coll.PrivateKey)
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.bus.Multicast(coll.ID, []identity.NodeID{govID}, network.KindCollectorTx, lt.EncodeBytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.governor.DrainInbox(); err != nil {
		t.Fatal(err)
	}
	if fx.governor.Stats().ForgeriesDetected != 1 {
		t.Fatalf("equivocation detected %d times, want 1", fx.governor.Stats().ForgeriesDetected)
	}
}

func TestGovernorRejectsUnlinkedUpload(t *testing.T) {
	fx := newFixture(t, nil)
	// With degree 2 over 2 collectors every pair is linked; build an
	// extra unlinked collector manually.
	pub, priv, err := crypto.KeyFromSeed(append(make([]byte, crypto.SeedSize-1), 0xEE))
	if err != nil {
		t.Fatal(err)
	}
	outsiderID := identity.MakeNodeID(identity.RoleCollector, 9)
	if _, err := fx.im.Register(outsiderID, identity.RoleCollector, pub); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.bus.Register(outsiderID); err != nil {
		t.Fatal(err)
	}
	prov := fx.roster.Providers[0]
	signed := tx.Sign(tx.Transaction{Provider: prov.ID, Seq: 2, Kind: "x", Payload: []byte{1}}, prov.PrivateKey)
	lt, err := tx.SignLabel(signed, tx.LabelValid, outsiderID, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.bus.Multicast(outsiderID, []identity.NodeID{fx.roster.Governors[0].ID},
		network.KindCollectorTx, lt.EncodeBytes()); err != nil {
		t.Fatal(err)
	}
	if err := fx.governor.DrainInbox(); err != nil {
		t.Fatal(err)
	}
	if fx.governor.Stats().ForgeriesDetected != 1 {
		t.Fatal("unlinked upload not penalized")
	}
}

func TestGovernorScreeningRecordsShape(t *testing.T) {
	fx := newFixture(t, nil)
	validTx := fx.runUpload(t, 0, true)
	invalidTx := fx.runUpload(t, 1, false)
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	foundValid := false
	for _, r := range recs {
		switch r.Signed.ID() {
		case validTx.ID():
			foundValid = true
			if r.Status != tx.StatusValid || r.Unchecked {
				t.Fatalf("valid tx record = %+v", r)
			}
		case invalidTx.ID():
			// Either screened invalid (discarded, no record) or left
			// unchecked (recorded invalid+unchecked).
			if r.Status != tx.StatusInvalid || !r.Unchecked {
				t.Fatalf("invalid tx record = %+v", r)
			}
		}
	}
	if !foundValid {
		t.Fatal("valid checked transaction missing from records")
	}
}

func TestGovernorArgueWindowExpiry(t *testing.T) {
	// Force every transaction unchecked by making all collectors
	// label -1 with f close to 1... simpler: use misreporting
	// collectors and high f so some land unchecked; then flood past
	// the window and verify expiry reveals them invalid.
	fx := newFixture(t, []Behavior{ProbBehavior{Misreport: 1}, ProbBehavior{Misreport: 1}})
	// All collectors lie: valid txs labeled -1. f = 0.5 default means
	// roughly half the -1 draws skip verification.
	for i := 0; i < 60; i++ {
		fx.runUpload(t, 0, true)
		if _, err := fx.governor.ScreenRound(); err != nil {
			t.Fatal(err)
		}
	}
	st := fx.governor.Stats()
	if st.Unchecked == 0 {
		t.Fatal("no unchecked transactions; expiry path not exercised")
	}
	if st.Expired == 0 {
		t.Fatalf("argue window (%d) never expired despite %d unchecked", 4, st.Unchecked)
	}
	if got := fx.governor.PendingUnchecked(0); got > 4 {
		t.Fatalf("pending unchecked %d exceeds window 4", got)
	}
}

func TestProviderObserveBlockArgues(t *testing.T) {
	fx := newFixture(t, nil)
	prov := fx.providers[0]
	signed, err := prov.Submit("test", []byte{1}, true, 0, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	// Build a block recording the tx invalid+unchecked.
	rec := ledger.Record{Signed: signed, Label: tx.LabelInvalid, Status: tx.StatusInvalid, Unchecked: true}
	blk, err := ledger.NewBlock(nil, []ledger.Record{rec}, 0)
	if err != nil {
		t.Fatal(err)
	}
	argues, err := prov.ObserveBlock(blk, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	if argues != 1 {
		t.Fatalf("argues = %d, want 1", argues)
	}
	// Duplicate observation must not re-argue.
	argues, err = prov.ObserveBlock(blk, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	if argues != 0 {
		t.Fatal("provider argued twice for one transaction")
	}
	if prov.PendingValid() != 1 {
		t.Fatalf("PendingValid() = %d, want 1 (still unsettled)", prov.PendingValid())
	}
	// Now a block records it valid: settles.
	rec2 := ledger.Record{Signed: signed, Label: tx.LabelValid, Status: tx.StatusValid}
	blk2, err := ledger.NewBlock(&blk, []ledger.Record{rec2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prov.ObserveBlock(blk2, fx.bus); err != nil {
		t.Fatal(err)
	}
	if prov.PendingValid() != 0 || prov.SettledValid() != 1 {
		t.Fatalf("pending %d settled %d", prov.PendingValid(), prov.SettledValid())
	}
}

func TestProviderDoesNotArgueInvalidTx(t *testing.T) {
	fx := newFixture(t, nil)
	prov := fx.providers[0]
	signed, err := prov.Submit("test", []byte{0}, false, 0, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	rec := ledger.Record{Signed: signed, Label: tx.LabelInvalid, Status: tx.StatusInvalid, Unchecked: true}
	blk, err := ledger.NewBlock(nil, []ledger.Record{rec}, 0)
	if err != nil {
		t.Fatal(err)
	}
	argues, err := prov.ObserveBlock(blk, fx.bus)
	if err != nil {
		t.Fatal(err)
	}
	if argues != 0 {
		t.Fatal("provider argued for its own invalid transaction")
	}
}

func TestGovernorAcceptBlockChecksProposer(t *testing.T) {
	fx := newFixture(t, nil)
	gov := fx.governor
	govMem := fx.roster.Governors[0]
	blk, err := ledger.NewBlock(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk.SignAs(govMem.ID, govMem.PrivateKey)
	// Claiming a different leader is rejected.
	if err := gov.AcceptBlock(blk, "governor/9", govMem.Cert.PublicKey); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("wrong leader error = %v, want ErrBadMessage", err)
	}
	if err := gov.AcceptBlock(blk, govMem.ID, govMem.Cert.PublicKey); err != nil {
		t.Fatalf("AcceptBlock() error = %v", err)
	}
}

func TestHonestBehaviorDefaults(t *testing.T) {
	var b HonestBehavior
	r := b.React(tx.LabelInvalid, nil)
	if !r.Report || r.Label != tx.LabelInvalid {
		t.Fatalf("HonestBehavior.React = %+v", r)
	}
	if b.ForgeCount(nil) != 0 {
		t.Fatal("HonestBehavior forges")
	}
}
