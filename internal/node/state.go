package node

import (
	"fmt"

	"repchain/internal/codec"
)

// govStateTag versions the GovernorState encoding.
const govStateTag = "repchain/govstate/v1"

// GovernorState is the application payload of a ledger snapshot: the
// round counter plus the provable-reputation and stake state a
// governor must carry across restarts. The chain itself re-derives
// everything else, so this is the complete recovery closure of §3.2 —
// an operator restoring snapshot + log suffix gets byte-identical
// reputation to a node that never crashed.
type GovernorState struct {
	// Round is the engine round counter at the snapshot height.
	Round uint64
	// Reputation is the reputation.Table snapshot (its own versioned
	// encoding, stored opaquely).
	Reputation []byte
	// Stakes is the consensus.StakeLedger snapshot, one value per
	// governor in roster order.
	Stakes []uint64
}

// Encode renders the state with the shared codec.
func (s GovernorState) Encode() []byte {
	e := codec.GetEncoder(64 + len(s.Reputation) + 8*len(s.Stakes))
	defer e.Release()
	e.PutString(govStateTag)
	e.PutUint64(s.Round)
	e.PutBytes(s.Reputation)
	e.PutUvarint(uint64(len(s.Stakes)))
	for _, v := range s.Stakes {
		e.PutUint64(v)
	}
	return e.AppendTo(nil)
}

// DecodeGovernorState parses an encoded GovernorState.
func DecodeGovernorState(b []byte) (GovernorState, error) {
	d := codec.NewDecoder(b)
	var s GovernorState
	tag, err := d.String()
	if err != nil {
		return s, fmt.Errorf("governor state tag: %w", ErrBadMessage)
	}
	if tag != govStateTag {
		return s, fmt.Errorf("governor state tag %q: %w", tag, ErrBadMessage)
	}
	if s.Round, err = d.Uint64(); err != nil {
		return s, fmt.Errorf("governor state round: %w", ErrBadMessage)
	}
	if s.Reputation, err = d.Bytes(); err != nil {
		return s, fmt.Errorf("governor state reputation: %w", ErrBadMessage)
	}
	n, err := d.Uvarint()
	if err != nil || n > uint64(d.Remaining()) {
		return s, fmt.Errorf("governor state stake count %d: %w", n, ErrBadMessage)
	}
	s.Stakes = make([]uint64, n)
	for i := range s.Stakes {
		if s.Stakes[i], err = d.Uint64(); err != nil {
			return s, fmt.Errorf("governor state stake %d: %w", i, ErrBadMessage)
		}
	}
	if d.Remaining() != 0 {
		return s, fmt.Errorf("governor state trailing bytes: %w", ErrBadMessage)
	}
	return s, nil
}
