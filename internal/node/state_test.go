package node

import (
	"bytes"
	"errors"
	"testing"
)

func TestGovernorStateRoundTrip(t *testing.T) {
	s := GovernorState{
		Round:      9001,
		Reputation: []byte("reputation snapshot bytes"),
		Stakes:     []uint64{10, 0, 35, 7},
	}
	got, err := DecodeGovernorState(s.Encode())
	if err != nil {
		t.Fatalf("DecodeGovernorState() error = %v", err)
	}
	if got.Round != s.Round || !bytes.Equal(got.Reputation, s.Reputation) {
		t.Fatalf("round trip changed state: %+v != %+v", got, s)
	}
	if len(got.Stakes) != len(s.Stakes) {
		t.Fatalf("stake count %d, want %d", len(got.Stakes), len(s.Stakes))
	}
	for i, v := range s.Stakes {
		if got.Stakes[i] != v {
			t.Fatalf("stake[%d] = %d, want %d", i, got.Stakes[i], v)
		}
	}
	// Empty state is legal (fresh chain, nothing staked).
	if _, err := DecodeGovernorState(GovernorState{}.Encode()); err != nil {
		t.Fatalf("DecodeGovernorState(zero state) error = %v", err)
	}
}

func TestGovernorStateDecodeRejectsDamage(t *testing.T) {
	enc := GovernorState{Round: 3, Reputation: []byte("rep"), Stakes: []uint64{1, 2}}.Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-tag", append([]byte{enc[0]}, bytes.ToUpper(enc[1:])...)},
		{"truncated", enc[:len(enc)-1]},
		{"trailing-bytes", append(append([]byte(nil), enc...), 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeGovernorState(tc.data); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("DecodeGovernorState() error = %v, want ErrBadMessage", err)
			}
		})
	}
}
