// Package node implements the three node roles of the paper's
// hierarchy — Provider, Collector, Governor — as state machines over
// the network bus. Each node consumes the bus messages addressed to it
// and produces the next phase's messages; the core engine sequences
// the Collecting → Uploading → Processing phases of §3.1.
package node

import (
	"errors"
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/tx"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadMessage reports an undecodable or unauthenticated
	// protocol message.
	ErrBadMessage = errors.New("node: bad message")
	// ErrUnknownSender reports a message from an unregistered node.
	ErrUnknownSender = errors.New("node: unknown sender")
	// ErrFork reports a block whose serial is already occupied by a
	// different block — a safety violation, never expected under any
	// injected fault.
	ErrFork = errors.New("node: conflicting block at committed serial")
)

// ArgueMsg is the provider's argue(tx, s) invocation (§3.1): the
// disputed transaction, the serial number of the block that recorded
// it, and the provider's signature over both.
type ArgueMsg struct {
	// Signed is the disputed transaction with its original provider
	// signature.
	Signed tx.SignedTx
	// Serial is s, the block that marked the transaction invalid and
	// unchecked.
	Serial uint64
	// Sig is the provider's signature over (tx ID, serial).
	Sig []byte
}

// encodeArgueSigning appends the byte string the arguing provider signs
// — the disputed transaction ID and the block serial — to e.
func encodeArgueSigning(e *codec.Encoder, id crypto.Hash, serial uint64) {
	e.PutString("repchain/argue/v1")
	e.PutRaw(id[:])
	e.PutUint64(serial)
}

func argueSigningBytes(id crypto.Hash, serial uint64) []byte {
	e := codec.Wrap(make([]byte, 0, 64))
	encodeArgueSigning(&e, id, serial)
	return e.Bytes()
}

// NewArgue builds a signed argue message for a transaction recorded in
// block serial.
func NewArgue(signed tx.SignedTx, serial uint64, key crypto.PrivateKey) ArgueMsg {
	return ArgueMsg{
		Signed: signed,
		Serial: serial,
		Sig:    key.Sign(argueSigningBytes(signed.ID(), serial)),
	}
}

// Verify checks both the argue signature and the embedded provider
// signature against pub.
func (a ArgueMsg) Verify(pub crypto.PublicKey) error {
	if err := a.Signed.VerifyProvider(pub); err != nil {
		return fmt.Errorf("argue inner tx: %w", err)
	}
	if err := crypto.CachedVerify(pub, argueSigningBytes(a.Signed.ID(), a.Serial), a.Sig); err != nil {
		return fmt.Errorf("argue for %s: %w", a.Signed.ID().Short(), ErrBadMessage)
	}
	return nil
}

// EncodeBytes returns the wire encoding of a.
func (a ArgueMsg) EncodeBytes() []byte {
	e := codec.GetEncoder(256)
	a.Signed.Encode(e)
	e.PutUint64(a.Serial)
	e.PutBytes(a.Sig)
	out := e.AppendTo(nil)
	e.Release()
	return out
}

// DecodeArgueBytes decodes an argue message, requiring full
// consumption of b.
func DecodeArgueBytes(b []byte) (ArgueMsg, error) {
	d := codec.NewDecoder(b)
	signed, err := tx.DecodeSignedTx(d)
	if err != nil {
		return ArgueMsg{}, fmt.Errorf("argue: %w", err)
	}
	serial, err := d.Uint64()
	if err != nil {
		return ArgueMsg{}, fmt.Errorf("argue serial: %w", err)
	}
	sig, err := d.Bytes()
	if err != nil {
		return ArgueMsg{}, fmt.Errorf("argue sig: %w", err)
	}
	if err := d.Expect(); err != nil {
		return ArgueMsg{}, fmt.Errorf("argue: %w", err)
	}
	return ArgueMsg{Signed: signed, Serial: serial, Sig: sig}, nil
}

// roleIndex parses the numeric index out of a canonical node ID like
// "collector/3". It returns an error for foreign ID shapes.
func roleIndex(id identity.NodeID, role identity.Role) (int, error) {
	var idx int
	prefix := role.String() + "/"
	s := string(id)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return 0, fmt.Errorf("node id %q is not a %s: %w", id, role, ErrUnknownSender)
	}
	for _, ch := range s[len(prefix):] {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("node id %q: %w", id, ErrUnknownSender)
		}
		idx = idx*10 + int(ch-'0')
	}
	return idx, nil
}
