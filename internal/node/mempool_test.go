package node

import (
	"strings"
	"testing"

	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// TestGovernorEvictOldestOnFullShard drives the eviction path directly:
// with one-slot shards, a second transaction from the same provider
// evicts the first (and its accumulated reports) instead of blocking.
func TestGovernorEvictOldestOnFullShard(t *testing.T) {
	fx := newFixtureOpts(t, nil, func(cfg *GovernorConfig) {
		cfg.MempoolShards = 2
		cfg.MempoolShardCap = 1
	})
	first := fx.runUpload(t, 0, true)
	if got := fx.governor.MempoolDepth(); got != 1 {
		t.Fatalf("MempoolDepth() = %d after first upload, want 1", got)
	}
	second := fx.runUpload(t, 0, true)
	stats := fx.governor.Stats()
	if stats.EvictedTxs != 1 {
		t.Fatalf("EvictedTxs = %d, want 1", stats.EvictedTxs)
	}
	if got := fx.governor.MempoolDepth(); got != 1 {
		t.Fatalf("MempoolDepth() = %d after eviction, want 1", got)
	}
	// Screening sees only the survivor.
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("ScreenRound returned %d records, want 1", len(recs))
	}
	if id := recs[0].Signed.ID(); id != second.ID() {
		t.Fatalf("screened %s, want the surviving tx %s (evicted %s)",
			id.Short(), second.ID().Short(), first.ID().Short())
	}
}

// TestGovernorAdmissionFloorSheds decays a (provider, collector) weight
// below the floor and checks that subsequent verified uploads from the
// distrusted collectors are shed — counted, never queued.
func TestGovernorAdmissionFloorSheds(t *testing.T) {
	fx := newFixtureOpts(t, nil, func(cfg *GovernorConfig) {
		cfg.MempoolShards = 2
		cfg.AdmissionFloor = 0.5
	})
	// Fresh weights are 1, so nothing sheds at floor 0.5.
	fx.runUpload(t, 0, true)
	if s := fx.governor.Stats(); s.ShedReports != 0 {
		t.Fatalf("ShedReports = %d on fresh table, want 0", s.ShedReports)
	}
	if got := fx.governor.MempoolDepth(); got != 1 {
		t.Fatalf("MempoolDepth() = %d, want 1", got)
	}
	// Decay provider 0's collector weights below the floor: a
	// RecordSilence multiplies every absent linked collector by β=0.9,
	// and 0.9^7 ≈ 0.478 < 0.5. Alternate the present reporter so both
	// collectors decay.
	for i := 0; i < 7; i++ {
		for c := 0; c < 2; c++ {
			present := []reputation.Report{{Collector: 1 - c, Label: tx.LabelValid}}
			if err := fx.governor.Table().RecordSilence(0, present); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, err := fx.governor.Table().Weight(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w >= 0.5 {
		t.Fatalf("decayed weight %v not below floor", w)
	}
	fx.runUpload(t, 0, true)
	s := fx.governor.Stats()
	if s.ShedReports != 2 { // both linked collectors' uploads shed
		t.Fatalf("ShedReports = %d after decay, want 2", s.ShedReports)
	}
	if got := fx.governor.MempoolDepth(); got != 1 {
		t.Fatalf("MempoolDepth() = %d, want 1 (shed tx never queued)", got)
	}
	// Provider 1's weights are untouched: its uploads still admit.
	fx.runUpload(t, 1, true)
	if got := fx.governor.Stats().ShedReports; got != 2 {
		t.Fatalf("ShedReports = %d after trusted upload, want still 2", got)
	}
	if got := fx.governor.MempoolDepth(); got != 2 {
		t.Fatalf("MempoolDepth() = %d, want 2", got)
	}
}

// TestGovernorMempoolConfigValidation checks the constructor rejects
// out-of-range mempool settings with errors naming the field.
func TestGovernorMempoolConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GovernorConfig)
		want   string
	}{
		{"negative shards", func(c *GovernorConfig) { c.MempoolShards = -1 }, "mempool shards"},
		{"floor above one", func(c *GovernorConfig) { c.AdmissionFloor = 1.01 }, "admission floor"},
		{"negative floor", func(c *GovernorConfig) { c.AdmissionFloor = -0.5 }, "admission floor"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("fixture panicked: %v", r)
				}
			}()
			seedCfg := func(cfg *GovernorConfig) { tt.mutate(cfg) }
			err := tryNewGovernor(t, seedCfg)
			if err == nil {
				t.Fatal("NewGovernor accepted invalid mempool config")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not name %q", err, tt.want)
			}
		})
	}
}

// tryNewGovernor builds a governor config the way newFixtureOpts does
// but returns the constructor error instead of failing the test.
func tryNewGovernor(t *testing.T, mutate func(*GovernorConfig)) error {
	t.Helper()
	fx := newFixture(t, nil) // valid baseline fixture for roster/bus
	cfg := fx.governor.cfg
	mutate(&cfg)
	_, err := NewGovernor(cfg)
	return err
}

// TestGovernorLegacyDrainsFully pins the backward-compatible default:
// with MempoolShards zero the pool is one unbounded shard and
// ScreenRound drains it completely regardless of BlockLimit.
func TestGovernorLegacyDrainsFully(t *testing.T) {
	fx := newFixtureOpts(t, nil, func(cfg *GovernorConfig) {
		cfg.BlockLimit = 1
	})
	fx.runUpload(t, 0, true)
	fx.runUpload(t, 1, true)
	fx.runUpload(t, 0, false)
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("legacy ScreenRound returned %d records, want all 3", len(recs))
	}
	if fx.governor.MempoolDepth() != 0 {
		t.Fatalf("MempoolDepth() = %d after legacy drain, want 0", fx.governor.MempoolDepth())
	}
}

// TestGovernorShardedDrainCapped pins the sharded behavior: the drain
// is capped at BlockLimit and the backlog carries to the next round.
func TestGovernorShardedDrainCapped(t *testing.T) {
	fx := newFixtureOpts(t, nil, func(cfg *GovernorConfig) {
		cfg.MempoolShards = 2
		cfg.BlockLimit = 2
	})
	for i := 0; i < 4; i++ {
		fx.runUpload(t, i%2, true)
	}
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("capped ScreenRound returned %d records, want 2", len(recs))
	}
	if fx.governor.MempoolDepth() != 2 {
		t.Fatalf("MempoolDepth() = %d, want 2 carried over", fx.governor.MempoolDepth())
	}
	recs, err = fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || fx.governor.MempoolDepth() != 0 {
		t.Fatalf("second ScreenRound returned %d records, depth %d; want 2 and 0",
			len(recs), fx.governor.MempoolDepth())
	}
}
