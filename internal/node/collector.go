package node

import (
	"fmt"
	"math/rand"
	"strconv"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/network"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// Reaction is a collector behaviour's decision for one verified
// transaction.
type Reaction struct {
	// Report is false when the collector conceals the transaction
	// (misbehaviour class 2 of §4.2).
	Report bool
	// Label is the label to upload; an honest collector uploads the
	// validator's label, a misreporter flips it (class 1).
	Label tx.Label
}

// Behavior decides how a collector treats transactions. The honest
// behaviour reports every transaction with the validator's label;
// adversarial behaviours implement the misbehaviour classes of §4.2.
type Behavior interface {
	// React is called once per verified transaction with the honest
	// label.
	React(honest tx.Label, rng *rand.Rand) Reaction
	// ForgeCount returns how many forged transactions to inject this
	// round (misbehaviour class 3).
	ForgeCount(rng *rand.Rand) int
}

// HonestBehavior always reports the validator's label and never
// forges.
type HonestBehavior struct{}

var _ Behavior = HonestBehavior{}

// React implements Behavior.
func (HonestBehavior) React(honest tx.Label, _ *rand.Rand) Reaction {
	return Reaction{Report: true, Label: honest}
}

// ForgeCount implements Behavior.
func (HonestBehavior) ForgeCount(*rand.Rand) int { return 0 }

// ProbBehavior misbehaves with fixed probabilities, covering all three
// misbehaviour classes of §4.2.
type ProbBehavior struct {
	// Misreport is the probability of flipping the honest label.
	Misreport float64
	// Conceal is the probability of not uploading a transaction.
	Conceal float64
	// Forge is the probability of injecting one forged transaction
	// per round.
	Forge float64
}

var _ Behavior = ProbBehavior{}

// React implements Behavior.
func (b ProbBehavior) React(honest tx.Label, rng *rand.Rand) Reaction {
	if rng.Float64() < b.Conceal {
		return Reaction{Report: false}
	}
	label := honest
	if rng.Float64() < b.Misreport {
		label = honest.Opposite()
	}
	return Reaction{Report: true, Label: label}
}

// ForgeCount implements Behavior.
func (b ProbBehavior) ForgeCount(rng *rand.Rand) int {
	if b.Forge > 0 && rng.Float64() < b.Forge {
		return 1
	}
	return 0
}

// Collector is a collector c_i: it verifies provider transactions,
// labels them, and uploads them to every governor (Algorithm 1).
type Collector struct {
	member      identity.Member
	ep          *network.Endpoint
	im          *identity.Manager
	validator   tx.Validator
	behavior    Behavior
	governorIDs []identity.NodeID
	rng         *rand.Rand

	// providerIDs are the linked providers; forged transactions claim
	// one of these identities.
	providerIDs []identity.NodeID

	// stats
	received  int
	uploaded  int
	concealed int
	discarded int
	forged    int
	forgeSeq  uint64

	// tracer and round feed lifecycle spans (label, upload); optional.
	tracer *trace.Recorder
	round  uint64
}

// SetTracer attaches a span recorder; nil detaches.
func (c *Collector) SetTracer(r *trace.Recorder) { c.tracer = r }

// SetRound tells the collector which round is executing, for span
// attribution only.
func (c *Collector) SetRound(r uint64) { c.round = r }

// NewCollector wires a collector node to the bus.
func NewCollector(
	member identity.Member,
	ep *network.Endpoint,
	im *identity.Manager,
	validator tx.Validator,
	behavior Behavior,
	governors []identity.NodeID,
	seed int64,
) *Collector {
	if behavior == nil {
		behavior = HonestBehavior{}
	}
	return &Collector{
		member:      member,
		ep:          ep,
		im:          im,
		validator:   validator,
		behavior:    behavior,
		governorIDs: append([]identity.NodeID(nil), governors...),
		providerIDs: im.ProvidersOf(member.ID),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// ID returns the collector's node ID.
func (c *Collector) ID() identity.NodeID { return c.member.ID }

// Index returns the collector's index i.
func (c *Collector) Index() int { return c.member.Index }

// HandleProviderTx processes one delivered provider transaction —
// Algorithm 1 plus the behaviour model — uploading the labeled
// envelope to every governor through sender. It reports whether an
// upload happened.
func (c *Collector) HandleProviderTx(m network.Message, sender Sender) (bool, error) {
	if m.Kind != network.KindProviderTx {
		return false, nil
	}
	signed, err := tx.DecodeSignedTxBytes(m.Payload)
	if err != nil {
		c.discarded++
		return false, nil
	}
	c.received++
	// verify(p_k, tx): the provider's signature must check out and
	// the claimed provider must be the actual sender.
	if signed.Tx.Provider != m.From {
		c.discarded++
		return false, nil
	}
	pub, err := c.im.PublicKeyOf(signed.Tx.Provider)
	if err != nil {
		c.discarded++
		return false, nil
	}
	if err := signed.VerifyProvider(pub); err != nil {
		c.discarded++
		return false, nil
	}
	return c.uploadVerified(signed, sender)
}

// uploadVerified runs the post-verification tail of Algorithm 1: the
// behaviour reaction, labeling, and the multicast to every governor.
func (c *Collector) uploadVerified(signed tx.SignedTx, sender Sender) (bool, error) {
	honest := tx.LabelFor(c.validator, signed.Tx)
	reaction := c.behavior.React(honest, c.rng)
	if !reaction.Report {
		c.concealed++
		return false, nil
	}
	labeled, err := tx.SignLabel(signed, reaction.Label, c.member.ID, c.member.PrivateKey)
	if err != nil {
		return false, fmt.Errorf("collector %s label: %w", c.member.ID, err)
	}
	var txID string
	if c.tracer != nil {
		txID = signed.ID().String()
		c.tracer.Emit(trace.Span{
			Trace: txID,
			Stage: trace.StageLabel,
			Node:  string(c.member.ID),
			Round: c.round,
			Attrs: []trace.Attr{
				{Key: "label", Value: strconv.Itoa(int(reaction.Label))},
				{Key: "honest", Value: strconv.Itoa(int(honest))},
			},
		})
	}
	if err := sender.Multicast(c.member.ID, c.governorIDs, network.KindCollectorTx, labeled.EncodeBytes()); err != nil {
		return false, fmt.Errorf("collector %s upload: %w", c.member.ID, err)
	}
	if c.tracer != nil {
		c.tracer.Emit(trace.Span{
			Trace: txID,
			Stage: trace.StageUpload,
			Node:  string(c.member.ID),
			Round: c.round,
			Attrs: []trace.Attr{{Key: "governors", Value: strconv.Itoa(len(c.governorIDs))}},
		})
	}
	c.uploaded++
	return true, nil
}

// ForgeRound injects the behaviour model's forged transactions for one
// round (misbehaviour class 3). The collector cannot produce a
// provider signature, so it signs the inner transaction with its own
// key — governors detect this except with negligible probability
// (§4.2). It returns the number of forgeries sent.
func (c *Collector) ForgeRound(sender Sender) (int, error) {
	forged := 0
	for n := c.behavior.ForgeCount(c.rng); n > 0; n-- {
		if len(c.providerIDs) == 0 {
			break
		}
		c.forgeSeq++
		victim := c.providerIDs[c.rng.Intn(len(c.providerIDs))]
		fake := tx.Transaction{
			Provider:  victim,
			Seq:       1_000_000_000 + c.forgeSeq,
			Timestamp: int64(c.forgeSeq),
			Kind:      "forged",
			Payload:   []byte("fabricated"),
		}
		inner := tx.Sign(fake, c.member.PrivateKey) // wrong key on purpose
		labeled, err := tx.SignLabel(inner, tx.LabelValid, c.member.ID, c.member.PrivateKey)
		if err != nil {
			return forged, fmt.Errorf("collector %s forge: %w", c.member.ID, err)
		}
		if err := sender.Multicast(c.member.ID, c.governorIDs, network.KindCollectorTx, labeled.EncodeBytes()); err != nil {
			return forged, fmt.Errorf("collector %s forge upload: %w", c.member.ID, err)
		}
		c.forged++
		forged++
	}
	return forged, nil
}

// ProcessRound drains the collector's bus inbox, uploads labeled
// transactions through sender, and injects the round's forgeries. It
// returns the number of uploads (including forgeries).
//
// Distinct collectors may run ProcessRound concurrently: each touches
// only its own endpoint, RNG, and counters. The engine exploits this
// by handing every collector a private buffering sender and replaying
// the buffered uploads onto the bus in collector order, so the wire
// ordering — and therefore every downstream screening decision — is
// identical at any worker count. A single collector is not safe for
// concurrent invocation.
// Provider-tx phase-1 classes for ProcessRound.
const (
	ptSkip       uint8 = iota // not a provider transaction
	ptDecodeFail              // malformed payload
	ptMismatch                // claimed provider is not the sender, or key unknown
	ptVerify                  // signature checked through the batch
)

func (c *Collector) ProcessRound(sender Sender) (int, error) {
	msgs := c.ep.Receive()

	// Phase 1, in arrival order: decode and structurally screen every
	// provider transaction, collecting the signature checks into one
	// batch. Signing bytes go back to back into a pooled arena; spans
	// are materialized only after all encoding since the arena may
	// still reallocate while growing (DESIGN.md §4f).
	kinds := make([]uint8, len(msgs))
	itemOf := make([]int, len(msgs))
	signeds := make([]tx.SignedTx, len(msgs))
	arena := codec.GetEncoder(256 * len(msgs))
	var items []crypto.BatchItem
	var spans [][2]int
	for i, m := range msgs {
		if m.Kind != network.KindProviderTx {
			kinds[i] = ptSkip
			continue
		}
		signed, err := tx.DecodeSignedTxBytes(m.Payload)
		if err != nil {
			kinds[i] = ptDecodeFail
			continue
		}
		// verify(p_k, tx): the provider's signature must check out and
		// the claimed provider must be the actual sender.
		if signed.Tx.Provider != m.From {
			kinds[i] = ptMismatch
			continue
		}
		pub, err := c.im.PublicKeyOf(signed.Tx.Provider)
		if err != nil {
			kinds[i] = ptMismatch
			continue
		}
		kinds[i] = ptVerify
		signeds[i] = signed
		itemOf[i] = len(items)
		start := arena.Len()
		signed.Tx.EncodeSigning(arena)
		items = append(items, crypto.BatchItem{Pub: pub, Sig: signed.Sig})
		spans = append(spans, [2]int{start, arena.Len()})
	}
	buf := arena.Bytes()
	for k := range items {
		items[k].Msg = buf[spans[k][0]:spans[k][1]]
	}
	verdicts := crypto.VerifyBatch(items)
	arena.Release()

	// Phase 2 replays the verdicts in arrival order: counters advance
	// and the behaviour RNG is consumed at exactly the positions the
	// sequential per-message path would use, so labels and uploads are
	// byte-identical to feeding each message through HandleProviderTx.
	uploads := 0
	for i := range msgs {
		switch kinds[i] {
		case ptSkip:
		case ptDecodeFail:
			c.discarded++
		case ptMismatch:
			c.received++
			c.discarded++
		case ptVerify:
			c.received++
			if verdicts[itemOf[i]] != nil {
				c.discarded++
				continue
			}
			sent, err := c.uploadVerified(signeds[i], sender)
			if err != nil {
				return uploads, err
			}
			if sent {
				uploads++
			}
		}
	}
	forged, err := c.ForgeRound(sender)
	if err != nil {
		return uploads, err
	}
	return uploads + forged, nil
}

// CollectorStats reports a collector's activity counters.
type CollectorStats struct {
	Received  int
	Uploaded  int
	Concealed int
	Discarded int
	Forged    int
}

// Stats returns the collector's counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Received:  c.received,
		Uploaded:  c.uploaded,
		Concealed: c.concealed,
		Discarded: c.discarded,
		Forged:    c.forged,
	}
}

// Endpoint returns the collector's bus endpoint.
func (c *Collector) Endpoint() *network.Endpoint { return c.ep }
