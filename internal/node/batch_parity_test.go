package node

import (
	"bytes"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/network"
	"repchain/internal/tx"
)

// adversarialInbox builds a mixed message batch against the fixture's
// roster: honest uploads, a forged collector signature, a sender
// mismatch, an equivocation pair, an idempotent duplicate, a valid and
// a malformed argue, and one message of a foreign kind.
func adversarialInbox(t *testing.T, fx *fixture) []network.Message {
	t.Helper()
	prov := fx.roster.Providers[0]
	coll0 := fx.roster.Collectors[0]
	coll1 := fx.roster.Collectors[1]

	mkTx := func(seq uint64, valid bool) tx.SignedTx {
		payload := []byte{0, byte(seq)}
		if valid {
			payload[0] = 1
		}
		return tx.Sign(tx.Transaction{
			Provider: prov.ID, Seq: seq, Timestamp: int64(seq), Kind: "parity", Payload: payload,
		}, prov.PrivateKey)
	}
	upload := func(signed tx.SignedTx, label tx.Label, coll identity.Member, from identity.NodeID) network.Message {
		labeled, err := tx.SignLabel(signed, label, coll.ID, coll.PrivateKey)
		if err != nil {
			t.Fatal(err)
		}
		return network.Message{From: from, Kind: network.KindCollectorTx, Payload: labeled.EncodeBytes()}
	}

	tx1, tx2, tx3 := mkTx(1, true), mkTx(2, false), mkTx(3, true)

	forged := upload(tx1, tx.LabelValid, coll0, coll0.ID)
	forged.Payload = append([]byte(nil), forged.Payload...)
	forged.Payload[len(forged.Payload)-3] ^= 0x20 // corrupt the collector signature

	return []network.Message{
		upload(tx1, tx.LabelValid, coll0, coll0.ID), // honest
		upload(tx1, tx.LabelValid, coll1, coll1.ID), // honest, second reporter
		forged, // bad collector signature
		upload(tx2, tx.LabelInvalid, coll0, coll1.ID), // sender != signer
		upload(tx2, tx.LabelInvalid, coll0, coll0.ID), // honest
		upload(tx2, tx.LabelValid, coll0, coll0.ID),   // equivocation: same collector, flipped label
		upload(tx2, tx.LabelInvalid, coll0, coll0.ID), // idempotent duplicate
		upload(tx3, tx.LabelValid, coll1, coll1.ID),   // honest
		{From: prov.ID, Kind: network.KindArgue,
			Payload: NewArgue(tx3, 1, prov.PrivateKey).EncodeBytes()}, // valid argue
		{From: prov.ID, Kind: network.KindArgue, Payload: []byte{0xFF}}, // malformed argue
		{From: prov.ID, Kind: network.KindBlock, Payload: []byte{1}},    // not ours: must pass through
	}
}

// TestHandleBatchMatchesSequential feeds the same adversarial inbox to
// two identically-seeded governors — one message at a time versus one
// HandleBatch call — and requires identical stats, identical
// reputation tables, identical queued argues, and the same pass-through
// messages. This is the batch-verification attribution-parity gate of
// DESIGN.md §4f.
func TestHandleBatchMatchesSequential(t *testing.T) {
	seqFx := newFixture(t, nil)
	batchFx := newFixture(t, nil)
	msgs := adversarialInbox(t, seqFx)

	var seqRest []network.Message
	for _, m := range msgs {
		consumed, err := seqFx.governor.HandleMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if !consumed {
			seqRest = append(seqRest, m)
		}
	}
	batchRest, err := batchFx.governor.HandleBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}

	if seqStats, batchStats := seqFx.governor.Stats(), batchFx.governor.Stats(); seqStats != batchStats {
		t.Fatalf("stats diverge:\nsequential %+v\nbatch      %+v", seqStats, batchStats)
	}
	if !bytes.Equal(seqFx.governor.Table().Snapshot(), batchFx.governor.Table().Snapshot()) {
		t.Fatal("reputation tables diverge")
	}
	if len(seqFx.governor.argues) != len(batchFx.governor.argues) {
		t.Fatalf("queued argues: sequential %d, batch %d",
			len(seqFx.governor.argues), len(batchFx.governor.argues))
	}
	if len(seqRest) != len(batchRest) {
		t.Fatalf("pass-through: sequential %d, batch %d", len(seqRest), len(batchRest))
	}
	for i := range seqRest {
		if seqRest[i].Kind != batchRest[i].Kind || !bytes.Equal(seqRest[i].Payload, batchRest[i].Payload) {
			t.Fatalf("pass-through %d differs", i)
		}
	}

	// Screening the admitted groups must also agree byte for byte.
	seqRecs, err := seqFx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	batchRecs, err := batchFx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRecs) != len(batchRecs) {
		t.Fatalf("records: sequential %d, batch %d", len(seqRecs), len(batchRecs))
	}
	seqBlock, err := seqFx.governor.BuildBlock(seqRecs)
	if err != nil {
		t.Fatal(err)
	}
	batchBlock, err := batchFx.governor.BuildBlock(batchRecs)
	if err != nil {
		t.Fatal(err)
	}
	if seqBlock.Hash() != batchBlock.Hash() {
		t.Fatal("blocks diverge between sequential and batched ingestion")
	}
	if seqBlock.TxRoot != batchBlock.TxRoot {
		t.Fatal("tx roots diverge")
	}
}

// TestHandleBatchForgeryAttribution plants one forged upload among many
// honest ones and checks the penalty lands on exactly the forging
// collector, exactly once — same attribution as the per-message path.
func TestHandleBatchForgeryAttribution(t *testing.T) {
	fx := newFixture(t, nil)
	msgs := adversarialInbox(t, fx)
	if _, err := fx.governor.HandleBatch(msgs); err != nil {
		t.Fatal(err)
	}
	st := fx.governor.Stats()
	// Three penalties in the inbox: the corrupted signature, the
	// sender/signer mismatch, and the equivocation — all by collector 0's
	// identity or against it.
	if st.ForgeriesDetected != 3 {
		t.Fatalf("ForgeriesDetected %d, want 3", st.ForgeriesDetected)
	}
	if st.ReportsReceived != 4 {
		t.Fatalf("ReportsReceived %d, want 4", st.ReportsReceived)
	}
	if st.ArguesRejected != 1 {
		t.Fatalf("ArguesRejected %d, want 1", st.ArguesRejected)
	}
}

// TestBuildBlockIncrementalRootMatchesRecompute checks the packed
// block's incrementally-built root against a from-scratch recompute.
func TestBuildBlockIncrementalRootMatchesRecompute(t *testing.T) {
	fx := newFixture(t, nil)
	for seq := uint64(0); seq < 5; seq++ {
		fx.runUpload(t, int(seq%2), seq%2 == 0)
	}
	recs, err := fx.governor.ScreenRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records screened")
	}
	b, err := fx.governor.BuildBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := ledger.ComputeTxRoot(b.Records); b.TxRoot != want {
		t.Fatalf("incremental root %s, recomputed %s", b.TxRoot.Short(), want.Short())
	}
}
