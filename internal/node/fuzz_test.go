package node

import (
	"testing"
	"testing/quick"

	"repchain/internal/crypto"
	"repchain/internal/tx"
)

// TestQuickDecodeArgueNeverPanics feeds random bytes to the argue
// decoder.
func TestQuickDecodeArgueNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeArgueBytes(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMutatedArgueRejected flips one byte of a valid argue
// message: the result must fail decoding or fail verification.
func TestQuickMutatedArgueRejected(t *testing.T) {
	seed := make([]byte, crypto.SeedSize)
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	signed := tx.Sign(tx.Transaction{Provider: "provider/0", Seq: 1, Kind: "k", Payload: []byte{1, 2, 3}}, priv)
	msg := NewArgue(signed, 3, priv)
	enc := msg.EncodeBytes()
	f := func(pos uint16, bit uint8) bool {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		got, err := DecodeArgueBytes(mut)
		if err != nil {
			return true
		}
		// Decoded fine: either it is byte-identical semantics (the
		// flip hit a spot that round-trips — impossible with canonical
		// varints, but be safe) and verifies, or verification fails.
		if err := got.Verify(pub); err != nil {
			return true
		}
		return got.Serial == msg.Serial && got.Signed.ID() == signed.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
