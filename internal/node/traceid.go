package node

import (
	"repchain/internal/network"
	"repchain/internal/tx"
)

// TraceIDOf derives the lifecycle trace ID carried by a protocol
// payload: the hex hash of the inner signed transaction, the same ID
// every node derives locally when it emits spans (DESIGN.md §4c). It
// returns "" for kinds that aggregate many transactions (blocks,
// tickets, stake traffic) or for payloads that fail to decode — the
// transport layer uses it to stamp per-transaction trace context onto
// frames without parsing anything it would not forward anyway.
func TraceIDOf(kind string, payload []byte) string {
	switch kind {
	case network.KindProviderTx:
		s, err := tx.DecodeSignedTxBytes(payload)
		if err != nil {
			return ""
		}
		return s.ID().String()
	case network.KindCollectorTx:
		lt, err := tx.DecodeLabeledTxBytes(payload)
		if err != nil {
			return ""
		}
		return lt.ID().String()
	case network.KindArgue:
		a, err := DecodeArgueBytes(payload)
		if err != nil {
			return ""
		}
		return a.Signed.ID().String()
	default:
		return ""
	}
}
