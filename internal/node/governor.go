package node

import (
	"fmt"
	"log/slog"
	"math/rand"
	"strconv"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/mempool"
	"repchain/internal/metrics"
	"repchain/internal/network"
	"repchain/internal/reputation"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// drawWeightBuckets bound the screening draw-weight histogram. RWM
// weights start at 1 and only decay multiplicatively, so the mass of
// interest is (0, 1] with resolution near the top.
var drawWeightBuckets = []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// GovernorConfig assembles a governor's dependencies.
type GovernorConfig struct {
	// Member is the governor's credential and signing key.
	Member identity.Member
	// Endpoint is the governor's bus attachment.
	Endpoint *network.Endpoint
	// IM is the identity manager used for verify().
	IM *identity.Manager
	// Topology is the provider–collector graph.
	Topology *identity.Topology
	// Params tunes the reputation mechanism.
	Params reputation.Params
	// Validator is validate(tx).
	Validator tx.Validator
	// BlockLimit is b_limit; zero means unlimited.
	BlockLimit int
	// ArgueWindow is U: an unchecked transaction may be argued until
	// U newer unchecked transactions from the same provider exist.
	ArgueWindow int
	// Seed drives the governor's local screening randomness.
	Seed int64
	// SilenceDecay, when set, applies the β decay to linked collectors
	// that stayed silent on a checked transaction (Table.RecordSilence)
	// so silence costs reputation on both disclosure paths. Unchecked
	// transactions already decay absent collectors at reveal time
	// (case 3), so no double penalty arises. Off by default to preserve
	// the paper's exact update rule.
	SilenceDecay bool
	// Store overrides the governor's ledger replica; nil means a
	// fresh in-memory store. Pass a ledger.FileStore for a persistent
	// replica that survives restarts.
	Store ledger.Store
	// MempoolShards shards the governor's upload mempool by provider
	// index. Zero keeps the legacy single unbounded queue, which drains
	// fully every round — byte-identical to the pre-mempool pipeline.
	MempoolShards int
	// MempoolShardCap bounds each mempool shard (0 = unbounded). A full
	// shard evicts its oldest pending transaction to admit the new one;
	// evictions are counted in mempool.evicted_total.
	MempoolShardCap int
	// AdmissionFloor sheds uploads whose (provider, collector)
	// reputation weight — the same signal the screen.draw_weight
	// histogram observes — has decayed below the floor. Zero admits
	// everything. Weights live in (0, 1] and start at 1, so a fresh
	// table sheds nothing at any floor ≤ 1; the floor only bites once
	// the mechanism has learned to distrust a collector. Shed decisions
	// depend solely on deterministic table state, never on schedule.
	AdmissionFloor float64
	// Metrics, when non-nil, receives screening and reputation-delta
	// metrics. All governors of one engine share a registry, so the
	// per-collector counters aggregate alliance-wide.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives lifecycle spans (screen, pack,
	// commit, argue, reputation). A nil tracer is free: every emission
	// site guards on it before building a span.
	Tracer *trace.Recorder
	// Events, when non-nil, receives the structured consensus event
	// stream (upload screened, block packed/committed, reputation
	// deltas with their arguments). Reputation events carry enough to
	// re-apply the delta offline (events.ReplayReputation), so the
	// stream is an audit trail, not just a log. Nil is free.
	Events *events.Log
}

// GovernorStats counts a governor's screening activity.
type GovernorStats struct {
	// ReportsReceived counts verified collector uploads.
	ReportsReceived int
	// ForgeriesDetected counts uploads failing verify().
	ForgeriesDetected int
	// Checked counts transactions the governor validated.
	Checked int
	// Unchecked counts transactions recorded (invalid, unchecked).
	Unchecked int
	// ValidRecorded counts transactions recorded valid.
	ValidRecorded int
	// InvalidDiscarded counts checked-invalid transactions discarded.
	InvalidDiscarded int
	// ArguesAccepted counts argues that re-validated a transaction.
	ArguesAccepted int
	// ArguesRejected counts stale, duplicate, or failed argues.
	ArguesRejected int
	// Expired counts unchecked transactions revealed invalid after
	// the argue window lapsed.
	Expired int
	// Mistakes counts unchecked transactions whose argue showed the
	// recorded invalid status was wrong — the governor's realized
	// mistakes that Theorem 4 bounds.
	Mistakes int
	// SilentReports counts (transaction, linked collector) pairs where
	// the collector uploaded nothing — silence, as distinct from the
	// misreports counted through the reputation table.
	SilentReports int
	// ShedReports counts verified uploads rejected by the admission
	// floor (the uploader's weight for that provider was below
	// AdmissionFloor).
	ShedReports int
	// EvictedTxs counts pending transactions evicted from a full
	// mempool shard to admit newer arrivals.
	EvictedTxs int
}

// uncheckedEntry tracks one (tx, invalid, unchecked) record awaiting
// its reveal: an argue, or expiry after ArgueWindow newer entries.
type uncheckedEntry struct {
	provider int
	signed   tx.SignedTx
	reports  []reputation.Report
	revealed bool
}

// groupedTx accumulates the pending reports for one transaction. The
// screening order lives in the governor's mempool, not here: the pool
// holds each pending transaction's ID in (shard, seq) position.
type groupedTx struct {
	signed   tx.SignedTx
	provider int
	reports  []reputation.Report
	labels   map[int]tx.Label // collector -> label, for equivocation detection
}

// Governor is a governor g_j: it screens uploaded transactions with
// the reputation mechanism (Algorithm 2), updates reputations
// (Algorithm 3), assembles blocks when leading, and maintains a full
// replica of the ledger.
type Governor struct {
	cfg   GovernorConfig
	table *reputation.Table
	store ledger.Store
	rng   *rand.Rand

	// pending ingestion state: transactions grouped by ID, with the
	// deterministic (shard, seq) screening order kept in pool.
	groups map[crypto.Hash]*groupedTx
	pool   *mempool.Pool[crypto.Hash]
	argues []ArgueMsg

	// pendingRecords carries argue re-validations and block-limit
	// overflow into subsequent blocks.
	pendingRecords []ledger.Record

	// unchecked is the per-provider argue window (U) queue.
	unchecked     map[int][]*uncheckedEntry
	uncheckedByID map[crypto.Hash]*uncheckedEntry

	// committedValid tracks transactions already recorded valid in
	// the replicated chain, preventing duplicate re-inclusion when
	// several governors accept the same argue.
	committedValid map[crypto.Hash]bool
	// processedArgues prevents double-processing one argue delivered
	// by several providers or rounds.
	processedArgues map[crypto.Hash]bool

	stats GovernorStats

	// tracer, events, and round feed lifecycle spans and the structured
	// event stream; the engine advances round via SetRound at each
	// round start.
	tracer *trace.Recorder
	events *events.Log
	round  uint64

	// Pre-resolved per-collector screening counters (indexed by global
	// collector index) and the draw-weight histogram; nil when no
	// registry is configured, so the hot screening loop pays only a nil
	// check with metrics off.
	scrChecked   []*metrics.Counter
	scrUnchecked []*metrics.Counter
	drawWeight   *metrics.Histogram
	// Mempool admission counters; nil without a registry.
	mpShed    *metrics.Counter
	mpEvicted *metrics.Counter

	// merkle is the incremental transaction-root builder BuildBlock
	// feeds while packing, so the root is ready the moment the record
	// list is final (DESIGN.md §4f).
	merkle *crypto.MerkleBuilder
}

// NewGovernor builds a governor from its configuration.
func NewGovernor(cfg GovernorConfig) (*Governor, error) {
	table, err := reputation.NewTable(cfg.Topology, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("governor %s: %w", cfg.Member.ID, err)
	}
	if cfg.ArgueWindow <= 0 {
		cfg.ArgueWindow = 64
	}
	store := cfg.Store
	if store == nil {
		store = ledger.NewMemoryStore()
	}
	if cfg.MempoolShards < 0 {
		return nil, fmt.Errorf("governor %s: mempool shards %d must be non-negative", cfg.Member.ID, cfg.MempoolShards)
	}
	if cfg.AdmissionFloor < 0 || cfg.AdmissionFloor > 1 {
		return nil, fmt.Errorf("governor %s: admission floor %v outside [0, 1]", cfg.Member.ID, cfg.AdmissionFloor)
	}
	g := &Governor{
		cfg:             cfg,
		table:           table,
		store:           store,
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		groups:          make(map[crypto.Hash]*groupedTx),
		pool:            mempool.New[crypto.Hash](cfg.MempoolShards, cfg.MempoolShardCap),
		unchecked:       make(map[int][]*uncheckedEntry),
		uncheckedByID:   make(map[crypto.Hash]*uncheckedEntry),
		committedValid:  make(map[crypto.Hash]bool),
		processedArgues: make(map[crypto.Hash]bool),
		tracer:          cfg.Tracer,
		events:          cfg.Events,
		merkle:          crypto.NewMerkleBuilder(64),
	}
	if cfg.Metrics != nil {
		table.SetMetrics(cfg.Metrics)
		checked := cfg.Metrics.CounterVec("screen.checked_total", "collector")
		unchecked := cfg.Metrics.CounterVec("screen.unchecked_total", "collector")
		n := cfg.Topology.Collectors()
		g.scrChecked = make([]*metrics.Counter, n)
		g.scrUnchecked = make([]*metrics.Counter, n)
		for c := 0; c < n; c++ {
			g.scrChecked[c] = checked.With(strconv.Itoa(c))
			g.scrUnchecked[c] = unchecked.With(strconv.Itoa(c))
		}
		g.drawWeight = cfg.Metrics.Histogram("screen.draw_weight", drawWeightBuckets)
		g.mpShed = cfg.Metrics.Counter("mempool.shed_total")
		g.mpEvicted = cfg.Metrics.Counter("mempool.evicted_total")
	}
	return g, nil
}

// SetRound tells the governor which protocol round is executing, for
// span attribution only.
func (g *Governor) SetRound(r uint64) { g.round = r }

// ID returns the governor's node ID.
func (g *Governor) ID() identity.NodeID { return g.cfg.Member.ID }

// Index returns the governor's index j.
func (g *Governor) Index() int { return g.cfg.Member.Index }

// Table exposes the governor's reputation table for inspection.
func (g *Governor) Table() *reputation.Table { return g.table }

// Store exposes the governor's ledger replica.
func (g *Governor) Store() ledger.Store { return g.store }

// Stats returns the governor's counters.
func (g *Governor) Stats() GovernorStats { return g.stats }

// Endpoint returns the governor's bus endpoint.
func (g *Governor) Endpoint() *network.Endpoint { return g.cfg.Endpoint }

// HandleMessage routes one delivered message. Collector uploads and
// provider argues are consumed (uploads run verify(c_i, Tx) per the
// paper: the collector's signature, its certificate, and the inner
// provider signature from a linked provider; failures penalize the
// uploader's forge score, Algorithm 3 case 1). Messages of other
// kinds are left to the caller; consumed reports whether the governor
// took the message.
func (g *Governor) HandleMessage(m network.Message) (consumed bool, err error) {
	switch m.Kind {
	case network.KindCollectorTx, network.KindArgue:
		_, err := g.HandleBatch([]network.Message{m})
		return true, err
	default:
		return false, nil
	}
}

// DrainInbox consumes the round's uploads and argues, discarding
// anything else.
func (g *Governor) DrainInbox() error {
	_, err := g.HandleBatch(g.cfg.Endpoint.Receive())
	return err
}

// Phase-1 routing classes for HandleBatch.
const (
	pmRest uint8 = iota // not a governor message: hand back to caller
	pmDrop              // consumed silently (upload from a non-collector)
	pmUpload
	pmArgue
)

// pendingUpload carries a classified collector upload between the
// signature-batching phase and the in-order replay phase. Signature
// item indices of -1 mark structural failures discovered before any
// cryptography (bad payload, identity mismatch, unknown key).
type pendingUpload struct {
	labeled      tx.LabeledTx
	collectorIdx int
	providerIdx  int // -1 when the provider is not an indexed provider
	collSig      int // batch-item index of the collector signature, -1 = structural failure
	provSig      int // batch-item index of the inner provider signature, -1 = structural failure
	linked       bool
}

// pendingArgue is the argue counterpart of pendingUpload.
type pendingArgue struct {
	msg      ArgueMsg
	innerSig int // batch-item index of the inner provider signature
	argueSig int // batch-item index of the argue signature
	rejected bool
}

// HandleBatch ingests a batch of delivered messages through one
// crypto.VerifyBatch pass and returns the messages it did not consume,
// in arrival order.
//
// Determinism (DESIGN.md §4f): phase 1 walks the batch in arrival
// order doing only pure work — decoding, identity lookups, and
// appending signature-check items into a pooled arena encoder. Phase 2
// verifies every signature in one batch (cache hits skipped, in-batch
// duplicates coalesced). Phase 3 replays the verdicts in arrival
// order, applying exactly the state transitions the sequential
// per-message path applies: forge penalties, admission shedding,
// mempool insertion, report grouping, and argue queuing all happen in
// the original order, so the governor's observable state is
// byte-identical to feeding the messages through HandleMessage one at
// a time. The only delta is cache-internal: a structurally valid
// upload whose collector signature fails still gets its inner provider
// signature verified (the sequential path short-circuits), which can
// only add sigcache entries, never change a verdict.
func (g *Governor) HandleBatch(msgs []network.Message) ([]network.Message, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	kinds := make([]uint8, len(msgs))
	slots := make([]int, len(msgs))
	var ups []pendingUpload
	var args []pendingArgue

	// Signing messages are encoded back to back into one pooled arena;
	// only (start, end) spans are recorded during encoding because the
	// arena may still reallocate while growing.
	arena := codec.GetEncoder(256 * len(msgs))
	var items []crypto.BatchItem
	var spans [][2]int
	addItem := func(pub crypto.PublicKey, start int, sig []byte) int {
		items = append(items, crypto.BatchItem{Pub: pub, Sig: sig})
		spans = append(spans, [2]int{start, arena.Len()})
		return len(items) - 1
	}

	for i, m := range msgs {
		switch m.Kind {
		case network.KindCollectorTx:
			collectorIdx, err := roleIndex(m.From, identity.RoleCollector)
			if err != nil {
				kinds[i] = pmDrop // not a collector: ignore
				continue
			}
			u := pendingUpload{collectorIdx: collectorIdx, providerIdx: -1, collSig: -1, provSig: -1}
			labeled, derr := tx.DecodeLabeledTxBytes(m.Payload)
			// The upload must actually come from the collector that
			// signed it.
			if derr == nil && labeled.Collector == m.From {
				if collPub, perr := g.cfg.IM.PublicKeyOf(labeled.Collector); perr == nil {
					u.labeled = labeled
					start := arena.Len()
					labeled.EncodeSigning(arena)
					u.collSig = addItem(collPub, start, labeled.Sig)
					provID := labeled.Signed.Tx.Provider
					if provPub, perr := g.cfg.IM.PublicKeyOf(provID); perr == nil {
						start = arena.Len()
						labeled.Signed.Tx.EncodeSigning(arena)
						u.provSig = addItem(provPub, start, labeled.Signed.Sig)
					}
					u.linked = g.cfg.IM.Linked(provID, labeled.Collector)
					if pi, rerr := roleIndex(provID, identity.RoleProvider); rerr == nil {
						u.providerIdx = pi
					}
				}
			}
			kinds[i] = pmUpload
			slots[i] = len(ups)
			ups = append(ups, u)
		case network.KindArgue:
			a := pendingArgue{innerSig: -1, argueSig: -1, rejected: true}
			msg, derr := DecodeArgueBytes(m.Payload)
			// Only the authoring provider may argue its own transaction.
			if derr == nil && msg.Signed.Tx.Provider == m.From {
				if pub, perr := g.cfg.IM.PublicKeyOf(msg.Signed.Tx.Provider); perr == nil {
					a.msg = msg
					a.rejected = false
					start := arena.Len()
					msg.Signed.Tx.EncodeSigning(arena)
					a.innerSig = addItem(pub, start, msg.Signed.Sig)
					start = arena.Len()
					encodeArgueSigning(arena, msg.Signed.ID(), msg.Serial)
					a.argueSig = addItem(pub, start, msg.Sig)
				}
			}
			kinds[i] = pmArgue
			slots[i] = len(args)
			args = append(args, a)
		default:
			kinds[i] = pmRest
		}
	}

	// All encoding is done: the arena is stable, so the spans can be
	// materialized into message slices and verified in one pass. The
	// batch hashes every message during classification, so the arena
	// can go back to the pool right after.
	buf := arena.Bytes()
	for k := range items {
		items[k].Msg = buf[spans[k][0]:spans[k][1]]
	}
	verdicts := crypto.VerifyBatch(items)
	arena.Release()

	var rest []network.Message
	for i, m := range msgs {
		switch kinds[i] {
		case pmRest:
			rest = append(rest, m)
		case pmDrop:
		case pmUpload:
			u := &ups[slots[i]]
			// The verify(c_i, Tx) predicate chain, in the sequential
			// path's order: decode, collector signature, provider key,
			// provider signature, link, provider index.
			if u.collSig < 0 || verdicts[u.collSig] != nil ||
				u.provSig < 0 || verdicts[u.provSig] != nil ||
				!u.linked || u.providerIdx < 0 {
				if err := g.penalizeUpload(u.collectorIdx); err != nil {
					return rest, err
				}
				continue
			}
			if err := g.admitUpload(u.collectorIdx, u.providerIdx, u.labeled); err != nil {
				return rest, err
			}
		case pmArgue:
			a := &args[slots[i]]
			if a.rejected || verdicts[a.innerSig] != nil || verdicts[a.argueSig] != nil {
				g.stats.ArguesRejected++
				continue
			}
			g.argues = append(g.argues, a.msg)
		}
	}
	return rest, nil
}

// penalizeUpload applies the Algorithm 3 case-1 forge penalty for a
// failed upload verification.
func (g *Governor) penalizeUpload(collectorIdx int) error {
	g.stats.ForgeriesDetected++
	if collectorIdx < 0 || collectorIdx >= g.table.Collectors() {
		// An uploader outside the known collector set cannot be
		// scored, only rejected.
		return nil
	}
	if err := g.table.RecordForgery(collectorIdx); err != nil {
		return fmt.Errorf("governor %s forge penalty: %w", g.cfg.Member.ID, err)
	}
	g.events.Emit(events.TypeReputationForge, g.round, string(g.cfg.Member.ID),
		slog.Int("collector", collectorIdx))
	return nil
}

// admitUpload runs the post-verification tail of upload ingestion:
// admission control, mempool insertion, and report grouping.
func (g *Governor) admitUpload(collectorIdx, providerIdx int, labeled tx.LabeledTx) error {
	// Admission control: a verified upload from a collector this
	// governor has learned to distrust for this provider is shed before
	// it costs mempool space or screening work. The weight is the same
	// draw-time signal screening observes; the comparison reads only
	// deterministic table state.
	if g.cfg.AdmissionFloor > 0 && collectorIdx >= 0 && collectorIdx < g.table.Collectors() {
		if w, werr := g.table.Weight(providerIdx, collectorIdx); werr == nil && w < g.cfg.AdmissionFloor {
			g.stats.ShedReports++
			if g.mpShed != nil {
				g.mpShed.Inc()
			}
			return nil
		}
	}

	id := labeled.ID()
	grp, ok := g.groups[id]
	if !ok {
		// New pending transaction: take a mempool slot in the
		// provider's shard. A full shard evicts its oldest pending
		// transaction (and that transaction's accumulated reports) to
		// admit the newer arrival.
		if !g.pool.HasRoom(providerIdx) {
			if old, ok := g.pool.EvictOldest(providerIdx); ok {
				delete(g.groups, old)
				g.stats.EvictedTxs++
				if g.mpEvicted != nil {
					g.mpEvicted.Inc()
				}
			}
		}
		if _, err := g.pool.Add(providerIdx, id); err != nil {
			return fmt.Errorf("governor %s mempool: %w", g.cfg.Member.ID, err)
		}
		grp = &groupedTx{
			signed:   labeled.Signed,
			provider: providerIdx,
			labels:   make(map[int]tx.Label),
		}
		g.groups[id] = grp
	}
	if prev, dup := grp.labels[collectorIdx]; dup {
		if prev != labeled.Label {
			// Equivocation: two different signed labels for one
			// transaction. Treat as fabrication.
			return g.penalizeUpload(collectorIdx)
		}
		return nil // idempotent duplicate
	}
	grp.labels[collectorIdx] = labeled.Label
	grp.reports = append(grp.reports, reputation.Report{Collector: collectorIdx, Label: labeled.Label})
	g.stats.ReportsReceived++
	return nil
}

// ProcessArgues resolves queued argues (Algorithm 2 lines 34–39): the
// governor re-validates the disputed transaction; a valid one is
// appended (tx, valid) to a later block. When the governor itself
// left the transaction unchecked, the reveal also updates reputations
// with case 3. Every governor processes every argue — the chain
// records the leader's screening, so a governor that happened to check
// the transaction locally must still be ready to re-include it when it
// next leads.
func (g *Governor) ProcessArgues() error {
	for _, a := range g.argues {
		id := a.Signed.ID()
		if g.processedArgues[id] || g.committedValid[id] {
			g.stats.ArguesRejected++
			continue
		}
		g.processedArgues[id] = true
		if g.tracer != nil {
			g.tracer.Emit(trace.Span{
				Trace: id.String(),
				Stage: trace.StageArgue,
				Node:  string(g.cfg.Member.ID),
				Round: g.round,
				Attrs: []trace.Attr{{Key: "serial", Value: strconv.FormatUint(a.Serial, 10)}},
			})
		}

		status := tx.StatusInvalid
		if g.cfg.Validator.Validate(a.Signed.Tx) {
			status = tx.StatusValid
			g.pendingRecords = append(g.pendingRecords, ledger.Record{
				Signed: a.Signed,
				Label:  tx.LabelValid,
				Status: tx.StatusValid,
			})
			g.stats.ArguesAccepted++
			g.stats.Mistakes++ // recorded invalid, actually valid
		} else {
			g.stats.ArguesRejected++
		}
		// Case-3 reveal only applies where this governor holds the
		// unchecked entry (it knows who reported what).
		if entry, ok := g.uncheckedByID[id]; ok && !entry.revealed {
			if len(entry.reports) > 0 {
				res, err := g.table.RecordRevealed(entry.provider, entry.reports, status)
				if err != nil {
					return fmt.Errorf("governor %s argue reveal: %w", g.cfg.Member.ID, err)
				}
				g.events.Emit(events.TypeReputationReveal, g.round, string(g.cfg.Member.ID),
					slog.Int("provider", entry.provider),
					slog.String("reports", events.FormatReports(entry.reports)),
					slog.Int("status", int(status)),
					slog.String("tx", id.String()),
					slog.String("gamma", strconv.FormatFloat(res.Gamma, 'g', 6, 64)),
					slog.String("loss", strconv.FormatFloat(res.Loss, 'g', 6, 64)))
				if g.tracer != nil {
					g.tracer.Emit(trace.Span{
						Trace: id.String(),
						Stage: trace.StageReputation,
						Node:  string(g.cfg.Member.ID),
						Round: g.round,
						Attrs: []trace.Attr{
							{Key: "kind", Value: "reveal"},
							{Key: "gamma", Value: strconv.FormatFloat(res.Gamma, 'g', 6, 64)},
							{Key: "loss", Value: strconv.FormatFloat(res.Loss, 'g', 6, 64)},
						},
					})
				}
			}
			entry.revealed = true
			delete(g.uncheckedByID, id)
		}
	}
	g.argues = g.argues[:0]
	return nil
}

// ScreenRound runs Algorithm 2 over a batch drained from the
// governor's mempool and returns the records destined for the next
// block, including any pending carryover. Reputation updates (cases 2
// and 3) happen inline.
//
// The drain is the determinism pivot: entries come out in (shard, seq)
// order — a pure function of upload arrival order, which the bus fixes
// by sequence number — so screening consumes the governor's RNG stream
// identically at any worker count. With an explicitly sharded mempool
// and a block limit, the drain is capped at BlockLimit so each round
// screens one block-sized batch and the backlog carries over; the
// legacy configuration drains everything, exactly as the pre-mempool
// pipeline did.
func (g *Governor) ScreenRound() ([]ledger.Record, error) {
	max := 0
	if g.cfg.MempoolShards > 0 {
		max = g.cfg.BlockLimit
	}
	batch := g.pool.Drain(max)
	records := g.pendingRecords
	g.pendingRecords = nil

	for _, id := range batch {
		grp, ok := g.groups[id]
		if !ok {
			continue
		}
		delete(g.groups, id)
		if silent := len(g.cfg.Topology.CollectorsOf(grp.provider)) - len(grp.reports); silent > 0 {
			g.stats.SilentReports += silent
		}
		dec, err := g.table.Screen(g.rng, grp.provider, grp.reports)
		if err != nil {
			return nil, fmt.Errorf("governor %s screen: %w", g.cfg.Member.ID, err)
		}
		if g.drawWeight != nil {
			if w, werr := g.table.Weight(grp.provider, dec.Collector); werr == nil {
				g.drawWeight.Observe(w)
			}
			if dec.Check {
				g.scrChecked[dec.Collector].Inc()
			} else {
				g.scrUnchecked[dec.Collector].Inc()
			}
		}
		// One hex encode per transaction: the ID string feeds the span
		// and up to two events below.
		txID := grp.signed.ID().String()
		if g.tracer != nil {
			g.tracer.Emit(trace.Span{
				Trace: txID,
				Stage: trace.StageScreen,
				Node:  string(g.cfg.Member.ID),
				Round: g.round,
				Attrs: []trace.Attr{
					{Key: "collector", Value: strconv.Itoa(dec.Collector)},
					{Key: "checked", Value: strconv.FormatBool(dec.Check)},
					{Key: "prob", Value: strconv.FormatFloat(dec.Prob, 'g', 6, 64)},
					{Key: "label", Value: strconv.Itoa(int(dec.Label))},
				},
			})
		}
		g.events.Emit(events.TypeUploadScreened, g.round, string(g.cfg.Member.ID),
			slog.String("tx", txID),
			slog.Int("collector", dec.Collector),
			slog.Bool("checked", dec.Check),
			slog.Int("label", int(dec.Label)))
		if dec.Check {
			g.stats.Checked++
			valid := g.cfg.Validator.Validate(grp.signed.Tx)
			status := tx.StatusFor(valid)
			if err := g.table.RecordChecked(grp.provider, grp.reports, status); err != nil {
				return nil, fmt.Errorf("governor %s checked update: %w", g.cfg.Member.ID, err)
			}
			g.events.Emit(events.TypeReputationChecked, g.round, string(g.cfg.Member.ID),
				slog.Int("provider", grp.provider),
				slog.String("reports", events.FormatReports(grp.reports)),
				slog.Int("status", int(status)),
				slog.String("tx", txID))
			if g.tracer != nil {
				g.tracer.Emit(trace.Span{
					Trace: txID,
					Stage: trace.StageReputation,
					Node:  string(g.cfg.Member.ID),
					Round: g.round,
					Attrs: []trace.Attr{
						{Key: "kind", Value: "checked"},
						{Key: "status", Value: strconv.Itoa(int(status))},
						{Key: "reports", Value: strconv.Itoa(len(grp.reports))},
					},
				})
			}
			if g.cfg.SilenceDecay {
				if err := g.table.RecordSilence(grp.provider, grp.reports); err != nil {
					return nil, fmt.Errorf("governor %s silence update: %w", g.cfg.Member.ID, err)
				}
				g.events.Emit(events.TypeReputationSilence, g.round, string(g.cfg.Member.ID),
					slog.Int("provider", grp.provider),
					slog.String("reports", events.FormatReports(grp.reports)))
			}
			if valid {
				records = append(records, ledger.Record{
					Signed: grp.signed,
					Label:  dec.Label,
					Status: tx.StatusValid,
				})
				g.stats.ValidRecorded++
			} else {
				// "For each transaction that is verified by g_j, g_j
				// discards it if the validation result is invalid."
				g.stats.InvalidDiscarded++
			}
			continue
		}
		// Unchecked: record (tx, invalid, unchecked) and open the
		// argue window.
		g.stats.Unchecked++
		records = append(records, ledger.Record{
			Signed:    grp.signed,
			Label:     dec.Label,
			Status:    tx.StatusInvalid,
			Unchecked: true,
		})
		entry := &uncheckedEntry{
			provider: grp.provider,
			signed:   grp.signed,
			reports:  grp.reports,
		}
		g.unchecked[grp.provider] = append(g.unchecked[grp.provider], entry)
		g.uncheckedByID[grp.signed.ID()] = entry
		if err := g.expireOld(grp.provider); err != nil {
			return nil, err
		}
	}
	return records, nil
}

// MempoolDepth reports how many transactions await screening in the
// governor's mempool.
func (g *Governor) MempoolDepth() int { return g.pool.Len() }

// expireOld reveals-as-invalid any unchecked transaction of provider k
// buried under more than ArgueWindow newer unchecked transactions:
// "Every unchecked transaction exceeding this limit will be regarded
// as invalid permanently."
func (g *Governor) expireOld(k int) error {
	q := g.unchecked[k]
	for len(q) > g.cfg.ArgueWindow {
		entry := q[0]
		q = q[1:]
		if entry.revealed {
			continue
		}
		if len(entry.reports) > 0 {
			if _, err := g.table.RecordRevealed(entry.provider, entry.reports, tx.StatusInvalid); err != nil {
				return fmt.Errorf("governor %s expiry reveal: %w", g.cfg.Member.ID, err)
			}
			g.events.Emit(events.TypeReputationReveal, g.round, string(g.cfg.Member.ID),
				slog.Int("provider", entry.provider),
				slog.String("reports", events.FormatReports(entry.reports)),
				slog.Int("status", int(tx.StatusInvalid)),
				slog.String("tx", entry.signed.ID().String()),
				slog.String("cause", "window_expiry"))
		}
		entry.revealed = true
		delete(g.uncheckedByID, entry.signed.ID())
		g.stats.Expired++
	}
	// Also drop already-revealed heads to bound the queue.
	for len(q) > 0 && q[0].revealed {
		q = q[1:]
	}
	g.unchecked[k] = q
	return nil
}

// BuildBlock assembles and signs the round's block from records when
// this governor leads. Records already committed valid elsewhere in
// the chain are dropped (several governors may hold the same argue
// re-validation pending); records beyond BlockLimit are carried over
// to the next block.
func (g *Governor) BuildBlock(records []ledger.Record) (ledger.Block, error) {
	// The transaction root is built incrementally while the block is
	// packed: each record that survives the duplicate filter (up to the
	// block limit) is hashed into the Merkle builder as it is placed,
	// so the root is ready the moment the record list is final and the
	// records are never re-walked for hashing (DESIGN.md §4f).
	g.merkle.Reset()
	enc := codec.GetEncoder(256)
	limit := g.cfg.BlockLimit
	fresh := records[:0]
	for _, r := range records {
		if r.Status == tx.StatusValid && g.committedValid[r.Signed.ID()] {
			continue
		}
		fresh = append(fresh, r)
		if limit <= 0 || len(fresh) <= limit {
			enc.Reset()
			r.Encode(enc)
			g.merkle.Add(enc.Bytes())
		}
	}
	enc.Release()
	records = fresh
	if limit > 0 && len(records) > limit {
		g.pendingRecords = append(records[limit:], g.pendingRecords...)
		records = records[:limit]
	}
	head, err := g.store.Head()
	var prev *ledger.Block
	if err == nil {
		prev = &head
	}
	b, err := ledger.NewBlockWithRoot(prev, records, g.cfg.BlockLimit, g.merkle.Root())
	if err != nil {
		return ledger.Block{}, fmt.Errorf("governor %s build block: %w", g.cfg.Member.ID, err)
	}
	b.SignAs(g.cfg.Member.ID, g.cfg.Member.PrivateKey)
	g.events.Emit(events.TypeBlockPacked, g.round, string(g.cfg.Member.ID),
		slog.Uint64("serial", b.Serial),
		slog.Int("records", len(b.Records)),
		slog.String("hash", b.Hash().Short()))
	if g.tracer != nil {
		serial := strconv.FormatUint(b.Serial, 10)
		for _, rec := range b.Records {
			g.tracer.Emit(trace.Span{
				Trace: rec.Signed.ID().String(),
				Stage: trace.StagePack,
				Node:  string(g.cfg.Member.ID),
				Round: g.round,
				Attrs: []trace.Attr{
					{Key: "serial", Value: serial},
					{Key: "status", Value: strconv.Itoa(int(rec.Status))},
					{Key: "unchecked", Value: strconv.FormatBool(rec.Unchecked)},
				},
			})
		}
	}
	return b, nil
}

// StashRecords keeps a non-leading governor's screening output for
// potential later proposals. In the paper the leader's screening
// forms the block; other governors' screenings only feed their local
// reputations, so the records are dropped — only argue re-validations
// and overflow stay pending.
func (g *Governor) StashRecords(records []ledger.Record) {
	// Keep only records that must eventually appear: argue
	// re-validations queued in pendingRecords already survive; the
	// round's screening records are the leader's responsibility.
	_ = records
}

// AcceptBlock verifies and appends a proposed block: the proposer must
// be the elected leader, the signature must verify, and the chain
// links must hold (the store enforces serial order and the previous
// hash). A redelivery of an already-committed block (same serial, same
// hash — a duplicated network message) is accepted idempotently; a
// different block at a committed serial is a fork and fails with
// ErrFork.
func (g *Governor) AcceptBlock(b ledger.Block, leader identity.NodeID, leaderPub crypto.PublicKey) error {
	if b.Proposer != leader {
		return fmt.Errorf("governor %s: block %d proposed by %s, leader is %s: %w",
			g.cfg.Member.ID, b.Serial, b.Proposer, leader, ErrBadMessage)
	}
	if err := b.VerifyProposer(leaderPub); err != nil {
		return fmt.Errorf("governor %s: %w", g.cfg.Member.ID, err)
	}
	if b.Serial >= 1 && b.Serial <= g.store.Height() {
		committed, err := g.store.Get(b.Serial)
		if err != nil {
			return fmt.Errorf("governor %s: %w", g.cfg.Member.ID, err)
		}
		if committed.Hash() == b.Hash() {
			return nil
		}
		return fmt.Errorf("governor %s: block %d hash %s, committed %s: %w",
			g.cfg.Member.ID, b.Serial, b.Hash().Short(), committed.Hash().Short(), ErrFork)
	}
	if err := g.store.Append(b); err != nil {
		return fmt.Errorf("governor %s: %w", g.cfg.Member.ID, err)
	}
	g.events.Emit(events.TypeBlockCommitted, g.round, string(g.cfg.Member.ID),
		slog.Uint64("serial", b.Serial),
		slog.Int("records", len(b.Records)),
		slog.String("proposer", string(b.Proposer)),
		slog.String("hash", b.Hash().Short()))
	var serial string
	if g.tracer != nil {
		serial = strconv.FormatUint(b.Serial, 10)
	}
	for _, rec := range b.Records {
		if rec.Status == tx.StatusValid {
			g.committedValid[rec.Signed.ID()] = true
		}
		if g.tracer != nil {
			g.tracer.Emit(trace.Span{
				Trace: rec.Signed.ID().String(),
				Stage: trace.StageCommit,
				Node:  string(g.cfg.Member.ID),
				Round: g.round,
				Attrs: []trace.Attr{
					{Key: "serial", Value: serial},
					{Key: "status", Value: strconv.Itoa(int(rec.Status))},
				},
			})
		}
	}
	return nil
}

// PendingUnchecked reports how many unchecked transactions await
// reveal for provider k.
func (g *Governor) PendingUnchecked(k int) int {
	n := 0
	for _, e := range g.unchecked[k] {
		if !e.revealed {
			n++
		}
	}
	return n
}
