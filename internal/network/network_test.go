package network

import (
	"errors"
	"fmt"
	"testing"

	"repchain/internal/identity"
)

func id(i int) identity.NodeID {
	return identity.NodeID(fmt.Sprintf("node/%d", i))
}

func newBusWith(t *testing.T, maxDelay, nodes int) (*Bus, []*Endpoint) {
	t.Helper()
	b := NewBus(maxDelay)
	eps := make([]*Endpoint, nodes)
	for i := range eps {
		ep, err := b.Register(id(i))
		if err != nil {
			t.Fatalf("Register(%d) error = %v", i, err)
		}
		eps[i] = ep
	}
	return b, eps
}

func TestRegisterDuplicate(t *testing.T) {
	b := NewBus(0)
	if _, err := b.Register("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register("a"); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Fatalf("error = %v, want ErrDuplicateEndpoint", err)
	}
}

func TestSendAndReceive(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	if err := b.Send(id(0), id(1), KindProviderTx, []byte("hello")); err != nil {
		t.Fatalf("Send() error = %v", err)
	}
	got := eps[1].Receive()
	if len(got) != 1 {
		t.Fatalf("Receive() returned %d messages, want 1", len(got))
	}
	m := got[0]
	if m.From != id(0) || m.Kind != KindProviderTx || string(m.Payload) != "hello" {
		t.Fatalf("message = %+v", m)
	}
	// Sender got nothing.
	if len(eps[0].Receive()) != 0 {
		t.Fatal("sender received its own unicast")
	}
}

func TestSendUnknownEndpoints(t *testing.T) {
	b, _ := newBusWith(t, 0, 1)
	if err := b.Send("ghost", id(0), "k", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown sender error = %v", err)
	}
	if err := b.Send(id(0), "ghost", "k", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown recipient error = %v", err)
	}
}

func TestClosedBus(t *testing.T) {
	b, _ := newBusWith(t, 0, 2)
	b.Close()
	if err := b.Send(id(0), id(1), "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send() after Close error = %v, want ErrClosed", err)
	}
	if _, err := b.Register("new"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register() after Close error = %v, want ErrClosed", err)
	}
}

func TestTotalOrderBroadcast(t *testing.T) {
	// The atomic-broadcast property: all recipients see the same
	// relative order of any two delivered messages, regardless of
	// sender interleaving.
	b, eps := newBusWith(t, 0, 4)
	recipients := []identity.NodeID{id(1), id(2), id(3)}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		from := id(i % 2) // two interleaved senders (0 and 1)
		payload := []byte{byte(i)}
		if err := b.Multicast(from, recipients, KindCollectorTx, payload); err != nil {
			t.Fatal(err)
		}
	}
	var orders [][]byte
	for _, epIdx := range []int{1, 2, 3} {
		msgs := eps[epIdx].Receive()
		order := make([]byte, 0, len(msgs))
		for _, m := range msgs {
			order = append(order, m.Payload[0])
		}
		orders = append(orders, order)
	}
	for i := 1; i < len(orders); i++ {
		if len(orders[i]) != len(orders[0]) {
			t.Fatalf("recipient %d delivered %d messages, recipient 0 delivered %d",
				i, len(orders[i]), len(orders[0]))
		}
		for j := range orders[i] {
			if orders[i][j] != orders[0][j] {
				t.Fatalf("recipients disagree on delivery order at position %d", j)
			}
		}
	}
}

func TestFIFOPerSender(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	for i := 0; i < 20; i++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := eps[1].Receive()
	if len(msgs) != 20 {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Payload[0] != byte(i) {
			t.Fatalf("position %d has payload %d: FIFO violated", i, m.Payload[0])
		}
	}
}

func TestDelayedDelivery(t *testing.T) {
	b, eps := newBusWith(t, 5, 2)
	b.SetDelayFunc(func(m Message, to identity.NodeID) int { return 3 })
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	// Not yet deliverable.
	if got := eps[1].Receive(); len(got) != 0 {
		t.Fatalf("message delivered %d ticks early", 3)
	}
	if eps[1].Pending() != 1 {
		t.Fatal("message lost from queue")
	}
	b.Tick()
	b.Tick()
	if got := eps[1].Receive(); len(got) != 0 {
		t.Fatal("message delivered one tick early")
	}
	b.Tick()
	if got := eps[1].Receive(); len(got) != 1 {
		t.Fatal("message not delivered at its tick")
	}
}

func TestDelayClampedToMaxDelay(t *testing.T) {
	b, eps := newBusWith(t, 2, 2)
	b.SetDelayFunc(func(m Message, to identity.NodeID) int { return 1000 })
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	b.AdvancePastDelay()
	if got := eps[1].Receive(); len(got) != 1 {
		t.Fatal("message not deliverable after AdvancePastDelay: synchrony bound violated")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	b, eps := newBusWith(t, 2, 2)
	b.SetDelayFunc(func(m Message, to identity.NodeID) int { return -7 })
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].Receive(); len(got) != 1 {
		t.Fatal("negative delay should deliver immediately")
	}
}

func TestDropFunc(t *testing.T) {
	b, eps := newBusWith(t, 0, 3)
	b.SetDropFunc(func(m Message, to identity.NodeID) bool { return to == id(2) })
	if err := b.Multicast(id(0), []identity.NodeID{id(1), id(2)}, "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(eps[1].Receive()) != 1 {
		t.Fatal("non-dropped recipient missed message")
	}
	if len(eps[2].Receive()) != 0 {
		t.Fatal("dropped recipient received message")
	}
	st := b.Stats()
	if st.Sent != 2 || st.Delivered != 1 || st.Dropped != 1 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestStatsAndReset(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	for i := 0; i < 5; i++ {
		if err := b.Send(id(0), id(1), "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	eps[1].Receive()
	if st := b.Stats(); st.Sent != 5 || st.Delivered != 5 {
		t.Fatalf("Stats() = %+v", st)
	}
	b.ResetStats()
	if st := b.Stats(); st.Sent != 0 || st.Delivered != 0 {
		t.Fatalf("Stats() after reset = %+v", st)
	}
}

func TestPartialDrainPreservesOrder(t *testing.T) {
	// Messages with mixed delays must still deliver in sequence order
	// within each Receive call.
	b, eps := newBusWith(t, 10, 2)
	delays := []int{0, 2, 0, 2, 0}
	i := 0
	b.SetDelayFunc(func(m Message, to identity.NodeID) int {
		d := delays[i%len(delays)]
		i++
		return d
	})
	for j := 0; j < 5; j++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(j)}); err != nil {
			t.Fatal(err)
		}
	}
	first := eps[1].Receive() // delay-0 messages: 0, 2, 4
	if len(first) != 3 {
		t.Fatalf("first drain = %d messages, want 3", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i].Seq < first[i-1].Seq {
			t.Fatal("sequence order violated in drain")
		}
	}
	b.AdvancePastDelay()
	second := eps[1].Receive()
	if len(second) != 2 {
		t.Fatalf("second drain = %d messages, want 2", len(second))
	}
}

func BenchmarkMulticast16(b *testing.B) {
	bus := NewBus(0)
	recipients := make([]identity.NodeID, 16)
	for i := range recipients {
		nid := id(i)
		if _, err := bus.Register(nid); err != nil {
			b.Fatal(err)
		}
		recipients[i] = nid
	}
	sender := identity.NodeID("sender")
	if _, err := bus.Register(sender); err != nil {
		b.Fatal(err)
	}
	payload := []byte("payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Multicast(sender, recipients, "k", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInflightLimitDropsNewest(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	b.SetInflightLimit(2)
	for i := 0; i < 4; i++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(i)}); err != nil {
			t.Fatalf("Send(%d) error = %v", i, err)
		}
	}
	if got := b.Stats().InflightDropped; got != 2 {
		t.Fatalf("InflightDropped = %d, want 2", got)
	}
	msgs := eps[1].Receive()
	if len(msgs) != 2 {
		t.Fatalf("Receive() returned %d messages, want the 2 oldest", len(msgs))
	}
	// The oldest messages survive; the newest are shed.
	if msgs[0].Payload[0] != 0 || msgs[1].Payload[0] != 1 {
		t.Fatalf("surviving payloads %d, %d, want 0, 1", msgs[0].Payload[0], msgs[1].Payload[0])
	}
	// Draining frees the queue for new sends.
	if err := b.Send(id(0), id(1), "k", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].Receive(); len(got) != 1 || got[0].Payload[0] != 9 {
		t.Fatalf("post-drain Receive() = %v", got)
	}
	// Zero disables the cap again.
	b.SetInflightLimit(0)
	for i := 0; i < 10; i++ {
		if err := b.Send(id(0), id(1), "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats().InflightDropped; got != 2 {
		t.Fatalf("InflightDropped moved to %d with cap disabled", got)
	}
}
