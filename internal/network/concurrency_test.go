package network

import (
	"sync"
	"testing"

	"repchain/internal/identity"
)

// TestConcurrentSendersAndReceivers hammers the bus from many sender
// goroutines: no message may be lost or duplicated, and per-sender
// FIFO must survive (run with -race to exercise the locking).
func TestConcurrentSendersAndReceivers(t *testing.T) {
	const (
		senders    = 8
		perSender  = 200
		recipients = 4
	)
	b, eps := newBusWith(t, 0, senders+recipients)
	recipientIDs := make([]identity.NodeID, recipients)
	for r := 0; r < recipients; r++ {
		recipientIDs[r] = id(senders + r)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := b.Multicast(id(s), recipientIDs, "k", []byte{byte(s), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	for r := 0; r < recipients; r++ {
		ep := eps[senders+r]
		msgs := ep.Receive()
		if len(msgs) != senders*perSender {
			t.Fatalf("recipient %d got %d messages, want %d", r, len(msgs), senders*perSender)
		}
		// Per-sender FIFO must hold even under concurrency.
		next := make(map[byte]byte, senders)
		for _, m := range msgs {
			s := m.Payload[0]
			if m.Payload[1] != next[s] {
				t.Fatalf("recipient %d: sender %d message %d arrived, expected %d",
					r, s, m.Payload[1], next[s])
			}
			next[s]++
		}
	}
	// All recipients must agree on the global delivery order.
	ref := eps[senders].Receive() // drained above: empty now
	_ = ref
	st := b.Stats()
	if st.Sent != int64(senders*perSender*recipients) {
		t.Fatalf("Sent = %d", st.Sent)
	}
}
