// Package network implements the synchronous message substrate the
// paper assumes (§3.1): "there is a known upper bound on processing
// delays, message transmission delays, each node is equipped with a
// local physical clock". The three broadcast primitives —
// broadcast_provider, broadcast_collector, broadcast_governor — are
// all required to be atomic (total-order) broadcasts.
//
// The Bus is a deterministic in-memory network driven by a logical
// clock. Every send is stamped with a globally increasing sequence
// number; endpoints deliver messages ordered by that sequence once the
// message's delivery tick has been reached. Because all endpoints
// deliver in sequence order, the bus realizes total-order broadcast:
// any two endpoints that both deliver messages a and b deliver them in
// the same order. Per-recipient delays are bounded by MaxDelay,
// matching the paper's Δ.
//
// Ordering caveat: total order is guaranteed within one Receive drain
// and across drains separated by AdvancePastDelay (the engine's phase
// discipline). A custom DelayFunc that delays an earlier message past
// a drain that delivers a later one inverts order across those drains
// — synchronous-round protocols drain only after the Δ bound, so the
// protocol never observes this.
//
// Fault injection (drop and delay hooks) exists for tests and
// adversarial experiments; the protocol's own analysis assumes the
// synchronous fault-free network, as the paper does.
package network

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repchain/internal/identity"
)

// Message kinds used by the protocol. Kept here so every layer agrees
// on the wire vocabulary.
const (
	// KindProviderTx carries a provider's SignedTx to collectors.
	KindProviderTx = "provider.tx"
	// KindCollectorTx carries a collector's LabeledTx to governors.
	KindCollectorTx = "collector.tx"
	// KindArgue carries a provider's argue(tx, s) to governors.
	KindArgue = "provider.argue"
	// KindVRF carries a governor's leader-election VRF evaluations.
	KindVRF = "governor.vrf"
	// KindBlock carries a proposed block from the leader.
	KindBlock = "governor.block"
	// KindStakeTx carries a stake-transfer transaction between
	// governors.
	KindStakeTx = "governor.staketx"
	// KindStakeState carries the leader's NEW_STATE proposal.
	KindStakeState = "governor.stakestate"
	// KindStakeSig carries a governor's signature over NEW_STATE back
	// to the leader.
	KindStakeSig = "governor.stakesig"
	// KindStakeBlock carries the final stake-transform block.
	KindStakeBlock = "governor.stakeblock"
	// KindEvidence carries leader-expulsion evidence.
	KindEvidence = "governor.evidence"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrUnknownEndpoint reports a send to or from an unregistered
	// node.
	ErrUnknownEndpoint = errors.New("network: unknown endpoint")
	// ErrDuplicateEndpoint reports a second registration of an ID.
	ErrDuplicateEndpoint = errors.New("network: endpoint already registered")
	// ErrClosed reports use of a closed bus.
	ErrClosed = errors.New("network: bus closed")
)

// Message is one unit of communication.
type Message struct {
	// Seq is the bus-assigned global sequence number realizing total
	// order.
	Seq uint64
	// From is the sender.
	From identity.NodeID
	// Kind classifies the payload (the Kind* constants).
	Kind string
	// Payload is the encoded protocol message.
	Payload []byte
	// SentAt is the logical tick the message was sent.
	SentAt int
	// DeliverAt is the logical tick from which the message is
	// deliverable; DeliverAt − SentAt ≤ MaxDelay.
	DeliverAt int
}

// DelayFunc decides the delivery delay (in ticks) of a message to one
// recipient. Returned values are clamped to [0, max].
type DelayFunc func(m Message, to identity.NodeID) int

// DropFunc decides whether to drop a message to one recipient.
type DropFunc func(m Message, to identity.NodeID) bool

// Stats counts bus traffic, used by the message-complexity experiment
// (E7).
type Stats struct {
	// Sent counts logical sends (one per recipient).
	Sent int64
	// Delivered counts messages actually handed to endpoints.
	Delivered int64
	// Dropped counts messages removed by the drop hook.
	Dropped int64
	// Duplicated counts extra copies injected by the duplication hook.
	Duplicated int64
	// PartitionDropped counts messages lost to an island boundary.
	PartitionDropped int64
	// DownDropped counts messages lost because the sender or the
	// recipient was marked down.
	DownDropped int64
	// InflightDropped counts messages dropped because the recipient's
	// pending queue was at the inflight limit (SetInflightLimit).
	InflightDropped int64
	// SentByKind breaks Sent down per message kind.
	SentByKind map[string]int64
	// BytesByKind sums payload bytes sent per message kind (payload
	// size × recipients).
	BytesByKind map[string]int64
}

func (s *Stats) recordSend(kind string, payloadLen int) {
	s.Sent++
	if s.SentByKind == nil {
		s.SentByKind = make(map[string]int64)
		s.BytesByKind = make(map[string]int64)
	}
	s.SentByKind[kind]++
	s.BytesByKind[kind] += int64(payloadLen)
}

func (s Stats) clone() Stats {
	out := s
	out.SentByKind = make(map[string]int64, len(s.SentByKind))
	for k, v := range s.SentByKind {
		out.SentByKind[k] = v
	}
	out.BytesByKind = make(map[string]int64, len(s.BytesByKind))
	for k, v := range s.BytesByKind {
		out.BytesByKind[k] = v
	}
	return out
}

// Bus is the in-memory synchronous network. Safe for concurrent use,
// though the simulation drives it single-threaded for determinism.
type Bus struct {
	mu        sync.Mutex
	endpoints map[identity.NodeID]*Endpoint
	seq       uint64
	now       int
	maxDelay  int
	delayFn   DelayFunc
	dropFn    DropFunc
	dupFn     DupFunc
	orderFn   OrderFunc
	island    map[identity.NodeID]int
	down      map[identity.NodeID]bool
	stats     Stats
	closed    bool
	inflight  int
}

// NewBus creates a bus with the given maximum delivery delay Δ in
// ticks. maxDelay 0 means immediate delivery.
func NewBus(maxDelay int) *Bus {
	if maxDelay < 0 {
		maxDelay = 0
	}
	return &Bus{
		endpoints: make(map[identity.NodeID]*Endpoint),
		maxDelay:  maxDelay,
	}
}

// MaxDelay returns Δ.
func (b *Bus) MaxDelay() int { return b.maxDelay }

// SetDelayFunc installs a per-recipient delay hook. Returned delays
// are clamped to [0, MaxDelay], preserving synchrony.
func (b *Bus) SetDelayFunc(f DelayFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delayFn = f
}

// SetInflightLimit caps every recipient's pending queue at n messages;
// a send to a full queue drops the new message and counts it in
// Stats.InflightDropped. Zero (the default) keeps queues unbounded.
// The cap is deterministic: a drop depends only on the recipient's
// queue depth at send time, which is a pure function of the send/drain
// sequence, so capped runs replay identically at any worker count.
func (b *Bus) SetInflightLimit(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	b.inflight = n
}

// SetDropFunc installs a drop hook for fault-injection tests.
func (b *Bus) SetDropFunc(f DropFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropFn = f
}

// Register creates the endpoint for id.
func (b *Bus) Register(id identity.NodeID) (*Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.endpoints[id]; ok {
		return nil, fmt.Errorf("register %q: %w", id, ErrDuplicateEndpoint)
	}
	ep := &Endpoint{id: id, bus: b}
	b.endpoints[id] = ep
	return ep, nil
}

// Now returns the current logical tick.
func (b *Bus) Now() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}

// Tick advances logical time by one and returns the new time.
func (b *Bus) Tick() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now++
	return b.now
}

// AdvancePastDelay advances logical time beyond the maximum delay so
// that every in-flight message becomes deliverable — the "wait Δ" step
// of a synchronous round.
func (b *Bus) AdvancePastDelay() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now += b.maxDelay + 1
	return b.now
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats.clone()
}

// ResetStats zeroes the traffic counters (used between experiment
// phases).
func (b *Bus) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// Close shuts the bus; subsequent sends fail with ErrClosed.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

// Send delivers a message to a single recipient.
func (b *Bus) Send(from, to identity.NodeID, kind string, payload []byte) error {
	return b.multicast(from, []identity.NodeID{to}, kind, payload)
}

// Multicast delivers a message to an explicit recipient set. All
// recipients observe the same sequence number, so relative order is
// identical everywhere — the atomic broadcast the paper requires.
func (b *Bus) Multicast(from identity.NodeID, to []identity.NodeID, kind string, payload []byte) error {
	return b.multicast(from, to, kind, payload)
}

func (b *Bus) multicast(from identity.NodeID, to []identity.NodeID, kind string, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.endpoints[from]; !ok {
		return fmt.Errorf("send from %q: %w", from, ErrUnknownEndpoint)
	}
	b.seq++
	m := Message{
		Seq:     b.seq,
		From:    from,
		Kind:    kind,
		Payload: payload,
		SentAt:  b.now,
	}
	for _, dst := range to {
		ep, ok := b.endpoints[dst]
		if !ok {
			return fmt.Errorf("send to %q: %w", dst, ErrUnknownEndpoint)
		}
		b.stats.recordSend(kind, len(payload))
		if b.down[from] || b.down[dst] {
			b.stats.DownDropped++
			continue
		}
		if b.partitioned(from, dst) {
			b.stats.PartitionDropped++
			continue
		}
		if b.dropFn != nil && b.dropFn(m, dst) {
			b.stats.Dropped++
			continue
		}
		delay := 0
		if b.delayFn != nil {
			delay = b.delayFn(m, dst)
		}
		if delay < 0 {
			delay = 0
		}
		if delay > b.maxDelay {
			delay = b.maxDelay
		}
		if b.inflight > 0 && ep.Pending() >= b.inflight {
			b.stats.InflightDropped++
			continue
		}
		dm := m
		dm.DeliverAt = b.now + delay
		ep.enqueue(dm)
		if b.dupFn != nil {
			for extra := b.dupFn(m, dst); extra > 0; extra-- {
				if b.inflight > 0 && ep.Pending() >= b.inflight {
					b.stats.InflightDropped++
					continue
				}
				b.stats.Duplicated++
				ep.enqueue(dm)
			}
		}
	}
	return nil
}

// Endpoint is one node's attachment to the bus.
type Endpoint struct {
	id    identity.NodeID
	bus   *Bus
	mu    sync.Mutex
	inbox []Message
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() identity.NodeID { return e.id }

func (e *Endpoint) enqueue(m Message) {
	e.mu.Lock()
	e.inbox = append(e.inbox, m)
	e.mu.Unlock()
}

// Receive drains every message deliverable at the current logical
// time, in global sequence order. Messages still in flight (DeliverAt
// in the future) remain queued.
func (e *Endpoint) Receive() []Message {
	now := e.bus.Now()
	e.mu.Lock()
	var due, later []Message
	for _, m := range e.inbox {
		if m.DeliverAt <= now {
			due = append(due, m)
		} else {
			later = append(later, m)
		}
	}
	e.inbox = later
	e.mu.Unlock()

	e.bus.mu.Lock()
	orderFn := e.bus.orderFn
	e.bus.stats.Delivered += int64(len(due))
	e.bus.mu.Unlock()
	if orderFn == nil {
		sort.Slice(due, func(i, j int) bool { return due[i].Seq < due[j].Seq })
		return due
	}
	type keyed struct {
		key uint64
		m   Message
	}
	ks := make([]keyed, len(due))
	for i, m := range due {
		ks[i] = keyed{key: orderFn(m, e.id), m: m}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].m.Seq < ks[j].m.Seq
	})
	for i, k := range ks {
		due[i] = k.m
	}
	return due
}

// Pending reports how many messages are queued (deliverable or not).
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}
