// Fault-injection extensions of the Bus beyond the original drop and
// delay hooks: message duplication, delivery reordering, network
// partitions, and per-node down states (crash–restart). All hooks
// default to off; a bus with no hooks installed behaves exactly as
// before.
//
// Every hook is a pure function of the message and recipient, so a
// deterministic fault plan (package chaos derives decisions from a
// seed and the message's global sequence number) reproduces the same
// faults at any worker count and across runs.
package network

import "repchain/internal/identity"

// DupFunc decides how many extra copies of a message to deliver to one
// recipient. Negative returns are treated as zero.
type DupFunc func(m Message, to identity.NodeID) int

// OrderFunc perturbs delivery order: Receive sorts due messages by the
// returned key (ties broken by sequence number) instead of by sequence
// number alone. Returning m.Seq preserves the total order; anything
// else deliberately breaks the atomic-broadcast guarantee for
// adversarial experiments — the protocol must not depend on
// within-drain arrival order for agreement.
type OrderFunc func(m Message, to identity.NodeID) uint64

// SetDupFunc installs a duplication hook. Extra copies share the
// original's sequence number and delivery tick, modelling a transport
// that retransmits an already-delivered message.
func (b *Bus) SetDupFunc(f DupFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dupFn = f
}

// SetOrderFunc installs a delivery-order hook.
func (b *Bus) SetOrderFunc(f OrderFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.orderFn = f
}

// SetPartitions splits the network into islands: a message whose
// sender and recipient sit in different islands is dropped and counted
// in Stats.PartitionDropped. Nodes absent from every island reach (and
// are reached by) everyone. Passing no islands heals the partition.
func (b *Bus) SetPartitions(islands ...[]identity.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(islands) == 0 {
		b.island = nil
		return
	}
	b.island = make(map[identity.NodeID]int)
	for i, members := range islands {
		for _, id := range members {
			b.island[id] = i
		}
	}
}

// SetDown marks a node crashed (true) or restarted (false). Messages
// to or from a down node are dropped and counted in Stats.DownDropped;
// the node's endpoint stays registered, modelling a process crash
// rather than a membership change.
func (b *Bus) SetDown(id identity.NodeID, down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down == nil {
		b.down = make(map[identity.NodeID]bool)
	}
	if down {
		b.down[id] = true
	} else {
		delete(b.down, id)
	}
}

// Down reports whether a node is currently marked down.
func (b *Bus) Down(id identity.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down[id]
}

// partitioned reports whether from→to crosses an island boundary.
// Caller holds b.mu.
func (b *Bus) partitioned(from, to identity.NodeID) bool {
	if b.island == nil {
		return false
	}
	fi, okFrom := b.island[from]
	ti, okTo := b.island[to]
	return okFrom && okTo && fi != ti
}

// Purge discards every queued message (deliverable or not) and returns
// how many were dropped — the inbox of a crashed process does not
// survive its restart.
func (e *Endpoint) Purge() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.inbox)
	e.inbox = nil
	return n
}
