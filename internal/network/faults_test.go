package network

import (
	"testing"

	"repchain/internal/identity"
)

func TestDupFuncDeliversExtraCopies(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	b.SetDupFunc(func(m Message, to identity.NodeID) int { return 2 })
	if err := b.Send(id(0), id(1), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := eps[1].Receive()
	if len(got) != 3 {
		t.Fatalf("got %d deliveries, want original + 2 duplicates", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[0].Seq || string(got[i].Payload) != "x" {
			t.Fatalf("duplicate %d differs from original: %+v vs %+v", i, got[i], got[0])
		}
	}
	if st := b.Stats(); st.Duplicated != 2 || st.Delivered != 3 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestDupFuncNegativeIgnored(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	b.SetDupFunc(func(m Message, to identity.NodeID) int { return -3 })
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].Receive(); len(got) != 1 {
		t.Fatalf("got %d deliveries, want exactly the original", len(got))
	}
	if st := b.Stats(); st.Duplicated != 0 {
		t.Fatalf("Duplicated = %d, want 0", st.Duplicated)
	}
}

func TestOrderFuncReordersWithinDrain(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	// Reverse the delivery order of the five queued messages.
	b.SetOrderFunc(func(m Message, to identity.NodeID) uint64 {
		return ^m.Seq
	})
	for i := 0; i < 5; i++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := eps[1].Receive()
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5", len(got))
	}
	for i, m := range got {
		if want := byte(4 - i); m.Payload[0] != want {
			t.Fatalf("position %d has payload %d, want %d (reversed)", i, m.Payload[0], want)
		}
	}
	// Removing the hook restores sequence order for later traffic.
	b.SetOrderFunc(nil)
	for i := 0; i < 3; i++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got = eps[1].Receive()
	for i, m := range got {
		if m.Payload[0] != byte(i) {
			t.Fatal("order hook removal did not restore sequence order")
		}
	}
}

func TestOrderFuncTiesBreakBySeq(t *testing.T) {
	b, eps := newBusWith(t, 0, 2)
	b.SetOrderFunc(func(m Message, to identity.NodeID) uint64 { return 0 })
	for i := 0; i < 10; i++ {
		if err := b.Send(id(0), id(1), "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := eps[1].Receive()
	for i, m := range got {
		if m.Payload[0] != byte(i) {
			t.Fatalf("constant key must fall back to sequence order; position %d got %d", i, m.Payload[0])
		}
	}
}

func TestPartitionsDropAcrossIslands(t *testing.T) {
	b, eps := newBusWith(t, 0, 4)
	b.SetPartitions([]identity.NodeID{id(0), id(1)}, []identity.NodeID{id(2)})
	all := []identity.NodeID{id(1), id(2), id(3)}
	if err := b.Multicast(id(0), all, "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(eps[1].Receive()) != 1 {
		t.Fatal("same-island recipient missed message")
	}
	if len(eps[2].Receive()) != 0 {
		t.Fatal("cross-island recipient received message")
	}
	if len(eps[3].Receive()) != 1 {
		t.Fatal("unassigned node must stay reachable from every island")
	}
	if st := b.Stats(); st.PartitionDropped != 1 {
		t.Fatalf("PartitionDropped = %d, want 1", st.PartitionDropped)
	}
	// Healing restores full connectivity.
	b.SetPartitions()
	if err := b.Multicast(id(0), all, "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(eps[2].Receive()) != 1 {
		t.Fatal("healed partition still dropping")
	}
}

func TestDownNodeSendsAndReceivesNothing(t *testing.T) {
	b, eps := newBusWith(t, 0, 3)
	b.SetDown(id(1), true)
	if !b.Down(id(1)) {
		t.Fatal("Down(1) = false after SetDown(true)")
	}
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(id(1), id(2), "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(eps[1].Receive()) != 0 {
		t.Fatal("down node received a message")
	}
	if len(eps[2].Receive()) != 0 {
		t.Fatal("down node's send was delivered")
	}
	if st := b.Stats(); st.DownDropped != 2 {
		t.Fatalf("DownDropped = %d, want 2", st.DownDropped)
	}
	b.SetDown(id(1), false)
	if b.Down(id(1)) {
		t.Fatal("Down(1) = true after restart")
	}
	if err := b.Send(id(0), id(1), "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(eps[1].Receive()) != 1 {
		t.Fatal("restarted node still unreachable")
	}
}

func TestPurgeDiscardsQueuedMessages(t *testing.T) {
	b, eps := newBusWith(t, 5, 2)
	b.SetDelayFunc(func(m Message, to identity.NodeID) int { return 3 })
	for i := 0; i < 4; i++ {
		if err := b.Send(id(0), id(1), "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := eps[1].Purge(); n != 4 {
		t.Fatalf("Purge() = %d, want 4", n)
	}
	b.AdvancePastDelay()
	if got := eps[1].Receive(); len(got) != 0 {
		t.Fatalf("purged inbox still delivered %d messages", len(got))
	}
}
