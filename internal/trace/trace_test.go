package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Span{Stage: StageSign})
	r.EnableWallClock()
	if r.Len() != 0 || r.Dropped() != 0 || r.Spans() != nil || r.ByTrace("deadbeef") != nil {
		t.Fatal("nil recorder should be inert")
	}
	if NewRecorder(0) != nil || NewRecorder(-1) != nil {
		t.Fatal("non-positive capacity should yield a nil recorder")
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb, ""); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v out=%q", err, sb.String())
	}
}

func TestRecorderSequencesAndOrders(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(Span{Trace: "aaaa", Stage: StageSign})
	r.Emit(Span{Trace: "aaaa", Stage: StageCommit})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("Len = %d, want 2", len(spans))
	}
	if spans[0].Seq != 1 || spans[1].Seq != 2 {
		t.Fatalf("Seq = %d,%d, want 1,2", spans[0].Seq, spans[1].Seq)
	}
	if spans[0].Wall != 0 || spans[1].Wall != 0 {
		t.Fatal("wall clock must stay 0 unless EnableWallClock was called")
	}
}

func TestRecorderRingEvicts(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Emit(Span{Trace: "t", Round: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	spans := r.Spans()
	if spans[0].Round != 2 || spans[2].Round != 4 {
		t.Fatalf("ring kept wrong spans: %+v", spans)
	}
}

func TestByTracePrefix(t *testing.T) {
	r := NewRecorder(8)
	full := "0123456789abcdef0123456789abcdef"
	r.Emit(Span{Trace: full, Stage: StageSign})
	r.Emit(Span{Stage: StageElect}) // round-scoped, no trace
	r.Emit(Span{Trace: "ffff56789abcdef0", Stage: StageSign})

	if got := r.ByTrace(full); len(got) != 1 {
		t.Fatalf("exact match found %d spans", len(got))
	}
	if got := r.ByTrace(full[:8]); len(got) != 1 || got[0].Trace != full {
		t.Fatalf("8-char prefix found %v", got)
	}
	// Short prefixes are too ambiguous to match.
	if got := r.ByTrace(full[:4]); got != nil {
		t.Fatalf("4-char prefix should not match, found %v", got)
	}
	if got := r.ByTrace(""); got != nil {
		t.Fatal("empty id should match nothing")
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(Span{Trace: "aaaabbbb", Stage: StageSign, Node: "provider/0", Attrs: []Attr{{Key: "kind", Value: "orders"}}})
	r.Emit(Span{Trace: "ccccdddd", Stage: StageCommit})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb, "aaaabbbb"); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if strings.Count(out, "\n") != 0 {
		t.Fatalf("want exactly one line, got:\n%s", out)
	}
	for _, want := range []string{`"trace":"aaaabbbb"`, `"stage":"sign"`, `"k":"kind"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSONL missing %q: %s", want, out)
		}
	}
}

func TestEnableWallClock(t *testing.T) {
	r := NewRecorder(2)
	r.EnableWallClock()
	r.Emit(Span{Trace: "x"})
	if r.Spans()[0].Wall == 0 {
		t.Fatal("wall clock enabled but span has no timestamp")
	}
}
