// Package trace records end-to-end transaction lifecycle spans in a
// fixed-capacity ring buffer. A trace ID is the hex hash of the signed
// transaction, so the same transaction can be followed across the
// provider → collector → governor hops without any coordination: each
// node derives the ID locally from the bytes it already has.
//
// The recorder is deliberately passive. It never consumes protocol
// randomness, never blocks, and in deterministic mode never reads the
// wall clock — spans carry (round, seq) for ordering instead — so
// enabling tracing cannot perturb the byte-identical replay guarantees
// the parallel pipeline and the chaos matrix depend on.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Lifecycle stage names. The set mirrors the protocol's data path:
// a provider signs, a collector labels and uploads, governors screen,
// the leader is elected, records are packed into a block, replicas
// commit it, and reputation updates land.
const (
	StageSign       = "sign"
	StageLabel      = "label"
	StageUpload     = "upload"
	StageScreen     = "screen"
	StageElect      = "elect"
	StagePack       = "pack"
	StageCommit     = "commit"
	StageArgue      = "argue"
	StageReputation = "reputation"
	// StageSend and StageRecv bracket one transport hop: the TCP
	// endpoint emits them when trace propagation is enabled, so a
	// cross-process trace carries per-hop wire latency. The in-process
	// bus never emits them.
	StageSend = "send"
	StageRecv = "recv"
)

// Attr is one key/value annotation on a span. A slice (not a map)
// keeps JSON output order deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one recorded lifecycle event. Trace is the hex transaction
// hash ("" for round-scoped spans such as elect). Seq is a recorder-
// assigned monotone sequence number; Wall is unix nanoseconds and
// stays 0 in deterministic mode.
type Span struct {
	Trace string `json:"trace,omitempty"`
	Stage string `json:"stage"`
	Node  string `json:"node,omitempty"`
	Round uint64 `json:"round"`
	Seq   uint64 `json:"seq"`
	Wall  int64  `json:"wall_ns,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Recorder is a fixed-capacity ring buffer of spans. A nil *Recorder
// is a valid disabled recorder: every method is nil-safe and Emit on
// nil is a single branch, so instrumented code needs no guards.
type Recorder struct {
	mu      sync.Mutex
	buf     []Span // guarded by mu
	start   int    // guarded by mu; index of oldest span
	n       int    // guarded by mu; live spans
	seq     uint64 // guarded by mu
	dropped uint64 // guarded by mu
	wall    bool
}

// NewRecorder returns a recorder holding at most capacity spans;
// older spans are evicted as new ones arrive. capacity <= 0 yields a
// nil (disabled) recorder.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{buf: make([]Span, capacity)}
}

// EnableWallClock makes subsequent spans carry wall-clock timestamps.
// Only the TCP runtime turns this on; deterministic simulations leave
// it off so traces replay byte-identically.
func (r *Recorder) EnableWallClock() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.wall = true
	r.mu.Unlock()
}

// Emit records one span and returns its assigned sequence number (0 on
// a nil recorder). The sequence number doubles as the parent-span
// reference carried across transport hops. Safe to call on a nil
// recorder (no-op).
func (r *Recorder) Emit(s Span) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.seq++
	s.Seq = r.seq
	if r.wall {
		//repchain:dettaint-ok wall timestamps are ring-buffer observability metadata behind the explicit wall opt-in; spans are read back only by inspectors and never decoded into consensus state
		s.Wall = time.Now().UnixNano()
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
	} else {
		r.buf[r.start] = s
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	seq := r.seq
	r.mu.Unlock()
	return seq
}

// Len returns the number of buffered spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity (0 for a nil recorder). Together with
// Len and Dropped it backs the trace.* occupancy gauges the admin
// endpoint publishes, so silent eviction is detectable from /metrics.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many spans were evicted by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the buffered spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// ByTrace returns the buffered spans whose trace ID matches id
// exactly, or — when id is at least 8 hex chars but shorter than a
// full hash — by prefix, oldest first. Round-scoped spans ("" trace)
// never match.
func (r *Recorder) ByTrace(id string) []Span {
	if r == nil || id == "" {
		return nil
	}
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == "" {
			continue
		}
		if s.Trace == id || (len(id) >= 8 && len(id) < len(s.Trace) && s.Trace[:len(id)] == id) {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSONL writes spans as JSON Lines, oldest first. If traceID is
// non-empty only matching spans are written.
func (r *Recorder) WriteJSONL(w io.Writer, traceID string) error {
	var spans []Span
	if traceID == "" {
		spans = r.Spans()
	} else {
		spans = r.ByTrace(traceID)
	}
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
