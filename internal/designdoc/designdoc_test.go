package designdoc

import "testing"

func TestMetricCatalogueParsesTable(t *testing.T) {
	doc := []byte("# Doc\n\n### Metric catalogue\n\nintro prose\n\n" +
		"| name | kind | meaning |\n" +
		"|---|---|---|\n" +
		"| `engine.rounds_total` | counter | rounds |\n" +
		"| `sigcache.hits` / `sigcache.misses` | gauge | traffic (`per` round) |\n" +
		"| `round.stage_seconds` | histogram vec (`stage`) | timing |\n\n" +
		"### Next section\n\n| `not.in_catalogue` | counter | outside the table |\n")
	names, err := MetricCatalogue(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine.rounds_total", "sigcache.hits", "sigcache.misses", "round.stage_seconds"} {
		if !names[want] {
			t.Errorf("catalogue missing %q", want)
		}
	}
	if names["stage"] {
		t.Error("label name from the kind column leaked into the catalogue")
	}
	if names["per"] {
		t.Error("backtick from a later column leaked into the catalogue")
	}
	if names["not.in_catalogue"] {
		t.Error("row outside the catalogue section was parsed")
	}
}

func TestMetricCatalogueFailsWithoutHeading(t *testing.T) {
	if _, err := MetricCatalogue([]byte("# Doc\n\n| `x.y` | counter | no heading |\n")); err == nil {
		t.Fatal("expected an error when the catalogue heading is absent")
	}
}

// TestRealCatalogue pins the parser to the repository's actual
// DESIGN.md: a reshuffle that breaks parsing must fail here, not
// silently weaken the metricname analyzer.
func TestRealCatalogue(t *testing.T) {
	names, err := LoadMetricCatalogue("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine.rounds_total", "mempool.depth", "transport.frames_sent", "chaos.rounds_aborted"} {
		if !names[want] {
			t.Errorf("DESIGN.md catalogue missing %q — §4c table moved?", want)
		}
	}
}
