// Package designdoc parses machine-checked inventories out of
// DESIGN.md. It is the single source of truth for the §4c metric
// catalogue: the runtime drift test (metrics_catalogue_test.go) and
// the compile-time metricname analyzer (tools/lint/metricname) both
// read the catalogue through this package, so the two gates can never
// disagree about which names are documented.
package designdoc

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// catalogueHeading opens the metric table inside §4c.
const catalogueHeading = "### Metric catalogue"

// metricNameRe matches one backticked metric name; names are
// lowercase dotted identifiers (`mempool.depth`).
var metricNameRe = regexp.MustCompile("`([a-z0-9_.]+)`")

// MetricCatalogue extracts the documented metric names from DESIGN.md
// contents: every backticked name in the first column of the table
// under "### Metric catalogue" (a cell may document several names,
// separated by /). It fails loudly when the heading or table cannot
// be found, so a doc reshuffle breaks the gates instead of silently
// emptying them.
func MetricCatalogue(design []byte) (map[string]bool, error) {
	names := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(design))
	inSection := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == catalogueHeading:
			inSection = true
			continue
		case inSection && strings.HasPrefix(line, "#"):
			inSection = false
		}
		if !inSection || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range metricNameRe.FindAllStringSubmatch(cells[1], -1) {
			names[m[1]] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no metric names found under %q — was the DESIGN.md §4c table moved or renamed?", catalogueHeading)
	}
	return names, nil
}

// LoadMetricCatalogue reads DESIGN.md from path and parses its metric
// catalogue.
func LoadMetricCatalogue(path string) (map[string]bool, error) {
	design, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names, err := MetricCatalogue(design)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return names, nil
}
