package consensus

import (
	"errors"
	"testing"
	"testing/quick"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

func testKey(t *testing.T, b byte) (crypto.PublicKey, crypto.PrivateKey) {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = b
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestStakeLedgerBasics(t *testing.T) {
	l := NewStakeLedger([]uint64{5, 3, 0})
	if l.Governors() != 3 {
		t.Fatalf("Governors() = %d", l.Governors())
	}
	if l.Total() != 8 {
		t.Fatalf("Total() = %d, want 8", l.Total())
	}
	s, err := l.Of(1)
	if err != nil || s != 3 {
		t.Fatalf("Of(1) = %d, %v", s, err)
	}
	if _, err := l.Of(3); !errors.Is(err, ErrBadStake) {
		t.Fatalf("Of(3) error = %v, want ErrBadStake", err)
	}
	if _, err := l.Of(-1); !errors.Is(err, ErrBadStake) {
		t.Fatalf("Of(-1) error = %v, want ErrBadStake", err)
	}
}

func TestStakeLedgerSnapshotIsCopy(t *testing.T) {
	l := NewStakeLedger([]uint64{5, 3})
	snap := l.Snapshot()
	snap[0] = 99
	if got, _ := l.Of(0); got != 5 {
		t.Fatal("Snapshot aliases internal storage")
	}
}

func TestStakeTransfer(t *testing.T) {
	l := NewStakeLedger([]uint64{5, 3})
	if err := l.Transfer(0, 1, 2); err != nil {
		t.Fatalf("Transfer() error = %v", err)
	}
	a, _ := l.Of(0)
	b, _ := l.Of(1)
	if a != 3 || b != 5 {
		t.Fatalf("after transfer: %d, %d", a, b)
	}
	if l.Total() != 8 {
		t.Fatal("transfer changed total stake")
	}
}

func TestStakeTransferErrors(t *testing.T) {
	l := NewStakeLedger([]uint64{5, 3})
	tests := []struct {
		name     string
		from, to int
		amount   uint64
		want     error
	}{
		{"insufficient", 1, 0, 10, ErrInsufficientStake},
		{"self", 0, 0, 1, ErrBadStake},
		{"zero amount", 0, 1, 0, ErrBadStake},
		{"bad from", -1, 1, 1, ErrBadStake},
		{"bad to", 0, 9, 1, ErrBadStake},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := l.Transfer(tt.from, tt.to, tt.amount); !errors.Is(err, tt.want) {
				t.Fatalf("Transfer() error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestStakeApply(t *testing.T) {
	l := NewStakeLedger([]uint64{1, 2})
	if err := l.Apply([]uint64{4, 5}); err != nil {
		t.Fatal(err)
	}
	if got, _ := l.Of(0); got != 4 {
		t.Fatal("Apply did not replace state")
	}
	if err := l.Apply([]uint64{1}); !errors.Is(err, ErrBadStake) {
		t.Fatalf("Apply(short) error = %v, want ErrBadStake", err)
	}
}

func TestHashStateBindsValues(t *testing.T) {
	a := HashState([]uint64{1, 2, 3})
	if a != HashState([]uint64{1, 2, 3}) {
		t.Fatal("HashState not deterministic")
	}
	if a == HashState([]uint64{1, 2, 4}) {
		t.Fatal("HashState ignores values")
	}
	if a == HashState([]uint64{1, 2}) {
		t.Fatal("HashState ignores length")
	}
}

func TestStakeTxSignVerify(t *testing.T) {
	pub, priv := testKey(t, 1)
	stx := SignStakeTx(0, 1, 5, 7, priv)
	if err := stx.Verify(pub); err != nil {
		t.Fatalf("Verify() error = %v", err)
	}
	stx.Amount = 500
	if err := stx.Verify(pub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered Verify() error = %v, want ErrBadSignature", err)
	}
}

func TestStakeTxRoundTrip(t *testing.T) {
	_, priv := testKey(t, 1)
	stx := SignStakeTx(2, 3, 9, 1, priv)
	e := codec.NewEncoder(0)
	stx.Encode(e)
	got, err := DecodeStakeTx(codec.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatalf("DecodeStakeTx() error = %v", err)
	}
	if got.From != 2 || got.To != 3 || got.Amount != 9 || got.Nonce != 1 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestApplyTransfers(t *testing.T) {
	_, priv := testKey(t, 1)
	base := []uint64{10, 5, 0}
	txs := []StakeTx{
		SignStakeTx(0, 2, 4, 0, priv),
		SignStakeTx(1, 0, 5, 0, priv),
	}
	got, err := ApplyTransfers(base, txs)
	if err != nil {
		t.Fatalf("ApplyTransfers() error = %v", err)
	}
	want := []uint64{11, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state = %v, want %v", got, want)
		}
	}
	// base untouched
	if base[0] != 10 {
		t.Fatal("ApplyTransfers mutated base")
	}
}

func TestApplyTransfersSequencing(t *testing.T) {
	// A transfer can spend stake received earlier in the same batch.
	_, priv := testKey(t, 1)
	base := []uint64{3, 0}
	txs := []StakeTx{
		SignStakeTx(0, 1, 3, 0, priv),
		SignStakeTx(1, 0, 2, 0, priv),
	}
	got, err := ApplyTransfers(base, txs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("state = %v", got)
	}
	// But not stake it receives later.
	bad := []StakeTx{
		SignStakeTx(1, 0, 2, 0, priv),
		SignStakeTx(0, 1, 3, 0, priv),
	}
	if _, err := ApplyTransfers(base, bad); !errors.Is(err, ErrInsufficientStake) {
		t.Fatalf("out-of-order spend error = %v, want ErrInsufficientStake", err)
	}
}

func TestApplyTransfersRejectsBadIndices(t *testing.T) {
	_, priv := testKey(t, 1)
	base := []uint64{3, 3}
	for _, bad := range []StakeTx{
		SignStakeTx(0, 0, 1, 0, priv),
		SignStakeTx(-1, 1, 1, 0, priv),
		SignStakeTx(0, 5, 1, 0, priv),
		SignStakeTx(0, 1, 0, 0, priv),
	} {
		if _, err := ApplyTransfers(base, []StakeTx{bad}); !errors.Is(err, ErrBadStake) {
			t.Fatalf("transfer %+v error = %v, want ErrBadStake", bad, err)
		}
	}
}

// TestQuickTransfersConserveStake: any valid transfer sequence
// conserves total stake.
func TestQuickTransfersConserveStake(t *testing.T) {
	_, priv := testKey(t, 2)
	f := func(moves []struct {
		From, To uint8
		Amt      uint8
	}) bool {
		base := []uint64{100, 100, 100, 100}
		txs := make([]StakeTx, 0, len(moves))
		for _, m := range moves {
			txs = append(txs, SignStakeTx(int(m.From%4), int(m.To%4), uint64(m.Amt), 0, priv))
		}
		got, err := ApplyTransfers(base, txs)
		if err != nil {
			return true // invalid sequences are allowed to fail
		}
		var total uint64
		for _, s := range got {
			total += s
		}
		return total == 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
