// Package consensus implements the paper's §3.4.3 consensus layer:
// Proof-of-Stake leader election through per-stake-unit VRF
// evaluations, and the 3-step stake-transform protocol with leader
// expulsion.
//
// The package is transport-agnostic: it provides verifiable message
// types and state machines; the node layer moves them over the
// network. The paper's trust model applies — "we may assume that these
// governors will not perform malicious behaviors rather than hiding
// transactions" — but every signature and proof is still verified so
// that deviations are detected and expellable.
package consensus

import (
	"errors"
	"fmt"
	"sync"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadStake reports a stake operation with invalid indices or
	// amounts.
	ErrBadStake = errors.New("consensus: invalid stake operation")
	// ErrInsufficientStake reports a transfer exceeding the sender's
	// balance.
	ErrInsufficientStake = errors.New("consensus: insufficient stake")
	// ErrBadTicket reports a leader-election ticket that fails
	// verification.
	ErrBadTicket = errors.New("consensus: invalid election ticket")
	// ErrIncompleteElection reports a leader query before every
	// governor has submitted tickets.
	ErrIncompleteElection = errors.New("consensus: election incomplete")
	// ErrNoStake reports an election in which no stake units exist.
	ErrNoStake = errors.New("consensus: no stake in play")
	// ErrBadSignature reports a message signature that fails.
	ErrBadSignature = errors.New("consensus: bad signature")
	// ErrStateMismatch reports a NEW_STATE inconsistent with the
	// verifier's own application of the stake transfers.
	ErrStateMismatch = errors.New("consensus: stake state mismatch")
	// ErrDecode reports a malformed encoding.
	ErrDecode = errors.New("consensus: decode failed")
)

// StakeLedger tracks each governor's stake units. In practice "the
// stake can be money or any reliable form of asset" (§3.4.3); here it
// is integer units. Safe for concurrent use.
type StakeLedger struct {
	mu     sync.RWMutex
	stakes []uint64 // guarded by mu
}

// NewStakeLedger creates a ledger with the given initial stakes,
// indexed by governor.
func NewStakeLedger(stakes []uint64) *StakeLedger {
	s := make([]uint64, len(stakes))
	copy(s, stakes)
	return &StakeLedger{stakes: s}
}

// Governors returns m, the number of governors.
func (l *StakeLedger) Governors() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.stakes)
}

// Of returns governor j's stake.
func (l *StakeLedger) Of(j int) (uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if j < 0 || j >= len(l.stakes) {
		return 0, fmt.Errorf("governor %d of %d: %w", j, len(l.stakes), ErrBadStake)
	}
	return l.stakes[j], nil
}

// Total returns the total stake in play.
func (l *StakeLedger) Total() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var t uint64
	for _, s := range l.stakes {
		t += s
	}
	return t
}

// Snapshot returns a copy of the stake vector.
func (l *StakeLedger) Snapshot() []uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]uint64, len(l.stakes))
	copy(out, l.stakes)
	return out
}

// Transfer moves amount units from governor `from` to governor `to`.
func (l *StakeLedger) Transfer(from, to int, amount uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 || from >= len(l.stakes) || to < 0 || to >= len(l.stakes) {
		return fmt.Errorf("transfer %d→%d: %w", from, to, ErrBadStake)
	}
	if from == to {
		return fmt.Errorf("self transfer by %d: %w", from, ErrBadStake)
	}
	if amount == 0 {
		return fmt.Errorf("zero transfer: %w", ErrBadStake)
	}
	if l.stakes[from] < amount {
		return fmt.Errorf("governor %d has %d, needs %d: %w", from, l.stakes[from], amount, ErrInsufficientStake)
	}
	l.stakes[from] -= amount
	l.stakes[to] += amount
	return nil
}

// Apply replaces the stake vector (used when adopting a committed
// NEW_STATE).
func (l *StakeLedger) Apply(state []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(state) != len(l.stakes) {
		return fmt.Errorf("state for %d governors, have %d: %w", len(state), len(l.stakes), ErrBadStake)
	}
	copy(l.stakes, state)
	return nil
}

// Hash returns a commitment to the stake vector.
func (l *StakeLedger) Hash() crypto.Hash {
	snap := l.Snapshot()
	return HashState(snap)
}

// HashState returns the canonical commitment to a stake vector.
func HashState(state []uint64) crypto.Hash {
	e := codec.NewEncoder(8 * (len(state) + 1))
	e.PutString("repchain/stakestate/v1")
	e.PutInt(len(state))
	for _, s := range state {
		e.PutUint64(s)
	}
	return crypto.Sum(e.Bytes())
}

// StakeTx is a signed stake transfer between governors. Governors
// related to the transfer broadcast it to all governors (§3.4.3).
type StakeTx struct {
	// From is the paying governor's index.
	From int
	// To is the receiving governor's index.
	To int
	// Amount is the number of stake units moved.
	Amount uint64
	// Nonce orders multiple transfers from one governor in one round.
	Nonce uint64
	// Sig is From's signature.
	Sig []byte
}

func (t StakeTx) signingBytes() []byte {
	e := codec.NewEncoder(64)
	e.PutString("repchain/staketx/v1")
	e.PutInt(t.From)
	e.PutInt(t.To)
	e.PutUint64(t.Amount)
	e.PutUint64(t.Nonce)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// SignStakeTx signs a stake transfer with the paying governor's key.
func SignStakeTx(from, to int, amount, nonce uint64, key crypto.PrivateKey) StakeTx {
	t := StakeTx{From: from, To: to, Amount: amount, Nonce: nonce}
	t.Sig = key.Sign(t.signingBytes())
	return t
}

// Verify checks the transfer's signature against the paying
// governor's public key, through the shared verification cache (all m
// governors verify the same broadcast transfer).
func (t StakeTx) Verify(pub crypto.PublicKey) error {
	if err := crypto.CachedVerify(pub, t.signingBytes(), t.Sig); err != nil {
		return fmt.Errorf("stake tx %d→%d: %w", t.From, t.To, ErrBadSignature)
	}
	return nil
}

// Encode appends the wire encoding of t to e.
func (t StakeTx) Encode(e *codec.Encoder) {
	e.PutInt(t.From)
	e.PutInt(t.To)
	e.PutUint64(t.Amount)
	e.PutUint64(t.Nonce)
	e.PutBytes(t.Sig)
}

// DecodeStakeTx reads one StakeTx from d.
func DecodeStakeTx(d *codec.Decoder) (StakeTx, error) {
	var t StakeTx
	var err error
	if t.From, err = d.Int(); err != nil {
		return t, fmt.Errorf("stake tx from: %w", err)
	}
	if t.To, err = d.Int(); err != nil {
		return t, fmt.Errorf("stake tx to: %w", err)
	}
	if t.Amount, err = d.Uint64(); err != nil {
		return t, fmt.Errorf("stake tx amount: %w", err)
	}
	if t.Nonce, err = d.Uint64(); err != nil {
		return t, fmt.Errorf("stake tx nonce: %w", err)
	}
	if t.Sig, err = d.Bytes(); err != nil {
		return t, fmt.Errorf("stake tx sig: %w", err)
	}
	return t, nil
}

// ApplyTransfers applies the given transfers in order to a copy of
// base and returns the resulting NEW_STATE. It fails on the first
// invalid transfer.
func ApplyTransfers(base []uint64, txs []StakeTx) ([]uint64, error) {
	state := make([]uint64, len(base))
	copy(state, base)
	for i, t := range txs {
		if t.From < 0 || t.From >= len(state) || t.To < 0 || t.To >= len(state) || t.From == t.To || t.Amount == 0 {
			return nil, fmt.Errorf("transfer %d (%d→%d): %w", i, t.From, t.To, ErrBadStake)
		}
		if state[t.From] < t.Amount {
			return nil, fmt.Errorf("transfer %d: governor %d has %d, needs %d: %w",
				i, t.From, state[t.From], t.Amount, ErrInsufficientStake)
		}
		state[t.From] -= t.Amount
		state[t.To] += t.Amount
	}
	return state, nil
}
