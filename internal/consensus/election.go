package consensus

import (
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// Ticket is one VRF evaluation for one stake unit (§3.4.3):
//
//	⟨hash_{j,u}, π_{j,u}⟩ ← VRF_{g_j}(r, j, u)
//
// The governor owning the stake unit with the globally smallest hash
// leads the round.
type Ticket struct {
	// Governor is j, the evaluating governor's index.
	Governor int
	// Unit is u, the stake-unit index, 0 ≤ u < y_j.
	Unit int
	// Output is hash_{j,u}.
	Output crypto.Hash
	// Proof is π_{j,u}.
	Proof []byte
}

// MakeTickets evaluates the VRF for each of governor j's stake units
// in round `round` on top of prevHash.
func MakeTickets(key crypto.PrivateKey, prevHash crypto.Hash, round uint64, governor int, units uint64) []Ticket {
	out := make([]Ticket, 0, units)
	for u := uint64(0); u < units; u++ {
		alpha := crypto.VRFAlpha(prevHash, round, governor, int(u))
		ev := crypto.VRFEval(key, alpha)
		out = append(out, Ticket{
			Governor: governor,
			Unit:     int(u),
			Output:   ev.Output,
			Proof:    ev.Proof,
		})
	}
	return out
}

// VerifyTicket checks a ticket's VRF proof against the governor's
// public key and the round context.
func VerifyTicket(pub crypto.PublicKey, prevHash crypto.Hash, round uint64, t Ticket) error {
	if t.Unit < 0 {
		return fmt.Errorf("ticket unit %d: %w", t.Unit, ErrBadTicket)
	}
	alpha := crypto.VRFAlpha(prevHash, round, t.Governor, t.Unit)
	err := crypto.VRFVerify(pub, alpha, crypto.VRFOutput{Output: t.Output, Proof: t.Proof})
	if err != nil {
		return fmt.Errorf("ticket g%d/u%d: %w", t.Governor, t.Unit, ErrBadTicket)
	}
	return nil
}

// Encode appends the wire encoding of t to e.
func (t Ticket) Encode(e *codec.Encoder) {
	e.PutInt(t.Governor)
	e.PutInt(t.Unit)
	e.PutRaw(t.Output[:])
	e.PutBytes(t.Proof)
}

// DecodeTicket reads one Ticket from d.
func DecodeTicket(d *codec.Decoder) (Ticket, error) {
	var t Ticket
	var err error
	if t.Governor, err = d.Int(); err != nil {
		return t, fmt.Errorf("ticket governor: %w", err)
	}
	if t.Unit, err = d.Int(); err != nil {
		return t, fmt.Errorf("ticket unit: %w", err)
	}
	raw, err := d.Raw(crypto.HashSize)
	if err != nil {
		return t, fmt.Errorf("ticket output: %w", err)
	}
	if t.Output, err = crypto.HashFromBytes(raw); err != nil {
		return t, err
	}
	if t.Proof, err = d.Bytes(); err != nil {
		return t, fmt.Errorf("ticket proof: %w", err)
	}
	return t, nil
}

// EncodeTickets encodes a ticket batch as one payload.
func EncodeTickets(ts []Ticket) []byte {
	e := codec.Wrap(make([]byte, 0, 96*(len(ts)+1)))
	e.PutInt(len(ts))
	for _, t := range ts {
		t.Encode(&e)
	}
	return e.Bytes()
}

// DecodeTickets decodes a ticket batch, requiring full consumption.
func DecodeTickets(b []byte) ([]Ticket, error) {
	d := codec.NewDecoder(b)
	n, err := d.Int()
	if err != nil {
		return nil, fmt.Errorf("ticket count: %w", err)
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("ticket count %d: %w", n, ErrDecode)
	}
	out := make([]Ticket, 0, n)
	for i := 0; i < n; i++ {
		t, err := DecodeTicket(d)
		if err != nil {
			return nil, fmt.Errorf("ticket %d: %w", i, err)
		}
		out = append(out, t)
	}
	if err := d.Expect(); err != nil {
		return nil, fmt.Errorf("tickets: %w", err)
	}
	return out, nil
}

// Election collects ticket submissions for one round and determines
// the leader once every governor has reported. "When a governor
// receives all the hash value from other governors, he first validates
// the proof... the owner of the stake unit with the least hash value
// becomes the leading governor of this round."
type Election struct {
	round    uint64
	prevHash crypto.Hash
	pubs     []crypto.PublicKey
	stakes   []uint64

	submitted []bool
	remaining int
	best      Ticket
	haveBest  bool
	workers   int
}

// NewElection starts an election for the given round over the given
// governor keys and stake snapshot.
func NewElection(round uint64, prevHash crypto.Hash, pubs []crypto.PublicKey, stakes []uint64) (*Election, error) {
	if len(pubs) != len(stakes) {
		return nil, fmt.Errorf("%d keys for %d stakes: %w", len(pubs), len(stakes), ErrBadStake)
	}
	if len(pubs) == 0 {
		return nil, fmt.Errorf("no governors: %w", ErrBadStake)
	}
	return &Election{
		round:     round,
		prevHash:  prevHash,
		pubs:      pubs,
		stakes:    stakes,
		submitted: make([]bool, len(pubs)),
		remaining: len(pubs),
	}, nil
}

// SetWorkers bounds the goroutines Submit may use for VRF proof
// verification. Values ≤ 1 keep Submit single-threaded (the default).
// Parallelism changes only the wall time, never the outcome: structural
// checks and the best-ticket scan stay in submission order.
func (e *Election) SetWorkers(w int) { e.workers = w }

// Submit records governor j's ticket batch, verifying every proof and
// that exactly one ticket per stake unit was produced. A governor with
// zero stake submits an empty batch.
func (e *Election) Submit(j int, tickets []Ticket) error {
	if j < 0 || j >= len(e.pubs) {
		return fmt.Errorf("governor %d: %w", j, ErrBadTicket)
	}
	if e.submitted[j] {
		return fmt.Errorf("governor %d double submission: %w", j, ErrBadTicket)
	}
	if uint64(len(tickets)) != e.stakes[j] {
		return fmt.Errorf("governor %d submitted %d tickets for %d stake units: %w",
			j, len(tickets), e.stakes[j], ErrBadTicket)
	}
	seen := make(map[int]bool, len(tickets))
	for _, t := range tickets {
		if t.Governor != j {
			return fmt.Errorf("governor %d submitted ticket of governor %d: %w", j, t.Governor, ErrBadTicket)
		}
		if uint64(t.Unit) >= e.stakes[j] {
			return fmt.Errorf("governor %d ticket unit %d of %d: %w", j, t.Unit, e.stakes[j], ErrBadTicket)
		}
		if seen[t.Unit] {
			return fmt.Errorf("governor %d duplicate ticket for unit %d: %w", j, t.Unit, ErrBadTicket)
		}
		seen[t.Unit] = true
	}
	if err := e.verifyTickets(j, tickets); err != nil {
		return err
	}
	// Scan for the minimum in ticket order so ties (identical outputs)
	// resolve exactly as the sequential path always has.
	for _, t := range tickets {
		if !e.haveBest || t.Output.Less(e.best.Output) {
			e.best = t
			e.haveBest = true
		}
	}
	e.submitted[j] = true
	e.remaining--
	return nil
}

// verifyTickets checks every VRF proof of a batch through one
// crypto.VerifyBatchWorkers pass: proof checks are ordinary signature
// checks over VRFProofMessage(alpha), so the whole batch is classified
// against the verification cache under a single lock and the residual
// misses fan out across at most e.workers goroutines. The returned
// error is the one of the lowest-indexed failing ticket, keeping error
// reporting deterministic under any schedule.
func (e *Election) verifyTickets(j int, tickets []Ticket) error {
	if len(tickets) == 0 {
		return nil
	}
	items := make([]crypto.BatchItem, len(tickets))
	for i, t := range tickets {
		if t.Unit < 0 {
			return fmt.Errorf("ticket unit %d: %w", t.Unit, ErrBadTicket)
		}
		alpha := crypto.VRFAlpha(e.prevHash, e.round, t.Governor, t.Unit)
		items[i] = crypto.BatchItem{Pub: e.pubs[j], Msg: crypto.VRFProofMessage(alpha), Sig: t.Proof}
	}
	errs := crypto.VerifyBatchWorkers(items, e.workers)
	for i, t := range tickets {
		if errs[i] != nil || crypto.Sum(t.Proof) != t.Output {
			return fmt.Errorf("ticket g%d/u%d: %w", t.Governor, t.Unit, ErrBadTicket)
		}
	}
	return nil
}

// Complete reports whether every governor has submitted.
func (e *Election) Complete() bool { return e.remaining == 0 }

// Leader returns the winning governor and ticket once the election is
// complete.
func (e *Election) Leader() (int, Ticket, error) {
	if !e.Complete() {
		return 0, Ticket{}, fmt.Errorf("%d governors outstanding: %w", e.remaining, ErrIncompleteElection)
	}
	if !e.haveBest {
		return 0, Ticket{}, ErrNoStake
	}
	return e.best.Governor, e.best, nil
}
