package consensus

import (
	"testing"
	"testing/quick"

	"repchain/internal/codec"
)

// TestQuickDecodersNeverPanic feeds random bytes to every consensus
// decoder.
func TestQuickDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		if _, err := DecodeTickets(b); err == nil {
			// fine: random bytes happened to parse
			_ = err
		}
		d := codec.NewDecoder(b)
		if _, err := DecodeStakeTx(d); err == nil {
			_ = err
		}
		d2 := codec.NewDecoder(b)
		if _, err := DecodeTicket(d2); err == nil {
			_ = err
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTamperedTicketRejected flips a byte of an encoded ticket
// batch: decoding may succeed, but verification against the signer
// must fail for any mutated ticket.
func TestQuickTamperedTicketRejected(t *testing.T) {
	pub, priv := testKey(t, 60)
	prev := HashState([]uint64{1, 2})
	tickets := MakeTickets(priv, prev, 5, 0, 2)
	enc := EncodeTickets(tickets)
	f := func(pos uint16, bit uint8) bool {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		got, err := DecodeTickets(mut)
		if err != nil {
			return true
		}
		for i, tk := range got {
			if err := VerifyTicket(pub, prev, 5, tk); err != nil {
				return true // mutation detected
			}
			// Unchanged ticket content is fine.
			if tk.Output != tickets[i].Output || tk.Unit != tickets[i].Unit || tk.Governor != tickets[i].Governor {
				return false // verified despite mutation: forgery!
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
