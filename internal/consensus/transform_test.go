package consensus

import (
	"errors"
	"testing"

	"repchain/internal/crypto"
)

type transformFixture struct {
	pubs  []crypto.PublicKey
	privs []crypto.PrivateKey
	base  []uint64
}

func newTransformFixture(t *testing.T, m int) *transformFixture {
	t.Helper()
	fx := &transformFixture{base: make([]uint64, m)}
	for j := 0; j < m; j++ {
		pub, priv := testKey(t, byte(100+j))
		fx.pubs = append(fx.pubs, pub)
		fx.privs = append(fx.privs, priv)
		fx.base[j] = 10
	}
	return fx
}

func (fx *transformFixture) propose(t *testing.T, leader int, txs []StakeTx) StateProposal {
	t.Helper()
	p, err := ProposeState(1, leader, fx.base, txs, fx.privs[leader])
	if err != nil {
		t.Fatalf("ProposeState() error = %v", err)
	}
	return p
}

func TestProposeAndVerify(t *testing.T) {
	fx := newTransformFixture(t, 4)
	txs := []StakeTx{SignStakeTx(1, 2, 5, 0, fx.privs[1])}
	p := fx.propose(t, 0, txs)
	if p.NewState[1] != 5 || p.NewState[2] != 15 {
		t.Fatalf("NewState = %v", p.NewState)
	}
	if err := VerifyProposal(p, fx.pubs[0], fx.pubs, fx.base); err != nil {
		t.Fatalf("VerifyProposal() error = %v", err)
	}
}

func TestVerifyProposalRejectsForgedState(t *testing.T) {
	fx := newTransformFixture(t, 3)
	p := fx.propose(t, 0, nil)
	// Leader lies about the state after signing — signature breaks.
	p.NewState[1] = 999
	if err := VerifyProposal(p, fx.pubs[0], fx.pubs, fx.base); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("error = %v, want ErrBadSignature", err)
	}
}

func TestVerifyProposalRejectsSignedLie(t *testing.T) {
	// The leader signs a NEW_STATE inconsistent with the transfers —
	// the replay check must catch it even though the signature is
	// fine.
	fx := newTransformFixture(t, 3)
	lie := []uint64{100, 10, 10}
	p := StateProposal{Round: 1, Leader: 0, NewState: lie, Txs: nil}
	p.Sig = fx.privs[0].Sign(stateSigningBytes(1, 0, lie, nil))
	if err := VerifyProposal(p, fx.pubs[0], fx.pubs, fx.base); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("error = %v, want ErrStateMismatch", err)
	}
}

func TestVerifyProposalRejectsUnsignedTransfer(t *testing.T) {
	fx := newTransformFixture(t, 3)
	// Transfer "signed" by the wrong governor: leader 0 forges a
	// transfer from governor 1.
	forged := SignStakeTx(1, 0, 5, 0, fx.privs[0]) // signed by 0, claims From=1
	p := fx.propose(t, 0, []StakeTx{forged})
	if err := VerifyProposal(p, fx.pubs[0], fx.pubs, fx.base); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("error = %v, want ErrBadSignature", err)
	}
}

func TestEndorseAndAssemble(t *testing.T) {
	fx := newTransformFixture(t, 3)
	p := fx.propose(t, 1, []StakeTx{SignStakeTx(0, 2, 1, 0, fx.privs[0])})
	var ens []Endorsement
	for j := range fx.pubs {
		ens = append(ens, Endorse(p, j, fx.privs[j]))
	}
	blk, err := AssembleStakeBlock(p, ens, fx.pubs)
	if err != nil {
		t.Fatalf("AssembleStakeBlock() error = %v", err)
	}
	if err := VerifyStakeBlock(blk, fx.pubs); err != nil {
		t.Fatalf("VerifyStakeBlock() error = %v", err)
	}
}

func TestAssembleRequiresAllEndorsements(t *testing.T) {
	fx := newTransformFixture(t, 3)
	p := fx.propose(t, 0, nil)
	ens := []Endorsement{
		Endorse(p, 0, fx.privs[0]),
		Endorse(p, 1, fx.privs[1]),
		// governor 2 missing
	}
	if _, err := AssembleStakeBlock(p, ens, fx.pubs); !errors.Is(err, ErrIncompleteElection) {
		t.Fatalf("error = %v, want ErrIncompleteElection", err)
	}
}

func TestAssembleRejectsBadEndorsement(t *testing.T) {
	fx := newTransformFixture(t, 2)
	p := fx.propose(t, 0, nil)
	good := Endorse(p, 0, fx.privs[0])
	// Governor 1 endorses a different state.
	other := p
	other.NewState = []uint64{1, 19}
	bad := Endorse(other, 1, fx.privs[1])
	if _, err := AssembleStakeBlock(p, []Endorsement{good, bad}, fx.pubs); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("error = %v, want ErrStateMismatch", err)
	}
	// Round mismatch.
	wrongRound := Endorsement{Round: 9, Governor: 1, StateHash: HashState(p.NewState)}
	wrongRound.Sig = fx.privs[1].Sign(endorsementSigningBytes(9, 1, wrongRound.StateHash))
	if _, err := AssembleStakeBlock(p, []Endorsement{good, wrongRound}, fx.pubs); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("round mismatch error = %v, want ErrStateMismatch", err)
	}
	// Out-of-range governor.
	oob := good
	oob.Governor = 7
	if _, err := AssembleStakeBlock(p, []Endorsement{good, oob}, fx.pubs); !errors.Is(err, ErrBadStake) {
		t.Fatalf("out-of-range error = %v, want ErrBadStake", err)
	}
}

func TestVerifyStakeBlockRejectsTampering(t *testing.T) {
	fx := newTransformFixture(t, 2)
	p := fx.propose(t, 0, nil)
	ens := []Endorsement{Endorse(p, 0, fx.privs[0]), Endorse(p, 1, fx.privs[1])}
	blk, err := AssembleStakeBlock(p, ens, fx.pubs)
	if err != nil {
		t.Fatal(err)
	}
	blk.NewState[0] = 12345
	if err := VerifyStakeBlock(blk, fx.pubs); err == nil {
		t.Fatal("tampered stake block verified")
	}
}

func TestEvidenceFlow(t *testing.T) {
	fx := newTransformFixture(t, 3)
	// Leader signs an inconsistent state; follower 1 accuses.
	lie := []uint64{100, 10, 10}
	p := StateProposal{Round: 1, Leader: 0, NewState: lie}
	p.Sig = fx.privs[0].Sign(stateSigningBytes(1, 0, lie, nil))

	verifyErr := VerifyProposal(p, fx.pubs[0], fx.pubs, fx.base)
	if verifyErr == nil {
		t.Fatal("bad proposal verified")
	}
	ev := AccuseLeader(1, p, verifyErr, fx.privs[1])
	// Governor 2 validates the accusation against its own base state.
	if err := VerifyEvidence(ev, fx.pubs[1], fx.pubs[0], fx.pubs, fx.base); err != nil {
		t.Fatalf("VerifyEvidence() error = %v", err)
	}
}

func TestEvidenceRejectsUnfoundedAccusation(t *testing.T) {
	fx := newTransformFixture(t, 3)
	p := fx.propose(t, 0, nil) // perfectly valid proposal
	ev := AccuseLeader(1, p, errors.New("made up"), fx.privs[1])
	if err := VerifyEvidence(ev, fx.pubs[1], fx.pubs[0], fx.pubs, fx.base); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("unfounded accusation error = %v, want ErrStateMismatch", err)
	}
}

func TestEvidenceRejectsForgedAccuser(t *testing.T) {
	fx := newTransformFixture(t, 3)
	lie := []uint64{100, 10, 10}
	p := StateProposal{Round: 1, Leader: 0, NewState: lie}
	p.Sig = fx.privs[0].Sign(stateSigningBytes(1, 0, lie, nil))
	ev := AccuseLeader(1, p, errors.New("bad state"), fx.privs[2]) // signed with wrong key
	if err := VerifyEvidence(ev, fx.pubs[1], fx.pubs[0], fx.pubs, fx.base); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged accuser error = %v, want ErrBadSignature", err)
	}
}

func TestProposeStateRejectsInvalidTransfers(t *testing.T) {
	fx := newTransformFixture(t, 2)
	over := SignStakeTx(0, 1, 1000, 0, fx.privs[0])
	if _, err := ProposeState(1, 0, fx.base, []StakeTx{over}, fx.privs[0]); !errors.Is(err, ErrInsufficientStake) {
		t.Fatalf("error = %v, want ErrInsufficientStake", err)
	}
}
