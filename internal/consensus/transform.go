package consensus

import (
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// The 3-step stake-transform protocol of §3.4.3:
//
//  1. The leader combines the previous stake state with the round's
//     stake transfers into NEW_STATE and broadcasts
//     (NEW_STATE, sig_leader(NEW_STATE)).
//  2. Each non-leading governor verifies the signature and the
//     consistency of NEW_STATE with the transfers it received. On
//     success it returns its signature to the leader; on failure it
//     broadcasts the evidence to expel the leader.
//  3. The leader packs NEW_STATE with all collected signatures into a
//     stake-transform block and broadcasts it.

// StateProposal is the leader's step-1 message.
type StateProposal struct {
	// Round is the consensus round.
	Round uint64
	// Leader is the proposing governor's index.
	Leader int
	// NewState is the post-transfer stake vector.
	NewState []uint64
	// Txs are the transfers the leader applied, in order.
	Txs []StakeTx
	// Sig is the leader's signature.
	Sig []byte
}

func stateSigningBytes(round uint64, leader int, newState []uint64, txs []StakeTx) []byte {
	e := codec.Wrap(make([]byte, 0, 64+8*len(newState)+64*len(txs)))
	e.PutString("repchain/newstate/v1")
	e.PutUint64(round)
	e.PutInt(leader)
	e.PutInt(len(newState))
	for _, s := range newState {
		e.PutUint64(s)
	}
	e.PutInt(len(txs))
	for _, t := range txs {
		t.Encode(&e)
	}
	return e.Bytes()
}

// ProposeState runs step 1: the leader applies the transfers to base
// and signs the resulting NEW_STATE.
func ProposeState(round uint64, leader int, base []uint64, txs []StakeTx, key crypto.PrivateKey) (StateProposal, error) {
	newState, err := ApplyTransfers(base, txs)
	if err != nil {
		return StateProposal{}, fmt.Errorf("round %d propose: %w", round, err)
	}
	p := StateProposal{Round: round, Leader: leader, NewState: newState, Txs: txs}
	p.Sig = key.Sign(stateSigningBytes(round, leader, newState, txs))
	return p, nil
}

// VerifyProposal runs a follower's step-2 checks: the leader's
// signature, that every embedded transfer is signed by its payer, and
// that NEW_STATE equals base with the transfers applied. A non-nil
// error is grounds for expulsion evidence.
func VerifyProposal(p StateProposal, leaderPub crypto.PublicKey, governorPubs []crypto.PublicKey, base []uint64) error {
	msg := stateSigningBytes(p.Round, p.Leader, p.NewState, p.Txs)
	if err := crypto.CachedVerify(leaderPub, msg, p.Sig); err != nil {
		return fmt.Errorf("round %d proposal: %w", p.Round, ErrBadSignature)
	}
	for i, t := range p.Txs {
		if t.From < 0 || t.From >= len(governorPubs) {
			return fmt.Errorf("round %d transfer %d payer %d: %w", p.Round, i, t.From, ErrBadStake)
		}
		if err := t.Verify(governorPubs[t.From]); err != nil {
			return fmt.Errorf("round %d transfer %d: %w", p.Round, i, err)
		}
	}
	want, err := ApplyTransfers(base, p.Txs)
	if err != nil {
		return fmt.Errorf("round %d replay: %w", p.Round, err)
	}
	if len(want) != len(p.NewState) {
		return fmt.Errorf("round %d state length %d, want %d: %w", p.Round, len(p.NewState), len(want), ErrStateMismatch)
	}
	for i := range want {
		if want[i] != p.NewState[i] {
			return fmt.Errorf("round %d governor %d stake %d, replay gives %d: %w",
				p.Round, i, p.NewState[i], want[i], ErrStateMismatch)
		}
	}
	return nil
}

// ResignProposal re-signs an (arbitrarily modified) proposal with the
// given key. It exists so tests and adversarial harnesses can model a
// Byzantine leader that signs a lying NEW_STATE; the honest path never
// needs it.
func ResignProposal(p StateProposal, key crypto.PrivateKey) StateProposal {
	p.Sig = key.Sign(stateSigningBytes(p.Round, p.Leader, p.NewState, p.Txs))
	return p
}

// Endorsement is a follower's step-2 signature over the proposal.
type Endorsement struct {
	// Round is the consensus round.
	Round uint64
	// Governor is the endorsing governor's index.
	Governor int
	// StateHash commits to the endorsed NEW_STATE.
	StateHash crypto.Hash
	// Sig is the governor's signature.
	Sig []byte
}

func endorsementSigningBytes(round uint64, governor int, stateHash crypto.Hash) []byte {
	e := codec.Wrap(make([]byte, 0, 64))
	e.PutString("repchain/endorse/v1")
	e.PutUint64(round)
	e.PutInt(governor)
	e.PutRaw(stateHash[:])
	return e.Bytes()
}

// Endorse produces governor j's signature over the proposal's state.
func Endorse(p StateProposal, governor int, key crypto.PrivateKey) Endorsement {
	h := HashState(p.NewState)
	return Endorsement{
		Round:     p.Round,
		Governor:  governor,
		StateHash: h,
		Sig:       key.Sign(endorsementSigningBytes(p.Round, governor, h)),
	}
}

// VerifyEndorsement checks an endorsement against the endorser's key
// and the expected state hash.
func VerifyEndorsement(en Endorsement, pub crypto.PublicKey, stateHash crypto.Hash) error {
	if en.StateHash != stateHash {
		return fmt.Errorf("round %d governor %d endorsed %s, want %s: %w",
			en.Round, en.Governor, en.StateHash.Short(), stateHash.Short(), ErrStateMismatch)
	}
	msg := endorsementSigningBytes(en.Round, en.Governor, en.StateHash)
	if err := crypto.CachedVerify(pub, msg, en.Sig); err != nil {
		return fmt.Errorf("round %d endorsement by %d: %w", en.Round, en.Governor, ErrBadSignature)
	}
	return nil
}

// StakeBlock is the step-3 artifact: NEW_STATE plus every governor's
// signature.
type StakeBlock struct {
	// Round is the consensus round.
	Round uint64
	// Leader is the assembling governor.
	Leader int
	// NewState is the committed stake vector.
	NewState []uint64
	// Endorsements holds one signature per governor (including the
	// leader's own), indexed arbitrarily.
	Endorsements []Endorsement
}

// AssembleStakeBlock runs the leader's step 3: it requires an
// endorsement from every governor over the proposal's state.
func AssembleStakeBlock(p StateProposal, endorsements []Endorsement, governorPubs []crypto.PublicKey) (StakeBlock, error) {
	h := HashState(p.NewState)
	have := make([]bool, len(governorPubs))
	for _, en := range endorsements {
		if en.Governor < 0 || en.Governor >= len(governorPubs) {
			return StakeBlock{}, fmt.Errorf("endorsement by governor %d of %d: %w", en.Governor, len(governorPubs), ErrBadStake)
		}
		if en.Round != p.Round {
			return StakeBlock{}, fmt.Errorf("endorsement round %d, proposal round %d: %w", en.Round, p.Round, ErrStateMismatch)
		}
		if err := VerifyEndorsement(en, governorPubs[en.Governor], h); err != nil {
			return StakeBlock{}, err
		}
		have[en.Governor] = true
	}
	for j, ok := range have {
		if !ok {
			return StakeBlock{}, fmt.Errorf("missing endorsement from governor %d: %w", j, ErrIncompleteElection)
		}
	}
	return StakeBlock{
		Round:        p.Round,
		Leader:       p.Leader,
		NewState:     append([]uint64(nil), p.NewState...),
		Endorsements: append([]Endorsement(nil), endorsements...),
	}, nil
}

// VerifyStakeBlock checks a received stake block: every governor's
// endorsement over the block's state must verify. The endorsement set
// is the block-signature batch of DESIGN.md §4f: the signatures are
// checked in one crypto.VerifyBatch pass, then the verdicts are
// replayed in endorsement order so the first failure reported is the
// same one the per-endorsement loop would have found.
func VerifyStakeBlock(b StakeBlock, governorPubs []crypto.PublicKey) error {
	h := HashState(b.NewState)
	items := make([]crypto.BatchItem, 0, len(b.Endorsements))
	itemOf := make([]int, len(b.Endorsements))
	for i, en := range b.Endorsements {
		itemOf[i] = -1
		if en.Governor < 0 || en.Governor >= len(governorPubs) ||
			en.Round != b.Round || en.StateHash != h {
			continue // reported in order below
		}
		itemOf[i] = len(items)
		items = append(items, crypto.BatchItem{
			Pub: governorPubs[en.Governor],
			Msg: endorsementSigningBytes(en.Round, en.Governor, en.StateHash),
			Sig: en.Sig,
		})
	}
	verdicts := crypto.VerifyBatch(items)
	have := make([]bool, len(governorPubs))
	for i, en := range b.Endorsements {
		if en.Governor < 0 || en.Governor >= len(governorPubs) {
			return fmt.Errorf("endorsement by governor %d: %w", en.Governor, ErrBadStake)
		}
		if en.Round != b.Round {
			return fmt.Errorf("endorsement round %d in block round %d: %w", en.Round, b.Round, ErrStateMismatch)
		}
		if en.StateHash != h {
			return fmt.Errorf("round %d governor %d endorsed %s, want %s: %w",
				en.Round, en.Governor, en.StateHash.Short(), h.Short(), ErrStateMismatch)
		}
		if verdicts[itemOf[i]] != nil {
			return fmt.Errorf("round %d endorsement by %d: %w", en.Round, en.Governor, ErrBadSignature)
		}
		have[en.Governor] = true
	}
	for j, ok := range have {
		if !ok {
			return fmt.Errorf("stake block missing endorsement from governor %d: %w", j, ErrIncompleteElection)
		}
	}
	return nil
}

// Evidence is a follower's accusation against a misbehaving leader:
// the failed proposal plus the reason. Receiving governors re-run
// VerifyProposal; if it indeed fails, the leader is expelled for the
// round and the round restarts without him (the expulsion procedure
// referenced from CycLedger [40]).
type Evidence struct {
	// Accuser is the reporting governor.
	Accuser int
	// Proposal is the offending message.
	Proposal StateProposal
	// Reason is the human-readable verification failure.
	Reason string
	// Sig is the accuser's signature over the evidence.
	Sig []byte
}

func evidenceSigningBytes(accuser int, p StateProposal, reason string) []byte {
	e := codec.Wrap(make([]byte, 0, 128))
	e.PutString("repchain/evidence/v1")
	e.PutInt(accuser)
	e.PutUint64(p.Round)
	e.PutInt(p.Leader)
	e.PutBytes(p.Sig)
	e.PutString(reason)
	return e.Bytes()
}

// AccuseLeader builds signed expulsion evidence from a failed
// proposal.
func AccuseLeader(accuser int, p StateProposal, verifyErr error, key crypto.PrivateKey) Evidence {
	reason := ""
	if verifyErr != nil {
		reason = verifyErr.Error()
	}
	ev := Evidence{Accuser: accuser, Proposal: p, Reason: reason}
	ev.Sig = key.Sign(evidenceSigningBytes(accuser, p, reason))
	return ev
}

// VerifyEvidence checks the accusation: the accuser's signature must
// verify AND the embedded proposal must indeed fail verification
// against the verifier's own base state. It returns nil when the
// evidence is valid (the leader should be expelled).
func VerifyEvidence(ev Evidence, accuserPub, leaderPub crypto.PublicKey, governorPubs []crypto.PublicKey, base []uint64) error {
	msg := evidenceSigningBytes(ev.Accuser, ev.Proposal, ev.Reason)
	if err := crypto.CachedVerify(accuserPub, msg, ev.Sig); err != nil {
		return fmt.Errorf("evidence by %d: %w", ev.Accuser, ErrBadSignature)
	}
	if err := VerifyProposal(ev.Proposal, leaderPub, governorPubs, base); err == nil {
		return fmt.Errorf("evidence by %d: proposal verifies, accusation unfounded: %w", ev.Accuser, ErrStateMismatch)
	}
	return nil
}
