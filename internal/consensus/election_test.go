package consensus

import (
	"errors"
	"math"
	"testing"

	"repchain/internal/crypto"
)

// electionFixture builds m governors with the given stakes.
type electionFixture struct {
	pubs   []crypto.PublicKey
	privs  []crypto.PrivateKey
	stakes []uint64
	prev   crypto.Hash
}

func newElectionFixture(t *testing.T, stakes []uint64) *electionFixture {
	t.Helper()
	fx := &electionFixture{stakes: stakes, prev: crypto.Sum([]byte("prev block"))}
	for j := range stakes {
		pub, priv := testKey(t, byte(50+j))
		fx.pubs = append(fx.pubs, pub)
		fx.privs = append(fx.privs, priv)
	}
	return fx
}

func (fx *electionFixture) run(t *testing.T, round uint64) (int, Ticket) {
	t.Helper()
	el, err := NewElection(round, fx.prev, fx.pubs, fx.stakes)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fx.stakes {
		tickets := MakeTickets(fx.privs[j], fx.prev, round, j, fx.stakes[j])
		if err := el.Submit(j, tickets); err != nil {
			t.Fatalf("Submit(%d) error = %v", j, err)
		}
	}
	leader, best, err := el.Leader()
	if err != nil {
		t.Fatalf("Leader() error = %v", err)
	}
	return leader, best
}

func TestMakeAndVerifyTickets(t *testing.T) {
	pub, priv := testKey(t, 50)
	prev := crypto.Sum([]byte("p"))
	tickets := MakeTickets(priv, prev, 3, 1, 4)
	if len(tickets) != 4 {
		t.Fatalf("MakeTickets produced %d, want 4", len(tickets))
	}
	for _, tk := range tickets {
		if err := VerifyTicket(pub, prev, 3, tk); err != nil {
			t.Fatalf("VerifyTicket() error = %v", err)
		}
	}
	// Tampered output rejected.
	tk := tickets[0]
	tk.Output[0] ^= 0xff
	if err := VerifyTicket(pub, prev, 3, tk); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("tampered ticket error = %v, want ErrBadTicket", err)
	}
	// Wrong round rejected.
	if err := VerifyTicket(pub, prev, 4, tickets[0]); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("wrong round error = %v, want ErrBadTicket", err)
	}
	// Negative unit rejected.
	neg := tickets[0]
	neg.Unit = -1
	if err := VerifyTicket(pub, prev, 3, neg); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("negative unit error = %v, want ErrBadTicket", err)
	}
}

func TestTicketsRoundTrip(t *testing.T) {
	_, priv := testKey(t, 50)
	prev := crypto.Sum([]byte("p"))
	tickets := MakeTickets(priv, prev, 1, 0, 3)
	got, err := DecodeTickets(EncodeTickets(tickets))
	if err != nil {
		t.Fatalf("DecodeTickets() error = %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d tickets", len(got))
	}
	for i := range got {
		if got[i].Output != tickets[i].Output || got[i].Unit != tickets[i].Unit {
			t.Fatalf("ticket %d mismatch", i)
		}
	}
	if _, err := DecodeTickets([]byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestElectionDeterministic(t *testing.T) {
	fx := newElectionFixture(t, []uint64{2, 3, 1})
	l1, t1 := fx.run(t, 7)
	l2, t2 := fx.run(t, 7)
	if l1 != l2 || t1.Output != t2.Output {
		t.Fatal("same round elected different leaders")
	}
}

func TestElectionVariesWithRound(t *testing.T) {
	fx := newElectionFixture(t, []uint64{4, 4, 4, 4})
	leaders := make(map[int]bool)
	for round := uint64(0); round < 32; round++ {
		l, _ := fx.run(t, round)
		leaders[l] = true
	}
	if len(leaders) < 2 {
		t.Fatal("leadership never rotated across 32 rounds")
	}
}

func TestElectionZeroStakeGovernorNeverLeads(t *testing.T) {
	fx := newElectionFixture(t, []uint64{0, 3, 3})
	for round := uint64(0); round < 16; round++ {
		l, _ := fx.run(t, round)
		if l == 0 {
			t.Fatal("zero-stake governor elected")
		}
	}
}

// TestElectionStakeProportional checks the PoS fairness claim: "the
// probability that a governor is elected as the leader is proportional
// to the amount of stake he owns". Governor 0 holds 3/4 of the stake.
func TestElectionStakeProportional(t *testing.T) {
	fx := newElectionFixture(t, []uint64{12, 2, 2})
	wins := make([]int, 3)
	const rounds = 600
	for round := uint64(0); round < rounds; round++ {
		l, _ := fx.run(t, round)
		wins[l]++
	}
	got := float64(wins[0]) / rounds
	// Expected 0.75; allow ±3.5 sigma ≈ ±0.062.
	if math.Abs(got-0.75) > 0.065 {
		t.Fatalf("governor 0 won %.3f of rounds, want ≈ 0.75", got)
	}
}

func TestElectionSubmitErrors(t *testing.T) {
	fx := newElectionFixture(t, []uint64{2, 2})
	el, err := NewElection(1, fx.prev, fx.pubs, fx.stakes)
	if err != nil {
		t.Fatal(err)
	}
	good := MakeTickets(fx.privs[0], fx.prev, 1, 0, 2)

	if err := el.Submit(5, good); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("bad index error = %v", err)
	}
	if err := el.Submit(0, good[:1]); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("wrong count error = %v", err)
	}
	// Claiming another governor's tickets fails proof verification.
	theirs := MakeTickets(fx.privs[1], fx.prev, 1, 1, 2)
	if err := el.Submit(0, theirs); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("stolen tickets error = %v", err)
	}
	// Duplicate units rejected.
	dup := []Ticket{good[0], good[0]}
	if err := el.Submit(0, dup); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("duplicate unit error = %v", err)
	}
	// Good submission, then double submission rejected.
	if err := el.Submit(0, good); err != nil {
		t.Fatal(err)
	}
	if err := el.Submit(0, good); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("double submission error = %v", err)
	}
	// Leader before completion fails.
	if _, _, err := el.Leader(); !errors.Is(err, ErrIncompleteElection) {
		t.Fatalf("early Leader() error = %v", err)
	}
}

func TestElectionAllZeroStake(t *testing.T) {
	fx := newElectionFixture(t, []uint64{0, 0})
	el, err := NewElection(1, fx.prev, fx.pubs, fx.stakes)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fx.stakes {
		if err := el.Submit(j, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := el.Leader(); !errors.Is(err, ErrNoStake) {
		t.Fatalf("Leader() error = %v, want ErrNoStake", err)
	}
}

func TestNewElectionValidation(t *testing.T) {
	fx := newElectionFixture(t, []uint64{1})
	if _, err := NewElection(1, fx.prev, fx.pubs, []uint64{1, 2}); !errors.Is(err, ErrBadStake) {
		t.Fatalf("mismatched lengths error = %v", err)
	}
	if _, err := NewElection(1, fx.prev, nil, nil); !errors.Is(err, ErrBadStake) {
		t.Fatalf("empty election error = %v", err)
	}
}

func BenchmarkMakeTickets16(b *testing.B) {
	seed := make([]byte, crypto.SeedSize)
	_, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		b.Fatal(err)
	}
	prev := crypto.Sum([]byte("p"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MakeTickets(priv, prev, uint64(i), 0, 16)
	}
}
