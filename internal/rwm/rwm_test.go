package rwm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, n int, beta float64) *Instance {
	t.Helper()
	in, err := New(n, beta)
	if err != nil {
		t.Fatalf("New(%d, %v) error = %v", n, beta, err)
	}
	return in
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		beta    float64
		wantErr error
	}{
		{"ok", 8, 0.9, nil},
		{"zero experts", 0, 0.9, ErrBadExperts},
		{"negative experts", -1, 0.9, ErrBadExperts},
		{"beta zero", 4, 0, ErrBadBeta},
		{"beta one", 4, 1, ErrBadBeta},
		{"beta negative", 4, -0.5, ErrBadBeta},
		{"beta above one", 4, 1.5, ErrBadBeta},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.beta)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestInitialWeightsAreOne(t *testing.T) {
	in := mustNew(t, 5, 0.9)
	for i := 0; i < 5; i++ {
		if in.Weight(i) != 1 {
			t.Fatalf("Weight(%d) = %v, want 1", i, in.Weight(i))
		}
	}
	if in.TotalWeight() != 5 {
		t.Fatalf("TotalWeight() = %v, want 5 (W_0 = r)", in.TotalWeight())
	}
}

func TestOutcomeLoss(t *testing.T) {
	if OutcomeRight.Loss() != 0 || OutcomeAbsent.Loss() != 1 || OutcomeWrong.Loss() != 2 {
		t.Fatal("outcome losses must be 0/1/2")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeRight.String() != "right" || OutcomeAbsent.String() != "absent" || OutcomeWrong.String() != "wrong" {
		t.Fatal("outcome strings wrong")
	}
}

// TestGammaInequalityChain verifies the paper's required chain
// β² ≤ γ ≤ β ≤ ½(γ−1)L + 1 ≤ 1 for representative parameters.
func TestGammaInequalityChain(t *testing.T) {
	betas := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99}
	losses := []float64{0.01, 0.1, 0.5, 1, 1.5, 1.9, 2}
	for _, beta := range betas {
		for _, loss := range losses {
			g := Gamma(beta, loss)
			if g < beta*beta-1e-12 {
				t.Fatalf("β=%v L=%v: γ=%v < β²=%v", beta, loss, g, beta*beta)
			}
			if g > beta+1e-12 {
				t.Fatalf("β=%v L=%v: γ=%v > β=%v", beta, loss, g, beta)
			}
			upper := 0.5*(g-1)*loss + 1
			if beta > upper+1e-12 {
				t.Fatalf("β=%v L=%v: β > ½(γ−1)L+1 = %v", beta, loss, upper)
			}
			if upper > 1+1e-12 {
				t.Fatalf("β=%v L=%v: ½(γ−1)L+1 = %v > 1", beta, loss, upper)
			}
		}
	}
}

func TestGammaZeroLoss(t *testing.T) {
	beta := 0.9
	want := (beta*beta + beta) / 2
	if g := Gamma(beta, 0); g != want {
		t.Fatalf("Gamma(β, 0) = %v, want floor %v", g, want)
	}
}

func TestGammaAtMaxLossEqualsBeta(t *testing.T) {
	// At L = 2 the formula gives exactly β.
	for _, beta := range []float64{0.2, 0.5, 0.9} {
		if g := Gamma(beta, 2); math.Abs(g-beta) > 1e-12 {
			t.Fatalf("Gamma(%v, 2) = %v, want β", beta, g)
		}
	}
}

func TestQuickGammaChain(t *testing.T) {
	f := func(rb, rl uint16) bool {
		beta := 0.01 + 0.98*float64(rb)/65535.0 // (0.01, 0.99)
		loss := 2 * float64(rl) / 65535.0       // [0, 2]
		g := Gamma(beta, loss)
		if g < beta*beta-1e-9 || g > beta+1e-9 {
			return false
		}
		upper := 0.5*(g-1)*loss + 1
		return beta <= upper+1e-9 && upper <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendedBeta(t *testing.T) {
	// Paper's example: r = 8, T = 4800 is the largest horizon with
	// β ≤ 0.9; at that point β should be exactly 0.9.
	b := RecommendedBeta(8, 4800)
	if math.Abs(b-0.9) > 1e-9 {
		t.Fatalf("RecommendedBeta(8, 4800) = %v, want 0.9", b)
	}
	// Shorter horizons give smaller β (more aggressive decay).
	if RecommendedBeta(8, 1000) >= RecommendedBeta(8, 4000) {
		t.Fatal("β should increase with horizon")
	}
	// Clamps.
	if RecommendedBeta(8, 1) != 0.1 {
		t.Fatalf("tiny horizon should clamp to 0.1, got %v", RecommendedBeta(8, 1))
	}
	if RecommendedBeta(8, 1<<30) != 0.9 {
		t.Fatal("huge horizon should clamp to 0.9")
	}
	if RecommendedBeta(1, 100) != 0.9 || RecommendedBeta(0, 100) != 0.9 {
		t.Fatal("degenerate expert counts should default to 0.9")
	}
}

func TestTheoremOneBound(t *testing.T) {
	if got := TheoremOneBound(8, 4800); math.Abs(got-16*math.Sqrt(3*4800)) > 1e-9 {
		t.Fatalf("TheoremOneBound(8,4800) = %v", got)
	}
	if TheoremOneBound(0, 100) != 0 || TheoremOneBound(8, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestRevealUpdatesWeights(t *testing.T) {
	in := mustNew(t, 3, 0.9)
	res, err := in.Reveal([]Outcome{OutcomeRight, OutcomeWrong, OutcomeAbsent})
	if err != nil {
		t.Fatalf("Reveal() error = %v", err)
	}
	// W_right = 1, W_wrong = 1 → L = 1.
	if math.Abs(res.Loss-1) > 1e-12 {
		t.Fatalf("Loss = %v, want 1", res.Loss)
	}
	wantGamma := Gamma(0.9, 1)
	if res.Gamma != wantGamma {
		t.Fatalf("Gamma = %v, want %v", res.Gamma, wantGamma)
	}
	if in.Weight(0) != 1 {
		t.Fatalf("right expert weight = %v, want 1", in.Weight(0))
	}
	if math.Abs(in.Weight(1)-wantGamma) > 1e-12 {
		t.Fatalf("wrong expert weight = %v, want γ", in.Weight(1))
	}
	if math.Abs(in.Weight(2)-0.9) > 1e-12 {
		t.Fatalf("absent expert weight = %v, want β", in.Weight(2))
	}
	if in.Rounds() != 1 {
		t.Fatalf("Rounds() = %d, want 1", in.Rounds())
	}
}

func TestRevealAccruesLosses(t *testing.T) {
	in := mustNew(t, 2, 0.5)
	for i := 0; i < 4; i++ {
		if _, err := in.Reveal([]Outcome{OutcomeRight, OutcomeWrong}); err != nil {
			t.Fatal(err)
		}
	}
	if in.ExpertLoss(0) != 0 {
		t.Fatalf("right expert loss = %v, want 0", in.ExpertLoss(0))
	}
	if in.ExpertLoss(1) != 8 {
		t.Fatalf("wrong expert loss = %v, want 8", in.ExpertLoss(1))
	}
	best, s := in.BestExpert()
	if best != 0 || s != 0 {
		t.Fatalf("BestExpert() = %d, %v", best, s)
	}
	if in.GovernorLoss() <= 0 {
		t.Fatal("governor loss should be positive")
	}
	if in.Regret() != in.GovernorLoss() {
		t.Fatal("regret should equal governor loss when best expert is perfect")
	}
}

func TestRevealErrors(t *testing.T) {
	in := mustNew(t, 2, 0.9)
	if _, err := in.Reveal([]Outcome{OutcomeRight}); !errors.Is(err, ErrBadOutcomes) {
		t.Fatalf("short outcomes error = %v, want ErrBadOutcomes", err)
	}
	if _, err := in.Reveal([]Outcome{OutcomeRight, Outcome(9)}); !errors.Is(err, ErrBadOutcomes) {
		t.Fatalf("bad outcome error = %v, want ErrBadOutcomes", err)
	}
}

func TestWeightsStayPositive(t *testing.T) {
	in := mustNew(t, 2, 0.1)
	// Hammer one expert with wrong outcomes for many rounds; its
	// weight must remain positive so probabilities stay defined.
	for i := 0; i < 100000; i++ {
		if _, err := in.Reveal([]Outcome{OutcomeRight, OutcomeWrong}); err != nil {
			t.Fatal(err)
		}
	}
	if w := in.Weight(1); w <= 0 || math.IsNaN(w) {
		t.Fatalf("weight collapsed to %v", w)
	}
}

func TestProbabilities(t *testing.T) {
	in := mustNew(t, 4, 0.9)
	in.SetWeight(0, 3)
	in.SetWeight(1, 1)
	probs, err := in.Probabilities([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-0.75) > 1e-12 || math.Abs(probs[1]-0.25) > 1e-12 {
		t.Fatalf("Probabilities() = %v", probs)
	}
	if _, err := in.Probabilities(nil); !errors.Is(err, ErrNoParticipants) {
		t.Fatalf("empty participants error = %v, want ErrNoParticipants", err)
	}
}

func TestPickDistribution(t *testing.T) {
	in := mustNew(t, 3, 0.9)
	in.SetWeight(0, 8)
	in.SetWeight(1, 1)
	in.SetWeight(2, 1)
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 3)
	const trials = 20000
	for i := 0; i < trials; i++ {
		idx, prob, err := in.Pick(rng, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if prob <= 0 || prob > 1 {
			t.Fatalf("prob = %v out of range", prob)
		}
		counts[idx]++
	}
	// Expert 0 holds 80% of the weight; expect ~16000 draws. A ±3%
	// absolute tolerance is > 10 sigma for 20000 trials.
	got := float64(counts[0]) / trials
	if got < 0.77 || got > 0.83 {
		t.Fatalf("heavy expert drawn %.3f of the time, want ≈0.80", got)
	}
}

func TestPickSubset(t *testing.T) {
	in := mustNew(t, 5, 0.9)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		idx, _, err := in.Pick(rng, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		if idx != 2 && idx != 4 {
			t.Fatalf("Pick() returned non-participant %d", idx)
		}
	}
}

func TestSetWeightClampsPositive(t *testing.T) {
	in := mustNew(t, 1, 0.9)
	in.SetWeight(0, -5)
	if in.Weight(0) <= 0 {
		t.Fatal("SetWeight allowed non-positive weight")
	}
}

// TestTheoremOneEmpirical is the unit-level version of experiment E1:
// with one perfect expert and noisy peers, the realized regret stays
// under the explicit bound 16·√(log₂(r)·T).
func TestTheoremOneEmpirical(t *testing.T) {
	const (
		r = 8
		T = 4000
	)
	beta := RecommendedBeta(r, T)
	in, err := New(r, beta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	outcomes := make([]Outcome, r)
	for round := 0; round < T; round++ {
		outcomes[0] = OutcomeRight // the well-behaved collector
		for i := 1; i < r; i++ {
			switch {
			case rng.Float64() < 0.4:
				outcomes[i] = OutcomeWrong
			case rng.Float64() < 0.2:
				outcomes[i] = OutcomeAbsent
			default:
				outcomes[i] = OutcomeRight
			}
		}
		if _, err := in.Reveal(outcomes); err != nil {
			t.Fatal(err)
		}
	}
	regret := in.Regret()
	bound := TheoremOneBound(r, T)
	if regret > bound {
		t.Fatalf("regret %v exceeds Theorem 1 bound %v", regret, bound)
	}
	if regret < 0 {
		t.Fatalf("negative regret %v: best expert accounting is broken", regret)
	}
}

// TestQuickGovernorLossBounded: for any outcome stream, the
// per-transaction governor loss is within [0, 2] and weights remain
// positive and finite.
func TestQuickGovernorLossBounded(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		in, err := New(4, 0.7)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < int(rounds); r++ {
			outs := make([]Outcome, 4)
			for i := range outs {
				outs[i] = Outcome(rng.Intn(3) + 1)
			}
			res, err := in.Reveal(outs)
			if err != nil {
				return false
			}
			if res.Loss < 0 || res.Loss > 2 {
				return false
			}
			for i := 0; i < 4; i++ {
				w := in.Weight(i)
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReveal8Experts(b *testing.B) {
	in, err := New(8, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	outs := []Outcome{
		OutcomeRight, OutcomeWrong, OutcomeAbsent, OutcomeRight,
		OutcomeRight, OutcomeWrong, OutcomeRight, OutcomeAbsent,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Reveal(outs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPick8Experts(b *testing.B) {
	in, err := New(8, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	parts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.Pick(rng, parts); err != nil {
			b.Fatal(err)
		}
	}
}
