package rwm_test

import (
	"fmt"

	"repchain/internal/rwm"
)

// Example runs the Theorem 1 game by hand: three experts, one perfect,
// over three revealed transactions.
func Example() {
	in, err := rwm.New(3, 0.9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rounds := [][]rwm.Outcome{
		{rwm.OutcomeRight, rwm.OutcomeWrong, rwm.OutcomeAbsent},
		{rwm.OutcomeRight, rwm.OutcomeWrong, rwm.OutcomeRight},
		{rwm.OutcomeRight, rwm.OutcomeRight, rwm.OutcomeWrong},
	}
	for _, outs := range rounds {
		if _, err := in.Reveal(outs); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	best, loss := in.BestExpert()
	fmt.Printf("best expert %d with loss %.0f, regret %.2f\n", best, loss, in.Regret())
	// Output: best expert 0 with loss 0, regret 2.30
}

// ExampleRecommendedBeta shows the paper's tuning at its worked
// example (r=8, T=4800 gives exactly the practical β=0.9).
func ExampleRecommendedBeta() {
	fmt.Printf("%.2f\n", rwm.RecommendedBeta(8, 4800))
	fmt.Printf("%.0f\n", rwm.TheoremOneBound(8, 4800))
	// Output:
	// 0.90
	// 1920
}

// ExampleGamma evaluates the paper's γ_tx formula at the worst-case
// loss L=2, where it equals β exactly.
func ExampleGamma() {
	fmt.Printf("%.2f\n", rwm.Gamma(0.9, 2))
	// Output: 0.90
}
