// Package rwm implements the Randomized Weighted Majority machinery
// that the paper's reputation mechanism instantiates per provider.
//
// Theorem 1 of the paper is "an extension of the result for the
// Randomized Weighted Majority (RWM) Algorithm in the problem of
// learning with expert advice". The experts are the r collectors
// overseeing one provider; the governor draws a collector with
// probability proportional to its weight, and when the true status of
// an unchecked transaction is later revealed, weights update
// multiplicatively:
//
//	right judgment   → weight × 1
//	wrong judgment   → weight × γ_t
//	missed/discarded → weight × β
//
// with γ_t = max{ (β−1)/L_t + (β+1)/2 , (β²+β)/2 } and
// L_t = 2·W_wrong / (W_right + W_wrong), which satisfies the paper's
// required chain β² ≤ γ_t ≤ β ≤ ½(γ_t−1)·L_t + 1 ≤ 1.
//
// The package tracks the governor's accumulated expected loss
// L_T = Σ_t L_t and each expert's accumulated loss (2 per wrong
// judgment, 1 per miss — the exponents of γ≥β² and β), so benchmarks
// can measure the regret L_T − S^min_T that Theorem 1 bounds by
// O(√T).
package rwm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadBeta reports a β outside the open interval (0, 1).
	ErrBadBeta = errors.New("rwm: beta must be in (0, 1)")
	// ErrBadExperts reports a non-positive expert count.
	ErrBadExperts = errors.New("rwm: need at least one expert")
	// ErrBadOutcomes reports an outcome slice whose length differs
	// from the expert count.
	ErrBadOutcomes = errors.New("rwm: outcome count mismatch")
	// ErrNoParticipants reports a draw over an empty reporter set.
	ErrNoParticipants = errors.New("rwm: no participating experts")
)

// Outcome classifies one expert's behaviour on one revealed
// transaction.
type Outcome int

// Outcomes, mirroring Algorithm 3 case 3.
const (
	// OutcomeRight: the expert labeled the transaction correctly;
	// weight unchanged, loss 0.
	OutcomeRight Outcome = iota + 1
	// OutcomeAbsent: the expert discarded (failed to report) the
	// transaction; weight × β, loss 1.
	OutcomeAbsent
	// OutcomeWrong: the expert labeled incorrectly; weight × γ_t,
	// loss 2.
	OutcomeWrong
)

// Loss returns the β-exponent loss of the outcome: 0, 1, or 2.
func (o Outcome) Loss() float64 {
	switch o {
	case OutcomeRight:
		return 0
	case OutcomeAbsent:
		return 1
	case OutcomeWrong:
		return 2
	default:
		return 0
	}
}

// String returns the lowercase outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeRight:
		return "right"
	case OutcomeAbsent:
		return "absent"
	case OutcomeWrong:
		return "wrong"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Gamma computes γ_t for the given β and expected loss L ∈ [0, 2]:
//
//	γ_t = max{ (β−1)/L + (β+1)/2 , (β²+β)/2 }
//
// When L = 0 no weight is multiplied by γ_t; the floor value is
// returned for completeness.
func Gamma(beta, loss float64) float64 {
	floor := (beta*beta + beta) / 2
	if loss <= 0 {
		return floor
	}
	g := (beta-1)/loss + (beta+1)/2
	if g < floor {
		return floor
	}
	return g
}

// RecommendedBeta returns the paper's tuning β = 1 − 4·√(log₂(r)/T),
// clamped to the interval [0.1, 0.9] on which the proof's logarithm
// bound −log β/(1−β) ≤ 17/2 − 8β holds. (The paper's worked example —
// r = 8, condition holds for T ≤ 4800 — pins the logarithm base to 2.)
func RecommendedBeta(experts int, horizon int) float64 {
	if experts < 2 || horizon < 1 {
		return 0.9
	}
	b := 1 - 4*math.Sqrt(math.Log2(float64(experts))/float64(horizon))
	if b < 0.1 {
		return 0.1
	}
	if b > 0.9 {
		return 0.9
	}
	return b
}

// TheoremOneBound returns the paper's explicit regret bound
// 16·√(log₂(r)·T) for the recommended β.
func TheoremOneBound(experts int, horizon int) float64 {
	if experts < 2 || horizon < 1 {
		return 0
	}
	return 16 * math.Sqrt(math.Log2(float64(experts))*float64(horizon))
}

// Instance is one multiplicative-weights game: the r collectors
// overseeing one provider, from one governor's point of view.
// Instance is not safe for concurrent use; the owning governor
// serializes access.
type Instance struct {
	beta       float64
	weights    []float64
	expertLoss []float64
	// govLoss accumulates Σ_t L_t, the governor's expected loss on
	// revealed unchecked transactions.
	govLoss float64
	rounds  int
}

// New creates an instance with n experts, all starting at weight 1 (so
// W_0 = r as in the proof of Theorem 1).
func New(n int, beta float64) (*Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%d experts: %w", n, ErrBadExperts)
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("beta %v: %w", beta, ErrBadBeta)
	}
	in := &Instance{
		beta:       beta,
		weights:    make([]float64, n),
		expertLoss: make([]float64, n),
	}
	for i := range in.weights {
		in.weights[i] = 1
	}
	return in, nil
}

// Beta returns the instance's β parameter.
func (in *Instance) Beta() float64 { return in.beta }

// Experts returns the number of experts.
func (in *Instance) Experts() int { return len(in.weights) }

// Rounds returns how many reveals have been applied.
func (in *Instance) Rounds() int { return in.rounds }

// Weight returns expert i's current weight.
func (in *Instance) Weight(i int) float64 { return in.weights[i] }

// Weights returns a copy of the weight vector.
func (in *Instance) Weights() []float64 {
	out := make([]float64, len(in.weights))
	copy(out, in.weights)
	return out
}

// SetWeight overrides expert i's weight. The reputation layer uses it
// to apply external penalties; weights are clamped to be positive.
func (in *Instance) SetWeight(i int, w float64) {
	if w < minWeight {
		w = minWeight
	}
	in.weights[i] = w
}

// minWeight keeps weights strictly positive so probabilities stay
// defined; 1e-300 is far below any reachable multiplicative decay for
// realistic horizons yet comfortably above the smallest subnormal.
const minWeight = 1e-300

// TotalWeight returns Σ_i w_i.
func (in *Instance) TotalWeight() float64 {
	var s float64
	for _, w := range in.weights {
		s += w
	}
	return s
}

// Probabilities returns the draw distribution over the given
// participating experts (those that reported the transaction),
// proportional to weight. The slice is indexed like participants.
func (in *Instance) Probabilities(participants []int) ([]float64, error) {
	if len(participants) == 0 {
		return nil, ErrNoParticipants
	}
	var total float64
	for _, i := range participants {
		total += in.weights[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("participating weight sum %v: %w", total, ErrNoParticipants)
	}
	out := make([]float64, len(participants))
	for k, i := range participants {
		out[k] = in.weights[i] / total
	}
	return out, nil
}

// Pick draws one participating expert with probability proportional to
// weight, returning its expert index and the probability with which it
// was chosen (the Pr_{j,i,k,tx} of Algorithm 2).
func (in *Instance) Pick(rng *rand.Rand, participants []int) (expert int, prob float64, err error) {
	probs, err := in.Probabilities(participants)
	if err != nil {
		return 0, 0, err
	}
	u := rng.Float64()
	var acc float64
	for k, p := range probs {
		acc += p
		if u < acc {
			return participants[k], p, nil
		}
	}
	// Floating-point slack: return the last participant.
	last := len(participants) - 1
	return participants[last], probs[last], nil
}

// RevealResult reports what one reveal did.
type RevealResult struct {
	// Loss is L_t = 2·W_wrong/(W_right + W_wrong), the governor's
	// expected loss on the transaction.
	Loss float64
	// Gamma is the γ_t applied to wrong experts.
	Gamma float64
}

// Reveal applies Algorithm 3 case 3 for one revealed transaction:
// outcomes[i] describes expert i's behaviour. It returns the realized
// L_t and γ_t and accrues per-expert and governor losses.
func (in *Instance) Reveal(outcomes []Outcome) (RevealResult, error) {
	if len(outcomes) != len(in.weights) {
		return RevealResult{}, fmt.Errorf("%d outcomes for %d experts: %w", len(outcomes), len(in.weights), ErrBadOutcomes)
	}
	var wRight, wWrong float64
	for i, o := range outcomes {
		switch o {
		case OutcomeRight:
			wRight += in.weights[i]
		case OutcomeWrong:
			wWrong += in.weights[i]
		case OutcomeAbsent:
			// absent experts are in W_1, outside the loss ratio
		default:
			return RevealResult{}, fmt.Errorf("outcome %d for expert %d: %w", o, i, ErrBadOutcomes)
		}
	}
	var loss float64
	if wRight+wWrong > 0 {
		loss = 2 * wWrong / (wRight + wWrong)
	}
	gamma := Gamma(in.beta, loss)

	for i, o := range outcomes {
		switch o {
		case OutcomeWrong:
			in.weights[i] *= gamma
		case OutcomeAbsent:
			in.weights[i] *= in.beta
		}
		if in.weights[i] < minWeight {
			in.weights[i] = minWeight
		}
		in.expertLoss[i] += o.Loss()
	}
	in.govLoss += loss
	in.rounds++
	return RevealResult{Loss: loss, Gamma: gamma}, nil
}

// Restore overwrites the instance's full mutable state — weights,
// per-expert losses, accumulated governor loss, and round count — from
// a snapshot. Weights are clamped positive.
func (in *Instance) Restore(weights, expertLoss []float64, govLoss float64, rounds int) error {
	if len(weights) != len(in.weights) || len(expertLoss) != len(in.expertLoss) {
		return fmt.Errorf("restore %d weights / %d losses into %d experts: %w",
			len(weights), len(expertLoss), len(in.weights), ErrBadOutcomes)
	}
	if rounds < 0 {
		return fmt.Errorf("restore %d rounds: %w", rounds, ErrBadOutcomes)
	}
	for i, w := range weights {
		if w < minWeight {
			w = minWeight
		}
		in.weights[i] = w
	}
	copy(in.expertLoss, expertLoss)
	in.govLoss = govLoss
	in.rounds = rounds
	return nil
}

// GovernorLoss returns L_T, the accumulated expected loss.
func (in *Instance) GovernorLoss() float64 { return in.govLoss }

// ExpertLoss returns expert i's accumulated loss S_i.
func (in *Instance) ExpertLoss(i int) float64 { return in.expertLoss[i] }

// BestExpert returns the index and accumulated loss of the
// best-behaving expert (minimum S_i).
func (in *Instance) BestExpert() (int, float64) {
	best, bestLoss := 0, math.Inf(1)
	for i, l := range in.expertLoss {
		if l < bestLoss {
			best, bestLoss = i, l
		}
	}
	return best, bestLoss
}

// Regret returns L_T − S^min_T, the quantity Theorem 1 bounds by
// O(√T).
func (in *Instance) Regret() float64 {
	_, s := in.BestExpert()
	return in.govLoss - s
}
