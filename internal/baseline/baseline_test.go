package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

func makeReports(labels ...tx.Label) []reputation.Report {
	out := make([]reputation.Report, len(labels))
	for i, l := range labels {
		out[i] = reputation.Report{Collector: i, Label: l}
	}
	return out
}

func newTable(t *testing.T, r int) *reputation.Table {
	t.Helper()
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 1, Collectors: r, Degree: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := reputation.NewTable(topo, reputation.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCheckAllAlwaysChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reports := makeReports(tx.LabelInvalid, tx.LabelInvalid)
	for i := 0; i < 50; i++ {
		d, err := (CheckAll{}).Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Check {
			t.Fatal("CheckAll skipped a verification")
		}
	}
	if _, err := (CheckAll{}).Screen(rng, 0, nil); !errors.Is(err, ErrNoReports) {
		t.Fatalf("error = %v, want ErrNoReports", err)
	}
}

func TestUniformCheckRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := Uniform{F: 0.8}
	reports := makeReports(tx.LabelInvalid, tx.LabelInvalid, tx.LabelInvalid, tx.LabelInvalid)
	const trials = 40000
	unchecked := 0
	for i := 0; i < trials; i++ {
		d, err := u.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Check {
			unchecked++
		}
	}
	// All -1 labels, uniform pick: unchecked prob = f/x = 0.2.
	got := float64(unchecked) / trials
	if math.Abs(got-0.2) > 0.015 {
		t.Fatalf("unchecked rate = %.4f, want ≈ 0.2", got)
	}
}

func TestUniformAlwaysChecksValidDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := Uniform{F: 0.99}
	reports := makeReports(tx.LabelValid)
	for i := 0; i < 100; i++ {
		d, err := u.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Check {
			t.Fatal("+1 draw must always check")
		}
	}
}

func TestMajorityVote(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Majority{F: 0.5}
	d, err := m.Screen(rng, 0, makeReports(tx.LabelValid, tx.LabelValid, tx.LabelInvalid))
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != tx.LabelValid || !d.Check {
		t.Fatalf("majority-valid decision = %+v", d)
	}
	// Ties break to invalid.
	d, err = m.Screen(rng, 0, makeReports(tx.LabelValid, tx.LabelInvalid))
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != tx.LabelInvalid {
		t.Fatalf("tie decision = %+v, want invalid", d)
	}
}

func TestMajorityUncheckedRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := Majority{F: 0.6}
	reports := makeReports(tx.LabelInvalid, tx.LabelInvalid, tx.LabelInvalid)
	const trials = 40000
	unchecked := 0
	for i := 0; i < trials; i++ {
		d, err := m.Screen(rng, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Check {
			unchecked++
		}
	}
	got := float64(unchecked) / trials
	if math.Abs(got-0.6) > 0.015 {
		t.Fatalf("unchecked rate = %.4f, want ≈ 0.6", got)
	}
}

func TestRWMWrapsTable(t *testing.T) {
	tab := newTable(t, 3)
	p := NewRWM(tab)
	if p.Name() != "reputation-rwm" {
		t.Fatal("name")
	}
	rng := rand.New(rand.NewSource(6))
	reports := makeReports(tx.LabelValid, tx.LabelInvalid, tx.LabelValid)
	d, err := p.Screen(rng, 0, reports)
	if err != nil {
		t.Fatal(err)
	}
	if d.Collector < 0 || d.Collector > 2 {
		t.Fatalf("collector = %d", d.Collector)
	}
	if err := p.RecordChecked(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	if err := p.RecordRevealed(0, reports, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	// The reveal must have cut the wrong reporter's weight.
	w, err := tab.Weight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w >= 1 {
		t.Fatalf("wrong reporter weight %v not reduced", w)
	}
}

func TestForName(t *testing.T) {
	tab := newTable(t, 2)
	for _, name := range []string{"reputation-rwm", "check-all", "uniform-random", "majority-vote"} {
		p, err := ForName(name, tab, 0.5)
		if err != nil {
			t.Fatalf("ForName(%q) error = %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ForName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ForName("nope", nil, 0.5); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ForName("reputation-rwm", nil, 0.5); err == nil {
		t.Fatal("rwm without table accepted")
	}
}

func TestFeedbacksAreNoOpsForStatelessPolicies(t *testing.T) {
	reports := makeReports(tx.LabelValid)
	for _, p := range []Policy{CheckAll{}, Uniform{F: 0.5}, Majority{F: 0.5}} {
		if err := p.RecordChecked(0, reports, tx.StatusValid); err != nil {
			t.Fatalf("%s RecordChecked error = %v", p.Name(), err)
		}
		if err := p.RecordRevealed(0, reports, tx.StatusInvalid); err != nil {
			t.Fatalf("%s RecordRevealed error = %v", p.Name(), err)
		}
	}
}
