// Package baseline provides alternative transaction-screening policies
// used as comparison points for the paper's reputation mechanism
// (experiment E5 in DESIGN.md). The poster compares only against the
// implicit baseline of "governors check all transactions"; we add a
// no-reputation uniform sampler and an unweighted majority vote so the
// benefit of the multiplicative weights is isolated.
//
// All policies implement the same Screen/feedback interface as the
// paper's mechanism, so the simulation harness can drive them on
// identical workloads.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// ErrNoReports reports a screening call with no reporting collectors.
var ErrNoReports = errors.New("baseline: no reports for transaction")

// Decision mirrors reputation.Decision for the common policy
// interface.
type Decision struct {
	// Collector is the drawn reporter's index (-1 when the policy has
	// no notion of a drawn reporter).
	Collector int
	// Label is the label the policy adopts when not checking.
	Label tx.Label
	// Check reports whether the governor must validate.
	Check bool
}

// Policy is a screening strategy a governor could run.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Screen decides whether to verify a transaction from provider k
	// given the uploaded reports.
	Screen(rng *rand.Rand, k int, reports []reputation.Report) (Decision, error)
	// RecordChecked feeds back the ground truth of a verified
	// transaction.
	RecordChecked(k int, reports []reputation.Report, status tx.Status) error
	// RecordRevealed feeds back the later-revealed truth of an
	// unchecked transaction.
	RecordRevealed(k int, reports []reputation.Report, status tx.Status) error
}

// RWM wraps the paper's reputation mechanism in the Policy interface.
type RWM struct {
	table *reputation.Table
}

var _ Policy = (*RWM)(nil)

// NewRWM builds the paper's policy over an existing table.
func NewRWM(table *reputation.Table) *RWM { return &RWM{table: table} }

// Table exposes the wrapped reputation table.
func (p *RWM) Table() *reputation.Table { return p.table }

// Name implements Policy.
func (p *RWM) Name() string { return "reputation-rwm" }

// Screen implements Policy.
func (p *RWM) Screen(rng *rand.Rand, k int, reports []reputation.Report) (Decision, error) {
	d, err := p.table.Screen(rng, k, reports)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Collector: d.Collector, Label: d.Label, Check: d.Check}, nil
}

// RecordChecked implements Policy.
func (p *RWM) RecordChecked(k int, reports []reputation.Report, status tx.Status) error {
	return p.table.RecordChecked(k, reports, status)
}

// RecordRevealed implements Policy.
func (p *RWM) RecordRevealed(k int, reports []reputation.Report, status tx.Status) error {
	_, err := p.table.RecordRevealed(k, reports, status)
	return err
}

// CheckAll verifies every transaction — the f→0 extreme: maximal
// validation cost, zero unchecked mistakes.
type CheckAll struct{}

var _ Policy = CheckAll{}

// Name implements Policy.
func (CheckAll) Name() string { return "check-all" }

// Screen implements Policy.
func (CheckAll) Screen(_ *rand.Rand, _ int, reports []reputation.Report) (Decision, error) {
	if len(reports) == 0 {
		return Decision{}, ErrNoReports
	}
	return Decision{Collector: reports[0].Collector, Label: reports[0].Label, Check: true}, nil
}

// RecordChecked implements Policy.
func (CheckAll) RecordChecked(int, []reputation.Report, tx.Status) error { return nil }

// RecordRevealed implements Policy.
func (CheckAll) RecordRevealed(int, []reputation.Report, tx.Status) error { return nil }

// Uniform draws a reporter uniformly (no reputation) and applies the
// same f-coin as the paper's Algorithm 2 with Pr = 1/x. It isolates
// the contribution of the learned weights.
type Uniform struct {
	// F is the efficiency parameter, as in the paper.
	F float64
}

var _ Policy = Uniform{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform-random" }

// Screen implements Policy.
func (u Uniform) Screen(rng *rand.Rand, _ int, reports []reputation.Report) (Decision, error) {
	if len(reports) == 0 {
		return Decision{}, ErrNoReports
	}
	pick := reports[rng.Intn(len(reports))]
	d := Decision{Collector: pick.Collector, Label: pick.Label}
	if pick.Label == tx.LabelValid {
		d.Check = true
		return d, nil
	}
	prob := 1.0 / float64(len(reports))
	d.Check = rng.Float64() < 1-u.F*prob
	return d, nil
}

// RecordChecked implements Policy.
func (Uniform) RecordChecked(int, []reputation.Report, tx.Status) error { return nil }

// RecordRevealed implements Policy.
func (Uniform) RecordRevealed(int, []reputation.Report, tx.Status) error { return nil }

// Majority adopts the unweighted majority label. A majority-valid
// transaction is verified (as in Algorithm 2); a majority-invalid one
// is verified with probability 1−F.
type Majority struct {
	// F is the efficiency parameter.
	F float64
}

var _ Policy = Majority{}

// Name implements Policy.
func (Majority) Name() string { return "majority-vote" }

// Screen implements Policy.
func (m Majority) Screen(rng *rand.Rand, _ int, reports []reputation.Report) (Decision, error) {
	if len(reports) == 0 {
		return Decision{}, ErrNoReports
	}
	votes := 0
	for _, r := range reports {
		if r.Label == tx.LabelValid {
			votes++
		} else {
			votes--
		}
	}
	label := tx.LabelInvalid
	if votes > 0 {
		label = tx.LabelValid
	}
	d := Decision{Collector: -1, Label: label}
	if label == tx.LabelValid {
		d.Check = true
		return d, nil
	}
	d.Check = rng.Float64() < 1-m.F
	return d, nil
}

// RecordChecked implements Policy.
func (Majority) RecordChecked(int, []reputation.Report, tx.Status) error { return nil }

// RecordRevealed implements Policy.
func (Majority) RecordRevealed(int, []reputation.Report, tx.Status) error { return nil }

// ForName builds a policy by name; table is required for
// "reputation-rwm" and f for the stochastic baselines.
func ForName(name string, table *reputation.Table, f float64) (Policy, error) {
	switch name {
	case "reputation-rwm":
		if table == nil {
			return nil, fmt.Errorf("baseline: policy %q needs a reputation table", name)
		}
		return NewRWM(table), nil
	case "check-all":
		return CheckAll{}, nil
	case "uniform-random":
		return Uniform{F: f}, nil
	case "majority-vote":
		return Majority{F: f}, nil
	default:
		return nil, fmt.Errorf("baseline: unknown policy %q", name)
	}
}
