package events

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(TypeBlockPacked, 1, "governor/0", slog.Int("records", 3))
	l.EnableWallClock()
	l.SetMirror(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if l.Len() != 0 || l.Cap() != 0 || l.Dropped() != 0 || l.Events() != nil {
		t.Fatal("nil log leaked state")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}, Filter{}); err != nil {
		t.Fatalf("nil WriteJSONL error = %v", err)
	}
	if NewLog(0) != nil || NewLog(-1) != nil {
		t.Fatal("non-positive capacity must yield a nil log")
	}
}

func TestEmitAssignsSeqAndFields(t *testing.T) {
	l := NewLog(8)
	l.Emit(TypeUploadScreened, 3, "governor/1",
		slog.String("tx", "abcd"), slog.Bool("checked", true))
	l.Emit(TypeBlockCommitted, 3, "governor/1", slog.Uint64("serial", 3))
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	e := evs[0]
	if e.Type != TypeUploadScreened || e.Node != "governor/1" || e.Round != 3 || e.Seq != 1 {
		t.Fatalf("event fields = %+v", e)
	}
	if e.Attr("tx") != "abcd" || e.Attr("checked") != "true" || e.Attr("missing") != "" {
		t.Fatalf("attrs = %+v", e.Attrs)
	}
	if e.Wall != 0 {
		t.Fatal("wall clock must stay 0 in deterministic mode")
	}
	if evs[1].Seq != 2 {
		t.Fatalf("second seq = %d, want 2", evs[1].Seq)
	}
}

func TestRingEvictionCountsDropped(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Emit(TypeBlockPacked, uint64(i), "g")
	}
	if l.Len() != 2 || l.Cap() != 2 {
		t.Fatalf("len/cap = %d/%d", l.Len(), l.Cap())
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", l.Dropped())
	}
	evs := l.Events()
	if evs[0].Round != 3 || evs[1].Round != 4 {
		t.Fatalf("ring kept rounds %d,%d; want 3,4", evs[0].Round, evs[1].Round)
	}
}

func TestWallClockAndMirror(t *testing.T) {
	l := NewLog(4)
	l.EnableWallClock()
	var buf bytes.Buffer
	l.SetMirror(slog.NewJSONHandler(&buf, nil))
	l.Emit(TypeNodeCrash, 7, "collector/2", slog.String("cause", "crash"))
	evs := l.Events()
	if evs[0].Wall == 0 {
		t.Fatal("wall clock enabled but Wall is 0")
	}
	out := buf.String()
	for _, want := range []string{TypeNodeCrash, "collector/2", "cause"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mirror output %q missing %q", out, want)
		}
	}
}

func TestWriteJSONLFilterAndReplay(t *testing.T) {
	l := NewLog(16)
	l.Emit(TypeBlockPacked, 1, "governor/0")
	l.Emit(TypeBlockPacked, 1, "governor/1")
	l.Emit(TypeBlockCommitted, 2, "governor/0")

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf, Filter{Node: "governor/0"}); err != nil {
		t.Fatal(err)
	}
	evs, err := Replay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Round != 1 || evs[1].Round != 2 {
		t.Fatalf("filtered replay = %+v", evs)
	}

	buf.Reset()
	if err := l.WriteJSONL(&buf, Filter{Round: 2}); err != nil {
		t.Fatal(err)
	}
	evs, _ = Replay(&buf)
	if len(evs) != 1 || evs[0].Type != TypeBlockCommitted {
		t.Fatalf("round filter = %+v", evs)
	}

	buf.Reset()
	if err := l.WriteJSONL(&buf, Filter{AfterSeq: 2}); err != nil {
		t.Fatal(err)
	}
	evs, _ = Replay(&buf)
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("after-seq filter = %+v", evs)
	}
}

func TestReplayRejectsMalformedLine(t *testing.T) {
	if _, err := Replay(strings.NewReader("{\"type\":\"a\"}\nnot-json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestFormatParseReportsRoundTrip(t *testing.T) {
	reports := []reputation.Report{
		{Collector: 0, Label: tx.LabelValid},
		{Collector: 3, Label: tx.LabelInvalid},
	}
	s := FormatReports(reports)
	back, err := ParseReports(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != reports[0] || back[1] != reports[1] {
		t.Fatalf("round trip %q -> %+v", s, back)
	}
	if got, err := ParseReports(""); err != nil || got != nil {
		t.Fatalf("empty parse = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "1:", ":1", "a:1", "1:b"} {
		if _, err := ParseReports(bad); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

// TestReplayReputationReconstructsTable drives a live table through
// every Algorithm 3 case while logging the matching events, then
// replays the log into a fresh table and demands snapshot equality —
// the offline audit property.
func TestReplayReputationReconstructsTable(t *testing.T) {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{Providers: 4, Collectors: 4, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := reputation.DefaultParams()
	live, err := reputation.NewTable(topo, params)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(64)
	const node = "governor/0"

	reports := func(p int) []reputation.Report {
		var out []reputation.Report
		for i, c := range topo.CollectorsOf(p) {
			label := tx.LabelValid
			if i%2 == 1 {
				label = tx.LabelInvalid
			}
			out = append(out, reputation.Report{Collector: c, Label: label})
		}
		return out
	}

	if err := live.RecordForgery(1); err != nil {
		t.Fatal(err)
	}
	l.Emit(TypeReputationForge, 1, node, slog.Int("collector", 1))

	r0 := reports(0)
	if err := live.RecordChecked(0, r0, tx.StatusValid); err != nil {
		t.Fatal(err)
	}
	l.Emit(TypeReputationChecked, 1, node,
		slog.Int("provider", 0),
		slog.String("reports", FormatReports(r0)),
		slog.Int("status", int(tx.StatusValid)))

	if err := live.RecordSilence(0, r0[:1]); err != nil {
		t.Fatal(err)
	}
	l.Emit(TypeReputationSilence, 1, node,
		slog.Int("provider", 0),
		slog.String("reports", FormatReports(r0[:1])))

	r2 := reports(2)
	if _, err := live.RecordRevealed(2, r2, tx.StatusInvalid); err != nil {
		t.Fatal(err)
	}
	l.Emit(TypeReputationReveal, 2, node,
		slog.Int("provider", 2),
		slog.String("reports", FormatReports(r2)),
		slog.Int("status", int(tx.StatusInvalid)))

	// Another node's events must not leak into the replay.
	l.Emit(TypeReputationForge, 2, "governor/1", slog.Int("collector", 0))

	fresh, err := reputation.NewTable(topo, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayReputation(l.Events(), node, fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Snapshot(), fresh.Snapshot()) {
		t.Fatal("replayed table snapshot differs from the live table")
	}
}

func TestReplayReputationRejectsBadAttrs(t *testing.T) {
	topo, _ := identity.NewRegularTopology(identity.TopologySpec{Providers: 2, Collectors: 2, Degree: 1})
	table, _ := reputation.NewTable(topo, reputation.DefaultParams())
	bad := []Event{{Type: TypeReputationForge, Node: "g", Seq: 1, Attrs: []Attr{{Key: "collector", Value: "x"}}}}
	if err := ReplayReputation(bad, "g", table); err == nil {
		t.Fatal("bad collector attr accepted")
	}
	bad = []Event{{Type: TypeReputationChecked, Node: "g", Seq: 2, Attrs: []Attr{
		{Key: "provider", Value: "0"}, {Key: "reports", Value: "0:1"}, {Key: "status", Value: "zz"}}}}
	if err := ReplayReputation(bad, "g", table); err == nil {
		t.Fatal("bad status attr accepted")
	}
}
