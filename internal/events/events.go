// Package events records consensus-significant happenings — uploads
// screened, tickets drawn, blocks packed and committed, reputation
// deltas with their causes, quorum changes, crash/restart — as an
// append-only structured stream built on log/slog. Every event carries
// (round, seq) ordering and the emitting node's identity, so streams
// scraped from different processes merge into one causally ordered
// cluster history, and a stream replayed offline reconstructs the
// exact reputation state the ledger recorded (see ReplayReputation).
//
// Like the span recorder in package trace, the log is deliberately
// passive: it never consumes protocol randomness, never blocks the
// round pipeline (one mutex-guarded ring append per event), and in
// deterministic mode never reads the wall clock — so enabling it
// cannot perturb the byte-identical replay guarantees the parallel
// pipeline and the chaos matrix enforce.
package events

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// Event type names. The set mirrors the consensus-significant moments
// of the protocol; reputation.* events carry enough arguments to
// re-apply the delta to a fresh table (ReplayReputation).
const (
	// TypeUploadScreened is a governor's screening decision for one
	// upload: the drawn collector (the paper's ticket draw), whether
	// the draw checked, and the adopted label.
	TypeUploadScreened = "upload.screened"
	// TypeLeaderElected is the round's VRF leader election outcome.
	TypeLeaderElected = "leader.elected"
	// TypeBlockPacked is the leader packing a block proposal.
	TypeBlockPacked = "block.packed"
	// TypeBlockCommitted is a replica committing a block.
	TypeBlockCommitted = "block.committed"
	// TypeReputationForge is an Algorithm 3 case-1 forge penalty.
	TypeReputationForge = "reputation.forge"
	// TypeReputationChecked is an Algorithm 3 case-2 update after a
	// checked screening.
	TypeReputationChecked = "reputation.checked"
	// TypeReputationReveal is an Algorithm 3 case-3 reveal after an
	// accepted argue.
	TypeReputationReveal = "reputation.reveal"
	// TypeReputationSilence is a silence decay of linked collectors
	// that skipped a checked transaction (WithSilenceDecay).
	TypeReputationSilence = "reputation.silence"
	// TypeNodeCrash and TypeNodeRestart are failure-detector
	// transitions for one node.
	TypeNodeCrash   = "node.crash"
	TypeNodeRestart = "node.restart"
	// TypeQuorumChange is a change in the live governor quorum
	// (crash, restart, partition, reconnect).
	TypeQuorumChange = "quorum.change"
)

// Attr is one key/value annotation on an event. A slice (not a map)
// keeps JSONL output order deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one recorded happening. Seq is a log-assigned monotone
// sequence number; Wall is unix nanoseconds and stays 0 in
// deterministic mode (only the TCP runtime enables the wall clock).
type Event struct {
	Type  string `json:"type"`
	Node  string `json:"node,omitempty"`
	Round uint64 `json:"round"`
	Seq   uint64 `json:"seq"`
	Wall  int64  `json:"wall_ns,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Log is a fixed-capacity ring of events fronted by a log/slog
// pipeline: every Emit flows through an slog.Record into the ring
// handler, and an optional mirror handler (SetMirror) receives the
// same records for process-level logging. A nil *Log is a valid
// disabled log: every method is nil-safe, so instrumented code needs
// no guards.
type Log struct {
	mu      sync.Mutex
	buf     []Event // guarded by mu
	start   int     // guarded by mu; index of oldest event
	n       int     // guarded by mu; live events
	seq     uint64  // guarded by mu
	dropped uint64  // guarded by mu
	wall    bool
	mirror  slog.Handler

	logger *slog.Logger
}

// NewLog returns a log holding at most capacity events; older events
// are evicted as new ones arrive. capacity <= 0 yields a nil
// (disabled) log.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		return nil
	}
	l := &Log{buf: make([]Event, capacity)}
	l.logger = slog.New(ringHandler{log: l})
	return l
}

// EnableWallClock makes subsequent events carry wall-clock timestamps.
// Only the TCP runtime turns this on; deterministic simulations leave
// it off so event streams replay byte-identically.
func (l *Log) EnableWallClock() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.wall = true
	l.mu.Unlock()
}

// SetMirror forwards every emitted event to h (e.g. the process's
// slog text/JSON handler) in addition to the ring. Nil disables
// mirroring.
func (l *Log) SetMirror(h slog.Handler) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.mirror = h
	l.mu.Unlock()
}

// ringHandler is the slog.Handler backing a Log: it converts each
// record into an Event and appends it to the ring. The message is the
// event type; "node" and "round" attrs map onto the Event fields.
type ringHandler struct{ log *Log }

func (h ringHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h ringHandler) WithAttrs([]slog.Attr) slog.Handler       { return h }
func (h ringHandler) WithGroup(string) slog.Handler            { return h }

func (h ringHandler) Handle(_ context.Context, rec slog.Record) error {
	ev := Event{Type: rec.Message}
	rec.Attrs(func(a slog.Attr) bool {
		switch a.Key {
		case "node":
			ev.Node = a.Value.String()
		case "round":
			ev.Round = a.Value.Uint64()
		default:
			ev.Attrs = append(ev.Attrs, Attr{Key: a.Key, Value: a.Value.String()})
		}
		return true
	})
	h.log.append(ev)
	return nil
}

func (l *Log) append(ev Event) {
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if l.wall {
		//repchain:dettaint-ok wall timestamps are ring-buffer observability metadata behind the explicit wall opt-in; events are read back only by inspectors and never decoded into consensus state
		ev.Wall = time.Now().UnixNano()
	}
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = ev
		l.n++
	} else {
		l.buf[l.start] = ev
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	mirror := l.mirror
	l.mu.Unlock()
	if mirror != nil {
		rec := slog.NewRecord(time.Time{}, slog.LevelInfo, ev.Type, 0)
		rec.AddAttrs(slog.String("node", ev.Node), slog.Uint64("round", ev.Round), slog.Uint64("seq", ev.Seq))
		for _, a := range ev.Attrs {
			rec.AddAttrs(slog.String(a.Key, a.Value))
		}
		_ = mirror.Handle(context.Background(), rec)
	}
}

// Emit records one event. The variadic attrs use slog's vocabulary so
// call sites read like structured log lines. Safe on a nil log.
//
// Without a mirror the event is built directly (the ring is the hot
// path of every screening decision); with one, the record flows
// through the full slog pipeline so the mirror sees standard handler
// semantics.
func (l *Log) Emit(typ string, round uint64, node string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.mu.Lock()
	mirrored := l.mirror != nil
	l.mu.Unlock()
	if mirrored {
		all := make([]slog.Attr, 0, len(attrs)+2)
		all = append(all, slog.String("node", node), slog.Uint64("round", round))
		all = append(all, attrs...)
		l.logger.LogAttrs(context.Background(), slog.LevelInfo, typ, all...)
		return
	}
	ev := Event{Type: typ, Node: node, Round: round}
	if len(attrs) > 0 {
		ev.Attrs = make([]Attr, len(attrs))
		for i, a := range attrs {
			ev.Attrs[i] = Attr{Key: a.Key, Value: attrValue(a.Value)}
		}
	}
	l.append(ev)
}

// attrValue renders an slog value as the event's string form. The
// common scalar kinds are handled directly: strconv's small-integer
// fast path and the bool literals avoid the per-attr allocation
// slog.Value.String pays, which matters at hundreds of events per
// round.
func attrValue(v slog.Value) string {
	switch v.Kind() {
	case slog.KindString:
		return v.String()
	case slog.KindInt64:
		return strconv.FormatInt(v.Int64(), 10)
	case slog.KindUint64:
		return strconv.FormatUint(v.Uint64(), 10)
	case slog.KindBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	default:
		return v.String()
	}
}

// Len returns the number of buffered events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Cap returns the ring capacity (0 for a nil log).
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns how many events were evicted by ring wraparound.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the buffered events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

// Filter selects events for WriteJSONL and the /events endpoint. The
// zero value matches everything.
type Filter struct {
	// Node, when non-empty, matches only that node's events.
	Node string
	// Round, when non-zero, matches only that round.
	Round uint64
	// AfterSeq matches only events with Seq > AfterSeq — the tailing
	// cursor for `repchain-inspect events --follow`.
	AfterSeq uint64
}

func (f Filter) match(e Event) bool {
	if f.Node != "" && e.Node != f.Node {
		return false
	}
	if f.Round != 0 && e.Round != f.Round {
		return false
	}
	return e.Seq > f.AfterSeq
}

// WriteJSONL writes matching events as JSON Lines, oldest first.
func (l *Log) WriteJSONL(w io.Writer, f Filter) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if !f.match(e) {
			continue
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Replay parses a JSONL event stream back into events, in stream
// order. Blank lines are skipped; a malformed line fails the replay
// (an audit trail with holes is worse than an error).
func Replay(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return out, nil
}

// FormatReports renders a report set as the canonical "c:l,c:l" attr
// value reputation events carry (collector index, signed label).
func FormatReports(reports []reputation.Report) string {
	var b strings.Builder
	for i, r := range reports {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r.Collector))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(r.Label)))
	}
	return b.String()
}

// ParseReports inverts FormatReports.
func ParseReports(s string) ([]reputation.Report, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]reputation.Report, 0, len(parts))
	for _, p := range parts {
		c, l, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("events: malformed report %q", p)
		}
		ci, err := strconv.Atoi(c)
		if err != nil {
			return nil, fmt.Errorf("events: report collector %q: %w", c, err)
		}
		li, err := strconv.Atoi(l)
		if err != nil {
			return nil, fmt.Errorf("events: report label %q: %w", l, err)
		}
		out = append(out, reputation.Report{Collector: ci, Label: tx.Label(li)})
	}
	return out, nil
}

// ReplayReputation re-applies one node's reputation.* events, in
// stream order, to table — which must be a fresh table built with the
// same topology and parameters the node ran with. After replay the
// table's serialized snapshot equals the snapshot the live node ended
// with: the event log alone reconstructs every reputation delta the
// ledger's screening history produced, which is the offline audit
// story the paper's provable mechanism needs.
func ReplayReputation(evs []Event, node string, table *reputation.Table) error {
	for _, e := range evs {
		if e.Node != node {
			continue
		}
		switch e.Type {
		case TypeReputationForge:
			c, err := strconv.Atoi(e.Attr("collector"))
			if err != nil {
				return fmt.Errorf("events: seq %d forge collector: %w", e.Seq, err)
			}
			if err := table.RecordForgery(c); err != nil {
				return fmt.Errorf("events: seq %d: %w", e.Seq, err)
			}
		case TypeReputationChecked, TypeReputationReveal, TypeReputationSilence:
			provider, err := strconv.Atoi(e.Attr("provider"))
			if err != nil {
				return fmt.Errorf("events: seq %d provider: %w", e.Seq, err)
			}
			reports, err := ParseReports(e.Attr("reports"))
			if err != nil {
				return fmt.Errorf("events: seq %d: %w", e.Seq, err)
			}
			switch e.Type {
			case TypeReputationSilence:
				if err := table.RecordSilence(provider, reports); err != nil {
					return fmt.Errorf("events: seq %d: %w", e.Seq, err)
				}
				continue
			}
			status, err := strconv.Atoi(e.Attr("status"))
			if err != nil {
				return fmt.Errorf("events: seq %d status: %w", e.Seq, err)
			}
			if e.Type == TypeReputationChecked {
				if err := table.RecordChecked(provider, reports, tx.Status(status)); err != nil {
					return fmt.Errorf("events: seq %d: %w", e.Seq, err)
				}
			} else {
				if _, err := table.RecordRevealed(provider, reports, tx.Status(status)); err != nil {
					return fmt.Errorf("events: seq %d: %w", e.Seq, err)
				}
			}
		}
	}
	return nil
}
