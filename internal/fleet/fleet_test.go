package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repchain/internal/events"
	"repchain/internal/metrics"
	"repchain/internal/trace"
)

// fakeAdmin serves the three scraped endpoints from canned data.
func fakeAdmin(t *testing.T, snap metrics.Snapshot, spans []trace.Span, evs []events.Event) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			t.Error(err)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		enc := json.NewEncoder(w)
		for _, s := range spans {
			if err := enc.Encode(s); err != nil {
				t.Error(err)
			}
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		enc := json.NewEncoder(w)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				t.Error(err)
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

const testTrace = "deadbeefdeadbeefdeadbeefdeadbeef"

func twoNodeCluster(t *testing.T) *Cluster {
	t.Helper()
	send := trace.Span{
		Trace: testTrace, Stage: trace.StageSend, Node: "governor/0",
		Seq: 1, Wall: 1000,
		Attrs: []trace.Attr{{Key: "to", Value: "governor/1"}, {Key: "kind", Value: "block"}},
	}
	recv := trace.Span{
		Trace: testTrace, Stage: trace.StageRecv, Node: "governor/1",
		Seq: 1, Wall: 2500,
		Attrs: []trace.Attr{
			{Key: "from", Value: "governor/0"},
			{Key: "kind", Value: "block"},
			{Key: "parent", Value: "1"},
			{Key: "sent_ns", Value: "1000"},
			{Key: "latency_ns", Value: "1500"},
		},
	}
	a := fakeAdmin(t,
		metrics.Snapshot{
			Counters: map[string]int64{"transport.frames_sent": 10},
			Gauges:   map[string]float64{"chain.height": 5},
		},
		[]trace.Span{send}, nil)
	b := fakeAdmin(t,
		metrics.Snapshot{
			Counters: map[string]int64{"transport.frames_sent": 7},
			Gauges:   map[string]float64{"chain.height": 5},
		},
		[]trace.Span{recv}, nil)
	return Scraper{}.Scrape([]Node{
		{Name: "governor/0", URL: a.URL},
		{Name: "governor/1", URL: b.URL},
	})
}

func TestScrapeAndMergedMetrics(t *testing.T) {
	c := twoNodeCluster(t)
	for _, n := range c.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s error: %s", n.Node.Name, n.Err)
		}
	}
	merged := c.MergedMetrics()
	if got := merged.Counters["transport.frames_sent"]; got != 17 {
		t.Fatalf("merged frames_sent = %d, want 17 (counters must sum)", got)
	}
	if got := merged.Gauges["chain.height"]; got != 5 {
		t.Fatalf("merged chain.height = %v", got)
	}
}

func TestMergedTraceStitchesAcrossNodes(t *testing.T) {
	c := twoNodeCluster(t)
	mt := c.MergedTrace(testTrace[:8]) // prefix match
	if mt.Trace != testTrace {
		t.Fatalf("trace = %q, want full id from prefix", mt.Trace)
	}
	if len(mt.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (one per node)", len(mt.Spans))
	}
	if mt.Spans[0].Stage != trace.StageSend || mt.Spans[1].Stage != trace.StageRecv {
		t.Fatalf("wall ordering broken: %s then %s", mt.Spans[0].Stage, mt.Spans[1].Stage)
	}
	if len(mt.Hops) != 1 {
		t.Fatalf("hops = %d, want 1", len(mt.Hops))
	}
	h := mt.Hops[0]
	if h.From != "governor/0" || h.To != "governor/1" || h.Kind != "block" || h.LatencyNS != 1500 {
		t.Fatalf("hop = %+v", h)
	}
	if ids := c.TraceIDs(); len(ids) != 1 || ids[0] != testTrace {
		t.Fatalf("TraceIDs() = %v", ids)
	}
	if short := c.MergedTrace("dead"); len(short.Spans) != 0 {
		t.Fatal("sub-8-char prefix must not match")
	}
}

func TestHealthHealthyCluster(t *testing.T) {
	c := twoNodeCluster(t)
	rep := c.Health()
	if rep.Score != 100 {
		t.Fatalf("score = %d (findings: %v), want 100", rep.Score, rep.Findings)
	}
	if rep.HeightSkew != 0 || len(rep.Unreached) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.PeerLags) != 1 {
		t.Fatalf("peer lags = %+v", rep.PeerLags)
	}
	l := rep.PeerLags[0]
	if l.From != "governor/0" || l.To != "governor/1" || l.Count != 1 || l.MeanNS != 1500 || l.MaxNS != 1500 {
		t.Fatalf("lag = %+v", l)
	}
}

func TestHealthPenalties(t *testing.T) {
	a := fakeAdmin(t, metrics.Snapshot{
		Gauges:   map[string]float64{"chain.height": 10},
		Counters: map[string]int64{"transport.send_failures": 3},
	}, nil, nil)
	b := fakeAdmin(t, metrics.Snapshot{
		Gauges: map[string]float64{"chain.height": 8},
	}, nil, nil)
	c := Scraper{}.Scrape([]Node{
		{Name: "g0", URL: a.URL},
		{Name: "g1", URL: b.URL},
		{Name: "gone", URL: "http://127.0.0.1:1"}, // nothing listens here
	})
	rep := c.Health()
	// 100 - 25 (unreachable) - 20 (skew 2 × 10) - 3 (send failures).
	if rep.Score != 52 {
		t.Fatalf("score = %d (findings: %v), want 52", rep.Score, rep.Findings)
	}
	if len(rep.Unreached) != 1 || rep.Unreached[0] != "gone" {
		t.Fatalf("unreached = %v", rep.Unreached)
	}
	if rep.HeightSkew != 2 {
		t.Fatalf("skew = %d", rep.HeightSkew)
	}
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %v", rep.Findings)
	}
}

// TestHealthSkewPerCommittee: in a sharded cluster, heads are only
// comparable between governors of the same committee — two committees
// at heights 10 and 4 are healthy, while a 1-block spread inside one
// committee still scores as skew.
func TestHealthSkewPerCommittee(t *testing.T) {
	nodes := []Node{}
	for _, n := range []struct {
		name      string
		height    float64
		committee float64
	}{
		{"c0/g0", 10, 0},
		{"c0/g1", 10, 0},
		{"c1/g0", 4, 1},
		{"c1/g1", 3, 1},
	} {
		srv := fakeAdmin(t, metrics.Snapshot{
			Gauges: map[string]float64{"chain.height": n.height, "chain.committee": n.committee},
		}, nil, nil)
		nodes = append(nodes, Node{Name: n.name, URL: srv.URL})
	}
	rep := Scraper{}.Scrape(nodes).Health()
	if rep.HeightSkew != 1 {
		t.Fatalf("within-committee skew = %d, want 1 (cross-committee spread must not count)", rep.HeightSkew)
	}
	if rep.Score != 90 {
		t.Fatalf("score = %d (findings: %v), want 90", rep.Score, rep.Findings)
	}
	if rep.Committees["c1/g1"] != 1 || rep.Committees["c0/g0"] != 0 {
		t.Fatalf("committees = %v", rep.Committees)
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "committee 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings %v do not name the skewed committee", rep.Findings)
	}
}

func TestHealthSlowRounds(t *testing.T) {
	// Steady 100ns commit cadence, then one 10x gap at the end. The p95
	// of the preceding window is 100, so the 1000ns gap is slow.
	var evs []events.Event
	wall := int64(1000)
	for i := 0; i < 10; i++ {
		evs = append(evs, events.Event{
			Type: events.TypeBlockCommitted, Node: "governor/0",
			Round: uint64(i + 1), Seq: uint64(i + 1), Wall: wall,
		})
		wall += 100
	}
	evs = append(evs, events.Event{
		Type: events.TypeBlockCommitted, Node: "governor/0",
		Round: 11, Seq: 11, Wall: wall + 900, // gap = 1000
	})
	srv := fakeAdmin(t, metrics.Snapshot{Gauges: map[string]float64{"chain.height": 11}}, nil, evs)
	c := Scraper{}.Scrape([]Node{{Name: "governor/0", URL: srv.URL}})
	rep := c.Health()
	if len(rep.SlowRounds) != 1 {
		t.Fatalf("slow rounds = %+v, want exactly one", rep.SlowRounds)
	}
	s := rep.SlowRounds[0]
	if s.Node != "governor/0" || s.Round != 11 || s.GapNS != 1000 || s.P95NS != 100 {
		t.Fatalf("slow round = %+v", s)
	}
	if rep.Score != 95 {
		t.Fatalf("score = %d, want 95 (one slow round)", rep.Score)
	}
}

func TestScrapeRecordsPerNodeErrors(t *testing.T) {
	// A node serving only metrics degrades but still contributes them.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"counters":{"transport.frames_sent":1}}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := Scraper{}.Scrape([]Node{{Name: "partial", URL: srv.URL}})
	n := c.Nodes[0]
	if n.Err == "" {
		t.Fatal("missing endpoints must surface in NodeState.Err")
	}
	if n.Metrics.Counters["transport.frames_sent"] != 1 {
		t.Fatal("the endpoints that did scrape must still populate")
	}
}
