// Package fleet aggregates telemetry scraped from several nodes' admin
// endpoints into one cluster-wide view: merged cross-node traces with
// per-hop transport latency, a cluster health report (height skew,
// per-peer lag, slow-round detection against a rolling p95), and a
// merged metrics snapshot. It is the library behind
// `repchain-inspect cluster` and the first place where commit latency
// is measured across real processes instead of inside one.
//
// Everything here is read-only and stdlib-only. A node that fails to
// scrape degrades the view (recorded in its NodeState.Err) instead of
// failing the aggregation: a fleet tool that dies with its least
// healthy node cannot diagnose anything.
package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repchain/internal/events"
	"repchain/internal/metrics"
	"repchain/internal/trace"
)

// Node names one admin endpoint to scrape. Name is the operator's
// label for the node (defaults to the URL when empty).
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// NodeState is everything scraped from one node. Err is non-empty when
// any of the node's endpoints failed; the fields that did scrape are
// still populated.
type NodeState struct {
	Node    Node              `json:"node"`
	Err     string            `json:"err,omitempty"`
	Metrics metrics.Snapshot  `json:"metrics"`
	Spans   []trace.Span      `json:"-"`
	Events  []events.Event    `json:"-"`
	Healthz map[string]string `json:"-"`
}

// Cluster is the scraped fleet.
type Cluster struct {
	Nodes []NodeState
}

// Scraper fetches admin endpoints. The zero value uses a 5-second
// default client.
type Scraper struct {
	Client *http.Client
}

func (s Scraper) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Scrape pulls /metrics.json, /traces, and /events from every node,
// sequentially and in order (deterministic output for a handful of
// endpoints matters more than scrape parallelism).
func (s Scraper) Scrape(nodes []Node) *Cluster {
	c := &Cluster{Nodes: make([]NodeState, len(nodes))}
	for i, n := range nodes {
		if n.Name == "" {
			n.Name = n.URL
		}
		st := NodeState{Node: n}
		var errs []string
		if err := s.getJSON(n.URL+"/metrics.json", &st.Metrics); err != nil {
			errs = append(errs, err.Error())
		}
		spans, err := s.getSpans(n.URL + "/traces")
		if err != nil {
			errs = append(errs, err.Error())
		}
		st.Spans = spans
		evs, err := s.getEvents(n.URL + "/events")
		if err != nil {
			errs = append(errs, err.Error())
		}
		st.Events = evs
		st.Err = strings.Join(errs, "; ")
		c.Nodes[i] = st
	}
	return c
}

func (s Scraper) getJSON(url string, out any) error {
	body, err := s.get(url)
	if err != nil {
		return err
	}
	defer body.Close()
	if err := json.NewDecoder(body).Decode(out); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

func (s Scraper) getSpans(url string) ([]trace.Span, error) {
	var out []trace.Span
	err := s.eachLine(url, func(line []byte) error {
		var sp trace.Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return err
		}
		out = append(out, sp)
		return nil
	})
	return out, err
}

func (s Scraper) getEvents(url string) ([]events.Event, error) {
	var out []events.Event
	err := s.eachLine(url, func(line []byte) error {
		var e events.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		out = append(out, e)
		return nil
	})
	return out, err
}

func (s Scraper) eachLine(url string, fn func([]byte) error) error {
	body, err := s.get(url)
	if err != nil {
		return err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := fn([]byte(line)); err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

func (s Scraper) get(url string) (io.ReadCloser, error) {
	resp, err := s.client().Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return resp.Body, nil
}

// MergedMetrics folds every node's snapshot into one cluster snapshot:
// counters and histogram buckets sum, gauges keep the last scraped
// value per name (per-node gauges like chain.height are surfaced
// separately in the health report, where skew is the signal).
func (c *Cluster) MergedMetrics() metrics.Snapshot {
	var snap metrics.Snapshot
	snap.Merge(metrics.Snapshot{})
	for _, n := range c.Nodes {
		snap.Merge(n.Metrics)
	}
	return snap
}

// Hop is one transport edge in a merged trace: the receiver's recv
// span names the sender, the message kind, and the wire latency it
// measured (receive wall clock minus the sender's embedded send
// timestamp; see DESIGN.md §4h for the clock model).
type Hop struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Kind      string `json:"kind"`
	LatencyNS int64  `json:"latency_ns"`
}

// MergedTrace is one transaction's cluster-wide span tree.
type MergedTrace struct {
	Trace string       `json:"trace"`
	Spans []trace.Span `json:"spans"`
	Hops  []Hop        `json:"hops"`
}

// MergedTrace stitches every node's spans for one trace ID (full or
// ≥8-char prefix) into a single ordered list. Spans sort by wall clock
// when present (cross-process runs), falling back to (node, seq) so
// deterministic in-process traces stay stably ordered too.
func (c *Cluster) MergedTrace(id string) MergedTrace {
	var spans []trace.Span
	full := id
	for _, n := range c.Nodes {
		for _, sp := range n.Spans {
			if sp.Trace == "" {
				continue
			}
			if sp.Trace == id || (len(id) >= 8 && len(id) < len(sp.Trace) && sp.Trace[:len(id)] == id) {
				if len(sp.Trace) > len(full) {
					full = sp.Trace
				}
				spans = append(spans, sp)
			}
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Wall != b.Wall {
			return a.Wall < b.Wall
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	mt := MergedTrace{Trace: full, Spans: spans}
	for _, sp := range spans {
		if sp.Stage != trace.StageRecv {
			continue
		}
		hop := Hop{To: sp.Node}
		for _, a := range sp.Attrs {
			switch a.Key {
			case "from":
				hop.From = a.Value
			case "kind":
				hop.Kind = a.Value
			case "latency_ns":
				hop.LatencyNS, _ = strconv.ParseInt(a.Value, 10, 64)
			}
		}
		mt.Hops = append(mt.Hops, hop)
	}
	return mt
}

// TraceIDs returns every distinct trace ID seen across the fleet,
// sorted, so callers can enumerate what is stitchable.
func (c *Cluster) TraceIDs() []string {
	seen := make(map[string]bool)
	for _, n := range c.Nodes {
		for _, sp := range n.Spans {
			if sp.Trace != "" {
				seen[sp.Trace] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PeerLag summarizes the wire latency observed on one directed peer
// edge, computed from the receiver's recv spans.
type PeerLag struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int    `json:"count"`
	// MeanNS and MaxNS are the mean and maximum observed latency.
	// Negative samples (clock skew beyond the one-way latency) are
	// kept: they are the evidence the clock model asks operators to
	// look at, not noise to hide.
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// SlowRound is one commit gap that exceeded the rolling p95 threshold.
type SlowRound struct {
	Node  string `json:"node"`
	Round uint64 `json:"round"`
	GapNS int64  `json:"gap_ns"`
	P95NS int64  `json:"p95_ns"`
}

// HealthReport is the cluster health assessment. Score is 0–100;
// the components that subtracted from it are listed in Findings so the
// number is auditable.
type HealthReport struct {
	Score    int               `json:"score"`
	Findings []string          `json:"findings"`
	Heights  map[string]uint64 `json:"heights"`
	// Committees maps node name to the committee it declared via the
	// chain.committee gauge (absent gauge = committee 0). Height skew is
	// judged within a committee: in a sharded cluster (DESIGN.md §4i)
	// different committees legitimately run different chains at
	// different heights, so comparing heads across committees would
	// manufacture skew that no governor can repair.
	Committees map[string]int64 `json:"committees,omitempty"`
	// HeightSkew is the largest within-committee head spread.
	HeightSkew uint64      `json:"height_skew"`
	PeerLags   []PeerLag   `json:"peer_lags"`
	SlowRounds []SlowRound `json:"slow_rounds"`
	Unreached  []string    `json:"unreached,omitempty"`
}

// slowRoundWindow and slowRoundFactor tune slow-round detection: a
// commit-to-commit gap is slow when it exceeds slowRoundFactor times
// the p95 of the previous slowRoundWindow gaps on the same node.
const (
	slowRoundWindow = 20
	slowRoundFactor = 1.5
	slowRoundMinObs = 5
)

// Health assesses the scraped fleet. The score starts at 100 and loses
// points for unreachable nodes (25 each), committed-height skew within
// a committee (10 per block, capped at 30), slow rounds (5 each,
// capped at 20), and transport send failures anywhere in the fleet
// (capped at 10).
func (c *Cluster) Health() HealthReport {
	rep := HealthReport{Score: 100, Heights: make(map[string]uint64), Committees: make(map[string]int64)}

	for _, n := range c.Nodes {
		if n.Err != "" {
			rep.Unreached = append(rep.Unreached, n.Node.Name)
			continue
		}
		if h, ok := n.Metrics.Gauges["chain.height"]; ok {
			rep.Heights[n.Node.Name] = uint64(h)
			rep.Committees[n.Node.Name] = int64(n.Metrics.Gauges["chain.committee"])
		}
	}
	penalty := 0
	if len(rep.Unreached) > 0 {
		penalty += 25 * len(rep.Unreached)
		rep.Findings = append(rep.Findings,
			fmt.Sprintf("%d node(s) unreachable: %s", len(rep.Unreached), strings.Join(rep.Unreached, ", ")))
	}

	// Heads are only comparable between governors of the same committee.
	type bounds struct {
		min, max uint64
		seen     bool
	}
	perCommittee := make(map[int64]*bounds)
	for name, h := range rep.Heights {
		b := perCommittee[rep.Committees[name]]
		if b == nil {
			b = &bounds{}
			perCommittee[rep.Committees[name]] = b
		}
		if !b.seen || h < b.min {
			b.min = h
		}
		if h > b.max {
			b.max = h
		}
		b.seen = true
	}
	var skewCommittee int64
	for cm, b := range perCommittee {
		if skew := b.max - b.min; skew > rep.HeightSkew {
			rep.HeightSkew = skew
			skewCommittee = cm
		}
	}
	if rep.HeightSkew > 0 {
		p := int(rep.HeightSkew) * 10
		if p > 30 {
			p = 30
		}
		penalty += p
		where := "across governors"
		if len(perCommittee) > 1 {
			where = fmt.Sprintf("across committee %d's governors", skewCommittee)
		}
		rep.Findings = append(rep.Findings,
			fmt.Sprintf("chain height skew of %d block(s) %s", rep.HeightSkew, where))
	}

	rep.PeerLags = c.peerLags()
	rep.SlowRounds = c.slowRounds()
	if len(rep.SlowRounds) > 0 {
		p := 5 * len(rep.SlowRounds)
		if p > 20 {
			p = 20
		}
		penalty += p
		rep.Findings = append(rep.Findings,
			fmt.Sprintf("%d slow round(s) beyond %gx the rolling p95 commit gap", len(rep.SlowRounds), slowRoundFactor))
	}

	var sendFailures int64
	for _, n := range c.Nodes {
		sendFailures += n.Metrics.Counters["transport.send_failures"]
	}
	if sendFailures > 0 {
		p := int(sendFailures)
		if p > 10 {
			p = 10
		}
		penalty += p
		rep.Findings = append(rep.Findings,
			fmt.Sprintf("%d exhausted transport deliveries fleet-wide", sendFailures))
	}

	rep.Score -= penalty
	if rep.Score < 0 {
		rep.Score = 0
	}
	return rep
}

// peerLags folds every recv span across the fleet into per-directed-
// edge latency summaries, sorted by (from, to).
func (c *Cluster) peerLags() []PeerLag {
	type acc struct {
		count int
		sum   int64
		max   int64
	}
	edges := make(map[[2]string]*acc)
	for _, n := range c.Nodes {
		for _, sp := range n.Spans {
			if sp.Stage != trace.StageRecv {
				continue
			}
			var from string
			var lat int64
			var hasLat bool
			for _, a := range sp.Attrs {
				switch a.Key {
				case "from":
					from = a.Value
				case "latency_ns":
					v, err := strconv.ParseInt(a.Value, 10, 64)
					if err == nil {
						lat, hasLat = v, true
					}
				}
			}
			if from == "" || !hasLat {
				continue
			}
			key := [2]string{from, sp.Node}
			a := edges[key]
			if a == nil {
				a = &acc{max: lat}
				edges[key] = a
			}
			a.count++
			a.sum += lat
			if lat > a.max {
				a.max = lat
			}
		}
	}
	out := make([]PeerLag, 0, len(edges))
	for key, a := range edges {
		out = append(out, PeerLag{
			From:   key[0],
			To:     key[1],
			Count:  a.count,
			MeanNS: a.sum / int64(a.count),
			MaxNS:  a.max,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// slowRounds walks each node's block.committed events in order and
// flags commit-to-commit wall gaps exceeding slowRoundFactor times the
// p95 of the preceding slowRoundWindow gaps. Runs without wall clocks
// (deterministic simulations) have no gaps and flag nothing.
func (c *Cluster) slowRounds() []SlowRound {
	var out []SlowRound
	for _, n := range c.Nodes {
		var lastWall int64
		var gaps []int64
		for _, e := range n.Events {
			if e.Type != events.TypeBlockCommitted || e.Wall == 0 {
				continue
			}
			if lastWall != 0 {
				gap := e.Wall - lastWall
				if len(gaps) >= slowRoundMinObs {
					p95 := quantileNS(gaps, 0.95)
					if p95 > 0 && float64(gap) > slowRoundFactor*float64(p95) {
						out = append(out, SlowRound{
							Node:  e.Node,
							Round: e.Round,
							GapNS: gap,
							P95NS: p95,
						})
					}
				}
				gaps = append(gaps, gap)
				if len(gaps) > slowRoundWindow {
					gaps = gaps[1:]
				}
			}
			lastWall = e.Wall
		}
	}
	return out
}

// quantileNS returns the q-quantile of the samples (nearest-rank on a
// sorted copy).
func quantileNS(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
