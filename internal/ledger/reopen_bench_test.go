package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildBenchChain writes a height-block chain of empty-record blocks
// into dir and, when snapshot is set, records a snapshot at the head
// so reopen only has to index — not decode — the log.
func buildBenchChain(b *testing.B, dir string, height int, snapshot bool) {
	b.Helper()
	fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var prev *Block
	for i := 0; i < height; i++ {
		blk, err := NewBlock(prev, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.Append(blk); err != nil {
			b.Fatal(err)
		}
		p := blk
		prev = &p
	}
	if snapshot {
		if _, err := fs.WriteSnapshot([]byte("bench state")); err != nil {
			b.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreReopen measures cold open latency of the segmented
// store: mode=replay opens with no snapshot (every frame decoded and
// link-verified), mode=snapshot opens with a head-height snapshot
// (sealed segments served by their sidecar indexes, zero blocks
// decoded). The benchcheck ratio gate pins snapshot-assisted reopen at
// height 100000 to ≥10x faster than full replay.
func BenchmarkStoreReopen(b *testing.B) {
	for _, height := range []int{1000, 100000} {
		for _, mode := range []string{"replay", "snapshot"} {
			b.Run(fmt.Sprintf("height=%d/mode=%s", height, mode), func(b *testing.B) {
				dir := filepath.Join(b.TempDir(), "chain")
				buildBenchChain(b, dir, height, mode == "snapshot")
				var replayed int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 1 << 20})
					if err != nil {
						b.Fatal(err)
					}
					if fs.Height() != uint64(height) {
						b.Fatalf("Height() = %d, want %d", fs.Height(), height)
					}
					replayed = fs.Recovery().BlocksReplayed
					if err := fs.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(replayed), "replayed-blocks")
			})
		}
	}
}

// BenchmarkStoreAppend is the steady-state write path: append one
// empty-record block to a warm segmented store.
func BenchmarkStoreAppend(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "chain")
	fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = fs.Close() }()
	prev, err := NewBlock(nil, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := fs.Append(prev); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := NewBlock(&prev, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.Append(blk); err != nil {
			b.Fatal(err)
		}
		prev = blk
	}
	b.StopTimer()
	if err := os.RemoveAll(dir); err != nil {
		b.Fatal(err)
	}
}
