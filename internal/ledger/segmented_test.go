package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallOpts forces frequent segment rolls so a handful of blocks spans
// several files.
func smallOpts() StoreOptions {
	return StoreOptions{SegmentBytes: 1024, TailBlocks: 4, SnapshotKeep: 2}
}

func openSmall(t *testing.T, dir string) *FileStore {
	t.Helper()
	fs, err := OpenFileStoreOptions(dir, smallOpts())
	if err != nil {
		t.Fatalf("OpenFileStoreOptions() error = %v", err)
	}
	return fs
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "chain-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestSegmentRollAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	blocks := buildChain(t, fs, 24, 2)
	if fs.Segments() < 3 {
		t.Fatalf("Segments() = %d after 24 blocks at 1 KiB roll, want ≥ 3", fs.Segments())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2 := openSmall(t, dir)
	defer func() { _ = fs2.Close() }()
	if fs2.Height() != 24 {
		t.Fatalf("reopened Height() = %d, want 24", fs2.Height())
	}
	for _, want := range blocks {
		got, err := fs2.Get(want.Serial)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", want.Serial, err)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("block %d changed across restart", want.Serial)
		}
	}
	if err := VerifyChain(fs2); err != nil {
		t.Fatalf("VerifyChain() error = %v", err)
	}
	// Appends keep working and link to the recovered head.
	next, err := NewBlock(&blocks[len(blocks)-1], testRecords(t, 2, 500), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(next); err != nil {
		t.Fatalf("Append() after reopen error = %v", err)
	}
}

func TestSealedSegmentsHaveIndexes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	buildChain(t, fs, 24, 2)
	segs := fs.Segments()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := filepath.Glob(filepath.Join(dir, "chain-*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != segs-1 {
		t.Fatalf("%d sidecar indexes for %d segments, want one per sealed segment (%d)", len(idx), segs, segs-1)
	}
}

// Torn-write matrix: each variant damages the tail of the newest
// segment the way a crash mid-write can, and recovery must truncate
// the tear and keep every block before it.
func TestTornTailRecovery(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, seg string)
	}{
		{"truncated-frame", func(t *testing.T, seg string) {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, fi.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-crc-final-frame", func(t *testing.T, seg string) {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := flipByte(seg, int(fi.Size())-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-filled-tail", func(t *testing.T, seg string) {
			// A crash after metadata allocation but before the data
			// write can leave a zero-filled extent.
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial-frame-header", func(t *testing.T, seg string) {
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x00, 0x00, 0x01}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "chain")
			fs := openSmall(t, dir)
			blocks := buildChain(t, fs, 9, 2)
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			segs := segFiles(t, dir)
			tc.tear(t, segs[len(segs)-1])

			fs2 := openSmall(t, dir)
			defer func() { _ = fs2.Close() }()
			h := fs2.Height()
			if h == 0 || h > 9 {
				t.Fatalf("recovered Height() = %d, want in (0, 9]", h)
			}
			if tc.name != "zero-filled-tail" && tc.name != "partial-frame-header" && h == 9 {
				t.Fatalf("tear dropped no block (height still 9)")
			}
			for s := uint64(1); s <= h; s++ {
				got, err := fs2.Get(s)
				if err != nil {
					t.Fatalf("Get(%d) error = %v", s, err)
				}
				if got.Hash() != blocks[s-1].Hash() {
					t.Fatalf("block %d changed by tail recovery", s)
				}
			}
			if err := VerifyChain(fs2); err != nil {
				t.Fatalf("VerifyChain() error = %v", err)
			}
			// The chain must accept appends at the recovered head.
			var prev *Block
			if h > 0 {
				p := blocks[h-1]
				prev = &p
			}
			next, err := NewBlock(prev, testRecords(t, 1, 900), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs2.Append(next); err != nil {
				t.Fatalf("Append() after tail recovery error = %v", err)
			}
		})
	}
}

func TestTruncatedSealedSegmentFailsOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	buildChain(t, fs, 24, 2)
	if fs.Segments() < 3 {
		t.Fatalf("need ≥ 3 segments, got %d", fs.Segments())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	victim := segs[0]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	// The stale sidecar index (size mismatch) must not mask the damage.
	_, err = OpenFileStoreOptions(dir, smallOpts())
	if err == nil {
		t.Fatal("open accepted a truncated sealed segment")
	}
	if !errors.Is(err, ErrCorruptChain) {
		t.Fatalf("error = %v, want ErrCorruptChain", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(victim)) {
		t.Fatalf("error %q does not name segment %s", err, filepath.Base(victim))
	}
}

func TestCorruptionErrorNamesSegmentAndOffset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	buildChain(t, fs, 24, 2)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	victim := segs[1] // a sealed mid-chain segment
	// Flip a byte in the second frame's payload so the report must
	// point past the first frame, not just at the file.
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := binary.BigEndian.Uint32(data[segHeaderSize : segHeaderSize+4])
	second := segHeaderSize + frameHeadSize + int(firstLen)
	if err := flipByte(victim, second+frameHeadSize+3); err != nil {
		t.Fatal(err)
	}
	// Drop the sidecar index so the scan actually touches the frames.
	base := strings.TrimSuffix(victim, ".seg")
	_ = os.Remove(base + ".idx")

	_, err = OpenFileStoreOptions(dir, smallOpts())
	if err == nil {
		t.Fatal("open accepted mid-segment corruption")
	}
	msg := err.Error()
	if !strings.Contains(msg, filepath.Base(victim)) {
		t.Fatalf("error %q does not name segment %s", msg, filepath.Base(victim))
	}
	if !strings.Contains(msg, fmt.Sprintf("offset %d", second)) {
		t.Fatalf("error %q does not report offset %d of the corrupt frame", msg, second)
	}
}

func TestCorruptIndexFallsBackToScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	blocks := buildChain(t, fs, 24, 2)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := filepath.Glob(filepath.Join(dir, "chain-*.idx"))
	if err != nil || len(idx) == 0 {
		t.Fatalf("no sidecar indexes (err=%v)", err)
	}
	for _, p := range idx {
		if err := flipByte(p, 12); err != nil {
			t.Fatal(err)
		}
	}
	fs2 := openSmall(t, dir)
	defer func() { _ = fs2.Close() }()
	if fs2.Height() != 24 {
		t.Fatalf("Height() = %d after index corruption, want 24 via frame scan", fs2.Height())
	}
	if fs2.Recovery().SegmentsScanned == 0 {
		t.Fatal("RecoveryInfo.SegmentsScanned = 0, want rescans after index corruption")
	}
	for _, want := range blocks {
		got, err := fs2.Get(want.Serial)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", want.Serial, err)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("block %d corrupted", want.Serial)
		}
	}
}

func TestSnapshotSuffixOnlyReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	blocks := buildChain(t, fs, 20, 2)
	if _, err := fs.WriteSnapshot([]byte("app-state-at-20")); err != nil {
		t.Fatalf("WriteSnapshot() error = %v", err)
	}
	// Grow past the snapshot so there is a suffix to replay.
	prev := blocks[len(blocks)-1]
	for i := 0; i < 4; i++ {
		b, err := NewBlock(&prev, testRecords(t, 2, uint64(600+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Append(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2 := openSmall(t, dir)
	defer func() { _ = fs2.Close() }()
	ri := fs2.Recovery()
	if ri.SnapshotHeight != 20 {
		t.Fatalf("RecoveryInfo.SnapshotHeight = %d, want 20", ri.SnapshotHeight)
	}
	if ri.BlocksReplayed != 4 {
		t.Fatalf("RecoveryInfo.BlocksReplayed = %d, want only the 4-block suffix", ri.BlocksReplayed)
	}
	if ri.BlocksIndexed != 20 {
		t.Fatalf("RecoveryInfo.BlocksIndexed = %d, want the 20 pre-snapshot blocks", ri.BlocksIndexed)
	}
	if fs2.Height() != 24 {
		t.Fatalf("Height() = %d, want 24", fs2.Height())
	}
	snap, ok := fs2.LatestSnapshot()
	if !ok || string(snap.App) != "app-state-at-20" {
		t.Fatalf("LatestSnapshot() = (%q, %v), want recovered app state", snap.App, ok)
	}
}

func TestPruneBehindSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	blocks := buildChain(t, fs, 24, 2)
	if _, err := fs.WriteSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	before := fs.Segments()
	removed, err := fs.Prune()
	if err != nil {
		t.Fatalf("Prune() error = %v", err)
	}
	if removed == 0 || fs.Segments() != before-removed {
		t.Fatalf("Prune() removed %d of %d segments", removed, before)
	}
	if fs.Segments() < 1 {
		t.Fatal("Prune() removed the active segment")
	}
	first := fs.FirstAvailable()
	if first <= 1 {
		t.Fatalf("FirstAvailable() = %d after pruning, want > 1", first)
	}
	// Pruned serials answer ErrPruned; surviving ones still verify.
	if _, err := fs.Get(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("Get(1) error = %v, want ErrPruned", err)
	}
	for s := first; s <= fs.Height(); s++ {
		got, err := fs.Get(s)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", s, err)
		}
		if got.Hash() != blocks[s-1].Hash() {
			t.Fatalf("block %d corrupted by pruning", s)
		}
	}
	if head, err := fs.Head(); err != nil || head.Serial != 24 {
		t.Fatalf("Head() = (%v, %v) after pruning", head.Serial, err)
	}
	if err := VerifyChain(fs); err != nil {
		t.Fatalf("VerifyChain() on pruned store error = %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after pruning: the snapshot anchors the surviving suffix.
	fs2 := openSmall(t, dir)
	defer func() { _ = fs2.Close() }()
	if fs2.Height() != 24 {
		t.Fatalf("reopened pruned Height() = %d, want 24", fs2.Height())
	}
	if fs2.FirstAvailable() != first {
		t.Fatalf("reopened FirstAvailable() = %d, want %d", fs2.FirstAvailable(), first)
	}
	if err := VerifyChain(fs2); err != nil {
		t.Fatalf("VerifyChain(reopened pruned) error = %v", err)
	}
	prev := blocks[len(blocks)-1]
	next, err := NewBlock(&prev, testRecords(t, 1, 800), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(next); err != nil {
		t.Fatalf("Append() on pruned store error = %v", err)
	}
}

func TestPruneWithoutSnapshotIsNoop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	defer func() { _ = fs.Close() }()
	buildChain(t, fs, 24, 2)
	removed, err := fs.Prune()
	if err != nil {
		t.Fatalf("Prune() error = %v", err)
	}
	if removed != 0 {
		t.Fatalf("Prune() removed %d segments with no snapshot covering them", removed)
	}
}

func TestLegacySingleFileMigration(t *testing.T) {
	// Build a chain in the old single-file format: plain 4-byte
	// big-endian length frames, no header, no CRC.
	mem := NewMemoryStore()
	blocks := buildChain(t, mem, 6, 2)
	path := filepath.Join(t.TempDir(), "chain.dat")
	var raw []byte
	for _, b := range blocks {
		enc := b.EncodeBytes()
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		raw = append(raw, lenBuf[:]...)
		raw = append(raw, enc...)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("OpenFileStore(legacy file) error = %v", err)
	}
	defer func() { _ = fs.Close() }()
	if !fs.Recovery().MigratedLegacy {
		t.Fatal("RecoveryInfo.MigratedLegacy = false after migrating a legacy chain")
	}
	if fs.Height() != 6 {
		t.Fatalf("migrated Height() = %d, want 6", fs.Height())
	}
	for _, want := range blocks {
		got, err := fs.Get(want.Serial)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", want.Serial, err)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("block %d changed in migration", want.Serial)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() {
		t.Fatal("migration left the chain path as a file")
	}
	if err := VerifyChain(fs); err != nil {
		t.Fatalf("VerifyChain(migrated) error = %v", err)
	}
}

func TestSnapshotAheadOfLogFailsOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	buildChain(t, fs, 6, 2)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a snapshot claiming a height the log never reached.
	// WriteSnapshot fsyncs the log first, so this cannot be a crash
	// artifact — open must treat it as corruption.
	if err := writeSnapshotFile(dir, Snapshot{Height: 99, App: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFileStoreOptions(dir, smallOpts())
	if err == nil {
		t.Fatal("open accepted a snapshot ahead of the log")
	}
	if !errors.Is(err, ErrCorruptChain) {
		t.Fatalf("error = %v, want ErrCorruptChain", err)
	}
}

func TestGetBeyondTailReadsDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir) // TailBlocks = 4
	defer func() { _ = fs.Close() }()
	blocks := buildChain(t, fs, 24, 2)
	// Serial 1 left the 4-slot tail ring long ago; this must hit disk.
	got, err := fs.Get(1)
	if err != nil {
		t.Fatalf("Get(1) error = %v", err)
	}
	if got.Hash() != blocks[0].Hash() {
		t.Fatal("disk read returned a different block 1")
	}
}
