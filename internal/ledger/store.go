package ledger

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repchain/internal/crypto"
)

// Store is a chain of blocks with the paper's retrieve(s) primitive.
// Implementations are safe for concurrent use.
type Store interface {
	// Append adds b to the chain, enforcing serial ordering and the
	// previous-hash link.
	Append(b Block) error
	// Get returns the block with serial number s (retrieve(s)).
	Get(s uint64) (Block, error)
	// Head returns the newest block, or ErrNotFound on an empty chain.
	Head() (Block, error)
	// Height returns the newest serial number, zero when empty.
	Height() uint64
}

// MemoryStore keeps the chain in memory.
type MemoryStore struct {
	mu     sync.RWMutex
	blocks []Block // guarded by mu
}

var _ Store = (*MemoryStore)(nil)

// NewMemoryStore returns an empty in-memory chain.
func NewMemoryStore() *MemoryStore { return &MemoryStore{} }

// Append implements Store.
func (s *MemoryStore) Append(b Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return appendChecked(&s.blocks, b)
}

// Get implements Store.
func (s *MemoryStore) Get(serial uint64) (Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return getChecked(s.blocks, serial)
}

// Head implements Store.
func (s *MemoryStore) Head() (Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return Block{}, fmt.Errorf("empty chain: %w", ErrNotFound)
	}
	return s.blocks[len(s.blocks)-1], nil
}

// Height implements Store.
func (s *MemoryStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// appendChecked enforces the No Skipping and Chain Integrity invariants
// for the in-memory store.
func appendChecked(blocks *[]Block, b Block) error {
	height := uint64(len(*blocks))
	if b.Serial != height+1 {
		return fmt.Errorf("append serial %d at height %d: %w", b.Serial, height, ErrBadSerial)
	}
	if height == 0 {
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("genesis block with nonzero previous hash: %w", ErrBadPrevHash)
		}
	} else {
		prev := (*blocks)[height-1]
		if b.PrevHash != prev.Hash() {
			return fmt.Errorf("block %d previous hash %s, head is %s: %w",
				b.Serial, b.PrevHash.Short(), prev.Hash().Short(), ErrBadPrevHash)
		}
	}
	*blocks = append(*blocks, b)
	return nil
}

func getChecked(blocks []Block, serial uint64) (Block, error) {
	if serial == 0 || serial > uint64(len(blocks)) {
		return Block{}, fmt.Errorf("serial %d at height %d: %w", serial, len(blocks), ErrNotFound)
	}
	return blocks[serial-1], nil
}

// PrunedStore is implemented by stores that may have discarded a
// prefix of the chain behind a snapshot horizon.
type PrunedStore interface {
	// FirstAvailable returns the lowest serial Get can still serve
	// (1 when nothing has been pruned).
	FirstAvailable() uint64
	// SnapshotAnchor returns the latest durable snapshot's height and
	// head hash; ok is false when no snapshot exists.
	SnapshotAnchor() (height uint64, head crypto.Hash, ok bool)
}

// VerifyChain replays the retrievable chain in store, checking serial
// ordering, previous-hash links, and transaction-root commitments. It
// is the auditor's offline check of the Chain Integrity and No
// Skipping properties.
//
// On a PrunedStore the verification starts at the first available
// block and anchors against the snapshot instead of genesis: the hash
// chain computed over the surviving blocks must reproduce the
// snapshot's head hash at the snapshot height, which transitively
// certifies every link back to the recovery point.
func VerifyChain(store Store) error {
	height := store.Height()
	first := uint64(1)
	var anchorHeight uint64
	var anchorHead crypto.Hash
	haveAnchor := false
	if ps, ok := store.(PrunedStore); ok {
		first = ps.FirstAvailable()
		anchorHeight, anchorHead, haveAnchor = ps.SnapshotAnchor()
	}
	if first > 1 && (!haveAnchor || first > anchorHeight+1) {
		return fmt.Errorf("blocks before %d pruned with no covering snapshot: %w", first, ErrCorruptChain)
	}
	var prevHash crypto.Hash
	prevKnown := first == 1
	if haveAnchor && first == anchorHeight+1 {
		prevHash, prevKnown = anchorHead, true
	}
	for s := first; s <= height; s++ {
		b, err := store.Get(s)
		if err != nil {
			return fmt.Errorf("retrieve %d: %w", s, err)
		}
		if b.Serial != s {
			return fmt.Errorf("block at position %d has serial %d: %w", s, b.Serial, ErrCorruptChain)
		}
		if prevKnown && b.PrevHash != prevHash {
			return fmt.Errorf("block %d previous hash mismatch: %w", s, ErrCorruptChain)
		}
		if got := ComputeTxRoot(b.Records); got != b.TxRoot {
			return fmt.Errorf("block %d transaction root mismatch: %w", s, ErrCorruptChain)
		}
		prevHash, prevKnown = b.Hash(), true
		if haveAnchor && s == anchorHeight && prevHash != anchorHead {
			return fmt.Errorf("block %d hash does not match the snapshot anchor: %w", s, ErrCorruptChain)
		}
	}
	return nil
}

// StoreOptions tunes the segmented FileStore.
type StoreOptions struct {
	// SegmentBytes is the roll threshold: once the active segment
	// exceeds it, the segment is sealed (fsynced, sidecar index
	// written) and the next append starts a new one. Zero means the
	// 4 MiB default. A single oversized block still gets written — a
	// segment always holds at least one frame.
	SegmentBytes int64
	// TailBlocks caps the in-memory cache of most recent blocks that
	// serves Head, resync, and recent Get calls without disk reads.
	// Zero means the 256 default.
	TailBlocks int
	// SnapshotKeep is how many snapshot generations WriteSnapshot
	// retains (older ones are deleted). Zero means the 2 default —
	// the newest plus one fallback.
	SnapshotKeep int
}

const (
	defaultSegmentBytes = 4 << 20
	defaultTailBlocks   = 256
	defaultSnapshotKeep = 2
)

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.TailBlocks <= 0 {
		o.TailBlocks = defaultTailBlocks
	}
	if o.SnapshotKeep <= 0 {
		o.SnapshotKeep = defaultSnapshotKeep
	}
	return o
}

// RecoveryInfo reports what OpenFileStore did to bring the store up.
type RecoveryInfo struct {
	// SnapshotHeight is the height of the snapshot recovery loaded
	// from (0 = opened with no snapshot).
	SnapshotHeight uint64
	// SnapshotsSkipped counts snapshot files that failed validation
	// and were passed over for an older generation.
	SnapshotsSkipped int
	// BlocksIndexed counts frames indexed without decoding (at or
	// below the snapshot horizon, or covered by a sealed-segment
	// sidecar index).
	BlocksIndexed int
	// BlocksReplayed counts blocks decoded and link-verified (the log
	// suffix above the snapshot horizon).
	BlocksReplayed int
	// TornBytesDropped is how many trailing bytes of the newest
	// segment were discarded as a torn write.
	TornBytesDropped int64
	// SegmentsScanned counts sealed segments that had to be re-scanned
	// because their sidecar index was missing or invalid.
	SegmentsScanned int
	// MigratedLegacy reports that a pre-segmented single-file chain
	// was converted to the segmented layout on open.
	MigratedLegacy bool
}

// FileStore is the segmented append-only on-disk chain. The directory
// holds fixed-size segments of length+CRC framed block encodings
// (chain-<first>.seg), sidecar offset indexes for sealed segments
// (chain-<first>.idx), and atomic state snapshots
// (snapshot-<height>.snap).
//
// Unlike the pre-segmented store it replaces, FileStore does not keep
// the chain in memory: it holds a bounded tail cache plus per-segment
// offset indexes, reads older blocks from disk on demand, and on open
// decodes only the log suffix above the latest valid snapshot.
type FileStore struct {
	mu   sync.RWMutex
	dir  string
	opts StoreOptions

	segments []*segmentInfo // guarded by mu; serial order, last is active
	active   *os.File       // guarded by mu; nil until the first append needs it
	w        *bufio.Writer  // guarded by mu

	height   uint64      // guarded by mu
	headHash crypto.Hash // guarded by mu; hash of block height
	headBlk  Block       // guarded by mu; the block at height
	headOK   bool        // guarded by mu; headBlk holds a real block
	pruned   uint64      // guarded by mu; serials ≤ pruned are gone

	tail []Block // guarded by mu; ring keyed by serial % TailBlocks

	snap     Snapshot // guarded by mu; latest durable snapshot
	haveSnap bool     // guarded by mu

	recovery RecoveryInfo // set at open, immutable afterwards
}

var (
	_ Store       = (*FileStore)(nil)
	_ PrunedStore = (*FileStore)(nil)
)

// OpenFileStore opens or creates the segmented chain store at path
// with default options. A pre-segmented single-file chain at path is
// migrated to the segmented layout in place.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreOptions(path, StoreOptions{})
}

// OpenFileStoreOptions is OpenFileStore with explicit tuning.
//
// Recovery procedure: load the newest snapshot that validates, index
// every surviving segment (sealed ones through their sidecar index
// when possible), and decode only the frames above the snapshot
// height, verifying their hash links from the snapshot's head hash. A
// torn tail — an incomplete or checksum-failing final frame of the
// newest segment — is truncated and recovery proceeds; corruption
// anywhere else fails open with the segment file and byte offset of
// the bad frame so an operator can inspect or truncate manually.
func OpenFileStoreOptions(path string, opts StoreOptions) (*FileStore, error) {
	opts = opts.withDefaults()
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		if err := migrateLegacyChain(path); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("open chain dir: %w", err)
	}
	migrated := false
	if fi, err := os.Stat(filepath.Join(path, legacyBackupName)); err == nil && fi.Mode().IsRegular() {
		// A parked legacy chain (fresh move-aside, or a crash before a
		// previous migration finished): (re)build the segments from it.
		if err := completeMigration(path, opts); err != nil {
			return nil, err
		}
		migrated = true
	}
	fs := &FileStore{
		dir:  path,
		opts: opts,
		tail: make([]Block, opts.TailBlocks),
	}
	fs.recovery.MigratedLegacy = migrated
	if err := fs.load(); err != nil {
		return nil, err
	}
	return fs, nil
}

// legacyBackupName is where migrateLegacyChain parks the original
// single-file chain inside the new directory until the migration has
// fully replayed, after which it is deleted.
const legacyBackupName = "legacy-chain.migrating"

// migrateLegacyChain parks a pre-segmented single-file chain inside a
// fresh directory at the same path; completeMigration then rebuilds
// the segments from it. Splitting the move from the rebuild makes the
// migration crash-resumable: the parked file survives until the
// segments fully exist.
func migrateLegacyChain(path string) error {
	if err := os.Rename(path, path+".migrating"); err != nil {
		return fmt.Errorf("move legacy chain aside: %w", err)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("create chain dir: %w", err)
	}
	if err := os.Rename(path+".migrating", filepath.Join(path, legacyBackupName)); err != nil {
		return fmt.Errorf("park legacy chain: %w", err)
	}
	return nil
}

// completeMigration decodes the parked legacy chain (plain 4-byte
// length frames, no header, no CRC), discards any partial segments a
// previous interrupted attempt left behind, re-appends every block
// through a fresh segmented store, and only then deletes the backup.
func completeMigration(path string, opts StoreOptions) error {
	backup := filepath.Join(path, legacyBackupName)
	data, err := os.ReadFile(backup)
	if err != nil {
		return fmt.Errorf("read legacy chain file: %w", err)
	}
	var blocks []Block
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return fmt.Errorf("legacy chain file %s truncated frame header at offset %d: %w", backup, off, ErrCorruptChain)
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > maxFramePayload || off+4+n > len(data) {
			return fmt.Errorf("legacy chain file %s truncated frame at offset %d: %w", backup, off, ErrCorruptChain)
		}
		b, err := DecodeBlockBytes(data[off+4 : off+4+n])
		if err != nil {
			return fmt.Errorf("legacy chain file %s block decode at offset %d: %w", backup, off, err)
		}
		blocks = append(blocks, b)
		off += 4 + n
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return fmt.Errorf("read chain dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		_, isSeg := parseSegmentName(name)
		_, isSnap := parseSnapshotName(name)
		if isSeg || isSnap || strings.HasSuffix(name, ".idx") || strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(path, name)); err != nil {
				return fmt.Errorf("clear partial migration: %w", err)
			}
		}
	}
	fs := &FileStore{dir: path, opts: opts, tail: make([]Block, opts.TailBlocks)}
	if err := fs.load(); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := fs.Append(b); err != nil {
			_ = fs.Close()
			return fmt.Errorf("migrate legacy chain: %w", err)
		}
	}
	if err := fs.Close(); err != nil {
		return err
	}
	return os.Remove(backup)
}

//repchain:lockguard-ok construction-time only: load runs before the store is reachable by any other goroutine
func (fs *FileStore) load() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("read chain dir: %w", err)
	}
	var segFirsts, snapHeights []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(fs.dir, name)) // interrupted atomic write
			continue
		}
		if first, ok := parseSegmentName(name); ok {
			segFirsts = append(segFirsts, first)
		}
		if h, ok := parseSnapshotName(name); ok {
			snapHeights = append(snapHeights, h)
		}
	}
	sort.Slice(segFirsts, func(i, j int) bool { return segFirsts[i] < segFirsts[j] })

	snap, haveSnap, skipped := loadLatestSnapshot(fs.dir, snapHeights)
	fs.snap, fs.haveSnap = snap, haveSnap
	fs.recovery.SnapshotsSkipped = skipped
	horizon := uint64(0)
	if haveSnap {
		horizon = snap.Height
		fs.recovery.SnapshotHeight = snap.Height
		// Frames at or below the horizon are only indexed, never
		// decoded, so the first replayed block (horizon+1) must link
		// against the snapshot's head hash instead of a recomputed one.
		fs.headHash = snap.Head
	}

	if len(segFirsts) == 0 {
		if haveSnap {
			// Fully pruned log: the snapshot is the whole state.
			fs.height, fs.headHash, fs.pruned = snap.Height, snap.Head, snap.Height
		}
		return nil
	}
	if segFirsts[0] > 1 && (!haveSnap || segFirsts[0] > horizon+1) {
		return fmt.Errorf("chain dir %s: first segment starts at %d with no covering snapshot: %w",
			fs.dir, segFirsts[0], ErrCorruptChain)
	}
	fs.pruned = segFirsts[0] - 1
	fs.height = fs.pruned

	for i, first := range segFirsts {
		lastSeg := i == len(segFirsts)-1
		seg := &segmentInfo{
			path:   filepath.Join(fs.dir, segmentName(first)),
			first:  first,
			sealed: !lastSeg,
		}
		if first != fs.height+1 {
			return fmt.Errorf("segment %s starts at %d, previous segment ends at %d: %w",
				filepath.Base(seg.path), first, fs.height, ErrCorruptChain)
		}
		fi, err := os.Stat(seg.path)
		if err != nil {
			return fmt.Errorf("segment %s: %w", filepath.Base(seg.path), err)
		}
		seg.size = fi.Size()
		// A sealed segment entirely behind the horizon can load its
		// sidecar index and skip the scan; anything above the horizon
		// must be decoded and link-verified, so it always scans.
		if seg.sealed {
			if offsets, ok := loadIndexFile(fs.dir, first, seg.size); ok && first+uint64(len(offsets))-1 <= horizon {
				seg.offsets = offsets
				fs.height = seg.last()
				fs.recovery.BlocksIndexed += seg.count()
				fs.segments = append(fs.segments, seg)
				continue
			}
			fs.recovery.SegmentsScanned++
		}
		if err := fs.scanSegment(seg, horizon, lastSeg); err != nil {
			return err
		}
		if seg.count() == 0 && lastSeg && len(fs.segments) > 0 {
			// The newest segment lost its only frames to a torn write;
			// drop the empty file so the previous segment becomes
			// active again on the next open. For this session, keep it
			// as the (empty) active segment — appends continue into it.
		}
		fs.segments = append(fs.segments, seg)
	}

	if fs.haveSnap && fs.height < fs.snap.Height {
		return fmt.Errorf("chain dir %s: log height %d behind snapshot height %d (snapshots are only written over fsynced logs): %w",
			fs.dir, fs.height, fs.snap.Height, ErrCorruptChain)
	}

	// Reopen the newest segment for appending.
	last := fs.segments[len(fs.segments)-1]
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("open active segment: %w", err)
	}
	if _, err := f.Seek(last.size, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("seek active segment end: %w", err)
	}
	fs.active = f
	fs.w = bufio.NewWriter(f)

	// Make sure Head can answer: the head block is always in the
	// newest segments (pruning never removes the active one), but if
	// the whole suffix sat below the horizon it was only indexed, not
	// decoded.
	if !fs.headOK && fs.height > fs.pruned {
		b, err := fs.readBlockAt(fs.height)
		if err != nil {
			return fmt.Errorf("read head block: %w", err)
		}
		fs.headBlk, fs.headOK = b, true
		fs.headHash = b.Hash()
	}
	return nil
}

// scanSegment walks a segment's frames, indexing every frame and
// decoding + link-verifying those above the snapshot horizon. In the
// newest segment a torn tail is truncated; everywhere else any bad
// frame is fatal, reported with its segment and offset.
//
//repchain:lockguard-ok construction-time only: called from load before the store is shared
func (fs *FileStore) scanSegment(seg *segmentInfo, horizon uint64, lastSeg bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("segment %s: %w", filepath.Base(seg.path), err)
	}
	defer func() { _ = f.Close() }()
	r := bufio.NewReaderSize(f, 1<<16)
	if _, err := readSegmentHeader(r, seg.path); err != nil {
		return err
	}
	first, err := fileHeaderSerial(seg.path)
	if err != nil {
		return err
	}
	if first != seg.first {
		return fmt.Errorf("segment %s header claims first serial %d: %w", filepath.Base(seg.path), first, ErrCorruptChain)
	}

	off := int64(segHeaderSize)
	for {
		serial := seg.first + uint64(seg.count())
		verify := serial > horizon
		payload, n, res := readFrame(r, verify)
		if res == scanEOF && payload == nil && n == 0 {
			return nil // clean end of segment
		}
		bad := res != scanEOF
		var blk Block
		if !bad && verify {
			b, derr := DecodeBlockBytes(payload)
			switch {
			case derr != nil:
				bad, res = true, scanBadFrame
			case b.Serial != serial:
				bad, res = true, scanBadFrame
			default:
				blk = b
			}
		}
		if bad {
			if lastSeg && verify {
				if torn, terr := fs.tornTail(f, off, n, res); terr != nil {
					return terr
				} else if torn {
					return nil
				}
			}
			return fmt.Errorf("segment %s: corrupt frame for block %d at offset %d: %w",
				filepath.Base(seg.path), serial, off, ErrCorruptChain)
		}
		if verify {
			if err := fs.linkBlock(blk); err != nil {
				return fmt.Errorf("segment %s: block %d at offset %d: %w",
					filepath.Base(seg.path), serial, off, err)
			}
			fs.recovery.BlocksReplayed++
		} else {
			fs.height = serial
			fs.recovery.BlocksIndexed++
		}
		seg.offsets = append(seg.offsets, off)
		off += n
	}
}

// tornTail decides whether a bad frame in the newest segment is a
// recoverable torn write: the frame runs past end-of-file, is the
// final frame, or is followed only by zero bytes (a zero-filled
// allocation the crash never overwrote). If so the file is truncated
// at the frame's start and recovery continues; a bad frame followed by
// real data is corruption, not a tear, and stays fatal.
//
//repchain:lockguard-ok construction-time only: called from scanSegment during load
func (fs *FileStore) tornTail(f *os.File, off, n int64, res frameScanResult) (bool, error) {
	fi, err := f.Stat()
	if err != nil {
		return false, err
	}
	size := fi.Size()
	torn := res == scanTruncated || off+n >= size
	if !torn {
		// Bad frame with data after it: a tear only if everything from
		// the frame start to EOF is zero.
		rest := make([]byte, size-off)
		if _, err := f.ReadAt(rest, off); err != nil {
			return false, err
		}
		torn = true
		for _, b := range rest {
			if b != 0 {
				torn = false
				break
			}
		}
	}
	if !torn {
		return false, nil
	}
	if err := os.Truncate(f.Name(), off); err != nil {
		return false, fmt.Errorf("truncate torn tail: %w", err)
	}
	fs.recovery.TornBytesDropped += size - off
	return true, nil
}

// fileHeaderSerial re-reads just the header serial of a segment file.
func fileHeaderSerial(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	return readSegmentHeader(f, path)
}

// linkBlock verifies a replayed block against the running head state
// and adopts it as the new head.
//
//repchain:lockguard-ok construction-time only: called from scanSegment during load
func (fs *FileStore) linkBlock(b Block) error {
	if b.Serial != fs.height+1 {
		return fmt.Errorf("serial %d at height %d: %w", b.Serial, fs.height, ErrCorruptChain)
	}
	if fs.height == 0 {
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("genesis block with nonzero previous hash: %w", ErrCorruptChain)
		}
	} else if b.PrevHash != fs.headHash {
		return fmt.Errorf("previous hash mismatch: %w", ErrCorruptChain)
	}
	fs.height = b.Serial
	fs.headHash = b.Hash()
	fs.headBlk, fs.headOK = b, true
	fs.cacheTail(b)
	return nil
}

//repchain:lockguard-ok callers hold mu (Append) or run construction-time (load path)
func (fs *FileStore) cacheTail(b Block) {
	fs.tail[b.Serial%uint64(len(fs.tail))] = b
}

// Append implements Store, persisting the block before indexing it.
func (fs *FileStore) Append(b Block) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	// Validate against the head state first so a bad block never
	// reaches disk.
	if b.Serial != fs.height+1 {
		return fmt.Errorf("append serial %d at height %d: %w", b.Serial, fs.height, ErrBadSerial)
	}
	if fs.height == 0 {
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("genesis block with nonzero previous hash: %w", ErrBadPrevHash)
		}
	} else if b.PrevHash != fs.headHash {
		return fmt.Errorf("block %d previous hash %s, head is %s: %w",
			b.Serial, b.PrevHash.Short(), fs.headHash.Short(), ErrBadPrevHash)
	}

	enc := b.EncodeBytes()
	frameLen := int64(frameHeadSize + len(enc))
	seg, err := fs.activeSegmentLocked(frameLen, b.Serial)
	if err != nil {
		return err
	}
	if err := appendFrame(fs.w, enc); err != nil {
		return fmt.Errorf("write block frame: %w", err)
	}
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("flush block: %w", err)
	}
	seg.offsets = append(seg.offsets, seg.size)
	seg.size += frameLen

	fs.height = b.Serial
	fs.headHash = b.Hash()
	fs.headBlk, fs.headOK = b, true
	fs.cacheTail(b)
	return nil
}

// activeSegmentLocked returns the segment the next frame should go to,
// sealing and rolling the current one when the new frame would push it
// past the size threshold. Callers hold mu.
func (fs *FileStore) activeSegmentLocked(frameLen int64, serial uint64) (*segmentInfo, error) {
	if n := len(fs.segments); n > 0 && fs.active != nil {
		seg := fs.segments[n-1]
		if seg.size+frameLen <= fs.opts.SegmentBytes || seg.count() == 0 {
			return seg, nil
		}
		if err := fs.sealActiveLocked(); err != nil {
			return nil, err
		}
	}
	seg := &segmentInfo{
		path:  filepath.Join(fs.dir, segmentName(serial)),
		first: serial,
		size:  segHeaderSize,
	}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("create segment: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := writeSegmentHeader(w, serial); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("write segment header: %w", err)
	}
	fs.active, fs.w = f, w
	fs.segments = append(fs.segments, seg)
	return seg, nil
}

// sealActiveLocked flushes, fsyncs, and closes the active segment and
// writes its sidecar offset index. Callers hold mu.
func (fs *FileStore) sealActiveLocked() error {
	if fs.active == nil {
		return nil
	}
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("flush segment: %w", err)
	}
	if err := fs.active.Sync(); err != nil {
		return fmt.Errorf("sync segment: %w", err)
	}
	if err := fs.active.Close(); err != nil {
		return fmt.Errorf("close segment: %w", err)
	}
	fs.active, fs.w = nil, nil
	seg := fs.segments[len(fs.segments)-1]
	seg.sealed = true
	if err := writeIndexFile(fs.dir, seg); err != nil {
		return fmt.Errorf("write segment index: %w", err)
	}
	return nil
}

// Get implements Store. Recent blocks come from the tail cache; older
// ones are read from their segment through the offset index. Serials
// at or below the prune horizon fail with ErrPruned.
func (fs *FileStore) Get(serial uint64) (Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if serial == 0 || serial > fs.height {
		return Block{}, fmt.Errorf("serial %d at height %d: %w", serial, fs.height, ErrNotFound)
	}
	if serial <= fs.pruned {
		return Block{}, fmt.Errorf("serial %d at or below prune horizon %d: %w", serial, fs.pruned, ErrPruned)
	}
	if b := fs.tail[serial%uint64(len(fs.tail))]; b.Serial == serial {
		return b, nil
	}
	return fs.readBlockAt(serial)
}

// readBlockAt reads one block from its segment file. Callers hold at
// least an RLock; every append flushes, so file contents are current.
//
//repchain:lockguard-ok read-only index walk; callers hold mu or RLock, and load runs construction-time
func (fs *FileStore) readBlockAt(serial uint64) (Block, error) {
	i := sort.Search(len(fs.segments), func(i int) bool { return fs.segments[i].first > serial }) - 1
	if i < 0 {
		return Block{}, fmt.Errorf("serial %d below first segment: %w", serial, ErrNotFound)
	}
	seg := fs.segments[i]
	if serial < seg.first || serial > seg.last() {
		return Block{}, fmt.Errorf("serial %d not indexed in segment %s: %w", serial, filepath.Base(seg.path), ErrCorruptChain)
	}
	off := seg.offsets[serial-seg.first]
	f, err := os.Open(seg.path)
	if err != nil {
		return Block{}, fmt.Errorf("segment %s: %w", filepath.Base(seg.path), err)
	}
	defer func() { _ = f.Close() }()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return Block{}, fmt.Errorf("segment %s: seek %d: %w", filepath.Base(seg.path), off, err)
	}
	payload, _, res := readFrame(bufio.NewReader(f), true)
	if res != scanEOF {
		return Block{}, fmt.Errorf("segment %s: corrupt frame for block %d at offset %d: %w",
			filepath.Base(seg.path), serial, off, ErrCorruptChain)
	}
	b, err := DecodeBlockBytes(payload)
	if err != nil {
		return Block{}, fmt.Errorf("segment %s: block %d at offset %d: %w", filepath.Base(seg.path), serial, off, err)
	}
	if b.Serial != serial {
		return Block{}, fmt.Errorf("segment %s: frame at offset %d holds serial %d, want %d: %w",
			filepath.Base(seg.path), off, b.Serial, serial, ErrCorruptChain)
	}
	return b, nil
}

// Head implements Store.
func (fs *FileStore) Head() (Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.height == 0 {
		return Block{}, fmt.Errorf("empty chain: %w", ErrNotFound)
	}
	if !fs.headOK {
		return Block{}, fmt.Errorf("head block %d behind prune horizon: %w", fs.height, ErrPruned)
	}
	return fs.headBlk, nil
}

// Height implements Store.
func (fs *FileStore) Height() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.height
}

// FirstAvailable implements PrunedStore.
func (fs *FileStore) FirstAvailable() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.pruned + 1
}

// SnapshotAnchor implements PrunedStore.
func (fs *FileStore) SnapshotAnchor() (uint64, crypto.Hash, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.snap.Height, fs.snap.Head, fs.haveSnap
}

// LatestSnapshot returns the newest durable snapshot, if any.
func (fs *FileStore) LatestSnapshot() (Snapshot, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !fs.haveSnap {
		return Snapshot{}, false
	}
	s := fs.snap
	s.App = append([]byte(nil), fs.snap.App...)
	return s, true
}

// Recovery reports what OpenFileStore found and repaired.
func (fs *FileStore) Recovery() RecoveryInfo { return fs.recovery }

// WriteSnapshot captures the current height, head hash, and the given
// application state as a durable recovery point. The active segment is
// fsynced first so the snapshot never claims a height the log could
// lose, then the snapshot file is written atomically (temp + fsync +
// rename + directory fsync). Older snapshot generations beyond
// StoreOptions.SnapshotKeep are deleted.
func (fs *FileStore) WriteSnapshot(app []byte) (Snapshot, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.active != nil {
		if err := fs.w.Flush(); err != nil {
			return Snapshot{}, fmt.Errorf("flush before snapshot: %w", err)
		}
		if err := fs.active.Sync(); err != nil {
			return Snapshot{}, fmt.Errorf("sync before snapshot: %w", err)
		}
	}
	snap := Snapshot{
		Height: fs.height,
		Head:   fs.headHash,
		App:    append([]byte(nil), app...),
	}
	if err := writeSnapshotFile(fs.dir, snap); err != nil {
		return Snapshot{}, err
	}
	fs.snap, fs.haveSnap = snap, true
	fs.gcSnapshotsLocked()
	return snap, nil
}

// gcSnapshotsLocked deletes snapshot generations beyond SnapshotKeep.
// Deletion failures are ignored: stale snapshots are harmless, newer
// ones always win at open. Callers hold mu.
func (fs *FileStore) gcSnapshotsLocked() {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return
	}
	var heights []uint64
	for _, e := range entries {
		if h, ok := parseSnapshotName(e.Name()); ok && h < fs.snap.Height {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] > heights[j] })
	for _, h := range heights[min(len(heights), fs.opts.SnapshotKeep-1):] {
		_ = os.Remove(filepath.Join(fs.dir, snapshotName(h)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Prune deletes sealed segments that lie entirely at or below the
// latest snapshot height, along with their sidecar indexes, and
// returns how many segments were removed. The active segment is never
// pruned — it holds the head block — so Head and every Get above the
// horizon keep working. Safety invariant: a block is only ever deleted
// once a durable snapshot at or above it exists, so the recovery state
// (snapshot + surviving suffix) always reproduces the chain head.
func (fs *FileStore) Prune() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.haveSnap {
		return 0, nil
	}
	removed := 0
	for len(fs.segments) > 1 {
		seg := fs.segments[0]
		if !seg.sealed || seg.count() == 0 || seg.last() > fs.snap.Height {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, fmt.Errorf("prune segment: %w", err)
		}
		_ = os.Remove(filepath.Join(fs.dir, indexName(seg.first)))
		fs.pruned = seg.last()
		fs.segments = fs.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(fs.dir); err != nil {
			return removed, fmt.Errorf("prune sync: %w", err)
		}
	}
	return removed, nil
}

// Segments reports how many segment files the store currently holds.
func (fs *FileStore) Segments() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.segments)
}

// Close flushes, fsyncs, and closes the active segment.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.active == nil {
		return nil
	}
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("flush chain segment: %w", err)
	}
	if err := fs.active.Sync(); err != nil {
		return fmt.Errorf("sync chain segment: %w", err)
	}
	if err := fs.active.Close(); err != nil {
		return fmt.Errorf("close chain segment: %w", err)
	}
	fs.active, fs.w = nil, nil
	return nil
}
