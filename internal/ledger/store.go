package ledger

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repchain/internal/crypto"
)

// Store is a chain of blocks with the paper's retrieve(s) primitive.
// Implementations are safe for concurrent use.
type Store interface {
	// Append adds b to the chain, enforcing serial ordering and the
	// previous-hash link.
	Append(b Block) error
	// Get returns the block with serial number s (retrieve(s)).
	Get(s uint64) (Block, error)
	// Head returns the newest block, or ErrNotFound on an empty chain.
	Head() (Block, error)
	// Height returns the newest serial number, zero when empty.
	Height() uint64
}

// MemoryStore keeps the chain in memory.
type MemoryStore struct {
	mu     sync.RWMutex
	blocks []Block // guarded by mu
}

var _ Store = (*MemoryStore)(nil)

// NewMemoryStore returns an empty in-memory chain.
func NewMemoryStore() *MemoryStore { return &MemoryStore{} }

// Append implements Store.
func (s *MemoryStore) Append(b Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return appendChecked(&s.blocks, b)
}

// Get implements Store.
func (s *MemoryStore) Get(serial uint64) (Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return getChecked(s.blocks, serial)
}

// Head implements Store.
func (s *MemoryStore) Head() (Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return Block{}, fmt.Errorf("empty chain: %w", ErrNotFound)
	}
	return s.blocks[len(s.blocks)-1], nil
}

// Height implements Store.
func (s *MemoryStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// appendChecked enforces the No Skipping and Chain Integrity invariants
// shared by both stores.
func appendChecked(blocks *[]Block, b Block) error {
	height := uint64(len(*blocks))
	if b.Serial != height+1 {
		return fmt.Errorf("append serial %d at height %d: %w", b.Serial, height, ErrBadSerial)
	}
	if height == 0 {
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("genesis block with nonzero previous hash: %w", ErrBadPrevHash)
		}
	} else {
		prev := (*blocks)[height-1]
		if b.PrevHash != prev.Hash() {
			return fmt.Errorf("block %d previous hash %s, head is %s: %w",
				b.Serial, b.PrevHash.Short(), prev.Hash().Short(), ErrBadPrevHash)
		}
	}
	*blocks = append(*blocks, b)
	return nil
}

func getChecked(blocks []Block, serial uint64) (Block, error) {
	if serial == 0 || serial > uint64(len(blocks)) {
		return Block{}, fmt.Errorf("serial %d at height %d: %w", serial, len(blocks), ErrNotFound)
	}
	return blocks[serial-1], nil
}

// VerifyChain replays the whole chain in store, checking serial
// ordering, previous-hash links, and transaction-root commitments. It
// is the auditor's offline check of the Chain Integrity and No
// Skipping properties.
func VerifyChain(store Store) error {
	height := store.Height()
	var prevHash crypto.Hash
	for s := uint64(1); s <= height; s++ {
		b, err := store.Get(s)
		if err != nil {
			return fmt.Errorf("retrieve %d: %w", s, err)
		}
		if b.Serial != s {
			return fmt.Errorf("block at position %d has serial %d: %w", s, b.Serial, ErrCorruptChain)
		}
		if b.PrevHash != prevHash {
			return fmt.Errorf("block %d previous hash mismatch: %w", s, ErrCorruptChain)
		}
		if got := ComputeTxRoot(b.Records); got != b.TxRoot {
			return fmt.Errorf("block %d transaction root mismatch: %w", s, ErrCorruptChain)
		}
		prevHash = b.Hash()
	}
	return nil
}

// FileStore is an append-only on-disk chain: a sequence of
// length-prefixed block encodings. It keeps an in-memory index of
// decoded blocks for reads and appends synchronously to the file.
type FileStore struct {
	mu     sync.RWMutex
	blocks []Block       // guarded by mu
	f      *os.File      // guarded by mu
	w      *bufio.Writer // guarded by mu
	path   string
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens or creates the chain file at path, replaying any
// existing blocks and verifying their links.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open chain file: %w", err)
	}
	fs := &FileStore{f: f, w: bufio.NewWriter(f), path: path}
	if err := fs.replay(); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("replay chain (close also failed: %v): %w", cerr, err)
		}
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("seek chain end (close also failed: %v): %w", cerr, err)
		}
		return nil, fmt.Errorf("seek chain end: %w", err)
	}
	return fs, nil
}

//repchain:lockguard-ok construction-time only: OpenFileStore calls replay before the store is reachable by any other goroutine
func (fs *FileStore) replay() error {
	r := bufio.NewReader(fs.f)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("chain file %s truncated frame header: %w", fs.path, ErrCorruptChain)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > 1<<28 {
			return fmt.Errorf("chain file %s frame of %d bytes: %w", fs.path, n, ErrCorruptChain)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("chain file %s truncated frame: %w", fs.path, ErrCorruptChain)
		}
		b, err := DecodeBlockBytes(buf)
		if err != nil {
			return fmt.Errorf("chain file %s block decode: %w", fs.path, err)
		}
		if err := appendChecked(&fs.blocks, b); err != nil {
			return fmt.Errorf("chain file %s replay: %w", fs.path, err)
		}
	}
}

// Append implements Store, persisting the block before indexing it.
func (fs *FileStore) Append(b Block) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	// Validate against the in-memory head first so a bad block never
	// reaches disk.
	height := uint64(len(fs.blocks))
	if b.Serial != height+1 {
		return fmt.Errorf("append serial %d at height %d: %w", b.Serial, height, ErrBadSerial)
	}
	if height == 0 {
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("genesis block with nonzero previous hash: %w", ErrBadPrevHash)
		}
	} else if b.PrevHash != fs.blocks[height-1].Hash() {
		return fmt.Errorf("block %d previous hash mismatch: %w", b.Serial, ErrBadPrevHash)
	}

	enc := b.EncodeBytes()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(enc)))
	if _, err := fs.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("write block frame: %w", err)
	}
	if _, err := fs.w.Write(enc); err != nil {
		return fmt.Errorf("write block: %w", err)
	}
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("flush block: %w", err)
	}
	fs.blocks = append(fs.blocks, b)
	return nil
}

// Get implements Store.
func (fs *FileStore) Get(serial uint64) (Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return getChecked(fs.blocks, serial)
}

// Head implements Store.
func (fs *FileStore) Head() (Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if len(fs.blocks) == 0 {
		return Block{}, fmt.Errorf("empty chain: %w", ErrNotFound)
	}
	return fs.blocks[len(fs.blocks)-1], nil
}

// Height implements Store.
func (fs *FileStore) Height() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return uint64(len(fs.blocks))
}

// Close flushes and closes the underlying file.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("flush chain file: %w", err)
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("close chain file: %w", err)
	}
	return nil
}
