package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
)

// TestSoakSegmentedStore drives many rounds of append + periodic
// snapshot + prune against one store and asserts the two bounds that
// make million-block chains viable: heap stays flat (the tail ring is
// the only in-memory block state) and the segment count stays pinned
// near the snapshot horizon (pruning keeps up).
//
// Defaults are sized for tier-1 CI; the nightly soak workflow scales
// it up via environment:
//
//	REPCHAIN_SOAK_ROUNDS  rounds to drive (default 2000, nightly 100000)
//	REPCHAIN_SOAK_OUT     write a JSON metrics snapshot here
func TestSoakSegmentedStore(t *testing.T) {
	rounds := 2000
	if env := os.Getenv("REPCHAIN_SOAK_ROUNDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("REPCHAIN_SOAK_ROUNDS=%q: %v", env, err)
		}
		rounds = n
	}
	const (
		snapshotEvery = 500
		segmentBytes  = 256 << 10
	)
	dir := filepath.Join(t.TempDir(), "chain")
	fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: segmentBytes, TailBlocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs.Close() }()

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	baseHeap := ms.HeapAlloc

	var prev *Block
	maxSegments, pruned := 0, 0
	var heapPeak uint64
	for i := 1; i <= rounds; i++ {
		blk, err := NewBlock(prev, testRecords(t, 2, uint64(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Append(blk); err != nil {
			t.Fatalf("Append(%d) error = %v", i, err)
		}
		p := blk
		prev = &p
		if i%snapshotEvery == 0 {
			if _, err := fs.WriteSnapshot([]byte(fmt.Sprintf("state-%d", i))); err != nil {
				t.Fatalf("WriteSnapshot at %d: %v", i, err)
			}
			n, err := fs.Prune()
			if err != nil {
				t.Fatalf("Prune at %d: %v", i, err)
			}
			pruned += n
			if s := fs.Segments(); s > maxSegments {
				maxSegments = s
			}
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > heapPeak {
				heapPeak = ms.HeapAlloc
			}
		}
	}
	if fs.Height() != uint64(rounds) {
		t.Fatalf("Height() = %d, want %d", fs.Height(), rounds)
	}

	// Bounded RSS: the per-block cost must not accumulate. Allow a
	// fixed envelope (tail ring + offset indexes + test noise) that
	// does not scale with the round count.
	const heapEnvelope = 64 << 20
	if heapPeak > baseHeap+heapEnvelope {
		t.Fatalf("heap grew from %d to %d over %d rounds — block state is accumulating", baseHeap, heapPeak, rounds)
	}
	// Bounded disk: pruning must keep the live segment set near one
	// snapshot interval's worth of blocks, regardless of chain height.
	blockBytes := int64(len(prev.EncodeBytes())) + frameHeadSize
	segBound := int(2*int64(snapshotEvery)*blockBytes/segmentBytes) + 3
	if maxSegments > segBound {
		t.Fatalf("segment count peaked at %d (bound %d) — pruning is not keeping up", maxSegments, segBound)
	}
	if rounds > snapshotEvery && pruned == 0 {
		t.Fatal("no segments pruned over the whole soak")
	}

	// Recovery still works at the end of the soak.
	if err := VerifyChain(fs); err != nil {
		t.Fatalf("VerifyChain() error = %v", err)
	}

	if out := os.Getenv("REPCHAIN_SOAK_OUT"); out != "" {
		report := map[string]any{
			"rounds":          rounds,
			"height":          fs.Height(),
			"first_available": fs.FirstAvailable(),
			"segments_peak":   maxSegments,
			"segments_final":  fs.Segments(),
			"segments_pruned": pruned,
			"heap_base":       baseHeap,
			"heap_peak":       heapPeak,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
