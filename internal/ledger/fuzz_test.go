package ledger

import (
	"testing"
	"testing/quick"
)

// TestQuickDecodeNeverPanics feeds random byte strings to the block
// decoder: it must reject or accept gracefully, never panic, and any
// accepted block must re-encode to a decodable form.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		blk, err := DecodeBlockBytes(b)
		if err != nil {
			return true
		}
		// Extremely unlikely, but if random bytes decode, the block
		// must round trip.
		_, err = DecodeBlockBytes(blk.EncodeBytes())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeMutatedBlock flips one byte of a real block encoding:
// the result must either fail to decode or decode to a block whose
// hash differs (the mutation cannot be silent).
func TestQuickDecodeMutatedBlock(t *testing.T) {
	base, err := NewBlock(nil, testRecords(t, 3, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := base.EncodeBytes()
	want := base.Hash()
	f := func(pos uint16, bit uint8) bool {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		blk, err := DecodeBlockBytes(mut)
		if err != nil {
			return true
		}
		return blk.Hash() != want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
