package ledger

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repchain/internal/crypto"
)

// TestQuickDecodeNeverPanics feeds random byte strings to the block
// decoder: it must reject or accept gracefully, never panic, and any
// accepted block must re-encode to a decodable form.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		blk, err := DecodeBlockBytes(b)
		if err != nil {
			return true
		}
		// Extremely unlikely, but if random bytes decode, the block
		// must round trip.
		_, err = DecodeBlockBytes(blk.EncodeBytes())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeMutatedBlock flips one byte of a real block encoding:
// the result must either fail to decode or decode to a block whose
// hash differs (the mutation cannot be silent).
func TestQuickDecodeMutatedBlock(t *testing.T) {
	base, err := NewBlock(nil, testRecords(t, 3, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := base.EncodeBytes()
	want := base.Hash()
	f := func(pos uint16, bit uint8) bool {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		blk, err := DecodeBlockBytes(mut)
		if err != nil {
			return true
		}
		return blk.Hash() != want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSegmentOpen throws arbitrary bytes on disk as the newest chain
// segment and opens the store over it. Whatever the bytes are, open
// must either recover to a consistent store (verifiable chain, working
// Head/Get/Append) or fail with an error — never panic, never serve a
// chain that fails verification.
func FuzzSegmentOpen(f *testing.F) {
	// Seed with a genuine one-block segment, plus truncations and
	// header-only shapes.
	dir := f.TempDir()
	fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	recs := []Record{}
	b, err := NewBlock(nil, recs, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := fs.Append(b); err != nil {
		f.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:segHeaderSize])
	f.Add([]byte(segMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := filepath.Join(t.TempDir(), "chain")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 1 << 20})
		if err != nil {
			return // rejected: fine
		}
		defer func() { _ = fs.Close() }()
		if err := VerifyChain(fs); err != nil {
			t.Fatalf("open accepted a segment whose chain fails verification: %v", err)
		}
		h := fs.Height()
		if h > 0 {
			if _, err := fs.Head(); err != nil {
				t.Fatalf("Head() failed at height %d: %v", h, err)
			}
			if _, err := fs.Get(h); err != nil {
				t.Fatalf("Get(head) failed: %v", err)
			}
		}
	})
}

// FuzzSnapshotLoad drives the snapshot decoder and the open-time
// snapshot selection with arbitrary file contents: a corrupt snapshot
// must be skipped (never selected, never a panic) and the store must
// still open when the log itself is intact.
func FuzzSnapshotLoad(f *testing.F) {
	good := encodeSnapshot(Snapshot{Height: 3, Head: crypto.Sum([]byte("h")), App: []byte("state")})
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err == nil {
			// Anything that decodes must re-encode canonically.
			if _, err := decodeSnapshot(encodeSnapshot(s)); err != nil {
				t.Fatalf("decoded snapshot does not round trip: %v", err)
			}
		}
		dir := filepath.Join(t.TempDir(), "chain")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		// Drop the fuzzed bytes in as a named snapshot over an empty
		// log: open must only succeed if the snapshot validates, and a
		// validating snapshot decides the recovered height.
		if err := os.WriteFile(filepath.Join(dir, snapshotName(3)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, openErr := OpenFileStore(dir)
		if openErr != nil {
			return
		}
		defer func() { _ = fs.Close() }()
		snap, ok := fs.LatestSnapshot()
		if ok && (snap.Height != 3 || fs.Height() != 3) {
			t.Fatalf("accepted snapshot with height %d (store height %d), file named 3", snap.Height, fs.Height())
		}
	})
}
