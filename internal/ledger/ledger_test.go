package ledger

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repchain/internal/crypto"
	"repchain/internal/tx"
)

func testKey(t *testing.T, b byte) (crypto.PublicKey, crypto.PrivateKey) {
	t.Helper()
	seed := make([]byte, crypto.SeedSize)
	seed[0] = b
	pub, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func testRecords(t *testing.T, n int, start uint64) []Record {
	t.Helper()
	_, priv := testKey(t, 1)
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		signed := tx.Sign(tx.Transaction{
			Provider:  "provider/0",
			Seq:       start + uint64(i),
			Timestamp: int64(1000 + i),
			Kind:      "test/rec",
			Payload:   []byte(fmt.Sprintf("payload-%d", i)),
		}, priv)
		st := tx.StatusValid
		label := tx.LabelValid
		unchecked := false
		if i%3 == 2 {
			st = tx.StatusInvalid
			label = tx.LabelInvalid
			unchecked = true
		}
		recs = append(recs, Record{Signed: signed, Label: label, Status: st, Unchecked: unchecked})
	}
	return recs
}

func buildChain(t *testing.T, store Store, blocks, perBlock int) []Block {
	t.Helper()
	_, priv := testKey(t, 2)
	var prev *Block
	out := make([]Block, 0, blocks)
	for i := 0; i < blocks; i++ {
		b, err := NewBlock(prev, testRecords(t, perBlock, uint64(i*perBlock)), 0)
		if err != nil {
			t.Fatalf("NewBlock() error = %v", err)
		}
		b.SignAs("governor/0", priv)
		if err := store.Append(b); err != nil {
			t.Fatalf("Append(%d) error = %v", b.Serial, err)
		}
		out = append(out, b)
		prev = &out[len(out)-1]
	}
	return out
}

func TestBlockHashDeterministic(t *testing.T) {
	recs := testRecords(t, 3, 0)
	a, err := NewBlock(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlock(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal blocks hash differently")
	}
}

func TestBlockHashBindsContents(t *testing.T) {
	recs := testRecords(t, 3, 0)
	base, err := NewBlock(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	mutated := base
	mutated.Serial = 99
	if mutated.Hash() == base.Hash() {
		t.Fatal("serial not bound by hash")
	}
	mutated = base
	mutated.Records = base.Records[:2]
	if mutated.Hash() == base.Hash() {
		t.Fatal("records not bound by hash")
	}
	mutated = base
	mutated.PrevHash = crypto.Sum([]byte("other"))
	if mutated.Hash() == base.Hash() {
		t.Fatal("previous hash not bound by hash")
	}
	mutated = base
	mutated.Proposer = "governor/9"
	if mutated.Hash() == base.Hash() {
		t.Fatal("proposer not bound by hash")
	}
}

func TestBlockSignVerify(t *testing.T) {
	pub, priv := testKey(t, 3)
	b, err := NewBlock(nil, testRecords(t, 2, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SignAs("governor/1", priv)
	if err := b.VerifyProposer(pub); err != nil {
		t.Fatalf("VerifyProposer() error = %v", err)
	}
	// Tamper after signing.
	b.Serial = 42
	if err := b.VerifyProposer(pub); err == nil {
		t.Fatal("tampered block verified")
	}
}

func TestNewBlockEnforcesLimit(t *testing.T) {
	_, err := NewBlock(nil, testRecords(t, 5, 0), 4)
	if !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("NewBlock() error = %v, want ErrBlockTooLarge", err)
	}
	if _, err := NewBlock(nil, testRecords(t, 4, 0), 4); err != nil {
		t.Fatalf("NewBlock() at limit error = %v", err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	_, priv := testKey(t, 3)
	b, err := NewBlock(nil, testRecords(t, 4, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SignAs("governor/0", priv)
	got, err := DecodeBlockBytes(b.EncodeBytes())
	if err != nil {
		t.Fatalf("DecodeBlockBytes() error = %v", err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("round trip changed block hash")
	}
	if len(got.Records) != len(b.Records) {
		t.Fatal("round trip changed record count")
	}
	for i := range got.Records {
		if got.Records[i].Status != b.Records[i].Status ||
			got.Records[i].Unchecked != b.Records[i].Unchecked ||
			got.Records[i].Signed.ID() != b.Records[i].Signed.ID() {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlockBytes([]byte("not a block")); err == nil {
		t.Fatal("garbage decoded")
	}
	b, err := NewBlock(nil, testRecords(t, 2, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := b.EncodeBytes()
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeBlockBytes(enc[:cut]); err == nil {
			t.Fatalf("truncated block of %d bytes decoded", cut)
		}
	}
}

func TestMemoryStoreAppendGet(t *testing.T) {
	store := NewMemoryStore()
	blocks := buildChain(t, store, 5, 3)
	if store.Height() != 5 {
		t.Fatalf("Height() = %d, want 5", store.Height())
	}
	for _, want := range blocks {
		got, err := store.Get(want.Serial)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", want.Serial, err)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("Get(%d) returned different block", want.Serial)
		}
	}
	head, err := store.Head()
	if err != nil {
		t.Fatal(err)
	}
	if head.Serial != 5 {
		t.Fatalf("Head() serial = %d, want 5", head.Serial)
	}
}

func TestMemoryStoreGetMissing(t *testing.T) {
	store := NewMemoryStore()
	buildChain(t, store, 2, 1)
	for _, s := range []uint64{0, 3, 100} {
		if _, err := store.Get(s); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%d) error = %v, want ErrNotFound", s, err)
		}
	}
}

func TestMemoryStoreHeadEmpty(t *testing.T) {
	store := NewMemoryStore()
	if _, err := store.Head(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Head() error = %v, want ErrNotFound", err)
	}
}

func TestAppendRejectsSerialSkip(t *testing.T) {
	store := NewMemoryStore()
	blocks := buildChain(t, store, 1, 1)
	skip, err := NewBlock(&blocks[0], testRecords(t, 1, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	skip.Serial = 5 // No Skipping violation
	if err := store.Append(skip); !errors.Is(err, ErrBadSerial) {
		t.Fatalf("Append() error = %v, want ErrBadSerial", err)
	}
}

func TestAppendRejectsBadPrevHash(t *testing.T) {
	store := NewMemoryStore()
	buildChain(t, store, 1, 1)
	bad, err := NewBlock(nil, testRecords(t, 1, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	bad.Serial = 2
	bad.PrevHash = crypto.Sum([]byte("forged history")) // Chain Integrity violation
	if err := store.Append(bad); !errors.Is(err, ErrBadPrevHash) {
		t.Fatalf("Append() error = %v, want ErrBadPrevHash", err)
	}
}

func TestAppendRejectsNonZeroGenesisPrev(t *testing.T) {
	store := NewMemoryStore()
	b, err := NewBlock(nil, testRecords(t, 1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.PrevHash = crypto.Sum([]byte("x"))
	if err := store.Append(b); !errors.Is(err, ErrBadPrevHash) {
		t.Fatalf("Append() error = %v, want ErrBadPrevHash", err)
	}
}

func TestVerifyChainAcceptsGoodChain(t *testing.T) {
	store := NewMemoryStore()
	buildChain(t, store, 8, 4)
	if err := VerifyChain(store); err != nil {
		t.Fatalf("VerifyChain() error = %v", err)
	}
}

func TestVerifyChainEmptyOK(t *testing.T) {
	if err := VerifyChain(NewMemoryStore()); err != nil {
		t.Fatalf("VerifyChain(empty) error = %v", err)
	}
}

// corruptibleStore wraps MemoryStore to hand out tampered blocks,
// modelling a corrupted replica.
type corruptibleStore struct {
	*MemoryStore
	tamper func(b *Block)
	at     uint64
}

func (c *corruptibleStore) Get(s uint64) (Block, error) {
	b, err := c.MemoryStore.Get(s)
	if err != nil {
		return b, err
	}
	if s == c.at {
		c.tamper(&b)
	}
	return b, nil
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	tests := []struct {
		name   string
		tamper func(b *Block)
	}{
		{"record dropped", func(b *Block) { b.Records = b.Records[:1]; b.TxRoot = ComputeTxRoot(b.Records) }},
		{"txroot forged", func(b *Block) { b.TxRoot = crypto.Sum([]byte("x")) }},
		{"status flipped", func(b *Block) { b.Records[0].Status = tx.StatusInvalid; b.TxRoot = ComputeTxRoot(b.Records) }},
		{"serial rewritten", func(b *Block) { b.Serial = 9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mem := NewMemoryStore()
			buildChain(t, mem, 4, 3)
			store := &corruptibleStore{MemoryStore: mem, tamper: tt.tamper, at: 2}
			if err := VerifyChain(store); err == nil {
				t.Fatal("VerifyChain() accepted a tampered chain")
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.dat")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("OpenFileStore() error = %v", err)
	}
	blocks := buildChain(t, fs, 6, 2)
	if err := fs.Close(); err != nil {
		t.Fatalf("Close() error = %v", err)
	}

	// Reopen and verify every block survived.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen error = %v", err)
	}
	defer func() {
		if err := fs2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	if fs2.Height() != 6 {
		t.Fatalf("reopened Height() = %d, want 6", fs2.Height())
	}
	for _, want := range blocks {
		got, err := fs2.Get(want.Serial)
		if err != nil {
			t.Fatalf("Get(%d) error = %v", want.Serial, err)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("block %d changed across restart", want.Serial)
		}
	}
	if err := VerifyChain(fs2); err != nil {
		t.Fatalf("VerifyChain(reopened) error = %v", err)
	}
	// The chain must keep accepting appends after reload.
	next, err := NewBlock(&blocks[len(blocks)-1], testRecords(t, 1, 999), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(next); err != nil {
		t.Fatalf("Append() after reopen error = %v", err)
	}
}

func TestFileStoreRejectsBadAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.dat")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := fs.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	buildChain(t, fs, 1, 1)
	bad, err := NewBlock(nil, testRecords(t, 1, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	bad.Serial = 3
	if err := fs.Append(bad); !errors.Is(err, ErrBadSerial) {
		t.Fatalf("Append() error = %v, want ErrBadSerial", err)
	}
}

func TestFileStoreDetectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.dat")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	buildChain(t, fs, 2, 2)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte mid-segment: the damaged frame is followed by real
	// data, so it is corruption, not a torn tail, and open must fail —
	// naming the segment and offset so an operator can act on it.
	seg := filepath.Join(path, segmentName(1))
	if err := flipByte(seg, 20); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFileStore(path)
	if err == nil {
		t.Fatal("OpenFileStore() accepted a corrupted chain segment")
	}
	if !errors.Is(err, ErrCorruptChain) {
		t.Fatalf("OpenFileStore() error = %v, want ErrCorruptChain", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(seg)) || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("OpenFileStore() error %q does not name the segment and offset", err)
	}
}

func flipByte(path string, off int) error {
	data, err := readFile(path)
	if err != nil {
		return err
	}
	if off >= len(data) {
		off = len(data) - 1
	}
	data[off] ^= 0xff
	return writeFile(path, data)
}

func readFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// TestQuickChainIntegrity: appending any sequence of blocks built via
// NewBlock keeps VerifyChain green.
func TestQuickChainIntegrity(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		store := NewMemoryStore()
		var prev *Block
		for i, sz := range sizes {
			b, err := NewBlock(prev, testRecords(t, int(sz%5), uint64(i*10)), 0)
			if err != nil {
				return false
			}
			if err := store.Append(b); err != nil {
				return false
			}
			bb := b
			prev = &bb
		}
		return VerifyChain(store) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlockHash64(b *testing.B) {
	seed := make([]byte, crypto.SeedSize)
	_, priv, err := crypto.KeyFromSeed(seed)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{
			Signed: tx.Sign(tx.Transaction{Provider: "provider/0", Seq: uint64(i), Kind: "b", Payload: []byte("p")}, priv),
			Label:  tx.LabelValid,
			Status: tx.StatusValid,
		}
	}
	blk, err := NewBlock(nil, recs, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blk.Hash()
	}
}
