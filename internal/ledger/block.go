// Package ledger implements the paper's tamper-proof chain of blocks.
//
// A block B = (s, TXList, h) carries a serial number s, a list of
// provider-signed transactions with the governor's recorded statuses,
// and the hash h = H(B_prev) of the previous block (§3.1). Blocks have
// one-by-one increasing serial numbers and the chain satisfies:
//
//   - Agreement: one block per serial number;
//   - Chain Integrity: h' = H(B) links consecutive blocks under a
//     collision-resistant hash;
//   - No Skipping: a block is only retrievable once all predecessors
//     are.
//
// The package provides an in-memory store and an append-only file
// store behind a common Store interface, plus whole-chain
// verification.
package ledger

import (
	"errors"
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/tx"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrNotFound reports a retrieve for a serial number beyond the
	// chain head.
	ErrNotFound = errors.New("ledger: block not found")
	// ErrBadSerial reports an append whose serial number is not
	// head+1 (the No Skipping property).
	ErrBadSerial = errors.New("ledger: serial number out of order")
	// ErrBadPrevHash reports an append whose previous-hash field does
	// not match the head block (the Chain Integrity property).
	ErrBadPrevHash = errors.New("ledger: previous hash mismatch")
	// ErrBlockTooLarge reports a block exceeding the b_limit bound.
	ErrBlockTooLarge = errors.New("ledger: block exceeds transaction limit")
	// ErrCorruptChain reports a verification failure over a stored
	// chain.
	ErrCorruptChain = errors.New("ledger: chain verification failed")
	// ErrDecode reports a malformed block encoding.
	ErrDecode = errors.New("ledger: decode failed")
	// ErrPruned reports a retrieve for a block that was discarded
	// behind the snapshot horizon.
	ErrPruned = errors.New("ledger: block pruned behind snapshot")
)

// Record is one TXList entry: a provider-signed transaction together
// with the governor's recorded judgment. Algorithm 2 appends three
// shapes — tx (checked valid), (tx, valid) (checked after a -1
// label), and (tx, invalid, unchecked) — which all normalize to this
// struct.
type Record struct {
	// Signed is the provider envelope.
	Signed tx.SignedTx
	// Label is the label of the collector the governor drew for this
	// transaction (kept so that later argue() evidence can score every
	// reporting collector; the full report set is replayed from
	// governor state).
	Label tx.Label
	// Status is the governor's recorded judgment.
	Status tx.Status
	// Unchecked reports that the governor skipped verification and the
	// status is the conservative invalid marking of Algorithm 2
	// line 32.
	Unchecked bool
}

// Encode appends the canonical encoding of r to e.
func (r Record) Encode(e *codec.Encoder) {
	r.Signed.Encode(e)
	e.PutVarint(int64(r.Label))
	e.PutInt(int(r.Status))
	e.PutBool(r.Unchecked)
}

// DecodeRecord reads one Record from d.
func DecodeRecord(d *codec.Decoder) (Record, error) {
	s, err := tx.DecodeSignedTx(d)
	if err != nil {
		return Record{}, fmt.Errorf("record: %w", err)
	}
	lv, err := d.Varint()
	if err != nil {
		return Record{}, fmt.Errorf("record label: %w", err)
	}
	sv, err := d.Int()
	if err != nil {
		return Record{}, fmt.Errorf("record status: %w", err)
	}
	unchecked, err := d.Bool()
	if err != nil {
		return Record{}, fmt.Errorf("record unchecked: %w", err)
	}
	st := tx.Status(sv)
	if st != tx.StatusValid && st != tx.StatusInvalid {
		return Record{}, fmt.Errorf("record status %d: %w", sv, ErrDecode)
	}
	return Record{Signed: s, Label: tx.Label(lv), Status: st, Unchecked: unchecked}, nil
}

// Block is the paper's B = (s, TXList, h), extended with a Merkle
// commitment over the TXList, the proposing leader's identity, and the
// leader's signature (DESIGN.md §5 records the extensions).
type Block struct {
	// Serial is s, the one-by-one increasing block number starting
	// at 1.
	Serial uint64
	// Records is TXList.
	Records []Record
	// PrevHash is h = H(B_prev); ZeroHash in the genesis block.
	PrevHash crypto.Hash
	// TxRoot is the Merkle root over the encoded Records.
	TxRoot crypto.Hash
	// Proposer is the leading governor that assembled the block.
	Proposer identity.NodeID
	// Signature is the proposer's signature over the block hash.
	Signature []byte
}

// AppendTxRoot feeds each record's canonical encoding into mb in
// order. Proposers call it with the builder they fill while packing so
// the root is ready at commit time; enc is a scratch encoder reused
// across records.
func AppendTxRoot(mb *crypto.MerkleBuilder, enc *codec.Encoder, records []Record) {
	for _, r := range records {
		enc.Reset()
		r.Encode(enc)
		mb.Add(enc.Bytes())
	}
}

// ComputeTxRoot returns the Merkle root over the block's records.
func ComputeTxRoot(records []Record) crypto.Hash {
	mb := crypto.NewMerkleBuilder(len(records))
	enc := codec.GetEncoder(256)
	AppendTxRoot(mb, enc, records)
	enc.Release()
	return mb.Root()
}

// encodeHashable appends the canonical encoding of everything the block
// hash covers: serial, records, previous hash, transaction root, and
// proposer — but not the proposer signature, which signs the hash.
func (b Block) encodeHashable(e *codec.Encoder) {
	e.PutString("repchain/block/v1")
	e.PutUint64(b.Serial)
	e.PutInt(len(b.Records))
	for _, r := range b.Records {
		r.Encode(e)
	}
	e.PutRaw(b.PrevHash[:])
	e.PutRaw(b.TxRoot[:])
	e.PutString(string(b.Proposer))
}

// Hash returns H(B), the value the next block stores in its PrevHash
// field.
func (b Block) Hash() crypto.Hash {
	e := codec.GetEncoder(256 * (len(b.Records) + 1))
	b.encodeHashable(e)
	h := crypto.Sum(e.Bytes())
	e.Release()
	return h
}

// SignAs sets the proposer identity and signs the block hash.
func (b *Block) SignAs(proposer identity.NodeID, key crypto.PrivateKey) {
	b.Proposer = proposer
	h := b.Hash()
	b.Signature = key.Sign(h[:])
}

// VerifyProposer checks the proposer signature against pub. The check
// runs through the shared verification cache because every replica
// verifies the same proposer signature on the same block.
func (b Block) VerifyProposer(pub crypto.PublicKey) error {
	h := b.Hash()
	if err := crypto.CachedVerify(pub, h[:], b.Signature); err != nil {
		return fmt.Errorf("block %d proposer signature: %w", b.Serial, err)
	}
	return nil
}

// Encode appends the wire encoding of b to e.
func (b Block) Encode(e *codec.Encoder) {
	b.encodeHashable(e)
	e.PutBytes(b.Signature)
}

// EncodeBytes returns the standalone wire encoding of b.
func (b Block) EncodeBytes() []byte {
	e := codec.GetEncoder(256 * (len(b.Records) + 1))
	b.Encode(e)
	out := e.AppendTo(nil)
	e.Release()
	return out
}

// DecodeBlock reads one Block from d.
func DecodeBlock(d *codec.Decoder) (Block, error) {
	var b Block
	tag, err := d.String()
	if err != nil {
		return b, err
	}
	if tag != "repchain/block/v1" {
		return b, fmt.Errorf("block tag %q: %w", tag, ErrDecode)
	}
	if b.Serial, err = d.Uint64(); err != nil {
		return b, err
	}
	n, err := d.Int()
	if err != nil {
		return b, err
	}
	if n < 0 || n > 1<<20 {
		return b, fmt.Errorf("block record count %d: %w", n, ErrDecode)
	}
	b.Records = make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := DecodeRecord(d)
		if err != nil {
			return b, fmt.Errorf("block record %d: %w", i, err)
		}
		b.Records = append(b.Records, r)
	}
	prev, err := d.Raw(crypto.HashSize)
	if err != nil {
		return b, err
	}
	if b.PrevHash, err = crypto.HashFromBytes(prev); err != nil {
		return b, err
	}
	root, err := d.Raw(crypto.HashSize)
	if err != nil {
		return b, err
	}
	if b.TxRoot, err = crypto.HashFromBytes(root); err != nil {
		return b, err
	}
	prop, err := d.String()
	if err != nil {
		return b, err
	}
	b.Proposer = identity.NodeID(prop)
	if b.Signature, err = d.Bytes(); err != nil {
		return b, err
	}
	return b, nil
}

// DecodeBlockBytes decodes a standalone block encoding, requiring full
// consumption of buf.
func DecodeBlockBytes(buf []byte) (Block, error) {
	d := codec.NewDecoder(buf)
	b, err := DecodeBlock(d)
	if err != nil {
		return Block{}, err
	}
	if err := d.Expect(); err != nil {
		return Block{}, fmt.Errorf("block: %w", err)
	}
	return b, nil
}

// NewBlock assembles an unsigned block on top of prev (nil for
// genesis), computing the transaction root. limit is b_limit; zero
// means unlimited.
func NewBlock(prev *Block, records []Record, limit int) (Block, error) {
	return NewBlockWithRoot(prev, records, limit, ComputeTxRoot(records))
}

// NewBlockWithRoot is NewBlock for proposers that already fed the
// records through an incremental crypto.MerkleBuilder while packing.
// root must equal ComputeTxRoot(records); AppendTxRoot over the same
// record sequence guarantees it.
func NewBlockWithRoot(prev *Block, records []Record, limit int, root crypto.Hash) (Block, error) {
	if limit > 0 && len(records) > limit {
		return Block{}, fmt.Errorf("%d records with b_limit %d: %w", len(records), limit, ErrBlockTooLarge)
	}
	b := Block{
		Records: append([]Record(nil), records...),
		TxRoot:  root,
	}
	if prev == nil {
		b.Serial = 1
		b.PrevHash = crypto.ZeroHash
	} else {
		b.Serial = prev.Serial + 1
		b.PrevHash = prev.Hash()
	}
	return b, nil
}
