package ledger

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repchain/internal/crypto"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := Snapshot{
		Height: 42,
		Head:   crypto.Sum([]byte("head")),
		App:    []byte("application state"),
	}
	got, err := decodeSnapshot(encodeSnapshot(s))
	if err != nil {
		t.Fatalf("decodeSnapshot() error = %v", err)
	}
	if got.Height != s.Height || got.Head != s.Head || !bytes.Equal(got.App, s.App) {
		t.Fatalf("round trip changed snapshot: %+v != %+v", got, s)
	}
	// Empty app state is legal (a chain with no application payload).
	empty := Snapshot{Height: 1, Head: crypto.Sum([]byte("x"))}
	if _, err := decodeSnapshot(encodeSnapshot(empty)); err != nil {
		t.Fatalf("decodeSnapshot(empty app) error = %v", err)
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	enc := encodeSnapshot(Snapshot{Height: 7, Head: crypto.Sum([]byte("h")), App: []byte("state")})
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-3] }},
		{"flipped-body-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"flipped-crc", func(b []byte) []byte { b[13] ^= 0xff; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mangle(append([]byte(nil), enc...))
			if _, err := decodeSnapshot(data); err == nil {
				t.Fatal("decodeSnapshot() accepted damaged data")
			}
		})
	}
}

// TestKillDuringSnapshotKeepsPrevious is the crash-atomicity
// guarantee: however far a snapshot write got before the crash — a
// leftover temp file, a truncated rename target, a zero-length file —
// recovery must select the previous intact snapshot and never
// half-written state.
func TestKillDuringSnapshotKeepsPrevious(t *testing.T) {
	cases := []struct {
		name  string
		crash func(t *testing.T, dir string, nextHeight uint64)
	}{
		{"tmp-left-behind", func(t *testing.T, dir string, h uint64) {
			// Killed before the rename: only the temp file exists.
			tmp := filepath.Join(dir, snapshotName(h)+".tmp")
			if err := os.WriteFile(tmp, []byte("partial snapsho"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-snap", func(t *testing.T, dir string, h uint64) {
			// Simulates a non-atomic writer dying mid-file (or a disk
			// eating the tail): the .snap name exists but is cut short.
			full := encodeSnapshot(Snapshot{Height: h, Head: crypto.Sum([]byte("next")), App: []byte("next state")})
			if err := os.WriteFile(filepath.Join(dir, snapshotName(h)), full[:len(full)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-length-snap", func(t *testing.T, dir string, h uint64) {
			if err := os.WriteFile(filepath.Join(dir, snapshotName(h)), nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-snap-body", func(t *testing.T, dir string, h uint64) {
			full := encodeSnapshot(Snapshot{Height: h, Head: crypto.Sum([]byte("next")), App: []byte("next state")})
			full[len(full)-2] ^= 0xff
			if err := os.WriteFile(filepath.Join(dir, snapshotName(h)), full, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "chain")
			fs := openSmall(t, dir)
			blocks := buildChain(t, fs, 10, 2)
			if _, err := fs.WriteSnapshot([]byte("good state at 10")); err != nil {
				t.Fatal(err)
			}
			prev := blocks[len(blocks)-1]
			for i := 0; i < 2; i++ {
				b, err := NewBlock(&prev, testRecords(t, 1, uint64(700+i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.Append(b); err != nil {
					t.Fatal(err)
				}
				prev = b
			}
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			tc.crash(t, dir, 12)

			fs2 := openSmall(t, dir)
			defer func() { _ = fs2.Close() }()
			snap, ok := fs2.LatestSnapshot()
			if !ok {
				t.Fatal("no snapshot recovered")
			}
			if snap.Height != 10 || string(snap.App) != "good state at 10" {
				t.Fatalf("recovered snapshot (height %d, app %q), want the previous intact one", snap.Height, snap.App)
			}
			if fs2.Height() != 12 {
				t.Fatalf("Height() = %d, want 12", fs2.Height())
			}
			if tc.name != "tmp-left-behind" && fs2.Recovery().SnapshotsSkipped == 0 {
				t.Fatal("RecoveryInfo.SnapshotsSkipped = 0, want the damaged snapshot counted")
			}
			if err := VerifyChain(fs2); err != nil {
				t.Fatalf("VerifyChain() error = %v", err)
			}
		})
	}
}

func TestSnapshotKeepTrimsOldGenerations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs, err := OpenFileStoreOptions(dir, StoreOptions{SegmentBytes: 1024, SnapshotKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs.Close() }()
	blocks := buildChain(t, fs, 4, 1)
	prev := blocks[len(blocks)-1]
	for i := 0; i < 5; i++ {
		if _, err := fs.WriteSnapshot([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		b, err := NewBlock(&prev, testRecords(t, 1, uint64(300+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Append(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshot files on disk, want SnapshotKeep=2", len(snaps))
	}
	// The newest generation is the one recovery reports.
	snap, ok := fs.LatestSnapshot()
	if !ok || snap.Height != 8 || snap.App[0] != 4 {
		t.Fatalf("LatestSnapshot() = (height %d, app %v, %v), want height 8 app [4]", snap.Height, snap.App, ok)
	}
}

func TestWriteSnapshotOnEmptyStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chain")
	fs := openSmall(t, dir)
	snap, err := fs.WriteSnapshot([]byte("empty"))
	if err != nil {
		t.Fatalf("WriteSnapshot() on empty store error = %v", err)
	}
	if snap.Height != 0 || !snap.Head.IsZero() {
		t.Fatalf("empty-store snapshot = height %d head %v, want 0/zero", snap.Height, snap.Head)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2 := openSmall(t, dir)
	defer func() { _ = fs2.Close() }()
	if fs2.Height() != 0 {
		t.Fatalf("Height() = %d, want 0", fs2.Height())
	}
	buildChain(t, fs2, 2, 1)
}
