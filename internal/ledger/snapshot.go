package ledger

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repchain/internal/crypto"
)

// Snapshot is a durable recovery point: the chain height it was taken
// at, the hash of the block at that height (the anchor every replayed
// suffix must link from), and an opaque application payload — the
// engine stores the governor's reputation table, the stake vector, and
// the round counter there (node.GovernorState).
//
// On-disk layout of snapshot-<height>.snap (DESIGN.md §4g):
//
//	header:  8-byte magic "RPSN0001" | uint32 body length |
//	         uint32 CRC-32 (IEEE) of body
//	body:    uint64 height | 32-byte head hash | uint32 app length | app
//
// Snapshots are written to a .tmp file, fsynced, renamed into place,
// and the directory is fsynced — a crash at any point leaves either
// the previous snapshot set intact or the new file complete, never a
// half-written file that loads.
type Snapshot struct {
	// Height is the chain height the snapshot covers.
	Height uint64
	// Head is the hash of block Height (ZeroHash when Height is 0).
	Head crypto.Hash
	// App is the opaque application state captured at Height.
	App []byte
}

const snapMagic = "RPSN0001"

// snapshotName returns the file name for a snapshot at height h.
func snapshotName(h uint64) string {
	return fmt.Sprintf("snapshot-%020d.snap", h)
}

// parseSnapshotName extracts the height from a snapshot-<height>.snap
// file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".snap")
	if len(digits) != 20 {
		return 0, false
	}
	h, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return h, true
}

// encodeSnapshot renders the full snapshot file contents.
func encodeSnapshot(s Snapshot) []byte {
	body := make([]byte, 0, 8+crypto.HashSize+4+len(s.App))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], s.Height)
	body = append(body, u64[:]...)
	body = append(body, s.Head[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(s.App)))
	body = append(body, u32[:]...)
	body = append(body, s.App...)

	out := make([]byte, 0, 16+len(body))
	out = append(out, snapMagic...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(body)))
	out = append(out, u32[:]...)
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body))
	out = append(out, u32[:]...)
	return append(out, body...)
}

// decodeSnapshot parses and validates a snapshot file's contents.
func decodeSnapshot(data []byte) (Snapshot, error) {
	if len(data) < 16 || string(data[:8]) != snapMagic {
		return Snapshot{}, fmt.Errorf("snapshot magic: %w", ErrCorruptChain)
	}
	bodyLen := binary.BigEndian.Uint32(data[8:12])
	sum := binary.BigEndian.Uint32(data[12:16])
	body := data[16:]
	if uint32(len(body)) != bodyLen {
		return Snapshot{}, fmt.Errorf("snapshot body %d bytes, header claims %d: %w", len(body), bodyLen, ErrCorruptChain)
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Snapshot{}, fmt.Errorf("snapshot checksum mismatch: %w", ErrCorruptChain)
	}
	if len(body) < 8+crypto.HashSize+4 {
		return Snapshot{}, fmt.Errorf("snapshot body truncated: %w", ErrCorruptChain)
	}
	var s Snapshot
	s.Height = binary.BigEndian.Uint64(body[:8])
	head, err := crypto.HashFromBytes(body[8 : 8+crypto.HashSize])
	if err != nil {
		return Snapshot{}, err
	}
	s.Head = head
	appLen := binary.BigEndian.Uint32(body[8+crypto.HashSize:])
	app := body[8+crypto.HashSize+4:]
	if uint32(len(app)) != appLen {
		return Snapshot{}, fmt.Errorf("snapshot app state %d bytes, header claims %d: %w", len(app), appLen, ErrCorruptChain)
	}
	s.App = append([]byte(nil), app...)
	return s, nil
}

// writeSnapshotFile persists a snapshot atomically: temp file, fsync,
// rename, directory fsync.
func writeSnapshotFile(dir string, s Snapshot) error {
	path := filepath.Join(dir, snapshotName(s.Height))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot temp file: %w", err)
	}
	if _, err = f.Write(encodeSnapshot(s)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadLatestSnapshot walks the snapshot heights newest-first and
// returns the first one that validates. Half-written or corrupt files
// (a crash mid-snapshot before the atomic rename cannot produce one,
// but operators and disks can) are skipped and counted, never
// selected.
func loadLatestSnapshot(dir string, heights []uint64) (snap Snapshot, found bool, skipped int) {
	sort.Slice(heights, func(i, j int) bool { return heights[i] > heights[j] })
	for _, h := range heights {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(h)))
		if err != nil {
			skipped++
			continue
		}
		s, err := decodeSnapshot(data)
		if err != nil || s.Height != h {
			skipped++
			continue
		}
		return s, true, skipped
	}
	return Snapshot{}, false, skipped
}
