package ledger

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// On-disk layout of one chain segment (DESIGN.md §4g):
//
//	header:  8-byte magic "RPSG0001" + big-endian uint64 first serial
//	frames:  repeated [uint32 length | uint32 CRC-32 (IEEE) of payload | payload]
//
// A segment file is named chain-<first>.seg where <first> is the
// zero-padded serial of its first block, so a lexical directory sort
// is also the serial sort. Frames are appended strictly in serial
// order; frame i of a segment holds block first+i, which is why the
// offset index needs no per-frame serial field.
//
// Sealed segments (every segment except the newest) carry a sidecar
// chain-<first>.idx offset index:
//
//	header:  8-byte magic "RPIX0001"
//	body:    uint64 first serial | uint64 segment byte size |
//	         uint32 frame count | count × uint64 frame offsets
//	footer:  uint32 CRC-32 (IEEE) of the body
//
// The index is advisory: it only lets open skip re-scanning a sealed
// segment. A missing, corrupt, or size-mismatched index falls back to
// a frame scan and is rewritten at the next seal.
const (
	segMagic = "RPSG0001"
	idxMagic = "RPIX0001"

	segHeaderSize   = 16 // magic + first serial
	frameHeadSize   = 8  // length + CRC
	maxFramePayload = 1 << 28
)

// segmentName returns the file name for the segment whose first block
// has the given serial.
func segmentName(first uint64) string {
	return fmt.Sprintf("chain-%020d.seg", first)
}

func indexName(first uint64) string {
	return fmt.Sprintf("chain-%020d.idx", first)
}

// parseSegmentName extracts the first serial from a chain-<first>.seg
// file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "chain-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "chain-"), ".seg")
	if len(digits) != 20 {
		return 0, false
	}
	first, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return first, true
}

// segmentInfo is the in-memory per-segment offset index.
type segmentInfo struct {
	path    string
	first   uint64  // serial of the first frame
	offsets []int64 // byte offset of each frame header, in serial order
	size    int64   // current byte size of the segment file
	sealed  bool
}

func (s *segmentInfo) count() int { return len(s.offsets) }

// last returns the serial of the newest block in the segment; callers
// must check count() > 0 first.
func (s *segmentInfo) last() uint64 { return s.first + uint64(s.count()) - 1 }

// writeSegmentHeader starts a fresh segment file.
func writeSegmentHeader(w io.Writer, first uint64) error {
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.BigEndian.PutUint64(hdr[8:], first)
	_, err := w.Write(hdr[:])
	return err
}

// readSegmentHeader validates a segment file's header and returns its
// first serial.
func readSegmentHeader(r io.Reader, path string) (uint64, error) {
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("segment %s: header: %w", filepath.Base(path), ErrCorruptChain)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("segment %s: bad magic: %w", filepath.Base(path), ErrCorruptChain)
	}
	return binary.BigEndian.Uint64(hdr[8:]), nil
}

// appendFrame writes one length+CRC framed payload.
func appendFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeadSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameScanResult classifies why a segment scan stopped.
type frameScanResult int

const (
	scanEOF       frameScanResult = iota // clean end of segment
	scanTruncated                        // frame extends past end of file
	scanBadFrame                         // CRC or decode failure
)

// readFrame reads one frame. On success it returns the payload;
// payloadErr distinguishes a CRC mismatch from a clean read so the
// caller can apply its torn-tail policy.
func readFrame(r *bufio.Reader, verify bool) (payload []byte, n int64, res frameScanResult) {
	var hdr [frameHeadSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, scanEOF
		}
		return nil, 0, scanTruncated
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:])
	if length > maxFramePayload {
		return nil, frameHeadSize, scanBadFrame
	}
	if !verify {
		// Index-only scan: skip the payload without buffering or
		// checksumming it. Discard reports how many bytes it skipped,
		// so a short segment still surfaces as truncation.
		skipped, err := r.Discard(int(length))
		if err != nil || skipped != int(length) {
			return nil, frameHeadSize + int64(skipped), scanTruncated
		}
		return nil, frameHeadSize + int64(length), scanEOF
	}
	payload = make([]byte, length)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, frameHeadSize + int64(m), scanTruncated
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, frameHeadSize + int64(length), scanBadFrame
	}
	return payload, frameHeadSize + int64(length), scanEOF
}

// writeIndexFile writes the sidecar offset index for a sealed segment
// (tmp + rename so a crash never leaves a half-written index to trust).
func writeIndexFile(dir string, seg *segmentInfo) error {
	body := make([]byte, 0, 8+8+4+8*len(seg.offsets))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], seg.first)
	body = append(body, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(seg.size))
	body = append(body, u64[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(seg.offsets)))
	body = append(body, u32[:]...)
	for _, off := range seg.offsets {
		binary.BigEndian.PutUint64(u64[:], uint64(off))
		body = append(body, u64[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body))

	path := filepath.Join(dir, indexName(seg.first))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(idxMagic)); err == nil {
		if _, err2 := f.Write(body); err2 == nil {
			_, err = f.Write(u32[:])
		} else {
			err = err2
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadIndexFile reads a sealed segment's sidecar index. Any
// inconsistency — bad magic, CRC mismatch, first-serial mismatch, or a
// recorded size that disagrees with the segment file on disk — returns
// ok=false so the caller falls back to a frame scan.
func loadIndexFile(dir string, first uint64, segSize int64) (offsets []int64, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, indexName(first)))
	if err != nil || len(data) < 8+8+8+4+4 || string(data[:8]) != idxMagic {
		return nil, false
	}
	body, foot := data[8:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(foot) {
		return nil, false
	}
	if binary.BigEndian.Uint64(body[:8]) != first {
		return nil, false
	}
	if int64(binary.BigEndian.Uint64(body[8:16])) != segSize {
		return nil, false
	}
	count := int(binary.BigEndian.Uint32(body[16:20]))
	if count < 0 || len(body) != 20+8*count {
		return nil, false
	}
	offsets = make([]int64, count)
	prev := int64(segHeaderSize) - 1
	for i := 0; i < count; i++ {
		off := int64(binary.BigEndian.Uint64(body[20+8*i:]))
		if off <= prev || off >= segSize {
			return nil, false
		}
		offsets[i] = off
		prev = off
	}
	return offsets, true
}
