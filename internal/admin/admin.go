// Package admin serves a node's live telemetry over HTTP: Prometheus
// text metrics, a JSON metrics snapshot, health and readiness probes,
// transaction traces, the structured consensus event stream, and
// net/http/pprof. It is read-only and stdlib-only; repchain-node binds
// it behind -admin-addr and repchain-inspect scrapes it.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repchain/internal/events"
	"repchain/internal/metrics"
	"repchain/internal/trace"
)

// Config assembles an admin server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9180". A ":0" port
	// picks a free one; read it back from Server.Addr.
	Addr string
	// Registries are merged into one exposition. Counters and
	// histogram buckets with identical names sum across registries;
	// in practice registries carry disjoint name families.
	Registries []*metrics.Registry
	// Tracer backs /traces; nil serves an empty trace set. Its ring
	// occupancy is published as trace.spans / trace.capacity /
	// trace.dropped_total gauges at every metrics scrape, so silently
	// truncated traces are detectable from /metrics.
	Tracer *trace.Recorder
	// Events backs /events; nil serves an empty stream.
	Events *events.Log
	// Ready backs /readyz: return ok plus a short status line. Nil
	// means always ready.
	Ready func() (ok bool, detail string)
}

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds cfg.Addr and serves in a background goroutine.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", cfg.Addr, err)
	}
	// Ring-occupancy gauges live on the first registry and are
	// refreshed at scrape time, so they track the recorders without a
	// background goroutine.
	publishRings := func() {}
	if len(cfg.Registries) > 0 && cfg.Registries[0] != nil {
		reg := cfg.Registries[0]
		traceSpans := reg.Gauge("trace.spans")
		traceCap := reg.Gauge("trace.capacity")
		traceDropped := reg.Gauge("trace.dropped_total")
		eventsLen := reg.Gauge("events.len")
		eventsCap := reg.Gauge("events.capacity")
		eventsDropped := reg.Gauge("events.dropped_total")
		publishRings = func() {
			traceSpans.Set(float64(cfg.Tracer.Len()))
			traceCap.Set(float64(cfg.Tracer.Cap()))
			traceDropped.Set(float64(cfg.Tracer.Dropped()))
			eventsLen.Set(float64(cfg.Events.Len()))
			eventsCap.Set(float64(cfg.Events.Cap()))
			eventsDropped.Set(float64(cfg.Events.Dropped()))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		publishRings()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheusSnapshot(w, mergedSnapshot(cfg.Registries))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		publishRings()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(mergedSnapshot(cfg.Registries))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, detail := true, "ok"
		if cfg.Ready != nil {
			ok, detail = cfg.Ready()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Tracer.WriteJSONL(w, r.URL.Query().Get("tx"))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var f events.Filter
		f.Node = q.Get("node")
		if v := q.Get("round"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad round", http.StatusBadRequest)
				return
			}
			f.Round = n
		}
		if v := q.Get("after"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad after", http.StatusBadRequest)
				return
			}
			f.AfterSeq = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Events.WriteJSONL(w, f)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with a ":0" port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

func mergedSnapshot(regs []*metrics.Registry) metrics.Snapshot {
	var snap metrics.Snapshot
	snap.Merge(metrics.Snapshot{}) // allocate maps
	for _, r := range regs {
		if r != nil {
			snap.Merge(r.Snapshot())
		}
	}
	return snap
}
