package admin

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repchain/internal/events"
	"repchain/internal/metrics"
	"repchain/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("engine.rounds_total").Add(3)
	reg.CounterVec("screen.checked_total", "collector").With("0").Inc()
	rec := trace.NewRecorder(16)
	rec.Emit(trace.Span{Trace: "aaaabbbbcccc", Stage: trace.StageSign, Node: "provider/0"})
	var ready atomic.Bool

	srv, err := Start(Config{
		Addr:       "127.0.0.1:0",
		Registries: []*metrics.Registry{reg},
		Tracer:     rec,
		Ready:      func() (bool, string) { return ready.Load(), "waiting for quorum" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "waiting for quorum") {
		t.Fatalf("not-ready /readyz = %d %q", code, body)
	}
	ready.Store(true)
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("ready /readyz = %d", code)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"engine_rounds_total 3", `screen_checked_total{collector="0"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, body := get(t, base+"/metrics.json"); code != 200 || !strings.Contains(body, `"engine.rounds_total":3`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}

	if code, body := get(t, base+"/traces?tx=aaaabbbb"); code != 200 || !strings.Contains(body, `"stage":"sign"`) {
		t.Fatalf("/traces = %d %q", code, body)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof = %d", code)
	}
}

func TestServerEventsEndpoint(t *testing.T) {
	evlog := events.NewLog(16)
	evlog.Emit(events.TypeBlockCommitted, 1, "governor/0", slog.Uint64("serial", 1))
	evlog.Emit(events.TypeBlockCommitted, 2, "governor/1", slog.Uint64("serial", 2))
	evlog.Emit(events.TypeLeaderElected, 2, "governor/0")

	srv, err := Start(Config{Addr: "127.0.0.1:0", Events: evlog})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/events")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	evs, err := events.Replay(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("replayed %d events, want 3", len(evs))
	}

	if code, body := get(t, base+"/events?node=governor/1"); code != 200 || strings.Count(body, "\n") != 1 {
		t.Fatalf("node filter = %d %q", code, body)
	}
	if code, body := get(t, base+"/events?round=2"); code != 200 || strings.Count(body, "\n") != 2 {
		t.Fatalf("round filter = %d %q", code, body)
	}
	if code, body := get(t, base+"/events?after=2"); code != 200 || strings.Count(body, "\n") != 1 {
		t.Fatalf("after filter = %d %q", code, body)
	}
	if code, _ := get(t, base+"/events?after=zz"); code != http.StatusBadRequest {
		t.Fatalf("bad after param = %d, want 400", code)
	}
	if code, _ := get(t, base+"/events?round=zz"); code != http.StatusBadRequest {
		t.Fatalf("bad round param = %d, want 400", code)
	}
}

// TestServerRingGauges checks that each /metrics scrape publishes the
// observability rings' occupancy and drop gauges.
func TestServerRingGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder(2)
	rec.Emit(trace.Span{Trace: "aaaabbbbcccc", Stage: trace.StageSign})
	rec.Emit(trace.Span{Trace: "aaaabbbbcccc", Stage: trace.StageUpload})
	rec.Emit(trace.Span{Trace: "aaaabbbbcccc", Stage: trace.StageScreen}) // evicts one
	evlog := events.NewLog(8)
	evlog.Emit(events.TypeLeaderElected, 1, "governor/0")

	srv, err := Start(Config{
		Addr:       "127.0.0.1:0",
		Registries: []*metrics.Registry{reg},
		Tracer:     rec,
		Events:     evlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"trace_spans 2",
		"trace_capacity 2",
		"trace_dropped_total 1",
		"events_len 1",
		"events_capacity 8",
		"events_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerNilTracerAndReady(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("nil Ready should default to ready, got %d", code)
	}
	if code, body := get(t, base+"/traces"); code != 200 || strings.TrimSpace(body) != "" {
		t.Fatalf("nil tracer /traces = %d %q", code, body)
	}
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Fatal("empty registries should still expose /metrics")
	}
}
