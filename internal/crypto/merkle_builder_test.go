package crypto

import (
	"fmt"
	"testing"
)

// refBuildProof is the pre-builder proof construction: rebuild every
// level from the leaves and walk sibling positions. The incremental
// builder must reproduce it bit for bit.
func refBuildProof(leaves [][]byte, index int) MerkleProof {
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	proof := MerkleProof{Index: index}
	pos := index
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.RightSibling = append(proof.RightSibling, sib >= pos)

		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
		pos /= 2
	}
	return proof
}

func proofsEqual(a, b MerkleProof) bool {
	if a.Index != b.Index || len(a.Siblings) != len(b.Siblings) || len(a.RightSibling) != len(b.RightSibling) {
		return false
	}
	for i := range a.Siblings {
		if a.Siblings[i] != b.Siblings[i] || a.RightSibling[i] != b.RightSibling[i] {
			return false
		}
	}
	return true
}

func TestMerkleBuilderMatchesMerkleRoot(t *testing.T) {
	for n := 0; n <= 65; n++ {
		leaves := makeLeaves(n)
		b := NewMerkleBuilder(n)
		for _, l := range leaves {
			b.Add(l)
		}
		if b.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, b.Len())
		}
		if got, want := b.Root(), MerkleRoot(leaves); got != want {
			t.Fatalf("n=%d: builder root %s, MerkleRoot %s", n, got.Short(), want.Short())
		}
	}
}

func TestMerkleBuilderRootIsNonDestructive(t *testing.T) {
	leaves := makeLeaves(13)
	b := NewMerkleBuilder(0)
	for i, l := range leaves {
		b.Add(l)
		if got, want := b.Root(), MerkleRoot(leaves[:i+1]); got != want {
			t.Fatalf("after %d leaves: root %s, want %s", i+1, got.Short(), want.Short())
		}
	}
}

func TestMerkleBuilderProofMatchesReference(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := makeLeaves(n)
		b := NewMerkleBuilder(n)
		for _, l := range leaves {
			b.Add(l)
		}
		root := b.Root()
		for idx := 0; idx < n; idx++ {
			got, err := b.Proof(idx)
			if err != nil {
				t.Fatalf("n=%d idx=%d: %v", n, idx, err)
			}
			if want := refBuildProof(leaves, idx); !proofsEqual(got, want) {
				t.Fatalf("n=%d idx=%d: builder proof differs from reference", n, idx)
			}
			if !VerifyMerkleProof(root, leaves[idx], got) {
				t.Fatalf("n=%d idx=%d: proof does not verify", n, idx)
			}
		}
	}
}

func TestMerkleBuilderProofErrors(t *testing.T) {
	b := NewMerkleBuilder(0)
	if _, err := b.Proof(0); err != ErrEmptyTree {
		t.Fatalf("empty builder: %v", err)
	}
	b.Add([]byte("x"))
	for _, idx := range []int{-1, 1, 100} {
		if _, err := b.Proof(idx); err == nil {
			t.Fatalf("index %d: expected error", idx)
		}
	}
}

func TestMerkleBuilderResetReuse(t *testing.T) {
	b := NewMerkleBuilder(4)
	for round := 0; round < 4; round++ {
		n := 1 + round*7
		leaves := makeLeaves(n)
		b.Reset()
		for _, l := range leaves {
			b.Add(l)
		}
		if got, want := b.Root(), MerkleRoot(leaves); got != want {
			t.Fatalf("round %d (n=%d): root %s, want %s", round, n, got.Short(), want.Short())
		}
	}
	b.Reset()
	if got := b.Root(); got != ZeroHash {
		t.Fatalf("reset builder root %s, want zero", got.Short())
	}
}

func TestMerkleBuilderAddNoAllocsSteadyState(t *testing.T) {
	b := NewMerkleBuilder(0)
	leaf := []byte("steady-state leaf payload, fixed size")
	// Warm the level and scratch storage well past what the measured
	// runs will need.
	for i := 0; i < 2048; i++ {
		b.Add(leaf)
	}
	b.Reset()
	allocs := testing.AllocsPerRun(200, func() {
		if b.Len() >= 2048 {
			b.Reset()
		}
		b.Add(leaf)
	})
	if allocs != 0 {
		t.Fatalf("MerkleBuilder.Add allocates %.1f per op in steady state, want 0", allocs)
	}
}

func TestMerkleBuildStatsAdvance(t *testing.T) {
	before := MerkleBuildStats()
	b := NewMerkleBuilder(0)
	b.Add([]byte("a"))
	b.Add([]byte("b"))
	_ = b.Root()
	after := MerkleBuildStats()
	if after.Leaves-before.Leaves < 2 {
		t.Fatalf("leaf counter advanced %d, want >= 2", after.Leaves-before.Leaves)
	}
	if after.Roots-before.Roots < 1 {
		t.Fatalf("root counter advanced %d, want >= 1", after.Roots-before.Roots)
	}
}

func BenchmarkMerkleIncremental(b *testing.B) {
	leaves := makeLeaves(512)
	mb := NewMerkleBuilder(512)
	var root Hash
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Reset()
		for _, l := range leaves {
			mb.Add(l)
		}
		root = mb.Root()
	}
	_ = fmt.Sprintf("%v", root)
}
