package crypto

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batched Ed25519 verification (DESIGN.md §4f).
//
// A round presents signatures in natural batches — a drained mempool
// batch, one inbox of collector uploads, the endorsement set of a stake
// block, a governor's VRF ticket bundle. Verifying them one CachedVerify
// call at a time pays one cache lock round-trip and one key hash per
// signature and gives the scheduler no batch to work with. VerifyBatch
// classifies a whole batch under a single cache lock acquisition,
// coalesces duplicate (key, msg, sig) triples inside the batch, and then
// verifies only the residual unique misses — optionally across workers.
//
// Determinism: the verdict slice is per-item and exactly what
// CachedVerify would have returned item by item. There is no
// probabilistic aggregate check to fall back from: every residual miss
// is verified individually, so a bad signature is identified and
// attributed to the same index as the per-sig path by construction,
// at any worker count.

// BatchItem is one signature check submitted to VerifyBatch.
type BatchItem struct {
	// Pub is the claimed signer.
	Pub PublicKey
	// Msg is the signed byte string. It is only read (and hashed) during
	// the VerifyBatch call; callers may reuse the backing buffer after
	// the call returns.
	Msg []byte
	// Sig is the Ed25519 signature to check.
	Sig []byte
}

// batchSlot classifies one item during the single locked pass.
type batchSlot uint8

const (
	slotDone  batchSlot = iota // structural failure; verdict already set
	slotWait                   // cache hit: wait on the entry
	slotOwn                    // cache miss: this item verifies the entry
	slotAlias                  // duplicate of an earlier slotOwn item
)

// VerifyBatch checks every item and returns one verdict per item, in
// order. Each verdict is exactly what Verify(pub, msg, sig) would
// return: nil, ErrBadSignature, or a structural ErrBadInput error.
// Cache hits are answered without crypto work, duplicate triples within
// the batch are verified once, and fresh verdicts are inserted into the
// cache for later callers. Safe for concurrent use.
func (c *VerifyCache) VerifyBatch(items []BatchItem) []error {
	return c.VerifyBatchWorkers(items, 1)
}

// VerifyBatchWorkers is VerifyBatch with the residual unique
// verifications fanned out across up to workers goroutines. Verdicts
// are written to disjoint indices, so the result is identical at any
// worker count.
func (c *VerifyCache) VerifyBatchWorkers(items []BatchItem, workers int) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	c.batchCalls.Inc()
	c.batchItems.Add(int64(len(items)))

	kinds := make([]batchSlot, len(items))
	ents := make([]*verifyEntry, len(items))
	alias := make([]int, len(items))
	keys := make([]Hash, len(items))

	// Structural screening and key derivation happen outside the lock:
	// both mirror Verify and need no shared state.
	for i, it := range items {
		if len(it.Pub.k) != PublicKeySize || len(it.Sig) != SignatureSize {
			kinds[i] = slotDone
			errs[i] = it.Pub.Verify(it.Msg, it.Sig)
			continue
		}
		keys[i] = SumParts(it.Pub.k, it.Msg, it.Sig)
		kinds[i] = slotOwn
	}

	owned := c.classifyBatch(kinds, ents, alias, keys)

	// Verify the residual unique misses, each filling the in-flight
	// entry it installed. Counters match the per-sig path: every unique
	// verification is one miss.
	verifyOwned := func(i int) {
		it := items[i]
		ent := ents[i]
		ent.ok = it.Pub.Verify(it.Msg, it.Sig) == nil
		close(ent.ready)
		c.misses.Inc()
		c.batchVerified.Inc()
		errs[i] = ent.verdict()
	}
	if workers > len(owned) {
		workers = len(owned)
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers <= 1 {
		for _, i := range owned {
			verifyOwned(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(owned) {
						return
					}
					verifyOwned(owned[n])
				}
			}()
		}
		wg.Wait()
	}

	// Collect hits and in-batch duplicates. Both count as hits, exactly
	// as a coalesced waiter does on the per-sig path.
	for i := range items {
		switch kinds[i] {
		case slotWait:
			<-ents[i].ready
			c.hits.Inc()
			c.batchHits.Inc()
			errs[i] = ents[i].verdict()
		case slotAlias:
			c.hits.Inc()
			c.batchDeduped.Inc()
			errs[i] = errs[alias[i]]
		}
	}

	for _, err := range errs {
		if err != nil {
			c.batchFailed.Inc()
			break
		}
	}
	return errs
}

// classifyBatch runs the single locked classification pass: each
// structurally valid item becomes a cache hit (slotWait), a duplicate of
// an earlier miss in the same batch (slotAlias), or the owner of a fresh
// in-flight entry (slotOwn). It returns the owner indices in first-
// occurrence order.
func (c *VerifyCache) classifyBatch(kinds []batchSlot, ents []*verifyEntry, alias []int, keys []Hash) []int {
	var owned []int
	var firstOwner map[Hash]int
	c.mu.Lock()
	for i := range kinds {
		if kinds[i] == slotDone {
			continue
		}
		// In-batch duplicates are checked before the cache map: the
		// owner installed its in-flight entry during this same pass, so
		// a map hit alone cannot tell a pre-existing verdict from a
		// duplicate within the batch.
		if j, ok := firstOwner[keys[i]]; ok {
			kinds[i] = slotAlias
			alias[i] = j
			continue
		}
		if el, ok := c.entries[keys[i]]; ok {
			c.ll.MoveToFront(el)
			ents[i] = el.Value.(*verifyEntry)
			kinds[i] = slotWait
			continue
		}
		ent := &verifyEntry{key: keys[i], ready: make(chan struct{})}
		c.entries[keys[i]] = c.ll.PushFront(ent)
		ents[i] = ent
		if firstOwner == nil {
			firstOwner = make(map[Hash]int, len(kinds)-i)
		}
		firstOwner[keys[i]] = i
		owned = append(owned, i)
	}
	c.evictLocked()
	c.mu.Unlock()
	return owned
}

// BatchStats is a snapshot of the batch-path counters.
type BatchStats struct {
	// Calls counts VerifyBatch invocations with at least one item.
	Calls int64
	// Items counts signatures submitted through batches.
	Items int64
	// Hits counts batch items answered by an existing cache entry.
	Hits int64
	// Deduped counts duplicate triples coalesced within a single batch.
	Deduped int64
	// Verified counts unique signatures actually verified by batch
	// passes.
	Verified int64
	// Failed counts batches containing at least one failing item.
	Failed int64
}

// BatchStats returns the cumulative batch-path counters.
func (c *VerifyCache) BatchStats() BatchStats {
	return BatchStats{
		Calls:    c.batchCalls.Value(),
		Items:    c.batchItems.Value(),
		Hits:     c.batchHits.Value(),
		Deduped:  c.batchDeduped.Value(),
		Verified: c.batchVerified.Value(),
		Failed:   c.batchFailed.Value(),
	}
}

// VerifyBatch checks items through DefaultVerifyCache; see
// VerifyCache.VerifyBatch.
func VerifyBatch(items []BatchItem) []error {
	return DefaultVerifyCache.VerifyBatch(items)
}

// VerifyBatchWorkers checks items through DefaultVerifyCache with a
// worker fan-out; see VerifyCache.VerifyBatchWorkers.
func VerifyBatchWorkers(items []BatchItem, workers int) []error {
	return DefaultVerifyCache.VerifyBatchWorkers(items, workers)
}
