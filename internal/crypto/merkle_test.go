package crypto

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func makeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-%d", i))
	}
	return leaves
}

func TestMerkleRootEmpty(t *testing.T) {
	if MerkleRoot(nil) != ZeroHash {
		t.Fatal("empty tree root should be ZeroHash")
	}
}

func TestMerkleRootSingle(t *testing.T) {
	root := MerkleRoot([][]byte{[]byte("only")})
	if root == ZeroHash {
		t.Fatal("single leaf root should be nonzero")
	}
	if root == Sum([]byte("only")) {
		t.Fatal("leaf hashing must be domain separated from plain Sum")
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	a := MerkleRoot([][]byte{[]byte("x"), []byte("y")})
	b := MerkleRoot([][]byte{[]byte("y"), []byte("x")})
	if a == b {
		t.Fatal("reordering leaves should change the root")
	}
}

func TestMerkleRootContentSensitive(t *testing.T) {
	a := MerkleRoot(makeLeaves(5))
	leaves := makeLeaves(5)
	leaves[3] = []byte("tampered")
	if a == MerkleRoot(leaves) {
		t.Fatal("changing a leaf should change the root")
	}
}

func TestMerkleProofAllSizesAllIndices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := makeLeaves(n)
			root := MerkleRoot(leaves)
			for i := 0; i < n; i++ {
				proof, err := BuildMerkleProof(leaves, i)
				if err != nil {
					t.Fatalf("BuildMerkleProof(%d) error = %v", i, err)
				}
				if !VerifyMerkleProof(root, leaves[i], proof) {
					t.Fatalf("proof for leaf %d of %d failed", i, n)
				}
			}
		})
	}
}

func TestMerkleProofRejectsWrongLeaf(t *testing.T) {
	leaves := makeLeaves(8)
	root := MerkleRoot(leaves)
	proof, err := BuildMerkleProof(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyMerkleProof(root, []byte("not-a-member"), proof) {
		t.Fatal("proof verified for a non-member leaf")
	}
}

func TestMerkleProofRejectsWrongRoot(t *testing.T) {
	leaves := makeLeaves(8)
	proof, err := BuildMerkleProof(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyMerkleProof(Sum([]byte("bogus root")), leaves[2], proof) {
		t.Fatal("proof verified against wrong root")
	}
}

func TestMerkleProofRejectsTamperedPath(t *testing.T) {
	leaves := makeLeaves(8)
	root := MerkleRoot(leaves)
	proof, err := BuildMerkleProof(leaves, 5)
	if err != nil {
		t.Fatal(err)
	}
	proof.Siblings[0][0] ^= 0xff
	if VerifyMerkleProof(root, leaves[5], proof) {
		t.Fatal("tampered proof verified")
	}
}

func TestMerkleProofMismatchedLengths(t *testing.T) {
	leaves := makeLeaves(4)
	root := MerkleRoot(leaves)
	proof, err := BuildMerkleProof(leaves, 0)
	if err != nil {
		t.Fatal(err)
	}
	proof.RightSibling = proof.RightSibling[:len(proof.RightSibling)-1]
	if VerifyMerkleProof(root, leaves[0], proof) {
		t.Fatal("structurally invalid proof verified")
	}
}

func TestBuildMerkleProofErrors(t *testing.T) {
	if _, err := BuildMerkleProof(nil, 0); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("error = %v, want ErrEmptyTree", err)
	}
	leaves := makeLeaves(3)
	for _, idx := range []int{-1, 3, 100} {
		if _, err := BuildMerkleProof(leaves, idx); !errors.Is(err, ErrBadProofIndex) {
			t.Fatalf("index %d: error = %v, want ErrBadProofIndex", idx, err)
		}
	}
}

func TestQuickMerkleProofs(t *testing.T) {
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 {
			return true
		}
		idx := int(pick) % len(raw)
		root := MerkleRoot(raw)
		proof, err := BuildMerkleProof(raw, idx)
		if err != nil {
			return false
		}
		return VerifyMerkleProof(root, raw[idx], proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerkleRoot1024(b *testing.B) {
	leaves := makeLeaves(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MerkleRoot(leaves)
	}
}
