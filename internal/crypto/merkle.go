package crypto

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Merkle tree over transaction lists. The paper's block carries
// h = H(B_prev) for chain integrity; we additionally commit to the
// transaction list with a Merkle root so that light verification of a
// single transaction's inclusion is possible (documented extension,
// DESIGN.md §5).
//
// The tree uses domain-separated hashing (distinct leaf and node tags)
// to prevent second-preimage attacks that splice interior nodes in as
// leaves, and duplicates the final node on odd levels (Bitcoin-style).

var (
	// ErrEmptyTree reports a Merkle operation over zero leaves.
	ErrEmptyTree = errors.New("crypto: merkle tree has no leaves")
	// ErrBadProofIndex reports an out-of-range leaf index.
	ErrBadProofIndex = errors.New("crypto: merkle proof index out of range")
)

const (
	merkleLeafTag = 0x00
	merkleNodeTag = 0x01
)

func merkleLeaf(data []byte) Hash {
	buf := make([]byte, 1+len(data))
	buf[0] = merkleLeafTag
	copy(buf[1:], data)
	return Sum(buf)
}

func merkleNode(left, right Hash) Hash {
	var buf [1 + 2*HashSize]byte
	buf[0] = merkleNodeTag
	copy(buf[1:], left[:])
	copy(buf[1+HashSize:], right[:])
	return Sum(buf[:])
}

// MerkleRoot computes the root commitment over the given leaf payloads.
// An empty list yields ZeroHash, the conventional root of an empty
// block.
func MerkleRoot(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
	}
	return level[0]
}

// MerkleProof is an inclusion proof for one leaf: the sibling hashes
// from leaf to root and, per step, whether the sibling sits on the
// right.
type MerkleProof struct {
	// Siblings lists the sibling hash at each level, leaf-most first.
	Siblings []Hash
	// RightSibling[i] reports whether Siblings[i] is the right child at
	// level i.
	RightSibling []bool
	// Index is the leaf position the proof covers.
	Index int
}

// BuildMerkleProof constructs an inclusion proof for leaves[index]. It
// feeds the leaves through a MerkleBuilder and derives the proof from
// the builder's stored levels.
func BuildMerkleProof(leaves [][]byte, index int) (MerkleProof, error) {
	if len(leaves) == 0 {
		return MerkleProof{}, ErrEmptyTree
	}
	b := NewMerkleBuilder(len(leaves))
	for _, l := range leaves {
		b.Add(l)
	}
	return b.Proof(index)
}

// Incremental-builder accounting, exported as the merkle.incremental_*
// gauges.
var (
	merkleIncrementalLeaves atomic.Int64
	merkleIncrementalRoots  atomic.Int64
)

// MerkleStats is a snapshot of the incremental-builder counters.
type MerkleStats struct {
	// Leaves counts leaves fed through MerkleBuilder.Add.
	Leaves int64
	// Roots counts MerkleBuilder.Root computations.
	Roots int64
}

// MerkleBuildStats returns the cumulative incremental-builder counters.
func MerkleBuildStats() MerkleStats {
	return MerkleStats{
		Leaves: merkleIncrementalLeaves.Load(),
		Roots:  merkleIncrementalRoots.Load(),
	}
}

// MerkleBuilder computes the same commitment as MerkleRoot but
// incrementally: leaves are appended one at a time while a block is
// being packed, and the root is available in O(log n) once packing
// finishes, instead of re-hashing every leaf at commit.
//
// The builder stores one slice of completed nodes per level. Appending
// a leaf hashes it onto level 0; whenever a level's length becomes
// even, the new pair is combined and pushed to the level above, so at
// every moment level k holds the roots of the completed 2^k-leaf
// subtrees in order. Root folds the at-most-one dangling node per level
// with the odd-duplication rule, which reproduces MerkleRoot exactly
// (equivalence sketch in DESIGN.md §4f, exhaustive test in
// merkle_test.go).
//
// After a Reset the builder reuses its level and scratch storage, so
// steady-state Add performs no heap allocation. A builder is not safe
// for concurrent use.
type MerkleBuilder struct {
	// levels[k] holds the completed 2^k-subtree roots, in leaf order.
	levels [][]Hash
	// scratch is the reusable leaf-tagging buffer.
	scratch []byte
	// n is the number of leaves added since the last Reset.
	n int
}

// NewMerkleBuilder returns a builder with level-0 capacity preallocated
// for sizeHint leaves.
func NewMerkleBuilder(sizeHint int) *MerkleBuilder {
	b := &MerkleBuilder{scratch: make([]byte, 0, 256)}
	if sizeHint > 0 {
		b.levels = append(b.levels, make([]Hash, 0, sizeHint))
	}
	return b
}

// Reset discards all leaves but keeps the allocated levels and scratch
// buffer for reuse.
func (b *MerkleBuilder) Reset() {
	for i := range b.levels {
		b.levels[i] = b.levels[i][:0]
	}
	b.levels = b.levels[:0]
	b.n = 0
}

// Len reports the number of leaves added since the last Reset.
func (b *MerkleBuilder) Len() int { return b.n }

// Add appends one leaf payload to the tree.
func (b *MerkleBuilder) Add(leaf []byte) {
	b.scratch = append(b.scratch[:0], merkleLeafTag)
	b.scratch = append(b.scratch, leaf...)
	b.push(0, Sum(b.scratch))
	b.n++
	merkleIncrementalLeaves.Add(1)
}

// push appends a completed node to the given level, combining upward
// whenever the append completes a pair.
func (b *MerkleBuilder) push(level int, h Hash) {
	if level == len(b.levels) {
		if level < cap(b.levels) {
			// Reactivate a level truncated by Reset, keeping its
			// allocated node storage.
			b.levels = b.levels[:level+1]
		} else {
			b.levels = append(b.levels, nil)
		}
	}
	b.levels[level] = append(b.levels[level], h)
	if l := b.levels[level]; len(l)%2 == 0 {
		b.push(level+1, merkleNode(l[len(l)-2], l[len(l)-1]))
	}
}

// Root returns the Merkle root over the leaves added so far, ZeroHash
// for an empty builder. It does not modify the builder; more leaves may
// be added afterwards.
func (b *MerkleBuilder) Root() Hash {
	merkleIncrementalRoots.Add(1)
	if b.n == 0 {
		return ZeroHash
	}
	// Fold levels bottom-up. carry is the root of the trailing partial
	// subtree formed below the current level; a dangling (odd) stored
	// node absorbs it, and per the odd-duplication rule a dangling node
	// or carry without a partner pairs with itself.
	var carry Hash
	have := false
	for lvl, stored := range b.levels {
		odd := len(stored)%2 == 1
		switch {
		case odd && have:
			carry = merkleNode(stored[len(stored)-1], carry)
		case odd && lvl == len(b.levels)-1:
			// The top level always holds exactly one node; with no
			// carry pending it is the root itself.
			return stored[0]
		case odd:
			last := stored[len(stored)-1]
			carry = merkleNode(last, last)
			have = true
		case have:
			carry = merkleNode(carry, carry)
		}
	}
	return carry
}

// Proof returns an inclusion proof for the index-th leaf over the
// current builder contents, reusing the stored levels. The proof
// verifies against Root with VerifyMerkleProof.
func (b *MerkleBuilder) Proof(index int) (MerkleProof, error) {
	if b.n == 0 {
		return MerkleProof{}, ErrEmptyTree
	}
	if index < 0 || index >= b.n {
		return MerkleProof{}, fmt.Errorf("index %d of %d leaves: %w", index, b.n, ErrBadProofIndex)
	}
	// Replay the Root fold, recording per level the derived node — the
	// trailing-subtree root that a full level-by-level rebuild would
	// append after the stored nodes.
	derived := make([]Hash, len(b.levels))
	haveDerived := make([]bool, len(b.levels))
	var carry Hash
	have := false
	for lvl, stored := range b.levels {
		if have {
			derived[lvl] = carry
			haveDerived[lvl] = true
		}
		odd := len(stored)%2 == 1
		switch {
		case odd && have:
			carry = merkleNode(stored[len(stored)-1], carry)
		case odd && lvl == len(b.levels)-1:
			// Root is stored; nothing to derive above.
		case odd:
			last := stored[len(stored)-1]
			carry = merkleNode(last, last)
			have = true
		case have:
			carry = merkleNode(carry, carry)
		}
	}
	effLen := func(lvl int) int {
		if lvl >= len(b.levels) {
			return 1
		}
		n := len(b.levels[lvl])
		if haveDerived[lvl] {
			n++
		}
		return n
	}
	nodeAt := func(lvl, i int) Hash {
		if i < len(b.levels[lvl]) {
			return b.levels[lvl][i]
		}
		return derived[lvl]
	}
	proof := MerkleProof{Index: index}
	pos := index
	for lvl := 0; effLen(lvl) > 1; lvl++ {
		n := effLen(lvl)
		sib := pos ^ 1
		if sib >= n {
			sib = pos // odd level: duplicated node
		}
		proof.Siblings = append(proof.Siblings, nodeAt(lvl, sib))
		proof.RightSibling = append(proof.RightSibling, sib >= pos)
		pos /= 2
	}
	return proof, nil
}

// VerifyMerkleProof checks that leaf sits at proof.Index under root.
func VerifyMerkleProof(root Hash, leaf []byte, proof MerkleProof) bool {
	if len(proof.Siblings) != len(proof.RightSibling) {
		return false
	}
	h := merkleLeaf(leaf)
	for i, sib := range proof.Siblings {
		if proof.RightSibling[i] {
			h = merkleNode(h, sib)
		} else {
			h = merkleNode(sib, h)
		}
	}
	return h == root
}
