package crypto

import (
	"errors"
	"fmt"
)

// Merkle tree over transaction lists. The paper's block carries
// h = H(B_prev) for chain integrity; we additionally commit to the
// transaction list with a Merkle root so that light verification of a
// single transaction's inclusion is possible (documented extension,
// DESIGN.md §5).
//
// The tree uses domain-separated hashing (distinct leaf and node tags)
// to prevent second-preimage attacks that splice interior nodes in as
// leaves, and duplicates the final node on odd levels (Bitcoin-style).

var (
	// ErrEmptyTree reports a Merkle operation over zero leaves.
	ErrEmptyTree = errors.New("crypto: merkle tree has no leaves")
	// ErrBadProofIndex reports an out-of-range leaf index.
	ErrBadProofIndex = errors.New("crypto: merkle proof index out of range")
)

const (
	merkleLeafTag = 0x00
	merkleNodeTag = 0x01
)

func merkleLeaf(data []byte) Hash {
	buf := make([]byte, 1+len(data))
	buf[0] = merkleLeafTag
	copy(buf[1:], data)
	return Sum(buf)
}

func merkleNode(left, right Hash) Hash {
	var buf [1 + 2*HashSize]byte
	buf[0] = merkleNodeTag
	copy(buf[1:], left[:])
	copy(buf[1+HashSize:], right[:])
	return Sum(buf[:])
}

// MerkleRoot computes the root commitment over the given leaf payloads.
// An empty list yields ZeroHash, the conventional root of an empty
// block.
func MerkleRoot(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
	}
	return level[0]
}

// MerkleProof is an inclusion proof for one leaf: the sibling hashes
// from leaf to root and, per step, whether the sibling sits on the
// right.
type MerkleProof struct {
	// Siblings lists the sibling hash at each level, leaf-most first.
	Siblings []Hash
	// RightSibling[i] reports whether Siblings[i] is the right child at
	// level i.
	RightSibling []bool
	// Index is the leaf position the proof covers.
	Index int
}

// BuildMerkleProof constructs an inclusion proof for leaves[index].
func BuildMerkleProof(leaves [][]byte, index int) (MerkleProof, error) {
	if len(leaves) == 0 {
		return MerkleProof{}, ErrEmptyTree
	}
	if index < 0 || index >= len(leaves) {
		return MerkleProof{}, fmt.Errorf("index %d of %d leaves: %w", index, len(leaves), ErrBadProofIndex)
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	proof := MerkleProof{Index: index}
	pos := index
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos // odd level: duplicated node
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.RightSibling = append(proof.RightSibling, sib > pos || sib == pos)

		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// VerifyMerkleProof checks that leaf sits at proof.Index under root.
func VerifyMerkleProof(root Hash, leaf []byte, proof MerkleProof) bool {
	if len(proof.Siblings) != len(proof.RightSibling) {
		return false
	}
	h := merkleLeaf(leaf)
	for i, sib := range proof.Siblings {
		if proof.RightSibling[i] {
			h = merkleNode(h, sib)
		} else {
			h = merkleNode(sib, h)
		}
	}
	return h == root
}
