package crypto

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestVRFEvalVerify(t *testing.T) {
	pub, priv := mustKey(t, 20)
	alpha := VRFAlpha(Sum([]byte("prev")), 3, 1, 0)
	out := VRFEval(priv, alpha)
	if err := VRFVerify(pub, alpha, out); err != nil {
		t.Fatalf("VRFVerify() error = %v", err)
	}
}

func TestVRFDeterministic(t *testing.T) {
	_, priv := mustKey(t, 20)
	alpha := []byte("input")
	a, b := VRFEval(priv, alpha), VRFEval(priv, alpha)
	if a.Output != b.Output {
		t.Fatal("VRF output not deterministic")
	}
}

func TestVRFDistinctInputsDistinctOutputs(t *testing.T) {
	_, priv := mustKey(t, 20)
	a := VRFEval(priv, VRFAlpha(ZeroHash, 1, 0, 0))
	b := VRFEval(priv, VRFAlpha(ZeroHash, 1, 0, 1))
	if a.Output == b.Output {
		t.Fatal("distinct stake units produced identical VRF outputs")
	}
}

func TestVRFDistinctKeysDistinctOutputs(t *testing.T) {
	_, priv1 := mustKey(t, 20)
	_, priv2 := mustKey(t, 21)
	alpha := VRFAlpha(ZeroHash, 1, 0, 0)
	if VRFEval(priv1, alpha).Output == VRFEval(priv2, alpha).Output {
		t.Fatal("distinct keys produced identical VRF outputs")
	}
}

func TestVRFVerifyRejectsWrongKey(t *testing.T) {
	_, priv := mustKey(t, 20)
	other, _ := mustKey(t, 21)
	alpha := []byte("alpha")
	out := VRFEval(priv, alpha)
	if err := VRFVerify(other, alpha, out); !errors.Is(err, ErrBadProof) {
		t.Fatalf("VRFVerify() error = %v, want ErrBadProof", err)
	}
}

func TestVRFVerifyRejectsWrongAlpha(t *testing.T) {
	pub, priv := mustKey(t, 20)
	out := VRFEval(priv, []byte("alpha"))
	if err := VRFVerify(pub, []byte("beta"), out); !errors.Is(err, ErrBadProof) {
		t.Fatalf("VRFVerify() error = %v, want ErrBadProof", err)
	}
}

func TestVRFVerifyRejectsForgedOutput(t *testing.T) {
	pub, priv := mustKey(t, 20)
	alpha := []byte("alpha")
	out := VRFEval(priv, alpha)
	out.Output[0] ^= 0xff // claim a different output for a valid proof
	if err := VRFVerify(pub, alpha, out); !errors.Is(err, ErrBadProof) {
		t.Fatalf("VRFVerify() error = %v, want ErrBadProof", err)
	}
}

func TestVRFAlphaBindsAllFields(t *testing.T) {
	base := VRFAlpha(ZeroHash, 1, 2, 3)
	variants := [][]byte{
		VRFAlpha(Sum([]byte("other")), 1, 2, 3),
		VRFAlpha(ZeroHash, 9, 2, 3),
		VRFAlpha(ZeroHash, 1, 9, 3),
		VRFAlpha(ZeroHash, 1, 2, 9),
	}
	for i, v := range variants {
		if string(v) == string(base) {
			t.Fatalf("variant %d did not change alpha", i)
		}
	}
}

// TestVRFUniformity smoke-checks that output leading bytes are roughly
// uniform across many inputs: leader election fairness (stake
// proportionality) relies on this.
func TestVRFUniformity(t *testing.T) {
	_, priv := mustKey(t, 22)
	const n = 4096
	var ones int
	for i := 0; i < n; i++ {
		out := VRFEval(priv, VRFAlpha(ZeroHash, uint64(i), 0, 0))
		if out.Output[0]&1 == 1 {
			ones++
		}
	}
	// With n=4096 fair coin flips, deviation beyond 10% of n is
	// astronomically unlikely (> 12 sigma).
	if ones < n/2-n/10 || ones > n/2+n/10 {
		t.Fatalf("low bit bias: %d ones of %d", ones, n)
	}
}

func TestQuickVRFRoundTrip(t *testing.T) {
	pub, priv := mustKey(t, 23)
	f := func(alpha []byte) bool {
		out := VRFEval(priv, alpha)
		return VRFVerify(pub, alpha, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVRFEval(b *testing.B) {
	_, priv, err := KeyFromSeed(testSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	alpha := VRFAlpha(ZeroHash, 1, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VRFEval(priv, alpha)
	}
}

func BenchmarkVRFVerify(b *testing.B) {
	pub, priv, err := KeyFromSeed(testSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	alpha := VRFAlpha(ZeroHash, 1, 0, 0)
	out := VRFEval(priv, alpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VRFVerify(pub, alpha, out); err != nil {
			b.Fatal(err)
		}
	}
}
