package crypto

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testKey(t *testing.T, b byte) (PublicKey, PrivateKey) {
	t.Helper()
	seed := make([]byte, SeedSize)
	seed[0] = b
	pub, priv, err := KeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestVerifyCacheHitMissAccounting(t *testing.T) {
	pub, priv := testKey(t, 1)
	c := NewVerifyCache(16)
	msg := []byte("the round's signing bytes")
	sig := priv.Sign(msg)

	if err := c.Verify(pub, msg, sig); err != nil {
		t.Fatalf("first Verify() error = %v", err)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first lookup hits=%d misses=%d, want 0/1", h, m)
	}
	for i := 0; i < 4; i++ {
		if err := c.Verify(pub, msg, sig); err != nil {
			t.Fatalf("repeat Verify() error = %v", err)
		}
	}
	if h, m := c.Stats(); h != 4 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 4/1", h, m)
	}
	if got, want := c.HitRate(), 0.8; got != want {
		t.Fatalf("HitRate() = %v, want %v", got, want)
	}
}

func TestVerifyCacheCachesFailedVerdicts(t *testing.T) {
	pub, priv := testKey(t, 2)
	c := NewVerifyCache(16)
	msg := []byte("message")
	sig := priv.Sign(msg)
	sig[0] ^= 0xff // corrupt: structurally fine, cryptographically bad

	for i := 0; i < 3; i++ {
		if err := c.Verify(pub, msg, sig); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("lookup %d error = %v, want ErrBadSignature", i, err)
		}
	}
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1 — bad verdicts must be cached too", h, m)
	}
}

func TestVerifyCacheKeyCommitsToAllParts(t *testing.T) {
	pubA, privA := testKey(t, 3)
	pubB, _ := testKey(t, 4)
	c := NewVerifyCache(16)
	msg := []byte("shared message")
	sig := privA.Sign(msg)

	if err := c.Verify(pubA, msg, sig); err != nil {
		t.Fatal(err)
	}
	// Same msg+sig under a different key must NOT reuse A's verdict.
	if err := c.Verify(pubB, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-key lookup error = %v, want ErrBadSignature", err)
	}
	// Same key+sig over a different msg must not hit either.
	if err := c.Verify(pubA, []byte("other message"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-msg lookup error = %v, want ErrBadSignature", err)
	}
	if h, m := c.Stats(); h != 0 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 0/3 — distinct triples must miss", h, m)
	}
}

func TestVerifyCacheStructuralErrorsBypassCache(t *testing.T) {
	pub, priv := testKey(t, 5)
	c := NewVerifyCache(16)
	msg := []byte("message")
	if err := c.Verify(pub, msg, []byte("short")); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short-sig error = %v, want ErrBadInput", err)
	}
	if err := c.Verify(PublicKey{}, msg, priv.Sign(msg)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero-key error = %v, want ErrBadInput", err)
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/0 — structural failures must not touch the cache", h, m)
	}
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after structural failures", c.Len())
	}
}

func TestVerifyCacheEvictsLRU(t *testing.T) {
	pub, priv := testKey(t, 6)
	const capacity = 8
	c := NewVerifyCache(capacity)
	msgAt := func(i int) []byte { return []byte(fmt.Sprintf("msg-%d", i)) }
	for i := 0; i < 3*capacity; i++ {
		if err := c.Verify(pub, msgAt(i), priv.Sign(msgAt(i))); err != nil {
			t.Fatal(err)
		}
		if c.Len() > capacity {
			t.Fatalf("Len() = %d exceeds capacity %d", c.Len(), capacity)
		}
	}
	// The most recent entry survives; the oldest was evicted.
	last := 3*capacity - 1
	if err := c.Verify(pub, msgAt(last), priv.Sign(msgAt(last))); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Stats(); h != 1 {
		t.Fatalf("hits = %d, want 1 — newest entry must still be cached", h)
	}
	if err := c.Verify(pub, msgAt(0), priv.Sign(msgAt(0))); err != nil {
		t.Fatal(err)
	}
	if _, m := c.Stats(); m != 3*capacity+1 {
		t.Fatalf("misses = %d, want %d — oldest entry must have been evicted", m, 3*capacity+1)
	}
}

func TestVerifyCacheCoalescesConcurrentMisses(t *testing.T) {
	pub, priv := testKey(t, 7)
	c := NewVerifyCache(16)
	msg := []byte("hot message every governor checks")
	sig := priv.Sign(msg)

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			errs[g] = c.Verify(pub, msg, sig)
		}(g)
	}
	close(start)
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d error = %v", g, err)
		}
	}
	h, m := c.Stats()
	if m != 1 {
		t.Fatalf("misses = %d, want 1 — concurrent lookups of one triple must coalesce", m)
	}
	if h != goroutines-1 {
		t.Fatalf("hits = %d, want %d", h, goroutines-1)
	}
}

func TestVerifyCachePurge(t *testing.T) {
	pub, priv := testKey(t, 8)
	c := NewVerifyCache(16)
	msg := []byte("message")
	sig := priv.Sign(msg)
	if err := c.Verify(pub, msg, sig); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after Purge", c.Len())
	}
	if err := c.Verify(pub, msg, sig); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 — Purge keeps counters but drops verdicts", h, m)
	}
}

func TestCachedVerifyMatchesDirectVerify(t *testing.T) {
	pub, priv := testKey(t, 9)
	msg := []byte("public helper contract")
	sig := priv.Sign(msg)
	if err := CachedVerify(pub, msg, sig); err != nil {
		t.Fatalf("CachedVerify(valid) error = %v", err)
	}
	bad := append([]byte(nil), sig...)
	bad[5] ^= 1
	if err := CachedVerify(pub, msg, bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("CachedVerify(corrupt) error = %v, want ErrBadSignature", err)
	}
}
