package crypto

import "fmt"

// VRF implements the verifiable random function used by the
// proof-of-stake leader election (paper §3.4.3):
//
//	⟨hash, π⟩ ← VRF_g(round, governorIndex, stakeUnit)
//
// Construction. The paper cites the Micali–Rabin–Vadhan VRF; the Go
// standard library has no EC-VRF, so we substitute a
// signature-then-hash construction:
//
//	π      = Ed25519-Sign(sk, domainTag ‖ α)
//	output = SHA-256(π)
//
// Go's Ed25519 signing is deterministic (RFC 8032), so each (key,
// input) pair yields exactly one proof and one output; proofs are
// publicly verifiable against the signer's public key; and outputs are
// unpredictable without the secret key because they are hashes of an
// unforgeable signature. Ed25519 is not a strictly *unique* signature
// scheme — a signer with a modified implementation could grind
// non-canonical nonces — but the paper's threat model (§3.4.3) assumes
// governors "will not perform malicious behaviors rather than hiding
// transactions", under which determinism suffices. DESIGN.md records
// this substitution.
const vrfDomainTag = "repchain/vrf/v1\x00"

// VRFOutput bundles a VRF evaluation: the pseudorandom output and the
// proof that it was computed correctly.
type VRFOutput struct {
	// Output is the pseudorandom hash compared across stake units.
	Output Hash
	// Proof authenticates Output against the evaluator's public key.
	Proof []byte
}

// VRFProofMessage returns the exact byte string a VRF proof signs for
// input alpha: the domain tag followed by alpha. Batch verifiers use it
// to express proof checks as ordinary signature checks over the same
// bytes VRFVerify would build.
func VRFProofMessage(alpha []byte) []byte {
	msg := make([]byte, 0, len(vrfDomainTag)+len(alpha))
	msg = append(msg, vrfDomainTag...)
	msg = append(msg, alpha...)
	return msg
}

// VRFEval evaluates the VRF at input alpha.
func VRFEval(priv PrivateKey, alpha []byte) VRFOutput {
	proof := priv.Sign(VRFProofMessage(alpha))
	return VRFOutput{Output: Sum(proof), Proof: proof}
}

// VRFVerify checks that out was produced by the holder of pub at input
// alpha. It returns ErrBadProof if the proof does not verify or the
// output does not match the proof. The underlying signature check runs
// through the shared verification cache: every governor verifies every
// other governor's tickets, so each proof is re-checked m−1 times per
// round with identical inputs.
func VRFVerify(pub PublicKey, alpha []byte, out VRFOutput) error {
	if err := CachedVerify(pub, VRFProofMessage(alpha), out.Proof); err != nil {
		return fmt.Errorf("vrf proof: %w", ErrBadProof)
	}
	if Sum(out.Proof) != out.Output {
		return fmt.Errorf("vrf output does not match proof: %w", ErrBadProof)
	}
	return nil
}

// VRFAlpha builds the canonical leader-election input for a stake unit:
// the round number, the governor index, and the unit index, exactly the
// triple (r, j, u) of §3.4.3, bound to the previous block hash so that
// outputs cannot be precomputed before the chain reaches the round.
func VRFAlpha(prevHash Hash, round uint64, governorIndex, stakeUnit int) []byte {
	buf := make([]byte, 0, HashSize+3*10)
	buf = append(buf, prevHash[:]...)
	buf = appendUint64(buf, round)
	buf = appendUint64(buf, uint64(governorIndex))
	buf = appendUint64(buf, uint64(stakeUnit))
	return buf
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*(7-i))))
	}
	return b
}
