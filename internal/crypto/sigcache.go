package crypto

import (
	"container/list"
	"sync"

	"repchain/internal/metrics"
)

// VerifyCache memoizes Ed25519 verification verdicts keyed by
// H(pubkey ‖ msg ‖ sig). In a round every governor independently
// re-verifies the same collector uploads, provider argues, VRF tickets,
// and block proposals, so m governors pay m× for identical crypto; the
// cache collapses those to one verification shared by all.
//
// Properties:
//
//   - Sound: the key commits to the exact (key, message, signature)
//     triple with length-prefixed hashing, so a cached verdict — pass
//     or fail — is exactly what a fresh verification would return.
//     Structural errors (wrong key or signature length) are cheap and
//     never cached.
//   - Bounded: entries are kept in an LRU list capped at the configured
//     capacity.
//   - Coalescing: when several governors miss on the same triple
//     concurrently, only the first performs the verification; the rest
//     block until the verdict is published and count as hits, so the
//     crypto work is paid exactly once even under full parallelism.
//   - Accounted: hit/miss counters are metrics.Counter values exposed
//     via Stats and HitRate.
type VerifyCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List             // guarded by mu; front = most recently used
	entries map[Hash]*list.Element // guarded by mu

	hits   metrics.Counter
	misses metrics.Counter

	// Batch-path accounting (DESIGN.md §4f), exposed via BatchStats as
	// the sigcache.batch_* gauges.
	batchCalls    metrics.Counter
	batchItems    metrics.Counter
	batchHits     metrics.Counter
	batchDeduped  metrics.Counter
	batchVerified metrics.Counter
	batchFailed   metrics.Counter
}

// verifyEntry is one cached verdict. ready is closed once ok holds the
// verdict; waiters treat a pending entry like a hit because they do no
// crypto work themselves.
type verifyEntry struct {
	key   Hash
	ok    bool
	ready chan struct{}
}

// DefaultVerifyCacheSize is the entry capacity of caches built with a
// non-positive capacity, sized to hold several rounds of a busy chain.
const DefaultVerifyCacheSize = 1 << 13

// NewVerifyCache creates a cache bounded to capacity entries; a
// non-positive capacity uses DefaultVerifyCacheSize.
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheSize
	}
	return &VerifyCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[Hash]*list.Element, capacity),
	}
}

// Verify checks sig over msg against pub with the same contract as
// PublicKey.Verify, consulting the cache first. Safe for concurrent
// use.
func (c *VerifyCache) Verify(pub PublicKey, msg, sig []byte) error {
	// Structural failures mirror PublicKey.Verify and skip the cache:
	// they cost nothing to recompute.
	if len(pub.k) != PublicKeySize || len(sig) != SignatureSize {
		return pub.Verify(msg, sig)
	}
	key := SumParts(pub.k, msg, sig)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*verifyEntry)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		<-ent.ready // immediate when already filled
		c.hits.Inc()
		return ent.verdict()
	}
	ent := &verifyEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(ent)
	c.evictLocked()
	c.mu.Unlock()

	ent.ok = pub.Verify(msg, sig) == nil
	close(ent.ready)
	c.misses.Inc()
	return ent.verdict()
}

func (e *verifyEntry) verdict() error {
	if e.ok {
		return nil
	}
	return ErrBadSignature
}

// evictLocked trims the LRU tail down to capacity, skipping entries
// whose verification is still in flight (they are filled and closed by
// their owner; evicting them would strand waiters).
func (c *VerifyCache) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.cap; {
		prev := el.Prev()
		ent := el.Value.(*verifyEntry)
		select {
		case <-ent.ready:
			c.ll.Remove(el)
			delete(c.entries, ent.key)
		default: // pending: leave in place
		}
		el = prev
	}
}

// Stats returns the cumulative hit and miss counts. A coalesced waiter
// counts as a hit: it performed no verification of its own.
func (c *VerifyCache) Stats() (hits, misses int64) {
	return c.hits.Value(), c.misses.Value()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *VerifyCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the current number of cached verdicts.
func (c *VerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge empties the cache without resetting the counters.
func (c *VerifyCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drop only filled entries; in-flight ones still have waiters.
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*verifyEntry)
		select {
		case <-ent.ready:
			c.ll.Remove(el)
			delete(c.entries, ent.key)
		default:
		}
		el = next
	}
}

// DefaultVerifyCache is the process-wide cache shared by every
// governor (and any other verifier) in the process, the dedup store
// behind CachedVerify.
var DefaultVerifyCache = NewVerifyCache(DefaultVerifyCacheSize)

// CachedVerify verifies sig over msg against pub through
// DefaultVerifyCache. Protocol verify paths that are repeated
// identically across replicas (collector uploads, argues, VRF tickets,
// block and stake signatures) route through it so the m-fold redundant
// verification cost of a round is paid once.
func CachedVerify(pub PublicKey, msg, sig []byte) error {
	return DefaultVerifyCache.Verify(pub, msg, sig)
}
