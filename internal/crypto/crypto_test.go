package crypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testSeed(b byte) []byte {
	seed := make([]byte, SeedSize)
	for i := range seed {
		seed[i] = b
	}
	return seed
}

func mustKey(t *testing.T, b byte) (PublicKey, PrivateKey) {
	t.Helper()
	pub, priv, err := KeyFromSeed(testSeed(b))
	if err != nil {
		t.Fatalf("KeyFromSeed() error = %v", err)
	}
	return pub, priv
}

func TestSignVerifyRoundTrip(t *testing.T) {
	pub, priv := mustKey(t, 1)
	msg := []byte("a signed protocol message")
	sig := priv.Sign(msg)
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("Verify() error = %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	pub, priv := mustKey(t, 1)
	sig := priv.Sign([]byte("original"))
	err := pub.Verify([]byte("tampered"), sig)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify() error = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	_, priv := mustKey(t, 1)
	other, _ := mustKey(t, 2)
	msg := []byte("message")
	err := other.Verify(msg, priv.Sign(msg))
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify() error = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	pub, priv := mustKey(t, 1)
	tests := []struct {
		name string
		pub  PublicKey
		sig  []byte
	}{
		{"short signature", pub, []byte{1, 2, 3}},
		{"empty signature", pub, nil},
		{"zero public key", PublicKey{}, priv.Sign([]byte("m"))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.pub.Verify([]byte("m"), tt.sig); !errors.Is(err, ErrBadInput) {
				t.Fatalf("Verify() error = %v, want ErrBadInput", err)
			}
		})
	}
}

func TestKeyFromSeedDeterministic(t *testing.T) {
	pub1, _ := mustKey(t, 7)
	pub2, _ := mustKey(t, 7)
	if !pub1.Equal(pub2) {
		t.Fatal("same seed produced different keys")
	}
}

func TestKeyFromSeedRejectsBadLength(t *testing.T) {
	_, _, err := KeyFromSeed([]byte{1, 2, 3})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("KeyFromSeed() error = %v, want ErrBadInput", err)
	}
}

func TestGenerateKeyDistinct(t *testing.T) {
	pub1, _, err := GenerateKey(nil)
	if err != nil {
		t.Fatalf("GenerateKey() error = %v", err)
	}
	pub2, _, err := GenerateKey(nil)
	if err != nil {
		t.Fatalf("GenerateKey() error = %v", err)
	}
	if pub1.Equal(pub2) {
		t.Fatal("two generated keys are equal")
	}
}

func TestKeyByteRoundTrip(t *testing.T) {
	pub, priv := mustKey(t, 3)
	pub2, err := PublicKeyFromBytes(pub.Bytes())
	if err != nil {
		t.Fatalf("PublicKeyFromBytes() error = %v", err)
	}
	if !pub.Equal(pub2) {
		t.Fatal("public key round trip mismatch")
	}
	priv2, err := PrivateKeyFromBytes(priv.Bytes())
	if err != nil {
		t.Fatalf("PrivateKeyFromBytes() error = %v", err)
	}
	msg := []byte("round trip")
	if err := pub.Verify(msg, priv2.Sign(msg)); err != nil {
		t.Fatalf("restored key signature invalid: %v", err)
	}
}

func TestKeyFromBytesRejectsBadLength(t *testing.T) {
	if _, err := PublicKeyFromBytes([]byte{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("PublicKeyFromBytes() error = %v, want ErrBadInput", err)
	}
	if _, err := PrivateKeyFromBytes([]byte{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("PrivateKeyFromBytes() error = %v, want ErrBadInput", err)
	}
}

func TestHashOrdering(t *testing.T) {
	var a, b Hash
	b[HashSize-1] = 1
	if !a.Less(b) {
		t.Fatal("zero hash should sort before nonzero")
	}
	if b.Less(a) {
		t.Fatal("ordering not antisymmetric")
	}
	if a.Less(a) {
		t.Fatal("ordering not irreflexive")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare inconsistent with Less")
	}
}

func TestSumPartsBoundaries(t *testing.T) {
	// ("ab","c") and ("a","bc") must hash differently: the length
	// prefixes disambiguate boundaries.
	h1 := SumParts([]byte("ab"), []byte("c"))
	h2 := SumParts([]byte("a"), []byte("bc"))
	if h1 == h2 {
		t.Fatal("SumParts does not separate part boundaries")
	}
}

func TestHashFromBytes(t *testing.T) {
	h := Sum([]byte("x"))
	h2, err := HashFromBytes(h.Bytes())
	if err != nil {
		t.Fatalf("HashFromBytes() error = %v", err)
	}
	if h != h2 {
		t.Fatal("hash byte round trip mismatch")
	}
	if _, err := HashFromBytes([]byte{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("HashFromBytes() error = %v, want ErrBadInput", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	pub, _ := mustKey(t, 9)
	if pub.Fingerprint() != pub.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	other, _ := mustKey(t, 10)
	if pub.Fingerprint() == other.Fingerprint() {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestQuickSignVerify(t *testing.T) {
	_, priv := mustKey(t, 11)
	pub := priv.Public()
	f := func(msg []byte) bool {
		return pub.Verify(msg, priv.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTamperedSignatureFails(t *testing.T) {
	_, priv := mustKey(t, 12)
	pub := priv.Public()
	f := func(msg []byte, flip uint8) bool {
		sig := priv.Sign(msg)
		sig[int(flip)%len(sig)] ^= 0xff
		return pub.Verify(msg, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSign(b *testing.B) {
	_, priv, err := KeyFromSeed(testSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte("x"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		priv.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	pub, priv, err := KeyFromSeed(testSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte("x"), 256)
	sig := priv.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
