package crypto

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// batchFixture builds n distinct (key, msg, sig) items signed by a
// deterministic key set.
func batchFixture(t testing.TB, n, keys int) ([]BatchItem, []PrivateKey) {
	t.Helper()
	if keys <= 0 {
		keys = 1
	}
	privs := make([]PrivateKey, keys)
	pubs := make([]PublicKey, keys)
	for k := range privs {
		seed := make([]byte, SeedSize)
		seed[0] = byte(k + 1)
		seed[1] = byte(k >> 8)
		pub, priv, err := KeyFromSeed(seed)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		pubs[k], privs[k] = pub, priv
	}
	items := make([]BatchItem, n)
	for i := range items {
		k := i % keys
		msg := []byte(fmt.Sprintf("batch message %d", i))
		items[i] = BatchItem{Pub: pubs[k], Msg: msg, Sig: privs[k].Sign(msg)}
	}
	return items, privs
}

func TestVerifyBatchAllValid(t *testing.T) {
	items, _ := batchFixture(t, 64, 4)
	c := NewVerifyCache(256)
	errs := c.VerifyBatch(items)
	if len(errs) != len(items) {
		t.Fatalf("got %d verdicts for %d items", len(errs), len(items))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: unexpected error %v", i, err)
		}
	}
	bs := c.BatchStats()
	if bs.Calls != 1 || bs.Items != 64 || bs.Verified != 64 || bs.Hits != 0 || bs.Failed != 0 {
		t.Fatalf("stats %+v, want 1 call / 64 items / 64 verified / 0 hits / 0 failed", bs)
	}
}

// TestVerifyBatchSingleBadSig plants exactly one bad signature in a
// 512-item batch and checks that the offender is identified at the
// same index, with the same error classification, as the per-signature
// path produces.
func TestVerifyBatchSingleBadSig(t *testing.T) {
	const n, bad = 512, 137
	items, _ := batchFixture(t, n, 8)
	items[bad].Sig = append([]byte(nil), items[bad].Sig...)
	items[bad].Sig[5] ^= 0x40

	// Reference: the sequential per-signature path on a fresh cache.
	ref := NewVerifyCache(1024)
	want := make([]error, n)
	for i, it := range items {
		want[i] = ref.Verify(it.Pub, it.Msg, it.Sig)
	}

	c := NewVerifyCache(1024)
	got := c.VerifyBatch(items)
	for i := range items {
		if (got[i] == nil) != (want[i] == nil) {
			t.Fatalf("item %d: batch %v, sequential %v", i, got[i], want[i])
		}
		if got[i] != nil && !errors.Is(got[i], ErrBadSignature) {
			t.Fatalf("item %d: error %v, want ErrBadSignature", i, got[i])
		}
	}
	for i, err := range got {
		if (err != nil) != (i == bad) {
			t.Fatalf("item %d: error %v; only index %d should fail", i, err, bad)
		}
	}
	bs := c.BatchStats()
	if bs.Failed != 1 {
		t.Fatalf("batchFailed %d, want 1", bs.Failed)
	}
}

// TestVerifyBatchStructuralErrors checks that malformed keys and
// signatures fail identically to PublicKey.Verify, bypassing the cache.
func TestVerifyBatchStructuralErrors(t *testing.T) {
	items, _ := batchFixture(t, 4, 1)
	items[1].Sig = items[1].Sig[:10] // truncated signature
	items[2].Pub = PublicKey{}       // zero key
	errs := NewVerifyCache(16).VerifyBatch(items)
	for _, i := range []int{1, 2} {
		if errs[i] == nil || !errors.Is(errs[i], ErrBadInput) {
			t.Fatalf("item %d: error %v, want ErrBadInput", i, errs[i])
		}
	}
	for _, i := range []int{0, 3} {
		if errs[i] != nil {
			t.Fatalf("item %d: unexpected error %v", i, errs[i])
		}
	}
}

// TestVerifyBatchDeduplicates feeds duplicate (key, msg, sig) triples
// and checks that the duplicates coalesce onto one verification.
func TestVerifyBatchDeduplicates(t *testing.T) {
	base, _ := batchFixture(t, 8, 2)
	items := make([]BatchItem, 0, 24)
	for r := 0; r < 3; r++ {
		items = append(items, base...)
	}
	c := NewVerifyCache(64)
	errs := c.VerifyBatch(items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: unexpected error %v", i, err)
		}
	}
	bs := c.BatchStats()
	if bs.Verified != 8 {
		t.Fatalf("verified %d distinct triples, want 8", bs.Verified)
	}
	if bs.Deduped != 16 {
		t.Fatalf("deduped %d, want 16", bs.Deduped)
	}
	if _, misses := c.Stats(); misses != 8 {
		t.Fatalf("cache misses %d, want 8", misses)
	}
}

// TestVerifyBatchDeduplicatesFailure checks that duplicates of a bad
// triple all report the owner's error.
func TestVerifyBatchDeduplicatesFailure(t *testing.T) {
	items, _ := batchFixture(t, 2, 1)
	items[0].Sig = append([]byte(nil), items[0].Sig...)
	items[0].Sig[3] ^= 0x01
	items = append(items, items[0], items[1], items[0])
	errs := NewVerifyCache(16).VerifyBatch(items)
	for _, i := range []int{0, 2, 4} {
		if !errors.Is(errs[i], ErrBadSignature) {
			t.Fatalf("item %d: error %v, want ErrBadSignature", i, errs[i])
		}
	}
	for _, i := range []int{1, 3} {
		if errs[i] != nil {
			t.Fatalf("item %d: unexpected error %v", i, errs[i])
		}
	}
}

// TestVerifyBatchUsesCache pre-warms the cache through the sequential
// path and checks the batch path performs zero new verifications.
func TestVerifyBatchUsesCache(t *testing.T) {
	items, _ := batchFixture(t, 32, 4)
	c := NewVerifyCache(128)
	for _, it := range items {
		if err := c.Verify(it.Pub, it.Msg, it.Sig); err != nil {
			t.Fatalf("warm: %v", err)
		}
	}
	_, misses0 := c.Stats()
	errs := c.VerifyBatch(items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: unexpected error %v", i, err)
		}
	}
	if _, misses1 := c.Stats(); misses1 != misses0 {
		t.Fatalf("warm batch performed %d verifications, want 0", misses1-misses0)
	}
	bs := c.BatchStats()
	if bs.Hits != 32 || bs.Verified != 0 {
		t.Fatalf("stats %+v, want 32 hits / 0 verified", bs)
	}
}

// TestVerifyBatchInsertsIntoCache checks batch-verified triples land in
// the cache so a later sequential Verify hits.
func TestVerifyBatchInsertsIntoCache(t *testing.T) {
	items, _ := batchFixture(t, 16, 2)
	c := NewVerifyCache(64)
	c.VerifyBatch(items)
	hits0, misses0 := c.Stats()
	for i, it := range items {
		if err := c.Verify(it.Pub, it.Msg, it.Sig); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	hits1, misses1 := c.Stats()
	if misses1 != misses0 || hits1-hits0 != 16 {
		t.Fatalf("re-verify after batch: %d hits %d misses, want 16 hits 0 misses",
			hits1-hits0, misses1-misses0)
	}
}

// TestVerifyBatchWorkersDeterministic checks that the verdict vector is
// identical at every worker count, including with planted failures.
func TestVerifyBatchWorkersDeterministic(t *testing.T) {
	items, _ := batchFixture(t, 128, 8)
	for _, bad := range []int{3, 64, 127} {
		items[bad].Sig = append([]byte(nil), items[bad].Sig...)
		items[bad].Sig[0] ^= 0x80
	}
	ref := NewVerifyCache(512).VerifyBatchWorkers(items, 1)
	for _, w := range []int{2, 4, 8, 16} {
		got := NewVerifyCache(512).VerifyBatchWorkers(items, w)
		for i := range items {
			if (got[i] == nil) != (ref[i] == nil) {
				t.Fatalf("workers=%d item %d: %v, sequential %v", w, i, got[i], ref[i])
			}
		}
	}
}

// TestVerifyBatchConcurrent hammers one cache from many goroutines with
// overlapping batches; the race detector guards the locking discipline.
func TestVerifyBatchConcurrent(t *testing.T) {
	items, _ := batchFixture(t, 64, 4)
	c := NewVerifyCache(32) // small: forces eviction alongside in-flight entries
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := items[(g*8)%32 : (g*8)%32+32]
			for r := 0; r < 4; r++ {
				for i, err := range c.VerifyBatch(sub) {
					if err != nil {
						t.Errorf("goroutine %d item %d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestVerifyBatchEmpty(t *testing.T) {
	if errs := NewVerifyCache(16).VerifyBatch(nil); len(errs) != 0 {
		t.Fatalf("nil batch returned %d verdicts", len(errs))
	}
}

// BenchmarkVerifyBatch measures the batch path on all-miss batches of
// m signatures (the per-round shape: m uploads drained at once). The
// cache is purged every iteration so each batch performs its m real
// verifications; ns/op therefore tracks raw throughput while allocs/op
// tracks the classification overhead.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, m := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			items, _ := batchFixture(b, m, 8)
			c := NewVerifyCache(m * 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Purge()
				errs := c.VerifyBatch(items)
				if errs[0] != nil {
					b.Fatal(errs[0])
				}
			}
		})
	}
}

// BenchmarkVerifySequential is the per-signature baseline for the same
// all-miss workload.
func BenchmarkVerifySequential(b *testing.B) {
	for _, m := range []int{8, 64} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			items, _ := batchFixture(b, m, 8)
			c := NewVerifyCache(m * 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Purge()
				for _, it := range items {
					if err := c.Verify(it.Pub, it.Msg, it.Sig); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
