// Package crypto provides the cryptographic substrate of the protocol:
// SHA-256 hashing, Ed25519 signing keys, a verifiable random function
// built from deterministic Ed25519 signatures, and a Merkle tree over
// transaction lists.
//
// The paper assumes a standard PKI with digital signatures on every
// interaction, a public collision-resistant hash function H for chain
// integrity, and a VRF [Micali–Rabin–Vadhan] for stake-unit leader
// election. This package supplies all three from the Go standard
// library alone.
package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// HashSize is the byte length of protocol hashes (SHA-256).
const HashSize = sha256.Size

// Hash is a protocol hash value.
type Hash [HashSize]byte

// ZeroHash is the hash stored in the genesis block's previous-hash
// field.
var ZeroHash Hash

// Sum hashes data with the protocol hash function.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// SumParts hashes the concatenation of parts, each prefixed with its
// length so that boundaries are unambiguous.
func SumParts(parts ...[]byte) Hash {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// String returns the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns a copy of the hash contents.
func (h Hash) Bytes() []byte {
	out := make([]byte, HashSize)
	copy(out, h[:])
	return out
}

// HashFromBytes converts a byte slice into a Hash, rejecting wrong
// lengths.
func HashFromBytes(b []byte) (Hash, error) {
	var h Hash
	if len(b) != HashSize {
		return h, fmt.Errorf("hash length %d, want %d: %w", len(b), HashSize, ErrBadInput)
	}
	copy(h[:], b)
	return h, nil
}

// Less reports whether h sorts before other when both are interpreted
// as big-endian unsigned integers. Leader election picks the smallest
// VRF output with this ordering.
func (h Hash) Less(other Hash) bool {
	for i := 0; i < HashSize; i++ {
		if h[i] != other[i] {
			return h[i] < other[i]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 ordering h against other.
func (h Hash) Compare(other Hash) int {
	for i := 0; i < HashSize; i++ {
		if h[i] != other[i] {
			if h[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Sentinel errors for the package. Callers match with errors.Is.
var (
	// ErrBadInput reports structurally invalid key, signature, or hash
	// material.
	ErrBadInput = errors.New("crypto: bad input")
	// ErrBadSignature reports a signature that does not verify.
	ErrBadSignature = errors.New("crypto: signature verification failed")
	// ErrBadProof reports a VRF proof that does not verify.
	ErrBadProof = errors.New("crypto: vrf proof verification failed")
)

// Key sizes, re-exported so callers need not import crypto/ed25519.
const (
	PublicKeySize  = ed25519.PublicKeySize
	PrivateKeySize = ed25519.PrivateKeySize
	SignatureSize  = ed25519.SignatureSize
	SeedSize       = ed25519.SeedSize
)

// PublicKey identifies a node and verifies its signatures.
type PublicKey struct {
	k ed25519.PublicKey
}

// PrivateKey signs on behalf of a node.
type PrivateKey struct {
	k ed25519.PrivateKey
}

// GenerateKey creates a fresh keypair. If rng is nil the cryptographic
// source crypto/rand.Reader is used. Tests pass a deterministic reader.
func GenerateKey(rng io.Reader) (PublicKey, PrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return PublicKey{}, PrivateKey{}, fmt.Errorf("generate ed25519 key: %w", err)
	}
	return PublicKey{k: pub}, PrivateKey{k: priv}, nil
}

// KeyFromSeed derives a keypair deterministically from a 32-byte seed.
// Simulation harnesses use it to create reproducible node identities.
func KeyFromSeed(seed []byte) (PublicKey, PrivateKey, error) {
	if len(seed) != SeedSize {
		return PublicKey{}, PrivateKey{}, fmt.Errorf("seed length %d, want %d: %w", len(seed), SeedSize, ErrBadInput)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return PublicKey{}, PrivateKey{}, fmt.Errorf("unexpected public key type: %w", ErrBadInput)
	}
	return PublicKey{k: pub}, PrivateKey{k: priv}, nil
}

// Public returns the verifying key for priv.
func (priv PrivateKey) Public() PublicKey {
	pub, ok := priv.k.Public().(ed25519.PublicKey)
	if !ok {
		return PublicKey{}
	}
	return PublicKey{k: pub}
}

// Sign produces a deterministic Ed25519 signature over msg.
func (priv PrivateKey) Sign(msg []byte) []byte {
	return ed25519.Sign(priv.k, msg)
}

// IsZero reports whether the key is uninitialized.
func (priv PrivateKey) IsZero() bool { return len(priv.k) == 0 }

// Verify checks sig over msg. It returns ErrBadSignature when the
// signature is invalid and ErrBadInput when the material is malformed.
func (pub PublicKey) Verify(msg, sig []byte) error {
	if len(pub.k) != PublicKeySize {
		return fmt.Errorf("public key length %d: %w", len(pub.k), ErrBadInput)
	}
	if len(sig) != SignatureSize {
		return fmt.Errorf("signature length %d: %w", len(sig), ErrBadInput)
	}
	if !ed25519.Verify(pub.k, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Equal reports whether two public keys are the same key, in constant
// time.
func (pub PublicKey) Equal(other PublicKey) bool {
	if len(pub.k) != len(other.k) {
		return false
	}
	return subtle.ConstantTimeCompare(pub.k, other.k) == 1
}

// IsZero reports whether the key is uninitialized.
func (pub PublicKey) IsZero() bool { return len(pub.k) == 0 }

// Bytes returns a copy of the raw public key.
func (pub PublicKey) Bytes() []byte {
	out := make([]byte, len(pub.k))
	copy(out, pub.k)
	return out
}

// String returns the public key as lowercase hex.
func (pub PublicKey) String() string { return hex.EncodeToString(pub.k) }

// Fingerprint returns the SHA-256 hash of the public key, used as a
// stable node identifier.
func (pub PublicKey) Fingerprint() Hash { return Sum(pub.k) }

// PublicKeyFromBytes parses a raw 32-byte Ed25519 public key.
func PublicKeyFromBytes(b []byte) (PublicKey, error) {
	if len(b) != PublicKeySize {
		return PublicKey{}, fmt.Errorf("public key length %d, want %d: %w", len(b), PublicKeySize, ErrBadInput)
	}
	k := make(ed25519.PublicKey, PublicKeySize)
	copy(k, b)
	return PublicKey{k: k}, nil
}

// PrivateKeyFromBytes parses a raw 64-byte Ed25519 private key.
func PrivateKeyFromBytes(b []byte) (PrivateKey, error) {
	if len(b) != PrivateKeySize {
		return PrivateKey{}, fmt.Errorf("private key length %d, want %d: %w", len(b), PrivateKeySize, ErrBadInput)
	}
	k := make(ed25519.PrivateKey, PrivateKeySize)
	copy(k, b)
	return PrivateKey{k: k}, nil
}

// Bytes returns a copy of the raw private key.
func (priv PrivateKey) Bytes() []byte {
	out := make([]byte, len(priv.k))
	copy(out, priv.k)
	return out
}
