package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// mempoolConfig enables the sharded mempool with a block limit small
// enough that multi-round carryover actually happens in the traces.
func mempoolConfig() Config {
	cfg := defaultConfig()
	cfg.MempoolShards = 4
	cfg.MempoolShardCap = 64
	cfg.BlockLimit = 8
	return cfg
}

// runMempoolTrace mirrors runTrace with the sharded mempool enabled:
// submissions are staged, drained in (shard, seq) order, and capped at
// BlockLimit per round, so every round after the first screens a mix of
// fresh and carried-over transactions.
func runMempoolTrace(t *testing.T, seed int64, workers, rounds int) roundTrace {
	t.Helper()
	cfg := mempoolConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Stakes = []uint64{3, 2, 1}
	e := newTestEngine(t, cfg)
	var tr roundTrace
	for r := 0; r < rounds; r++ {
		submitRound(t, e, 12, r, 3)
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("seed %d workers %d round %d: %v", seed, workers, r, err)
		}
		tr.hashes = append(tr.hashes, res.Block.Hash())
		tr.leaders = append(tr.leaders, res.Leader)
	}
	tr.stakes = e.StakeLedger().Snapshot()
	for j := 0; j < e.Governors(); j++ {
		tr.snapshots = append(tr.snapshots, e.Governor(j).Table().Snapshot())
	}
	return tr
}

// TestMempoolParallelDeterminism extends the determinism gate to the
// sharded, block-limited configuration: drain order is a pure function
// of the submission sequence, so traces stay byte-identical at any
// worker count even while the mempool carries backlog across rounds.
func TestMempoolParallelDeterminism(t *testing.T) {
	const rounds = 5
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := runMempoolTrace(t, seed, 1, rounds)
			got := runMempoolTrace(t, seed, 4, rounds)
			for r := range want.hashes {
				if got.hashes[r] != want.hashes[r] {
					t.Fatalf("workers=4 round %d block hash %s, sequential %s",
						r, got.hashes[r].Short(), want.hashes[r].Short())
				}
				if got.leaders[r] != want.leaders[r] {
					t.Fatalf("workers=4 round %d leader %d, sequential %d",
						r, got.leaders[r], want.leaders[r])
				}
			}
			for j := range want.snapshots {
				if !bytes.Equal(got.snapshots[j], want.snapshots[j]) {
					t.Fatalf("workers=4 governor %d reputation snapshot diverged", j)
				}
			}
		})
	}
}

// TestMempoolBackpressure pins the ErrBacklog contract: a full shard
// rejects before the provider signs anything, a round drains the shard,
// and the retried submission then succeeds — with no gap or reuse in
// the provider's sequence numbers.
func TestMempoolBackpressure(t *testing.T) {
	cfg := mempoolConfig()
	cfg.MempoolShardCap = 2
	e := newTestEngine(t, cfg)
	providers := e.Roster().Topology.Providers()
	// With 4 providers and 4 shards, provider 0 alone fills shard 0.
	var lastSeq uint64
	for i := 0; i < 2; i++ {
		signed, err := e.SubmitTx(0, "test/tx", payloadFor(true, i), true)
		if err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
		lastSeq = signed.Tx.Seq
	}
	_, err := e.SubmitTx(0, "test/tx", payloadFor(true, 99), true)
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("submit to full shard error = %v, want ErrBacklog", err)
	}
	// Sibling shards are unaffected.
	if providers > 1 {
		if _, err := e.SubmitTx(1, "test/tx", payloadFor(true, 3), true); err != nil {
			t.Fatalf("sibling shard submit: %v", err)
		}
	}
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
	if e.MempoolDepth() != 0 {
		t.Fatalf("MempoolDepth() = %d after drain, want 0", e.MempoolDepth())
	}
	signed, err := e.SubmitTx(0, "test/tx", payloadFor(true, 100), true)
	if err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	// The rejected submission must not have consumed a sequence number:
	// a leak here would fork provider state across retry paths.
	if signed.Tx.Seq != lastSeq+1 {
		t.Fatalf("provider seq %d after rejected submit, want %d (no gap)", signed.Tx.Seq, lastSeq+1)
	}
}

// TestMempoolCarryover checks that a drain capped at BlockLimit leaves
// the tail queued and that later rounds commit it.
func TestMempoolCarryover(t *testing.T) {
	cfg := mempoolConfig()
	cfg.BlockLimit = 4
	e := newTestEngine(t, cfg)
	submitRound(t, e, 10, 0, 0)
	if e.MempoolDepth() != 10 {
		t.Fatalf("MempoolDepth() = %d, want 10", e.MempoolDepth())
	}
	res, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Block.Records); n != 4 {
		t.Fatalf("round 1 committed %d records, want BlockLimit=4", n)
	}
	if e.MempoolDepth() != 6 {
		t.Fatalf("MempoolDepth() = %d after capped drain, want 6", e.MempoolDepth())
	}
	committed := 4
	for r := 0; r < 3 && e.MempoolDepth() > 0; r++ {
		res, err := e.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		committed += len(res.Block.Records)
	}
	if committed != 10 {
		t.Fatalf("committed %d of 10 submissions across rounds", committed)
	}
}

// TestEngineClosed pins ErrClosed on both the submit and round paths.
func TestEngineClosed(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close() = %v, want idempotent nil", err)
	}
	if _, err := e.SubmitTx(0, "test/tx", payloadFor(true, 0), true); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitTx after Close = %v, want ErrClosed", err)
	}
	if _, err := e.RunRound(); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunRound after Close = %v, want ErrClosed", err)
	}
}

// TestRunRoundCtxCancel checks the documented safe-abort contract: a
// pre-cancelled context stops the round before any state changes, and
// the engine commits the staged traffic intact on the next (uncancelled)
// round.
func TestRunRoundCtxCancel(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	ids := submitRound(t, e, 8, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunRoundCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunRoundCtx = %v, want context.Canceled", err)
	}
	if e.Round() != 0 {
		t.Fatalf("round counter advanced to %d on cancelled entry", e.Round())
	}
	res, err := e.RunRoundCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Block.Records) != len(ids) {
		t.Fatalf("post-cancel round committed %d records, want %d", len(res.Block.Records), len(ids))
	}
}

// TestNewMempoolValidation covers the new config fields' validation.
func TestNewMempoolValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative shards", func(c *Config) { c.MempoolShards = -1 }},
		{"negative shard cap", func(c *Config) { c.MempoolShardCap = -8 }},
		{"floor below zero", func(c *Config) { c.AdmissionFloor = -0.1 }},
		{"floor above one", func(c *Config) { c.AdmissionFloor = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("New() error = %v, want ErrBadConfig", err)
			}
		})
	}
}
